file(REMOVE_RECURSE
  "CMakeFiles/scenario_cli.dir/scenario_cli.cpp.o"
  "CMakeFiles/scenario_cli.dir/scenario_cli.cpp.o.d"
  "scenario_cli"
  "scenario_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/scenario_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
