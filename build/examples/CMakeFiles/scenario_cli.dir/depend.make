# Empty dependencies file for scenario_cli.
# This may be replaced when dependencies are built.
