# Empty dependencies file for moderator_scoreboard.
# This may be replaced when dependencies are built.
