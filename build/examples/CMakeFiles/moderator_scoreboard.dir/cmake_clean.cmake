file(REMOVE_RECURSE
  "CMakeFiles/moderator_scoreboard.dir/moderator_scoreboard.cpp.o"
  "CMakeFiles/moderator_scoreboard.dir/moderator_scoreboard.cpp.o.d"
  "moderator_scoreboard"
  "moderator_scoreboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moderator_scoreboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
