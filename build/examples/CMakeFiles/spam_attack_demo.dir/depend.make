# Empty dependencies file for spam_attack_demo.
# This may be replaced when dependencies are built.
