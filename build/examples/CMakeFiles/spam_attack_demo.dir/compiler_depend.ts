# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for spam_attack_demo.
