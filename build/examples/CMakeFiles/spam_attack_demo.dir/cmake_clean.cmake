file(REMOVE_RECURSE
  "CMakeFiles/spam_attack_demo.dir/spam_attack_demo.cpp.o"
  "CMakeFiles/spam_attack_demo.dir/spam_attack_demo.cpp.o.d"
  "spam_attack_demo"
  "spam_attack_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/spam_attack_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
