file(REMOVE_RECURSE
  "CMakeFiles/convergence_diagnostics.dir/convergence_diagnostics.cpp.o"
  "CMakeFiles/convergence_diagnostics.dir/convergence_diagnostics.cpp.o.d"
  "convergence_diagnostics"
  "convergence_diagnostics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/convergence_diagnostics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
