# Empty compiler generated dependencies file for convergence_diagnostics.
# This may be replaced when dependencies are built.
