# Empty dependencies file for swarm_churn_test.
# This may be replaced when dependencies are built.
