file(REMOVE_RECURSE
  "CMakeFiles/swarm_churn_test.dir/swarm_churn_test.cpp.o"
  "CMakeFiles/swarm_churn_test.dir/swarm_churn_test.cpp.o.d"
  "swarm_churn_test"
  "swarm_churn_test.pdb"
  "swarm_churn_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/swarm_churn_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
