# Empty dependencies file for bt_bitfield_test.
# This may be replaced when dependencies are built.
