file(REMOVE_RECURSE
  "CMakeFiles/bt_bitfield_test.dir/bt_bitfield_test.cpp.o"
  "CMakeFiles/bt_bitfield_test.dir/bt_bitfield_test.cpp.o.d"
  "bt_bitfield_test"
  "bt_bitfield_test.pdb"
  "bt_bitfield_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_bitfield_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
