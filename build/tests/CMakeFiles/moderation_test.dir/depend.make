# Empty dependencies file for moderation_test.
# This may be replaced when dependencies are built.
