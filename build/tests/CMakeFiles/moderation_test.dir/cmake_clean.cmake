file(REMOVE_RECURSE
  "CMakeFiles/moderation_test.dir/moderation_test.cpp.o"
  "CMakeFiles/moderation_test.dir/moderation_test.cpp.o.d"
  "moderation_test"
  "moderation_test.pdb"
  "moderation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/moderation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
