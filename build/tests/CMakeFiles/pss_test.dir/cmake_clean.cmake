file(REMOVE_RECURSE
  "CMakeFiles/pss_test.dir/pss_test.cpp.o"
  "CMakeFiles/pss_test.dir/pss_test.cpp.o.d"
  "pss_test"
  "pss_test.pdb"
  "pss_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pss_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
