# Empty dependencies file for pss_test.
# This may be replaced when dependencies are built.
