file(REMOVE_RECURSE
  "CMakeFiles/core_runner_test.dir/core_runner_test.cpp.o"
  "CMakeFiles/core_runner_test.dir/core_runner_test.cpp.o.d"
  "core_runner_test"
  "core_runner_test.pdb"
  "core_runner_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_runner_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
