# Empty dependencies file for core_runner_test.
# This may be replaced when dependencies are built.
