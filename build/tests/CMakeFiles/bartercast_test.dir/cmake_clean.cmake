file(REMOVE_RECURSE
  "CMakeFiles/bartercast_test.dir/bartercast_test.cpp.o"
  "CMakeFiles/bartercast_test.dir/bartercast_test.cpp.o.d"
  "bartercast_test"
  "bartercast_test.pdb"
  "bartercast_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bartercast_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
