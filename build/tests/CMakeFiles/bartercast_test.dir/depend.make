# Empty dependencies file for bartercast_test.
# This may be replaced when dependencies are built.
