
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/dht_test.cpp" "tests/CMakeFiles/dht_test.dir/dht_test.cpp.o" "gcc" "tests/CMakeFiles/dht_test.dir/dht_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/tribvote_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/tribvote_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/pss/CMakeFiles/tribvote_pss.dir/DependInfo.cmake"
  "/root/repo/build/src/moderation/CMakeFiles/tribvote_moderation.dir/DependInfo.cmake"
  "/root/repo/build/src/attack/CMakeFiles/tribvote_attack.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/tribvote_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/bartercast/CMakeFiles/tribvote_bartercast.dir/DependInfo.cmake"
  "/root/repo/build/src/bt/CMakeFiles/tribvote_bt.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tribvote_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/vote/CMakeFiles/tribvote_vote.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tribvote_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/dht/CMakeFiles/tribvote_dht.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/tribvote_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tribvote_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
