# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for bt_piece_picker_test.
