# Empty compiler generated dependencies file for bt_piece_picker_test.
# This may be replaced when dependencies are built.
