file(REMOVE_RECURSE
  "CMakeFiles/bt_piece_picker_test.dir/bt_piece_picker_test.cpp.o"
  "CMakeFiles/bt_piece_picker_test.dir/bt_piece_picker_test.cpp.o.d"
  "bt_piece_picker_test"
  "bt_piece_picker_test.pdb"
  "bt_piece_picker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_piece_picker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
