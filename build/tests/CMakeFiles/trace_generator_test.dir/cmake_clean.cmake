file(REMOVE_RECURSE
  "CMakeFiles/trace_generator_test.dir/trace_generator_test.cpp.o"
  "CMakeFiles/trace_generator_test.dir/trace_generator_test.cpp.o.d"
  "trace_generator_test"
  "trace_generator_test.pdb"
  "trace_generator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/trace_generator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
