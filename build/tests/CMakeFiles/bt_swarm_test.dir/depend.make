# Empty dependencies file for bt_swarm_test.
# This may be replaced when dependencies are built.
