file(REMOVE_RECURSE
  "CMakeFiles/bt_swarm_test.dir/bt_swarm_test.cpp.o"
  "CMakeFiles/bt_swarm_test.dir/bt_swarm_test.cpp.o.d"
  "bt_swarm_test"
  "bt_swarm_test.pdb"
  "bt_swarm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_swarm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
