file(REMOVE_RECURSE
  "CMakeFiles/bt_choker_test.dir/bt_choker_test.cpp.o"
  "CMakeFiles/bt_choker_test.dir/bt_choker_test.cpp.o.d"
  "bt_choker_test"
  "bt_choker_test.pdb"
  "bt_choker_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bt_choker_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
