# Empty dependencies file for bt_choker_test.
# This may be replaced when dependencies are built.
