file(REMOVE_RECURSE
  "CMakeFiles/vote_test.dir/vote_test.cpp.o"
  "CMakeFiles/vote_test.dir/vote_test.cpp.o.d"
  "vote_test"
  "vote_test.pdb"
  "vote_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vote_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
