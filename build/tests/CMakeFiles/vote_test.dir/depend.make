# Empty dependencies file for vote_test.
# This may be replaced when dependencies are built.
