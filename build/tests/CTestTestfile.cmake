# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/util_rng_test[1]_include.cmake")
include("/root/repo/build/tests/util_stats_test[1]_include.cmake")
include("/root/repo/build/tests/util_hash_csv_test[1]_include.cmake")
include("/root/repo/build/tests/util_thread_pool_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/crypto_test[1]_include.cmake")
include("/root/repo/build/tests/trace_generator_test[1]_include.cmake")
include("/root/repo/build/tests/trace_io_test[1]_include.cmake")
include("/root/repo/build/tests/bt_bitfield_test[1]_include.cmake")
include("/root/repo/build/tests/bt_piece_picker_test[1]_include.cmake")
include("/root/repo/build/tests/bt_choker_test[1]_include.cmake")
include("/root/repo/build/tests/bt_swarm_test[1]_include.cmake")
include("/root/repo/build/tests/pss_test[1]_include.cmake")
include("/root/repo/build/tests/bartercast_test[1]_include.cmake")
include("/root/repo/build/tests/moderation_test[1]_include.cmake")
include("/root/repo/build/tests/vote_test[1]_include.cmake")
include("/root/repo/build/tests/attack_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/core_runner_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
include("/root/repo/build/tests/dht_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/swarm_churn_test[1]_include.cmake")
