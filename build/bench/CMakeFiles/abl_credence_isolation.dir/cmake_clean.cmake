file(REMOVE_RECURSE
  "CMakeFiles/abl_credence_isolation.dir/abl_credence_isolation.cpp.o"
  "CMakeFiles/abl_credence_isolation.dir/abl_credence_isolation.cpp.o.d"
  "abl_credence_isolation"
  "abl_credence_isolation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_credence_isolation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
