# Empty compiler generated dependencies file for abl_credence_isolation.
# This may be replaced when dependencies are built.
