# Empty compiler generated dependencies file for fig8_spam_attack.
# This may be replaced when dependencies are built.
