file(REMOVE_RECURSE
  "CMakeFiles/fig8_spam_attack.dir/fig8_spam_attack.cpp.o"
  "CMakeFiles/fig8_spam_attack.dir/fig8_spam_attack.cpp.o.d"
  "fig8_spam_attack"
  "fig8_spam_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_spam_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
