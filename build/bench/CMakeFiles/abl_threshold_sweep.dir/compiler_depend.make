# Empty compiler generated dependencies file for abl_threshold_sweep.
# This may be replaced when dependencies are built.
