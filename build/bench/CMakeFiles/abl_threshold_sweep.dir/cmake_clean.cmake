file(REMOVE_RECURSE
  "CMakeFiles/abl_threshold_sweep.dir/abl_threshold_sweep.cpp.o"
  "CMakeFiles/abl_threshold_sweep.dir/abl_threshold_sweep.cpp.o.d"
  "abl_threshold_sweep"
  "abl_threshold_sweep.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_threshold_sweep.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
