file(REMOVE_RECURSE
  "CMakeFiles/abl_fake_experience.dir/abl_fake_experience.cpp.o"
  "CMakeFiles/abl_fake_experience.dir/abl_fake_experience.cpp.o.d"
  "abl_fake_experience"
  "abl_fake_experience.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_fake_experience.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
