# Empty compiler generated dependencies file for abl_fake_experience.
# This may be replaced when dependencies are built.
