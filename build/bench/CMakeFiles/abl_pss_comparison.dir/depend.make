# Empty dependencies file for abl_pss_comparison.
# This may be replaced when dependencies are built.
