file(REMOVE_RECURSE
  "CMakeFiles/abl_pss_comparison.dir/abl_pss_comparison.cpp.o"
  "CMakeFiles/abl_pss_comparison.dir/abl_pss_comparison.cpp.o.d"
  "abl_pss_comparison"
  "abl_pss_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_pss_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
