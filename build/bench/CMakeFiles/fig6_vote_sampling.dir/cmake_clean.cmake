file(REMOVE_RECURSE
  "CMakeFiles/fig6_vote_sampling.dir/fig6_vote_sampling.cpp.o"
  "CMakeFiles/fig6_vote_sampling.dir/fig6_vote_sampling.cpp.o.d"
  "fig6_vote_sampling"
  "fig6_vote_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_vote_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
