# Empty compiler generated dependencies file for fig6_vote_sampling.
# This may be replaced when dependencies are built.
