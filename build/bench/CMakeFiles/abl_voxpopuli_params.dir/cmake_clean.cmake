file(REMOVE_RECURSE
  "CMakeFiles/abl_voxpopuli_params.dir/abl_voxpopuli_params.cpp.o"
  "CMakeFiles/abl_voxpopuli_params.dir/abl_voxpopuli_params.cpp.o.d"
  "abl_voxpopuli_params"
  "abl_voxpopuli_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_voxpopuli_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
