# Empty dependencies file for abl_voxpopuli_params.
# This may be replaced when dependencies are built.
