file(REMOVE_RECURSE
  "CMakeFiles/abl_aggregation.dir/abl_aggregation.cpp.o"
  "CMakeFiles/abl_aggregation.dir/abl_aggregation.cpp.o.d"
  "abl_aggregation"
  "abl_aggregation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_aggregation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
