file(REMOVE_RECURSE
  "CMakeFiles/abl_vote_selection.dir/abl_vote_selection.cpp.o"
  "CMakeFiles/abl_vote_selection.dir/abl_vote_selection.cpp.o.d"
  "abl_vote_selection"
  "abl_vote_selection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_vote_selection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
