# Empty compiler generated dependencies file for abl_vote_selection.
# This may be replaced when dependencies are built.
