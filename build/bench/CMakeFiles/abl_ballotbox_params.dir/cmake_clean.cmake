file(REMOVE_RECURSE
  "CMakeFiles/abl_ballotbox_params.dir/abl_ballotbox_params.cpp.o"
  "CMakeFiles/abl_ballotbox_params.dir/abl_ballotbox_params.cpp.o.d"
  "abl_ballotbox_params"
  "abl_ballotbox_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_ballotbox_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
