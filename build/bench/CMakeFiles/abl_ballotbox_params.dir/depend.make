# Empty dependencies file for abl_ballotbox_params.
# This may be replaced when dependencies are built.
