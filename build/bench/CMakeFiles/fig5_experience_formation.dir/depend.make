# Empty dependencies file for fig5_experience_formation.
# This may be replaced when dependencies are built.
