file(REMOVE_RECURSE
  "CMakeFiles/fig5_experience_formation.dir/fig5_experience_formation.cpp.o"
  "CMakeFiles/fig5_experience_formation.dir/fig5_experience_formation.cpp.o.d"
  "fig5_experience_formation"
  "fig5_experience_formation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_experience_formation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
