file(REMOVE_RECURSE
  "CMakeFiles/abl_adaptive_threshold.dir/abl_adaptive_threshold.cpp.o"
  "CMakeFiles/abl_adaptive_threshold.dir/abl_adaptive_threshold.cpp.o.d"
  "abl_adaptive_threshold"
  "abl_adaptive_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_adaptive_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
