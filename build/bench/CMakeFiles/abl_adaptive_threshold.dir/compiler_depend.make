# Empty compiler generated dependencies file for abl_adaptive_threshold.
# This may be replaced when dependencies are built.
