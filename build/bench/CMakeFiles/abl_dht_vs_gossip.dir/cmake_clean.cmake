file(REMOVE_RECURSE
  "CMakeFiles/abl_dht_vs_gossip.dir/abl_dht_vs_gossip.cpp.o"
  "CMakeFiles/abl_dht_vs_gossip.dir/abl_dht_vs_gossip.cpp.o.d"
  "abl_dht_vs_gossip"
  "abl_dht_vs_gossip.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abl_dht_vs_gossip.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
