# Empty compiler generated dependencies file for abl_dht_vs_gossip.
# This may be replaced when dependencies are built.
