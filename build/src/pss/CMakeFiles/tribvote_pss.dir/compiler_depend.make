# Empty compiler generated dependencies file for tribvote_pss.
# This may be replaced when dependencies are built.
