file(REMOVE_RECURSE
  "libtribvote_pss.a"
)
