file(REMOVE_RECURSE
  "CMakeFiles/tribvote_pss.dir/newscast.cpp.o"
  "CMakeFiles/tribvote_pss.dir/newscast.cpp.o.d"
  "CMakeFiles/tribvote_pss.dir/online_directory.cpp.o"
  "CMakeFiles/tribvote_pss.dir/online_directory.cpp.o.d"
  "libtribvote_pss.a"
  "libtribvote_pss.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tribvote_pss.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
