file(REMOVE_RECURSE
  "libtribvote_sim.a"
)
