file(REMOVE_RECURSE
  "CMakeFiles/tribvote_sim.dir/event_queue.cpp.o"
  "CMakeFiles/tribvote_sim.dir/event_queue.cpp.o.d"
  "CMakeFiles/tribvote_sim.dir/simulator.cpp.o"
  "CMakeFiles/tribvote_sim.dir/simulator.cpp.o.d"
  "libtribvote_sim.a"
  "libtribvote_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tribvote_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
