# Empty dependencies file for tribvote_sim.
# This may be replaced when dependencies are built.
