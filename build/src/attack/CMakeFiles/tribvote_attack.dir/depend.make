# Empty dependencies file for tribvote_attack.
# This may be replaced when dependencies are built.
