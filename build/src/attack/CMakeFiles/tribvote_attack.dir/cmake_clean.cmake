file(REMOVE_RECURSE
  "CMakeFiles/tribvote_attack.dir/colluder.cpp.o"
  "CMakeFiles/tribvote_attack.dir/colluder.cpp.o.d"
  "CMakeFiles/tribvote_attack.dir/front_peer.cpp.o"
  "CMakeFiles/tribvote_attack.dir/front_peer.cpp.o.d"
  "libtribvote_attack.a"
  "libtribvote_attack.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tribvote_attack.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
