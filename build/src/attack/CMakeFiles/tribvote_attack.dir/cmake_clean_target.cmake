file(REMOVE_RECURSE
  "libtribvote_attack.a"
)
