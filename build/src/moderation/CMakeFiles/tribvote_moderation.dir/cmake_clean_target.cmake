file(REMOVE_RECURSE
  "libtribvote_moderation.a"
)
