
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/moderation/db.cpp" "src/moderation/CMakeFiles/tribvote_moderation.dir/db.cpp.o" "gcc" "src/moderation/CMakeFiles/tribvote_moderation.dir/db.cpp.o.d"
  "/root/repo/src/moderation/moderation.cpp" "src/moderation/CMakeFiles/tribvote_moderation.dir/moderation.cpp.o" "gcc" "src/moderation/CMakeFiles/tribvote_moderation.dir/moderation.cpp.o.d"
  "/root/repo/src/moderation/moderationcast.cpp" "src/moderation/CMakeFiles/tribvote_moderation.dir/moderationcast.cpp.o" "gcc" "src/moderation/CMakeFiles/tribvote_moderation.dir/moderationcast.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tribvote_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tribvote_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
