# Empty dependencies file for tribvote_moderation.
# This may be replaced when dependencies are built.
