file(REMOVE_RECURSE
  "CMakeFiles/tribvote_moderation.dir/db.cpp.o"
  "CMakeFiles/tribvote_moderation.dir/db.cpp.o.d"
  "CMakeFiles/tribvote_moderation.dir/moderation.cpp.o"
  "CMakeFiles/tribvote_moderation.dir/moderation.cpp.o.d"
  "CMakeFiles/tribvote_moderation.dir/moderationcast.cpp.o"
  "CMakeFiles/tribvote_moderation.dir/moderationcast.cpp.o.d"
  "libtribvote_moderation.a"
  "libtribvote_moderation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tribvote_moderation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
