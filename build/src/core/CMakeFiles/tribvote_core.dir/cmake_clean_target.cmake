file(REMOVE_RECURSE
  "libtribvote_core.a"
)
