file(REMOVE_RECURSE
  "CMakeFiles/tribvote_core.dir/experiment.cpp.o"
  "CMakeFiles/tribvote_core.dir/experiment.cpp.o.d"
  "CMakeFiles/tribvote_core.dir/node.cpp.o"
  "CMakeFiles/tribvote_core.dir/node.cpp.o.d"
  "CMakeFiles/tribvote_core.dir/runner.cpp.o"
  "CMakeFiles/tribvote_core.dir/runner.cpp.o.d"
  "libtribvote_core.a"
  "libtribvote_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tribvote_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
