# Empty dependencies file for tribvote_core.
# This may be replaced when dependencies are built.
