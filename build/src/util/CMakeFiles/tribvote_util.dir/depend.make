# Empty dependencies file for tribvote_util.
# This may be replaced when dependencies are built.
