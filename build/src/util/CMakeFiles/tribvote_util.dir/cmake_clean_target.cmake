file(REMOVE_RECURSE
  "libtribvote_util.a"
)
