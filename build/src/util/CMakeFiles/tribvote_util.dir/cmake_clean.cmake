file(REMOVE_RECURSE
  "CMakeFiles/tribvote_util.dir/csv.cpp.o"
  "CMakeFiles/tribvote_util.dir/csv.cpp.o.d"
  "CMakeFiles/tribvote_util.dir/hash.cpp.o"
  "CMakeFiles/tribvote_util.dir/hash.cpp.o.d"
  "CMakeFiles/tribvote_util.dir/rng.cpp.o"
  "CMakeFiles/tribvote_util.dir/rng.cpp.o.d"
  "CMakeFiles/tribvote_util.dir/stats.cpp.o"
  "CMakeFiles/tribvote_util.dir/stats.cpp.o.d"
  "CMakeFiles/tribvote_util.dir/thread_pool.cpp.o"
  "CMakeFiles/tribvote_util.dir/thread_pool.cpp.o.d"
  "libtribvote_util.a"
  "libtribvote_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tribvote_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
