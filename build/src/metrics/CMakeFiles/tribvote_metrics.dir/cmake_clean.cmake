file(REMOVE_RECURSE
  "CMakeFiles/tribvote_metrics.dir/cev.cpp.o"
  "CMakeFiles/tribvote_metrics.dir/cev.cpp.o.d"
  "CMakeFiles/tribvote_metrics.dir/ordering.cpp.o"
  "CMakeFiles/tribvote_metrics.dir/ordering.cpp.o.d"
  "CMakeFiles/tribvote_metrics.dir/timeseries.cpp.o"
  "CMakeFiles/tribvote_metrics.dir/timeseries.cpp.o.d"
  "libtribvote_metrics.a"
  "libtribvote_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tribvote_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
