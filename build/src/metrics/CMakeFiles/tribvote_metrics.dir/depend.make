# Empty dependencies file for tribvote_metrics.
# This may be replaced when dependencies are built.
