
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/metrics/cev.cpp" "src/metrics/CMakeFiles/tribvote_metrics.dir/cev.cpp.o" "gcc" "src/metrics/CMakeFiles/tribvote_metrics.dir/cev.cpp.o.d"
  "/root/repo/src/metrics/ordering.cpp" "src/metrics/CMakeFiles/tribvote_metrics.dir/ordering.cpp.o" "gcc" "src/metrics/CMakeFiles/tribvote_metrics.dir/ordering.cpp.o.d"
  "/root/repo/src/metrics/timeseries.cpp" "src/metrics/CMakeFiles/tribvote_metrics.dir/timeseries.cpp.o" "gcc" "src/metrics/CMakeFiles/tribvote_metrics.dir/timeseries.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tribvote_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bartercast/CMakeFiles/tribvote_bartercast.dir/DependInfo.cmake"
  "/root/repo/build/src/vote/CMakeFiles/tribvote_vote.dir/DependInfo.cmake"
  "/root/repo/build/src/bt/CMakeFiles/tribvote_bt.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tribvote_trace.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tribvote_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
