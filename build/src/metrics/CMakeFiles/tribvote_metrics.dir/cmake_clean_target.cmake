file(REMOVE_RECURSE
  "libtribvote_metrics.a"
)
