file(REMOVE_RECURSE
  "CMakeFiles/tribvote_baselines.dir/credence.cpp.o"
  "CMakeFiles/tribvote_baselines.dir/credence.cpp.o.d"
  "libtribvote_baselines.a"
  "libtribvote_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tribvote_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
