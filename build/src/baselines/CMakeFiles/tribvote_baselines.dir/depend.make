# Empty dependencies file for tribvote_baselines.
# This may be replaced when dependencies are built.
