file(REMOVE_RECURSE
  "libtribvote_baselines.a"
)
