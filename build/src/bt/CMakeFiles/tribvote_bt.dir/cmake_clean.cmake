file(REMOVE_RECURSE
  "CMakeFiles/tribvote_bt.dir/bandwidth.cpp.o"
  "CMakeFiles/tribvote_bt.dir/bandwidth.cpp.o.d"
  "CMakeFiles/tribvote_bt.dir/bitfield.cpp.o"
  "CMakeFiles/tribvote_bt.dir/bitfield.cpp.o.d"
  "CMakeFiles/tribvote_bt.dir/choker.cpp.o"
  "CMakeFiles/tribvote_bt.dir/choker.cpp.o.d"
  "CMakeFiles/tribvote_bt.dir/piece_picker.cpp.o"
  "CMakeFiles/tribvote_bt.dir/piece_picker.cpp.o.d"
  "CMakeFiles/tribvote_bt.dir/swarm.cpp.o"
  "CMakeFiles/tribvote_bt.dir/swarm.cpp.o.d"
  "CMakeFiles/tribvote_bt.dir/transfer_ledger.cpp.o"
  "CMakeFiles/tribvote_bt.dir/transfer_ledger.cpp.o.d"
  "libtribvote_bt.a"
  "libtribvote_bt.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tribvote_bt.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
