file(REMOVE_RECURSE
  "libtribvote_bt.a"
)
