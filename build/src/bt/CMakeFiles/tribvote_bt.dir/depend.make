# Empty dependencies file for tribvote_bt.
# This may be replaced when dependencies are built.
