
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bt/bandwidth.cpp" "src/bt/CMakeFiles/tribvote_bt.dir/bandwidth.cpp.o" "gcc" "src/bt/CMakeFiles/tribvote_bt.dir/bandwidth.cpp.o.d"
  "/root/repo/src/bt/bitfield.cpp" "src/bt/CMakeFiles/tribvote_bt.dir/bitfield.cpp.o" "gcc" "src/bt/CMakeFiles/tribvote_bt.dir/bitfield.cpp.o.d"
  "/root/repo/src/bt/choker.cpp" "src/bt/CMakeFiles/tribvote_bt.dir/choker.cpp.o" "gcc" "src/bt/CMakeFiles/tribvote_bt.dir/choker.cpp.o.d"
  "/root/repo/src/bt/piece_picker.cpp" "src/bt/CMakeFiles/tribvote_bt.dir/piece_picker.cpp.o" "gcc" "src/bt/CMakeFiles/tribvote_bt.dir/piece_picker.cpp.o.d"
  "/root/repo/src/bt/swarm.cpp" "src/bt/CMakeFiles/tribvote_bt.dir/swarm.cpp.o" "gcc" "src/bt/CMakeFiles/tribvote_bt.dir/swarm.cpp.o.d"
  "/root/repo/src/bt/transfer_ledger.cpp" "src/bt/CMakeFiles/tribvote_bt.dir/transfer_ledger.cpp.o" "gcc" "src/bt/CMakeFiles/tribvote_bt.dir/transfer_ledger.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tribvote_util.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tribvote_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
