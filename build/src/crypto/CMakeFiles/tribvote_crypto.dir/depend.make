# Empty dependencies file for tribvote_crypto.
# This may be replaced when dependencies are built.
