file(REMOVE_RECURSE
  "CMakeFiles/tribvote_crypto.dir/field.cpp.o"
  "CMakeFiles/tribvote_crypto.dir/field.cpp.o.d"
  "CMakeFiles/tribvote_crypto.dir/schnorr.cpp.o"
  "CMakeFiles/tribvote_crypto.dir/schnorr.cpp.o.d"
  "libtribvote_crypto.a"
  "libtribvote_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tribvote_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
