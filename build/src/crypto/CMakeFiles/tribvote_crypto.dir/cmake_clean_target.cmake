file(REMOVE_RECURSE
  "libtribvote_crypto.a"
)
