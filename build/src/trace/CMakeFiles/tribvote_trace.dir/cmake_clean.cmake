file(REMOVE_RECURSE
  "CMakeFiles/tribvote_trace.dir/analyzer.cpp.o"
  "CMakeFiles/tribvote_trace.dir/analyzer.cpp.o.d"
  "CMakeFiles/tribvote_trace.dir/generator.cpp.o"
  "CMakeFiles/tribvote_trace.dir/generator.cpp.o.d"
  "CMakeFiles/tribvote_trace.dir/io.cpp.o"
  "CMakeFiles/tribvote_trace.dir/io.cpp.o.d"
  "libtribvote_trace.a"
  "libtribvote_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tribvote_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
