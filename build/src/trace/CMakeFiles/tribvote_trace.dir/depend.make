# Empty dependencies file for tribvote_trace.
# This may be replaced when dependencies are built.
