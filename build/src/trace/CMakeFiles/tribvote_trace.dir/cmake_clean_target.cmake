file(REMOVE_RECURSE
  "libtribvote_trace.a"
)
