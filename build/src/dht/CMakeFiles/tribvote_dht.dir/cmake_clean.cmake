file(REMOVE_RECURSE
  "CMakeFiles/tribvote_dht.dir/chord.cpp.o"
  "CMakeFiles/tribvote_dht.dir/chord.cpp.o.d"
  "libtribvote_dht.a"
  "libtribvote_dht.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tribvote_dht.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
