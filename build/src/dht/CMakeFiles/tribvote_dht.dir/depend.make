# Empty dependencies file for tribvote_dht.
# This may be replaced when dependencies are built.
