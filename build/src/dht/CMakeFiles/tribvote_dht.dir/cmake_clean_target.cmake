file(REMOVE_RECURSE
  "libtribvote_dht.a"
)
