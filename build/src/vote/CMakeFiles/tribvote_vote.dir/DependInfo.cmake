
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vote/agent.cpp" "src/vote/CMakeFiles/tribvote_vote.dir/agent.cpp.o" "gcc" "src/vote/CMakeFiles/tribvote_vote.dir/agent.cpp.o.d"
  "/root/repo/src/vote/ballot_box.cpp" "src/vote/CMakeFiles/tribvote_vote.dir/ballot_box.cpp.o" "gcc" "src/vote/CMakeFiles/tribvote_vote.dir/ballot_box.cpp.o.d"
  "/root/repo/src/vote/ranking.cpp" "src/vote/CMakeFiles/tribvote_vote.dir/ranking.cpp.o" "gcc" "src/vote/CMakeFiles/tribvote_vote.dir/ranking.cpp.o.d"
  "/root/repo/src/vote/vote_list.cpp" "src/vote/CMakeFiles/tribvote_vote.dir/vote_list.cpp.o" "gcc" "src/vote/CMakeFiles/tribvote_vote.dir/vote_list.cpp.o.d"
  "/root/repo/src/vote/voxpopuli.cpp" "src/vote/CMakeFiles/tribvote_vote.dir/voxpopuli.cpp.o" "gcc" "src/vote/CMakeFiles/tribvote_vote.dir/voxpopuli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tribvote_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tribvote_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
