# Empty dependencies file for tribvote_vote.
# This may be replaced when dependencies are built.
