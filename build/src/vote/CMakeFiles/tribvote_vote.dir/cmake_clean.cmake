file(REMOVE_RECURSE
  "CMakeFiles/tribvote_vote.dir/agent.cpp.o"
  "CMakeFiles/tribvote_vote.dir/agent.cpp.o.d"
  "CMakeFiles/tribvote_vote.dir/ballot_box.cpp.o"
  "CMakeFiles/tribvote_vote.dir/ballot_box.cpp.o.d"
  "CMakeFiles/tribvote_vote.dir/ranking.cpp.o"
  "CMakeFiles/tribvote_vote.dir/ranking.cpp.o.d"
  "CMakeFiles/tribvote_vote.dir/vote_list.cpp.o"
  "CMakeFiles/tribvote_vote.dir/vote_list.cpp.o.d"
  "CMakeFiles/tribvote_vote.dir/voxpopuli.cpp.o"
  "CMakeFiles/tribvote_vote.dir/voxpopuli.cpp.o.d"
  "libtribvote_vote.a"
  "libtribvote_vote.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tribvote_vote.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
