file(REMOVE_RECURSE
  "libtribvote_vote.a"
)
