
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bartercast/experience.cpp" "src/bartercast/CMakeFiles/tribvote_bartercast.dir/experience.cpp.o" "gcc" "src/bartercast/CMakeFiles/tribvote_bartercast.dir/experience.cpp.o.d"
  "/root/repo/src/bartercast/maxflow.cpp" "src/bartercast/CMakeFiles/tribvote_bartercast.dir/maxflow.cpp.o" "gcc" "src/bartercast/CMakeFiles/tribvote_bartercast.dir/maxflow.cpp.o.d"
  "/root/repo/src/bartercast/protocol.cpp" "src/bartercast/CMakeFiles/tribvote_bartercast.dir/protocol.cpp.o" "gcc" "src/bartercast/CMakeFiles/tribvote_bartercast.dir/protocol.cpp.o.d"
  "/root/repo/src/bartercast/subjective_graph.cpp" "src/bartercast/CMakeFiles/tribvote_bartercast.dir/subjective_graph.cpp.o" "gcc" "src/bartercast/CMakeFiles/tribvote_bartercast.dir/subjective_graph.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tribvote_util.dir/DependInfo.cmake"
  "/root/repo/build/src/bt/CMakeFiles/tribvote_bt.dir/DependInfo.cmake"
  "/root/repo/build/src/trace/CMakeFiles/tribvote_trace.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
