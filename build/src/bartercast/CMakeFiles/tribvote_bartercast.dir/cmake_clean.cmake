file(REMOVE_RECURSE
  "CMakeFiles/tribvote_bartercast.dir/experience.cpp.o"
  "CMakeFiles/tribvote_bartercast.dir/experience.cpp.o.d"
  "CMakeFiles/tribvote_bartercast.dir/maxflow.cpp.o"
  "CMakeFiles/tribvote_bartercast.dir/maxflow.cpp.o.d"
  "CMakeFiles/tribvote_bartercast.dir/protocol.cpp.o"
  "CMakeFiles/tribvote_bartercast.dir/protocol.cpp.o.d"
  "CMakeFiles/tribvote_bartercast.dir/subjective_graph.cpp.o"
  "CMakeFiles/tribvote_bartercast.dir/subjective_graph.cpp.o.d"
  "libtribvote_bartercast.a"
  "libtribvote_bartercast.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tribvote_bartercast.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
