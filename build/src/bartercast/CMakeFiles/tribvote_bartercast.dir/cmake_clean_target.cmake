file(REMOVE_RECURSE
  "libtribvote_bartercast.a"
)
