# Empty compiler generated dependencies file for tribvote_bartercast.
# This may be replaced when dependencies are built.
