// Shared setup for the Fig. 8 spam-attack scenario and its ablations.
//
// Builds the paper's §VI-C configuration on a given trace:
//   * a fixed experienced core of the earliest arrivals, pre-converged on
//     the honest top moderator M1 (pre-filled ballot boxes and pairwise
//     transfer history, core members voted +M1);
//   * a flash crowd of colluders promoting spam moderator M0 (always the
//     first colluder id), arriving at t = 0 and churning like honest peers;
//   * newly arrived normal nodes — everyone else — whose pollution
//     (fraction ranking M0 top) is the reported metric.
#pragma once

#include <algorithm>
#include <vector>

#include "core/runner.hpp"
#include "metrics/ordering.hpp"
#include "metrics/timeseries.hpp"
#include "trace/analyzer.hpp"

namespace tribvote::bench {

struct AttackScenario {
  std::vector<PeerId> core;
  ModeratorId m1 = kInvalidModerator;  ///< honest top moderator
  ModeratorId m0 = kInvalidModerator;  ///< spam moderator

  [[nodiscard]] bool is_core(PeerId p) const {
    return std::find(core.begin(), core.end(), p) != core.end();
  }
};

/// Apply the pre-converged-core setup to a runner whose config already
/// carries the flash-crowd AttackConfig. Call before run_until.
inline AttackScenario setup_attack_scenario(core::ScenarioRunner& runner,
                                            std::size_t core_size,
                                            double preseed_mb = 25.0) {
  AttackScenario scenario;
  scenario.core = trace::earliest_arrivals(runner.trace(), core_size);
  scenario.m1 = scenario.core.front();
  scenario.m0 = runner.spam_moderator();

  runner.publish_moderation(scenario.m1, kMinute, "genuine popular release");
  for (const PeerId a : scenario.core) {
    if (a != scenario.m1) {
      runner.cast_vote_now(a, scenario.m1, Opinion::kPositive);
    }
    for (const PeerId b : scenario.core) {
      if (a == b) continue;
      // Mutual history: the core is experienced for one another, and its
      // ballot boxes already hold the converged +M1 sample.
      runner.preseed_transfer(a, b, preseed_mb);
      runner.preload_ballot(a, b, scenario.m1, Opinion::kPositive);
    }
  }
  return scenario;
}

/// Attach a sampler recording the pollution fraction among arrived,
/// non-core, non-colluder nodes every `period`.
inline void sample_new_node_pollution(core::ScenarioRunner& runner,
                                      const AttackScenario& scenario,
                                      Duration period,
                                      metrics::TimeSeries& out) {
  runner.sample_every(period, [&runner, &scenario, &out](Time t) {
    std::vector<vote::RankedList> fresh;
    for (PeerId p = 0; p < runner.trace_peer_count(); ++p) {
      if (scenario.is_core(p) || !runner.has_arrived(p, t)) continue;
      fresh.push_back(runner.ranking_of(p));
    }
    out.add(t, metrics::pollution_fraction(fresh, scenario.m0));
  });
}

}  // namespace tribvote::bench
