// A13 — adversary-plane sweep: ranking robustness vs adversary fraction.
//
// The paper's attack experiments (Figs. 8-9) study one adversary at one
// size. This sweep replays the Fig. 6 moderation-ranking scenario (every
// non-moderator honest node votes on receipt) against each of the five
// adversary strategies (DESIGN.md "Adversary plane") at adversary
// fractions {0, 0.1, 0.25, 0.5} of the honest population, on both the
// download workload and the streaming workload (windowed piece picking +
// playback deadlines):
//
//   colluder   flash-crowd vote spam promoting M0, demoting the top
//              honest moderator
//   front      fake-experience clique (honest votes, fabricated ledger)
//   attrition  LOCKSS-style rate-limited vote-list floods
//   nuisance   intermittent honest peers churning their votes
//   sybil      collusion regions splitting upload credit through the
//              ledger so two-hop max-flow clears E for every identity
//
// Reported per (strategy, workload, fraction): the final correct-ordering
// fraction and VoxPopuli bootstrap fraction among exposed honest nodes
// (the A11 exposure rule), the adversary plane's serial counters, and the
// streaming deadline columns (pieces on time, misses, miss rate) on the
// streaming workload. The frac=0 rows carry an empty roster: the plane is
// never constructed and the row is the golden Fig. 6 baseline for its
// workload.
//
// `--smoke` shrinks the grid (fractions {0, 0.25}, one replica) for CI;
// the full run is a pure function of TRIBVOTE_SEED and must produce
// byte-identical CSVs across invocations.
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "adversary/engine.hpp"
#include "bench_common.hpp"
#include "core/runner.hpp"
#include "metrics/ordering.hpp"
#include "trace/analyzer.hpp"

using namespace tribvote;

namespace {

constexpr std::array<double, 4> kFractions{0.0, 0.1, 0.25, 0.5};
constexpr std::array<double, 2> kSmokeFractions{0.0, 0.25};

/// A11's exposure rule: bootstrap is only demanded of peers with >= 12 h
/// cumulative presence (Fig. 6's pipeline needs that long fault-free).
constexpr Duration kMinExposure = 12 * kHour;

/// Strategies become active after the honest population has formed its
/// first rankings — the paper's Fig. 8 attack timing.
constexpr Time kAttackStart = kDay;

const std::array<adversary::StrategyKind, 5> kStrategies{
    adversary::StrategyKind::kColluder, adversary::StrategyKind::kFrontPeer,
    adversary::StrategyKind::kAttrition, adversary::StrategyKind::kNuisance,
    adversary::StrategyKind::kSybil};

std::vector<Duration> exposure_by(const trace::Trace& tr, Time t) {
  std::vector<Duration> online(tr.peers.size(), 0);
  for (const auto& s : tr.sessions) {
    if (s.start >= t) break;  // sessions are sorted by start time
    online[s.peer] += std::min(s.end, t) - s.start;
  }
  return online;
}

/// Roster of one strategy sized to `agents` identities. `victim` is the
/// top honest moderator (colluder and sybil demote it with negative
/// votes); paper-scale knob defaults otherwise.
adversary::AdversaryConfig roster_for(adversary::StrategyKind kind,
                                      std::size_t agents, ModeratorId victim) {
  adversary::AdversaryConfig config;
  if (agents == 0) return config;  // frac=0: empty roster, plane off
  adversary::StrategySpec spec;
  spec.kind = kind;
  spec.agents = agents;
  spec.start = kAttackStart;
  if (kind == adversary::StrategyKind::kColluder ||
      kind == adversary::StrategyKind::kSybil) {
    spec.victim = victim;
  }
  config.roster.push_back(spec);
  return config;
}

core::ReplicaResult run_replica(const trace::Trace& tr, std::size_t index,
                                adversary::StrategyKind kind, double frac,
                                bool streaming) {
  core::ScenarioConfig config;  // paper defaults
  config.shards = bench::shard_count();
  config.ledger = bench::ledger_backend();
  config.faults = bench::fault_config();
  config.telemetry = bench::telemetry_config();
  config.vote.gossip_cache = bench::gossip_cache();
  config.streaming.enabled = streaming;

  const auto firsts = trace::earliest_arrivals(tr, 3);
  const ModeratorId m1 = firsts[0], m2 = firsts[1], m3 = firsts[2];
  const auto agents = static_cast<std::size_t>(
      frac * static_cast<double>(tr.peers.size()) + 0.5);
  config.adversary = roster_for(kind, agents, m1);

  core::ScenarioRunner runner(tr, config, 0xA13 + index);
  runner.publish_moderation(m1, 10 * kMinute, "well-described release");
  runner.publish_moderation(m2, 10 * kMinute, "plain release");
  runner.publish_moderation(m3, 10 * kMinute, "misleading spam");
  for (PeerId voter = 0; voter < tr.peers.size(); ++voter) {
    if (voter == m1 || voter == m2 || voter == m3) continue;
    if (voter % 2 == 0) {
      runner.script_vote_on_receipt(voter, m1, Opinion::kPositive);
    } else {
      runner.script_vote_on_receipt(voter, m3, Opinion::kNegative);
    }
  }

  const std::vector<ModeratorId> expected{m1, m2, m3};
  metrics::TimeSeries correct, bootstrap;
  runner.sample_every(2 * kHour, [&](Time t) {
    std::vector<vote::RankedList> rankings;
    std::size_t exposed = 0, bootstrapped = 0;
    const auto online = exposure_by(tr, t);
    for (PeerId p = 0; p < tr.peers.size(); ++p) {
      if (p == m1 || p == m2 || p == m3) continue;
      rankings.push_back(runner.ranking_of(p));
      if (online[p] < kMinExposure) continue;
      ++exposed;
      if (!runner.node(p).vote().bootstrapping()) ++bootstrapped;
    }
    correct.add(t, metrics::correct_ordering_fraction(
                       rankings, std::span<const ModeratorId>(expected)));
    bootstrap.add(t, exposed == 0 ? 0.0
                                  : static_cast<double>(bootstrapped) /
                                        static_cast<double>(exposed));
  });
  runner.run_until(tr.duration);

  core::ReplicaResult result;
  result.series["correct"] = std::move(correct);
  result.series["bootstrap"] = std::move(bootstrap);
  const auto point = [&](const char* name, double value) {
    metrics::TimeSeries s;
    s.add(tr.duration, value);
    result.series[name] = std::move(s);
  };
  const adversary::AdversaryStats as = runner.adversary_stats();
  point("floods", static_cast<double>(as.floods_sent));
  point("flood_rejected", static_cast<double>(as.flood_rejected));
  point("nuisance_flips", static_cast<double>(as.nuisance_flips));
  point("credit_transfers", static_cast<double>(as.credit_transfers));
  point("presence_flips", static_cast<double>(as.presence_flips));
  point("adv_credit_mb", as.credit_mb);
  const bt::StreamingTotals st = runner.streaming_totals();
  point("stream_started", static_cast<double>(st.started));
  point("stream_finished", static_cast<double>(st.finished));
  point("pieces_on_time", static_cast<double>(st.pieces_on_time));
  point("deadline_misses", static_cast<double>(st.deadline_misses));
  return result;
}

double final_mean(const metrics::AggregateSeries& agg) {
  return agg.mean.empty() ? 0.0 : agg.mean.back();
}

double final_stderr(const metrics::AggregateSeries& agg) {
  return agg.stderr_mean.empty() ? 0.0 : agg.stderr_mean.back();
}

constexpr std::array<const char*, 10> kCounterNames{
    "floods",          "flood_rejected", "nuisance_flips",
    "credit_transfers", "presence_flips", "adv_credit_mb",
    "stream_started",  "stream_finished", "pieces_on_time",
    "deadline_misses"};

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  bench::banner("abl_adversary_sweep",
                "A13 — Fig. 6 scenario vs the adversary plane: ranking "
                "quality and bootstrap vs adversary fraction, five "
                "strategies, download + streaming workloads");
  const std::size_t replicas =
      smoke ? 1 : bench::ablation_replica_count();
  const auto traces = bench::paper_dataset(replicas);
  const std::span<const double> fractions =
      smoke ? std::span<const double>(kSmokeFractions)
            : std::span<const double>(kFractions);

  util::CsvWriter csv("abl_adversary_sweep.csv");
  std::vector<std::string> header{"strategy",       "workload",
                                  "frac",           "agents",
                                  "final_correct",  "final_correct_stderr",
                                  "bootstrap",      "bootstrap_stderr"};
  for (const char* name : kCounterNames) header.emplace_back(name);
  header.emplace_back("miss_rate");
  csv.write_row(header);

  std::printf("\n%-10s %-9s %5s %6s  %13s  %9s  %7s %7s %9s\n", "strategy",
              "workload", "frac", "agents", "final_correct", "bootstrap",
              "floods", "flips", "misses");
  for (const bool streaming : {false, true}) {
    const char* workload = streaming ? "streaming" : "download";
    for (const adversary::StrategyKind kind : kStrategies) {
      const char* strategy = adversary::to_string(kind);
      for (const double frac : fractions) {
        const auto results = core::run_replicas(
            traces,
            [kind, frac, streaming](const trace::Trace& tr,
                                    std::size_t index) {
              return run_replica(tr, index, kind, frac, streaming);
            });
        const auto correct = core::aggregate_named(results, "correct");
        const auto bootstrap = core::aggregate_named(results, "bootstrap");
        const auto agents = static_cast<std::size_t>(
            frac * static_cast<double>(traces.front().peers.size()) + 0.5);

        csv.field(strategy).field(workload);
        csv.field(util::format_double(frac, 3));
        csv.field(static_cast<double>(agents));
        csv.field(final_mean(correct)).field(final_stderr(correct));
        csv.field(final_mean(bootstrap)).field(final_stderr(bootstrap));
        double floods = 0, flips = 0, on_time = 0, misses = 0;
        for (const char* name : kCounterNames) {
          const double mean =
              final_mean(core::aggregate_named(results, name));
          csv.field(mean);
          if (std::strcmp(name, "floods") == 0) floods = mean;
          if (std::strcmp(name, "nuisance_flips") == 0) flips = mean;
          if (std::strcmp(name, "pieces_on_time") == 0) on_time = mean;
          if (std::strcmp(name, "deadline_misses") == 0) misses = mean;
        }
        const double consumed = on_time + misses;
        const double miss_rate = consumed > 0.0 ? misses / consumed : 0.0;
        csv.field(miss_rate);
        csv.end_row();
        std::printf("%-10s %-9s %5g %6zu  %13.3f  %9.3f  %7.0f %7.0f %9.0f\n",
                    strategy, workload, frac, agents, final_mean(correct),
                    final_mean(bootstrap), floods, flips, misses);
      }
    }
  }
  std::printf("\n(frac=0 rows run with an empty roster — the plane is never "
              "constructed and the row is the workload's golden baseline)\n"
              "csv written: abl_adversary_sweep.csv\n");
  return 0;
}
