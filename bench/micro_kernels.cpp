// P1 — microbenchmarks of the hot kernels (google-benchmark).
//
// These are the operations the discrete-event runs execute millions of
// times; keeping them fast is what makes the 7-day × 100-peer experiments
// tractable on one core.
#include <benchmark/benchmark.h>

#include <memory>
#include <vector>

#include "bartercast/maxflow.hpp"
#include "bartercast/protocol.hpp"
#include "bartercast/subjective_graph.hpp"
#include "bt/ledger.hpp"
#include "bt/piece_picker.hpp"
#include "bt/sharded_log_ledger.hpp"
#include "bt/swarm.hpp"
#include "bt/transfer_ledger.hpp"
#include "core/node.hpp"
#include "core/runner.hpp"
#include "crypto/schnorr.hpp"
#include "trace/generator.hpp"
#include "metrics/cev.hpp"
#include "sim/event_queue.hpp"
#include "sim/shard_kernel.hpp"
#include "telemetry/telemetry.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"
#include "vote/agent.hpp"
#include "vote/ballot_box.hpp"
#include "vote/voxpopuli.hpp"

namespace {

using namespace tribvote;

void BM_RngNextBelow(benchmark::State& state) {
  util::Rng rng(1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rng.next_below(1000));
  }
}
BENCHMARK(BM_RngNextBelow);

void BM_EventQueueSchedulePop(benchmark::State& state) {
  const auto batch = static_cast<std::size_t>(state.range(0));
  util::Rng rng(2);
  for (auto _ : state) {
    sim::EventQueue queue;
    for (std::size_t i = 0; i < batch; ++i) {
      (void)queue.schedule(static_cast<Time>(rng.next_below(10000)), [] {});
    }
    while (!queue.empty()) queue.pop();
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(batch));
}
BENCHMARK(BM_EventQueueSchedulePop)->Arg(256)->Arg(4096);

void BM_SchnorrSign(benchmark::State& state) {
  util::Rng rng(3);
  const crypto::KeyPair keys = crypto::generate_keypair(rng);
  std::uint64_t msg = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::sign(keys, ++msg, rng));
  }
}
BENCHMARK(BM_SchnorrSign);

void BM_SchnorrVerify(benchmark::State& state) {
  util::Rng rng(4);
  const crypto::KeyPair keys = crypto::generate_keypair(rng);
  const crypto::Signature sig = crypto::sign(keys, 42, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(crypto::verify(keys.pub, 42, sig));
  }
}
BENCHMARK(BM_SchnorrVerify);

bartercast::SubjectiveGraph random_graph(std::size_t nodes,
                                         std::size_t edges,
                                         std::uint64_t seed) {
  bartercast::SubjectiveGraph g;
  util::Rng rng(seed);
  for (std::size_t e = 0; e < edges; ++e) {
    const auto a = static_cast<PeerId>(rng.next_below(nodes));
    const auto b = static_cast<PeerId>(rng.next_below(nodes));
    if (a != b) g.update_direct(a, b, rng.next_double(1, 100), 0);
  }
  return g;
}

void BM_MaxflowTwoHopClosedForm(benchmark::State& state) {
  const auto g =
      random_graph(100, static_cast<std::size_t>(state.range(0)), 5);
  util::Rng rng(6);
  for (auto _ : state) {
    const auto s = static_cast<PeerId>(rng.next_below(100));
    const auto t = static_cast<PeerId>(rng.next_below(100));
    benchmark::DoNotOptimize(bartercast::max_flow(g, s, t, 2));
  }
}
BENCHMARK(BM_MaxflowTwoHopClosedForm)->Arg(400)->Arg(2000);

void BM_MaxflowEdmondsKarp3Hop(benchmark::State& state) {
  const auto g =
      random_graph(100, static_cast<std::size_t>(state.range(0)), 7);
  util::Rng rng(8);
  for (auto _ : state) {
    const auto s = static_cast<PeerId>(rng.next_below(100));
    const auto t = static_cast<PeerId>(rng.next_below(100));
    benchmark::DoNotOptimize(bartercast::max_flow(g, s, t, 3));
  }
}
BENCHMARK(BM_MaxflowEdmondsKarp3Hop)->Arg(400)->Arg(2000);

/// A gossip-converged population of BarterCast agents over a random
/// transfer matrix, as the CEV measurements see it.
struct BarterPopulation {
  bt::TransferLedger ledger;
  std::vector<std::unique_ptr<bartercast::BarterAgent>> agents;
  std::vector<const bartercast::BarterAgent*> ptrs;

  BarterPopulation(std::size_t n, std::size_t transfers, std::uint64_t seed)
      : ledger(n) {
    util::Rng rng(seed);
    for (std::size_t e = 0; e < transfers; ++e) {
      const auto a = static_cast<PeerId>(rng.next_below(n));
      const auto b = static_cast<PeerId>(rng.next_below(n));
      if (a != b) {
        ledger.add_transfer(a, b, rng.next_double(1, 100) * 1024 * 1024);
      }
    }
    for (PeerId i = 0; i < n; ++i) {
      agents.push_back(std::make_unique<bartercast::BarterAgent>(
          i, bartercast::BarterConfig{}));
    }
    for (PeerId i = 0; i < n; ++i) {
      agents[i]->sync_direct(ledger, 0);
      for (PeerId j = 0; j < n; ++j) {
        if (i != j) agents[i]->receive(j, agents[j]->outgoing_records(ledger, 0));
      }
    }
    for (const auto& a : agents) ptrs.push_back(a.get());
  }

  [[nodiscard]] std::span<const bartercast::BarterAgent* const> span() const {
    return {ptrs.data(), ptrs.size()};
  }
};

/// Uncached baseline: scratch max-flow per query, what contribution_of cost
/// before the version cache.
void BM_ContributionOf_cold(benchmark::State& state) {
  const BarterPopulation pop(100, 3000, 42);
  const bartercast::BarterAgent& agent = *pop.agents[0];
  util::Rng rng(6);
  for (auto _ : state) {
    const auto j = static_cast<PeerId>(1 + rng.next_below(99));
    benchmark::DoNotOptimize(
        bartercast::max_flow(agent.graph(), j, agent.self(), 2));
  }
}
BENCHMARK(BM_ContributionOf_cold);

/// Memoized path on an unchanged graph: O(1) hash lookup per query.
void BM_ContributionOf_warm(benchmark::State& state) {
  const BarterPopulation pop(100, 3000, 42);
  const bartercast::BarterAgent& agent = *pop.agents[0];
  for (PeerId j = 0; j < 100; ++j) {
    benchmark::DoNotOptimize(agent.contribution_of(j));  // warm the cache
  }
  util::Rng rng(6);
  for (auto _ : state) {
    const auto j = static_cast<PeerId>(1 + rng.next_below(99));
    benchmark::DoNotOptimize(agent.contribution_of(j));
  }
}
BENCHMARK(BM_ContributionOf_warm);

/// Uncached CEV baseline: all ordered pairs, scratch max-flow each — the
/// pre-cache cost of one CEV sample on a warm (unchanged) graph.
void BM_CEV_uncached(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const BarterPopulation pop(n, 30 * n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(metrics::collective_experience_value(
        n, [&](PeerId i, PeerId j) {
          return bartercast::max_flow(pop.agents[i]->graph(), j, i, 2) >= 5.0;
        }));
  }
}
BENCHMARK(BM_CEV_uncached)->Arg(50)->Arg(100)->Unit(benchmark::kMicrosecond);

/// Batched + memoized CEV on a warm graph (the per-epoch steady state: the
/// acceptance target is ≥5× over BM_CEV_uncached at n=100).
void BM_CEV(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const BarterPopulation pop(n, 30 * n, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        metrics::collective_experience_value(pop.span(), 5.0));
  }
}
BENCHMARK(BM_CEV)->Arg(50)->Arg(100)->Unit(benchmark::kMicrosecond);

/// Same with the per-sink columns fanned out across a thread pool.
void BM_CEV_pooled(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const BarterPopulation pop(n, 30 * n, 42);
  util::ThreadPool pool(4);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        metrics::collective_experience_value(pop.span(), 5.0, pool));
  }
}
BENCHMARK(BM_CEV_pooled)->Arg(100)->Unit(benchmark::kMicrosecond);

/// First CEV after a graph mutation: columns rebuilt from the CSR snapshot
/// (the cold half of the per-epoch cost).
void BM_CEV_after_mutation(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  BarterPopulation pop(n, 30 * n, 42);
  std::uint64_t tick = 0;
  for (auto _ : state) {
    state.PauseTiming();
    // One new transfer, gossiped to everyone: every sink's column and the
    // affected cache entries go stale.
    pop.ledger.add_transfer(0, 1, static_cast<double>(++tick) * 1024 * 1024);
    pop.agents[0]->sync_direct(pop.ledger, static_cast<Time>(tick));
    pop.agents[1]->sync_direct(pop.ledger, static_cast<Time>(tick));
    const auto report =
        pop.agents[0]->outgoing_records(pop.ledger, static_cast<Time>(tick));
    for (auto& agent : pop.agents) agent->receive(0, report);
    state.ResumeTiming();
    benchmark::DoNotOptimize(
        metrics::collective_experience_value(pop.span(), 5.0));
  }
}
BENCHMARK(BM_CEV_after_mutation)->Arg(100)->Unit(benchmark::kMicrosecond);

/// Population for the round-throughput benchmark: honest nodes that each
/// cast one vote (so vote-list messages are non-empty) under a zero
/// experience threshold (so receives take the full merge path).
struct RoundPopulation {
  core::ScenarioConfig config;
  std::vector<std::unique_ptr<core::Node>> nodes;

  explicit RoundPopulation(std::size_t n, bool gossip_cache = true) {
    config.experience_threshold_mb = 0.0;
    config.vote.gossip_cache = gossip_cache;
    util::Rng rng(21);
    nodes.reserve(n);
    for (PeerId id = 0; id < n; ++id) {
      nodes.push_back(std::make_unique<core::Node>(
          id, core::NodeRole::kHonest, config, rng.derive(id)));
      nodes.back()->vote().cast_vote(
          id % 16, id % 3 == 0 ? Opinion::kNegative : Opinion::kPositive, 0);
    }
  }
};

/// One full BallotBox/VoxPopuli gossip round over a 10⁴-node population
/// through the sharded event kernel, at shards ∈ {1, 2, 4, 8}. Pairing is
/// serial and identical across shard counts; the measured quantity is the
/// exchange fan-out. items/sec == nodes/sec (the ≥10⁵-peer scaling metric).
/// Speedup over the shards=1 row requires as many physical cores as shards.
/// cache:1 runs with the vote-history cache + delta gossip (the default);
/// cache:0 is the legacy select-sign-full-message path on every leg.
void BM_RoundThroughput(benchmark::State& state) {
  constexpr std::size_t kNodes = 10'000;
  const auto shards = static_cast<std::size_t>(state.range(0));
  RoundPopulation pop(kNodes, state.range(1) != 0);
  util::ThreadPool pool(shards);
  sim::ShardKernel kernel(kNodes, shards, shards > 1 ? &pool : nullptr);
  util::Rng rng(22);
  std::vector<PeerId> order(kNodes);
  for (std::size_t i = 0; i < kNodes; ++i) order[i] = static_cast<PeerId>(i);
  Time now = 0;
  for (auto _ : state) {
    // Serial pairing phase, as ScenarioRunner::pair_round performs it.
    rng.shuffle(order);
    std::vector<sim::Encounter> encounters;
    encounters.reserve(kNodes);
    for (const PeerId i : order) {
      const auto j = static_cast<PeerId>(rng.next_below(kNodes));
      if (j == i) continue;
      encounters.push_back(
          {static_cast<std::uint32_t>(encounters.size()), i, j});
    }
    kernel.run_round(encounters,
                     [&](const sim::Encounter& e, std::size_t) {
                       vote::vote_exchange(pop.nodes[e.initiator]->vote(),
                                           pop.nodes[e.responder]->vote(),
                                           now);
                     });
    now += 60;
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kNodes));
}
BENCHMARK(BM_RoundThroughput)
    ->ArgNames({"shards", "cache"})
    ->Args({1, 1})
    ->Args({2, 1})
    ->Args({4, 1})
    ->Args({8, 1})
    ->Args({1, 0})
    ->Args({4, 0})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// A pair of warmed-up vote agents for the gossip-path microbenchmarks:
/// each holds `votes` deterministic-selection entries (≤ one message), and
/// one full exchange has already run so the counterpart memory is primed.
struct GossipPair {
  std::vector<crypto::KeyPair> keys;
  std::vector<std::unique_ptr<vote::VoteAgent>> agents;

  GossipPair(bool cache, std::size_t votes) {
    util::Rng root(33);
    vote::VoteConfig config;
    config.gossip_cache = cache;
    for (PeerId id = 0; id < 2; ++id) {
      util::Rng krng = root.derive(100 + id);
      keys.push_back(crypto::generate_keypair(krng));
    }
    for (PeerId id = 0; id < 2; ++id) {
      agents.push_back(std::make_unique<vote::VoteAgent>(
          id, keys[id], config, [](PeerId) { return true; },
          root.derive(200 + id)));
      for (ModeratorId m = 0; m < votes; ++m) {
        agents[id]->cast_vote(static_cast<ModeratorId>(100 * id) + m,
                              Opinion::kPositive, static_cast<Time>(m));
      }
    }
    (void)vote::gossip_send(*agents[0], *agents[1], 1000);
    (void)vote::gossip_send(*agents[1], *agents[0], 1000);
  }
};

/// Per-encounter sender cost of outgoing_votes on an unchanged ballot
/// paper, cache off (arg 0: select + Schnorr-sign every call) vs on
/// (arg 1: one signature per vote-list version, then O(1) cache hits).
/// The signatures_per_build counter is the ≥2× signing-reduction evidence:
/// 1.0 cold vs ~0 warm.
void BM_OutgoingVotes(benchmark::State& state) {
  GossipPair pair(state.range(0) != 0, 40);
  vote::VoteAgent& agent = *pair.agents[0];
  const vote::GossipStats before = agent.gossip_stats();
  for (auto _ : state) {
    benchmark::DoNotOptimize(agent.outgoing_votes(2000));
  }
  const vote::GossipStats after = agent.gossip_stats();
  const auto builds = static_cast<double>(after.builds - before.builds);
  state.counters["signatures_per_build"] =
      static_cast<double>(after.signatures - before.signatures) /
      (builds > 0 ? builds : 1.0);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_OutgoingVotes)->ArgNames({"cache"})->Arg(0)->Arg(1);

/// Wire bytes per steady-state gossip leg: cache off (arg 0) re-sends the
/// full signed vote list every encounter; cache on (arg 1) opens with a
/// digest and — once the counterpart holds everything — closes digest-only.
/// bytes_per_leg and delta_fraction are the BENCH_micro gossip-bytes rows.
void BM_GossipBytes(benchmark::State& state) {
  GossipPair pair(state.range(0) != 0, 40);
  std::uint64_t bytes = 0, deltas = 0, legs = 0;
  Time now = 2000;
  for (auto _ : state) {
    const vote::GossipLegOutcome a =
        vote::gossip_send(*pair.agents[0], *pair.agents[1], now);
    const vote::GossipLegOutcome b =
        vote::gossip_send(*pair.agents[1], *pair.agents[0], now);
    bytes += a.bytes + b.bytes;
    deltas += (a.delta ? 1u : 0u) + (b.delta ? 1u : 0u);
    legs += 2;
    now += 60;
    benchmark::DoNotOptimize(a.result);
    benchmark::DoNotOptimize(b.result);
  }
  state.counters["bytes_per_leg"] =
      static_cast<double>(bytes) / static_cast<double>(legs > 0 ? legs : 1);
  state.counters["delta_fraction"] =
      static_cast<double>(deltas) / static_cast<double>(legs > 0 ? legs : 1);
  state.SetItemsProcessed(static_cast<std::int64_t>(legs));
}
BENCHMARK(BM_GossipBytes)->ArgNames({"cache"})->Arg(0)->Arg(1);

void BM_BallotBoxMerge(benchmark::State& state) {
  std::vector<vote::VoteEntry> votes;
  for (ModeratorId m = 0; m < 50; ++m) {
    votes.push_back(vote::VoteEntry{m, Opinion::kPositive, 0});
  }
  for (auto _ : state) {
    vote::BallotBox box(100);
    for (PeerId voter = 0; voter < 30; ++voter) {
      box.merge(voter, votes, static_cast<Time>(voter));
    }
    benchmark::DoNotOptimize(box.unique_voters());
  }
}
BENCHMARK(BM_BallotBoxMerge);

void BM_BallotBoxTally(benchmark::State& state) {
  util::Rng rng(10);
  vote::BallotBox box(100);
  for (PeerId voter = 0; voter < 30; ++voter) {
    for (ModeratorId m = 0; m < 10; ++m) {
      box.merge(voter,
                {vote::VoteEntry{m,
                                 rng.next_bool(0.5) ? Opinion::kPositive
                                                    : Opinion::kNegative,
                                 0}},
                0);
    }
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(box.tally());
  }
}
BENCHMARK(BM_BallotBoxTally);

void BM_VoxPopuliMerge(benchmark::State& state) {
  util::Rng rng(11);
  vote::VoxPopuliCache cache(10, 3);
  for (int i = 0; i < 10; ++i) {
    vote::RankedList list;
    list.push_back(static_cast<ModeratorId>(1 + rng.next_below(8)));
    list.push_back(static_cast<ModeratorId>(10 + rng.next_below(8)));
    list.push_back(static_cast<ModeratorId>(20 + rng.next_below(8)));
    cache.add_list(list);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(cache.merged_ranking());
  }
}
BENCHMARK(BM_VoxPopuliMerge);

void BM_PiecePickerRarest(benchmark::State& state) {
  const std::size_t pieces = 700;
  bt::PiecePicker picker(pieces);
  util::Rng rng(12);
  bt::Bitfield uploader(pieces), downloader(pieces);
  std::vector<bool> in_flight(pieces, false);
  for (std::size_t i = 0; i < pieces; ++i) {
    for (std::uint64_t a = 0; a < rng.next_below(6); ++a) {
      picker.add_have(i);
    }
    if (rng.next_bool(0.7)) uploader.set(i);
    if (rng.next_bool(0.4)) downloader.set(i);
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        picker.pick(uploader, downloader, in_flight, rng));
  }
}
BENCHMARK(BM_PiecePickerRarest);

void BM_SwarmTick(benchmark::State& state) {
  const auto members = static_cast<PeerId>(state.range(0));
  std::vector<trace::PeerProfile> peers;
  for (PeerId id = 0; id < members; ++id) {
    trace::PeerProfile p;
    p.id = id;
    p.upload_kbps = 96;
    p.download_kbps = 768;
    peers.push_back(p);
  }
  trace::SwarmSpec spec;
  spec.size_mb = 256;
  spec.piece_kb = 1024;
  spec.initial_seeder = 0;
  bt::TransferLedger ledger(members);
  bt::BandwidthAllocator bandwidth(std::vector<double>(members, 96.0),
                                   std::vector<double>(members, 768.0));
  bt::Swarm swarm(spec, peers, ledger, bandwidth, util::Rng(13));
  swarm.add_member(0, true);
  for (PeerId p = 1; p < members; ++p) swarm.add_member(p, false);
  for (auto _ : state) {
    swarm.tick(10.0);
  }
}
BENCHMARK(BM_SwarmTick)->Arg(8)->Arg(32);

/// Ledger backend throughput, args = {peers, backend, mix} with backend
/// 0 = map, 1 = sharded_log (4 shards). items/sec == transfers/sec.
///
/// mix:0 times the append path alone — the cost add_transfer puts on the
/// tick's critical path; the sharded backend's compaction is drained
/// outside the timer, the way production defers it to round barriers.
/// mix:1 times the whole lifecycle (append + compaction + a point/total
/// query mix), the honest total-work comparison.
///
/// The acceptance target is the mix:0 sharded_log row ≥2× the map row at
/// 10⁶ peers: a map append is ~6 dependent cache misses (two per-peer hash
/// maps plus four scattered arrays), a log append is two sequential
/// vector pushes.
void BM_LedgerThroughput(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const auto backend = static_cast<bt::LedgerBackend>(state.range(1));
  const bool full_mix = state.range(2) != 0;
  constexpr std::size_t kBatch = 1 << 16;
  constexpr std::size_t kQueries = 1024;
  // Pre-generated stream (RNG cost out of the measured loop); reusing it
  // every iteration keeps the touched pair set — and so the map backend's
  // node count — stable after the first iteration.
  struct Xfer {
    PeerId from, to;
    double bytes;
  };
  std::vector<Xfer> stream(kBatch);
  util::Rng rng(31);
  for (auto& x : stream) {
    x.from = static_cast<PeerId>(rng.next_below(n));
    x.to = static_cast<PeerId>(rng.next_below(n));
    if (x.to == x.from) x.to = static_cast<PeerId>((x.to + 1) % n);
    x.bytes = rng.next_double(0.1, 10.0) * 1024 * 1024;
  }
  // For the append-path rows the sharded log gets a threshold above the
  // batch size so no compaction lands inside the timed region.
  std::unique_ptr<bt::Ledger> ledger;
  if (backend == bt::LedgerBackend::kShardedLog && !full_mix) {
    ledger = std::make_unique<bt::ShardedLogLedger>(n, /*shards=*/4,
                                                    /*compact_threshold=*/
                                                    4 * kBatch);
  } else {
    ledger = bt::make_ledger(backend, n, /*shards=*/4);
  }
  util::Rng query_rng(32);
  for (auto _ : state) {
    for (const Xfer& x : stream) {
      ledger->add_transfer(x.from, x.to, x.bytes);
    }
    if (full_mix) {
      ledger->flush();
      double acc = 0;
      for (std::size_t q = 0; q < kQueries; ++q) {
        const auto p = static_cast<PeerId>(query_rng.next_below(n));
        acc += ledger->total_uploaded_mb(p);
        acc += ledger->uploaded_mb(p, static_cast<PeerId>((p + 1) % n));
      }
      benchmark::DoNotOptimize(acc);
    } else {
      state.PauseTiming();
      ledger->flush();  // barrier-side compaction, untimed
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kBatch));
}
BENCHMARK(BM_LedgerThroughput)
    ->ArgNames({"peers", "backend", "mix"})
    ->Args({10'000, 0, 0})
    ->Args({10'000, 1, 0})
    ->Args({100'000, 0, 0})
    ->Args({100'000, 1, 0})
    ->Args({1'000'000, 0, 0})
    ->Args({1'000'000, 1, 0})
    ->Args({10'000, 0, 1})
    ->Args({10'000, 1, 1})
    ->Args({100'000, 0, 1})
    ->Args({100'000, 1, 1})
    ->Args({1'000'000, 0, 1})
    ->Args({1'000'000, 1, 1})
    ->Unit(benchmark::kMillisecond);

/// Cost of the telemetry hot path per instrumented operation, at each mode:
/// arg 0 = off (null handles — the price every run pays), 1 = counters
/// (lane-local adds + a histogram observe), 2 = trace (adds plus a scoped
/// span recording into the trace buffer). One "op" is a representative
/// protocol step: one counter add, one histogram observe, one span.
void BM_TelemetryOverhead(benchmark::State& state) {
  const auto mode = static_cast<telemetry::TelemetryMode>(state.range(0));
  telemetry::TelemetryConfig config;
  config.mode = mode;
  std::unique_ptr<telemetry::Telemetry> tel;
  telemetry::Counter counter;
  telemetry::Histogram histogram;
  if (config.enabled()) {
    tel = std::make_unique<telemetry::Telemetry>(config, /*lanes=*/1);
    const auto cid = tel->registry().counter("bench.ops");
    const auto hid =
        tel->registry().histogram("bench.size", {1.0, 2.0, 5.0, 10.0});
    counter = telemetry::Counter(&tel->registry(), cid);
    histogram = telemetry::Histogram(&tel->registry(), hid);
  }
  telemetry::Telemetry* handle = tel.get();
  std::uint64_t n = 0;
  for (auto _ : state) {
    {
      telemetry::Span span(handle, "bench.op");
      counter.add();
      histogram.observe(static_cast<double>(n % 12));
      span.set_arg(n);
    }
    ++n;
    if (handle != nullptr && handle->tracing() &&
        handle->trace().size() >= (1u << 16)) {
      state.PauseTiming();
      handle->trace().clear();  // keep the buffer from growing unboundedly
      state.ResumeTiming();
    }
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_TelemetryOverhead)->Arg(0)->Arg(1)->Arg(2);

/// End-to-end scenario cost with the adversary plane off vs on. Arg 0 runs
/// an empty roster: the engine is never constructed and every round pays
/// exactly one null-pointer branch — this row must match a build without
/// the plane. Arg 1 drives an attrition flood, arg 2 a mixed
/// attrition+sybil roster (serial hook work: presence draws, floods,
/// ledger credit). One "item" is a full simulated day of one small
/// population.
void BM_AdversaryOverhead(benchmark::State& state) {
  trace::GeneratorParams params;
  params.n_peers = 30;
  params.n_swarms = 3;
  params.duration = kDay;
  const trace::Trace tr = trace::generate_trace(params, 17);
  core::ScenarioConfig config;
  std::string error;
  const char* specs[] = {"", "attrition:n=6,rate=4",
                         "attrition:n=6,rate=4;sybil:n=8,region=4"};
  if (!adversary::parse_adversary_spec(
          specs[static_cast<std::size_t>(state.range(0))], config.adversary,
          &error)) {
    state.SkipWithError(error.c_str());
    return;
  }
  for (auto _ : state) {
    core::ScenarioRunner runner(tr, config, 23);
    runner.run_until(tr.duration);
    benchmark::DoNotOptimize(runner.stats().vote_exchanges);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_AdversaryOverhead)
    ->ArgNames({"roster"})
    ->Arg(0)
    ->Arg(1)
    ->Arg(2)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
