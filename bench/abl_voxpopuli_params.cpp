// Ablation A3 — VoxPopuli parameters V_max and K (paper defaults: V_max =
// 10 cached top-K lists, K = 3).
//
// Fig. 8 scenario at 1× crowd. The cache majority-merges the last V_max
// top-K lists, and majority amplification cuts both ways: while colluders
// hold the majority of VoxPopuli answerers, a larger V_max *amplifies*
// pollution (more nodes see a colluder-majority cache); once honest
// answerers dominate, the same amplification speeds recovery. V_max = 1
// means believing the last peer asked — low peaks, but permanently noisy.
// Smaller K leaves less of the ranking for a lie to rewrite.
#include <cstdio>
#include <vector>

#include "attack_scenario.hpp"
#include "bench_common.hpp"

using namespace tribvote;

namespace {

constexpr std::size_t kCoreSize = 30;
constexpr Duration kHorizon = 2 * kDay;

struct Config {
  const char* label;
  std::size_t v_max;
  std::size_t k;
};

constexpr Config kConfigs[] = {
    {"Vmax=1,K=3", 1, 3},  {"Vmax=5,K=3", 5, 3},  {"Vmax=10,K=3", 10, 3},
    {"Vmax=20,K=3", 20, 3}, {"Vmax=10,K=1", 10, 1}, {"Vmax=10,K=5", 10, 5},
};

core::ReplicaResult run_replica(const trace::Trace& tr, std::size_t index,
                                const Config& cfg) {
  core::ScenarioConfig config;
  config.shards = bench::shard_count();
  config.ledger = bench::ledger_backend();
  config.faults = bench::fault_config();
  config.telemetry = bench::telemetry_config();
  config.vote.gossip_cache = bench::gossip_cache();
  config.vote.v_max = cfg.v_max;
  config.vote.k = cfg.k;
  config.attack.crowd_size = kCoreSize;
  config.attack.start = 0;
  config.attack.duty = 0.5;
  core::ScenarioRunner runner(tr, config, 0xA3 + index);
  const bench::AttackScenario scenario =
      bench::setup_attack_scenario(runner, kCoreSize);

  metrics::TimeSeries pollution;
  bench::sample_new_node_pollution(runner, scenario, 2 * kHour, pollution);
  runner.run_until(kHorizon);

  core::ReplicaResult result;
  result.series["pollution"] = std::move(pollution);
  return result;
}

}  // namespace

int main() {
  bench::banner("abl_voxpopuli_params",
                "A3 — V_max / K sensitivity of VoxPopuli pollution "
                "resistance (1x crowd)");
  const auto traces = bench::paper_dataset(bench::ablation_replica_count());

  std::printf("\n%14s  %8s  %8s  %8s  %8s\n", "config", "peak", "@12h",
              "@24h", "@48h");
  std::vector<std::pair<std::string, metrics::AggregateSeries>> out;
  for (const Config& cfg : kConfigs) {
    const auto results = core::run_replicas(
        traces, [&cfg](const trace::Trace& tr, std::size_t index) {
          return run_replica(tr, index, cfg);
        });
    const auto agg = core::aggregate_named(results, "pollution");
    double peak = 0;
    for (const double v : agg.mean) peak = std::max(peak, v);
    const auto at = [&agg](double h) {
      const auto idx = static_cast<std::size_t>(h / 2.0);
      return idx < agg.mean.size() ? agg.mean[idx] : -1.0;
    };
    std::printf("%14s  %8.3f  %8.3f  %8.3f  %8.3f\n", cfg.label, peak,
                at(12), at(24), at(48));
    out.emplace_back(cfg.label, agg);
  }
  bench::write_csv("abl_voxpopuli_params.csv", out);
  return 0;
}
