// Fig. 5 — Experience formation: Collective Experience Value over time for
// several experience thresholds T (paper §VI-A).
//
// A typical trace is replayed through the full stack; every hour the
// all-pairs BarterCast contribution matrix is sampled and the CEV computed
// for each T. The paper's reported anchors: with T = 5 MB roughly 20 % of
// ordered node pairs are experienced within ~12 hours; larger T shifts the
// curve right/down; some pairs never form experience (free-riders and
// rarely-present peers).
#include <array>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/runner.hpp"
#include "metrics/cev.hpp"

using namespace tribvote;

namespace {

constexpr std::array<double, 5> kThresholdsMb{1.0, 5.0, 10.0, 25.0, 50.0};

/// One replica: sample the contribution matrix hourly; return one CEV
/// series per threshold (thresholding is free once the matrix is known).
core::ReplicaResult run_replica(const trace::Trace& tr, std::size_t index) {
  core::ScenarioConfig config;
  config.shards = bench::shard_count();
  config.ledger = bench::ledger_backend();
  config.faults = bench::fault_config();
  config.telemetry = bench::telemetry_config();
  config.vote.gossip_cache = bench::gossip_cache();
  core::ScenarioRunner runner(tr, config, 0x515 + index);
  const std::size_t n = runner.trace_peer_count();

  std::array<metrics::TimeSeries, kThresholdsMb.size()> series;
  runner.sample_every(2 * kHour, [&](Time t) {
    std::array<std::size_t, kThresholdsMb.size()> edges{};
    for (PeerId i = 0; i < n; ++i) {
      // One batched column per sink serves every threshold (and is cached
      // against the graph version for the next sampling epoch).
      const auto& column = runner.node(i).barter().contribution_column(n);
      for (PeerId j = 0; j < n; ++j) {
        if (i == j) continue;
        const double f = column[j];
        for (std::size_t k = 0; k < kThresholdsMb.size(); ++k) {
          if (f >= kThresholdsMb[k]) ++edges[k];
        }
      }
    }
    const double pairs = static_cast<double>(n) * static_cast<double>(n - 1);
    for (std::size_t k = 0; k < kThresholdsMb.size(); ++k) {
      series[k].add(t, static_cast<double>(edges[k]) / pairs);
    }
  });
  runner.run_until(tr.duration);

  core::ReplicaResult result;
  for (std::size_t k = 0; k < kThresholdsMb.size(); ++k) {
    char name[32];
    std::snprintf(name, sizeof name, "cev_T%g", kThresholdsMb[k]);
    result.series[name] = std::move(series[k]);
  }
  return result;
}

}  // namespace

int main() {
  bench::banner("fig5_experience_formation",
                "Fig. 5 — CEV vs time for threshold values T (MB)");
  // The paper plots a typical trace; we additionally average over the
  // dataset so the CSV carries error bars.
  const auto traces = bench::paper_dataset(bench::replica_count());
  const auto results = core::run_replicas(traces, run_replica);

  std::vector<std::pair<std::string, metrics::AggregateSeries>> all;
  std::printf("\ntypical trace (replica 0), CEV at selected times:\n");
  std::printf("%10s", "T (MB)");
  for (const double h : {6.0, 12.0, 24.0, 48.0, 96.0, 168.0}) {
    std::printf("  %7.0fh", h);
  }
  std::printf("\n");
  for (const double t_mb : kThresholdsMb) {
    char name[32];
    std::snprintf(name, sizeof name, "cev_T%g", t_mb);
    const auto& typical = results.front().series.at(name);
    std::printf("%10g", t_mb);
    for (const double h : {6.0, 12.0, 24.0, 48.0, 96.0, 168.0}) {
      const auto idx = static_cast<std::size_t>(h / 2);  // 2 h grid
      std::printf("  %8.3f",
                  idx < typical.values.size() ? typical.values[idx] : -1.0);
    }
    std::printf("\n");
    all.emplace_back(name, core::aggregate_named(results, name));
  }

  // Paper anchor: T = 5 MB reaches ~20% of ordered pairs within ~12h.
  const auto& t5 = results.front().series.at("cev_T5");
  std::size_t hit = t5.values.size();
  for (std::size_t i = 0; i < t5.values.size(); ++i) {
    if (t5.values[i] >= 0.20) {
      hit = i;
      break;
    }
  }
  if (hit < t5.values.size()) {
    std::printf("\nT=5MB reaches CEV 0.20 at ~%.0fh (paper: ~12h)\n",
                to_hours(t5.times[hit]));
  } else {
    std::printf("\nT=5MB never reaches CEV 0.20 in this trace\n");
  }

  for (const auto& [name, agg] : all) {
    bench::print_series(name.c_str(), agg, /*stride=*/6);
  }
  bench::write_csv("fig5_experience_formation.csv", all);
  return 0;
}
