// Ablation A7 — vote-list selection policy (paper §V-A: "Nodes send a
// maximum of 50 votes, selecting them based on a recency and random policy.
// Experiments demonstrated that combining these policies produced
// acceptable performance [6].").
//
// Vote-layer-only simulation (no BitTorrent needed): N voters each hold a
// large ballot paper over M moderators with a planted ground-truth score
// profile, votes cast at staggered times. Peers exchange capped vote-list
// messages under each policy; we measure how well each node's ballot-box
// ranking correlates (Kendall tau) with the planted ground truth, and what
// fraction of moderators its sample covers.
//
// Expected outcome: pure-recent starves old moderators (poor coverage);
// pure-random is slow to propagate fresh opinion; the paper's hybrid does
// well on both — which is why it was chosen.
#include <cstdio>
#include <map>
#include <memory>
#include <vector>

#include "bench_common.hpp"
#include "crypto/schnorr.hpp"
#include "util/stats.hpp"
#include "vote/agent.hpp"

using namespace tribvote;

namespace {

constexpr std::size_t kVoters = 60;
constexpr std::size_t kModerators = 150;
constexpr int kRounds = 400;

struct Population {
  std::vector<crypto::KeyPair> keys;
  std::vector<std::unique_ptr<vote::VoteAgent>> agents;
};

Population build(vote::SelectionPolicy policy, std::uint64_t seed) {
  Population pop;
  util::Rng root(seed);
  vote::VoteConfig config;
  config.selection = policy;
  config.b_min = 1;
  config.b_max = 2000;  // large box: isolate the selection policy
  config.gossip_cache = bench::gossip_cache();
  pop.keys.reserve(kVoters);
  for (PeerId id = 0; id < kVoters; ++id) {
    util::Rng krng = root.derive(1000 + id);
    pop.keys.push_back(crypto::generate_keypair(krng));
  }
  for (PeerId id = 0; id < kVoters; ++id) {
    pop.agents.push_back(std::make_unique<vote::VoteAgent>(
        id, pop.keys[id], config, [](PeerId) { return true; },
        root.derive(2000 + id)));
  }
  // Planted opinions: moderator m is "good" iff m < kModerators/2; each
  // voter votes on every moderator, at time proportional to m (so
  // low-numbered moderators hold the OLD votes, high-numbered the recent).
  for (PeerId id = 0; id < kVoters; ++id) {
    for (ModeratorId m = 0; m < kModerators; ++m) {
      pop.agents[id]->cast_vote(m,
                                m < kModerators / 2 ? Opinion::kPositive
                                                    : Opinion::kNegative,
                                static_cast<Time>(m));
    }
  }
  return pop;
}

struct Outcome {
  double tau = 0;       // rank correlation with ground truth
  double coverage = 0;  // fraction of moderators present in the tally
};

Outcome evaluate(const Population& pop) {
  // Ground truth score: +1 for good moderators, -1 for bad.
  std::vector<double> truth(kModerators);
  for (ModeratorId m = 0; m < kModerators; ++m) {
    truth[m] = m < kModerators / 2 ? 1.0 : -1.0;
  }
  util::RunningStats tau_stats, cov_stats;
  for (const auto& agent : pop.agents) {
    const auto tally = agent->ballot_box().tally();
    std::vector<double> sampled(kModerators, 0.0);
    for (const auto& [m, t] : tally) {
      sampled[m] = vote::score(t, vote::RankMethod::kSum);
    }
    tau_stats.add(util::kendall_tau(sampled, truth));
    cov_stats.add(static_cast<double>(tally.size()) / kModerators);
  }
  return Outcome{tau_stats.mean(), cov_stats.mean()};
}

Outcome run(vote::SelectionPolicy policy, std::uint64_t seed) {
  Population pop = build(policy, seed);
  util::Rng pair_rng(seed ^ 0x5e1ec7);
  for (int round = 0; round < kRounds; ++round) {
    const auto i = static_cast<PeerId>(pair_rng.next_below(kVoters));
    auto j = static_cast<PeerId>(pair_rng.next_below(kVoters));
    while (j == i) j = static_cast<PeerId>(pair_rng.next_below(kVoters));
    vote::vote_exchange(*pop.agents[i], *pop.agents[j],
                        static_cast<Time>(kModerators + round));
  }
  return evaluate(pop);
}

}  // namespace

int main() {
  bench::banner("abl_vote_selection",
                "A7 — vote-list selection policy: recency+random (paper) vs "
                "pure-recent vs pure-random");
  const std::size_t replicas = bench::ablation_replica_count();

  std::printf("\n%16s  %12s  %12s\n", "policy", "kendall tau", "coverage");
  util::CsvWriter csv("abl_vote_selection.csv");
  csv.write_row({"policy", "kendall_tau", "tau_stderr", "coverage",
                 "coverage_stderr"});
  for (const auto& [label, policy] :
       {std::pair{"recency+random", vote::SelectionPolicy::kRecencyRandom},
        std::pair{"recent-only", vote::SelectionPolicy::kRecentOnly},
        std::pair{"random-only", vote::SelectionPolicy::kRandomOnly}}) {
    util::RunningStats tau, coverage;
    for (std::size_t r = 0; r < replicas; ++r) {
      const Outcome outcome = run(policy, bench::env_seed() + r);
      tau.add(outcome.tau);
      coverage.add(outcome.coverage);
    }
    std::printf("%16s  %12.4f  %12.4f\n", label, tau.mean(),
                coverage.mean());
    csv.field(label)
        .field(tau.mean())
        .field(tau.stderr_mean())
        .field(coverage.mean())
        .field(coverage.stderr_mean());
    csv.end_row();
  }
  std::printf("\ncsv written: abl_vote_selection.csv\n");
  return 0;
}
