// Fig. 8 — Spam attack by a collusive flash crowd (paper §VI-C).
//
// An experienced core of 30 nodes is pre-converged on honest moderator M1.
// A flash crowd of colluders — 1× and 2× the core size — arrives at t = 0
// promoting spam moderator M0: they answer every VoxPopuli request with a
// fabricated top-K list headed by M0. Colluders churn like honest peers, so
// what matters is the crowd size relative to the *online* core, exactly as
// the paper discusses.
//
// Reported series: the fraction of newly arrived normal nodes (non-core,
// non-colluder, already arrived) whose current top moderator is M0.
//
// Paper anchors: at 2× core size most new nodes are defeated for roughly
// the first 24 h, then recover as they gather B_min experienced votes; at
// 1× only a minority is ever defeated; below 1× (the extra 0.5× series)
// pollution stays near zero. The core itself is never polluted.
#include <cstdio>
#include <vector>

#include "attack_scenario.hpp"
#include "bench_common.hpp"

using namespace tribvote;

namespace {

constexpr std::size_t kCoreSize = 30;
constexpr Duration kHorizon = 4 * kDay;  // recovery fully visible

core::ReplicaResult run_replica(const trace::Trace& tr, std::size_t index,
                                std::size_t crowd_size) {
  core::ScenarioConfig config;
  config.shards = bench::shard_count();
  config.ledger = bench::ledger_backend();
  config.faults = bench::fault_config();
  config.telemetry = bench::telemetry_config();
  config.vote.gossip_cache = bench::gossip_cache();
  config.attack.crowd_size = crowd_size;
  config.attack.start = 0;
  config.attack.duty = 0.5;  // trace-like churn
  core::ScenarioRunner runner(tr, config, 0xF18 + index);
  const bench::AttackScenario scenario =
      bench::setup_attack_scenario(runner, kCoreSize);

  metrics::TimeSeries pollution;
  bench::sample_new_node_pollution(runner, scenario, kHour, pollution);
  // Also track core pollution (must stay zero) as an invariant check.
  metrics::TimeSeries core_pollution;
  runner.sample_every(6 * kHour, [&](Time t) {
    std::vector<vote::RankedList> rankings;
    for (const PeerId p : scenario.core) {
      if (runner.has_arrived(p, t)) rankings.push_back(runner.ranking_of(p));
    }
    core_pollution.add(
        t, metrics::pollution_fraction(rankings, scenario.m0));
  });
  runner.run_until(std::min<Time>(kHorizon, tr.duration));

  core::ReplicaResult result;
  result.series["pollution"] = std::move(pollution);
  result.series["core_pollution"] = std::move(core_pollution);
  return result;
}

}  // namespace

int main() {
  bench::banner("fig8_spam_attack",
                "Fig. 8 — proportion of newly arrived nodes ranking spam "
                "moderator M0 top (core=30; crowd 1x and 2x)");
  const auto traces = bench::paper_dataset(bench::replica_count());

  std::vector<std::pair<std::string, metrics::AggregateSeries>> out;
  for (const std::size_t crowd : {kCoreSize / 2, kCoreSize, 2 * kCoreSize}) {
    const auto results = core::run_replicas(
        traces, [crowd](const trace::Trace& tr, std::size_t index) {
          return run_replica(tr, index, crowd);
        });
    const auto agg = core::aggregate_named(results, "pollution");
    char label[48];
    std::snprintf(label, sizeof label, "crowd_%.1fx (%zu colluders)",
                  static_cast<double>(crowd) / kCoreSize, crowd);
    bench::print_series(label, agg, /*stride=*/3);

    double peak = 0.0;
    Time peak_t = 0, recovered_t = -1;
    for (std::size_t i = 0; i < agg.times.size(); ++i) {
      if (agg.mean[i] > peak) {
        peak = agg.mean[i];
        peak_t = agg.times[i];
      }
    }
    for (std::size_t i = 0; i < agg.times.size(); ++i) {
      if (agg.times[i] > peak_t && agg.mean[i] < 0.1) {
        recovered_t = agg.times[i];
        break;
      }
    }
    std::printf("peak pollution %.2f at %.0fh; below 0.10 again at %s\n",
                peak, to_hours(peak_t),
                recovered_t >= 0
                    ? (std::to_string(static_cast<long long>(
                           to_hours(recovered_t))) + "h").c_str()
                    : "never (within horizon)");

    const auto core_agg = core::aggregate_named(results, "core_pollution");
    double core_max = 0.0;
    for (const double v : core_agg.mean) core_max = std::max(core_max, v);
    std::printf("core pollution max %.3f (must be 0 — experience holds)\n",
                core_max);

    char name[24];
    std::snprintf(name, sizeof name, "crowd_%.1fx",
                  static_cast<double>(crowd) / kCoreSize);
    out.emplace_back(name, agg);
  }
  bench::write_csv("fig8_spam_attack.csv", out);
  return 0;
}
