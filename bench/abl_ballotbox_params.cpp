// Ablation A2 — BallotBox parameters B_min and B_max (paper §V-A/§V-C
// defaults: B_min = 5, B_max = 100).
//
// Fig. 6 scenario, varying one parameter at a time. B_min trades bootstrap
// speed against sample quality (lower B_min = nodes trust tiny samples
// sooner); B_max bounds the sample a node can accumulate (smaller B_max =
// noisier tallies, larger = slower turnover of stale votes).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/runner.hpp"
#include "metrics/ordering.hpp"
#include "trace/analyzer.hpp"

using namespace tribvote;

namespace {

constexpr Duration kHorizon = 3 * kDay;

struct Config {
  const char* label;
  std::size_t b_min;
  std::size_t b_max;
};

constexpr Config kConfigs[] = {
    {"Bmin=2,Bmax=100", 2, 100},  {"Bmin=5,Bmax=100", 5, 100},
    {"Bmin=15,Bmax=100", 15, 100}, {"Bmin=5,Bmax=25", 5, 25},
    {"Bmin=5,Bmax=400", 5, 400},
};

core::ReplicaResult run_replica(const trace::Trace& tr, std::size_t index,
                                const Config& cfg) {
  core::ScenarioConfig config;
  config.shards = bench::shard_count();
  config.ledger = bench::ledger_backend();
  config.faults = bench::fault_config();
  config.telemetry = bench::telemetry_config();
  config.vote.gossip_cache = bench::gossip_cache();
  config.vote.b_min = cfg.b_min;
  config.vote.b_max = cfg.b_max;
  core::ScenarioRunner runner(tr, config, 0xA2 + index);

  const auto firsts = trace::earliest_arrivals(tr, 3);
  const ModeratorId m1 = firsts[0], m2 = firsts[1], m3 = firsts[2];
  runner.publish_moderation(m1, 10 * kMinute, "good");
  runner.publish_moderation(m2, 10 * kMinute, "plain");
  runner.publish_moderation(m3, 10 * kMinute, "spam");
  util::Rng pick(0xB2 + index);
  const auto chosen =
      pick.sample_indices(tr.peers.size(), tr.peers.size() / 5);
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    const auto voter = static_cast<PeerId>(chosen[i]);
    if (voter == m1 || voter == m2 || voter == m3) continue;
    runner.script_vote_on_receipt(
        voter, i % 2 == 0 ? m1 : m3,
        i % 2 == 0 ? Opinion::kPositive : Opinion::kNegative);
  }

  const std::vector<ModeratorId> expected{m1, m2, m3};
  metrics::TimeSeries series;
  runner.sample_every(3 * kHour, [&](Time t) {
    std::vector<vote::RankedList> rankings;
    for (PeerId p = 0; p < tr.peers.size(); ++p) {
      if (p == m1 || p == m2 || p == m3) continue;
      rankings.push_back(runner.ranking_of(p));
    }
    series.add(t, metrics::correct_ordering_fraction(
                      rankings, std::span<const ModeratorId>(expected)));
  });
  runner.run_until(kHorizon);

  core::ReplicaResult result;
  result.series["correct"] = std::move(series);
  return result;
}

}  // namespace

int main() {
  bench::banner("abl_ballotbox_params",
                "A2 — B_min / B_max sensitivity of sampling accuracy and "
                "bootstrap delay");
  const auto traces = bench::paper_dataset(bench::ablation_replica_count());

  std::printf("\n%18s  %8s  %8s  %8s  %8s\n", "config", "@12h", "@24h",
              "@48h", "@72h");
  std::vector<std::pair<std::string, metrics::AggregateSeries>> out;
  for (const Config& cfg : kConfigs) {
    const auto results = core::run_replicas(
        traces, [&cfg](const trace::Trace& tr, std::size_t index) {
          return run_replica(tr, index, cfg);
        });
    const auto agg = core::aggregate_named(results, "correct");
    const auto at = [&agg](double h) {
      const auto idx = static_cast<std::size_t>(h / 3.0);
      return idx < agg.mean.size() ? agg.mean[idx] : -1.0;
    };
    std::printf("%18s  %8.3f  %8.3f  %8.3f  %8.3f\n", cfg.label, at(12),
                at(24), at(48), at(72));
    out.emplace_back(cfg.label, agg);
  }
  bench::write_csv("abl_ballotbox_params.csv", out);
  return 0;
}
