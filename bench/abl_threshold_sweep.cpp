// Ablation A1 — experience threshold T beyond Fig. 5.
//
// For a wide sweep of T: the final CEV after 7 days and the time for the
// CEV to reach 10 % / 20 % / 40 % of ordered pairs. Quantifies the paper's
// trade-off: lower T admits voters sooner (faster bootstrap) but cheapens
// the cost of a fake identity; higher T delays honest newcomers.
#include <array>
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/runner.hpp"

using namespace tribvote;

namespace {

constexpr std::array<double, 7> kThresholds{0.5, 1, 2, 5, 10, 25, 50};

core::ReplicaResult run_replica(const trace::Trace& tr, std::size_t index) {
  core::ScenarioConfig config;
  config.shards = bench::shard_count();
  config.ledger = bench::ledger_backend();
  config.faults = bench::fault_config();
  config.telemetry = bench::telemetry_config();
  config.vote.gossip_cache = bench::gossip_cache();
  core::ScenarioRunner runner(tr, config, 0xA1 + index);
  const std::size_t n = runner.trace_peer_count();

  std::array<metrics::TimeSeries, kThresholds.size()> series;
  runner.sample_every(2 * kHour, [&](Time t) {
    std::array<std::size_t, kThresholds.size()> edges{};
    for (PeerId i = 0; i < n; ++i) {
      const auto& agent = runner.node(i).barter();
      for (PeerId j = 0; j < n; ++j) {
        if (i == j) continue;
        const double f = agent.contribution_of(j);
        for (std::size_t k = 0; k < kThresholds.size(); ++k) {
          if (f >= kThresholds[k]) ++edges[k];
        }
      }
    }
    const double pairs = static_cast<double>(n) * static_cast<double>(n - 1);
    for (std::size_t k = 0; k < kThresholds.size(); ++k) {
      series[k].add(t, static_cast<double>(edges[k]) / pairs);
    }
  });
  runner.run_until(tr.duration);

  core::ReplicaResult result;
  for (std::size_t k = 0; k < kThresholds.size(); ++k) {
    result.series["T" + std::to_string(k)] = std::move(series[k]);
  }
  return result;
}

/// First time the aggregated mean reaches `level` (-1 if never).
double hours_to_reach(const metrics::AggregateSeries& agg, double level) {
  for (std::size_t i = 0; i < agg.times.size(); ++i) {
    if (agg.mean[i] >= level) return to_hours(agg.times[i]);
  }
  return -1.0;
}

}  // namespace

int main() {
  bench::banner("abl_threshold_sweep",
                "A1 — T sweep: core-formation speed vs Sybil cost (extends "
                "Fig. 5)");
  const auto traces = bench::paper_dataset(bench::ablation_replica_count());
  const auto results = core::run_replicas(traces, run_replica);

  std::printf("\n%8s  %10s  %12s  %12s  %12s\n", "T (MB)", "final CEV",
              "h to 10%", "h to 20%", "h to 40%");
  std::vector<std::pair<std::string, metrics::AggregateSeries>> out;
  for (std::size_t k = 0; k < kThresholds.size(); ++k) {
    const auto agg =
        core::aggregate_named(results, "T" + std::to_string(k));
    std::printf("%8g  %10.3f  %12.1f  %12.1f  %12.1f\n", kThresholds[k],
                agg.mean.empty() ? 0.0 : agg.mean.back(),
                hours_to_reach(agg, 0.10), hours_to_reach(agg, 0.20),
                hours_to_reach(agg, 0.40));
    char name[16];
    std::snprintf(name, sizeof name, "cev_T%g", kThresholds[k]);
    out.emplace_back(name, agg);
  }
  std::printf("\n(-1 = level not reached within the 7-day trace)\n");
  bench::write_csv("abl_threshold_sweep.csv", out);
  return 0;
}
