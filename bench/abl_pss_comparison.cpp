// Ablation A4 — Oracle PSS vs Newscast gossip PSS.
//
// The paper assumes a PSS that "periodically returns a random peer from the
// entire population of online peers" and relies on Tribler's deployed
// BuddyCast. This bench replays the Fig. 6 scenario under both the exact
// oracle and the Newscast-style gossip implementation, showing the results
// hold under a real decentralized PSS (with its bounded views and stale
// entries under churn).
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/runner.hpp"
#include "metrics/ordering.hpp"
#include "trace/analyzer.hpp"

using namespace tribvote;

namespace {

constexpr Duration kHorizon = 3 * kDay;

core::ReplicaResult run_replica(const trace::Trace& tr, std::size_t index,
                                core::PssKind pss) {
  core::ScenarioConfig config;
  config.shards = bench::shard_count();
  config.ledger = bench::ledger_backend();
  config.faults = bench::fault_config();
  config.telemetry = bench::telemetry_config();
  config.vote.gossip_cache = bench::gossip_cache();
  config.pss = pss;
  core::ScenarioRunner runner(tr, config, 0xA4 + index);

  const auto firsts = trace::earliest_arrivals(tr, 3);
  const ModeratorId m1 = firsts[0], m2 = firsts[1], m3 = firsts[2];
  runner.publish_moderation(m1, 10 * kMinute, "good");
  runner.publish_moderation(m2, 10 * kMinute, "plain");
  runner.publish_moderation(m3, 10 * kMinute, "spam");
  util::Rng pick(0xB4 + index);
  const auto chosen =
      pick.sample_indices(tr.peers.size(), tr.peers.size() / 5);
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    const auto voter = static_cast<PeerId>(chosen[i]);
    if (voter == m1 || voter == m2 || voter == m3) continue;
    runner.script_vote_on_receipt(
        voter, i % 2 == 0 ? m1 : m3,
        i % 2 == 0 ? Opinion::kPositive : Opinion::kNegative);
  }

  const std::vector<ModeratorId> expected{m1, m2, m3};
  metrics::TimeSeries series;
  runner.sample_every(3 * kHour, [&](Time t) {
    std::vector<vote::RankedList> rankings;
    for (PeerId p = 0; p < tr.peers.size(); ++p) {
      if (p == m1 || p == m2 || p == m3) continue;
      rankings.push_back(runner.ranking_of(p));
    }
    series.add(t, metrics::correct_ordering_fraction(
                      rankings, std::span<const ModeratorId>(expected)));
  });
  runner.run_until(kHorizon);

  core::ReplicaResult result;
  result.series["correct"] = std::move(series);
  return result;
}

}  // namespace

int main() {
  bench::banner("abl_pss_comparison",
                "A4 — oracle PSS vs Newscast gossip PSS on the Fig. 6 "
                "scenario");
  const auto traces = bench::paper_dataset(bench::ablation_replica_count());

  std::vector<std::pair<std::string, metrics::AggregateSeries>> out;
  for (const auto& [label, kind] :
       {std::pair{"oracle", core::PssKind::kOracle},
        std::pair{"newscast", core::PssKind::kNewscast}}) {
    const auto results = core::run_replicas(
        traces, [kind](const trace::Trace& tr, std::size_t index) {
          return run_replica(tr, index, kind);
        });
    const auto agg = core::aggregate_named(results, "correct");
    bench::print_series(label, agg, /*stride=*/4);
    out.emplace_back(label, agg);
  }

  const auto& oracle = out[0].second;
  const auto& newscast = out[1].second;
  double max_gap = 0;
  for (std::size_t i = 0;
       i < std::min(oracle.mean.size(), newscast.mean.size()); ++i) {
    max_gap = std::max(max_gap, std::abs(oracle.mean[i] - newscast.mean[i]));
  }
  std::printf("\nmax |oracle - newscast| gap over time: %.3f\n", max_gap);
  bench::write_csv("abl_pss_comparison.csv", out);
  return 0;
}
