// A11 — protocol robustness under lossy transport (fault-plane sweep).
//
// The paper's experiments assume perfect message delivery; a deployed
// gossip stack sees loss, delay, crashes and damaged payloads. This sweep
// replays the Fig. 6 moderation-ranking scenario (every non-moderator node
// votes on receipt, so VoxPopuli bootstrap is observable population-wide)
// through the deterministic fault plane at increasing loss levels, with the
// companion fault rates scaled from the loss axis:
//
//   loss      in {0, 0.05, 0.1, 0.3, 0.5}   per message leg
//   delay     loss/2, up to 120 s           reply via the event queue
//   corrupt   loss/5                        truncation/bit damage
//   crash     loss/30                       mid-encounter responder crash
//
// Reported per loss level: the final correct-ordering fraction, the
// fraction of *exposed* honest nodes (>= 12 h cumulative online time by the
// sample — Fig. 6's bootstrap takes ~12 h even fault-free, so a rare peer
// with a 5 % duty cycle measures its own absence, not transport) that
// completed VoxPopuli bootstrap (reached B_min distinct voters — the
// robustness acceptance bar is >= 95 % at 30 % loss), the hours until 95 %
// of them had, and the fault plane's degradation counters
// (metrics/degradation.hpp). At loss 0 every fault rate is 0, the plane is
// inert, and the row is the golden baseline.
//
// A12 (`--tcp`): the same degradation axis replayed over a *real*
// in-process TCP cluster — N NodeServices on one EventLoop, Newscast
// bootstrap, scheduled encounters over real sockets — with the loss level
// mapped onto the transport chaos plane's Gilbert–Elliott chain (`ge=L`,
// DESIGN.md §16) instead of the simulator's fault plane. Encounters retry
// through resets; one that cannot complete within its retry budget is
// skipped, exactly like a lost encounter in the sim. Reported per level:
// the correct-ordering fraction among exposed nodes (>= 1 completed
// encounter — the EXPERIMENTS.md acceptance bar is >= 0.95 at 0.3),
// exposure, completed/skipped encounters and the impairment counters.
// Writes abl_fault_sweep_tcp.csv; the run is a pure function of the
// built-in seed, so two invocations must produce identical bytes.
#include <algorithm>
#include <array>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/runner.hpp"
#include "crypto/schnorr.hpp"
#include "metrics/degradation.hpp"
#include "metrics/ordering.hpp"
#include "net/event_loop.hpp"
#include "net/impairment.hpp"
#include "net/node_service.hpp"
#include "net/peer_directory.hpp"
#include "trace/analyzer.hpp"
#include "vote/agent.hpp"

using namespace tribvote;

namespace {

constexpr std::array<double, 5> kLossLevels{0.0, 0.05, 0.1, 0.3, 0.5};

/// Minimum cumulative online time before a peer counts toward the bootstrap
/// fraction: the paper's bootstrap pipeline needs ~12 h of presence even
/// with perfect delivery (Fig. 6), so peers below this measure their own
/// duty cycle rather than the transport.
constexpr Duration kMinExposure = 12 * kHour;

/// Cumulative online seconds of each peer up to time `t`.
std::vector<Duration> exposure_by(const trace::Trace& tr, Time t) {
  std::vector<Duration> online(tr.peers.size(), 0);
  for (const auto& s : tr.sessions) {
    if (s.start >= t) break;  // sessions are sorted by start time
    online[s.peer] += std::min(s.end, t) - s.start;
  }
  return online;
}

sim::FaultConfig faults_for(double loss) {
  sim::FaultConfig f = bench::fault_config();  // retry knobs from the env
  f.loss = loss;
  f.delay_rate = loss / 2;
  f.max_delay = 120;
  f.corrupt_rate = loss / 5;
  f.crash_rate = loss / 30;
  return f;
}

core::ReplicaResult run_replica(const trace::Trace& tr, std::size_t index,
                                double loss) {
  core::ScenarioConfig config;  // paper defaults
  config.shards = bench::shard_count();
  config.ledger = bench::ledger_backend();
  config.faults = faults_for(loss);
  config.telemetry = bench::telemetry_config();
  config.vote.gossip_cache = bench::gossip_cache();
  core::ScenarioRunner runner(tr, config, 0xFA7 + index);

  const auto firsts = trace::earliest_arrivals(tr, 3);
  const ModeratorId m1 = firsts[0], m2 = firsts[1], m3 = firsts[2];
  runner.publish_moderation(m1, 10 * kMinute, "well-described release");
  runner.publish_moderation(m2, 10 * kMinute, "plain release");
  runner.publish_moderation(m3, 10 * kMinute, "misleading spam");

  // Unlike Fig. 6's 20 % voter sample, every non-moderator votes on
  // receipt: the voter pool is then far above B_min, so the bootstrap
  // metric measures transport robustness, not voter scarcity.
  for (PeerId voter = 0; voter < tr.peers.size(); ++voter) {
    if (voter == m1 || voter == m2 || voter == m3) continue;
    if (voter % 2 == 0) {
      runner.script_vote_on_receipt(voter, m1, Opinion::kPositive);
    } else {
      runner.script_vote_on_receipt(voter, m3, Opinion::kNegative);
    }
  }

  const std::vector<ModeratorId> expected{m1, m2, m3};
  metrics::TimeSeries correct, bootstrap;
  runner.sample_every(2 * kHour, [&](Time t) {
    std::vector<vote::RankedList> rankings;
    std::size_t exposed = 0, bootstrapped = 0;
    const auto online = exposure_by(tr, t);
    for (PeerId p = 0; p < tr.peers.size(); ++p) {
      if (p == m1 || p == m2 || p == m3) continue;
      rankings.push_back(runner.ranking_of(p));
      if (online[p] < kMinExposure) continue;
      ++exposed;
      if (!runner.node(p).vote().bootstrapping()) ++bootstrapped;
    }
    correct.add(t, metrics::correct_ordering_fraction(
                       rankings, std::span<const ModeratorId>(expected)));
    bootstrap.add(t, exposed == 0 ? 0.0
                                  : static_cast<double>(bootstrapped) /
                                        static_cast<double>(exposed));
  });
  runner.run_until(tr.duration);

  core::ReplicaResult result;
  result.series["correct"] = std::move(correct);
  result.series["bootstrap"] = std::move(bootstrap);
  // Degradation counters as single-point series so the replica machinery
  // aggregates them like everything else.
  for (const auto& [name, value] :
       metrics::degradation_columns(runner.fault_stats())) {
    metrics::TimeSeries s;
    s.add(tr.duration, static_cast<double>(value));
    result.series[name] = std::move(s);
  }
  return result;
}

/// First time the aggregated mean reaches `level` (-1 if never).
double hours_to_reach(const metrics::AggregateSeries& agg, double level) {
  for (std::size_t i = 0; i < agg.times.size(); ++i) {
    if (agg.mean[i] >= level) return to_hours(agg.times[i]);
  }
  return -1.0;
}

double final_mean(const metrics::AggregateSeries& agg) {
  return agg.mean.empty() ? 0.0 : agg.mean.back();
}

// ---------------------------------------------------------------------------
// A12 — the sweep over a real in-process TCP cluster (--tcp).

constexpr std::size_t kTcpNodes = 8;
constexpr int kTcpRounds = 10;
constexpr Time kTcpRoundPeriod = 1000;
constexpr std::uint64_t kTcpSeed = 0xA12;
constexpr int kStepMs = 10000;

struct TcpNode {
  std::unique_ptr<crypto::KeyPair> keys;
  std::unique_ptr<vote::VoteAgent> vote;
};

std::uint64_t tcp_node_seed(PeerId id) {
  return kTcpSeed * 1000003ULL + id;
}

TcpNode make_tcp_node(PeerId id) {
  TcpNode n;
  util::Rng krng(tcp_node_seed(id));
  n.keys = std::make_unique<crypto::KeyPair>(crypto::generate_keypair(krng));
  n.vote = std::make_unique<vote::VoteAgent>(
      id, *n.keys, vote::VoteConfig{}, [](PeerId) { return true; },
      util::Rng(tcp_node_seed(id) * 7919 + 1));
  return n;
}

/// The scripted casts give every node the same strong signal — m1 all
/// positive, m2 alternating (net neutral), m3 all negative — so any node
/// whose ballot box crossed b_min ranks m1 > m2 > m3.
void tcp_casts(vote::VoteAgent& agent, int round) {
  const Time base = kTcpRoundPeriod * (round + 1);
  agent.cast_vote(1, Opinion::kPositive, base - 3);
  agent.cast_vote(2, round % 2 == 0 ? Opinion::kPositive : Opinion::kNegative,
                  base - 2);
  agent.cast_vote(3, Opinion::kNegative, base - 1);
}

std::string tcp_ip_string(std::uint32_t ip) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (ip >> 24) & 0xff,
                (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

struct TcpRow {
  bool ok = false;           ///< bootstrap reached full membership
  double correct = 0.0;      ///< correct-ordering fraction, exposed nodes
  double exposed = 0.0;      ///< exposed fraction of the cluster
  long completed = 0;        ///< encounters driven to completion
  long skipped = 0;          ///< encounters that exhausted their retries
  std::uint64_t resets = 0;  ///< impairment-forced connection resets
  std::uint64_t timeouts = 0;  ///< deadline evictions (hello + encounter)
};

TcpRow run_tcp_level(double loss) {
  TcpRow row;
  net::ImpairConfig icfg;
  if (loss > 0.0) {
    char spec[32];
    std::snprintf(spec, sizeof spec, "ge=%g", loss);
    std::string err;
    if (!net::parse_impair_spec(spec, icfg, &err)) {
      std::fprintf(stderr, "abl_fault_sweep: bad ge spec: %s\n", err.c_str());
      return row;
    }
  }
  const bool impaired = icfg.enabled();

  std::vector<TcpNode> nodes;
  for (std::size_t i = 0; i < kTcpNodes; ++i) {
    nodes.push_back(make_tcp_node(static_cast<PeerId>(i)));
  }

  net::EventLoop loop;
  std::vector<std::unique_ptr<net::Impairment>> impairs;  // outlives svcs
  std::vector<std::unique_ptr<net::NodeService>> svcs;
  std::vector<std::unique_ptr<net::PeerDirectory>> dirs;
  net::PeerDirectoryConfig dcfg;
  dcfg.view_size = std::max<std::size_t>(dcfg.view_size, kTcpNodes);
  dcfg.shuffle_size = std::min<std::size_t>(
      net::kMaxPeerDescriptors, std::max(dcfg.shuffle_size, kTcpNodes));
  for (std::size_t i = 0; i < kTcpNodes; ++i) {
    const auto id = static_cast<PeerId>(i);
    svcs.push_back(std::make_unique<net::NodeService>(
        loop, id, *nodes[i].keys, *nodes[i].vote, nullptr));
    std::string err;
    if (!svcs[i]->listen(0, &err)) {
      std::fprintf(stderr, "abl_fault_sweep: node %zu listen failed: %s\n", i,
                   err.c_str());
      return row;
    }
    dirs.push_back(std::make_unique<net::PeerDirectory>(
        id, *nodes[i].keys, 0x7f000001u, svcs[i]->listen_port(), dcfg,
        util::Rng(tcp_node_seed(id) * 7919 + 3)));
    svcs[i]->set_directory(dirs[i].get(), [] { return Time{0}; });
    if (impaired) {
      impairs.push_back(
          std::make_unique<net::Impairment>(icfg, kTcpSeed, id));
      svcs[i]->set_impairment(impairs[i].get());
      svcs[i]->set_deadlines(2000, 2000);
    }
  }

  // Bootstrap via node 0, redialing seed connections the chaos plane kills.
  std::vector<int> seed_conns(kTcpNodes, -1);
  const auto full_membership = [&] {
    for (const auto& d : dirs) {
      if (d->view_count() != kTcpNodes - 1) return false;
    }
    return true;
  };
  for (int pump = 0; pump < 400 && !full_membership(); ++pump) {
    for (std::size_t i = 1; i < kTcpNodes; ++i) {
      if (seed_conns[i] < 0 || !svcs[i]->open(seed_conns[i])) {
        seed_conns[i] =
            svcs[i]->connect("127.0.0.1", svcs[0]->listen_port());
        continue;
      }
      if (svcs[i]->ready(seed_conns[i])) {
        (void)svcs[i]->send_peer_exchange(seed_conns[i], true);
      }
    }
    (void)loop.run_until(full_membership, 100);
  }
  if (!full_membership()) {
    std::fprintf(stderr,
                 "abl_fault_sweep: tcp bootstrap failed at loss %g\n", loss);
    return row;
  }

  const auto run_encounter = [&](PeerId initiator, PeerId responder,
                                 Time now) {
    net::NodeService& svc = *svcs[initiator];
    const int max_attempts = impaired ? 16 : 1;
    for (int attempt = 0; attempt < max_attempts; ++attempt) {
      int conn = svc.conn_for_peer(responder);
      if (conn < 0) {
        net::PeerDescriptor d;
        if (!dirs[initiator]->lookup(responder, d)) return false;
        conn = svc.connect(tcp_ip_string(d.ip), d.port);
        if (conn < 0) continue;
        if (!loop.run_until(
                [&] { return svc.ready(conn) || !svc.open(conn); },
                kStepMs)) {
          return false;
        }
        if (!svc.open(conn)) continue;
      }
      const std::uint64_t want =
          svc.engine_counters(conn)->encounters_completed + 1;
      if (!svc.initiate_vote_encounter(conn, now)) {
        svc.close(conn);
        continue;
      }
      const auto settled = [&] {
        if (!svc.open(conn)) return true;
        return svc.initiator_idle(conn) &&
               svc.engine_counters(conn)->encounters_completed >= want;
      };
      if (!loop.run_until(settled, kStepMs)) return false;
      if (svc.open(conn) &&
          svc.engine_counters(conn)->encounters_completed >= want) {
        return true;
      }
    }
    return false;
  };

  for (int r = 0; r < kTcpRounds; ++r) {
    for (auto& n : nodes) tcp_casts(*n.vote, r);
    for (const auto& im : impairs) {
      im->set_round(static_cast<std::uint64_t>(r));
    }
    const Time now = kTcpRoundPeriod * (r + 1);
    for (std::size_t i = 0; i < kTcpNodes; ++i) {
      const auto self = static_cast<PeerId>(i);
      const PeerId target = dirs[i]->sample(self);
      if (target == kInvalidPeer) continue;
      if (impaired && (impairs[i]->self_offline() ||
                       impairs[i]->offline(target))) {
        continue;  // partitioned this round; the sim would skip it too
      }
      if (run_encounter(self, target, now)) {
        ++row.completed;
      } else {
        ++row.skipped;
      }
    }
  }

  std::vector<vote::RankedList> rankings;
  std::size_t exposed = 0;
  for (std::size_t i = 0; i < kTcpNodes; ++i) {
    const net::ExchangeEngine::Counters t = svcs[i]->engine_totals();
    if (t.encounters_completed + t.encounters_served == 0) continue;
    ++exposed;
    rankings.push_back(nodes[i].vote->current_ranking());
  }
  const std::vector<ModeratorId> expected{1, 2, 3};
  row.correct = metrics::correct_ordering_fraction(
      rankings, std::span<const ModeratorId>(expected));
  row.exposed =
      static_cast<double>(exposed) / static_cast<double>(kTcpNodes);
  for (const auto& svc : svcs) {
    row.resets += svc->stats().impair_resets;
    row.timeouts +=
        svc->stats().hello_timeouts + svc->stats().encounter_timeouts;
  }
  for (const auto& svc : svcs) {
    for (const int c : svc->connections()) svc->send_bye(c);
  }
  loop.poll_once(0);
  row.ok = true;
  return row;
}

int run_tcp_sweep() {
  bench::banner("abl_fault_sweep --tcp",
                "A12 — degradation sweep over a real in-process TCP "
                "cluster: Gilbert-Elliott chunk loss vs correct ordering");
  util::CsvWriter csv("abl_fault_sweep_tcp.csv");
  csv.write_row({"loss", "correct", "exposed", "completed", "skipped",
                 "impair_resets", "timeouts"});
  std::printf("\n%6s  %8s  %8s  %10s  %8s  %8s  %9s\n", "loss", "correct",
              "exposed", "completed", "skipped", "resets", "timeouts");
  int rc = 0;
  for (const double loss : kLossLevels) {
    const TcpRow row = run_tcp_level(loss);
    if (!row.ok) rc = 1;
    csv.field(util::format_double(loss, 3));
    csv.field(row.correct);
    csv.field(row.exposed);
    csv.field(static_cast<double>(row.completed));
    csv.field(static_cast<double>(row.skipped));
    csv.field(static_cast<double>(row.resets));
    csv.field(static_cast<double>(row.timeouts));
    csv.end_row();
    std::printf("%6g  %8.3f  %8.3f  %10ld  %8ld  %8llu  %9llu\n", loss,
                row.correct, row.exposed, row.completed, row.skipped,
                static_cast<unsigned long long>(row.resets),
                static_cast<unsigned long long>(row.timeouts));
  }
  std::printf("\ncsv written: abl_fault_sweep_tcp.csv\n");
  return rc;
}

}  // namespace

int main(int argc, char** argv) {
  // `--tcp` switches to the A12 socket-plane sweep; the bare invocation is
  // the A11 golden path and its csv must stay byte-identical.
  if (argc > 1 && std::strcmp(argv[1], "--tcp") == 0) return run_tcp_sweep();
  bench::banner("abl_fault_sweep",
                "A11 — Fig. 6 scenario under transport faults: ranking "
                "quality and VoxPopuli bootstrap vs message loss");
  const std::size_t replicas = bench::ablation_replica_count();
  const auto traces = bench::paper_dataset(replicas);

  const auto counter_names = [] {
    std::vector<std::string> names;
    for (const auto& [name, value] :
         metrics::degradation_columns(sim::FaultStats{})) {
      names.push_back(name);
    }
    return names;
  }();

  util::CsvWriter csv("abl_fault_sweep.csv");
  std::vector<std::string> header{"loss", "final_correct",
                                  "final_correct_stderr", "bootstrap",
                                  "bootstrap_stderr", "h_to_95pct_bootstrap"};
  for (const auto& name : counter_names) header.push_back(name);
  csv.write_row(header);

  std::printf("\n%6s  %14s  %10s  %12s  %12s  %10s\n", "loss", "final_correct",
              "bootstrap", "h_to_95%", "drops(rq+rp)", "rejected");
  for (const double loss : kLossLevels) {
    const auto results = core::run_replicas(
        traces, [loss](const trace::Trace& tr, std::size_t index) {
          return run_replica(tr, index, loss);
        });
    const auto correct = core::aggregate_named(results, "correct");
    const auto bootstrap = core::aggregate_named(results, "bootstrap");

    csv.field(util::format_double(loss, 3));
    csv.field(final_mean(correct));
    csv.field(correct.mean.empty() ? 0.0 : correct.stderr_mean.back());
    csv.field(final_mean(bootstrap));
    csv.field(bootstrap.mean.empty() ? 0.0 : bootstrap.stderr_mean.back());
    csv.field(util::format_double(hours_to_reach(bootstrap, 0.95), 1));
    double drops = 0.0, rejected = 0.0;
    for (const auto& name : counter_names) {
      const double mean = final_mean(core::aggregate_named(results, name));
      csv.field(mean);
      if (name == "dropped_requests" || name == "dropped_replies") {
        drops += mean;
      }
      if (name == "rejected") rejected = mean;
    }
    csv.end_row();
    std::printf("%6g  %14.3f  %10.3f  %12.1f  %12.0f  %10.0f\n", loss,
                final_mean(correct), final_mean(bootstrap),
                hours_to_reach(bootstrap, 0.95), drops, rejected);
  }
  std::printf("\n(-1 = level not reached within the 7-day trace; counters "
              "are per-replica means)\ncsv written: abl_fault_sweep.csv\n");
  return 0;
}
