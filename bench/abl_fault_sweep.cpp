// A11 — protocol robustness under lossy transport (fault-plane sweep).
//
// The paper's experiments assume perfect message delivery; a deployed
// gossip stack sees loss, delay, crashes and damaged payloads. This sweep
// replays the Fig. 6 moderation-ranking scenario (every non-moderator node
// votes on receipt, so VoxPopuli bootstrap is observable population-wide)
// through the deterministic fault plane at increasing loss levels, with the
// companion fault rates scaled from the loss axis:
//
//   loss      in {0, 0.05, 0.1, 0.3, 0.5}   per message leg
//   delay     loss/2, up to 120 s           reply via the event queue
//   corrupt   loss/5                        truncation/bit damage
//   crash     loss/30                       mid-encounter responder crash
//
// Reported per loss level: the final correct-ordering fraction, the
// fraction of *exposed* honest nodes (>= 12 h cumulative online time by the
// sample — Fig. 6's bootstrap takes ~12 h even fault-free, so a rare peer
// with a 5 % duty cycle measures its own absence, not transport) that
// completed VoxPopuli bootstrap (reached B_min distinct voters — the
// robustness acceptance bar is >= 95 % at 30 % loss), the hours until 95 %
// of them had, and the fault plane's degradation counters
// (metrics/degradation.hpp). At loss 0 every fault rate is 0, the plane is
// inert, and the row is the golden baseline.
#include <algorithm>
#include <array>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_common.hpp"
#include "core/runner.hpp"
#include "metrics/degradation.hpp"
#include "metrics/ordering.hpp"
#include "trace/analyzer.hpp"

using namespace tribvote;

namespace {

constexpr std::array<double, 5> kLossLevels{0.0, 0.05, 0.1, 0.3, 0.5};

/// Minimum cumulative online time before a peer counts toward the bootstrap
/// fraction: the paper's bootstrap pipeline needs ~12 h of presence even
/// with perfect delivery (Fig. 6), so peers below this measure their own
/// duty cycle rather than the transport.
constexpr Duration kMinExposure = 12 * kHour;

/// Cumulative online seconds of each peer up to time `t`.
std::vector<Duration> exposure_by(const trace::Trace& tr, Time t) {
  std::vector<Duration> online(tr.peers.size(), 0);
  for (const auto& s : tr.sessions) {
    if (s.start >= t) break;  // sessions are sorted by start time
    online[s.peer] += std::min(s.end, t) - s.start;
  }
  return online;
}

sim::FaultConfig faults_for(double loss) {
  sim::FaultConfig f = bench::fault_config();  // retry knobs from the env
  f.loss = loss;
  f.delay_rate = loss / 2;
  f.max_delay = 120;
  f.corrupt_rate = loss / 5;
  f.crash_rate = loss / 30;
  return f;
}

core::ReplicaResult run_replica(const trace::Trace& tr, std::size_t index,
                                double loss) {
  core::ScenarioConfig config;  // paper defaults
  config.shards = bench::shard_count();
  config.ledger = bench::ledger_backend();
  config.faults = faults_for(loss);
  config.telemetry = bench::telemetry_config();
  config.vote.gossip_cache = bench::gossip_cache();
  core::ScenarioRunner runner(tr, config, 0xFA7 + index);

  const auto firsts = trace::earliest_arrivals(tr, 3);
  const ModeratorId m1 = firsts[0], m2 = firsts[1], m3 = firsts[2];
  runner.publish_moderation(m1, 10 * kMinute, "well-described release");
  runner.publish_moderation(m2, 10 * kMinute, "plain release");
  runner.publish_moderation(m3, 10 * kMinute, "misleading spam");

  // Unlike Fig. 6's 20 % voter sample, every non-moderator votes on
  // receipt: the voter pool is then far above B_min, so the bootstrap
  // metric measures transport robustness, not voter scarcity.
  for (PeerId voter = 0; voter < tr.peers.size(); ++voter) {
    if (voter == m1 || voter == m2 || voter == m3) continue;
    if (voter % 2 == 0) {
      runner.script_vote_on_receipt(voter, m1, Opinion::kPositive);
    } else {
      runner.script_vote_on_receipt(voter, m3, Opinion::kNegative);
    }
  }

  const std::vector<ModeratorId> expected{m1, m2, m3};
  metrics::TimeSeries correct, bootstrap;
  runner.sample_every(2 * kHour, [&](Time t) {
    std::vector<vote::RankedList> rankings;
    std::size_t exposed = 0, bootstrapped = 0;
    const auto online = exposure_by(tr, t);
    for (PeerId p = 0; p < tr.peers.size(); ++p) {
      if (p == m1 || p == m2 || p == m3) continue;
      rankings.push_back(runner.ranking_of(p));
      if (online[p] < kMinExposure) continue;
      ++exposed;
      if (!runner.node(p).vote().bootstrapping()) ++bootstrapped;
    }
    correct.add(t, metrics::correct_ordering_fraction(
                       rankings, std::span<const ModeratorId>(expected)));
    bootstrap.add(t, exposed == 0 ? 0.0
                                  : static_cast<double>(bootstrapped) /
                                        static_cast<double>(exposed));
  });
  runner.run_until(tr.duration);

  core::ReplicaResult result;
  result.series["correct"] = std::move(correct);
  result.series["bootstrap"] = std::move(bootstrap);
  // Degradation counters as single-point series so the replica machinery
  // aggregates them like everything else.
  for (const auto& [name, value] :
       metrics::degradation_columns(runner.fault_stats())) {
    metrics::TimeSeries s;
    s.add(tr.duration, static_cast<double>(value));
    result.series[name] = std::move(s);
  }
  return result;
}

/// First time the aggregated mean reaches `level` (-1 if never).
double hours_to_reach(const metrics::AggregateSeries& agg, double level) {
  for (std::size_t i = 0; i < agg.times.size(); ++i) {
    if (agg.mean[i] >= level) return to_hours(agg.times[i]);
  }
  return -1.0;
}

double final_mean(const metrics::AggregateSeries& agg) {
  return agg.mean.empty() ? 0.0 : agg.mean.back();
}

}  // namespace

int main() {
  bench::banner("abl_fault_sweep",
                "A11 — Fig. 6 scenario under transport faults: ranking "
                "quality and VoxPopuli bootstrap vs message loss");
  const std::size_t replicas = bench::ablation_replica_count();
  const auto traces = bench::paper_dataset(replicas);

  const auto counter_names = [] {
    std::vector<std::string> names;
    for (const auto& [name, value] :
         metrics::degradation_columns(sim::FaultStats{})) {
      names.push_back(name);
    }
    return names;
  }();

  util::CsvWriter csv("abl_fault_sweep.csv");
  std::vector<std::string> header{"loss", "final_correct",
                                  "final_correct_stderr", "bootstrap",
                                  "bootstrap_stderr", "h_to_95pct_bootstrap"};
  for (const auto& name : counter_names) header.push_back(name);
  csv.write_row(header);

  std::printf("\n%6s  %14s  %10s  %12s  %12s  %10s\n", "loss", "final_correct",
              "bootstrap", "h_to_95%", "drops(rq+rp)", "rejected");
  for (const double loss : kLossLevels) {
    const auto results = core::run_replicas(
        traces, [loss](const trace::Trace& tr, std::size_t index) {
          return run_replica(tr, index, loss);
        });
    const auto correct = core::aggregate_named(results, "correct");
    const auto bootstrap = core::aggregate_named(results, "bootstrap");

    csv.field(util::format_double(loss, 3));
    csv.field(final_mean(correct));
    csv.field(correct.mean.empty() ? 0.0 : correct.stderr_mean.back());
    csv.field(final_mean(bootstrap));
    csv.field(bootstrap.mean.empty() ? 0.0 : bootstrap.stderr_mean.back());
    csv.field(util::format_double(hours_to_reach(bootstrap, 0.95), 1));
    double drops = 0.0, rejected = 0.0;
    for (const auto& name : counter_names) {
      const double mean = final_mean(core::aggregate_named(results, name));
      csv.field(mean);
      if (name == "dropped_requests" || name == "dropped_replies") {
        drops += mean;
      }
      if (name == "rejected") rejected = mean;
    }
    csv.end_row();
    std::printf("%6g  %14.3f  %10.3f  %12.1f  %12.0f  %10.0f\n", loss,
                final_mean(correct), final_mean(bootstrap),
                hours_to_reach(bootstrap, 0.95), drops, rejected);
  }
  std::printf("\n(-1 = level not reached within the 7-day trace; counters "
              "are per-replica means)\ncsv written: abl_fault_sweep.csv\n");
  return 0;
}
