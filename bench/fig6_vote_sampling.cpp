// Fig. 6 — Effectiveness of vote sampling over time (paper §VI-B).
//
// Scenario: the first three nodes entering the system are moderators
// M1/M2/M3, each publishing one moderation. 10 % of the population votes
// +M1 and 10 % votes −M3 — but only once the corresponding moderation has
// reached them through ModerationCast. The plotted quantity is the fraction
// of (non-moderator) nodes whose current ranking orders M1 > M2 > M3.
// Parameters: B_min=5, B_max=100, V_max=10, K=3, T=5 MB.
//
// Paper anchors: a sharp rise at ~12 h caused by VoxPopuli bootstrapping
// (the first nodes pass B_min and start answering top-K requests), then
// convergence toward 1. Three typical runs plus the 10-trace mean.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/runner.hpp"
#include "metrics/ordering.hpp"
#include "trace/analyzer.hpp"

using namespace tribvote;

namespace {

core::ReplicaResult run_replica(const trace::Trace& tr, std::size_t index) {
  core::ScenarioConfig config;  // paper defaults
  config.shards = bench::shard_count();
  config.ledger = bench::ledger_backend();
  config.faults = bench::fault_config();
  config.telemetry = bench::telemetry_config();
  config.vote.gossip_cache = bench::gossip_cache();
  core::ScenarioRunner runner(tr, config, 0xF16 + index);

  const auto firsts = trace::earliest_arrivals(tr, 3);
  const ModeratorId m1 = firsts[0], m2 = firsts[1], m3 = firsts[2];
  runner.publish_moderation(m1, 10 * kMinute, "well-described release");
  runner.publish_moderation(m2, 10 * kMinute, "plain release");
  runner.publish_moderation(m3, 10 * kMinute, "misleading spam");

  // 10% of the population votes +M1, a disjoint 10% votes -M3, on receipt.
  util::Rng pick(0xB0 + index);
  const auto chosen =
      pick.sample_indices(tr.peers.size(), tr.peers.size() / 5);
  for (std::size_t i = 0; i < chosen.size(); ++i) {
    const auto voter = static_cast<PeerId>(chosen[i]);
    if (voter == m1 || voter == m2 || voter == m3) continue;
    if (i % 2 == 0) {
      runner.script_vote_on_receipt(voter, m1, Opinion::kPositive);
    } else {
      runner.script_vote_on_receipt(voter, m3, Opinion::kNegative);
    }
  }

  const std::vector<ModeratorId> expected{m1, m2, m3};
  metrics::TimeSeries series;
  runner.sample_every(2 * kHour, [&](Time t) {
    std::vector<vote::RankedList> rankings;
    for (PeerId p = 0; p < tr.peers.size(); ++p) {
      if (p == m1 || p == m2 || p == m3) continue;
      rankings.push_back(runner.ranking_of(p));
    }
    series.add(t, metrics::correct_ordering_fraction(
                      rankings, std::span<const ModeratorId>(expected)));
  });
  runner.run_until(tr.duration);

  core::ReplicaResult result;
  result.series["correct"] = std::move(series);
  return result;
}

}  // namespace

int main() {
  bench::banner("fig6_vote_sampling",
                "Fig. 6 — fraction of nodes with correct ordering "
                "M1 > M2 > M3 vs time");
  const std::size_t replicas = bench::replica_count();
  const auto traces = bench::paper_dataset(replicas);
  const auto results = core::run_replicas(traces, run_replica);

  // Three typical runs + the mean over all replicas (paper's layout).
  const auto mean = core::aggregate_named(results, "correct");
  std::printf("\n%8s", "t_hours");
  const std::size_t typicals = std::min<std::size_t>(3, results.size());
  for (std::size_t r = 0; r < typicals; ++r) std::printf("    run%zu", r + 1);
  std::printf("     mean   stderr\n");
  for (std::size_t i = 0; i < mean.times.size(); i += 3) {
    std::printf("%8.1f", to_hours(mean.times[i]));
    for (std::size_t r = 0; r < typicals; ++r) {
      const auto& s = results[r].series.at("correct");
      std::printf("  %7.3f", i < s.values.size() ? s.values[i] : -1.0);
    }
    std::printf("  %7.3f  %7.3f\n", mean.mean[i], mean.stderr_mean[i]);
  }

  // Paper anchor: the VoxPopuli knee — when the mean first exceeds 0.5.
  for (std::size_t i = 0; i < mean.times.size(); ++i) {
    if (mean.mean[i] >= 0.5) {
      std::printf("\nmean crosses 0.5 at ~%.0fh (paper: sharp rise ~12h)\n",
                  to_hours(mean.times[i]));
      break;
    }
  }

  std::vector<std::pair<std::string, metrics::AggregateSeries>> out;
  out.emplace_back("correct", mean);
  for (std::size_t r = 0; r < typicals; ++r) {
    metrics::AggregateSeries single =
        core::aggregate_named({results[r]}, "correct");
    out.emplace_back("run" + std::to_string(r + 1), std::move(single));
  }
  bench::write_csv("fig6_vote_sampling.csv", out);
  return 0;
}
