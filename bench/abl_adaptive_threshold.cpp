// Ablation A6 — adaptive threshold T (paper §VII future work) vs fixed T.
//
// The adaptive mechanism targets the *BallotBox tier*: with a permissive
// fixed T = 0 every identity counts as experienced, so a crowd of cheap
// colluders voting +M0 / −M1 poisons ballot boxes directly. §VII proposes
// starting at T = 0 and raising T when the dispersion of sampled opinions
// exceeds D_max (coordinated liars disagree with honest voters), shedding
// the colluders' votes.
//
// Metrics isolate that tier:
//   * colluder_vote_share — mean fraction of ballot-box entries that came
//     from colluders (the quantity E is supposed to suppress);
//   * ballot_pollution — among honest non-core nodes past B_min (i.e.
//     ranking from their own ballot box, not VoxPopuli), the fraction
//     ranking M0 top;
//   * mean adaptive T over time.
//
// Expected: fixed T=0 absorbs colluder votes wholesale; adaptive T climbs
// under dispersion and the colluder share collapses.
#include <cstdio>
#include <vector>

#include "attack_scenario.hpp"
#include "bench_common.hpp"

using namespace tribvote;

namespace {

constexpr std::size_t kCoreSize = 20;
constexpr std::size_t kCrowd = 40;
constexpr Duration kHorizon = 2 * kDay;

core::ReplicaResult run_replica(const trace::Trace& tr, std::size_t index,
                                bool adaptive) {
  core::ScenarioConfig config;
  config.shards = bench::shard_count();
  config.ledger = bench::ledger_backend();
  config.faults = bench::fault_config();
  config.telemetry = bench::telemetry_config();
  config.vote.gossip_cache = bench::gossip_cache();
  config.attack.crowd_size = kCrowd;
  config.attack.start = 0;
  config.attack.duty = 0.5;
  config.experience_threshold_mb = 0.0;  // permissive baseline
  config.adaptive_threshold = adaptive;
  config.adaptive.t_min = 0.0;
  config.adaptive.t_max = 64.0;   // keep T in the range honest peers reach
  config.adaptive.raise_step = 1.5;
  config.adaptive.decay = 0.9;
  // The crowd also demotes the honest top moderator M1 (the first core
  // member) — this is what creates vote dispersion.
  config.attack.victim = trace::earliest_arrivals(tr, 1).front();

  core::ScenarioRunner runner(tr, config, 0xA6 + index);
  const bench::AttackScenario scenario =
      bench::setup_attack_scenario(runner, kCoreSize);

  metrics::TimeSeries ballot_pollution, colluder_share, threshold;
  runner.sample_every(2 * kHour, [&](Time t) {
    std::vector<vote::RankedList> settled;  // past B_min: box-based ranking
    double share_sum = 0;
    std::size_t share_count = 0;
    double t_sum = 0;
    std::size_t t_count = 0;
    for (PeerId p = 0; p < runner.trace_peer_count(); ++p) {
      if (!runner.has_arrived(p, t)) continue;
      const auto& node = runner.node(p);
      t_sum += node.threshold_mb();
      ++t_count;
      if (scenario.is_core(p)) continue;
      // Colluder share of this node's ballot-box tally on M0/M1: count
      // entries attributable to colluders via the M0 votes (only colluders
      // ever vote on M0).
      const auto tally = node.vote().ballot_box().tally();
      const std::size_t total_entries = node.vote().ballot_box().size();
      if (total_entries > 0) {
        const auto it = tally.find(scenario.m0);
        const std::size_t colluder_entries =
            it == tally.end() ? 0 : it->second.total();
        share_sum += static_cast<double>(colluder_entries) /
                     static_cast<double>(total_entries);
        ++share_count;
      }
      if (!node.vote().bootstrapping()) {
        settled.push_back(node.vote().current_ranking());
      }
    }
    ballot_pollution.add(
        t, metrics::pollution_fraction(settled, scenario.m0));
    colluder_share.add(
        t, share_count ? share_sum / static_cast<double>(share_count) : 0.0);
    threshold.add(t,
                  t_count ? t_sum / static_cast<double>(t_count) : 0.0);
  });
  runner.run_until(kHorizon);

  core::ReplicaResult result;
  result.series["ballot_pollution"] = std::move(ballot_pollution);
  result.series["colluder_share"] = std::move(colluder_share);
  result.series["threshold"] = std::move(threshold);
  return result;
}

}  // namespace

int main() {
  bench::banner("abl_adaptive_threshold",
                "A6 — dispersion-driven adaptive T vs permissive fixed T=0 "
                "under a vote-promotion attack (BallotBox tier)");
  const auto traces = bench::paper_dataset(bench::ablation_replica_count());

  std::vector<std::pair<std::string, metrics::AggregateSeries>> out;
  for (const bool adaptive : {false, true}) {
    const auto results = core::run_replicas(
        traces, [adaptive](const trace::Trace& tr, std::size_t index) {
          return run_replica(tr, index, adaptive);
        });
    const auto pollution =
        core::aggregate_named(results, "ballot_pollution");
    const auto share = core::aggregate_named(results, "colluder_share");
    const auto threshold = core::aggregate_named(results, "threshold");
    const char* label = adaptive ? "adaptive_T" : "fixed_T0";
    std::printf("\n-- %s --\n%8s  %18s  %16s  %12s\n", label, "t_hours",
                "ballot pollution", "colluder share", "mean T (MB)");
    for (std::size_t i = 0; i < pollution.times.size(); i += 2) {
      std::printf("%8.1f  %18.3f  %16.3f  %12.2f\n",
                  to_hours(pollution.times[i]), pollution.mean[i],
                  share.mean[i], threshold.mean[i]);
    }
    out.emplace_back(std::string(label) + "_ballot_pollution", pollution);
    out.emplace_back(std::string(label) + "_colluder_share", share);
    out.emplace_back(std::string(label) + "_T", threshold);
  }
  bench::write_csv("abl_adaptive_threshold.csv", out);
  return 0;
}
