#!/usr/bin/env bash
# Run the microbenchmark suite and emit machine-readable results.
#
#   bench/run_bench.sh [build-dir] [output.json] [extra benchmark args...]
#
# Defaults: build-dir = build, output = BENCH_micro.json (repo root).
# Extra args are passed through to google-benchmark, e.g.
#   bench/run_bench.sh build out.json --benchmark_filter=CEV
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="${1:-$repo_root/build}"
out="${2:-$repo_root/BENCH_micro.json}"
shift $(( $# > 2 ? 2 : $# ))

bin="$build_dir/bench/micro_kernels"
if [[ ! -x "$bin" ]]; then
  echo "error: $bin not built (cmake --build $build_dir --target micro_kernels)" >&2
  exit 1
fi

"$bin" \
  --benchmark_format=json \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  "$@" > /dev/null

echo "wrote $out"
