#!/usr/bin/env bash
# Run the microbenchmark suite and emit machine-readable results.
#
#   bench/run_bench.sh [build-dir] [output.json] [extra benchmark args...]
#
# Defaults: build-dir = build, output = BENCH_micro.json (repo root).
# Extra args are passed through to google-benchmark, e.g.
#   bench/run_bench.sh build out.json --benchmark_filter=CEV
#
# After the micro suite, the script times the figure harnesses
# (fig5/fig6/fig8) end-to-end and merges a "scenario_wall_s" section into
# the JSON. The harness runs happen in a scratch directory so their CSV
# output never lands on (or overwrites) the committed goldens.
# TRIBVOTE_WALL_REPLICAS (default 1) sets the replica count for the timed
# runs; set TRIBVOTE_WALL_SKIP=1 to skip the wall-clock section entirely.
set -euo pipefail

repo_root="$(cd "$(dirname "${BASH_SOURCE[0]}")/.." && pwd)"
build_dir="$(cd "${1:-$repo_root/build}" && pwd)"
out="${2:-$repo_root/BENCH_micro.json}"
shift $(( $# > 2 ? 2 : $# ))

bin="$build_dir/bench/micro_kernels"
if [[ ! -x "$bin" ]]; then
  echo "error: $bin not built (cmake --build $build_dir --target micro_kernels)" >&2
  exit 1
fi

"$bin" \
  --benchmark_format=json \
  --benchmark_out="$out" \
  --benchmark_out_format=json \
  "$@" > /dev/null

echo "wrote $out"

if [[ "${TRIBVOTE_WALL_SKIP:-0}" == "1" ]]; then
  echo "TRIBVOTE_WALL_SKIP=1: skipping scenario wall-clock section"
  exit 0
fi

# -- scenario wall-clock -----------------------------------------------------
# End-to-end time of each figure harness at TRIBVOTE_WALL_REPLICAS replicas.
# This is the number the DESIGN-doc perf discussion quotes ("a full fig6 run
# takes N s on one core") and the one the telemetry overhead gate compares
# against; the micro suite alone can't see whole-run regressions (pairing,
# event queue, CSV writing, ...).
wall_replicas="${TRIBVOTE_WALL_REPLICAS:-1}"
scratch="$(mktemp -d)"
trap 'rm -rf "$scratch"' EXIT

declare -a wall_names=() wall_secs=()
for fig in fig5_experience_formation fig6_vote_sampling fig8_spam_attack; do
  fig_bin="$build_dir/bench/$fig"
  if [[ ! -x "$fig_bin" ]]; then
    echo "note: $fig_bin not built, skipping its wall-clock entry" >&2
    continue
  fi
  start_ns="$(date +%s%N)"
  ( cd "$scratch" && TRIBVOTE_REPLICAS="$wall_replicas" "$fig_bin" > /dev/null )
  end_ns="$(date +%s%N)"
  secs="$(awk "BEGIN{printf \"%.3f\", ($end_ns - $start_ns) / 1e9}")"
  wall_names+=("$fig")
  wall_secs+=("$secs")
  echo "wall-clock $fig: ${secs}s (replicas=$wall_replicas)"
done

if [[ "${#wall_names[@]}" -gt 0 ]]; then
  names_csv="$(IFS=,; echo "${wall_names[*]}")"
  secs_csv="$(IFS=,; echo "${wall_secs[*]}")"
  python3 - "$out" "$wall_replicas" "$names_csv" "$secs_csv" <<'PYEOF'
import json
import sys

path, replicas, names_csv, secs_csv = sys.argv[1:5]
with open(path) as f:
    doc = json.load(f)
doc["scenario_wall_s"] = {
    "replicas": int(replicas),
    **{n: float(s) for n, s in zip(names_csv.split(","), secs_csv.split(","))},
}
with open(path, "w") as f:
    json.dump(doc, f, indent=1)
    f.write("\n")
PYEOF
  echo "merged scenario_wall_s into $out"
fi

# -- gossip bytes ------------------------------------------------------------
# Distill the BM_GossipBytes / BM_OutgoingVotes counters into a
# "gossip_bytes" section: steady-state wire bytes per gossip leg and
# signatures per outgoing-message build, cache off vs on. These are the
# numbers the EXPERIMENTS doc quotes for the delta-gossip saving.
python3 - "$out" <<'PYEOF'
import json
import sys

path = sys.argv[1]
with open(path) as f:
    doc = json.load(f)
section = {}
for bench in doc.get("benchmarks", []):
    name = bench.get("name", "")
    if name.startswith("BM_GossipBytes/cache:"):
        key = "cache_on" if name.endswith("cache:1") else "cache_off"
        section.setdefault(key, {}).update(
            bytes_per_leg=round(float(bench["bytes_per_leg"]), 1),
            delta_fraction=round(float(bench["delta_fraction"]), 4))
    elif name.startswith("BM_OutgoingVotes/cache:"):
        key = "cache_on" if name.endswith("cache:1") else "cache_off"
        section.setdefault(key, {})["signatures_per_build"] = round(
            float(bench["signatures_per_build"]), 4)
if {"cache_on", "cache_off"} <= section.keys():
    off, on = section["cache_off"], section["cache_on"]
    if on.get("bytes_per_leg"):
        section["bytes_reduction"] = round(
            off["bytes_per_leg"] / on["bytes_per_leg"], 2)
    # A fully-warm cache signs zero times per build; report that as "inf"
    # rather than dividing by it.
    if "signatures_per_build" in off and "signatures_per_build" in on:
        section["signing_reduction"] = (
            round(off["signatures_per_build"] / on["signatures_per_build"], 2)
            if on["signatures_per_build"] > 0 else "inf")
    doc["gossip_bytes"] = section
    with open(path, "w") as f:
        json.dump(doc, f, indent=1)
        f.write("\n")
    print(f"merged gossip_bytes into {path}")
else:
    print("note: BM_GossipBytes rows absent (filtered run?); "
          "gossip_bytes section skipped")
PYEOF
