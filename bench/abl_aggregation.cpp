// Ablation A8 — direct vote sampling (BallotBox) vs epidemic aggregation
// (push-sum [8]) under lying behaviour — the §II / §V-A design decision:
//
//   "we sample the population randomly rather than aggregating votes using
//    gossip based aggregation methods [8]. This ensures that each node can
//    only vote once for any moderator... Hence we trade speed and
//    efficiency for security."
//
// Setup: N nodes hold a vote on one moderator (fraction p positive, rest
// abstain at 0). A fraction f are liars targeting +1 (promoting a spam
// moderator). We run both protocols over the same uniform random pairings
// and compare every node's estimated average vote against the honest
// ground truth, for increasing liar fractions.
//
// Expected shape: push-sum is *exact and fast* with f = 0 but collapses
// under a single-digit percentage of liars (unbounded influence);
// BallotBox error stays proportional to the liar fraction (one vote per
// liar) — and in the full system liars are additionally gated by the
// experience function, which push-sum cannot express at all.
#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "baselines/pushsum.hpp"
#include "bench_common.hpp"
#include "util/stats.hpp"
#include "vote/ballot_box.hpp"

using namespace tribvote;

namespace {

constexpr std::size_t kN = 100;
constexpr int kRounds = 6000;  // pairwise contacts
constexpr double kVoteFraction = 0.4;  // 40% vote +1, others 0

struct Errors {
  double pushsum = 0;
  double ballot = 0;
};

Errors run(double liar_fraction, std::uint64_t seed) {
  util::Rng rng(seed);
  const auto n_liars = static_cast<std::size_t>(liar_fraction * kN);

  // Ground truth over honest nodes only: mean vote value.
  std::vector<double> value(kN, 0.0);
  std::vector<bool> liar(kN, false);
  double truth = 0;
  for (std::size_t i = 0; i < kN; ++i) {
    liar[i] = i < n_liars;  // ids are symmetric; placement is irrelevant
    value[i] = rng.next_bool(kVoteFraction) ? 1.0 : 0.0;
    if (!liar[i]) truth += value[i];
  }
  truth /= static_cast<double>(kN - n_liars);

  // Push-sum population (liars re-inject +1 mass).
  std::vector<std::unique_ptr<baselines::PushSumNode>> pushsum;
  for (std::size_t i = 0; i < kN; ++i) {
    if (liar[i]) {
      pushsum.push_back(std::make_unique<baselines::LyingPushSumNode>(
          value[i], /*target=*/1.0, /*mass=*/0.5));
    } else {
      pushsum.push_back(std::make_unique<baselines::PushSumNode>(value[i]));
    }
  }

  // BallotBox population: each node polls directly; a liar always claims
  // +1. (No experience function here — this isolates the aggregation
  // mechanism itself; E only strengthens the BallotBox side further.)
  std::vector<vote::BallotBox> boxes(kN, vote::BallotBox(kN));
  std::vector<std::set<std::size_t>> met(kN);

  for (int round = 0; round < kRounds; ++round) {
    const auto i = static_cast<std::size_t>(rng.next_below(kN));
    auto j = static_cast<std::size_t>(rng.next_below(kN));
    while (j == i) j = static_cast<std::size_t>(rng.next_below(kN));
    // push-sum exchange (bidirectional).
    pushsum[j]->absorb(pushsum[i]->emit());
    pushsum[i]->absorb(pushsum[j]->emit());
    // ballot exchange: each side records the other's (claimed) vote.
    auto claimed = [&](std::size_t node) {
      const double v = liar[node] ? 1.0 : value[node];
      return v > 0 ? Opinion::kPositive : Opinion::kNone;
    };
    const auto vi = claimed(i);
    const auto vj = claimed(j);
    met[i].insert(j);
    met[j].insert(i);
    if (vj != Opinion::kNone) {
      boxes[i].merge(static_cast<PeerId>(j), {{0, vj, 0}}, round);
    }
    if (vi != Opinion::kNone) {
      boxes[j].merge(static_cast<PeerId>(i), {{0, vi, 0}}, round);
    }
  }

  // Mean absolute error of honest nodes' estimates vs honest truth.
  util::RunningStats pushsum_err, ballot_err;
  for (std::size_t i = 0; i < kN; ++i) {
    if (liar[i]) continue;
    pushsum_err.add(std::abs(pushsum[i]->estimate() - truth));
    // Ballot estimate: positives / sampled voters (abstainers are unseen,
    // estimate over the sampled share of the population).
    const auto tally = boxes[i].tally();
    const double positives =
        tally.contains(0) ? tally.at(0).positive : 0.0;
    // Estimate: fraction of the peers this node actually met that claimed
    // a positive vote (the opinion-poll estimator).
    const double sample = static_cast<double>(met[i].size());
    const double estimate = sample > 0 ? positives / sample : 0.0;
    ballot_err.add(std::abs(estimate - truth));
  }
  return Errors{pushsum_err.mean(), ballot_err.mean()};
}

}  // namespace

int main() {
  bench::banner("abl_aggregation",
                "A8 — BallotBox direct sampling vs push-sum epidemic "
                "aggregation [8] under lying voters");
  const std::size_t replicas = bench::ablation_replica_count();

  std::printf("\n%14s  %16s  %16s\n", "liar fraction", "push-sum error",
              "ballot error");
  util::CsvWriter csv("abl_aggregation.csv");
  csv.write_row({"liar_fraction", "pushsum_error", "ballot_error"});
  for (const double f : {0.0, 0.01, 0.02, 0.05, 0.10, 0.20}) {
    util::RunningStats ps, bb;
    for (std::size_t r = 0; r < replicas; ++r) {
      const Errors e = run(f, bench::env_seed() + 31 * r);
      ps.add(e.pushsum);
      bb.add(e.ballot);
    }
    std::printf("%14.2f  %16.4f  %16.4f\n", f, ps.mean(), bb.mean());
    csv.field(f).field(ps.mean()).field(bb.mean());
    csv.end_row();
  }
  std::printf(
      "\npush-sum is exact with no liars but its error explodes with even "
      "1-2%% liars;\nBallotBox error stays bounded by the liar fraction "
      "(one identity = one vote).\n");
  std::printf("\ncsv written: abl_aggregation.csv\n");
  return 0;
}
