// Ablation A5 — fake-experience (front-peer) collusion: max-flow vs naive
// contribution (paper §V-B / §VII; the "collusion proof experience
// function" claim).
//
// A clique of colluders gossips fabricated gigantic intra-clique transfers.
// For each honest node we count colluders it would deem experienced under
// (a) the BarterCast hop-bounded max-flow metric the system uses, and
// (b) a naive sum-of-claimed-upload metric. Max-flow throttles the fake
// edges at the genuine capacity between the clique and each node's
// neighborhood; the naive metric believes the claims wholesale.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/runner.hpp"

using namespace tribvote;

namespace {

constexpr std::size_t kCrowd = 20;
constexpr Duration kHorizon = 2 * kDay;
constexpr double kThresholdMb = 5.0;

core::ReplicaResult run_replica(const trace::Trace& tr, std::size_t index) {
  core::ScenarioConfig config;
  config.shards = bench::shard_count();
  config.ledger = bench::ledger_backend();
  config.faults = bench::fault_config();
  config.telemetry = bench::telemetry_config();
  config.vote.gossip_cache = bench::gossip_cache();
  config.attack.crowd_size = kCrowd;
  config.attack.start = 0;
  config.attack.duty = 1.0;          // moles stay online to gossip lies
  config.attack.fake_experience = true;
  config.attack.fake_mb = 10000.0;   // absurdly large claims
  core::ScenarioRunner runner(tr, config, 0xA5 + index);

  const std::size_t n_honest = runner.trace_peer_count();
  metrics::TimeSeries maxflow_fooled, naive_fooled, honest_edges;
  runner.sample_every(2 * kHour, [&](Time t) {
    std::size_t by_maxflow = 0, by_naive = 0, honest = 0;
    std::size_t arrived = 0;
    for (PeerId i = 0; i < n_honest; ++i) {
      if (!runner.has_arrived(i, t)) continue;
      ++arrived;
      const auto& agent = runner.node(i).barter();
      for (const PeerId c : runner.colluders()) {
        if (agent.contribution_of(c) >= kThresholdMb) ++by_maxflow;
        if (agent.naive_contribution_of(c) >= kThresholdMb) ++by_naive;
      }
      for (PeerId j = 0; j < n_honest; ++j) {
        if (i != j && agent.contribution_of(j) >= kThresholdMb) ++honest;
      }
    }
    const double pairs =
        std::max<double>(1.0, static_cast<double>(arrived) * kCrowd);
    const double hpairs = std::max<double>(
        1.0, static_cast<double>(arrived) * (static_cast<double>(n_honest) - 1));
    maxflow_fooled.add(t, static_cast<double>(by_maxflow) / pairs);
    naive_fooled.add(t, static_cast<double>(by_naive) / pairs);
    honest_edges.add(t, static_cast<double>(honest) / hpairs);
  });
  runner.run_until(kHorizon);

  core::ReplicaResult result;
  result.series["maxflow_fooled"] = std::move(maxflow_fooled);
  result.series["naive_fooled"] = std::move(naive_fooled);
  result.series["honest_experience"] = std::move(honest_edges);
  return result;
}

}  // namespace

int main() {
  bench::banner(
      "abl_fake_experience",
      "A5 — front-peer collusion: fraction of (honest node, colluder) "
      "pairs where the colluder fakes experience");
  const auto traces = bench::paper_dataset(bench::ablation_replica_count());
  const auto results = core::run_replicas(traces, run_replica);

  const auto maxflow = core::aggregate_named(results, "maxflow_fooled");
  const auto naive = core::aggregate_named(results, "naive_fooled");
  const auto honest = core::aggregate_named(results, "honest_experience");

  std::printf("\n%8s  %14s  %14s  %16s\n", "t_hours", "maxflow fooled",
              "naive fooled", "honest baseline");
  for (std::size_t i = 0; i < maxflow.times.size(); i += 2) {
    std::printf("%8.1f  %14.4f  %14.4f  %16.4f\n",
                to_hours(maxflow.times[i]), maxflow.mean[i], naive.mean[i],
                honest.mean[i]);
  }
  std::printf(
      "\nfinal: naive metric fooled on %.1f%% of pairs, max-flow on %.2f%% "
      "(paper: collusion is 'difficult and costly' under max-flow)\n",
      100 * naive.mean.back(), 100 * maxflow.mean.back());

  bench::write_csv("abl_fake_experience.csv",
                   {{"maxflow_fooled", maxflow},
                    {"naive_fooled", naive},
                    {"honest_experience", honest}});
  return 0;
}
