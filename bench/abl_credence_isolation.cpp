// Ablation A10 — Credence-style object reputation vs moderator-bound vote
// sampling under realistic voting sparsity — the §VIII comparison:
//
//   "users who don't vote, or do so only minimally, have no way of
//    distinguishing between honest and malicious voters... nearly fifty
//    percent of clients are isolated... In contrast our system doesn't
//    rely on a large number of people voting, yet still works for all
//    peers, regardless of their voting habits."
//
// Setup: the same population and the same voting sparsity for both
// systems. A `voting_fraction` of peers vote (the paper's footnote 5
// measured ≈5 votes per 1000 downloads on real platforms — voting is
// rare); everyone gathers others' votes through gossip.
//   * Credence: peers vote on *objects*; evaluation requires a vote
//     correlation, which requires having voted on co-voted objects.
//     Metric: fraction of peers isolated (no usable correlation).
//   * This paper's system: votes bind to *moderators*; any peer merges
//     sampled votes and, while bootstrapping, VoxPopuli top-K lists.
//     Metric: fraction of peers with no ranking at all.
#include <cstdio>
#include <memory>
#include <set>
#include <vector>

#include "baselines/credence.hpp"
#include "bench_common.hpp"
#include "crypto/schnorr.hpp"
#include "util/stats.hpp"
#include "vote/agent.hpp"

using namespace tribvote;

namespace {

constexpr std::size_t kPeers = 100;
constexpr std::size_t kObjects = 40;   // files in the Credence world
constexpr std::size_t kModerators = 5; // moderators in ours
constexpr int kRounds = 3000;          // pairwise gossip contacts

struct Outcome {
  double credence_isolated = 0;
  double tribvote_unranked = 0;
};

Outcome run(double voting_fraction, std::uint64_t seed) {
  util::Rng rng(seed);
  // Who votes at all (same set for both systems).
  std::vector<bool> votes_at_all(kPeers, false);
  for (std::size_t i = 0; i < kPeers; ++i) {
    votes_at_all[i] = rng.next_bool(voting_fraction);
  }

  // ---- Credence world ------------------------------------------------------
  std::vector<baselines::CredencePeer> credence;
  std::vector<std::vector<std::pair<baselines::ObjectId, Opinion>>>
      histories(kPeers);
  for (PeerId p = 0; p < kPeers; ++p) {
    credence.emplace_back(p, baselines::CredenceConfig{});
    if (!votes_at_all[p]) continue;
    // A voter votes on ~25% of objects; objects have a ground-truth
    // quality everyone agrees on (optimistic for Credence).
    for (baselines::ObjectId obj = 0; obj < kObjects; ++obj) {
      if (!rng.next_bool(0.25)) continue;
      const Opinion op =
          obj < kObjects / 2 ? Opinion::kPositive : Opinion::kNegative;
      credence[p].cast(obj, op);
      histories[p].emplace_back(obj, op);
    }
  }

  // ---- this paper's world ----------------------------------------------------
  std::vector<crypto::KeyPair> keys;
  std::vector<std::unique_ptr<vote::VoteAgent>> agents;
  for (PeerId p = 0; p < kPeers; ++p) {
    util::Rng krng(seed ^ (7777 + p));
    keys.push_back(crypto::generate_keypair(krng));
  }
  for (PeerId p = 0; p < kPeers; ++p) {
    agents.push_back(std::make_unique<vote::VoteAgent>(
        p, keys[p], vote::VoteConfig{}, [](PeerId) { return true; },
        util::Rng(seed ^ (8888 + p))));
    if (!votes_at_all[p]) continue;
    // The same voting effort, bound to moderators.
    for (ModeratorId m = 0; m < kModerators; ++m) {
      if (!rng.next_bool(0.5)) continue;
      agents[p]->cast_vote(m,
                           m < kModerators / 2 ? Opinion::kPositive
                                               : Opinion::kNegative,
                           0);
    }
  }

  // ---- identical gossip schedule over both ------------------------------------
  for (int round = 0; round < kRounds; ++round) {
    const auto i = static_cast<PeerId>(rng.next_below(kPeers));
    auto j = static_cast<PeerId>(rng.next_below(kPeers));
    while (j == i) j = static_cast<PeerId>(rng.next_below(kPeers));
    credence[i].observe(j, histories[j]);
    credence[j].observe(i, histories[i]);
    vote::vote_exchange(*agents[i], *agents[j], round);
  }

  Outcome out;
  std::size_t isolated = 0, unranked = 0;
  for (PeerId p = 0; p < kPeers; ++p) {
    if (credence[p].isolated()) ++isolated;
    if (agents[p]->current_ranking().empty()) ++unranked;
  }
  out.credence_isolated = static_cast<double>(isolated) / kPeers;
  out.tribvote_unranked = static_cast<double>(unranked) / kPeers;
  return out;
}

}  // namespace

int main() {
  bench::banner("abl_credence_isolation",
                "A10 — Credence object reputation vs moderator-bound vote "
                "sampling: who can rank anything? (§VIII)");
  const std::size_t replicas = bench::ablation_replica_count();

  std::printf("\n%16s  %20s  %22s\n", "voting fraction",
              "Credence isolated", "this system unranked");
  util::CsvWriter csv("abl_credence_isolation.csv");
  csv.write_row(
      {"voting_fraction", "credence_isolated", "tribvote_unranked"});
  for (const double f : {0.05, 0.10, 0.25, 0.50, 1.00}) {
    util::RunningStats iso, unr;
    for (std::size_t r = 0; r < replicas; ++r) {
      const Outcome o = run(f, bench::env_seed() + 101 * r);
      iso.add(o.credence_isolated);
      unr.add(o.tribvote_unranked);
    }
    std::printf("%16.2f  %20.3f  %22.3f\n", f, iso.mean(), unr.mean());
    csv.field(f).field(iso.mean()).field(unr.mean());
    csv.end_row();
  }
  std::printf(
      "\nCredence isolates exactly the non-voters (plus thin-overlap "
      "voters); moderator-bound sampling + VoxPopuli rank for everyone.\n");
  std::printf("\ncsv written: abl_credence_isolation.csv\n");
  return 0;
}
