// Shared scaffolding for the experiment harness binaries.
//
// Every bench regenerates one of the paper's figures (or an ablation):
// it prints a human-readable table reproducing the figure's series to
// stdout and writes the same data as CSV next to the working directory.
//
// Environment knobs are shared across all harness binaries and documented
// once in src/sim/options.hpp (TRIBVOTE_REPLICAS, TRIBVOTE_ABL_REPLICAS,
// TRIBVOTE_SEED, TRIBVOTE_SHARDS, TRIBVOTE_LEDGER); the inline wrappers
// below keep the bench::-local names the figure binaries use.
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/experiment.hpp"
#include "metrics/timeseries.hpp"
#include "sim/options.hpp"
#include "trace/generator.hpp"
#include "util/csv.hpp"
#include "util/time.hpp"

namespace tribvote::bench {

inline std::uint64_t env_seed() { return sim::options::seed(); }

inline std::size_t replica_count() { return sim::options::replicas(); }

inline std::size_t ablation_replica_count() {
  return sim::options::ablation_replicas();
}

/// Worker shards for each replica's population event kernel
/// (ScenarioConfig::shards). Golden CSVs are byte-identical for any value.
inline std::size_t shard_count() { return sim::options::shards(); }

/// Contribution-ledger backend (ScenarioConfig::ledger). Goldens are
/// recorded on the map backend; the sharded_log backend reproduces the
/// same metrics (bit-identical accounting, see bt/sharded_log_ledger.hpp).
inline bt::LedgerBackend ledger_backend() {
  return sim::options::ledger_backend();
}

/// Network fault plane (ScenarioConfig::faults, via TRIBVOTE_FAULTS).
/// Goldens are recorded with faults off; a faulty run is still
/// shard-count invariant but produces its own (deterministic) numbers.
inline sim::FaultConfig fault_config() { return sim::options::faults(); }

/// Telemetry plane (ScenarioConfig::telemetry, via TRIBVOTE_TELEMETRY).
/// Goldens are recorded with telemetry off AND are byte-identical with it
/// on — counters never perturb the simulation. Replicas run in parallel,
/// each owning a private registry; the benches never export trace files.
inline telemetry::TelemetryConfig telemetry_config() {
  return sim::options::telemetry();
}

/// Vote-history cache + delta gossip (VoteConfig::gossip_cache, via
/// TRIBVOTE_GOSSIP_CACHE). Semantically transparent: goldens are
/// byte-identical on (the default) and off.
inline bool gossip_cache() { return sim::options::gossip_cache(); }

/// The standard dataset: `n` synthetic 7-day/100-peer traces calibrated to
/// the filelist.org statistics (DESIGN.md §2).
inline std::vector<trace::Trace> paper_dataset(std::size_t n) {
  return trace::generate_dataset(trace::GeneratorParams{}, env_seed(), n);
}

/// Print a banner naming the experiment and its paper anchor.
inline void banner(const char* experiment, const char* paper_ref) {
  std::printf("================================================================\n");
  std::printf("%s\n", experiment);
  std::printf("reproduces: %s\n", paper_ref);
  std::printf(
      "replicas=%zu seed=%llu shards=%zu ledger=%s faults=%s telemetry=%s "
      "gossip_cache=%s\n",
      replica_count(), static_cast<unsigned long long>(env_seed()),
      shard_count(), bt::ledger_backend_name(ledger_backend()),
      sim::describe(fault_config()).c_str(),
      telemetry::describe(telemetry_config()).c_str(),
      gossip_cache() ? "on" : "off");
  std::printf("================================================================\n");
}

/// Print one aggregate series as "t(h)  mean  ±ci" rows under a label.
/// `stride` subsamples the grid for readability (CSV keeps every point).
inline void print_series(const char* label,
                         const metrics::AggregateSeries& agg,
                         std::size_t stride = 1) {
  std::printf("\n-- %s --\n", label);
  std::printf("%8s  %10s  %10s  %10s  %10s\n", "t_hours", "mean", "stderr",
              "min", "max");
  for (std::size_t i = 0; i < agg.times.size(); i += stride) {
    std::printf("%8.1f  %10.4f  %10.4f  %10.4f  %10.4f\n",
                to_hours(agg.times[i]), agg.mean[i], agg.stderr_mean[i],
                agg.min[i], agg.max[i]);
  }
}

/// Write one or more named aggregate series sharing a time grid to CSV.
inline void write_csv(const std::string& filename,
                      const std::vector<std::pair<
                          std::string, metrics::AggregateSeries>>& series) {
  util::CsvWriter csv(filename);
  if (!csv.ok()) {
    std::fprintf(stderr, "warning: cannot write %s\n", filename.c_str());
    return;
  }
  std::vector<std::string> header{"t_hours"};
  for (const auto& [name, agg] : series) {
    header.push_back(name + "_mean");
    header.push_back(name + "_stderr");
  }
  csv.write_row(header);
  if (series.empty()) return;
  const auto& grid = series.front().second.times;
  for (std::size_t i = 0; i < grid.size(); ++i) {
    csv.field(util::format_double(to_hours(grid[i]), 3));
    for (const auto& [name, agg] : series) {
      if (i < agg.mean.size()) {
        csv.field(agg.mean[i]).field(agg.stderr_mean[i]);
      } else {
        csv.field("").field("");
      }
    }
    csv.end_row();
  }
  std::printf("\ncsv written: %s\n", filename.c_str());
}

}  // namespace tribvote::bench
