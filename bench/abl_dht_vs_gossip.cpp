// Ablation A9 — DHT metadata storage vs gossip replication under churn —
// the §II design decision:
//
//   "We could have stored metadata in a Distributed Hash Table but these
//    require explicit leave and join operations which are costly in
//    systems with high churn [14]. Additionally, search performance is
//    considerably enhanced if metadata is stored locally because it is
//    not necessary to perform multi-hop look-ups."
//
// Both systems replay the same paper-calibrated trace's session churn:
//   * Chord ring: stabilization every 60 s, 50 metadata keys stored once
//     published; every 10 min each online node looks up a random key.
//     Costs: maintenance + routing messages, lookup failures, multi-hop
//     latency, data loss when all replicas churn out.
//   * ModerationCast: the full gossip stack on the same trace with 50
//     moderations from approved moderators; a "lookup" is a local_db hit
//     (0 hops by construction). Cost: gossip messages.
#include <cstdio>
#include <vector>

#include "bench_common.hpp"
#include "core/runner.hpp"
#include "dht/chord.hpp"
#include "trace/analyzer.hpp"

using namespace tribvote;

namespace {

constexpr std::size_t kKeys = 50;
constexpr Duration kStabilize = 60;
constexpr Duration kLookupEvery = 10 * kMinute;

struct DhtOutcome {
  double lookup_success = 0;
  double mean_hops = 0;
  double messages_per_node_hour = 0;
  double keys_surviving = 0;  ///< time-averaged fraction of keys alive
};

DhtOutcome run_dht(const trace::Trace& tr, std::uint64_t seed) {
  // Give the DHT a fair shake: 4 replicas per key and periodic
  // re-publication by the publisher while it is online (real deployments
  // do both; they cost messages, which is exactly the paper's point).
  dht::ChordConfig chord_config;
  chord_config.replication = 4;
  dht::ChordRing ring(tr.peers.size(), chord_config, util::Rng(seed));
  util::Rng rng(seed ^ 0xd47);

  // Time-stepped replay of the trace's session churn.
  std::vector<dht::Key> keys;
  util::RunningStats survival;
  std::size_t lookups = 0, successes = 0, hops = 0;
  std::size_t session_idx = 0;
  std::vector<std::pair<Time, PeerId>> offline_events;
  for (Time t = 0; t <= tr.duration; t += kStabilize) {
    // Session starts.
    while (session_idx < tr.sessions.size() &&
           tr.sessions[session_idx].start <= t) {
      ring.join(tr.sessions[session_idx].peer);
      offline_events.emplace_back(tr.sessions[session_idx].end,
                                  tr.sessions[session_idx].peer);
      ++session_idx;
    }
    // Session ends (events recorded when the session started).
    std::erase_if(offline_events, [&](const auto& ev) {
      if (ev.first > t) return false;
      ring.leave(ev.second);
      return true;
    });

    ring.stabilize_round();

    // Publish the keys early on, once enough nodes are up.
    if (keys.size() < kKeys && ring.online_count() >= 10) {
      const dht::Key key = rng();
      if (ring.store(ring.responsible_for(rng()), key)) keys.push_back(key);
    }
    // Publisher re-publication: lost keys are re-stored hourly by a random
    // online node that still has the original (the publisher's client).
    if (t % kHour == 0 && keys.size() == kKeys &&
        ring.online_count() >= 2) {
      for (const dht::Key key : keys) {
        if (!ring.key_alive(key)) {
          (void)ring.store(ring.responsible_for(rng()), key);
        }
      }
    }

    // Periodic lookups from every online node, plus a key-survival sample.
    if (t % kLookupEvery == 0 && !keys.empty()) {
      for (PeerId p = 0; p < tr.peers.size(); ++p) {
        if (!ring.is_online(p)) continue;
        const dht::Key key = keys[rng.next_below(keys.size())];
        const dht::LookupResult res = ring.lookup(p, key);
        ++lookups;
        if (res.success) {
          ++successes;
          hops += res.hops;
        }
      }
      if (keys.size() == kKeys) {
        std::size_t alive = 0;
        for (const dht::Key key : keys) {
          if (ring.key_alive(key)) ++alive;
        }
        survival.add(static_cast<double>(alive) /
                     static_cast<double>(keys.size()));
      }
    }
  }

  DhtOutcome out;
  out.lookup_success =
      lookups ? static_cast<double>(successes) / static_cast<double>(lookups)
              : 0.0;
  out.mean_hops =
      successes ? static_cast<double>(hops) / static_cast<double>(successes)
                : 0.0;
  out.messages_per_node_hour =
      static_cast<double>(ring.messages()) /
      (static_cast<double>(tr.peers.size()) * to_hours(tr.duration));
  out.keys_surviving = survival.mean();  // time-averaged availability
  return out;
}

struct GossipOutcome {
  double lookup_success = 0;  // online nodes holding a random item
  double messages_per_node_hour = 0;
};

GossipOutcome run_gossip(const trace::Trace& tr, std::uint64_t seed) {
  core::ScenarioConfig config;
  config.shards = bench::shard_count();
  config.ledger = bench::ledger_backend();
  config.faults = bench::fault_config();
  config.telemetry = bench::telemetry_config();
  config.vote.gossip_cache = bench::gossip_cache();
  core::ScenarioRunner runner(tr, config, seed);
  // 50 moderations from the earliest arrival; population approves it so
  // items relay at full gossip speed (the favourable case for gossip is
  // also the common one: metadata from approved moderators).
  const auto firsts = trace::earliest_arrivals(tr, 1);
  const ModeratorId m1 = firsts[0];
  for (std::size_t k = 0; k < kKeys; ++k) {
    runner.publish_moderation(m1, kMinute + static_cast<Time>(k), "item");
  }
  for (PeerId p = 0; p < tr.peers.size(); ++p) {
    if (p != m1) runner.script_vote_on_receipt(p, m1, Opinion::kPositive);
  }
  // Sample availability over the second half of the trace (steady state).
  util::RunningStats availability;
  runner.sample_every(6 * kHour, [&](Time t) {
    if (t < tr.duration / 2) return;
    std::size_t online = 0, holding = 0;
    for (PeerId p = 0; p < tr.peers.size(); ++p) {
      if (!runner.is_online(p)) continue;
      ++online;
      if (runner.node(p).mod().db().count_from(m1) > 0) ++holding;
    }
    if (online > 0) {
      availability.add(static_cast<double>(holding) /
                       static_cast<double>(online));
    }
  });
  runner.run_until(tr.duration);

  GossipOutcome out;
  out.lookup_success = availability.mean();
  // Each moderation exchange carries two messages (push + pull).
  out.messages_per_node_hour =
      2.0 * static_cast<double>(runner.stats().moderation_exchanges) /
      (static_cast<double>(tr.peers.size()) * to_hours(tr.duration));
  return out;
}

}  // namespace

int main() {
  bench::banner("abl_dht_vs_gossip",
                "A9 — Chord DHT storage vs ModerationCast gossip "
                "replication under trace churn (§II)");
  const auto traces = bench::paper_dataset(bench::ablation_replica_count());

  util::RunningStats dht_success, dht_hops, dht_msgs, dht_survive;
  util::RunningStats gos_success, gos_msgs;
  for (std::size_t r = 0; r < traces.size(); ++r) {
    const DhtOutcome d = run_dht(traces[r], bench::env_seed() + r);
    dht_success.add(d.lookup_success);
    dht_hops.add(d.mean_hops);
    dht_msgs.add(d.messages_per_node_hour);
    dht_survive.add(d.keys_surviving);
    const GossipOutcome g = run_gossip(traces[r], bench::env_seed() + r);
    gos_success.add(g.lookup_success);
    gos_msgs.add(g.messages_per_node_hour);
  }

  std::printf("\n%26s  %12s  %12s\n", "", "Chord DHT", "gossip");
  std::printf("%26s  %12.3f  %12.3f\n", "lookup success rate",
              dht_success.mean(), gos_success.mean());
  std::printf("%26s  %12.2f  %12.2f\n", "lookup hops", dht_hops.mean(), 0.0);
  std::printf("%26s  %12.1f  %12.1f\n", "messages / node / hour",
              dht_msgs.mean(), gos_msgs.mean());
  std::printf("%26s  %12.3f  %12s\n", "keys alive (time avg)",
              dht_survive.mean(), "1.000");

  util::CsvWriter csv("abl_dht_vs_gossip.csv");
  csv.write_row({"system", "lookup_success", "mean_hops",
                 "messages_per_node_hour", "keys_surviving"});
  csv.field("chord")
      .field(dht_success.mean())
      .field(dht_hops.mean())
      .field(dht_msgs.mean())
      .field(dht_survive.mean());
  csv.end_row();
  csv.field("gossip")
      .field(gos_success.mean())
      .field(0.0)
      .field(gos_msgs.mean())
      .field(1.0);
  csv.end_row();
  std::printf("\ncsv written: abl_dht_vs_gossip.csv\n");
  return 0;
}
