// Fuzz entry for the wire plane: the incremental FrameReader and every
// strict payload codec (PROTOCOL.md §3-§4, §8). Two harnesses share one
// corpus format, selected by the first input byte:
//
//   0x00        — stream mode: the rest is fed byte-split into a
//                 FrameReader; each popped frame's payload is dispatched
//                 to the decoder its type names.
//   0x01..0x09  — payload mode: the rest goes straight into one decoder
//                 (selector order matches kDecoders below). On a
//                 successful decode the message is re-encoded and must
//                 decode again — the codecs' canonical-form contract.
//
// Built as a libFuzzer target when the toolchain has one (clang
// -fsanitize=fuzzer); with GCC the standalone main() below replays corpus
// files and runs a deterministic mutation loop, so the same binary serves
// as the CI fuzz smoke. Nothing here asserts content semantics —
// signatures are the receiver's job — only memory safety and the
// decode/encode/decode closure.
#include <cassert>
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <vector>

#include "net/codec.hpp"
#include "net/frame.hpp"
#include "net/impairment.hpp"

namespace {

using namespace tribvote;
using namespace tribvote::net;

void decode_payload(std::uint8_t selector,
                    const std::vector<std::uint8_t>& payload) {
  switch (selector) {
    case 1: {
      HelloMessage m;
      if (decode_hello(payload, m)) {
        HelloMessage again;
        const bool ok = decode_hello(encode_hello(m), again);
        assert(ok);
        (void)ok;
      }
      break;
    }
    case 2: {
      EncounterBegin m;
      if (decode_encounter_begin(payload, m)) {
        EncounterBegin again;
        const bool ok = decode_encounter_begin(encode_encounter_begin(m), again);
        assert(ok);
        (void)ok;
      }
      break;
    }
    case 3: {
      vote::VoteListMessage m;
      if (decode_vote_full(payload, m)) {
        vote::VoteListMessage again;
        const bool ok = decode_vote_full(encode_vote_full(m), again);
        assert(ok);
        (void)ok;
      }
      break;
    }
    case 4: {
      vote::VoteDigestMessage m;
      if (decode_vote_digest(payload, m)) {
        vote::VoteDigestMessage again;
        const bool ok = decode_vote_digest(encode_vote_digest(m), again);
        assert(ok);
        (void)ok;
      }
      break;
    }
    case 5: {
      std::vector<std::size_t> missing;
      if (decode_delta_request(payload, missing)) {
        std::vector<std::size_t> again;
        const bool ok = decode_delta_request(encode_delta_request(missing), again);
        assert(ok && again == missing);
        (void)ok;
      }
      break;
    }
    case 6: {
      vote::VoteDeltaMessage m;
      if (decode_vote_delta(payload, m)) {
        vote::VoteDeltaMessage again;
        const bool ok = decode_vote_delta(encode_vote_delta(m), again);
        assert(ok);
        (void)ok;
      }
      break;
    }
    case 7: {
      vote::RankedList m;
      if (decode_vox_topk(payload, m)) {
        vote::RankedList again;
        const bool ok = decode_vox_topk(encode_vox_topk(m), again);
        assert(ok);
        (void)ok;
      }
      break;
    }
    case 8: {
      std::vector<moderation::Moderation> m;
      if (decode_mod_batch(payload, m)) {
        std::vector<moderation::Moderation> again;
        const bool ok = decode_mod_batch(encode_mod_batch(m), again);
        assert(ok);
        (void)ok;
      }
      break;
    }
    case 9: {
      PeerExchangeMessage m;
      if (decode_peer_exchange(payload, m)) {
        assert(m.descriptors.size() <= kMaxPeerDescriptors);
        PeerExchangeMessage again;
        const bool ok = decode_peer_exchange(encode_peer_exchange(m), again);
        assert(ok && again.descriptors.size() == m.descriptors.size());
        (void)ok;
      }
      break;
    }
    default:
      break;
  }
}

std::uint8_t selector_for(FrameType type) {
  switch (type) {
    case FrameType::kHello: return 1;
    case FrameType::kEncounterBegin: return 2;
    case FrameType::kVoteFull: return 3;
    case FrameType::kVoteDigest: return 4;
    case FrameType::kVoteDeltaRequest: return 5;
    case FrameType::kVoteDelta: return 6;
    case FrameType::kVoxTopK: return 7;
    case FrameType::kModBatch: return 8;
    case FrameType::kPeerExchange: return 9;
    default: return 0;  // EncounterEnd/Bye/requests carry no payload codec
  }
}

void fuzz_stream(const std::uint8_t* data, std::size_t size) {
  FrameReader reader;
  // Split the feed at data-derived points so the reader's resume-from-
  // partial-header and resume-from-partial-payload paths both run.
  std::size_t pos = 0;
  while (pos < size) {
    std::size_t chunk = 1 + (data[pos] % 37u);
    if (chunk > size - pos) chunk = size - pos;
    reader.feed(data + pos, chunk);
    pos += chunk;
    Frame f;
    while (reader.next(f)) {
      decode_payload(selector_for(f.type), f.payload);
    }
  }
  if (reader.corrupt()) {
    // Sticky: no frame may surface after corruption.
    reader.feed(data, size < 64 ? size : 64);
    Frame f;
    const bool none = !reader.next(f);
    assert(none);
    (void)none;
  }
  assert(reader.stats().bytes <= 2 * static_cast<std::uint64_t>(size));
}

}  // namespace

extern "C" int LLVMFuzzerTestOneInput(const std::uint8_t* data,
                                      std::size_t size) {
  if (size == 0) return 0;
  const std::uint8_t mode = data[0];
  std::vector<std::uint8_t> rest(data + 1, data + size);
  if (mode == 0) {
    fuzz_stream(rest.data(), rest.size());
  } else {
    decode_payload(mode, rest);
  }
  return 0;
}

#ifndef TRIBVOTE_HAVE_LIBFUZZER
// ---- standalone driver (GCC builds, CI fuzz smoke) -------------------------
//
//   frame_fuzz --make-corpus DIR     write seed inputs into DIR
//   frame_fuzz --random N SEED       N deterministic random/mutated inputs
//   frame_fuzz FILE...               replay corpus files

#include <cstdlib>
#include <string>

namespace {

using tribvote::Opinion;

struct SplitMix {
  std::uint64_t s;
  std::uint64_t next() {
    s += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = s;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }
};

std::vector<std::vector<std::uint8_t>> make_seeds() {
  std::vector<std::vector<std::uint8_t>> seeds;
  const auto add_payload = [&seeds](std::uint8_t selector,
                                    const std::vector<std::uint8_t>& payload) {
    std::vector<std::uint8_t> input;
    input.push_back(selector);
    input.insert(input.end(), payload.begin(), payload.end());
    seeds.push_back(input);
  };
  const auto add_stream = [&seeds](FrameType type, std::uint8_t channel,
                                   const std::vector<std::uint8_t>& payload) {
    Frame f;
    f.type = type;
    f.channel = channel;
    f.payload = payload;
    std::vector<std::uint8_t> input;
    input.push_back(0);  // stream mode
    encode_frame(f, input);
    seeds.push_back(input);
  };

  HelloMessage hello;
  hello.peer = 7;
  add_payload(1, encode_hello(hello));
  add_stream(FrameType::kHello, 0, encode_hello(hello));

  EncounterBegin begin;
  begin.kind = kEncounterVote;
  begin.time = 1234;
  add_payload(2, encode_encounter_begin(begin));
  add_stream(FrameType::kEncounterBegin, 0, encode_encounter_begin(begin));

  vote::VoteListMessage full;
  full.voter = 3;
  full.votes.push_back(vote::VoteEntry{5, Opinion::kPositive, 100});
  full.votes.push_back(vote::VoteEntry{9, Opinion::kNegative, 200});
  add_payload(3, encode_vote_full(full));
  add_stream(FrameType::kVoteFull, 1, encode_vote_full(full));

  vote::VoteDigestMessage digest;
  digest.voter = 3;
  digest.entries.push_back(vote::DigestEntry{5, 0xabcdef01u});
  add_payload(4, encode_vote_digest(digest));

  add_payload(5, encode_delta_request({0, 2, 5}));

  vote::VoteDeltaMessage delta;
  delta.voter = 3;
  delta.bound_checksum = 0x1234;
  delta.votes.push_back(vote::VoteEntry{5, Opinion::kPositive, 100});
  add_payload(6, encode_vote_delta(delta));

  add_payload(7, encode_vox_topk(vote::RankedList{4, 8, 15}));

  moderation::Moderation mod;
  mod.moderator = 2;
  mod.infohash = 0xfeed;
  mod.created = 50;
  mod.description = "seed";
  add_payload(8, encode_mod_batch({mod}));

  PeerExchangeMessage exchange;
  exchange.reply_requested = true;
  PeerDescriptor d;
  d.peer = 11;
  d.ip = 0x7f000001u;
  d.port = 4242;
  d.heartbeat = 77;
  exchange.descriptors.push_back(d);
  add_payload(9, encode_peer_exchange(exchange));
  add_stream(FrameType::kPeerExchange, 1, encode_peer_exchange(exchange));

  // Two frames back to back plus a truncated third — the reassembly path.
  {
    std::vector<std::uint8_t> input;
    input.push_back(0);
    Frame f;
    f.type = FrameType::kHello;
    f.payload = encode_hello(hello);
    encode_frame(f, input);
    f.type = FrameType::kPeerExchange;
    f.channel = 1;
    f.payload = encode_peer_exchange(exchange);
    encode_frame(f, input);
    input.resize(input.size() - 5);
    seeds.push_back(input);
  }

  // Impairment artifacts (DESIGN.md §16): the same healthy multi-frame
  // stream pushed through the transport chaos shim at full corruption /
  // truncation / GE-loss rates. These are the exact byte patterns an
  // impaired NodeService hands its FrameReader — bit-flipped chunks the
  // CRC must reject, a mid-frame prefix from a truncate-then-reset, and a
  // burst-loss stream that dies between chunk boundaries.
  {
    std::vector<std::uint8_t> healthy;
    Frame f;
    f.type = FrameType::kHello;
    f.payload = encode_hello(hello);
    encode_frame(f, healthy);
    vote::VoteListMessage big;
    big.voter = 3;
    for (std::uint32_t i = 0; i < 64; ++i) {
      big.votes.push_back(vote::VoteEntry{
          static_cast<ModeratorId>(1 + i % 24),
          (i % 2 == 0) ? Opinion::kPositive : Opinion::kNegative,
          static_cast<Time>(100 + i)});
    }
    f.type = FrameType::kVoteFull;
    f.channel = 1;
    f.payload = encode_vote_full(big);
    encode_frame(f, healthy);  // > 2 chunks: verdicts land mid-frame
    f.type = FrameType::kPeerExchange;
    f.payload = encode_peer_exchange(exchange);
    encode_frame(f, healthy);

    const auto add_impaired = [&seeds, &healthy](ImpairConfig icfg,
                                                 std::uint64_t seed) {
      Impairment shim(icfg, seed, 1);
      const std::uint64_t key = shim.open_stream();
      std::vector<Impairment::Action> actions;
      shim.ingest(key, healthy.data(), healthy.size(), actions);
      std::vector<std::uint8_t> input;
      input.push_back(0);  // stream mode
      for (const Impairment::Action& a : actions) {
        input.insert(input.end(), a.bytes.begin(), a.bytes.end());
      }
      if (input.size() > 1) seeds.push_back(input);
    };
    ImpairConfig corrupt;
    corrupt.corrupt_rate = 1.0;
    add_impaired(corrupt, 11);
    ImpairConfig truncate;
    truncate.truncate_rate = 1.0;
    add_impaired(truncate, 12);
    ImpairConfig bursty;
    bursty.ge_good_to_bad = 0.4;
    bursty.ge_loss_good = 0.05;
    add_impaired(bursty, 13);
  }
  return seeds;
}

int run_one_file(const char* path) {
  std::FILE* f = std::fopen(path, "rb");
  if (f == nullptr) {
    std::fprintf(stderr, "frame_fuzz: cannot open %s\n", path);
    return 1;
  }
  std::vector<std::uint8_t> data;
  std::uint8_t buf[4096];
  std::size_t n = 0;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
    data.insert(data.end(), buf, buf + n);
  }
  std::fclose(f);
  LLVMFuzzerTestOneInput(data.data(), data.size());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::string(argv[1]) == "--make-corpus") {
    const auto seeds = make_seeds();
    for (std::size_t i = 0; i < seeds.size(); ++i) {
      char path[512];
      std::snprintf(path, sizeof path, "%s/seed_%02zu.bin", argv[2], i);
      std::FILE* f = std::fopen(path, "wb");
      if (f == nullptr) {
        std::fprintf(stderr, "frame_fuzz: cannot write %s\n", path);
        return 1;
      }
      std::fwrite(seeds[i].data(), 1, seeds[i].size(), f);
      std::fclose(f);
    }
    std::printf("frame_fuzz: wrote %zu seeds to %s\n", seeds.size(), argv[2]);
    return 0;
  }
  if (argc >= 3 && std::string(argv[1]) == "--random") {
    const long iters = std::strtol(argv[2], nullptr, 10);
    SplitMix rng{argc >= 4 ? std::strtoull(argv[3], nullptr, 10) : 42u};
    const auto seeds = make_seeds();
    for (long i = 0; i < iters; ++i) {
      std::vector<std::uint8_t> input;
      if ((rng.next() & 1u) != 0 && !seeds.empty()) {
        // Mutate a seed: flip, truncate, or extend.
        input = seeds[rng.next() % seeds.size()];
        const std::uint64_t edits = 1 + rng.next() % 8;
        for (std::uint64_t e = 0; e < edits && !input.empty(); ++e) {
          switch (rng.next() % 3) {
            case 0:
              input[rng.next() % input.size()] ^=
                  static_cast<std::uint8_t>(rng.next());
              break;
            case 1:
              input.resize(1 + rng.next() % input.size());
              break;
            default:
              input.push_back(static_cast<std::uint8_t>(rng.next()));
              break;
          }
        }
      } else {
        const std::uint64_t len = rng.next() % 512;
        input.reserve(len);
        for (std::uint64_t b = 0; b < len; ++b) {
          input.push_back(static_cast<std::uint8_t>(rng.next()));
        }
      }
      LLVMFuzzerTestOneInput(input.data(), input.size());
    }
    std::printf("frame_fuzz: %ld random inputs, no crashes\n", iters);
    return 0;
  }
  int rc = 0;
  for (int i = 1; i < argc; ++i) rc |= run_one_file(argv[i]);
  if (argc == 1) {
    for (const auto& s : make_seeds()) {
      LLVMFuzzerTestOneInput(s.data(), s.size());
    }
    std::printf("frame_fuzz: replayed built-in seeds, no crashes\n");
  }
  return rc;
}
#endif  // TRIBVOTE_HAVE_LIBFUZZER
