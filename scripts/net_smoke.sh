#!/usr/bin/env bash
# Two-node localhost smoke: run a scripted encounter schedule over real TCP
# (two tribvote_node processes) and assert both endpoints' final state
# digests are byte-identical to the in-process sim oracle for the same
# schedule (PROTOCOL.md §6). Single-initiator schedule — the only kind that
# is oracle-deterministic.
#
# usage: scripts/net_smoke.sh [BUILD_DIR]   (default: build)
set -euo pipefail

BUILD_DIR="${1:-build}"
NODE="$BUILD_DIR/examples/tribvote_node"
[ -x "$NODE" ] || { echo "net_smoke: $NODE not built" >&2; exit 1; }

WORK="$(mktemp -d)"
trap 'rm -rf "$WORK"; [ -n "${RESP_PID:-}" ] && kill "$RESP_PID" 2>/dev/null || true' EXIT

# One schedule, three runs of it: oracle, TCP responder, TCP initiator.
A_ID=1;  A_SEED=11   # responder / acceptor
B_ID=2;  B_SEED=22   # initiator / dialer
ROUNDS=3; CASTS=2; MODS=2
SCHED=(--rounds "$ROUNDS" --casts "$CASTS" --mods "$MODS")

"$NODE" --oracle --id "$B_ID" --seed "$B_SEED" \
        --peer-id "$A_ID" --peer-seed "$A_SEED" \
        "${SCHED[@]}" --state-out "$WORK/oracle.txt" > /dev/null

"$NODE" --id "$A_ID" --seed "$A_SEED" --listen 0 --casts "$CASTS" \
        --mods "$MODS" --port-file "$WORK/port.txt" \
        --state-out "$WORK/resp.txt" > "$WORK/resp.log" 2>&1 &
RESP_PID=$!

for _ in $(seq 1 100); do [ -s "$WORK/port.txt" ] && break; sleep 0.1; done
[ -s "$WORK/port.txt" ] || { echo "net_smoke: responder never bound" >&2; exit 1; }
PORT="$(cat "$WORK/port.txt")"

"$NODE" --id "$B_ID" --seed "$B_SEED" --connect "127.0.0.1:$PORT" \
        "${SCHED[@]}" --state-out "$WORK/init.txt" > "$WORK/init.log" 2>&1

wait "$RESP_PID"
RESP_PID=""

# The TCP run must reproduce the oracle's per-node lines exactly.
cat "$WORK/init.txt" "$WORK/resp.txt" | sort > "$WORK/tcp.txt"
sort "$WORK/oracle.txt" > "$WORK/golden.txt"
if ! diff -u "$WORK/golden.txt" "$WORK/tcp.txt"; then
  echo "net_smoke: FAIL — TCP session state diverged from the sim oracle" >&2
  exit 1
fi
echo "net_smoke: OK — TCP state matches sim oracle ($(grep -c digest "$WORK/golden.txt") digests)"
