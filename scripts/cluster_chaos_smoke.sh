#!/usr/bin/env bash
# Free-running multi-process cluster smoke under transport chaos
# (DESIGN.md §16, EXPERIMENTS.md A12): the cluster_smoke.sh topology — N
# tribvote_node --swarm OS processes bootstrapping a Newscast directory
# from one seed node — but every node's inbound byte stream runs through
# the deterministic impairment shim at ~30 % Gilbert–Elliott chunk loss
# plus delay, corruption, truncation and half-open stalls. Asserts the
# stack *degrades instead of wedging*:
#   - every node still converged to a usable view (>= half the cluster)
#   - every node completed encounters and holds ballots from > N/2 peers
#   - the chaos actually ran: impairment verdict counters are nonzero
#     cluster-wide, and no node sat on a wedged half-open slot (the
#     deadline path evicted every stall)
#
# usage: scripts/cluster_chaos_smoke.sh [BUILD_DIR] [N] [ROUNDS]
#        (defaults: build 8 40)
set -euo pipefail

BUILD_DIR="${1:-build}"
N="${2:-8}"
ROUNDS="${3:-40}"
NODE="$BUILD_DIR/examples/tribvote_node"
[ -x "$NODE" ] || { echo "cluster_chaos_smoke: $NODE not built" >&2; exit 1; }
[ "$N" -ge 2 ] || { echo "cluster_chaos_smoke: need N >= 2" >&2; exit 1; }

WORK="$(mktemp -d)"
PIDS=()
trap 'for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$WORK"' EXIT

CASTS=2
BUDGET_MS=120000
IMPAIR="ge=0.3,delay=0.1,max_delay_ms=20,corrupt=0.01,truncate=0.01,stall=0.005"

# Node 1 is the seed everyone bootstraps from.
"$NODE" --swarm --id 1 --seed 101 --listen 0 --rounds "$ROUNDS" \
        --casts "$CASTS" --max-ms "$BUDGET_MS" --impair "$IMPAIR" \
        --port-file "$WORK/port.txt" --state-out "$WORK/node1.txt" \
        > "$WORK/node1.log" 2>&1 &
PIDS+=($!)

for _ in $(seq 1 100); do [ -s "$WORK/port.txt" ] && break; sleep 0.1; done
[ -s "$WORK/port.txt" ] || { echo "cluster_chaos_smoke: seed never bound" >&2; exit 1; }
PORT="$(cat "$WORK/port.txt")"

for i in $(seq 2 "$N"); do
  "$NODE" --swarm --id "$i" --seed "$((100 + i))" --listen 0 \
          --rounds "$ROUNDS" --casts "$CASTS" --max-ms "$BUDGET_MS" \
          --impair "$IMPAIR" \
          --bootstrap "127.0.0.1:$PORT" --state-out "$WORK/node$i.txt" \
          > "$WORK/node$i.log" 2>&1 &
  PIDS+=($!)
done

RC=0
for p in "${PIDS[@]}"; do wait "$p" || RC=1; done
PIDS=()
if [ "$RC" -ne 0 ]; then
  echo "cluster_chaos_smoke: FAIL — a node exited nonzero (wedged?)" >&2
  tail -n 6 "$WORK"/node*.log >&2 || true
  exit 1
fi

FULL=$((N - 1))
MIN_VIEW=$((FULL / 2))
fail() { echo "cluster_chaos_smoke: FAIL — $1" >&2; cat "$WORK"/node*.txt >&2; exit 1; }

CHUNKS=0; IMPAIRED=0
for i in $(seq 1 "$N"); do
  S="$WORK/node$i.txt"
  [ -s "$S" ] || fail "node $i wrote no state"

  view="$(awk '/ view /{print $NF}' "$S")"
  [ "$view" -ge "$MIN_VIEW" ] || fail "node $i view $view < $MIN_VIEW (no usable convergence)"

  completed="$(awk '/ completed /{for(f=1;f<NF;f++) if($f=="completed") print $(f+1)}' "$S")"
  [ "$completed" -gt 0 ] || fail "node $i completed no encounters"

  ballots="$(awk '/ ballots /{print $NF}' "$S")"
  [ "$ballots" -gt 0 ] || fail "node $i holds no ballots"

  # Vote sampling still reached most of the cluster through the chaos.
  voters="$(awk '/ unique_voters /{print $NF}' "$S")"
  [ "$voters" -gt $((N / 2)) ] || fail "node $i unique_voters $voters <= N/2"

  c="$(awk '/ impair chunks /{for(f=1;f<NF;f++) if($f=="chunks") print $(f+1)}' "$S")"
  d="$(awk '/ impair chunks /{for(f=1;f<NF;f++) if($f=="dropped") print $(f+1)}' "$S")"
  CHUNKS=$((CHUNKS + ${c:-0}))
  IMPAIRED=$((IMPAIRED + ${d:-0}))
done

# The chaos plane must have actually bitten: verdicts were drawn and some
# chunks were dropped somewhere in the cluster.
[ "$CHUNKS" -gt 0 ] || fail "no impairment verdicts drawn anywhere"
[ "$IMPAIRED" -gt 0 ] || fail "impairment on but zero chunks dropped"

echo "cluster_chaos_smoke: OK — $N nodes converged through ~30% GE loss" \
     "($CHUNKS chunks judged, $IMPAIRED dropped)"
