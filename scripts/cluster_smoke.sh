#!/usr/bin/env bash
# Free-running multi-process cluster smoke (PROTOCOL.md §8, equivalence
# rung (b)): N tribvote_node --swarm OS processes bootstrap a Newscast
# directory from one seed node and run the paper's encounter loop
# unattended. Asserts convergence and coverage, not digests — the
# free-running schedule is wall-clock-interleaved, so bit-identity is the
# round-barrier harness's job (examples/tribvote_cluster, §7):
#   - every node's directory converged to the full membership (view N-1)
#   - every node completed encounters and holds ballots from most peers
#   - the net.*/pss.* counters that prove discovery ran are all nonzero
#
# usage: scripts/cluster_smoke.sh [BUILD_DIR] [N] [ROUNDS]
#        (defaults: build 8 40)
set -euo pipefail

BUILD_DIR="${1:-build}"
N="${2:-8}"
ROUNDS="${3:-40}"
NODE="$BUILD_DIR/examples/tribvote_node"
[ -x "$NODE" ] || { echo "cluster_smoke: $NODE not built" >&2; exit 1; }
[ "$N" -ge 2 ] || { echo "cluster_smoke: need N >= 2" >&2; exit 1; }

WORK="$(mktemp -d)"
PIDS=()
trap 'for p in "${PIDS[@]:-}"; do kill "$p" 2>/dev/null || true; done; rm -rf "$WORK"' EXIT

CASTS=2
BUDGET_MS=60000

# Node 1 is the seed everyone bootstraps from.
"$NODE" --swarm --id 1 --seed 101 --listen 0 --rounds "$ROUNDS" \
        --casts "$CASTS" --max-ms "$BUDGET_MS" \
        --port-file "$WORK/port.txt" --state-out "$WORK/node1.txt" \
        > "$WORK/node1.log" 2>&1 &
PIDS+=($!)

for _ in $(seq 1 100); do [ -s "$WORK/port.txt" ] && break; sleep 0.1; done
[ -s "$WORK/port.txt" ] || { echo "cluster_smoke: seed never bound" >&2; exit 1; }
PORT="$(cat "$WORK/port.txt")"

for i in $(seq 2 "$N"); do
  "$NODE" --swarm --id "$i" --seed "$((100 + i))" --listen 0 \
          --rounds "$ROUNDS" --casts "$CASTS" --max-ms "$BUDGET_MS" \
          --bootstrap "127.0.0.1:$PORT" --state-out "$WORK/node$i.txt" \
          > "$WORK/node$i.log" 2>&1 &
  PIDS+=($!)
done

RC=0
for p in "${PIDS[@]}"; do wait "$p" || RC=1; done
PIDS=()
if [ "$RC" -ne 0 ]; then
  echo "cluster_smoke: FAIL — a node exited nonzero (wall-clock budget?)" >&2
  tail -n 5 "$WORK"/node*.log >&2 || true
  exit 1
fi

FULL=$((N - 1))
fail() { echo "cluster_smoke: FAIL — $1" >&2; cat "$WORK"/node*.txt >&2; exit 1; }

for i in $(seq 1 "$N"); do
  S="$WORK/node$i.txt"
  [ -s "$S" ] || fail "node $i wrote no state"

  view="$(awk '/ view /{print $NF}' "$S")"
  [ "$view" -eq "$FULL" ] || fail "node $i view $view != $FULL (no convergence)"

  completed="$(awk '/ completed /{for(f=1;f<NF;f++) if($f=="completed") print $(f+1)}' "$S")"
  [ "$completed" -gt 0 ] || fail "node $i completed no encounters"

  ballots="$(awk '/ ballots /{print $NF}' "$S")"
  [ "$ballots" -gt 0 ] || fail "node $i holds no ballots"

  # Vote sampling reached most of the cluster: ballots from > N/2 peers.
  voters="$(awk '/ unique_voters /{print $NF}' "$S")"
  [ "$voters" -gt $((N / 2)) ] || fail "node $i unique_voters $voters <= N/2"

  px="$(awk '/ net.peer_exchanges_in /{for(f=1;f<NF;f++) if($f=="net.peer_exchanges_in") print $(f+1)}' "$S")"
  pss="$(awk '/ pss.exchanges /{for(f=1;f<NF;f++) if($f=="pss.exchanges") print $(f+1)}' "$S")"
  [ "$px" -gt 0 ] || fail "node $i saw no peer exchanges (net.peer_exchanges_in)"
  [ "$pss" -gt 0 ] || fail "node $i pss.exchanges counter is zero"
done

echo "cluster_smoke: OK — $N nodes converged to view $FULL," \
     "all sampled > N/2 distinct voters"
