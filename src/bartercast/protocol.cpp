#include "bartercast/protocol.hpp"

#include <algorithm>

namespace tribvote::bartercast {

std::vector<BarterRecord> BarterAgent::outgoing_records(
    const bt::TransferLedger& ledger, Time now) const {
  if (ledger.version(self_) == reported_version_) return report_cache_;
  reported_version_ = ledger.version(self_);
  std::vector<bt::TransferRecord> direct = ledger.direct_view(self_);
  // Largest transfers first — they carry the most flow information.
  std::sort(direct.begin(), direct.end(),
            [](const bt::TransferRecord& a, const bt::TransferRecord& b) {
              if (a.mb != b.mb) return a.mb > b.mb;
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  if (direct.size() > config_.max_records_per_message) {
    direct.resize(config_.max_records_per_message);
  }
  report_cache_.clear();
  report_cache_.reserve(direct.size());
  for (const auto& r : direct) {
    report_cache_.push_back(BarterRecord{r.from, r.to, r.mb, now});
  }
  return report_cache_;
}

void BarterAgent::sync_direct(const bt::TransferLedger& ledger, Time now) {
  if (ledger.version(self_) == synced_version_) return;
  synced_version_ = ledger.version(self_);
  for (const auto& r : ledger.direct_view(self_)) {
    graph_.update_direct(r.from, r.to, r.mb, now);
  }
}

void BarterAgent::receive(PeerId sender,
                          const std::vector<BarterRecord>& records) {
  for (const auto& r : records) {
    // A peer may only report transfers it participated in; anything else
    // would not verify against its signature and is discarded.
    if (r.from != sender && r.to != sender) continue;
    // Claims about transfers involving *this* node are ignored: the node
    // has authoritative local knowledge of its own transfers (its direct
    // edges), so a fabricated "I uploaded X MB to you" carries no weight.
    if (r.from == self_ || r.to == self_) continue;
    graph_.merge_gossip(r);
  }
}

double BarterAgent::contribution_of(PeerId j) const {
  if (j == self_) return 0.0;
  return max_flow(graph_, j, self_, config_.max_path_edges);
}

}  // namespace tribvote::bartercast
