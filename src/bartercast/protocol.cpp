#include "bartercast/protocol.hpp"

#include <algorithm>

namespace tribvote::bartercast {

std::vector<BarterRecord> BarterAgent::outgoing_records(
    const bt::LedgerView& ledger, Time now) const {
  if (ledger.version(self_) == reported_version_) return report_cache_;
  reported_version_ = ledger.version(self_);
  std::vector<bt::TransferRecord> direct = ledger.direct_view(self_);
  // Largest transfers first — they carry the most flow information.
  std::sort(direct.begin(), direct.end(),
            [](const bt::TransferRecord& a, const bt::TransferRecord& b) {
              if (a.mb != b.mb) return a.mb > b.mb;
              if (a.from != b.from) return a.from < b.from;
              return a.to < b.to;
            });
  if (direct.size() > config_.max_records_per_message) {
    direct.resize(config_.max_records_per_message);
  }
  report_cache_.clear();
  report_cache_.reserve(direct.size());
  for (const auto& r : direct) {
    report_cache_.push_back(BarterRecord{r.from, r.to, r.mb, now});
  }
  return report_cache_;
}

void BarterAgent::sync_direct(const bt::LedgerView& ledger, Time now) {
  if (ledger.version(self_) == synced_version_) return;
  synced_version_ = ledger.version(self_);
  for (const auto& r : ledger.direct_view(self_)) {
    graph_.update_direct(r.from, r.to, r.mb, now);
  }
}

std::size_t BarterAgent::receive(PeerId sender,
                                 const std::vector<BarterRecord>& records) {
  std::size_t merged = 0;
  for (const auto& r : records) {
    // A peer may only report transfers it participated in; anything else
    // would not verify against its signature and is discarded.
    if (r.from != sender && r.to != sender) continue;
    // Claims about transfers involving *this* node are ignored: the node
    // has authoritative local knowledge of its own transfers (its direct
    // edges), so a fabricated "I uploaded X MB to you" carries no weight.
    if (r.from == self_ || r.to == self_) continue;
    graph_.merge_gossip(r);
    ++merged;
  }
  return merged;
}

double BarterAgent::contribution_of(PeerId j) const {
  if (j == self_) return 0.0;
  const std::uint64_t v = graph_.version();
  const auto it = contribution_cache_.find(j);
  if (it != contribution_cache_.end()) {
    if (it->second.version == v) {
      ++cache_stats_.hits;
      return it->second.mb;
    }
    // Fine-grained revalidation via the delta log — only sound for the
    // closed-form hop bound, where relevance of a mutated edge is exactly
    // "touches (j, *) or (*, self)". Longer bounds invalidate wholesale.
    if (config_.max_path_edges <= 2 &&
        graph_.deltas_since(it->second.version, j, self_) ==
            SubjectiveGraph::DeltaCheck::kUnaffected) {
      it->second.version = v;
      ++cache_stats_.revalidations;
      return it->second.mb;
    }
  }
  ++cache_stats_.misses;
  const double f = max_flow(graph_, j, self_, config_.max_path_edges);
  contribution_cache_.insert_or_assign(j, CachedContribution{f, v});
  return f;
}

const std::vector<double>& BarterAgent::contribution_column(
    std::size_t population) const {
  const std::uint64_t v = graph_.version();
  if (column_version_ == v && column_cache_.size() == population) {
    return column_cache_;
  }
  // Fine-grained revalidation: when every delta since the cached version
  // misses (*, self), only the delta tails' own rows can have moved —
  // recompute exactly those entries and keep the rest. This is what makes
  // per-round CEV sampling cheap under steady gossip: a wave of records
  // about a handful of peers touches a handful of entries, not O(n).
  if (config_.max_path_edges <= 2 && column_version_ != kNoColumn &&
      column_cache_.size() == population) {
    static thread_local std::vector<PeerId> stale;
    if (graph_.affected_sources_since(column_version_, self_, stale) ==
        SubjectiveGraph::DeltaCheck::kUnaffected) {
      for (const PeerId j : stale) {
        if (j < population && j != self_) {
          column_cache_[j] =
              graph_.two_hop_flow(j, self_, config_.max_path_edges);
        }
      }
      column_version_ = v;
      return column_cache_;
    }
  }
  column_cache_.assign(population, 0.0);
  if (config_.max_path_edges > 2) {
    for (PeerId j = 0; j < population; ++j) {
      column_cache_[j] = contribution_of(j);
    }
  } else {
    graph_.two_hop_flow_column(self_, config_.max_path_edges, column_cache_);
  }
  column_version_ = v;
  return column_cache_;
}

}  // namespace tribvote::bartercast
