// BarterCast gossip agent (Meulpolder et al., deployed in Tribler).
//
// Each node (a) records its own BitTorrent transfer statistics, (b) on every
// PSS encounter exchanges its *own direct* records — never relayed hearsay —
// with the counterpart, and (c) folds received records into its subjective
// graph. The contribution f_{j→i} that the experience function consumes is
// the hop-bounded max-flow from j to i in i's subjective graph.
//
// Contribution queries are memoized against the graph's version counter
// (subjective_graph.hpp): an unchanged graph answers repeat queries in O(1),
// and a stale entry is revalidated against the graph's delta log — only a
// mutation touching (source, *) or (*, self) can move a hop-≤2 flow, so
// gossip about unrelated pairs costs no recomputation. The cached value is
// the bit-identical result of the same max_flow() code path, never an
// approximation.
//
// Honest agents report truthfully from the shared ledger's per-peer direct
// view (through the read-only LedgerView half of the ledger API, so any
// backend serves); the attack module subclasses the reporting hook to
// model front-peer collusion (fabricated records).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bartercast/maxflow.hpp"
#include "bartercast/subjective_graph.hpp"
#include "bt/ledger.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace tribvote::bartercast {

struct BarterConfig {
  /// Max records per gossip message (deployed BarterCast sends its top
  /// entries by volume).
  std::size_t max_records_per_message = 25;
  /// Path bound for the max-flow contribution.
  int max_path_edges = kDefaultMaxPathEdges;
};

/// Observability counters for the contribution cache (tests and benches).
struct ContributionCacheStats {
  std::uint64_t hits = 0;           ///< exact version match
  std::uint64_t revalidations = 0;  ///< stale entry proven unaffected
  std::uint64_t misses = 0;         ///< recomputed from the graph
};

class BarterAgent {
 public:
  BarterAgent(PeerId self, BarterConfig config)
      : self_(self), config_(config) {}
  virtual ~BarterAgent() = default;

  /// The records this node sends on an encounter: its own direct transfers,
  /// largest volumes first, truncated to the message cap. Virtual so attack
  /// models can fabricate claims.
  [[nodiscard]] virtual std::vector<BarterRecord> outgoing_records(
      const bt::LedgerView& ledger, Time now) const;

  /// Refresh the agent's own direct edges from its local statistics.
  /// Cheap no-op when the ledger reports no change since the last sync.
  void sync_direct(const bt::LedgerView& ledger, Time now);

  /// Merge a counterpart's gossip message. Records not adjacent to the
  /// claimed sender are dropped record-wise (a node may only report about
  /// transfers it took part in — enforceable because messages are signed),
  /// so a damaged record in a batch never blocks its intact siblings.
  /// Returns the number of records actually merged; one-sided exchanges
  /// (only one direction delivered) are well-formed by construction, as
  /// each direction is an independent merge.
  std::size_t receive(PeerId sender, const std::vector<BarterRecord>& records);

  /// Contribution f_{j→self}: hop-bounded max-flow from j to self.
  /// Memoized on (j, graph version); see the file comment.
  [[nodiscard]] double contribution_of(PeerId j) const;

  /// The whole contribution column f_{j→self} for every j < population in
  /// one pass. For the deployed hop bound (≤ 2) the column costs one sweep
  /// of self's two-hop in-neighborhood — O(Σ_{k∈in(self)} indeg(k)) instead
  /// of `population` separate queries — and is itself cached per graph
  /// version, so repeat measurements on an unchanged graph are O(1).
  /// Per-entry summation order matches contribution_of exactly, so results
  /// are bit-identical to per-pair queries.
  [[nodiscard]] const std::vector<double>& contribution_column(
      std::size_t population) const;

  /// Naive alternative metric (Σ claimed upload of j) for the ablation.
  [[nodiscard]] double naive_contribution_of(PeerId j) const {
    return graph_.claimed_upload_mb(j);
  }

  [[nodiscard]] const SubjectiveGraph& graph() const noexcept {
    return graph_;
  }
  [[nodiscard]] PeerId self() const noexcept { return self_; }
  [[nodiscard]] const ContributionCacheStats& cache_stats() const noexcept {
    return cache_stats_;
  }

 protected:
  PeerId self_;
  BarterConfig config_;
  SubjectiveGraph graph_;

 private:
  // Ledger-version caches: sync/report work is skipped while the agent's
  // direct view is unchanged (the common case between transfers).
  static constexpr std::uint64_t kNeverSynced = ~std::uint64_t{0};
  std::uint64_t synced_version_ = kNeverSynced;
  mutable std::uint64_t reported_version_ = kNeverSynced;
  mutable std::vector<BarterRecord> report_cache_;

  // Contribution memoization, keyed on the subjective graph's version.
  struct CachedContribution {
    double mb;
    std::uint64_t version;
  };
  mutable std::unordered_map<PeerId, CachedContribution> contribution_cache_;
  mutable ContributionCacheStats cache_stats_;
  // Column cache: valid when column_version_ matches the graph and the
  // requested population size is unchanged.
  static constexpr std::uint64_t kNoColumn = ~std::uint64_t{0};
  mutable std::vector<double> column_cache_;
  mutable std::uint64_t column_version_ = kNoColumn;
};

}  // namespace tribvote::bartercast
