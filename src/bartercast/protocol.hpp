// BarterCast gossip agent (Meulpolder et al., deployed in Tribler).
//
// Each node (a) records its own BitTorrent transfer statistics, (b) on every
// PSS encounter exchanges its *own direct* records — never relayed hearsay —
// with the counterpart, and (c) folds received records into its subjective
// graph. The contribution f_{j→i} that the experience function consumes is
// the hop-bounded max-flow from j to i in i's subjective graph.
//
// Honest agents report truthfully from the shared TransferLedger's
// per-peer direct view; the attack module subclasses the reporting hook to
// model front-peer collusion (fabricated records).
#pragma once

#include <cstdint>
#include <vector>

#include "bartercast/maxflow.hpp"
#include "bartercast/subjective_graph.hpp"
#include "bt/transfer_ledger.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace tribvote::bartercast {

struct BarterConfig {
  /// Max records per gossip message (deployed BarterCast sends its top
  /// entries by volume).
  std::size_t max_records_per_message = 25;
  /// Path bound for the max-flow contribution.
  int max_path_edges = kDefaultMaxPathEdges;
};

class BarterAgent {
 public:
  BarterAgent(PeerId self, BarterConfig config)
      : self_(self), config_(config) {}
  virtual ~BarterAgent() = default;

  /// The records this node sends on an encounter: its own direct transfers,
  /// largest volumes first, truncated to the message cap. Virtual so attack
  /// models can fabricate claims.
  [[nodiscard]] virtual std::vector<BarterRecord> outgoing_records(
      const bt::TransferLedger& ledger, Time now) const;

  /// Refresh the agent's own direct edges from its local statistics.
  /// Cheap no-op when the ledger reports no change since the last sync.
  void sync_direct(const bt::TransferLedger& ledger, Time now);

  /// Merge a counterpart's gossip message. Records not adjacent to the
  /// claimed sender are dropped (a node may only report about transfers it
  /// took part in — enforceable because messages are signed).
  void receive(PeerId sender, const std::vector<BarterRecord>& records);

  /// Contribution f_{j→self}: hop-bounded max-flow from j to self.
  [[nodiscard]] double contribution_of(PeerId j) const;

  /// Naive alternative metric (Σ claimed upload of j) for the ablation.
  [[nodiscard]] double naive_contribution_of(PeerId j) const {
    return graph_.claimed_upload_mb(j);
  }

  [[nodiscard]] const SubjectiveGraph& graph() const noexcept {
    return graph_;
  }
  [[nodiscard]] PeerId self() const noexcept { return self_; }

 protected:
  PeerId self_;
  BarterConfig config_;
  SubjectiveGraph graph_;

 private:
  // Ledger-version caches: sync/report work is skipped while the agent's
  // direct view is unchanged (the common case between transfers).
  static constexpr std::uint64_t kNeverSynced = ~std::uint64_t{0};
  std::uint64_t synced_version_ = kNeverSynced;
  mutable std::uint64_t reported_version_ = kNeverSynced;
  mutable std::vector<BarterRecord> report_cache_;
};

}  // namespace tribvote::bartercast
