// The experience function E (paper §V-B) and the adaptive-threshold
// extension sketched in §VII.
//
//   E_i(j) = true  iff  f_{j→i} >= T
//
// where f is the BarterCast max-flow contribution. The fixed-threshold form
// is what all headline experiments use (T = 5 MB, chosen via Fig. 5);
// AdaptiveThreshold implements the paper's proposed future-work refinement:
// start at T = 0 and raise T whenever the dispersion of incoming votes
// exceeds D_max (dispersion signals the presence of coordinated liars),
// decaying T back when opinions re-converge.
#pragma once

#include <algorithm>
#include <cstdint>

#include "bartercast/protocol.hpp"
#include "util/ids.hpp"

namespace tribvote::bartercast {

/// Fixed-threshold experience function over a node's BarterAgent.
class ExperienceFunction {
 public:
  /// `agent` must outlive the function object.
  ExperienceFunction(const BarterAgent& agent, double threshold_mb)
      : agent_(&agent), threshold_mb_(threshold_mb) {}

  /// E_self(j): is j experienced from this node's point of view?
  [[nodiscard]] bool operator()(PeerId j) const {
    return agent_->contribution_of(j) >= threshold_mb_;
  }

  [[nodiscard]] double threshold_mb() const noexcept { return threshold_mb_; }
  void set_threshold_mb(double t) noexcept { threshold_mb_ = t; }

 private:
  const BarterAgent* agent_;
  double threshold_mb_;
};

/// Dispersion-driven adaptive threshold (§VII).
///
/// The node feeds in, per accepted vote batch, the *dispersion* of opinions
/// it currently observes: the mean, over moderators with at least two
/// sampled votes, of 1 - |pos - neg| / (pos + neg). Dispersion near 0 means
/// consensus; near 1 means maximal disagreement, the signature of a
/// vote-promotion attack. When dispersion exceeds `d_max` the threshold is
/// multiplied up (bounded by `t_max`); otherwise it decays toward `t_min`.
struct AdaptiveThresholdParams {
  double t_min = 0.0;      ///< starting / floor threshold (MB)
  double t_max = 256.0;    ///< cap (MB)
  double d_max = 0.4;      ///< dispersion trigger
  double raise_step = 2.0; ///< multiplier when triggered (from >=1 MB)
  double decay = 0.8;      ///< multiplier when calm
};

class AdaptiveThreshold {
 public:
  using Params = AdaptiveThresholdParams;

  explicit AdaptiveThreshold(Params params = Params{})
      : params_(params), threshold_mb_(params.t_min) {}

  /// Update with the current observed vote dispersion in [0, 1];
  /// returns the new threshold.
  double observe_dispersion(double dispersion) {
    if (dispersion > params_.d_max) {
      threshold_mb_ = std::min(
          params_.t_max, std::max(1.0, threshold_mb_) * params_.raise_step);
    } else {
      threshold_mb_ =
          std::max(params_.t_min, threshold_mb_ * params_.decay);
      if (threshold_mb_ < 1.0 && params_.t_min < 1.0) {
        // Below 1 MB the multiplicative decay stalls; snap to the floor.
        threshold_mb_ = params_.t_min;
      }
    }
    return threshold_mb_;
  }

  [[nodiscard]] double threshold_mb() const noexcept { return threshold_mb_; }
  [[nodiscard]] const Params& params() const noexcept { return params_; }

 private:
  Params params_;
  double threshold_mb_;
};

}  // namespace tribvote::bartercast
