#include "bartercast/subjective_graph.hpp"

#include <cassert>

namespace tribvote::bartercast {

void SubjectiveGraph::put(PeerId from, PeerId to, const EdgeInfo& info) {
  const auto [it, inserted] = out_[from].insert_or_assign(to, info);
  in_[to].insert_or_assign(from, info);
  if (inserted) ++n_edges_;
}

void SubjectiveGraph::update_direct(PeerId from, PeerId to, double mb,
                                    Time now) {
  assert(from != to);
  assert(mb >= 0);
  auto& row = out_[from];
  const auto it = row.find(to);
  if (it != row.end() && it->second.direct && it->second.mb == mb) {
    return;  // unchanged — skip the mirrored write entirely
  }
  put(from, to, EdgeInfo{mb, now, true});
}

void SubjectiveGraph::merge_gossip(const BarterRecord& record) {
  if (record.from == record.to || record.mb < 0) return;  // malformed
  const auto row = out_.find(record.from);
  if (row != out_.end()) {
    const auto it = row->second.find(record.to);
    if (it != row->second.end()) {
      if (it->second.direct) return;  // own observation is authoritative
      if (it->second.reported_at >= record.reported_at) return;  // stale
      if (it->second.mb == record.mb) {
        // Same value, fresher report: refresh the timestamp in place (the
        // mirrored in_ copy's timestamp is never read).
        it->second.reported_at = record.reported_at;
        return;
      }
    }
  }
  put(record.from, record.to,
      EdgeInfo{record.mb, record.reported_at, false});
}

double SubjectiveGraph::edge_mb(PeerId from, PeerId to) const {
  const auto row = out_.find(from);
  if (row == out_.end()) return 0.0;
  const auto it = row->second.find(to);
  return it == row->second.end() ? 0.0 : it->second.mb;
}

std::vector<std::pair<PeerId, double>> SubjectiveGraph::out_edges(
    PeerId from) const {
  std::vector<std::pair<PeerId, double>> edges;
  const auto row = out_.find(from);
  if (row == out_.end()) return edges;
  edges.reserve(row->second.size());
  for (const auto& [to, info] : row->second) {
    if (info.mb > 0) edges.emplace_back(to, info.mb);
  }
  return edges;
}

std::vector<std::pair<PeerId, double>> SubjectiveGraph::in_edges(
    PeerId to) const {
  std::vector<std::pair<PeerId, double>> edges;
  const auto row = in_.find(to);
  if (row == in_.end()) return edges;
  edges.reserve(row->second.size());
  for (const auto& [from, info] : row->second) {
    if (info.mb > 0) edges.emplace_back(from, info.mb);
  }
  return edges;
}

double SubjectiveGraph::claimed_upload_mb(PeerId peer) const {
  double total = 0;
  const auto row = out_.find(peer);
  if (row == out_.end()) return 0.0;
  for (const auto& [to, info] : row->second) total += info.mb;
  return total;
}

}  // namespace tribvote::bartercast
