#include "bartercast/subjective_graph.hpp"

#include <algorithm>
#include <cassert>

namespace tribvote::bartercast {

double CsrSnapshot::cap(std::uint32_t u, std::uint32_t v) const {
  const auto first = out_target.begin() + out_begin[u];
  const auto last = out_target.begin() + out_begin[u + 1];
  const auto it = std::lower_bound(first, last, v);
  if (it == last || *it != v) return 0.0;
  return out_cap[static_cast<std::size_t>(it - out_target.begin())];
}

void SubjectiveGraph::record_delta(PeerId from, PeerId to) {
  ++version_;
  if (delta_log_.size() >= 2 * kDeltaLogCapacity) {
    // Amortized O(1) trim: drop the oldest half in one move.
    delta_log_.erase(delta_log_.begin(),
                     delta_log_.begin() + kDeltaLogCapacity);
    delta_base_version_ += kDeltaLogCapacity;
  }
  delta_log_.push_back(EdgeDelta{from, to});
}

void SubjectiveGraph::put(PeerId from, PeerId to, const EdgeInfo& info) {
  const auto [it, inserted] = out_[from].insert_or_assign(to, info);
  const bool mb_changed = inserted || in_[to][from].mb != info.mb;
  in_[to].insert_or_assign(from, info);
  if (inserted) ++n_edges_;
  // Version tracks flow-relevant changes only: a re-pin or timestamp update
  // that leaves mb intact cannot change any max-flow answer.
  if (mb_changed) record_delta(from, to);
}

void SubjectiveGraph::update_direct(PeerId from, PeerId to, double mb,
                                    Time now) {
  assert(from != to);
  assert(mb >= 0);
  auto& row = out_[from];
  const auto it = row.find(to);
  if (it != row.end() && it->second.direct && it->second.mb == mb) {
    return;  // unchanged — skip the mirrored write entirely
  }
  put(from, to, EdgeInfo{mb, now, true});
}

void SubjectiveGraph::merge_gossip(const BarterRecord& record) {
  if (record.from == record.to || record.mb < 0) return;  // malformed
  const auto row = out_.find(record.from);
  if (row != out_.end()) {
    const auto it = row->second.find(record.to);
    if (it != row->second.end()) {
      if (it->second.direct) return;  // own observation is authoritative
      if (it->second.reported_at >= record.reported_at) return;  // stale
      if (it->second.mb == record.mb) {
        // Same value, fresher report: refresh the timestamp in place (the
        // mirrored in_ copy's timestamp is never read, and the flow value
        // is untouched so the version stays put).
        it->second.reported_at = record.reported_at;
        return;
      }
    }
  }
  put(record.from, record.to,
      EdgeInfo{record.mb, record.reported_at, false});
}

double SubjectiveGraph::edge_mb(PeerId from, PeerId to) const {
  const auto row = out_.find(from);
  if (row == out_.end()) return 0.0;
  const auto it = row->second.find(to);
  return it == row->second.end() ? 0.0 : it->second.mb;
}

std::vector<std::pair<PeerId, double>> SubjectiveGraph::out_edges(
    PeerId from) const {
  std::vector<std::pair<PeerId, double>> edges;
  const auto row = out_.find(from);
  if (row == out_.end()) return edges;
  edges.reserve(row->second.size());
  for (const auto& [to, info] : row->second) {
    if (info.mb > 0) edges.emplace_back(to, info.mb);
  }
  return edges;
}

std::vector<std::pair<PeerId, double>> SubjectiveGraph::in_edges(
    PeerId to) const {
  std::vector<std::pair<PeerId, double>> edges;
  const auto row = in_.find(to);
  if (row == in_.end()) return edges;
  edges.reserve(row->second.size());
  for (const auto& [from, info] : row->second) {
    if (info.mb > 0) edges.emplace_back(from, info.mb);
  }
  return edges;
}

double SubjectiveGraph::claimed_upload_mb(PeerId peer) const {
  double total = 0;
  const auto row = out_.find(peer);
  if (row == out_.end()) return 0.0;
  for (const auto& [to, info] : row->second) total += info.mb;
  return total;
}

SubjectiveGraph::DeltaCheck SubjectiveGraph::deltas_since(
    std::uint64_t since_version, PeerId source, PeerId sink) const {
  if (since_version >= version_) return DeltaCheck::kUnaffected;
  if (since_version < delta_base_version_) return DeltaCheck::kUnknown;
  const std::size_t first =
      static_cast<std::size_t>(since_version - delta_base_version_);
  for (std::size_t k = first; k < delta_log_.size(); ++k) {
    if (delta_log_[k].from == source || delta_log_[k].to == sink) {
      return DeltaCheck::kAffected;
    }
  }
  return DeltaCheck::kUnaffected;
}

double SubjectiveGraph::two_hop_flow(PeerId source, PeerId sink,
                                     int max_path_edges) const {
  if (source == sink || max_path_edges <= 0) return 0.0;
  double flow = edge_mb(source, sink);
  if (max_path_edges >= 2) {
    const auto out_row = out_.find(source);
    const auto in_row = in_.find(sink);
    if (out_row != out_.end() && in_row != in_.end()) {
      // Gather the two-hop terms, then sum in ascending-k order so the
      // accumulation order matches the CSR column pass bit-for-bit. The
      // scratch buffer is thread_local: no steady-state allocation, and
      // pool workers each get their own.
      static thread_local std::vector<std::pair<PeerId, double>> terms;
      terms.clear();
      const auto& into_sink = in_row->second;
      for (const auto& [k, info] : out_row->second) {
        if (k == sink || k == source || info.mb <= 0) continue;
        const auto cap_it = into_sink.find(k);
        if (cap_it == into_sink.end() || cap_it->second.mb <= 0) continue;
        terms.emplace_back(k, std::min(info.mb, cap_it->second.mb));
      }
      std::sort(terms.begin(), terms.end());
      for (const auto& term : terms) flow += term.second;
    }
  }
  return flow;
}

void SubjectiveGraph::two_hop_flow_column(PeerId sink, int max_path_edges,
                                          std::vector<double>& column) const {
  if (max_path_edges <= 0) return;
  const auto in_row = in_.find(sink);
  if (in_row == in_.end()) return;
  const std::size_t population = column.size();
  // Direct terms: each source receives exactly one, so hash order is fine
  // (the term is the first addition to a zeroed entry either way).
  for (const auto& [j, info] : in_row->second) {
    if (info.mb > 0 && j < population) column[j] += info.mb;
  }
  if (max_path_edges >= 2) {
    // Mid-hop nodes sorted ascending so every source's terms accumulate in
    // the same order two_hop_flow sums them. Within one mid-hop row each
    // source appears at most once, so the inner hash order is irrelevant.
    static thread_local std::vector<std::pair<PeerId, double>> mids;
    mids.clear();
    for (const auto& [k, info] : in_row->second) {
      if (info.mb > 0 && k != sink) mids.emplace_back(k, info.mb);
    }
    std::sort(mids.begin(), mids.end());
    for (const auto& [k, cap_in] : mids) {
      const auto k_row = in_.find(k);
      if (k_row == in_.end()) continue;
      for (const auto& [j, info] : k_row->second) {
        if (j == sink || info.mb <= 0 || j >= population) continue;
        column[j] += std::min(info.mb, cap_in);
      }
    }
  }
  if (sink < population) column[sink] = 0.0;
}

SubjectiveGraph::DeltaCheck SubjectiveGraph::affected_sources_since(
    std::uint64_t since_version, PeerId sink,
    std::vector<PeerId>& sources) const {
  sources.clear();
  if (since_version >= version_) return DeltaCheck::kUnaffected;
  if (since_version < delta_base_version_) return DeltaCheck::kUnknown;
  const std::size_t first =
      static_cast<std::size_t>(since_version - delta_base_version_);
  for (std::size_t k = first; k < delta_log_.size(); ++k) {
    if (delta_log_[k].to == sink) return DeltaCheck::kAffected;
    sources.push_back(delta_log_[k].from);
  }
  std::sort(sources.begin(), sources.end());
  sources.erase(std::unique(sources.begin(), sources.end()), sources.end());
  return DeltaCheck::kUnaffected;
}

const CsrSnapshot& SubjectiveGraph::csr() const {
  if (csr_.built_version != version_) build_csr();
  return csr_;
}

void SubjectiveGraph::build_csr() const {
  CsrSnapshot& snap = csr_;
  snap.peer_of.clear();
  snap.index_of_.clear();
  snap.peer_of.reserve(out_.size() + in_.size());
  for (const auto& [p, row] : out_) snap.peer_of.push_back(p);
  for (const auto& [p, row] : in_) {
    if (!out_.contains(p)) snap.peer_of.push_back(p);
  }
  std::sort(snap.peer_of.begin(), snap.peer_of.end());
  const auto n = static_cast<std::uint32_t>(snap.peer_of.size());
  snap.index_of_.reserve(n);
  for (std::uint32_t i = 0; i < n; ++i) snap.index_of_[snap.peer_of[i]] = i;

  // Counting pass (positive-capacity arcs only), then fill.
  snap.out_begin.assign(n + 1, 0);
  snap.in_begin.assign(n + 1, 0);
  std::size_t n_arcs = 0;
  for (const auto& [from, row] : out_) {
    const std::uint32_t u = snap.index_of_.at(from);
    for (const auto& [to, info] : row) {
      if (info.mb <= 0) continue;
      ++snap.out_begin[u + 1];
      ++snap.in_begin[snap.index_of_.at(to) + 1];
      ++n_arcs;
    }
  }
  for (std::uint32_t i = 0; i < n; ++i) {
    snap.out_begin[i + 1] += snap.out_begin[i];
    snap.in_begin[i + 1] += snap.in_begin[i];
  }
  snap.out_target.assign(n_arcs, 0);
  snap.out_cap.assign(n_arcs, 0.0);
  snap.in_source.assign(n_arcs, 0);
  snap.in_cap.assign(n_arcs, 0.0);
  std::vector<std::uint32_t> out_fill(snap.out_begin.begin(),
                                      snap.out_begin.end() - 1);
  std::vector<std::uint32_t> in_fill(snap.in_begin.begin(),
                                     snap.in_begin.end() - 1);
  for (const auto& [from, row] : out_) {
    const std::uint32_t u = snap.index_of_.at(from);
    for (const auto& [to, info] : row) {
      if (info.mb <= 0) continue;
      const std::uint32_t v = snap.index_of_.at(to);
      snap.out_target[out_fill[u]] = v;
      snap.out_cap[out_fill[u]++] = info.mb;
      snap.in_source[in_fill[v]] = u;
      snap.in_cap[in_fill[v]++] = info.mb;
    }
  }
  // Sort each row by neighbor index: deterministic iteration (and summation)
  // order plus binary-searchable lookups.
  auto sort_rows = [n](std::vector<std::uint32_t>& begin_idx,
                       std::vector<std::uint32_t>& nbr,
                       std::vector<double>& cap) {
    std::vector<std::pair<std::uint32_t, double>> row;
    for (std::uint32_t u = 0; u < n; ++u) {
      const std::size_t lo = begin_idx[u], hi = begin_idx[u + 1];
      row.clear();
      for (std::size_t a = lo; a < hi; ++a) row.emplace_back(nbr[a], cap[a]);
      std::sort(row.begin(), row.end());
      for (std::size_t a = lo; a < hi; ++a) {
        nbr[a] = row[a - lo].first;
        cap[a] = row[a - lo].second;
      }
    }
  };
  sort_rows(snap.out_begin, snap.out_target, snap.out_cap);
  sort_rows(snap.in_begin, snap.in_source, snap.in_cap);
  snap.built_version = version_;
}

}  // namespace tribvote::bartercast
