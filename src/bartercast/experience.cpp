// experience.hpp is header-only; this TU exists so the library always has
// at least one object file and the header is compiled standalone once.
#include "bartercast/experience.hpp"
