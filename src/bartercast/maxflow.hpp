// Hop-bounded max-flow over a subjective transfer graph.
//
// BarterCast derives the contribution f_{j→i} as the maximum flow from j to
// i using only short paths (the deployed protocol bounds paths to two edges:
// the direct edge plus one intermediary). Bounding path length is what makes
// the metric collusion-resistant: however large the fake edges a colluding
// clique reports among itself, flow into `i` is throttled by the genuine
// capacity of edges adjacent to `i`'s neighborhood.
//
// Implementation: Edmonds–Karp where the BFS is depth-capped at
// `max_path_edges`. For the BarterCast default (2 edges) this is exact —
// augmenting paths of length 1 and 2 in the residual graph never need
// reverse edges, so the result equals the true short-path max-flow
// cap(j→i) + Σ_k min(cap(j→k), cap(k→i)).
#pragma once

#include <cstdint>

#include "bartercast/subjective_graph.hpp"
#include "util/ids.hpp"

namespace tribvote::bartercast {

/// BarterCast's deployed path bound.
inline constexpr int kDefaultMaxPathEdges = 2;

/// Max flow (megabytes) from `source` to `sink` in `graph` using augmenting
/// paths of at most `max_path_edges` edges. Returns 0 when source == sink or
/// either endpoint is unknown.
[[nodiscard]] double max_flow(const SubjectiveGraph& graph, PeerId source,
                              PeerId sink,
                              int max_path_edges = kDefaultMaxPathEdges);

}  // namespace tribvote::bartercast
