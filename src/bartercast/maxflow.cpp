#include "bartercast/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <vector>

namespace tribvote::bartercast {

namespace {

constexpr std::uint32_t kNone = CsrSnapshot::kNoNode;

/// Flat residual network over the hop-bounded subgraph: nodes get local
/// dense ids, arcs are stored forward+reverse in one adjacency array with
/// each arc holding the index of its partner.
struct FlatResidual {
  struct Arc {
    std::uint32_t to;
    std::uint32_t rev;  ///< index of the paired reverse arc in adj[to]
    double cap;
  };
  std::vector<std::vector<Arc>> adj;

  explicit FlatResidual(std::size_t n) : adj(n) {}

  void add_edge(std::uint32_t u, std::uint32_t v, double c) {
    adj[u].push_back(Arc{v, static_cast<std::uint32_t>(adj[v].size()), c});
    adj[v].push_back(
        Arc{u, static_cast<std::uint32_t>(adj[u].size()) - 1, 0.0});
  }
};

/// Depth-capped Edmonds–Karp over the CSR snapshot for hop bounds > 2.
double bounded_edmonds_karp(const CsrSnapshot& csr, std::uint32_t source,
                            std::uint32_t sink, int max_path_edges) {
  // Collect forward edges among nodes reachable from the source within the
  // hop bound (BFS expansion), discarding anything that cannot lie on a
  // short source→sink path. Local ids index the residual.
  const std::uint32_t n = static_cast<std::uint32_t>(csr.node_count());
  std::vector<std::uint32_t> local_of(n, kNone);
  std::vector<std::uint32_t> global_of;
  std::vector<int> depth;
  auto localize = [&](std::uint32_t g) {
    if (local_of[g] == kNone) {
      local_of[g] = static_cast<std::uint32_t>(global_of.size());
      global_of.push_back(g);
      depth.push_back(0);
    }
    return local_of[g];
  };
  localize(source);
  struct Edge {
    std::uint32_t u, v;
    double cap;
  };
  std::vector<Edge> edges;
  for (std::size_t head = 0; head < global_of.size(); ++head) {
    const std::uint32_t gu = global_of[head];
    const int du = depth[head];
    if (du >= max_path_edges) continue;
    for (std::uint32_t a = csr.out_begin[gu]; a < csr.out_begin[gu + 1];
         ++a) {
      const std::uint32_t gv = csr.out_target[a];
      const bool fresh = local_of[gv] == kNone;
      const std::uint32_t lv = localize(gv);
      if (fresh) depth[lv] = du + 1;
      edges.push_back(
          Edge{static_cast<std::uint32_t>(head), lv, csr.out_cap[a]});
    }
  }
  const std::uint32_t lsink = local_of[sink];
  if (lsink == kNone) return 0.0;

  FlatResidual res(global_of.size());
  for (const Edge& e : edges) res.add_edge(e.u, e.v, e.cap);

  const std::uint32_t lsource = 0;  // source localized first
  std::vector<std::uint32_t> parent_node(global_of.size());
  std::vector<std::uint32_t> parent_arc(global_of.size());
  std::vector<int> dist(global_of.size());
  std::vector<std::uint32_t> queue;
  double total_flow = 0.0;
  for (;;) {
    // BFS for the shortest augmenting path, depth-capped.
    std::fill(dist.begin(), dist.end(), -1);
    queue.clear();
    queue.push_back(lsource);
    dist[lsource] = 0;
    bool found = false;
    for (std::size_t head = 0; head < queue.size() && !found; ++head) {
      const std::uint32_t u = queue[head];
      if (dist[u] >= max_path_edges) continue;
      for (std::uint32_t a = 0; a < res.adj[u].size(); ++a) {
        const FlatResidual::Arc& arc = res.adj[u][a];
        if (arc.cap <= 1e-12 || dist[arc.to] >= 0) continue;
        dist[arc.to] = dist[u] + 1;
        parent_node[arc.to] = u;
        parent_arc[arc.to] = a;
        if (arc.to == lsink) {
          found = true;
          break;
        }
        queue.push_back(arc.to);
      }
    }
    if (!found) break;

    // Bottleneck along the path, then augment.
    double bottleneck = std::numeric_limits<double>::infinity();
    for (std::uint32_t v = lsink; v != lsource; v = parent_node[v]) {
      bottleneck =
          std::min(bottleneck, res.adj[parent_node[v]][parent_arc[v]].cap);
    }
    for (std::uint32_t v = lsink; v != lsource; v = parent_node[v]) {
      FlatResidual::Arc& fwd = res.adj[parent_node[v]][parent_arc[v]];
      fwd.cap -= bottleneck;
      res.adj[fwd.to][fwd.rev].cap += bottleneck;
    }
    total_flow += bottleneck;
  }
  return total_flow;
}

}  // namespace

double max_flow(const SubjectiveGraph& graph, PeerId source, PeerId sink,
                int max_path_edges) {
  if (source == sink || max_path_edges <= 0) return 0.0;
  // Hop bounds ≤ 2 admit a closed form (every admissible path is
  // edge-disjoint from the others), answered straight off the hash
  // adjacency: a single query must not pay for a full CSR snapshot rebuild
  // when the graph mutated since the last one. The deployed BarterCast
  // configuration lives entirely on this path.
  if (max_path_edges <= 2) {
    return graph.two_hop_flow(source, sink, max_path_edges);
  }
  // Longer bounds need augmenting paths; the CSR snapshot pays for itself
  // here — Edmonds–Karp touches the whole bounded neighborhood anyway, and
  // the flat rows beat per-node hash-map walks by 4–5×.
  const CsrSnapshot& csr = graph.csr();
  const std::uint32_t s = csr.index_of(source);
  const std::uint32_t t = csr.index_of(sink);
  if (s == kNone || t == kNone) return 0.0;
  return bounded_edmonds_karp(csr, s, t, max_path_edges);
}

}  // namespace tribvote::bartercast
