#include "bartercast/maxflow.hpp"

#include <algorithm>
#include <limits>
#include <queue>
#include <unordered_map>
#include <vector>

namespace tribvote::bartercast {

namespace {

/// Residual network restricted to nodes within `max_path_edges` of the
/// source along forward edges (all relevant paths live there).
struct Residual {
  // node -> (neighbor -> residual capacity); includes reverse arcs.
  std::unordered_map<PeerId, std::unordered_map<PeerId, double>> cap;

  void add_edge(PeerId u, PeerId v, double c) {
    cap[u][v] += c;
    cap[v];  // ensure node exists
    if (!cap[v].contains(u)) cap[v][u] = 0.0;
  }
};

}  // namespace

namespace {

/// Closed forms for the hop bounds that admit them. With paths of ≤ 2 edges
/// every admissible path (j→i, j→k→i) is edge-disjoint from the others, so
/// the max flow is simply cap(j→i) + Σ_k min(cap(j→k), cap(k→i)). These
/// bounds cover the deployed BarterCast configuration and dominate the
/// experience-function hot path (CEV sampling queries all ordered pairs).
double short_path_flow(const SubjectiveGraph& graph, PeerId source,
                       PeerId sink, int max_path_edges) {
  double flow = graph.edge_mb(source, sink);
  if (max_path_edges >= 2) {
    for (const auto& [mid, cap_out] : graph.out_edges(source)) {
      if (mid == sink || mid == source) continue;
      const double cap_in = graph.edge_mb(mid, sink);
      if (cap_in > 0) flow += std::min(cap_out, cap_in);
    }
  }
  return flow;
}

}  // namespace

double max_flow(const SubjectiveGraph& graph, PeerId source, PeerId sink,
                int max_path_edges) {
  if (source == sink || max_path_edges <= 0) return 0.0;
  if (max_path_edges <= 2) {
    return short_path_flow(graph, source, sink, max_path_edges);
  }

  // Collect forward edges among nodes reachable from the source within the
  // hop bound (BFS expansion), discarding anything that cannot lie on a
  // short source→sink path.
  Residual res;
  std::unordered_map<PeerId, int> depth;
  depth[source] = 0;
  std::queue<PeerId> frontier;
  frontier.push(source);
  while (!frontier.empty()) {
    const PeerId u = frontier.front();
    frontier.pop();
    const int du = depth[u];
    if (du >= max_path_edges) continue;
    for (const auto& [v, mb] : graph.out_edges(u)) {
      res.add_edge(u, v, mb);
      if (!depth.contains(v)) {
        depth[v] = du + 1;
        frontier.push(v);
      }
    }
  }
  if (!res.cap.contains(sink)) return 0.0;

  double total_flow = 0.0;
  for (;;) {
    // BFS for the shortest augmenting path, depth-capped.
    std::unordered_map<PeerId, PeerId> parent;
    std::unordered_map<PeerId, int> dist;
    std::queue<PeerId> q;
    q.push(source);
    dist[source] = 0;
    bool found = false;
    while (!q.empty() && !found) {
      const PeerId u = q.front();
      q.pop();
      if (dist[u] >= max_path_edges) continue;
      for (const auto& [v, c] : res.cap[u]) {
        if (c <= 1e-12 || dist.contains(v)) continue;
        dist[v] = dist[u] + 1;
        parent[v] = u;
        if (v == sink) {
          found = true;
          break;
        }
        q.push(v);
      }
    }
    if (!found) break;

    // Bottleneck along the path.
    double bottleneck = std::numeric_limits<double>::infinity();
    for (PeerId v = sink; v != source; v = parent[v]) {
      bottleneck = std::min(bottleneck, res.cap[parent[v]][v]);
    }
    // Augment.
    for (PeerId v = sink; v != source; v = parent[v]) {
      const PeerId u = parent[v];
      res.cap[u][v] -= bottleneck;
      res.cap[v][u] += bottleneck;
    }
    total_flow += bottleneck;
  }
  return total_flow;
}

}  // namespace tribvote::bartercast
