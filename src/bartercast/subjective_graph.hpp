// A node's subjective view of who uploaded how much to whom.
//
// Built from (a) the node's own direct transfer observations, which are
// authoritative and can never be overwritten by gossip, and (b) records
// received through BarterCast gossip, where the freshest report per directed
// pair wins. Edge weights are megabytes uploaded; the experience function
// computes hop-bounded max-flow over this graph (maxflow.hpp).
//
// The graph carries a monotone `version()` counter, bumped exactly when a
// mutation changes some edge's flow capacity (new edge, or an mb change).
// Timestamp refreshes and re-pins that leave mb intact do NOT bump it, so
// the version doubles as a "could any max-flow answer have changed?" token.
// Consumers key caches on it (BarterAgent's contribution cache, the CSR
// snapshot below) and use the bounded delta log to revalidate stale entries
// without recomputing (`deltas_since`).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/ids.hpp"
#include "util/time.hpp"

namespace tribvote::bartercast {

/// One gossiped claim: "`from` uploaded `mb` megabytes to `to`",
/// as reported at `reported_at`.
struct BarterRecord {
  PeerId from = kInvalidPeer;
  PeerId to = kInvalidPeer;
  double mb = 0;
  Time reported_at = 0;
};

/// Flat, read-only adjacency snapshot of a SubjectiveGraph at one version.
///
/// Nodes get dense indices (sorted by PeerId); each row's arcs are sorted by
/// neighbor index, so iteration order — and therefore every floating-point
/// summation order downstream — is deterministic, and single-arc lookup is a
/// binary search. Only positive-capacity edges are materialized. Rebuilt
/// lazily whenever the graph version moves (SubjectiveGraph::csr()).
struct CsrSnapshot {
  static constexpr std::uint32_t kNoNode = ~std::uint32_t{0};

  std::uint64_t built_version = ~std::uint64_t{0};
  std::vector<PeerId> peer_of;  ///< dense index -> PeerId (ascending)
  std::unordered_map<PeerId, std::uint32_t> index_of_;
  // Out-adjacency: arcs of node u live in [out_begin[u], out_begin[u+1]).
  std::vector<std::uint32_t> out_begin;
  std::vector<std::uint32_t> out_target;
  std::vector<double> out_cap;
  // Mirrored in-adjacency (sources of arcs into u).
  std::vector<std::uint32_t> in_begin;
  std::vector<std::uint32_t> in_source;
  std::vector<double> in_cap;

  [[nodiscard]] std::size_t node_count() const noexcept {
    return peer_of.size();
  }
  /// Dense index of `peer`, or kNoNode when absent from the snapshot.
  [[nodiscard]] std::uint32_t index_of(PeerId peer) const {
    const auto it = index_of_.find(peer);
    return it == index_of_.end() ? kNoNode : it->second;
  }
  /// Capacity of arc u -> v (dense indices); 0 when absent. O(log deg(u)).
  [[nodiscard]] double cap(std::uint32_t u, std::uint32_t v) const;
};

class SubjectiveGraph {
 public:
  /// Record a direct observation by the owning node. Direct edges are
  /// pinned: later gossip about the same pair is ignored.
  void update_direct(PeerId from, PeerId to, double mb, Time now);

  /// Merge one gossiped record; freshest report per pair wins, and never
  /// overrides a direct observation.
  void merge_gossip(const BarterRecord& record);

  /// Megabytes on the directed edge from → to (0 when absent).
  [[nodiscard]] double edge_mb(PeerId from, PeerId to) const;

  /// Successors of `from` with positive weight.
  [[nodiscard]] std::vector<std::pair<PeerId, double>> out_edges(
      PeerId from) const;

  /// Predecessors of `to` with positive weight.
  [[nodiscard]] std::vector<std::pair<PeerId, double>> in_edges(
      PeerId to) const;

  /// Sum of all outgoing edge weights of `peer` — the *naive* contribution
  /// metric (total claimed upload). Deliberately exposed so the
  /// fake-experience ablation can contrast it against max-flow.
  [[nodiscard]] double claimed_upload_mb(PeerId peer) const;

  [[nodiscard]] std::size_t edge_count() const noexcept { return n_edges_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return out_.size();
  }

  /// Monotone counter of flow-relevant mutations (see file comment).
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// Verdict on whether any mutation in (since_version, version()] could
  /// change a hop-≤2 max-flow from `source` to `sink`. With paths of at most
  /// two edges, every candidate path is source→sink or source→k→sink, so a
  /// mutated edge (u, v) is relevant iff u == source or v == sink.
  enum class DeltaCheck : std::uint8_t {
    kUnaffected,  ///< no logged delta touches (source, *) or (*, sink)
    kAffected,    ///< some delta does — the cached flow must be recomputed
    kUnknown,     ///< the delta log no longer reaches back to since_version
  };
  [[nodiscard]] DeltaCheck deltas_since(std::uint64_t since_version,
                                        PeerId source, PeerId sink) const;

  /// Closed-form hop-bounded max flow for `max_path_edges` ≤ 2, computed
  /// straight off the hash adjacency: cap(source→sink) plus, when two-hop
  /// paths are admitted, Σ_k min(cap(source→k), cap(k→sink)). Every
  /// admissible path is edge-disjoint from the others at this bound, so the
  /// sum IS the max flow. Two-hop terms are accumulated in ascending-k
  /// order — the same order the CSR-based column pass uses — so the result
  /// is bit-identical across the per-query and batched code paths. Does NOT
  /// touch the CSR snapshot: single queries against a mutating graph stay
  /// O(deg) instead of paying an O(E) snapshot rebuild.
  [[nodiscard]] double two_hop_flow(PeerId source, PeerId sink,
                                    int max_path_edges) const;

  /// Batched form: accumulate two_hop_flow(j, sink) into column[j] for every
  /// source j < column.size() in one sweep of sink's two-hop in-neighborhood
  /// — O(Σ_{k∈in(sink)} indeg(k)) instead of column.size() separate queries.
  /// The caller supplies a zeroed column. Entries are bit-identical to
  /// two_hop_flow: per source the direct term lands first and the two-hop
  /// terms accumulate in ascending-k order (only the outer mid-hop order
  /// matters — each mid-hop node contributes at most one term per source).
  void two_hop_flow_column(PeerId sink, int max_path_edges,
                           std::vector<double>& column) const;

  /// Column-grade delta verdict: can mutations in (since_version, version()]
  /// change any hop-≤2 flow *into* `sink`? kAffected when some delta edge
  /// ends at the sink (every source's flow may have moved — rebuild the
  /// column); kUnaffected otherwise, with `sources` filled with the
  /// deduplicated tails of the logged deltas — exactly the sources whose
  /// cached column entries need recomputing.
  [[nodiscard]] DeltaCheck affected_sources_since(
      std::uint64_t since_version, PeerId sink,
      std::vector<PeerId>& sources) const;

  /// Flat adjacency snapshot of the current version, rebuilt lazily on
  /// version change. NOT thread-safe to call concurrently on one graph (it
  /// mutates the cached snapshot); distinct graphs are independent.
  [[nodiscard]] const CsrSnapshot& csr() const;

 private:
  struct EdgeInfo {
    double mb = 0;
    Time reported_at = 0;
    bool direct = false;
  };

  /// One flow-relevant mutation, for cache revalidation.
  struct EdgeDelta {
    PeerId from;
    PeerId to;
  };
  /// Deltas retained before stale caches fall back to recompute. Bounds both
  /// memory and the revalidation scan; sized so a full BarterCast message
  /// (25 records) plus a direct-view sync fits several times over.
  static constexpr std::size_t kDeltaLogCapacity = 256;

  // out_[a][b] mirrors in_[b][a]; both kept for fast max-flow neighborhood
  // expansion in either direction.
  std::unordered_map<PeerId, std::unordered_map<PeerId, EdgeInfo>> out_;
  std::unordered_map<PeerId, std::unordered_map<PeerId, EdgeInfo>> in_;
  std::size_t n_edges_ = 0;

  std::uint64_t version_ = 0;
  // delta_log_[k] is the mutation that moved the graph from version
  // delta_base_version_ + k to delta_base_version_ + k + 1.
  std::vector<EdgeDelta> delta_log_;
  std::uint64_t delta_base_version_ = 0;

  mutable CsrSnapshot csr_;

  void put(PeerId from, PeerId to, const EdgeInfo& info);
  void record_delta(PeerId from, PeerId to);
  void build_csr() const;
};

}  // namespace tribvote::bartercast
