// A node's subjective view of who uploaded how much to whom.
//
// Built from (a) the node's own direct transfer observations, which are
// authoritative and can never be overwritten by gossip, and (b) records
// received through BarterCast gossip, where the freshest report per directed
// pair wins. Edge weights are megabytes uploaded; the experience function
// computes hop-bounded max-flow over this graph (maxflow.hpp).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/ids.hpp"
#include "util/time.hpp"

namespace tribvote::bartercast {

/// One gossiped claim: "`from` uploaded `mb` megabytes to `to`",
/// as reported at `reported_at`.
struct BarterRecord {
  PeerId from = kInvalidPeer;
  PeerId to = kInvalidPeer;
  double mb = 0;
  Time reported_at = 0;
};

class SubjectiveGraph {
 public:
  /// Record a direct observation by the owning node. Direct edges are
  /// pinned: later gossip about the same pair is ignored.
  void update_direct(PeerId from, PeerId to, double mb, Time now);

  /// Merge one gossiped record; freshest report per pair wins, and never
  /// overrides a direct observation.
  void merge_gossip(const BarterRecord& record);

  /// Megabytes on the directed edge from → to (0 when absent).
  [[nodiscard]] double edge_mb(PeerId from, PeerId to) const;

  /// Successors of `from` with positive weight.
  [[nodiscard]] std::vector<std::pair<PeerId, double>> out_edges(
      PeerId from) const;

  /// Predecessors of `to` with positive weight.
  [[nodiscard]] std::vector<std::pair<PeerId, double>> in_edges(
      PeerId to) const;

  /// Sum of all outgoing edge weights of `peer` — the *naive* contribution
  /// metric (total claimed upload). Deliberately exposed so the
  /// fake-experience ablation can contrast it against max-flow.
  [[nodiscard]] double claimed_upload_mb(PeerId peer) const;

  [[nodiscard]] std::size_t edge_count() const noexcept { return n_edges_; }
  [[nodiscard]] std::size_t node_count() const noexcept {
    return out_.size();
  }

 private:
  struct EdgeInfo {
    double mb = 0;
    Time reported_at = 0;
    bool direct = false;
  };

  // out_[a][b] mirrors in_[b][a]; both kept for fast max-flow neighborhood
  // expansion in either direction.
  std::unordered_map<PeerId, std::unordered_map<PeerId, EdgeInfo>> out_;
  std::unordered_map<PeerId, std::unordered_map<PeerId, EdgeInfo>> in_;
  std::size_t n_edges_ = 0;

  void put(PeerId from, PeerId to, const EdgeInfo& info);
};

}  // namespace tribvote::bartercast
