#include "metrics/timeseries.hpp"

#include <cassert>

namespace tribvote::metrics {

AggregateSeries aggregate(const std::vector<TimeSeries>& replicas) {
  AggregateSeries agg;
  std::size_t longest = 0;
  const TimeSeries* grid = nullptr;
  for (const TimeSeries& r : replicas) {
    if (r.size() >= longest) {
      longest = r.size();
      grid = &r;
    }
  }
  if (grid == nullptr || longest == 0) return agg;

  for (std::size_t i = 0; i < longest; ++i) {
    util::RunningStats stats;
    for (const TimeSeries& r : replicas) {
      if (i < r.size()) {
        assert(r.times[i] == grid->times[i] && "replica grids must align");
        stats.add(r.values[i]);
      }
    }
    agg.times.push_back(grid->times[i]);
    agg.mean.push_back(stats.mean());
    agg.stderr_mean.push_back(stats.stderr_mean());
    agg.min.push_back(stats.min());
    agg.max.push_back(stats.max());
  }
  return agg;
}

}  // namespace tribvote::metrics
