#include "metrics/cev.hpp"

namespace tribvote::metrics {

double collective_experience_value(
    std::size_t n, const std::function<bool(PeerId, PeerId)>& experienced) {
  if (n < 2) return 0.0;
  std::size_t edges = 0;
  for (PeerId i = 0; i < n; ++i) {
    for (PeerId j = 0; j < n; ++j) {
      if (i != j && experienced(i, j)) ++edges;
    }
  }
  return static_cast<double>(edges) /
         (static_cast<double>(n) * static_cast<double>(n - 1));
}

double collective_experience_value(
    std::span<const bartercast::BarterAgent* const> agents,
    double threshold_mb) {
  return collective_experience_value(
      agents.size(), [&](PeerId i, PeerId j) {
        return agents[i]->contribution_of(j) >= threshold_mb;
      });
}

}  // namespace tribvote::metrics
