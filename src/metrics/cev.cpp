#include "metrics/cev.hpp"

#include <vector>

namespace tribvote::metrics {

namespace {

/// e_i(j) count for one sink i from its batched contribution column.
std::size_t experienced_count(const bartercast::BarterAgent& agent,
                              std::size_t n, PeerId i, double threshold_mb) {
  const std::vector<double>& column = agent.contribution_column(n);
  std::size_t edges = 0;
  for (PeerId j = 0; j < n; ++j) {
    if (j != i && column[j] >= threshold_mb) ++edges;
  }
  return edges;
}

double cev_from_edges(std::size_t edges, std::size_t n) {
  return static_cast<double>(edges) /
         (static_cast<double>(n) * static_cast<double>(n - 1));
}

}  // namespace

double collective_experience_value(
    std::size_t n, const std::function<bool(PeerId, PeerId)>& experienced) {
  if (n < 2) return 0.0;
  std::size_t edges = 0;
  for (PeerId i = 0; i < n; ++i) {
    for (PeerId j = 0; j < n; ++j) {
      if (i != j && experienced(i, j)) ++edges;
    }
  }
  return cev_from_edges(edges, n);
}

double collective_experience_value(
    std::span<const bartercast::BarterAgent* const> agents,
    double threshold_mb) {
  const std::size_t n = agents.size();
  if (n < 2) return 0.0;
  std::size_t edges = 0;
  for (PeerId i = 0; i < n; ++i) {
    edges += experienced_count(*agents[i], n, i, threshold_mb);
  }
  return cev_from_edges(edges, n);
}

double collective_experience_value(
    std::span<const bartercast::BarterAgent* const> agents,
    double threshold_mb, util::ThreadPool& pool) {
  const std::size_t n = agents.size();
  if (n < 2) return 0.0;
  std::vector<std::size_t> per_sink(n, 0);
  pool.parallel_for(n, [&](std::size_t i) {
    per_sink[i] = experienced_count(*agents[i], n, static_cast<PeerId>(i),
                                    threshold_mb);
  });
  std::size_t edges = 0;
  for (const std::size_t c : per_sink) edges += c;
  return cev_from_edges(edges, n);
}

}  // namespace tribvote::metrics
