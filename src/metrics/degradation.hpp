// Degradation reporting: flatten the fault plane's per-protocol counters
// into named (column, value) pairs for CSV output and bench tables
// (EXPERIMENTS.md "Fault sweep"). Column names are stable — they are part
// of the abl_fault_sweep.csv golden schema.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/fault_plane.hpp"
#include "telemetry/registry.hpp"

namespace tribvote::metrics {

/// The degradation column names, in CSV column order. Part of the
/// abl_fault_sweep.csv golden schema — append-only.
inline constexpr std::array<const char*, 17> kDegradationColumnNames = {
    "encounters_hit",  "dropped_requests", "dropped_replies",
    "delayed",         "late_drops",       "crashes",
    "unreachable",     "corrupted",        "rejected",
    "one_sided",       "vp_timeouts",      "vp_retries",
    "vp_retry_successes", "mod_reoffers",  "pss_drops",
    "partitioned",     "ge_bad_encounters",
};

/// The degradation values of one run, in kDegradationColumnNames order:
/// totals over every protocol plus the counters that only one protocol
/// owns (VoxPopuli retries, ModerationCast re-offers).
[[nodiscard]] inline std::array<std::uint64_t, 17> degradation_values(
    const sim::FaultStats& stats) {
  const sim::FaultCounters t = stats.total();
  return {
      t.encounters_hit,
      t.dropped_requests,
      t.dropped_replies,
      t.delayed,
      t.late_drops,
      t.crashes,
      t.unreachable,
      t.corrupted,
      t.rejected,
      t.one_sided,
      stats.vox.timeouts,
      stats.vox.retries,
      stats.vox.retry_successes,
      stats.moderation.reoffers,
      stats.newscast.dropped_requests,
      t.partitioned,
      t.ge_bad_encounters,
  };
}

/// The headline degradation columns of one run as (name, value) pairs for
/// CSV output and bench tables.
[[nodiscard]] inline std::vector<std::pair<std::string, std::uint64_t>>
degradation_columns(const sim::FaultStats& stats) {
  const std::array<std::uint64_t, 17> values = degradation_values(stats);
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(values.size());
  for (std::size_t i = 0; i < values.size(); ++i) {
    out.emplace_back(kDegradationColumnNames[i], values[i]);
  }
  return out;
}

/// Register the degradation counters on a telemetry registry under the
/// "fault." prefix, in column order. The runner mirrors the fault plane's
/// stats onto them each round via update_degradation, so per-round CSVs
/// and registry reads carry the same columns the fault sweep reports.
[[nodiscard]] inline std::vector<telemetry::CounterId> register_degradation(
    telemetry::Registry& registry) {
  std::vector<telemetry::CounterId> ids;
  ids.reserve(kDegradationColumnNames.size());
  for (const char* name : kDegradationColumnNames) {
    ids.push_back(registry.counter(std::string("fault.") + name));
  }
  return ids;
}

inline void update_degradation(telemetry::Registry& registry,
                               const std::vector<telemetry::CounterId>& ids,
                               const sim::FaultStats& stats) {
  const std::array<std::uint64_t, 17> values = degradation_values(stats);
  for (std::size_t i = 0; i < ids.size() && i < values.size(); ++i) {
    registry.set_total(ids[i], values[i]);
  }
}

}  // namespace tribvote::metrics
