// Degradation reporting: flatten the fault plane's per-protocol counters
// into named (column, value) pairs for CSV output and bench tables
// (EXPERIMENTS.md "Fault sweep"). Column names are stable — they are part
// of the abl_fault_sweep.csv golden schema.
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "sim/fault_plane.hpp"

namespace tribvote::metrics {

/// The headline degradation columns of one run: totals over every protocol
/// plus the counters that only one protocol owns (VoxPopuli retries,
/// ModerationCast re-offers). Order is the CSV column order.
[[nodiscard]] inline std::vector<std::pair<std::string, std::uint64_t>>
degradation_columns(const sim::FaultStats& stats) {
  const sim::FaultCounters t = stats.total();
  return {
      {"encounters_hit", t.encounters_hit},
      {"dropped_requests", t.dropped_requests},
      {"dropped_replies", t.dropped_replies},
      {"delayed", t.delayed},
      {"late_drops", t.late_drops},
      {"crashes", t.crashes},
      {"unreachable", t.unreachable},
      {"corrupted", t.corrupted},
      {"rejected", t.rejected},
      {"one_sided", t.one_sided},
      {"vp_timeouts", stats.vox.timeouts},
      {"vp_retries", stats.vox.retries},
      {"vp_retry_successes", stats.vox.retry_successes},
      {"mod_reoffers", stats.moderation.reoffers},
      {"pss_drops", stats.newscast.dropped_requests},
  };
}

}  // namespace tribvote::metrics
