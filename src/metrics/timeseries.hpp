// Time-series collection and cross-replica aggregation for the experiment
// harness. Every bench samples one or more named series on a fixed period,
// then aggregates the same series across replicas (traces) into mean ±
// stderr curves — the "average of 10 trace runs" lines in the paper's plots.
#pragma once

#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/time.hpp"

namespace tribvote::metrics {

/// One sampled curve: parallel vectors of times and values.
struct TimeSeries {
  std::vector<Time> times;
  std::vector<double> values;

  void add(Time t, double v) {
    times.push_back(t);
    values.push_back(v);
  }
  [[nodiscard]] std::size_t size() const noexcept { return times.size(); }
};

/// Aggregate of aligned series: per sample point, mean / stderr / count.
struct AggregateSeries {
  std::vector<Time> times;
  std::vector<double> mean;
  std::vector<double> stderr_mean;
  std::vector<double> min;
  std::vector<double> max;
};

/// Aggregate replicas sampled on identical time grids. All series must have
/// the same times; shorter series are allowed (e.g. a replica stopped
/// early) — points aggregate over however many replicas reached them.
[[nodiscard]] AggregateSeries aggregate(
    const std::vector<TimeSeries>& replicas);

}  // namespace tribvote::metrics
