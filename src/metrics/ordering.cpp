#include "metrics/ordering.hpp"

#include <algorithm>

namespace tribvote::metrics {

bool ordering_correct(const vote::RankedList& ranking,
                      std::span<const ModeratorId> expected) {
  std::size_t next = 0;  // index into `expected` we still need to find
  for (const ModeratorId m : ranking) {
    if (next < expected.size() && m == expected[next]) {
      ++next;
    } else if (std::find(expected.begin() +
                             static_cast<std::ptrdiff_t>(next),
                         expected.end(), m) != expected.end()) {
      return false;  // a later expected moderator appeared too early
    }
  }
  return next == expected.size();
}

double correct_ordering_fraction(std::span<const vote::RankedList> rankings,
                                 std::span<const ModeratorId> expected) {
  if (rankings.empty()) return 0.0;
  std::size_t correct = 0;
  for (const auto& r : rankings) {
    if (ordering_correct(r, expected)) ++correct;
  }
  return static_cast<double>(correct) /
         static_cast<double>(rankings.size());
}

bool is_polluted(const vote::RankedList& ranking, ModeratorId spam) {
  return !ranking.empty() && ranking.front() == spam;
}

double pollution_fraction(std::span<const vote::RankedList> rankings,
                          ModeratorId spam) {
  if (rankings.empty()) return 0.0;
  std::size_t polluted = 0;
  for (const auto& r : rankings) {
    if (is_polluted(r, spam)) ++polluted;
  }
  return static_cast<double>(polluted) /
         static_cast<double>(rankings.size());
}

}  // namespace tribvote::metrics
