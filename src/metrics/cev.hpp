// Collective Experience Value (paper §VI-A).
//
//   CEV = (1/N) Σ_i Σ_{j≠i} e_i(j) / (N-1),   e_i(j) = 1 iff E_i(j)
//
// A directed graph density over the experience relation: the fraction of
// ordered node pairs (i, j) where i considers j experienced. Requires
// global knowledge (each node's subjective BarterCast graph) — it is an
// evaluation-only metric, exactly as the paper's footnote 8 notes.
//
// The agent-based overloads pull each sink's whole contribution column in
// one batched pass (BarterAgent::contribution_column) instead of N separate
// max-flow queries, and can fan the sinks out across a thread pool: each
// task reads and memoizes only its own agent, and the per-sink counts are
// integers, so the parallel result is bit-identical to the serial one
// regardless of thread count or scheduling.
#pragma once

#include <functional>
#include <span>

#include "bartercast/protocol.hpp"
#include "util/thread_pool.hpp"

namespace tribvote::metrics {

/// CEV over a population of BarterCast agents with a fixed threshold T (MB).
/// `agents[i]` is node i's agent; N = agents.size().
[[nodiscard]] double collective_experience_value(
    std::span<const bartercast::BarterAgent* const> agents,
    double threshold_mb);

/// Same, with the per-sink columns computed in parallel across `pool`.
/// Deterministic (see file comment); safe because task i touches only
/// agents[i]'s caches.
[[nodiscard]] double collective_experience_value(
    std::span<const bartercast::BarterAgent* const> agents,
    double threshold_mb, util::ThreadPool& pool);

/// Generalized CEV over an arbitrary experience predicate e(i, j).
[[nodiscard]] double collective_experience_value(
    std::size_t n, const std::function<bool(PeerId, PeerId)>& experienced);

}  // namespace tribvote::metrics
