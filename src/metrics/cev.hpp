// Collective Experience Value (paper §VI-A).
//
//   CEV = (1/N) Σ_i Σ_{j≠i} e_i(j) / (N-1),   e_i(j) = 1 iff E_i(j)
//
// A directed graph density over the experience relation: the fraction of
// ordered node pairs (i, j) where i considers j experienced. Requires
// global knowledge (each node's subjective BarterCast graph) — it is an
// evaluation-only metric, exactly as the paper's footnote 8 notes.
#pragma once

#include <functional>
#include <span>

#include "bartercast/protocol.hpp"

namespace tribvote::metrics {

/// CEV over a population of BarterCast agents with a fixed threshold T (MB).
/// `agents[i]` is node i's agent; N = agents.size().
[[nodiscard]] double collective_experience_value(
    std::span<const bartercast::BarterAgent* const> agents,
    double threshold_mb);

/// Generalized CEV over an arbitrary experience predicate e(i, j).
[[nodiscard]] double collective_experience_value(
    std::size_t n, const std::function<bool(PeerId, PeerId)>& experienced);

}  // namespace tribvote::metrics
