// Ranking-quality metrics: the Fig. 6 correct-ordering fraction and the
// Fig. 8 pollution fraction.
#pragma once

#include <span>

#include "util/ids.hpp"
#include "vote/ranking.hpp"

namespace tribvote::metrics {

/// True when `ranking` contains every moderator of `expected` and they
/// appear in the same relative order (other moderators may interleave).
/// An incomplete ranking is "incorrect" — a node that has not yet heard of
/// a moderator cannot order it.
[[nodiscard]] bool ordering_correct(const vote::RankedList& ranking,
                                    std::span<const ModeratorId> expected);

/// Fraction of rankings in `rankings` that order `expected` correctly.
[[nodiscard]] double correct_ordering_fraction(
    std::span<const vote::RankedList> rankings,
    std::span<const ModeratorId> expected);

/// True when the ranking exists and puts `spam` first — a "defeated"
/// (polluted) node in the Fig. 8 sense.
[[nodiscard]] bool is_polluted(const vote::RankedList& ranking,
                               ModeratorId spam);

/// Fraction of rankings whose top entry is `spam`.
[[nodiscard]] double pollution_fraction(
    std::span<const vote::RankedList> rankings, ModeratorId spam);

}  // namespace tribvote::metrics
