#include "vote/agent.hpp"

#include <cassert>

#include "util/hash.hpp"

namespace tribvote::vote {

std::uint64_t VoteListMessage::digest() const {
  std::uint64_t h = util::digest_fields({voter, key.y, votes.size()});
  for (const VoteEntry& v : votes) {
    h = util::hash_combine(
        h, util::digest_fields(
               {v.moderator,
                static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(opinion_value(v.opinion))),
                static_cast<std::uint64_t>(v.cast_at)}));
  }
  return h;
}

VoteAgent::VoteAgent(PeerId self, const crypto::KeyPair& keys,
                     VoteConfig config, ExperienceCb experienced,
                     util::Rng rng)
    : self_(self),
      keys_(&keys),
      config_(config),
      experienced_(std::move(experienced)),
      rng_(rng),
      box_(config.b_max),
      observed_(config.b_max),
      vox_(config.v_max, config.k) {
  assert(experienced_);
  assert(config_.b_min <= config_.b_max);
}

void VoteAgent::cast_vote(ModeratorId moderator, Opinion opinion, Time now) {
  votes_.cast(moderator, opinion, now);
}

VoteListMessage VoteAgent::outgoing_votes(Time now) {
  VoteListMessage msg;
  msg.voter = self_;
  msg.key = keys_->pub;
  msg.votes = votes_.select_for_message(config_.max_votes_per_message, rng_,
                                        config_.selection);
  msg.signature = crypto::sign(*keys_, msg.digest(), rng_);
  (void)now;
  return msg;
}

ReceiveResult VoteAgent::receive_votes(const VoteListMessage& message,
                                       Time now) {
  if (message.voter == self_) return ReceiveResult::kSelfMessage;
  if (!crypto::verify(message.key, message.digest(), message.signature)) {
    return ReceiveResult::kBadSignature;  // forged or corrupted
  }
  if (message.votes.empty()) return ReceiveResult::kEmpty;
  // Every authentic message feeds the observed-dispersion signal, even
  // when the experience function rejects its votes.
  observed_.merge(message.voter, message.votes, now);
  if (!experienced_(message.voter)) {
    return ReceiveResult::kInexperienced;  // E_i(j) = false
  }
  box_.merge(message.voter, message.votes, now);
  return ReceiveResult::kAccepted;
}

std::map<ModeratorId, Tally> VoteAgent::augmented_tally() const {
  std::map<ModeratorId, Tally> tally = box_.tally();
  if (known_moderators) {
    for (const ModeratorId m : known_moderators()) {
      tally.try_emplace(m, Tally{});
    }
  }
  return tally;
}

RankedList VoteAgent::answer_topk() {
  if (bootstrapping()) return {};  // "null" — never relay second-hand lists
  return rank_top_k(augmented_tally(), config_.method, config_.k);
}

void VoteAgent::receive_topk(RankedList list) {
  if (list.empty()) return;
  vox_.add_list(std::move(list));
}

RankedList VoteAgent::current_ranking() const {
  if (box_.unique_voters() >= config_.b_min) {
    return rank(augmented_tally(), config_.method);
  }
  return vox_.merged_ranking();
}

std::optional<ModeratorId> VoteAgent::top_moderator() const {
  const RankedList ranking = current_ranking();
  if (ranking.empty()) return std::nullopt;
  return ranking.front();
}

void vote_exchange(VoteAgent& initiator, VoteAgent& responder, Time now) {
  // BallotBox leg (Fig. 3a/3b): mutual vote-list exchange. Messages are
  // built before any merge so the exchange is order-independent.
  VoteListMessage from_initiator = initiator.outgoing_votes(now);
  VoteListMessage from_responder = responder.outgoing_votes(now);
  responder.receive_votes(from_initiator, now);
  initiator.receive_votes(from_responder, now);

  // VoxPopuli leg (Fig. 3a/3c): only while the initiator is bootstrapping.
  if (initiator.bootstrapping()) {
    RankedList topk = responder.answer_topk();
    if (!topk.empty()) initiator.receive_topk(std::move(topk));
  }
}

}  // namespace tribvote::vote
