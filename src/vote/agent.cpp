#include "vote/agent.hpp"

#include <cassert>

#include "util/hash.hpp"
#include "vote/encounter.hpp"

namespace tribvote::vote {

std::uint64_t VoteListMessage::digest() const {
  std::uint64_t h = util::digest_fields({voter, key.y, votes.size()});
  for (const VoteEntry& v : votes) {
    h = util::hash_combine(
        h, util::digest_fields(
               {v.moderator,
                static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(opinion_value(v.opinion))),
                static_cast<std::uint64_t>(v.cast_at)}));
  }
  return h;
}

VoteAgent::VoteAgent(PeerId self, const crypto::KeyPair& keys,
                     VoteConfig config, ExperienceCb experienced,
                     util::Rng rng)
    : self_(self),
      keys_(&keys),
      config_(config),
      experienced_(std::move(experienced)),
      rng_(rng),
      box_(config.b_max),
      observed_(config.b_max),
      vox_(config.v_max, config.k),
      nonce_rng_(rng.derive(0x6e6f6e6365ULL)),  // "nonce"
      counterparts_(config.gossip_memory) {
  assert(experienced_);
  assert(config_.b_min <= config_.b_max);
}

void VoteAgent::cast_vote(ModeratorId moderator, Opinion opinion, Time now) {
  votes_.cast(moderator, opinion, now);
}

bool VoteAgent::selection_deterministic() const {
  // select_for_message consumes rng_ only when the list exceeds the cap
  // under a policy with a random share; everything else is a pure function
  // of the vote list, so its selected-and-signed message may be memoized.
  return votes_.size() <= config_.max_votes_per_message ||
         config_.selection == SelectionPolicy::kRecentOnly;
}

VoteListMessage VoteAgent::outgoing_votes(Time now) {
  ++gossip_stats_.builds;
  const bool cacheable = config_.gossip_cache && selection_deterministic();
  if (cacheable && cache_valid_ && cache_version_ == votes_.version() &&
      cache_policy_ == config_.selection &&
      cache_max_votes_ == config_.max_votes_per_message) {
    ++gossip_stats_.cache_hits;
    (void)now;
    return cache_msg_;
  }
  VoteListMessage msg;
  msg.voter = self_;
  msg.key = keys_->pub;
  msg.votes = votes_.select_for_message(config_.max_votes_per_message, rng_,
                                        config_.selection);
  msg.signature = crypto::sign(*keys_, msg.digest(), nonce_rng_);
  ++gossip_stats_.signatures;
  if (cacheable) {
    cache_valid_ = true;
    cache_version_ = votes_.version();
    cache_policy_ = config_.selection;
    cache_max_votes_ = config_.max_votes_per_message;
    cache_msg_ = msg;
  }
  (void)now;
  return msg;
}

ReceiveResult VoteAgent::receive_votes(const VoteListMessage& message,
                                       Time now) {
  if (message.voter == self_) return ReceiveResult::kSelfMessage;
  if (!crypto::verify(message.key, message.digest(), message.signature)) {
    return ReceiveResult::kBadSignature;  // forged or corrupted
  }
  return absorb_votes(message.voter, message.votes, now);
}

ReceiveResult VoteAgent::absorb_votes(PeerId voter,
                                      const std::vector<VoteEntry>& votes,
                                      Time now) {
  if (votes.empty()) return ReceiveResult::kEmpty;
  // Every authentic message feeds the observed-dispersion signal, even
  // when the experience function rejects its votes.
  observed_.merge(voter, votes, now);
  if (!experienced_(voter)) {
    return ReceiveResult::kInexperienced;  // E_i(j) = false
  }
  box_.merge(voter, votes, now);
  return ReceiveResult::kAccepted;
}

std::optional<VoteEntry> VoteAgent::covered_by(PeerId voter,
                                               const DigestEntry& entry) const {
  if (auto held = box_.find(voter, entry.moderator);
      held && entry_check(*held) == entry.check) {
    return held;
  }
  if (auto seen = observed_.find(voter, entry.moderator);
      seen && entry_check(*seen) == entry.check) {
    return seen;
  }
  return std::nullopt;
}

std::vector<std::size_t> VoteAgent::scan_digest(
    const VoteDigestMessage& digest) const {
  std::vector<std::size_t> missing;
  for (std::size_t i = 0; i < digest.entries.size(); ++i) {
    if (!covered_by(digest.voter, digest.entries[i])) missing.push_back(i);
  }
  return missing;
}

VoteDeltaMessage VoteAgent::build_delta(
    const VoteListMessage& full, const std::vector<std::size_t>& missing) {
  VoteDeltaMessage delta;
  delta.voter = self_;
  delta.key = keys_->pub;
  delta.bound_checksum = make_digest(full).checksum;
  delta.votes.reserve(missing.size());
  for (const std::size_t pos : missing) {
    assert(pos < full.votes.size());
    delta.votes.push_back(full.votes[pos]);
  }
  delta.signature = crypto::sign(*keys_, delta.digest(), nonce_rng_);
  ++gossip_stats_.signatures;
  return delta;
}

ReceiveResult VoteAgent::receive_delta(const VoteDigestMessage& digest,
                                       const VoteDeltaMessage* delta,
                                       Time now) {
  if (digest.voter == self_) return ReceiveResult::kSelfMessage;
  if (!digest_intact(digest)) return ReceiveResult::kBadSignature;
  const std::vector<std::size_t> missing = scan_digest(digest);
  if (delta == nullptr) {
    if (!missing.empty()) return ReceiveResult::kBadSignature;
  } else {
    // Bind the delta to this digest and this identity, size it against the
    // scan, verify its one signature, then pin every carried entry to the
    // digest line it fills. Any mismatch rejects wholesale.
    if (delta->voter != digest.voter || !(delta->key == digest.key) ||
        delta->bound_checksum != digest.checksum ||
        delta->votes.size() != missing.size()) {
      return ReceiveResult::kBadSignature;
    }
    if (!crypto::verify(delta->key, delta->digest(), delta->signature)) {
      return ReceiveResult::kBadSignature;
    }
    for (std::size_t i = 0; i < missing.size(); ++i) {
      const DigestEntry& line = digest.entries[missing[i]];
      if (delta->votes[i].moderator != line.moderator ||
          entry_check(delta->votes[i]) != line.check) {
        return ReceiveResult::kBadSignature;
      }
    }
  }
  // Reconstruct the exact vector the sender selected, in digest order, and
  // absorb it through the common path — received-timestamp refreshes and
  // eviction order come out bit-identical to a full exchange.
  std::vector<VoteEntry> votes;
  votes.reserve(digest.entries.size());
  std::size_t cursor = 0;
  for (std::size_t i = 0; i < digest.entries.size(); ++i) {
    if (cursor < missing.size() && missing[cursor] == i) {
      votes.push_back(delta->votes[cursor]);
      ++cursor;
    } else {
      const auto held = covered_by(digest.voter, digest.entries[i]);
      if (!held) return ReceiveResult::kBadSignature;  // unreachable
      votes.push_back(*held);
    }
  }
  return absorb_votes(digest.voter, votes, now);
}

std::map<ModeratorId, Tally> VoteAgent::augmented_tally() const {
  std::map<ModeratorId, Tally> tally = box_.tally();
  if (known_moderators) {
    for (const ModeratorId m : known_moderators()) {
      tally.try_emplace(m, Tally{});
    }
  }
  return tally;
}

RankedList VoteAgent::answer_topk() {
  if (bootstrapping()) return {};  // "null" — never relay second-hand lists
  return rank_top_k(augmented_tally(), config_.method, config_.k);
}

void VoteAgent::receive_topk(RankedList list) {
  if (list.empty()) return;
  vox_.add_list(std::move(list));
}

RankedList VoteAgent::current_ranking() const {
  if (box_.unique_voters() >= config_.b_min) {
    return rank(augmented_tally(), config_.method);
  }
  return vox_.merged_ranking();
}

std::uint64_t VoteAgent::state_digest() const {
  std::uint64_t h = util::digest_fields(
      {self_, keys_->pub.y, votes_.version(), votes_.entries().size()});
  for (const VoteEntry& v : votes_.entries()) {
    h = util::hash_combine(
        h, util::digest_fields(
               {v.moderator,
                static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(opinion_value(v.opinion))),
                static_cast<std::uint64_t>(v.cast_at)}));
  }
  h = util::hash_combine(h, box_.digest());
  h = util::hash_combine(h, observed_.digest());
  h = util::hash_combine(h, vox_.digest());
  h = util::hash_combine(h, counterparts_.digest());
  return h;
}

std::optional<ModeratorId> VoteAgent::top_moderator() const {
  const RankedList ranking = current_ranking();
  if (ranking.empty()) return std::nullopt;
  return ranking.front();
}

GossipLegOutcome gossip_send(VoteAgent& sender, VoteAgent& receiver, Time now,
                             WireFault fault, std::uint64_t salt) {
  GossipLegOutcome leg;
  const GossipStats before = sender.gossip_stats();
  VoteListMessage full = sender.outgoing_votes(now);
  leg.list_size = full.votes.size();
  const bool use_delta = sender.config().gossip_cache && !full.votes.empty() &&
                         sender.counterparts().known(receiver.self());
  if (!use_delta) {
    damage_message(full, fault, salt);
    leg.bytes = wire_size(full);
    leg.result = receiver.receive_votes(full, now);
  } else {
    VoteDigestMessage digest = make_digest(full);
    // The fault verdict hits exactly one frame of the leg; the salt routes
    // it to the digest or to the delta, deterministically.
    const bool hit_digest = fault != WireFault::kNone && ((salt >> 6) & 1) == 0;
    if (hit_digest) damage_digest(digest, fault, salt);
    leg.bytes = wire_size(digest);
    if (!digest_intact(digest)) {
      // Receiver can't trust the frame — it requests a full retransmit.
      // The leg's verdict damages that frame too (one verdict poisons the
      // leg), so it still rejects, exactly like the legacy full path.
      leg.fallback_full = true;
      VoteListMessage retry = full;
      damage_message(retry, fault, salt);
      leg.bytes += wire_size(retry);
      leg.result = receiver.receive_votes(retry, now);
    } else {
      leg.delta = true;
      const std::vector<std::size_t> missing = receiver.scan_digest(digest);
      leg.bytes += kFrameHeaderBytes + missing.size() * kRequestBytes;
      if (fault != WireFault::kNone) {
        // Damage routed to the delta: ship one even when nothing is
        // missing, so the leg deterministically rejects with nothing
        // merged — the same outcome a damaged full message produces.
        VoteDeltaMessage delta = sender.build_delta(full, missing);
        damage_delta(delta, fault, salt);
        leg.bytes += wire_size(delta);
        leg.result = receiver.receive_delta(digest, &delta, now);
      } else if (missing.empty()) {
        // Steady state: the digest alone closes the leg — no payload, no
        // signing at all.
        leg.result = receiver.receive_delta(digest, nullptr, now);
      } else {
        VoteDeltaMessage delta = sender.build_delta(full, missing);
        leg.bytes += wire_size(delta);
        leg.result = receiver.receive_delta(digest, &delta, now);
      }
    }
  }
  if (sender.config().gossip_cache) sender.note_counterpart(receiver.self());
  const GossipStats& after = sender.gossip_stats();
  leg.cache_hit = after.cache_hits > before.cache_hits;
  leg.signatures =
      static_cast<std::uint32_t>(after.signatures - before.signatures);
  return leg;
}

void vote_exchange(VoteAgent& initiator, VoteAgent& responder, Time now) {
  (void)vote_encounter(initiator, responder, now);
}

}  // namespace tribvote::vote
