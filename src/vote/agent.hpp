// The per-node vote-sampling agent: Fig. 3's active and passive threads.
//
// Composes the local vote list, the local ballot box (with the experience
// function guarding merges), and the VoxPopuli bootstrap cache. Vote-list
// messages are signed with the node's identity key — Tribler's PKI makes
// votes non-spoofable, so a voter can neither be impersonated nor can its
// message be altered in transit.
//
// Methods that attackers subvert (what a node *sends*) are virtual; the
// attack module derives colluder agents that lie. What a node *accepts* is
// fixed — honest logic is not overridable by remote peers.
#pragma once

#include <functional>
#include <optional>

#include "crypto/schnorr.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "vote/ballot_box.hpp"
#include "vote/gossip.hpp"
#include "vote/ranking.hpp"
#include "vote/vote_list.hpp"
#include "vote/voxpopuli.hpp"

namespace tribvote::vote {

struct VoteConfig {
  std::size_t b_min = 5;    ///< unique voters needed before box stats used
  std::size_t b_max = 100;  ///< ballot box capacity
  std::size_t v_max = 10;   ///< VoxPopuli cache size
  std::size_t k = 3;        ///< top-K list length
  std::size_t max_votes_per_message = 50;
  SelectionPolicy selection = SelectionPolicy::kRecencyRandom;
  RankMethod method = RankMethod::kSum;
  /// Vote-history cache + digest-first delta gossip (semantically
  /// transparent; TRIBVOTE_GOSSIP_CACHE=off disables for A/B runs).
  bool gossip_cache = true;
  /// Capacity of the per-node counterpart memory gating delta exchanges.
  std::size_t gossip_memory = 64;
};

/// Cumulative gossip-side work counters for one agent (monotone; sample
/// before/after a call to attribute cost to a single leg).
struct GossipStats {
  std::uint64_t builds = 0;      ///< outgoing_votes calls
  std::uint64_t cache_hits = 0;  ///< served from the vote-history cache
  std::uint64_t signatures = 0;  ///< Schnorr signing operations performed
};

/// A signed vote-list message (the BallotBox exchange payload).
struct VoteListMessage {
  PeerId voter = kInvalidPeer;
  crypto::PublicKey key;
  std::vector<VoteEntry> votes;
  crypto::Signature signature;

  [[nodiscard]] std::uint64_t digest() const;
};

/// Why a vote-list message was (not) merged. Callers that only care about
/// success test for kAccepted; the fault-degradation counters need the
/// reason (a corrupted message rejects as kBadSignature, an inexperienced
/// sender as kInexperienced — only the latter is a protocol-level verdict).
enum class ReceiveResult : std::uint8_t {
  kAccepted,        ///< verified and merged into the ballot box
  kSelfMessage,     ///< own message bounced back — ignored
  kBadSignature,    ///< forged or corrupted in transit — ignored wholesale
  kEmpty,           ///< authentic but carries no votes
  kInexperienced,   ///< authentic but E_self(voter) = false — not merged
};

class VoteAgent {
 public:
  /// `experienced(j)` is the node's experience function E_self(j).
  /// `keys` must outlive the agent.
  using ExperienceCb = std::function<bool(PeerId)>;

  VoteAgent(PeerId self, const crypto::KeyPair& keys, VoteConfig config,
            ExperienceCb experienced, util::Rng rng);
  virtual ~VoteAgent() = default;

  /// Optional: moderators the node knows about from its local_db. When set,
  /// rankings include vote-less known moderators at a neutral score — a
  /// node can order a moderator it has metadata from even if its sample
  /// holds no votes on it yet.
  std::function<std::vector<ModeratorId>()> known_moderators;

  // ---- user actions -------------------------------------------------------

  /// The local user approves/disapproves a moderator.
  void cast_vote(ModeratorId moderator, Opinion opinion, Time now);

  // ---- protocol: BallotBox ------------------------------------------------

  /// Build this node's signed vote-list message (recency + random selection,
  /// at most max_votes_per_message entries). Virtual: colluders fabricate.
  [[nodiscard]] virtual VoteListMessage outgoing_votes(Time now);

  /// Handle a counterpart's vote-list message: verify the signature, apply
  /// the experience function, and merge into the local ballot box.
  /// A message that fails verification is rejected wholesale (one signature
  /// covers the list, so a truncated or bit-damaged list cannot poison the
  /// box); the result says why.
  ReceiveResult receive_votes(const VoteListMessage& message, Time now);

  // ---- protocol: digest-first delta gossip (see gossip.hpp) ---------------

  /// Which digest positions this node cannot cover from its own verified
  /// stores (ballot box, then observed box) — the entries it would request.
  [[nodiscard]] std::vector<std::size_t> scan_digest(
      const VoteDigestMessage& digest) const;

  /// Only the digest entries at `missing` positions of `full`, bound to the
  /// digest's checksum under one signature. Counts one signing operation.
  [[nodiscard]] VoteDeltaMessage build_delta(
      const VoteListMessage& full, const std::vector<std::size_t>& missing);

  /// Complete a delta exchange: validate the delta against the digest
  /// (binding, sizes, per-entry checks, one signature), reconstruct the
  /// exact full vote vector — covered entries from local stores, missing
  /// ones from the delta — and merge it through the same path a full
  /// message takes. `delta` may be null when the scan covers everything.
  /// Any mismatch rejects wholesale as kBadSignature; nothing is merged.
  ReceiveResult receive_delta(const VoteDigestMessage& digest,
                              const VoteDeltaMessage* delta, Time now);

  [[nodiscard]] const GossipStats& gossip_stats() const noexcept {
    return gossip_stats_;
  }
  [[nodiscard]] const CounterpartMemory& counterparts() const noexcept {
    return counterparts_;
  }
  /// Record a completed exchange with `peer` (enables delta next time).
  void note_counterpart(PeerId peer) { counterparts_.note(peer); }

  // ---- protocol: VoxPopuli ------------------------------------------------

  /// True while the node lacks B_min unique voters — the condition under
  /// which the active thread issues VP requests (Fig. 3a).
  [[nodiscard]] bool bootstrapping() const {
    return box_.unique_voters() < config_.b_min;
  }

  /// Answer a VP request: the top-K from the local ballot box, or an empty
  /// list ("null") when this node is itself bootstrapping (Fig. 3c — nodes
  /// never relay second-hand top-K lists). Virtual: colluders always answer,
  /// with a fabricated list.
  [[nodiscard]] virtual RankedList answer_topk();

  /// Merge a non-null VP response into the bootstrap cache.
  void receive_topk(RankedList list);

  /// Re-apply the experience function to the stored sample, dropping votes
  /// from voters that no longer pass (adaptive-threshold support, §VII).
  /// Returns the number of votes dropped.
  std::size_t refilter_ballot() {
    return box_.purge_voters(experienced_);
  }

  /// Dispersion of *incoming* votes — measured over every authentic vote
  /// list received lately, whether or not the experience function accepted
  /// it. This is the signal §VII reacts to: a node under a vote-promotion
  /// attack keeps observing conflicting opinions even while rejecting them.
  [[nodiscard]] double observed_dispersion() const {
    return observed_.max_dispersion();
  }

  /// Scenario bootstrap: pre-load the ballot box with a sample obtained
  /// before the simulated window (e.g. Fig. 8's pre-converged experienced
  /// core). Bypasses signatures and the experience function by design —
  /// it models state, not a protocol message.
  void preload_sample(PeerId voter, const std::vector<VoteEntry>& votes,
                      Time now) {
    box_.merge(voter, votes, now);
  }

  // ---- ranking ------------------------------------------------------------

  /// The node's current best moderator ranking: ballot-box statistics once
  /// B_min unique voters are sampled, otherwise the merged VoxPopuli cache
  /// (possibly empty when neither source has data).
  [[nodiscard]] RankedList current_ranking() const;

  /// Convenience: the node's current #1 moderator, if it has any ranking.
  [[nodiscard]] std::optional<ModeratorId> top_moderator() const;

  // ---- accessors ------------------------------------------------------------

  [[nodiscard]] PeerId self() const noexcept { return self_; }
  [[nodiscard]] const VoteConfig& config() const noexcept { return config_; }
  [[nodiscard]] LocalVoteList& vote_list() noexcept { return votes_; }
  [[nodiscard]] const LocalVoteList& vote_list() const noexcept {
    return votes_;
  }
  [[nodiscard]] const BallotBox& ballot_box() const noexcept { return box_; }
  [[nodiscard]] const VoxPopuliCache& vox_cache() const noexcept {
    return vox_;
  }

  /// Fingerprint of the agent's complete protocol state: vote list (with
  /// version), ballot box, observed box, VoxPopuli cache and counterpart
  /// memory. Two agents with equal digests are indistinguishable to every
  /// future protocol step. The transport-equivalence tests (DESIGN.md §13)
  /// compare this across the sim and socket paths; work counters
  /// (gossip_stats) are deliberately excluded — they are effort, not state.
  [[nodiscard]] std::uint64_t state_digest() const;

 protected:
  /// Ballot-box tally augmented with known vote-less moderators at zero.
  [[nodiscard]] std::map<ModeratorId, Tally> augmented_tally() const;

  PeerId self_;
  const crypto::KeyPair* keys_;
  VoteConfig config_;
  ExperienceCb experienced_;
  util::Rng rng_;
  LocalVoteList votes_;
  BallotBox box_;
  /// Sliding sample of all authentic incoming votes (accepted or not),
  /// used only for the adaptive-threshold dispersion signal.
  BallotBox observed_;
  VoxPopuliCache vox_;

 private:
  /// Shared tail of receive_votes/receive_delta: observed merge, experience
  /// gate, ballot-box merge — identical state transitions on both paths.
  ReceiveResult absorb_votes(PeerId voter, const std::vector<VoteEntry>& votes,
                             Time now);

  /// A locally held vote on (voter, entry.moderator) whose content matches
  /// the digest check, if any (ballot box first, then observed box).
  [[nodiscard]] std::optional<VoteEntry> covered_by(
      PeerId voter, const DigestEntry& entry) const;

  /// True when select_for_message for the current config draws no
  /// randomness, i.e. its output is a pure function of the vote list.
  [[nodiscard]] bool selection_deterministic() const;

  /// Dedicated nonce stream for Schnorr signing, derived from the agent
  /// RNG at construction. Keeps signing-count changes (one signature per
  /// version instead of per encounter) from perturbing rng_, whose draws
  /// the selection policy consumes.
  util::Rng nonce_rng_;
  GossipStats gossip_stats_;
  CounterpartMemory counterparts_;

  // Vote-history cache: the selected-and-signed message for the current
  // (vote-list version, policy, max_votes), valid only while selection is
  // deterministic. An unchanged ballot paper is signed once, not once per
  // encounter.
  bool cache_valid_ = false;
  std::uint64_t cache_version_ = 0;
  SelectionPolicy cache_policy_ = SelectionPolicy::kRecencyRandom;
  std::size_t cache_max_votes_ = 0;
  VoteListMessage cache_msg_;
};

/// Outcome of one directed gossip leg (sender → receiver), for telemetry.
struct GossipLegOutcome {
  ReceiveResult result = ReceiveResult::kBadSignature;
  std::size_t bytes = 0;       ///< wire bytes this leg (all frames)
  std::size_t list_size = 0;   ///< selected entries in the sender's message
  bool delta = false;          ///< completed via the digest/delta protocol
  bool fallback_full = false;  ///< damaged digest forced a full retransmit
  bool cache_hit = false;      ///< sender served from the vote-history cache
  std::uint32_t signatures = 0;  ///< signing ops the sender performed
};

/// One directed vote transfer from `sender` to `receiver`, choosing the
/// full-message or digest-first delta path and applying the transit fault
/// (if any) to whichever frame the salt routes it to. With the gossip
/// cache off this degrades to exactly the legacy full exchange.
GossipLegOutcome gossip_send(VoteAgent& sender, VoteAgent& receiver, Time now,
                             WireFault fault = WireFault::kNone,
                             std::uint64_t salt = 0);

/// One full active-thread encounter of `initiator` with PSS-sampled
/// `responder` (Fig. 3): mutual vote-list exchange, then — only if the
/// initiator is bootstrapping — a VP request/response.
void vote_exchange(VoteAgent& initiator, VoteAgent& responder, Time now);

}  // namespace tribvote::vote
