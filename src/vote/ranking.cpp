#include "vote/ranking.hpp"

#include <algorithm>

namespace tribvote::vote {

double score(const Tally& tally, RankMethod method) noexcept {
  switch (method) {
    case RankMethod::kSum:
      return static_cast<double>(tally.positive) -
             static_cast<double>(tally.negative);
    case RankMethod::kProportional:
      return (static_cast<double>(tally.positive) + 1.0) /
             (static_cast<double>(tally.total()) + 2.0);
  }
  return 0.0;
}

RankedList rank(const std::map<ModeratorId, Tally>& tally,
                RankMethod method) {
  std::vector<std::pair<ModeratorId, double>> scored;
  scored.reserve(tally.size());
  for (const auto& [moderator, t] : tally) {
    scored.emplace_back(moderator, score(t, method));
  }
  std::sort(scored.begin(), scored.end(),
            [](const auto& a, const auto& b) {
              if (a.second != b.second) return a.second > b.second;
              return a.first < b.first;
            });
  RankedList result;
  result.reserve(scored.size());
  for (const auto& [moderator, s] : scored) result.push_back(moderator);
  return result;
}

RankedList rank_top_k(const std::map<ModeratorId, Tally>& tally,
                      RankMethod method, std::size_t k) {
  RankedList full = rank(tally, method);
  if (full.size() > k) full.resize(k);
  return full;
}

}  // namespace tribvote::vote
