// The transport-agnostic core of one active-thread vote encounter (Fig. 3).
//
// vote_encounter() is the single definition of what a faultless BallotBox +
// VoxPopuli encounter *does* to the two endpoint agents: forward gossip leg,
// reverse gossip leg, then — only if the initiator is still bootstrapping
// after both legs — one VP request/answer. Every transport runs this same
// sequence: the deterministic simulator calls it directly per PSS-sampled
// pair (core/runner.cpp), and the socket plane's ExchangeEngine (net/)
// performs the identical per-agent call order with each message serialized
// through the wire codecs in between. That shared core is what makes the
// sim-vs-socket equivalence tests meaningful — see DESIGN.md §13 and
// PROTOCOL.md.
#pragma once

#include "vote/agent.hpp"

namespace tribvote::vote {

/// What one faultless encounter did, for the caller's accounting. The
/// runner folds these into its probes/RunStats; library users may ignore it.
struct VoteEncounterOutcome {
  GossipLegOutcome forward;    ///< initiator → responder leg
  GossipLegOutcome reverse;    ///< responder → initiator leg
  bool vox_requested = false;  ///< initiator was bootstrapping after legs
  std::size_t vox_topk = 0;    ///< entries in the responder's answer (0=null)
};

/// One full encounter of `initiator` with a PSS-sampled `responder`:
/// mutual vote-list exchange (full or digest-first delta per leg, decided
/// by each sender's counterpart memory), then the conditional VP leg. A
/// node's outgoing message never depends on what it just received, so the
/// sequential legs are bit-identical to a simultaneous build-then-merge.
VoteEncounterOutcome vote_encounter(VoteAgent& initiator,
                                    VoteAgent& responder, Time now);

}  // namespace tribvote::vote
