// The transport-agnostic core of one active-thread vote encounter (Fig. 3).
//
// vote::Encounter is the single definition of what a faultless BallotBox +
// VoxPopuli encounter *does* to the two endpoint agents, exposed as a
// begin/finish object so every transport drives the identical per-agent
// call order while keeping its own framing in between:
//
//   * the deterministic simulator composes it inline per PSS-sampled pair
//     (vote_encounter() below, called from core/runner.cpp);
//   * the socket plane's ExchangeEngine (net/engine.cpp) holds one across
//     the wire round-trips of an encounter it initiates, and serves the
//     responder half through the static answer_vox().
//
// The shared object is what makes the sim-vs-socket equivalence tests
// meaningful — see DESIGN.md §13 and PROTOCOL.md §6.
#pragma once

#include "vote/agent.hpp"

namespace tribvote::vote {

/// What one faultless encounter did, for the caller's accounting. The
/// runner folds these into its probes/RunStats; library users may ignore it.
struct VoteEncounterOutcome {
  GossipLegOutcome forward;    ///< initiator → responder leg
  GossipLegOutcome reverse;    ///< responder → initiator leg
  bool vox_requested = false;  ///< initiator was bootstrapping after legs
  std::size_t vox_topk = 0;    ///< entries in the responder's answer (0=null)
};

/// One encounter from the initiator's side. Usage, in protocol order:
/// begin → record the two gossip legs (optional, pure accounting) →
/// vox_pending() → if pending, finish_vox(answer) → finish().
class Encounter {
 public:
  Encounter() = default;  ///< inactive; assign from begin()

  [[nodiscard]] static Encounter begin(VoteAgent& initiator, Time now) {
    Encounter e;
    e.initiator_ = &initiator;
    e.now_ = now;
    return e;
  }

  /// Fold a completed gossip leg into the outcome (no agent calls — the
  /// legs themselves run through gossip_send or the wire codecs).
  void record_forward(const GossipLegOutcome& leg) { out_.forward = leg; }
  void record_reverse(const GossipLegOutcome& leg) { out_.reverse = leg; }

  /// The VP decision (Fig. 3a), evaluated *after* both gossip legs — a leg
  /// that lifts the box past B_min suppresses the request on every
  /// transport alike. Records the decision in the outcome.
  [[nodiscard]] bool vox_pending() {
    out_.vox_requested = initiator_->bootstrapping();
    return out_.vox_requested;
  }

  /// Responder half of the VP leg (Fig. 3c) — an empty list is the
  /// protocol's explicit "null" answer.
  [[nodiscard]] static RankedList answer_vox(VoteAgent& responder) {
    return responder.answer_topk();
  }

  /// Initiator half: account and merge a (possibly null) answer.
  void finish_vox(RankedList answer) {
    out_.vox_topk = answer.size();
    if (!answer.empty()) initiator_->receive_topk(std::move(answer));
  }

  /// Final outcome for the caller's accounting.
  [[nodiscard]] const VoteEncounterOutcome& finish() const { return out_; }

 private:
  VoteAgent* initiator_ = nullptr;
  Time now_ = 0;
  VoteEncounterOutcome out_;
};

/// One full encounter of `initiator` with a PSS-sampled `responder`:
/// mutual vote-list exchange (full or digest-first delta per leg, decided
/// by each sender's counterpart memory), then the conditional VP leg. A
/// node's outgoing message never depends on what it just received, so the
/// sequential legs are bit-identical to a simultaneous build-then-merge.
VoteEncounterOutcome vote_encounter(VoteAgent& initiator,
                                    VoteAgent& responder, Time now);

}  // namespace tribvote::vote
