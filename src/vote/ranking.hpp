// Moderator ranking from a vote tally (paper §V-A leaves the method open;
// we provide the two it suggests: simple summation and a proportional
// score). A RankedList orders moderators best-first.
#pragma once

#include <cstdint>
#include <map>
#include <vector>

#include "util/ids.hpp"
#include "vote/ballot_box.hpp"

namespace tribvote::vote {

/// Moderators ordered best-first.
using RankedList = std::vector<ModeratorId>;

enum class RankMethod : std::uint8_t {
  kSum,          ///< score = positives - negatives
  kProportional, ///< score = (pos + 1) / (pos + neg + 2)  (Laplace-smoothed)
};

/// Rank all moderators in `tally`. Ties break toward the lower moderator id
/// (deterministic across platforms).
[[nodiscard]] RankedList rank(const std::map<ModeratorId, Tally>& tally,
                              RankMethod method);

/// Rank and truncate to the top-K (for VoxPopuli responses).
[[nodiscard]] RankedList rank_top_k(const std::map<ModeratorId, Tally>& tally,
                                    RankMethod method, std::size_t k);

/// Numeric score a method assigns to a tally (exposed for tests and for
/// the moderator-scoreboard example).
[[nodiscard]] double score(const Tally& tally, RankMethod method) noexcept;

}  // namespace tribvote::vote
