#include "vote/voxpopuli.hpp"

#include <algorithm>
#include <cassert>
#include <map>

#include "util/hash.hpp"

namespace tribvote::vote {

VoxPopuliCache::VoxPopuliCache(std::size_t v_max, std::size_t k)
    : v_max_(v_max), k_(k) {
  assert(v_max > 0 && k > 0);
}

void VoxPopuliCache::add_list(RankedList list) {
  assert(!list.empty());
  if (list.size() > k_) list.resize(k_);
  if (lists_.size() >= v_max_) lists_.pop_front();
  lists_.push_back(std::move(list));
}

std::uint64_t VoxPopuliCache::digest() const {
  std::uint64_t h = util::digest_fields({v_max_, k_, lists_.size()});
  for (const RankedList& list : lists_) {
    std::uint64_t lh = util::digest_fields({list.size()});
    for (const ModeratorId m : list) lh = util::hash_combine(lh, m);
    h = util::hash_combine(h, lh);
  }
  return h;
}

RankedList VoxPopuliCache::merged_ranking() const {
  if (lists_.empty()) return {};
  // Average rank per moderator; absent from a list counts as rank K+1.
  std::map<ModeratorId, double> rank_sum;
  for (const RankedList& list : lists_) {
    for (std::size_t pos = 0; pos < list.size(); ++pos) {
      // Seed with 0; missing-list charges are added in the second pass.
      rank_sum.try_emplace(list[pos], 0.0);
    }
  }
  for (auto& [moderator, sum] : rank_sum) {
    for (const RankedList& list : lists_) {
      const auto it = std::find(list.begin(), list.end(), moderator);
      sum += it == list.end()
                 ? static_cast<double>(k_ + 1)
                 : static_cast<double>(std::distance(list.begin(), it) + 1);
    }
  }
  std::vector<std::pair<ModeratorId, double>> scored(rank_sum.begin(),
                                                     rank_sum.end());
  std::sort(scored.begin(), scored.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second < b.second;  // lower = better
    return a.first < b.first;
  });
  RankedList merged;
  merged.reserve(scored.size());
  for (const auto& [moderator, s] : scored) merged.push_back(moderator);
  return merged;
}

}  // namespace tribvote::vote
