#include "vote/ballot_box.hpp"

#include <cassert>
#include <cmath>

#include "util/hash.hpp"

namespace tribvote::vote {

BallotBox::BallotBox(std::size_t b_max) : b_max_(b_max) {
  assert(b_max > 0);
}

void BallotBox::merge(PeerId voter, const std::vector<VoteEntry>& votes,
                      Time now) {
  for (const VoteEntry& v : votes) {
    if (v.opinion == Opinion::kNone) continue;  // malformed
    const auto key = std::make_pair(voter, v.moderator);
    const auto it = entries_.find(key);
    if (it != entries_.end()) {
      // Same voter, same moderator: refresh opinion and timestamp.
      if (it->second.opinion != v.opinion) {
        tally_remove(v.moderator, it->second.opinion);
        tally_add(v.moderator, v.opinion);
      }
      it->second.opinion = v.opinion;
      it->second.received = now;
      it->second.seq = next_seq_++;
      it->second.cast_at = v.cast_at;
      continue;
    }
    if (entries_.size() >= b_max_) evict_oldest();
    entries_.emplace(key, Entry{voter, v.moderator, v.opinion, now,
                                next_seq_++, v.cast_at});
    ++voter_entry_count_[voter];
    tally_add(v.moderator, v.opinion);
  }
}

void BallotBox::evict_oldest() {
  assert(!entries_.empty());
  auto victim = entries_.begin();
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->second.received < victim->second.received ||
        (it->second.received == victim->second.received &&
         it->second.seq < victim->second.seq)) {
      victim = it;
    }
  }
  const PeerId voter = victim->second.voter;
  tally_remove(victim->second.moderator, victim->second.opinion);
  entries_.erase(victim);
  const auto vc = voter_entry_count_.find(voter);
  assert(vc != voter_entry_count_.end());
  if (--vc->second == 0) voter_entry_count_.erase(vc);
}

void BallotBox::tally_add(ModeratorId moderator, Opinion opinion) {
  Tally& t = tally_[moderator];
  if (opinion == Opinion::kPositive) {
    ++t.positive;
  } else {
    ++t.negative;
  }
}

void BallotBox::tally_remove(ModeratorId moderator, Opinion opinion) {
  const auto it = tally_.find(moderator);
  assert(it != tally_.end());
  if (opinion == Opinion::kPositive) {
    assert(it->second.positive > 0);
    --it->second.positive;
  } else {
    assert(it->second.negative > 0);
    --it->second.negative;
  }
  // Drop zeroed moderators so tally() equals the recomputed map exactly.
  if (it->second.total() == 0) tally_.erase(it);
}

std::size_t BallotBox::purge_voters(
    const std::function<bool(PeerId)>& keep) {
  std::size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (keep(it->second.voter)) {
      ++it;
      continue;
    }
    const PeerId voter = it->second.voter;
    tally_remove(it->second.moderator, it->second.opinion);
    it = entries_.erase(it);
    ++removed;
    const auto vc = voter_entry_count_.find(voter);
    assert(vc != voter_entry_count_.end());
    if (--vc->second == 0) voter_entry_count_.erase(vc);
  }
  return removed;
}

std::map<ModeratorId, Tally> BallotBox::recompute_tally() const {
  std::map<ModeratorId, Tally> result;
  for (const auto& [key, entry] : entries_) {
    Tally& t = result[entry.moderator];
    if (entry.opinion == Opinion::kPositive) {
      ++t.positive;
    } else {
      ++t.negative;
    }
  }
  return result;
}

std::optional<VoteEntry> BallotBox::find(PeerId voter,
                                         ModeratorId moderator) const {
  const auto it = entries_.find(std::make_pair(voter, moderator));
  if (it == entries_.end()) return std::nullopt;
  return VoteEntry{it->second.moderator, it->second.opinion,
                   it->second.cast_at};
}

double BallotBox::max_dispersion(std::uint32_t min_votes) const {
  double worst = 0;
  for (const auto& [moderator, t] : tally()) {
    if (t.total() < min_votes) continue;
    const double diff = std::abs(static_cast<double>(t.positive) -
                                 static_cast<double>(t.negative));
    worst = std::max(worst, 1.0 - diff / static_cast<double>(t.total()));
  }
  return worst;
}

std::uint64_t BallotBox::digest() const {
  std::uint64_t h =
      util::digest_fields({b_max_, next_seq_, entries_.size()});
  for (const auto& [key, e] : entries_) {
    h = util::hash_combine(
        h, util::digest_fields(
               {e.voter, e.moderator,
                static_cast<std::uint64_t>(
                    static_cast<std::int64_t>(opinion_value(e.opinion))),
                static_cast<std::uint64_t>(e.received), e.seq,
                static_cast<std::uint64_t>(e.cast_at)}));
  }
  return h;
}

double BallotBox::dispersion() const {
  const auto& tallies = tally();
  double sum = 0;
  std::size_t counted = 0;
  for (const auto& [moderator, t] : tallies) {
    if (t.total() < 2) continue;
    const double diff =
        std::abs(static_cast<double>(t.positive) -
                 static_cast<double>(t.negative));
    sum += 1.0 - diff / static_cast<double>(t.total());
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

}  // namespace tribvote::vote
