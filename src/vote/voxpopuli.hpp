// VoxPopuli bootstrap cache (paper §V-C).
//
// While a node's ballot box holds fewer than B_min unique voters it asks
// PSS-sampled peers for their top-K moderator lists (no experience check —
// that is the protocol's deliberate speed/safety trade). The node caches the
// last V_max lists and rank-merges them: each moderator's merged score is
// its average rank across cached lists, with rank K+1 charged where it does
// not appear. Lower merged score = better.
#pragma once

#include <cstdint>
#include <deque>
#include <vector>

#include "util/ids.hpp"
#include "vote/ranking.hpp"

namespace tribvote::vote {

class VoxPopuliCache {
 public:
  VoxPopuliCache(std::size_t v_max, std::size_t k);

  /// Store a received top-K list (oldest evicted beyond V_max). Empty lists
  /// ("null" responses from peers that are themselves bootstrapping) must
  /// not be passed in — they carry no information.
  void add_list(RankedList list);

  /// Rank-merge across all cached lists. Empty when no list is cached.
  [[nodiscard]] RankedList merged_ranking() const;

  [[nodiscard]] std::size_t list_count() const noexcept {
    return lists_.size();
  }
  [[nodiscard]] bool empty() const noexcept { return lists_.empty(); }
  [[nodiscard]] std::size_t k() const noexcept { return k_; }

  /// Fingerprint of the cached lists in arrival order (transport-
  /// equivalence tests).
  [[nodiscard]] std::uint64_t digest() const;

 private:
  std::size_t v_max_;
  std::size_t k_;
  std::deque<RankedList> lists_;
};

}  // namespace tribvote::vote
