#include "vote/encounter.hpp"

namespace tribvote::vote {

VoteEncounterOutcome vote_encounter(VoteAgent& initiator,
                                    VoteAgent& responder, Time now) {
  Encounter enc = Encounter::begin(initiator, now);
  enc.record_forward(gossip_send(initiator, responder, now));
  enc.record_reverse(gossip_send(responder, initiator, now));
  if (enc.vox_pending()) enc.finish_vox(Encounter::answer_vox(responder));
  return enc.finish();
}

}  // namespace tribvote::vote
