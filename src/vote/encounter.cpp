#include "vote/encounter.hpp"

namespace tribvote::vote {

VoteEncounterOutcome vote_encounter(VoteAgent& initiator,
                                    VoteAgent& responder, Time now) {
  VoteEncounterOutcome out;
  out.forward = gossip_send(initiator, responder, now);
  out.reverse = gossip_send(responder, initiator, now);

  // VoxPopuli leg (Fig. 3a/3c): only while the initiator is bootstrapping —
  // tested *after* both gossip legs, so a leg that lifts the box past B_min
  // suppresses the request on every transport alike.
  if (initiator.bootstrapping()) {
    out.vox_requested = true;
    RankedList topk = responder.answer_topk();
    out.vox_topk = topk.size();
    if (!topk.empty()) initiator.receive_topk(std::move(topk));
  }
  return out;
}

}  // namespace tribvote::vote
