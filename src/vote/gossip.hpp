// Digest-first delta gossip for BallotBox exchanges (perf layer over §V-A).
//
// A full vote-list message re-ships (and re-signs) up to max_votes entries
// every encounter even when the counterpart already holds almost all of
// them. After a first full exchange with a counterpart, a sender instead
// opens with a compact digest — one (moderator, 64-bit check) pair per
// selected vote — and ships only the entries the receiver reports missing,
// under a single Schnorr signature covering the whole batch.
//
// The delta path is *semantically transparent*: the receiver reconstructs
// the exact full vote vector (covered entries from its own verified stores,
// missing entries from the signed delta) and merges it through the same
// path a full message takes, so ballot-box state, eviction order and every
// metric are bit-identical to a full exchange. Only selection, signing and
// wire bytes are saved.
//
// Wire-fault semantics mirror the full-message ones: one signature (or the
// digest checksum) covers the frame, so any in-transit damage is rejected
// wholesale. A damaged digest falls back to a full (equally damaged)
// exchange; a damaged delta rejects like a damaged full message — a leg
// with a payload fault never merges anything, with cache on or off.
//
// This header is sim-agnostic: vote/ must not depend on sim/, so transit
// damage is expressed as vote::WireFault; the runner maps its fault-plane
// verdicts onto it.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "crypto/schnorr.hpp"
#include "util/ids.hpp"
#include "vote/vote_list.hpp"

namespace tribvote::vote {

struct VoteListMessage;  // agent.hpp; gossip frames ride the same exchange

/// In-transit damage applied to a gossip frame (mirrors sim::PayloadFault
/// without a sim/ dependency).
enum class WireFault : std::uint8_t {
  kNone,
  kTruncated,  ///< frame cut short in transit
  kCorrupted,  ///< bit damage
};

/// One digest line: "I would send you my vote on `moderator`, whose content
/// hashes to `check`." The check covers (opinion, cast_at), so a receiver
/// holding the identical vote can prove coverage without the payload.
struct DigestEntry {
  ModeratorId moderator = kInvalidModerator;
  std::uint64_t check = 0;
};

/// The digest frame that opens a delta exchange. `checksum` binds the whole
/// frame (transport integrity, not authenticity — see DESIGN.md).
struct VoteDigestMessage {
  PeerId voter = kInvalidPeer;
  crypto::PublicKey key;
  std::vector<DigestEntry> entries;
  std::uint64_t checksum = 0;
};

/// The delta frame answering a digest scan: only the entries the receiver
/// was missing, bound to the digest it answers and covered by one Schnorr
/// signature.
struct VoteDeltaMessage {
  PeerId voter = kInvalidPeer;
  crypto::PublicKey key;
  std::uint64_t bound_checksum = 0;  ///< checksum of the digest answered
  std::vector<VoteEntry> votes;
  crypto::Signature signature;

  [[nodiscard]] std::uint64_t digest() const;
};

/// Content check for one vote entry (opinion + cast time; the moderator is
/// carried explicitly alongside, so collisions require a stale vote on the
/// *same* (voter, moderator) pair hashing identically — 2^-64).
[[nodiscard]] std::uint64_t entry_check(const VoteEntry& v);

/// Build the digest frame for a selected-and-signed full message.
[[nodiscard]] VoteDigestMessage make_digest(const VoteListMessage& full);

/// Transport-integrity check: does the stored checksum match the entries?
[[nodiscard]] bool digest_intact(const VoteDigestMessage& digest);

// ---- wire-size model (bytes) ----------------------------------------------
// Simulation-grade accounting mirroring the ledger's size model: fixed
// per-frame header plus fixed-size records. A full vote entry carries
// (moderator:8, opinion:1, cast_at:7→8) = 16 B; a digest entry
// (moderator:8, check:8) would be 16 B too, but the check can ride at 32
// bits of useful transport entropy on the wire (the full 64 bits are only
// needed against adversarial stale collisions, covered by the signature on
// the delta), so it is modelled at 12 B.

inline constexpr std::size_t kFrameHeaderBytes = 32;   ///< ids + key + kind
inline constexpr std::size_t kSignatureBytes = 16;     ///< Schnorr (e, s)
inline constexpr std::size_t kVoteEntryBytes = 16;
inline constexpr std::size_t kDigestEntryBytes = 12;
inline constexpr std::size_t kChecksumBytes = 8;
inline constexpr std::size_t kRequestBytes = 4;  ///< one missing index

[[nodiscard]] std::size_t wire_size(const VoteListMessage& msg);
[[nodiscard]] std::size_t wire_size(const VoteDigestMessage& digest);
[[nodiscard]] std::size_t wire_size(const VoteDeltaMessage& delta);

// ---- transit damage --------------------------------------------------------
// Deterministic fault application, salt-driven. Damage guarantees rejection:
// a truncated/corrupted full or delta frame fails its signature; a damaged
// digest fails its checksum and falls back to a full exchange.

void damage_message(VoteListMessage& msg, WireFault fault, std::uint64_t salt);
void damage_digest(VoteDigestMessage& digest, WireFault fault,
                   std::uint64_t salt);
void damage_delta(VoteDeltaMessage& delta, WireFault fault,
                  std::uint64_t salt);

/// Bounded memory of counterparts a node has completed an exchange with —
/// the precondition for opening with a digest instead of a full message.
/// Eviction is deterministic: stamps are unique and strictly increasing, so
/// "least recently exchanged" has a single well-defined victim.
class CounterpartMemory {
 public:
  explicit CounterpartMemory(std::size_t capacity) : capacity_(capacity) {}

  /// Record a completed exchange with `peer` (refreshes recency).
  void note(PeerId peer);

  /// True if `peer` is in memory — the sender may open with a digest.
  [[nodiscard]] bool known(PeerId peer) const {
    return peers_.find(peer) != peers_.end();
  }

  [[nodiscard]] std::size_t size() const noexcept { return peers_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }

  /// Fingerprint of the full memory (peers + recency stamps), independent
  /// of hash-map iteration order (transport-equivalence tests).
  [[nodiscard]] std::uint64_t digest() const;

 private:
  std::size_t capacity_;
  std::uint64_t next_stamp_ = 0;
  std::unordered_map<PeerId, std::uint64_t> peers_;  // peer → last stamp
};

}  // namespace tribvote::vote
