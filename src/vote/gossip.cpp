#include "vote/gossip.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

#include "util/hash.hpp"
#include "vote/agent.hpp"

namespace tribvote::vote {

std::uint64_t entry_check(const VoteEntry& v) {
  return util::digest_fields(
      {static_cast<std::uint64_t>(
           static_cast<std::int64_t>(opinion_value(v.opinion))),
       static_cast<std::uint64_t>(v.cast_at)});
}

namespace {

std::uint64_t digest_checksum(const VoteDigestMessage& digest) {
  std::uint64_t h =
      util::digest_fields({digest.voter, digest.key.y, digest.entries.size()});
  for (const DigestEntry& e : digest.entries) {
    h = util::hash_combine(h, util::digest_fields({e.moderator, e.check}));
  }
  return h;
}

}  // namespace

std::uint64_t VoteDeltaMessage::digest() const {
  std::uint64_t h =
      util::digest_fields({voter, key.y, bound_checksum, votes.size()});
  for (const VoteEntry& v : votes) {
    h = util::hash_combine(
        h, util::digest_fields({v.moderator, entry_check(v)}));
  }
  return h;
}

VoteDigestMessage make_digest(const VoteListMessage& full) {
  VoteDigestMessage digest;
  digest.voter = full.voter;
  digest.key = full.key;
  digest.entries.reserve(full.votes.size());
  for (const VoteEntry& v : full.votes) {
    digest.entries.push_back(DigestEntry{v.moderator, entry_check(v)});
  }
  digest.checksum = digest_checksum(digest);
  return digest;
}

bool digest_intact(const VoteDigestMessage& digest) {
  return digest.checksum == digest_checksum(digest);
}

std::size_t wire_size(const VoteListMessage& msg) {
  return kFrameHeaderBytes + kSignatureBytes +
         msg.votes.size() * kVoteEntryBytes;
}

std::size_t wire_size(const VoteDigestMessage& digest) {
  return kFrameHeaderBytes + kChecksumBytes +
         digest.entries.size() * kDigestEntryBytes;
}

std::size_t wire_size(const VoteDeltaMessage& delta) {
  return kFrameHeaderBytes + kChecksumBytes + kSignatureBytes +
         delta.votes.size() * kVoteEntryBytes;
}

void damage_message(VoteListMessage& msg, WireFault fault,
                    std::uint64_t salt) {
  switch (fault) {
    case WireFault::kNone:
      return;
    case WireFault::kTruncated:
      if (msg.votes.empty()) {
        msg.signature.s ^= 1;  // nothing to cut — clip the trailer instead
      } else {
        msg.votes.resize(msg.votes.size() / 2);
      }
      return;
    case WireFault::kCorrupted:
      msg.signature.s ^= std::uint64_t{1} << (salt & 63);
      return;
  }
}

void damage_digest(VoteDigestMessage& digest, WireFault fault,
                   std::uint64_t salt) {
  switch (fault) {
    case WireFault::kNone:
      return;
    case WireFault::kTruncated:
      // The stored checksum now covers entries that were cut off.
      digest.entries.resize(digest.entries.size() / 2);
      return;
    case WireFault::kCorrupted:
      digest.checksum ^= std::uint64_t{1} << (salt & 63);
      return;
  }
}

void damage_delta(VoteDeltaMessage& delta, WireFault fault,
                  std::uint64_t salt) {
  switch (fault) {
    case WireFault::kNone:
      return;
    case WireFault::kTruncated:
      if (delta.votes.empty()) {
        delta.signature.s ^= 1;
      } else {
        delta.votes.resize(delta.votes.size() / 2);
      }
      return;
    case WireFault::kCorrupted:
      delta.signature.s ^= std::uint64_t{1} << (salt & 63);
      return;
  }
}

void CounterpartMemory::note(PeerId peer) {
  if (capacity_ == 0) return;
  const auto it = peers_.find(peer);
  if (it != peers_.end()) {
    it->second = next_stamp_++;
    return;
  }
  if (peers_.size() >= capacity_) {
    // Evict the least recently exchanged counterpart. Stamps are unique,
    // so the victim is well-defined regardless of hash-map iteration order.
    auto victim = peers_.begin();
    for (auto p = peers_.begin(); p != peers_.end(); ++p) {
      if (p->second < victim->second) victim = p;
    }
    peers_.erase(victim);
  }
  peers_.emplace(peer, next_stamp_++);
}

std::uint64_t CounterpartMemory::digest() const {
  std::vector<std::pair<PeerId, std::uint64_t>> items(peers_.begin(),
                                                      peers_.end());
  std::sort(items.begin(), items.end());
  std::uint64_t h = util::digest_fields({capacity_, next_stamp_, items.size()});
  for (const auto& [peer, stamp] : items) {
    h = util::hash_combine(h, util::digest_fields({peer, stamp}));
  }
  return h;
}

}  // namespace tribvote::vote
