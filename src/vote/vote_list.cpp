#include "vote/vote_list.hpp"

#include <algorithm>
#include <cassert>

namespace tribvote::vote {

void LocalVoteList::cast(ModeratorId moderator, Opinion opinion, Time now) {
  assert(opinion != Opinion::kNone);
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [moderator](const VoteEntry& e) { return e.moderator == moderator; });
  if (it != entries_.end()) {
    it->opinion = opinion;
    it->cast_at = now;
    return;
  }
  entries_.push_back(VoteEntry{moderator, opinion, now});
}

Opinion LocalVoteList::opinion_of(ModeratorId moderator) const {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [moderator](const VoteEntry& e) { return e.moderator == moderator; });
  return it == entries_.end() ? Opinion::kNone : it->opinion;
}

std::vector<VoteEntry> LocalVoteList::select_for_message(
    std::size_t max_votes, util::Rng& rng, SelectionPolicy policy) const {
  std::vector<VoteEntry> result;
  if (entries_.empty() || max_votes == 0) return result;
  if (entries_.size() <= max_votes) return entries_;

  if (policy == SelectionPolicy::kRandomOnly) {
    result.reserve(max_votes);
    for (std::size_t p : rng.sample_indices(entries_.size(), max_votes)) {
      result.push_back(entries_[p]);
    }
    return result;
  }

  std::vector<const VoteEntry*> sorted;
  sorted.reserve(entries_.size());
  for (const auto& e : entries_) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const VoteEntry* a, const VoteEntry* b) {
              if (a->cast_at != b->cast_at) return a->cast_at > b->cast_at;
              return a->moderator < b->moderator;
            });
  // Recency share: everything for kRecentOnly, the newest half for the
  // paper's recency + random policy.
  const std::size_t recent = policy == SelectionPolicy::kRecentOnly
                                 ? max_votes
                                 : (max_votes + 1) / 2;
  result.reserve(max_votes);
  for (std::size_t i = 0; i < recent; ++i) result.push_back(*sorted[i]);
  const std::size_t rest = sorted.size() - recent;
  const std::size_t random_take = std::min(max_votes - recent, rest);
  for (std::size_t p : rng.sample_indices(rest, random_take)) {
    result.push_back(*sorted[recent + p]);
  }
  return result;
}

}  // namespace tribvote::vote
