#include "vote/vote_list.hpp"

#include <algorithm>
#include <cassert>

namespace tribvote::vote {

void LocalVoteList::cast(ModeratorId moderator, Opinion opinion, Time now) {
  assert(opinion != Opinion::kNone);
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [moderator](const VoteEntry& e) { return e.moderator == moderator; });
  if (it != entries_.end()) {
    // Re-casting the identical opinion at the identical time leaves the
    // ballot paper unchanged — keep version() stable so a cached message
    // stays warm (colluders re-assert their vote every encounter).
    if (it->opinion == opinion && it->cast_at == now) return;
    it->opinion = opinion;
    it->cast_at = now;
    ++version_;
    return;
  }
  entries_.push_back(VoteEntry{moderator, opinion, now});
  ++version_;
}

Opinion LocalVoteList::opinion_of(ModeratorId moderator) const {
  const auto it = std::find_if(
      entries_.begin(), entries_.end(),
      [moderator](const VoteEntry& e) { return e.moderator == moderator; });
  return it == entries_.end() ? Opinion::kNone : it->opinion;
}

std::vector<VoteEntry> LocalVoteList::select_for_message(
    std::size_t max_votes, util::Rng& rng, SelectionPolicy policy) const {
  std::vector<VoteEntry> result;
  if (entries_.empty() || max_votes == 0) return result;
  if (entries_.size() <= max_votes) return entries_;

  if (policy == SelectionPolicy::kRandomOnly) {
    result.reserve(max_votes);
    for (std::size_t p : rng.sample_indices(entries_.size(), max_votes)) {
      result.push_back(entries_[p]);
    }
    return result;
  }

  std::vector<const VoteEntry*> sorted;
  sorted.reserve(entries_.size());
  for (const auto& e : entries_) sorted.push_back(&e);
  // "Newer" is a strict total order (moderators are unique per entry), so
  // partial selection reproduces the full-sort draw order byte for byte.
  const auto newer = [](const VoteEntry* a, const VoteEntry* b) {
    if (a->cast_at != b->cast_at) return a->cast_at > b->cast_at;
    return a->moderator < b->moderator;
  };
  // Recency share: everything for kRecentOnly, the newest half for the
  // paper's recency + random policy.
  const std::size_t recent = policy == SelectionPolicy::kRecentOnly
                                 ? max_votes
                                 : (max_votes + 1) / 2;
  // Sort only the newest `recent` entries; the tail is merely partitioned.
  std::partial_sort(sorted.begin(),
                    sorted.begin() + static_cast<std::ptrdiff_t>(recent),
                    sorted.end(), newer);
  result.reserve(max_votes);
  for (std::size_t i = 0; i < recent; ++i) result.push_back(*sorted[i]);
  const std::size_t rest = sorted.size() - recent;
  const std::size_t random_take = std::min(max_votes - recent, rest);
  const std::vector<std::size_t> picks = rng.sample_indices(rest, random_take);
  // The drawn positions index the *sorted* tail. Instead of sorting all of
  // it, rank-select just the drawn positions: process ranks in ascending
  // order, each nth_element confined to the subrange after the previous
  // rank (everything at or before it is already correctly placed).
  std::vector<std::size_t> by_rank(picks.size());
  for (std::size_t i = 0; i < by_rank.size(); ++i) by_rank[i] = i;
  std::sort(by_rank.begin(), by_rank.end(),
            [&picks](std::size_t a, std::size_t b) {
              return picks[a] < picks[b];
            });
  const auto tail = sorted.begin() + static_cast<std::ptrdiff_t>(recent);
  std::size_t lo = 0;
  for (const std::size_t i : by_rank) {
    const std::size_t r = picks[i];
    std::nth_element(tail + static_cast<std::ptrdiff_t>(lo),
                     tail + static_cast<std::ptrdiff_t>(r), sorted.end(),
                     newer);
    lo = r + 1;
  }
  for (std::size_t p : picks) {
    result.push_back(*tail[static_cast<std::ptrdiff_t>(p)]);
  }
  return result;
}

}  // namespace tribvote::vote
