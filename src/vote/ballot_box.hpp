// The local ballot box (paper §V-A): each node's private sample of the
// population's votes, accumulated one PSS encounter at a time.
//
// Entries map (voter, moderator) → opinion with the *receive* timestamp.
// One vote per (voter, moderator) pair — the one-node-one-vote-per-moderator
// policy; a fresher vote from the same voter replaces the older one. The box
// holds at most B_max entries; beyond that, new votes replace the oldest.
// Contents are never forwarded to other peers (precludes vote-relay lies).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <optional>
#include <unordered_map>
#include <vector>

#include "util/ids.hpp"
#include "util/opinion.hpp"
#include "util/time.hpp"
#include "vote/vote_list.hpp"

namespace tribvote::vote {

/// Per-moderator positive/negative totals over the current sample.
struct Tally {
  std::uint32_t positive = 0;
  std::uint32_t negative = 0;
  [[nodiscard]] std::uint32_t total() const noexcept {
    return positive + negative;
  }
};

class BallotBox {
 public:
  explicit BallotBox(std::size_t b_max);

  /// Merge a voter's vote-list message received at `now`. Caller has
  /// already applied the experience function; the box itself is
  /// policy-free storage.
  void merge(PeerId voter, const std::vector<VoteEntry>& votes, Time now);

  /// Number of distinct voters represented in the box — the quantity the
  /// B_min bootstrap threshold tests (Fig. 3).
  [[nodiscard]] std::size_t unique_voters() const noexcept {
    return voter_entry_count_.size();
  }

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] std::size_t capacity() const noexcept { return b_max_; }

  /// Aggregate votes per moderator (one vote per voter per moderator).
  /// Maintained incrementally on merge/evict/purge — O(1) copy of the
  /// running map, not an O(n) rebuild per call.
  [[nodiscard]] const std::map<ModeratorId, Tally>& tally() const noexcept {
    return tally_;
  }

  /// O(n) tally rebuild from the raw entries — the reference the
  /// incremental map is property-tested against.
  [[nodiscard]] std::map<ModeratorId, Tally> recompute_tally() const;

  /// The vote this box currently holds for (voter, moderator), if any —
  /// lets the gossip digest scan ask "do I already have this exact vote?"
  /// without exposing the entry map.
  [[nodiscard]] std::optional<VoteEntry> find(PeerId voter,
                                              ModeratorId moderator) const;

  /// Drop every entry whose voter fails `keep` — used by the adaptive
  /// threshold (§VII): when a node raises T it re-filters its sample so
  /// votes absorbed under the old, laxer threshold no longer count.
  /// Returns the number of entries removed.
  std::size_t purge_voters(const std::function<bool(PeerId)>& keep);

  /// Dispersion of opinion in [0, 1]: mean over moderators with >= 2 votes
  /// of 1 - |pos - neg| / (pos + neg). 0 = full consensus.
  [[nodiscard]] double dispersion() const;

  /// Maximum per-moderator dispersion over moderators with >= `min_votes`
  /// sampled votes. This is the adaptive-threshold trigger signal (§VII):
  /// a coordinated vote-promotion attack splits opinion on *some* moderator
  /// even while others stay unanimous, so the max — unlike the mean — is
  /// not diluted by uncontested moderators.
  [[nodiscard]] double max_dispersion(std::uint32_t min_votes = 3) const;

  /// Order-sensitive fingerprint of the complete box state — every entry
  /// including receive timestamps and eviction sequence numbers. Two boxes
  /// with equal digests went through merge histories with identical
  /// observable effect; the transport-equivalence tests (sim vs socket)
  /// compare these.
  [[nodiscard]] std::uint64_t digest() const;

 private:
  struct Entry {
    PeerId voter;
    ModeratorId moderator;
    Opinion opinion;
    Time received;
    std::uint64_t seq;  ///< insertion order, breaks receive-time ties
    Time cast_at;       ///< the voter's own timestamp, as carried on the wire
  };

  void evict_oldest();
  void tally_add(ModeratorId moderator, Opinion opinion);
  void tally_remove(ModeratorId moderator, Opinion opinion);

  std::size_t b_max_;
  std::uint64_t next_seq_ = 0;
  // Key: (voter, moderator). std::map keeps deterministic iteration.
  std::map<std::pair<PeerId, ModeratorId>, Entry> entries_;
  std::unordered_map<PeerId, std::uint32_t> voter_entry_count_;
  std::map<ModeratorId, Tally> tally_;  // incremental mirror of entries_
};

}  // namespace tribvote::vote
