// The local vote list (paper §V-A): the record of the votes the *local
// user* has cast — at most one vote per moderator, each stamped with the
// time it was made. It is the "ballot paper" a node communicates to others
// during BallotBox exchanges.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "util/ids.hpp"
#include "util/opinion.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace tribvote::vote {

/// How votes are chosen for a vote-list message when the ballot paper
/// exceeds the message cap. The paper combines recency and random
/// selection (§V-A, validated in [6]); the pure policies exist for the
/// abl_vote_selection ablation.
enum class SelectionPolicy : std::uint8_t {
  kRecencyRandom,  ///< newest half + uniform draw from the rest (paper)
  kRecentOnly,     ///< newest max_votes only
  kRandomOnly,     ///< uniform draw over the whole list
};

/// One cast vote as carried in a vote-list message.
struct VoteEntry {
  ModeratorId moderator = kInvalidModerator;
  Opinion opinion = Opinion::kNone;
  Time cast_at = 0;
};

class LocalVoteList {
 public:
  /// Cast (or revise) the local user's vote on a moderator. A moderator
  /// appears at most once; re-casting replaces the previous opinion and
  /// refreshes the timestamp. Bumps version() whenever the ballot paper's
  /// content actually changes; re-casting the same opinion at the same
  /// timestamp is a no-op.
  void cast(ModeratorId moderator, Opinion opinion, Time now);

  /// Monotone content version, bumped by every effective cast (mirrors
  /// SubjectiveGraph::version()). Two calls observing the same version see
  /// the same entries, so a selected-and-signed vote-list message keyed on
  /// the version can be reused without re-selecting or re-signing.
  [[nodiscard]] std::uint64_t version() const noexcept { return version_; }

  /// The local user's current opinion of a moderator (kNone if never voted).
  [[nodiscard]] Opinion opinion_of(ModeratorId moderator) const;

  /// Total votes cast (length of the ballot paper).
  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }

  /// Select at most `max_votes` entries for a vote-list message using the
  /// paper's recency + random policy: the newest half by cast time plus a
  /// uniform draw from the rest.
  [[nodiscard]] std::vector<VoteEntry> select_for_message(
      std::size_t max_votes, util::Rng& rng,
      SelectionPolicy policy = SelectionPolicy::kRecencyRandom) const;

  /// Full list (for tests and local ranking).
  [[nodiscard]] const std::vector<VoteEntry>& entries() const noexcept {
    return entries_;
  }

 private:
  std::vector<VoteEntry> entries_;  // unsorted; one entry per moderator
  std::uint64_t version_ = 0;
};

}  // namespace tribvote::vote
