// One simulated Tribler peer: identity keys plus one agent per protocol,
// wired together exactly as the deployed client would wire them:
//
//   * the vote agent's experience function is BarterCast max-flow against
//     the node's (possibly adaptive) threshold;
//   * the moderation db consults the local vote list for approval gating;
//   * rankings include moderators known from the local_db;
//   * a negative user vote purges and blocks that moderator's metadata.
//
// Colluder nodes substitute the lying agent subclasses from src/attack for
// what they *send*; their acceptance logic stays honest-equivalent (it
// simply doesn't matter to the attack).
#pragma once

#include <memory>

#include "attack/colluder.hpp"
#include "attack/front_peer.hpp"
#include "core/config.hpp"
#include "crypto/schnorr.hpp"
#include "moderation/moderationcast.hpp"

namespace tribvote::core {

enum class NodeRole : std::uint8_t { kHonest, kColluder };

/// Which agent implementations a node runs — the bridge between the
/// adversary plane's per-strategy profiles and the Node constructor. An
/// all-default selection is a fully honest node.
struct AgentSelection {
  /// Install attack::ColluderVoteAgent driven by `plan`.
  bool spam_votes = false;
  /// Install attack::FrontPeerBarterAgent over `clique`.
  bool fake_experience = false;
  double fake_mb = 1000.0;
  attack::ColluderPlan plan;
  std::vector<PeerId> clique;
};

class Node {
 public:
  /// `plan` is consulted only for colluders. `clique` (colluder ids,
  /// including self) only when the attack fakes experience.
  Node(PeerId id, NodeRole role, const ScenarioConfig& config, util::Rng rng,
       const attack::ColluderPlan& plan = {},
       const std::vector<PeerId>& clique = {});

  /// Adversary-plane construction: agents are selected per node from the
  /// strategy profile rather than from the scenario-wide AttackConfig.
  /// The honest selection takes exactly the honest path of the legacy
  /// constructor (same derive keys, same agent types).
  Node(PeerId id, NodeRole role, const ScenarioConfig& config, util::Rng rng,
       const AgentSelection& selection);

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  [[nodiscard]] PeerId id() const noexcept { return id_; }
  [[nodiscard]] NodeRole role() const noexcept { return role_; }
  [[nodiscard]] const crypto::KeyPair& keys() const noexcept { return keys_; }

  /// E_id(j): does this node consider j experienced right now?
  [[nodiscard]] bool experienced(PeerId j) const;
  [[nodiscard]] double threshold_mb() const noexcept { return threshold_mb_; }

  /// Adaptive-threshold hook (no-op when the scenario uses fixed T):
  /// re-evaluates T from the current ballot-box vote dispersion (§VII).
  void update_adaptive_threshold();

  /// The local user votes on a moderator. A negative vote also purges and
  /// blocks the moderator's metadata (§IV).
  void user_vote(ModeratorId moderator, Opinion opinion, Time now);

  [[nodiscard]] vote::VoteAgent& vote() noexcept { return *vote_; }
  [[nodiscard]] const vote::VoteAgent& vote() const noexcept {
    return *vote_;
  }
  [[nodiscard]] moderation::ModerationCastAgent& mod() noexcept {
    return *moderation_;
  }
  [[nodiscard]] const moderation::ModerationCastAgent& mod() const noexcept {
    return *moderation_;
  }
  [[nodiscard]] bartercast::BarterAgent& barter() noexcept {
    return *barter_;
  }
  [[nodiscard]] const bartercast::BarterAgent& barter() const noexcept {
    return *barter_;
  }

 private:
  PeerId id_;
  NodeRole role_;
  crypto::KeyPair keys_;
  double threshold_mb_;
  bool adaptive_enabled_;
  bartercast::AdaptiveThreshold adaptive_;
  std::unique_ptr<bartercast::BarterAgent> barter_;
  std::unique_ptr<vote::VoteAgent> vote_;
  std::unique_ptr<moderation::ModerationCastAgent> moderation_;
};

}  // namespace tribvote::core
