#include "core/node.hpp"

namespace tribvote::core {

namespace {
/// The legacy (role, AttackConfig)-driven selection: colluders lie about
/// votes and optionally fake experience over the whole crowd.
AgentSelection legacy_selection(NodeRole role, const ScenarioConfig& config,
                                const attack::ColluderPlan& plan,
                                const std::vector<PeerId>& clique) {
  AgentSelection sel;
  if (role == NodeRole::kColluder) {
    sel.spam_votes = true;
    sel.fake_experience = config.attack.fake_experience;
    sel.fake_mb = config.attack.fake_mb;
    sel.plan = plan;
    sel.clique = clique;
  }
  return sel;
}
}  // namespace

Node::Node(PeerId id, NodeRole role, const ScenarioConfig& config,
           util::Rng rng, const attack::ColluderPlan& plan,
           const std::vector<PeerId>& clique)
    : Node(id, role, config, rng, legacy_selection(role, config, plan,
                                                   clique)) {}

Node::Node(PeerId id, NodeRole role, const ScenarioConfig& config,
           util::Rng rng, const AgentSelection& selection)
    : id_(id),
      role_(role),
      threshold_mb_(config.adaptive_threshold
                        ? config.adaptive.t_min
                        : config.experience_threshold_mb),
      adaptive_enabled_(config.adaptive_threshold),
      adaptive_(config.adaptive) {
  util::Rng key_rng = rng.derive(0x6b657973);  // "keys"
  keys_ = crypto::generate_keypair(key_rng);

  // BarterCast agent (honest, or front-peer when the selection fakes
  // experience).
  if (selection.fake_experience) {
    barter_ = std::make_unique<attack::FrontPeerBarterAgent>(
        id, config.barter, selection.clique, selection.fake_mb);
  } else {
    barter_ = std::make_unique<bartercast::BarterAgent>(id, config.barter);
  }

  // Vote agent; its experience callback reads this node's current
  // (possibly adaptive) threshold.
  auto experience_cb = [this](PeerId j) { return experienced(j); };
  if (selection.spam_votes) {
    vote_ = std::make_unique<attack::ColluderVoteAgent>(
        id, keys_, config.vote, experience_cb, rng.derive(0x766f7465),
        selection.plan);
  } else {
    vote_ = std::make_unique<vote::VoteAgent>(
        id, keys_, config.vote, experience_cb, rng.derive(0x766f7465));
  }

  // ModerationCast agent; approval gating reads the local vote list.
  auto opinion_cb = [this](ModeratorId m) {
    return vote_->vote_list().opinion_of(m);
  };
  moderation_ = std::make_unique<moderation::ModerationCastAgent>(
      id, keys_, config.moderation, opinion_cb, rng.derive(0x6d6f6463));

  // Rankings may order moderators known from the local_db even when the
  // vote sample holds no votes on them yet.
  vote_->known_moderators = [this] {
    return moderation_->db().known_moderators();
  };
}

bool Node::experienced(PeerId j) const {
  return barter_->contribution_of(j) >= threshold_mb_;
}

void Node::update_adaptive_threshold() {
  if (!adaptive_enabled_) return;
  const double before = threshold_mb_;
  threshold_mb_ =
      adaptive_.observe_dispersion(vote_->observed_dispersion());
  if (threshold_mb_ > before) {
    // Shield from newcomers (§VII): votes absorbed under the old, laxer
    // threshold are re-checked against the raised one.
    (void)vote_->refilter_ballot();
  }
}

void Node::user_vote(ModeratorId moderator, Opinion opinion, Time now) {
  vote_->cast_vote(moderator, opinion, now);
  if (opinion == Opinion::kNegative) {
    moderation_->handle_disapproval(moderator);
  }
}

}  // namespace tribvote::core
