// ScenarioRunner: replays one trace through the full protocol stack.
//
// Owns the discrete-event simulator, the population (trace peers plus any
// attack crowd), the BitTorrent swarms, the PSS and every per-node protocol
// agent, and drives:
//
//   * trace events — session starts/ends, swarm creation, swarm joins;
//   * protocol loops — BT unchoke rounds, BallotBox/VoxPopuli exchanges,
//     ModerationCast exchanges, BarterCast exchanges, PSS gossip;
//   * attack injection — colluder arrival at the configured time;
//   * scenario scripting — moderation publishing, vote-on-receipt
//     behaviours, pre-converged-core setup;
//   * metric sampling on a fixed grid.
//
// One runner per replica; runners share nothing, so replicas parallelize
// freely (core/experiment.hpp).
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "adversary/engine.hpp"
#include "bt/bandwidth.hpp"
#include "bt/ledger.hpp"
#include "bt/swarm.hpp"
#include "core/config.hpp"
#include "core/node.hpp"
#include "pss/factory.hpp"
#include "pss/online_directory.hpp"
#include "sim/shard_kernel.hpp"
#include "sim/simulator.hpp"
#include "telemetry/telemetry.hpp"
#include "trace/trace.hpp"
#include "util/thread_pool.hpp"

namespace tribvote::core {

/// Counters accumulated over a run (sanity checks and perf accounting).
struct RunStats {
  std::uint64_t downloads_completed = 0;
  std::uint64_t vote_exchanges = 0;
  std::uint64_t moderation_exchanges = 0;
  std::uint64_t barter_exchanges = 0;
  std::uint64_t votes_accepted = 0;
  std::uint64_t votes_rejected_inexperienced = 0;
  std::uint64_t vp_requests_answered = 0;
  std::uint64_t vp_requests_null = 0;
};

class ScenarioRunner {
 public:
  /// `trace` is copied; `config` is copied. `seed` drives every stochastic
  /// choice (per-node streams are derived), so (trace, config, seed) fully
  /// determines the run.
  ScenarioRunner(trace::Trace trace, ScenarioConfig config,
                 std::uint64_t seed);

  // ---- population layout ---------------------------------------------------

  /// Trace peers occupy ids [0, trace_peer_count()); legacy attack
  /// colluders, if any, occupy the next crowd_size ids; adversary-plane
  /// agents (roster order, agent order) fill the tail up to
  /// population_size().
  [[nodiscard]] std::size_t trace_peer_count() const noexcept {
    return trace_.peers.size();
  }
  [[nodiscard]] std::size_t population_size() const noexcept {
    return nodes_.size();
  }
  [[nodiscard]] const std::vector<PeerId>& colluders() const noexcept {
    return colluders_;
  }
  /// The spam moderator M0 (first colluder); kInvalidModerator without an
  /// attack.
  [[nodiscard]] ModeratorId spam_moderator() const noexcept {
    return colluders_.empty() ? kInvalidModerator : colluders_.front();
  }

  [[nodiscard]] Node& node(PeerId id) { return *nodes_.at(id); }
  [[nodiscard]] const Node& node(PeerId id) const { return *nodes_.at(id); }

  // ---- scenario scripting (call before run_until) --------------------------

  /// Schedule `moderator` to publish a signed moderation at time `at`
  /// (skipped silently if it never happens to be possible — publishing
  /// requires nothing but the key, so it always happens).
  void publish_moderation(PeerId moderator, Time at, std::string description);

  /// When `voter` first receives any moderation authored by `moderator`,
  /// it casts `opinion` on the moderator (the Fig. 6 voting behaviour:
  /// "voting nodes do not vote until they receive the appropriate
  /// moderations").
  void script_vote_on_receipt(PeerId voter, ModeratorId moderator,
                              Opinion opinion);

  /// Immediate vote at setup time (t = 0), e.g. a pre-converged core.
  void cast_vote_now(PeerId voter, ModeratorId moderator, Opinion opinion);

  /// Pre-seed pairwise transfer history into the global ledger (experienced
  /// core bootstrap). Takes effect on the next BarterCast sync.
  void preseed_transfer(PeerId from, PeerId to, double mb);

  /// Pre-load `owner`'s ballot box with a vote from `voter`.
  void preload_ballot(PeerId owner, PeerId voter, ModeratorId moderator,
                      Opinion opinion);

  /// Register a sampling callback fired every `period` seconds starting at
  /// t = 0 (before any event at t = 0 fires, the baseline sample).
  void sample_every(Duration period, std::function<void(Time)> fn);

  // ---- execution ------------------------------------------------------------

  /// Advance simulated time. May be called repeatedly with increasing t.
  /// The first call lazily schedules all trace events and protocol loops.
  void run_until(Time t);

  [[nodiscard]] Time now() const noexcept { return sim_.now(); }
  [[nodiscard]] sim::Simulator& simulator() noexcept { return sim_; }

  /// Effective worker-shard count of the population event kernel (>= 1;
  /// clamped from ScenarioConfig::shards at construction).
  [[nodiscard]] std::size_t shard_count() const noexcept {
    return kernel_->shards();
  }
  [[nodiscard]] const sim::ShardKernelStats& kernel_stats() const noexcept {
    return kernel_->stats();
  }
  /// Cross-shard mailbox backlog of the kernel. Always zero between rounds
  /// — including after a mid-round crash takes an endpoint offline (the
  /// fault tests assert on this).
  [[nodiscard]] std::size_t pending_mail() const noexcept {
    return kernel_->pending_mail();
  }

  /// Degradation counters of the fault plane, per protocol (all zero when
  /// ScenarioConfig::faults is disabled).
  [[nodiscard]] const sim::FaultStats& fault_stats() const noexcept {
    return fault_plane_->stats();
  }

  /// Telemetry plane of this run, or nullptr when
  /// ScenarioConfig::telemetry is off (DESIGN.md §11). Counter/histogram
  /// totals are bit-identical at any shard count; span timing is
  /// wall-clock. The harness owns exporting (Chrome trace / per-round CSV)
  /// after the run.
  [[nodiscard]] telemetry::Telemetry* telemetry() noexcept {
    return telemetry_.get();
  }
  [[nodiscard]] const telemetry::Telemetry* telemetry() const noexcept {
    return telemetry_.get();
  }

  /// Adversary plane of this run, or nullptr when the roster is empty
  /// (an empty roster constructs no engine — the inert-when-off contract).
  [[nodiscard]] const adversary::AdversaryEngine* adversary() const noexcept {
    return adversary_.get();
  }
  /// Static id layout of the adversary population (empty when disabled).
  [[nodiscard]] const adversary::Layout& adversary_layout() const noexcept {
    return adv_layout_;
  }
  /// Serial work counters of the adversary plane (all-zero when disabled).
  [[nodiscard]] adversary::AdversaryStats adversary_stats() const {
    return adversary_ ? adversary_->stats() : adversary::AdversaryStats{};
  }
  /// Playback outcomes aggregated over every swarm (all-zero under the
  /// download workload).
  [[nodiscard]] bt::StreamingTotals streaming_totals() const;

  // ---- queries for metrics --------------------------------------------------

  [[nodiscard]] bool is_online(PeerId id) const {
    return online_.is_online(id);
  }
  [[nodiscard]] std::size_t online_count() const noexcept {
    return online_.online_count();
  }
  /// Has this identity appeared yet (trace arrival / attack start)?
  [[nodiscard]] bool has_arrived(PeerId id, Time t) const;
  /// Read-only view of the contribution ledger (backend per
  /// ScenarioConfig::ledger).
  [[nodiscard]] const bt::LedgerView& ledger() const noexcept {
    return *ledger_;
  }
  /// Node id's current moderator ranking (ballot box or VoxPopuli merge).
  [[nodiscard]] vote::RankedList ranking_of(PeerId id) const {
    return nodes_.at(id)->vote().current_ranking();
  }
  /// Pointers to every node's BarterCast agent, indexed by PeerId (for the
  /// CEV metric).
  [[nodiscard]] std::vector<const bartercast::BarterAgent*> barter_agents()
      const;
  /// CEV over the trace population (colluder identities excluded, as the
  /// paper's measurements are) at threshold T, via the batched
  /// contribution-column engine. Pass a pool to fan the per-sink columns
  /// out across threads; the result is bit-identical either way.
  [[nodiscard]] double collective_experience(
      double threshold_mb, util::ThreadPool* pool = nullptr) const;
  [[nodiscard]] const RunStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const trace::Trace& trace() const noexcept { return trace_; }
  [[nodiscard]] const ScenarioConfig& config() const noexcept {
    return config_;
  }

 private:
  void build_population(std::uint64_t seed);
  void schedule_everything();
  void peer_online(PeerId id);
  void peer_offline(PeerId id);
  void swarm_created(const trace::SwarmSpec& spec);
  void swarm_join(const trace::SwarmJoin& join);
  void bt_round();
  void vote_round();
  void moderation_round();
  void barter_round();
  /// Serial post-round fault application: schedule the round's deferred
  /// deliveries, take crashed responders offline, spawn VoxPopuli retries.
  void flush_round_faults();
  /// Backoff retry of a failed VoxPopuli top-K request. `attempt` is
  /// 1-based; the chain stops at the configured budget or the moment the
  /// node leaves its bootstrap phase.
  void schedule_vp_retry(PeerId initiator, std::size_t attempt,
                         util::Rng rng);
  void launch_attack();
  void schedule_colluder_churn(PeerId colluder, bool currently_online);
  /// Population-access callbacks handed to the adversary engine; every one
  /// is invoked serially from the engine's round hooks.
  [[nodiscard]] adversary::AdversaryEngine::Host make_adversary_host();
  [[nodiscard]] PeerId sample_peer(PeerId self);

  /// Serial pairing phase shared by every gossip round: shuffle the online
  /// set and draw one PSS counterpart per initiator, consuming the global
  /// RNG/PSS streams in the exact pre-shard order (shard-count invariance
  /// depends on it — see sim/shard_kernel.hpp).
  [[nodiscard]] std::vector<sim::Encounter> pair_round();
  /// Fold the per-lane counter deltas of the round just executed into
  /// stats_ (lane order; all fields are sums, so the fold is exact).
  void merge_lane_stats();

  /// Construct the telemetry plane and register every counter/histogram
  /// (no-op when ScenarioConfig::telemetry is off).
  void init_telemetry();
  /// Per-round telemetry barrier (end of each vote round): mirror the
  /// serial counters (RunStats, kernel stats, fault degradation) onto the
  /// registry, fold the lane blocks, snapshot a per-round CSV row.
  void telemetry_round_sample();
  /// Count a user vote being cast (lane-local; inert when telemetry off).
  void note_vote_cast(Opinion opinion) {
    (opinion == Opinion::kPositive ? probes_.votes_cast_positive
                                   : probes_.votes_cast_negative)
        .add();
  }
  /// Account one directed gossip leg (lane-local; inert when telemetry
  /// off). Bytes cover every frame the leg put on the wire.
  void note_gossip_leg(const vote::GossipLegOutcome& leg) {
    probes_.gossip_bytes.add(leg.bytes);
    if (leg.delta) {
      probes_.gossip_delta.add();
    } else {
      probes_.gossip_full.add();
    }
    if (leg.fallback_full) probes_.gossip_fallbacks.add();
    if (leg.cache_hit) probes_.gossip_cache_hits.add();
    if (leg.signatures > 0) probes_.gossip_signatures.add(leg.signatures);
  }
  /// Count a moderation being published. The publisher holds its own item,
  /// so it counts as "reached" too (publish() fires no on_new_moderation —
  /// that callback is receive-side only).
  void note_moderation_published(PeerId moderator) {
    probes_.mod_published.add();
    if (moderator < mod_reached_.size() && mod_reached_[moderator] == 0) {
      mod_reached_[moderator] = 1;
      probes_.mod_nodes_reached.add();
    }
  }

  trace::Trace trace_;
  ScenarioConfig config_;
  util::Rng rng_;

  sim::Simulator sim_;
  // Population event kernel: worker pool + sharded round executor. The pool
  // exists only when shards > 1; lane_stats_ holds one counter block per
  // lane so exchange bodies never contend on stats_.
  std::unique_ptr<util::ThreadPool> shard_pool_;
  std::unique_ptr<sim::ShardKernel> kernel_;
  std::vector<RunStats> lane_stats_;
  // Network fault plane (tentpole of the robustness PR). Constructed
  // unconditionally from a derived RNG stream — deriving is a pure function
  // of the parent seed, so a disabled plane leaves the fault-free RNG
  // sequence untouched and output byte-identical to pre-fault builds.
  std::unique_ptr<sim::FaultPlane> fault_plane_;
  std::unique_ptr<bt::Ledger> ledger_;
  std::unique_ptr<bt::BandwidthAllocator> bandwidth_;
  pss::OnlineDirectory online_;
  /// The PSS behind the shared abstract interface (pss::make_sampler);
  /// lifecycle hooks are virtual no-ops on the oracle, so every call site
  /// is implementation-agnostic.
  std::unique_ptr<pss::PeerSampler> sampler_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::vector<PeerId> colluders_;
  // Adversary plane (inert unless the roster is non-empty: no engine is
  // constructed, the layout is empty, and no code path draws an extra
  // random number). Engine traffic deliberately bypasses the fault plane —
  // it models application-level attack behaviour, not the network.
  adversary::Layout adv_layout_;
  std::unique_ptr<adversary::AdversaryEngine> adversary_;
  std::map<SwarmId, std::unique_ptr<bt::Swarm>> swarms_;
  std::vector<std::unique_ptr<sim::PeriodicTask>> loops_;
  // Scripted votes: voter -> (moderator -> opinion), consumed on receipt.
  std::vector<std::map<ModeratorId, Opinion>> scripted_votes_;
  struct PendingModeration {
    PeerId moderator;
    Time at;
    std::string description;
  };
  std::vector<PendingModeration> pending_moderations_;
  struct Sampler {
    Duration period;
    std::function<void(Time)> fn;
  };
  std::vector<Sampler> samplers_;
  RunStats stats_;
  bool scheduled_ = false;

  // ---- telemetry plane (null/inert when ScenarioConfig::telemetry is off) --
  std::unique_ptr<telemetry::Telemetry> telemetry_;
  /// Lane-local event probes and histograms. Null handles when telemetry
  /// is off, so instrumentation sites call them unconditionally.
  struct Probes {
    telemetry::Counter votes_cast_positive;
    telemetry::Counter votes_cast_negative;
    telemetry::Counter mod_published;
    telemetry::Counter mod_deliveries;
    telemetry::Counter mod_nodes_reached;
    // Gossip-cache / delta-exchange accounting (lane-local sums, so the
    // fold is shard-invariant like every other probe).
    telemetry::Counter gossip_bytes;        ///< wire bytes, incl. lost frames
    telemetry::Counter gossip_full;         ///< legs completed as full lists
    telemetry::Counter gossip_delta;        ///< legs completed digest-first
    telemetry::Counter gossip_fallbacks;    ///< damaged digest → full retry
    telemetry::Counter gossip_cache_hits;   ///< messages served from cache
    telemetry::Counter gossip_signatures;   ///< Schnorr signing operations
    telemetry::Histogram vote_list_size;
    telemetry::Histogram vox_topk_size;
    telemetry::Histogram mod_batch_size;
    telemetry::Histogram barter_batch_size;
  };
  Probes probes_;
  /// Serial-mirror counter ids (set_total at the round barrier).
  struct Mirrors {
    telemetry::CounterId vote_exchanges, votes_accepted, votes_rejected;
    telemetry::CounterId vox_answered, vox_null;
    telemetry::CounterId mod_exchanges, barter_exchanges, bt_completed;
    telemetry::CounterId kernel_levels, kernel_local, kernel_mailed;
    // Adversary-plane mirrors (registered only when the roster is
    // non-empty, so an adversary-free telemetry CSV keeps its columns).
    telemetry::CounterId adv_floods, adv_flood_rejected, adv_nuisance_flips;
    telemetry::CounterId adv_credit_transfers, adv_presence_flips;
  };
  Mirrors mirrors_{};
  std::vector<telemetry::CounterId> fault_counter_ids_;
  bt::SwarmProbes swarm_probes_;  ///< shared by every swarm
  /// Per-node flag: has any moderation reached this node yet? Guards the
  /// exactly-once "mod.nodes_reached" count; a node's encounters are
  /// serialized by the kernel, so the flag needs no synchronization.
  std::vector<std::uint8_t> mod_reached_;
  std::uint64_t telemetry_round_ = 0;
};

}  // namespace tribvote::core
