#include "core/experiment.hpp"

#include "util/thread_pool.hpp"

namespace tribvote::core {

std::vector<ReplicaResult> run_replicas(
    const std::vector<trace::Trace>& traces, const ReplicaFn& fn,
    std::size_t threads) {
  std::vector<ReplicaResult> results(traces.size());
  util::ThreadPool pool(threads);
  pool.parallel_for(traces.size(), [&](std::size_t i) {
    results[i] = fn(traces[i], i);
  });
  return results;
}

metrics::AggregateSeries aggregate_named(
    const std::vector<ReplicaResult>& results, const std::string& name) {
  std::vector<metrics::TimeSeries> series;
  series.reserve(results.size());
  for (const auto& r : results) {
    const auto it = r.series.find(name);
    if (it != r.series.end()) series.push_back(it->second);
  }
  return metrics::aggregate(series);
}

}  // namespace tribvote::core
