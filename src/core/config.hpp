// Scenario configuration: every knob a simulation run exposes, with
// defaults matching the paper's parameter choices (DESIGN.md §5).
#pragma once

#include <cstddef>
#include <cstdint>

#include "adversary/config.hpp"
#include "bartercast/experience.hpp"
#include "bartercast/protocol.hpp"
#include "bt/ledger.hpp"
#include "bt/streaming.hpp"
#include "moderation/moderationcast.hpp"
#include "pss/newscast.hpp"
#include "sim/fault_plane.hpp"
#include "telemetry/config.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"
#include "vote/agent.hpp"

namespace tribvote::core {

/// How often each protocol loop fires.
struct ProtocolPeriods {
  Duration bt_round = 10;              ///< BitTorrent rechoke round (spec)
  Duration vote_exchange = 60;         ///< BallotBox/VoxPopuli Δ
  Duration moderation_exchange = 60;   ///< ModerationCast Δ
  Duration barter_exchange = 120;      ///< BarterCast encounters
  Duration newscast_gossip = 60;       ///< PSS view exchange (if Newscast)
  Duration adaptive_update = 600;      ///< adaptive-threshold re-evaluation
};

enum class PssKind : std::uint8_t {
  kOracle,    ///< uniform random over the online set (paper's assumption)
  kNewscast,  ///< gossip view-exchange PSS
};

/// Flash-crowd attack (Fig. 8). `crowd_size` colluder identities appear at
/// `start`, stay online, promote the spam moderator M0 (the first colluder
/// id) and answer every VoxPopuli request with a fabricated list.
struct AttackConfig {
  std::size_t crowd_size = 0;  ///< 0 = no attack
  Time start = 0;
  /// Fraction of time each colluder identity is online after `start`.
  /// 1.0 = always on; the Fig. 8 reproduction uses trace-like churn (0.5)
  /// so the crowd/core ratio matches the paper's online dynamics.
  double duty = 0.5;
  /// Mean colluder session length when duty < 1.
  Duration session_mean = kHour;
  /// Honest moderator the crowd demotes with negative votes
  /// (kInvalidModerator = none).
  ModeratorId victim = kInvalidModerator;
  /// Colluders also run the front-peer BarterCast attack, claiming
  /// `fake_mb` transfers inside the clique.
  bool fake_experience = false;
  double fake_mb = 1000.0;
};

struct ScenarioConfig {
  vote::VoteConfig vote;                    // B_min=5, B_max=100, V_max=10, K=3
  moderation::ModerationCastConfig moderation;
  bartercast::BarterConfig barter;

  /// Fixed experience threshold T in MB (paper: 5 MB via Fig. 5).
  double experience_threshold_mb = 5.0;
  /// Use the §VII adaptive threshold instead of the fixed T.
  bool adaptive_threshold = false;
  bartercast::AdaptiveThresholdParams adaptive;

  /// Worker shards for the population event kernel (sim/shard_kernel.hpp).
  /// Nodes map to shards by id; protocol rounds fan encounters out across
  /// one worker lane per shard. Results are bit-identical for every value
  /// (1 = serial execution on the calling thread, today's behaviour).
  std::size_t shards = 1;

  /// Contribution-ledger backend (bt/ledger.hpp). kMap is the paper-scale
  /// default the golden CSVs were recorded on; kShardedLog is the
  /// append-log backend for very large populations. Both produce
  /// bit-identical per-pair accounting, so metrics agree either way.
  bt::LedgerBackend ledger = bt::LedgerBackend::kMap;

  /// Deterministic network fault plane (sim/fault_plane.hpp). Defaults to
  /// no faults — the perfect-transport setting every golden CSV was
  /// recorded under; with faults disabled the plane is inert and runs are
  /// byte-identical to pre-fault-plane builds.
  sim::FaultConfig faults;

  /// Telemetry plane (src/telemetry/, DESIGN.md §11). Off by default — the
  /// goldens' setting; the runner then never constructs a registry or
  /// trace buffer and every probe is an inert null handle. Counter and
  /// histogram totals are bit-identical at any shard count; span timing
  /// (mode = trace) is wall-clock and therefore not.
  telemetry::TelemetryConfig telemetry;

  ProtocolPeriods periods;
  PssKind pss = PssKind::kOracle;
  pss::NewscastConfig newscast;
  AttackConfig attack;

  /// Adversary plane (src/adversary/, DESIGN.md "Adversary plane"). An
  /// empty roster (the default) is fully inert: no engine, no extra
  /// identities, runs byte-identical to pre-adversary builds. The legacy
  /// AttackConfig above keeps driving the Fig. 8 reproduction verbatim;
  /// the roster composes with it (adversary ids follow the crowd's).
  adversary::AdversaryConfig adversary;

  /// Streaming-swarm workload (bt/streaming.hpp). Off by default — the
  /// download workload every golden was recorded on.
  bt::StreamingConfig streaming;
};

}  // namespace tribvote::core
