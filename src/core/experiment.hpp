// Replica orchestration: run one scenario over many traces in parallel and
// aggregate the sampled series — the machinery behind every "average of 10
// trace runs" curve in the paper.
//
// Each replica builds its own ScenarioRunner from (trace, config, derived
// seed) on a pool thread; replicas share nothing mutable, so results are
// bit-identical regardless of thread count.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "metrics/timeseries.hpp"
#include "trace/trace.hpp"

namespace tribvote::core {

/// Named time series produced by one replica.
struct ReplicaResult {
  std::map<std::string, metrics::TimeSeries> series;
};

/// Body of one replica: given a trace and the replica index, run a
/// simulation and return its sampled series. Must be thread-safe w.r.t.
/// other replicas (i.e. touch no shared mutable state).
using ReplicaFn =
    std::function<ReplicaResult(const trace::Trace&, std::size_t index)>;

/// Run `fn` once per trace, in parallel (threads = 0 → hardware
/// concurrency). Results are returned in trace order.
[[nodiscard]] std::vector<ReplicaResult> run_replicas(
    const std::vector<trace::Trace>& traces, const ReplicaFn& fn,
    std::size_t threads = 0);

/// Pull one named series out of every replica (replicas missing the name
/// are skipped) and aggregate into mean ± stderr.
[[nodiscard]] metrics::AggregateSeries aggregate_named(
    const std::vector<ReplicaResult>& results, const std::string& name);

}  // namespace tribvote::core
