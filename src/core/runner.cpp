#include "core/runner.hpp"

#include <algorithm>
#include <cassert>

#include "metrics/cev.hpp"
#include "metrics/degradation.hpp"
#include "moderation/moderation.hpp"
#include "vote/encounter.hpp"

namespace tribvote::core {

namespace {
/// Colluder identities are cheap cloud VMs: connectable, decent downlink,
/// negligible uplink (they contribute nothing).
constexpr double kColluderUploadKbps = 1.0;
constexpr double kColluderDownloadKbps = 1024.0;

/// Fold a receive verdict into the run counters exactly as the fault-free
/// inline code did: kAccepted is the old `accepted`, and kInexperienced is
/// the only other verdict a non-empty message produces in a fault-free run
/// (pairing never bounces a message back to its signer, and every agent —
/// colluders included — signs with its own key).
void note_vote_receive(RunStats& st, vote::ReceiveResult r) {
  if (r == vote::ReceiveResult::kAccepted) {
    ++st.votes_accepted;
  } else if (r == vote::ReceiveResult::kInexperienced) {
    ++st.votes_rejected_inexperienced;
  }
}

/// Map a fault-plane payload verdict onto the vote layer's sim-agnostic
/// wire-fault enum (vote/ cannot include sim/).
vote::WireFault to_wire(sim::PayloadFault fault) {
  switch (fault) {
    case sim::PayloadFault::kTruncated:
      return vote::WireFault::kTruncated;
    case sim::PayloadFault::kCorrupted:
      return vote::WireFault::kCorrupted;
    case sim::PayloadFault::kNone:
      break;
  }
  return vote::WireFault::kNone;
}

/// Wire bytes of the opening frame a sender would put on the wire toward
/// `receiver` — a digest when the delta path is open, else the full
/// message. Used to account frames the fault plane drops before delivery.
std::size_t first_frame_bytes(const vote::VoteAgent& sender,
                              const vote::VoteListMessage& msg,
                              PeerId receiver) {
  if (sender.config().gossip_cache && !msg.votes.empty() &&
      sender.counterparts().known(receiver)) {
    return vote::wire_size(vote::make_digest(msg));
  }
  return vote::wire_size(msg);
}

/// In-flight damage to a moderation batch. Items are individually signed,
/// so truncation loses the tail and corruption damages exactly one item —
/// the receiver's per-item verification drops it and merges the rest.
void corrupt_moderation_batch(std::vector<moderation::Moderation>& items,
                              sim::PayloadFault fault, std::uint64_t salt) {
  if (items.empty()) return;
  switch (fault) {
    case sim::PayloadFault::kNone:
      return;
    case sim::PayloadFault::kTruncated:
      items.resize((items.size() + 1) / 2);
      return;
    case sim::PayloadFault::kCorrupted:
      items[salt % items.size()].signature.s ^= std::uint64_t{1} << (salt & 63);
      return;
  }
}

/// In-flight damage to a BarterCast batch; returns how many records the
/// receiver is guaranteed to reject. A corrupted record no longer parses
/// as adjacent to its sender, which is exactly the record-wise check
/// BarterAgent::receive applies; truncation just loses the tail.
std::size_t corrupt_barter_batch(std::vector<bartercast::BarterRecord>& records,
                                 sim::PayloadFault fault, std::uint64_t salt) {
  if (records.empty()) return 0;
  switch (fault) {
    case sim::PayloadFault::kNone:
      return 0;
    case sim::PayloadFault::kTruncated:
      records.resize((records.size() + 1) / 2);
      return 0;
    case sim::PayloadFault::kCorrupted: {
      bartercast::BarterRecord& r = records[salt % records.size()];
      r.from = kInvalidPeer;
      r.to = kInvalidPeer;
      return 1;
    }
  }
  return 0;
}
}  // namespace

ScenarioRunner::ScenarioRunner(trace::Trace trace, ScenarioConfig config,
                               std::uint64_t seed)
    : trace_(std::move(trace)),
      config_(config),
      rng_(seed),
      ledger_(bt::make_ledger(
          config.ledger,
          trace_.peers.size() + config.attack.crowd_size +
              config.adversary.total_agents(),
          std::max<std::size_t>(1, config.shards))),
      online_(trace_.peers.size() + config.attack.crowd_size +
              config.adversary.total_agents()),
      scripted_votes_(trace_.peers.size() + config.attack.crowd_size +
                      config.adversary.total_agents()) {
  build_population(seed);
  const std::size_t shards = std::max<std::size_t>(1, config_.shards);
  if (shards > 1) shard_pool_ = std::make_unique<util::ThreadPool>(shards);
  kernel_ = std::make_unique<sim::ShardKernel>(nodes_.size(), shards,
                                               shard_pool_.get());
  lane_stats_.assign(shards, RunStats{});
  // "fault". Deriving is a pure read of rng_'s state, so a disabled plane
  // perturbs nothing.
  fault_plane_ = std::make_unique<sim::FaultPlane>(
      config_.faults, rng_.derive(0x6661756c74), shards);
  // "advs". Constructed only for a non-empty roster; deriving is a pure
  // read of rng_'s state, so a disabled plane perturbs nothing.
  if (config_.adversary.enabled()) {
    adversary_ = std::make_unique<adversary::AdversaryEngine>(
        config_.adversary, adv_layout_, rng_.derive(0x61647673),
        make_adversary_host());
  }
  init_telemetry();
}

void ScenarioRunner::init_telemetry() {
  if (!config_.telemetry.enabled()) return;
  telemetry_ =
      std::make_unique<telemetry::Telemetry>(config_.telemetry,
                                             kernel_->shards());
  kernel_->set_telemetry(telemetry_.get());
  telemetry::Registry& reg = telemetry_->registry();

  // Serial mirrors of RunStats / kernel stats. Registration order is the
  // per-round CSV column order. The kernel.* counters describe the
  // *schedule* (levels, mailbox traffic) and are the only columns that
  // legitimately vary with the shard count.
  mirrors_.vote_exchanges = reg.counter("vote.exchanges");
  mirrors_.votes_accepted = reg.counter("vote.accepted");
  mirrors_.votes_rejected = reg.counter("vote.rejected_inexperienced");
  mirrors_.vox_answered = reg.counter("vox.answered");
  mirrors_.vox_null = reg.counter("vox.null");
  mirrors_.mod_exchanges = reg.counter("mod.exchanges");
  mirrors_.barter_exchanges = reg.counter("barter.exchanges");
  mirrors_.bt_completed = reg.counter("bt.downloads_completed");
  mirrors_.kernel_levels = reg.counter("kernel.levels");
  mirrors_.kernel_local = reg.counter("kernel.local");
  mirrors_.kernel_mailed = reg.counter("kernel.mailed");

  // Lane-local event counters (written from exchange bodies and scripted
  // callbacks; folded at the barrier in lane order).
  probes_.votes_cast_positive =
      telemetry::Counter(&reg, reg.counter("vote.cast_positive"));
  probes_.votes_cast_negative =
      telemetry::Counter(&reg, reg.counter("vote.cast_negative"));
  probes_.mod_published =
      telemetry::Counter(&reg, reg.counter("mod.published"));
  probes_.mod_deliveries =
      telemetry::Counter(&reg, reg.counter("mod.deliveries"));
  probes_.mod_nodes_reached =
      telemetry::Counter(&reg, reg.counter("mod.nodes_reached"));
  // Gossip cache / delta exchange accounting. Lane-local sums over
  // per-encounter values that depend only on per-node state the kernel
  // serializes, so the folded totals are shard-invariant.
  probes_.gossip_bytes =
      telemetry::Counter(&reg, reg.counter("gossip.bytes_sent"));
  probes_.gossip_full =
      telemetry::Counter(&reg, reg.counter("gossip.full_exchanges"));
  probes_.gossip_delta =
      telemetry::Counter(&reg, reg.counter("gossip.delta_exchanges"));
  probes_.gossip_fallbacks =
      telemetry::Counter(&reg, reg.counter("gossip.digest_fallbacks"));
  probes_.gossip_cache_hits =
      telemetry::Counter(&reg, reg.counter("gossip.cache_hits"));
  probes_.gossip_signatures =
      telemetry::Counter(&reg, reg.counter("gossip.signatures"));

  // BT swarm probes (serial: bt_round ticks swarms on the simulator
  // thread) and the PSS view-exchange probe.
  swarm_probes_.ticks = telemetry::Counter(&reg, reg.counter("bt.ticks"));
  swarm_probes_.pieces_completed =
      telemetry::Counter(&reg, reg.counter("bt.pieces_completed"));
  swarm_probes_.active_members = telemetry::Histogram(
      &reg, reg.histogram("bt.active_members", {1, 2, 5, 10, 20, 50, 100}));
  if (config_.streaming.enabled) {
    // Deadline accounting only exists under the streaming workload, so an
    // adversary-free download run keeps its historical CSV columns.
    swarm_probes_.pieces_on_time =
        telemetry::Counter(&reg, reg.counter("bt.pieces_on_time"));
    swarm_probes_.deadline_misses =
        telemetry::Counter(&reg, reg.counter("bt.deadline_misses"));
  }
  if (adversary_) {
    mirrors_.adv_floods = reg.counter("adv.floods_sent");
    mirrors_.adv_flood_rejected = reg.counter("adv.flood_rejected");
    mirrors_.adv_nuisance_flips = reg.counter("adv.nuisance_flips");
    mirrors_.adv_credit_transfers = reg.counter("adv.credit_transfers");
    mirrors_.adv_presence_flips = reg.counter("adv.presence_flips");
  }
  if (config_.pss == PssKind::kNewscast) {
    sampler_->set_exchange_probe(
        telemetry::Counter(&reg, reg.counter("pss.exchanges")));
  }

  // Message-size histograms (observed inside exchange bodies, pre-damage).
  probes_.vote_list_size = telemetry::Histogram(
      &reg, reg.histogram("vote.list_size", {0, 1, 2, 5, 10, 20, 50}));
  probes_.vox_topk_size = telemetry::Histogram(
      &reg, reg.histogram("vox.topk_size", {0, 1, 2, 3, 5}));
  probes_.mod_batch_size = telemetry::Histogram(
      &reg, reg.histogram("mod.batch_size", {0, 1, 2, 5, 10, 25}));
  probes_.barter_batch_size = telemetry::Histogram(
      &reg, reg.histogram("barter.batch_size", {0, 1, 2, 5, 10, 20, 50}));

  // Fault-plane degradation port: the abl_fault_sweep columns, prefixed
  // "fault.", mirrored from FaultStats each round.
  fault_counter_ids_ = metrics::register_degradation(reg);

  mod_reached_.assign(nodes_.size(), 0);
}

void ScenarioRunner::telemetry_round_sample() {
  if (!telemetry_) return;
  telemetry::Registry& reg = telemetry_->registry();
  reg.set_total(mirrors_.vote_exchanges, stats_.vote_exchanges);
  reg.set_total(mirrors_.votes_accepted, stats_.votes_accepted);
  reg.set_total(mirrors_.votes_rejected,
                stats_.votes_rejected_inexperienced);
  reg.set_total(mirrors_.vox_answered, stats_.vp_requests_answered);
  reg.set_total(mirrors_.vox_null, stats_.vp_requests_null);
  reg.set_total(mirrors_.mod_exchanges, stats_.moderation_exchanges);
  reg.set_total(mirrors_.barter_exchanges, stats_.barter_exchanges);
  reg.set_total(mirrors_.bt_completed, stats_.downloads_completed);
  const sim::ShardKernelStats& ks = kernel_->stats();
  reg.set_total(mirrors_.kernel_levels, ks.levels);
  reg.set_total(mirrors_.kernel_local, ks.local);
  reg.set_total(mirrors_.kernel_mailed, ks.mailed);
  if (adversary_) {
    const adversary::AdversaryStats& as = adversary_->stats();
    reg.set_total(mirrors_.adv_floods, as.floods_sent);
    reg.set_total(mirrors_.adv_flood_rejected, as.flood_rejected);
    reg.set_total(mirrors_.adv_nuisance_flips, as.nuisance_flips);
    reg.set_total(mirrors_.adv_credit_transfers, as.credit_transfers);
    reg.set_total(mirrors_.adv_presence_flips, as.presence_flips);
  }
  metrics::update_degradation(reg, fault_counter_ids_, fault_plane_->stats());
  reg.merge_lanes();
  telemetry_->sample_round(telemetry_round_++,
                           static_cast<double>(sim_.now()) / kHour);
}

void ScenarioRunner::build_population(std::uint64_t seed) {
  const std::size_t n_trace = trace_.peers.size();
  const std::size_t n_crowd = n_trace + config_.attack.crowd_size;
  const std::size_t n_total = n_crowd + config_.adversary.total_agents();

  // Adversary agents occupy the dense id block after the legacy crowd.
  adv_layout_ =
      adversary::Layout(config_.adversary, static_cast<PeerId>(n_crowd));

  // Physical capacities for the bandwidth allocator.
  std::vector<double> up(n_total, kColluderUploadKbps);
  std::vector<double> down(n_total, kColluderDownloadKbps);
  for (const auto& p : trace_.peers) {
    up[p.id] = p.upload_kbps;
    down[p.id] = p.download_kbps;
  }
  bandwidth_ = std::make_unique<bt::BandwidthAllocator>(std::move(up),
                                                        std::move(down));

  // Colluder ids and plan.
  for (std::size_t c = 0; c < config_.attack.crowd_size; ++c) {
    colluders_.push_back(static_cast<PeerId>(n_trace + c));
  }
  attack::ColluderPlan plan;
  if (!colluders_.empty()) {
    plan.spam_moderator = colluders_.front();
    plan.victim_moderator = config_.attack.victim;
    if (config_.attack.victim != kInvalidModerator) {
      plan.decoys.push_back(config_.attack.victim);
    }
  }

  util::Rng node_rng = rng_.derive(0x6e6f6465);  // "node"
  nodes_.reserve(n_total);
  for (PeerId id = 0; id < n_total; ++id) {
    if (adv_layout_.is_adversary(id)) {
      // Adversary agents select their agent subclasses from the strategy
      // profile; honest-behaving strategies (attrition, nuisance) take
      // exactly the honest construction path.
      const adversary::AgentProfile& p = adv_layout_.profile(id);
      const adversary::StrategySpec& spec =
          config_.adversary.roster[p.strategy];
      AgentSelection sel;
      sel.spam_votes = p.spam_votes;
      sel.fake_experience = p.fake_experience;
      sel.fake_mb = spec.fake_mb;
      if (p.spam_votes) {
        sel.plan.spam_moderator = adv_layout_.spam_moderator();
        sel.plan.victim_moderator = spec.victim;
        if (spec.victim != kInvalidModerator) {
          sel.plan.decoys.push_back(spec.victim);
        }
      }
      if (sel.fake_experience) sel.clique = adv_layout_.clique_of(p.strategy);
      nodes_.push_back(std::make_unique<Node>(id, NodeRole::kColluder,
                                              config_, node_rng.derive(id),
                                              sel));
    } else {
      const NodeRole role =
          id < n_trace ? NodeRole::kHonest : NodeRole::kColluder;
      nodes_.push_back(std::make_unique<Node>(id, role, config_,
                                              node_rng.derive(id), plan,
                                              colluders_));
    }
    // Wire scripted vote-on-receipt behaviour for every node up front; the
    // scripts themselves are registered later via script_vote_on_receipt.
    Node* node = nodes_.back().get();
    node->mod().on_new_moderation =
        [this, node](const moderation::Moderation& m) {
          // Telemetry: every insert is a delivery; the first ever insert
          // marks the node reached. The flag is per node and a node's
          // encounters are kernel-serialized, so the exactly-once count
          // is shard-count invariant. mod_reached_ is empty (size 0) when
          // telemetry is off.
          probes_.mod_deliveries.add();
          if (node->id() < mod_reached_.size() &&
              mod_reached_[node->id()] == 0) {
            mod_reached_[node->id()] = 1;
            probes_.mod_nodes_reached.add();
          }
          auto& script = scripted_votes_[node->id()];
          const auto it = script.find(m.moderator);
          if (it == script.end()) return;
          node->user_vote(m.moderator, it->second, sim_.now());
          note_vote_cast(it->second);
          script.erase(it);
        };
  }

  // PSS, factory-selected behind the shared PeerSampler interface. Each
  // kind keeps its historical derive key (derive() is a pure function of
  // the parent seed), so routing both through the factory leaves every RNG
  // stream — and therefore every golden — untouched.
  sampler_ = config_.pss == PssKind::kNewscast
                 ? pss::make_sampler(pss::SamplerKind::kNewscast, n_total,
                                     online_, config_.newscast,
                                     rng_.derive(0x6e657773))
                 : pss::make_sampler(pss::SamplerKind::kOracle, n_total,
                                     online_, config_.newscast,
                                     rng_.derive(0x707373));
  (void)seed;
}

PeerId ScenarioRunner::sample_peer(PeerId self) {
  return sampler_->sample(self);
}

adversary::AdversaryEngine::Host ScenarioRunner::make_adversary_host() {
  // Every callback runs serially on the simulator thread (the engine's
  // hooks fire outside kernel rounds), so none of them needs locking. The
  // only global stream any of them touches is via rng_.derive — a pure
  // read, so honest-run RNG sequences stay untouched.
  adversary::AdversaryEngine::Host host;
  host.vote_agent = [this](PeerId id) -> vote::VoteAgent& {
    return nodes_[id]->vote();
  };
  host.cast_vote = [this](PeerId peer, ModeratorId m, Opinion o, Time now) {
    nodes_[peer]->user_vote(m, o, now);
    note_vote_cast(o);
  };
  host.known_moderators = [this](PeerId peer) {
    return nodes_[peer]->mod().db().known_moderators();
  };
  host.publish_moderation = [this](PeerId peer,
                                   const std::string& description, Time now) {
    util::Rng ih = rng_.derive(0x696e666f ^ peer);  // "info", as scripted
    nodes_[peer]->mod().publish(ih(), description, now);
    note_moderation_published(peer);
  };
  host.is_online = [this](PeerId id) { return online_.is_online(id); };
  host.set_online = [this](PeerId id, bool on) {
    // Route through the regular session paths so the PSS lifecycle hooks
    // and swarm (re)activation fire exactly as for trace churn.
    if (on) {
      peer_online(id);
    } else {
      peer_offline(id);
    }
  };
  host.online_honest = [this] {
    std::vector<PeerId> honest = online_.online_ids();
    std::sort(honest.begin(), honest.end());
    std::erase_if(honest,
                  [n = trace_.peers.size()](PeerId id) { return id >= n; });
    return honest;
  };
  host.ledger = ledger_.get();
  return host;
}

// ---- scripting --------------------------------------------------------------

void ScenarioRunner::publish_moderation(PeerId moderator, Time at,
                                        std::string description) {
  pending_moderations_.push_back(
      PendingModeration{moderator, at, std::move(description)});
}

void ScenarioRunner::script_vote_on_receipt(PeerId voter,
                                            ModeratorId moderator,
                                            Opinion opinion) {
  assert(voter < scripted_votes_.size());
  scripted_votes_[voter][moderator] = opinion;
}

void ScenarioRunner::cast_vote_now(PeerId voter, ModeratorId moderator,
                                   Opinion opinion) {
  nodes_.at(voter)->user_vote(moderator, opinion, sim_.now());
  note_vote_cast(opinion);
  // A vote consumes any matching script entry.
  scripted_votes_[voter].erase(moderator);
}

void ScenarioRunner::preseed_transfer(PeerId from, PeerId to, double mb) {
  ledger_->add_transfer(from, to, mb * 1024.0 * 1024.0);
}

void ScenarioRunner::preload_ballot(PeerId owner, PeerId voter,
                                    ModeratorId moderator, Opinion opinion) {
  nodes_.at(owner)->vote().preload_sample(
      voter, {vote::VoteEntry{moderator, opinion, sim_.now()}}, sim_.now());
}

void ScenarioRunner::sample_every(Duration period,
                                  std::function<void(Time)> fn) {
  assert(period > 0);
  samplers_.push_back(Sampler{period, std::move(fn)});
}

// ---- trace + protocol scheduling ---------------------------------------------

void ScenarioRunner::schedule_everything() {
  assert(!scheduled_);
  scheduled_ = true;

  // Trace events.
  for (const auto& session : trace_.sessions) {
    sim_.schedule_at(session.start,
                     [this, p = session.peer] { peer_online(p); });
    sim_.schedule_at(session.end,
                     [this, p = session.peer] { peer_offline(p); });
  }
  for (const auto& spec : trace_.swarms) {
    sim_.schedule_at(spec.created, [this, spec] { swarm_created(spec); });
  }
  for (const auto& join : trace_.joins) {
    sim_.schedule_at(join.at, [this, join] { swarm_join(join); });
  }

  // Scripted moderation publishing.
  for (const auto& pm : pending_moderations_) {
    sim_.schedule_at(pm.at, [this, pm] {
      Node& moderator = *nodes_.at(pm.moderator);
      util::Rng ih = rng_.derive(0x696e666f ^ pm.moderator);
      moderator.mod().publish(ih(), pm.description, sim_.now());
      note_moderation_published(pm.moderator);
    });
  }
  pending_moderations_.clear();

  // Protocol loops. Phases are staggered so loops do not all fire on the
  // same tick.
  auto add_loop = [this](Duration period, Duration phase,
                         std::function<void()> fn) {
    loops_.push_back(
        std::make_unique<sim::PeriodicTask>(sim_, period, std::move(fn)));
    loops_.back()->start(phase);
  };
  const auto& pp = config_.periods;
  add_loop(pp.bt_round, pp.bt_round, [this] { bt_round(); });
  add_loop(pp.vote_exchange, pp.vote_exchange, [this] { vote_round(); });
  add_loop(pp.moderation_exchange, pp.moderation_exchange / 2 + 1,
           [this] { moderation_round(); });
  add_loop(pp.barter_exchange, pp.barter_exchange / 3 + 1,
           [this] { barter_round(); });
  if (config_.pss == PssKind::kNewscast) {
    if (config_.faults.enabled() && config_.faults.loss > 0.0) {
      add_loop(pp.newscast_gossip, 1, [this] {
        telemetry::Span span(telemetry_.get(), "pss.gossip");
        sampler_->gossip_round(
            sim_.now(), config_.faults.loss,
            &fault_plane_->serial_stats().newscast.dropped_requests);
      });
    } else {
      add_loop(pp.newscast_gossip, 1, [this] {
        telemetry::Span span(telemetry_.get(), "pss.gossip");
        sampler_->gossip_round(sim_.now());
      });
    }
  }
  if (config_.adaptive_threshold) {
    add_loop(pp.adaptive_update, pp.adaptive_update, [this] {
      // Node-local and order-independent: each node reads its own observed
      // dispersion and re-derives its own threshold, so the update shards
      // with no mailbox traffic.
      kernel_->for_each_node(
          [this](PeerId id, std::size_t) {
            nodes_[id]->update_adaptive_threshold();
          });
    });
  }

  // Attack injection.
  if (!colluders_.empty()) {
    sim_.schedule_at(config_.attack.start, [this] { launch_attack(); });
  }

  // Metric samplers: fire at t = 0, period, 2·period, ...
  for (auto& sampler : samplers_) {
    auto fire = std::make_shared<std::function<void(Time)>>();
    const Duration period = sampler.period;
    auto fn = sampler.fn;
    *fire = [this, fire, period, fn](Time t) {
      fn(t);
      sim_.schedule_at(t + period, [fire, t, period] { (*fire)(t + period); });
    };
    sim_.schedule_at(0, [fire] { (*fire)(0); });
  }
}

void ScenarioRunner::run_until(Time t) {
  if (!scheduled_) schedule_everything();
  sim_.run_until(t);
}

bool ScenarioRunner::has_arrived(PeerId id, Time t) const {
  if (id < trace_.peers.size()) return trace_.peers[id].arrival <= t;
  if (adv_layout_.is_adversary(id)) {
    return config_.adversary.roster[adv_layout_.profile(id).strategy].start <=
           t;
  }
  return !colluders_.empty() && config_.attack.start <= t;
}

bt::StreamingTotals ScenarioRunner::streaming_totals() const {
  bt::StreamingTotals totals;
  for (const auto& [sid, swarm] : swarms_) totals += swarm->streaming_totals();
  return totals;
}

std::vector<const bartercast::BarterAgent*> ScenarioRunner::barter_agents()
    const {
  std::vector<const bartercast::BarterAgent*> agents;
  agents.reserve(nodes_.size());
  for (const auto& node : nodes_) agents.push_back(&node->barter());
  return agents;
}

double ScenarioRunner::collective_experience(double threshold_mb,
                                             util::ThreadPool* pool) const {
  const std::vector<const bartercast::BarterAgent*> agents = barter_agents();
  const std::span<const bartercast::BarterAgent* const> trace_span(
      agents.data(), trace_peer_count());
  if (pool != nullptr) {
    return metrics::collective_experience_value(trace_span, threshold_mb,
                                                *pool);
  }
  return metrics::collective_experience_value(trace_span, threshold_mb);
}

// ---- event handlers -----------------------------------------------------------

void ScenarioRunner::peer_online(PeerId id) {
  if (online_.is_online(id)) return;
  online_.set_online(id, true);
  sampler_->on_peer_online(id, sim_.now());
  for (auto& [sid, swarm] : swarms_) {
    if (swarm->is_member(id) && !swarm->is_active(id)) {
      swarm->reactivate(id);
    }
  }
}

void ScenarioRunner::peer_offline(PeerId id) {
  if (!online_.is_online(id)) return;
  online_.set_online(id, false);
  sampler_->on_peer_offline(id);
  for (auto& [sid, swarm] : swarms_) {
    if (swarm->is_active(id)) swarm->deactivate(id);
  }
}

void ScenarioRunner::swarm_created(const trace::SwarmSpec& spec) {
  auto swarm = std::make_unique<bt::Swarm>(
      spec, std::span<const trace::PeerProfile>(trace_.peers), *ledger_,
      *bandwidth_, rng_.derive(0x7377 ^ spec.id), config_.streaming);
  swarm->probes = swarm_probes_;
  swarm->on_complete = [this, sid = spec.id](PeerId peer) {
    ++stats_.downloads_completed;
    if (trace_.peers[peer].behavior == trace::Behavior::kFreeRider) {
      // Free-riders leave the swarm the moment their download finishes.
      // Deferred: we are inside Swarm::tick.
      sim_.schedule_in(0, [this, sid, peer] { swarms_.at(sid)->leave(peer); });
    }
  };
  swarm->add_member(spec.initial_seeder, /*as_seed=*/true);
  if (!online_.is_online(spec.initial_seeder)) {
    swarm->deactivate(spec.initial_seeder);
  }
  swarms_.emplace(spec.id, std::move(swarm));
}

void ScenarioRunner::swarm_join(const trace::SwarmJoin& join) {
  if (!online_.is_online(join.peer)) return;  // session ended prematurely
  const auto it = swarms_.find(join.swarm);
  if (it == swarms_.end()) return;  // swarm not created yet (defensive)
  if (it->second->is_member(join.peer)) return;
  it->second->add_member(join.peer, /*as_seed=*/false);
}

// ---- protocol rounds ------------------------------------------------------------

void ScenarioRunner::bt_round() {
  // Swarm ticks write the shared ledger and bandwidth allocator, so the BT
  // loop stays serial (the append-log backend's per-lane sinks exist for a
  // future sharded swarm tick). The flush publishes any buffered appends —
  // a no-op on the map backend, a shard-log compaction on the append-log
  // backend — so the concurrent read-only gossip rounds that follow see
  // compacted rows.
  telemetry::Span span(telemetry_.get(), "bt.round");
  const double dt = static_cast<double>(config_.periods.bt_round);
  for (auto& [sid, swarm] : swarms_) swarm->tick(dt);
  // Adversary credit drips land before the flush, so the gossip rounds that
  // follow see the plane's ledger writes alongside the swarms'.
  if (adversary_) adversary_->on_bt_round(sim_.now());
  ledger_->flush();
}

std::vector<sim::Encounter> ScenarioRunner::pair_round() {
  // Every online node initiates one exchange with a PSS-sampled peer.
  // Iteration order is shuffled each round for fairness. Pairing runs
  // serially whatever the shard count: it is the only part of a gossip
  // round that draws from the global RNG and the PSS.
  telemetry::Span span(telemetry_.get(), "pair");
  std::vector<PeerId> order = online_.online_ids();
  std::sort(order.begin(), order.end());
  rng_.shuffle(order);
  std::vector<sim::Encounter> encounters;
  encounters.reserve(order.size());
  for (const PeerId i : order) {
    if (!online_.is_online(i)) continue;
    const PeerId j = sample_peer(i);
    if (j == kInvalidPeer) continue;
    encounters.push_back(
        {static_cast<std::uint32_t>(encounters.size()), i, j});
  }
  return encounters;
}

void ScenarioRunner::merge_lane_stats() {
  for (RunStats& lane : lane_stats_) {
    stats_.vote_exchanges += lane.vote_exchanges;
    stats_.moderation_exchanges += lane.moderation_exchanges;
    stats_.barter_exchanges += lane.barter_exchanges;
    stats_.votes_accepted += lane.votes_accepted;
    stats_.votes_rejected_inexperienced += lane.votes_rejected_inexperienced;
    stats_.vp_requests_answered += lane.vp_requests_answered;
    stats_.vp_requests_null += lane.vp_requests_null;
    lane = RunStats{};
  }
}

void ScenarioRunner::vote_round() {
  // One BallotBox (+ conditional VoxPopuli) exchange per pair (Fig. 3
  // active thread), fanned out across the shard kernel. The exchange body
  // touches only the two endpoint nodes, its lane's counter block and the
  // fault plane's lane-local buffers. With faults off the legacy body runs
  // verbatim and the plane is never consulted.
  const Time now = sim_.now();
  telemetry::Span span(telemetry_.get(), "vote.round");
  // Adversary hook before pairing: presence flips apply before the round
  // pairs (a dark agent is neither sampled nor initiates) and floods are
  // serial, so the round stays shard-invariant.
  if (adversary_) adversary_->on_vote_round(now);
  const std::vector<sim::Encounter> encounters = pair_round();
  if (!fault_plane_->enabled()) {
    kernel_->run_round(
        encounters, [this, now](const sim::Encounter& e, std::size_t lane) {
          RunStats& st = lane_stats_[lane];
          Node& ni = *nodes_[e.initiator];
          Node& nj = *nodes_[e.responder];

          // The shared transport-agnostic encounter core (the same function
          // the socket plane's ExchangeEngine mirrors frame-by-frame); the
          // runner keeps the probe accounting. Counter adds are commutative
          // sums into lane blocks, so folding them after both legs is
          // bit-identical to the legacy interleaved order.
          const vote::VoteEncounterOutcome enc =
              vote::vote_encounter(ni.vote(), nj.vote(), now);
          probes_.vote_list_size.observe(
              static_cast<double>(enc.forward.list_size));
          note_vote_receive(st, enc.forward.result);
          note_gossip_leg(enc.forward);
          probes_.vote_list_size.observe(
              static_cast<double>(enc.reverse.list_size));
          note_vote_receive(st, enc.reverse.result);
          note_gossip_leg(enc.reverse);
          if (enc.vox_requested) {
            if (enc.vox_topk == 0) {
              ++st.vp_requests_null;
            } else {
              ++st.vp_requests_answered;
              probes_.vox_topk_size.observe(
                  static_cast<double>(enc.vox_topk));
            }
          }
          ++st.vote_exchanges;
        });
    merge_lane_stats();
    telemetry_round_sample();
    return;
  }

  const std::vector<sim::EncounterFaults>& faults =
      fault_plane_->draw_round(sim::Protocol::kVote, encounters);
  kernel_->run_round(
      encounters,
      [this, now, &faults](const sim::Encounter& e, std::size_t lane) {
        RunStats& st = lane_stats_[lane];
        sim::FaultStats& fs = fault_plane_->lane_stats(lane);
        const sim::EncounterFaults& f = faults[e.seq];
        if (f.unreachable) return;  // endpoint crashed earlier this round
        Node& ni = *nodes_[e.initiator];
        Node& nj = *nodes_[e.responder];

        if (f.drop_request) {
          // The responder never learns of the encounter. The opening frame
          // (digest or full list, whatever the delta path would ship) was
          // still built, signed-or-cached and put on the wire — account
          // it. A bootstrapping initiator's VP request rode the same dial
          // and timed out with it; the retry chain takes over after the
          // round.
          const vote::GossipStats gs0 = ni.vote().gossip_stats();
          const vote::VoteListMessage from_i = ni.vote().outgoing_votes(now);
          probes_.vote_list_size.observe(
              static_cast<double>(from_i.votes.size()));
          probes_.gossip_bytes.add(
              first_frame_bytes(ni.vote(), from_i, e.responder));
          const vote::GossipStats& gs1 = ni.vote().gossip_stats();
          if (gs1.cache_hits > gs0.cache_hits) probes_.gossip_cache_hits.add();
          if (gs1.signatures > gs0.signatures) {
            probes_.gossip_signatures.add(gs1.signatures - gs0.signatures);
          }
          if (ni.vote().bootstrapping()) {
            ++fs.vox.timeouts;
            fault_plane_->record_vp_failure(lane, e.seq, e.initiator);
          }
          return;
        }
        const vote::GossipLegOutcome leg_ij = vote::gossip_send(
            ni.vote(), nj.vote(), now, to_wire(f.request_payload),
            f.payload_salt);
        probes_.vote_list_size.observe(static_cast<double>(leg_ij.list_size));
        note_vote_receive(st, leg_ij.result);
        note_gossip_leg(leg_ij);
        if (f.request_payload != sim::PayloadFault::kNone &&
            leg_ij.result == vote::ReceiveResult::kBadSignature) {
          ++fs.vote.rejected;
        }

        if (!f.reply_lost()) {
          if (f.delay_reply > 0) {
            // A delayed reply is serialized and delivered later, so it
            // always travels as a full (cache-served) message — the delta
            // handshake needs both endpoints live in the same round.
            const vote::GossipStats gs0 = nj.vote().gossip_stats();
            vote::VoteListMessage from_j = nj.vote().outgoing_votes(now);
            probes_.vote_list_size.observe(
                static_cast<double>(from_j.votes.size()));
            const vote::GossipStats& gs1 = nj.vote().gossip_stats();
            if (gs1.cache_hits > gs0.cache_hits) {
              probes_.gossip_cache_hits.add();
            }
            if (gs1.signatures > gs0.signatures) {
              probes_.gossip_signatures.add(gs1.signatures - gs0.signatures);
            }
            vote::damage_message(from_j, to_wire(f.reply_payload),
                                 f.payload_salt + 1);
            probes_.gossip_bytes.add(vote::wire_size(from_j));
            probes_.gossip_full.add();
            fault_plane_->defer(
                lane, e.seq, f.delay_reply,
                [this, from_j = std::move(from_j), i = e.initiator,
                 damaged = f.reply_payload != sim::PayloadFault::kNone] {
                  sim::FaultStats& serial = fault_plane_->serial_stats();
                  if (!online_.is_online(i)) {
                    ++serial.vote.late_drops;
                    return;
                  }
                  const vote::ReceiveResult r =
                      nodes_[i]->vote().receive_votes(from_j, sim_.now());
                  note_vote_receive(stats_, r);
                  if (damaged && r == vote::ReceiveResult::kBadSignature) {
                    ++serial.vote.rejected;
                  }
                });
          } else {
            const vote::GossipLegOutcome leg_ji = vote::gossip_send(
                nj.vote(), ni.vote(), now, to_wire(f.reply_payload),
                f.payload_salt + 1);
            probes_.vote_list_size.observe(
                static_cast<double>(leg_ji.list_size));
            note_vote_receive(st, leg_ji.result);
            note_gossip_leg(leg_ji);
            if (f.reply_payload != sim::PayloadFault::kNone &&
                leg_ji.result == vote::ReceiveResult::kBadSignature) {
              ++fs.vote.rejected;
            }
          }
        }

        // VoxPopuli leg: the top-K answer shares the reply's fate.
        if (ni.vote().bootstrapping()) {
          if (f.reply_lost()) {
            ++fs.vox.timeouts;
            fault_plane_->record_vp_failure(lane, e.seq, e.initiator);
          } else {
            vote::RankedList topk = nj.vote().answer_topk();
            if (topk.empty()) {
              ++st.vp_requests_null;
            } else {
              ++st.vp_requests_answered;
              probes_.vox_topk_size.observe(static_cast<double>(topk.size()));
              if (f.delay_reply > 0) {
                fault_plane_->defer(
                    lane, e.seq, f.delay_reply,
                    [this, topk = std::move(topk), i = e.initiator]() mutable {
                      if (!online_.is_online(i)) {
                        ++fault_plane_->serial_stats().vox.late_drops;
                        return;
                      }
                      nodes_[i]->vote().receive_topk(std::move(topk));
                    });
              } else {
                ni.vote().receive_topk(std::move(topk));
              }
            }
          }
        }
        ++st.vote_exchanges;
      });
  merge_lane_stats();
  flush_round_faults();
  telemetry_round_sample();
}

void ScenarioRunner::moderation_round() {
  const Time now = sim_.now();
  telemetry::Span span(telemetry_.get(), "moderation.round");
  const std::vector<sim::Encounter> encounters = pair_round();
  if (!fault_plane_->enabled()) {
    kernel_->run_round(
        encounters, [this, now](const sim::Encounter& e, std::size_t lane) {
          const moderation::ExchangeStats xs = moderation::exchange(
              nodes_[e.initiator]->mod(), nodes_[e.responder]->mod(), now);
          probes_.mod_batch_size.observe(
              static_cast<double>(xs.sent_initiator));
          probes_.mod_batch_size.observe(
              static_cast<double>(xs.sent_responder));
          ++lane_stats_[lane].moderation_exchanges;
        });
    merge_lane_stats();
    return;
  }

  const std::vector<sim::EncounterFaults>& faults =
      fault_plane_->draw_round(sim::Protocol::kModeration, encounters);
  kernel_->run_round(
      encounters,
      [this, now, &faults](const sim::Encounter& e, std::size_t lane) {
        const sim::EncounterFaults& f = faults[e.seq];
        if (f.unreachable) return;
        sim::FaultStats& fs = fault_plane_->lane_stats(lane);
        moderation::ModerationCastAgent& mi = nodes_[e.initiator]->mod();
        moderation::ModerationCastAgent& mj = nodes_[e.responder]->mod();

        std::vector<moderation::Moderation> from_i = mi.outgoing();
        probes_.mod_batch_size.observe(static_cast<double>(from_i.size()));
        if (f.drop_request) {
          // The sender learns of the loss (no ack) and queues the batch
          // for re-offer on its next encounter.
          fs.moderation.reoffers += mi.note_undelivered(from_i);
          return;
        }
        // Fig. 1 order: the responder extracts before merging. Queue the
        // re-offer from the *pristine* batch before any in-flight damage.
        std::vector<moderation::Moderation> from_j = mj.outgoing();
        probes_.mod_batch_size.observe(static_cast<double>(from_j.size()));
        if (f.reply_lost()) {
          fs.moderation.reoffers += mj.note_undelivered(from_j);
        }
        corrupt_moderation_batch(from_i, f.request_payload, f.payload_salt);
        const moderation::ModerationCastAgent::ReceiveStats rs_j =
            mj.receive(from_i, now);
        fs.moderation.rejected += rs_j.bad_signature;
        if (!f.reply_lost()) {
          corrupt_moderation_batch(from_j, f.reply_payload,
                                   f.payload_salt + 1);
          if (f.delay_reply > 0) {
            fault_plane_->defer(
                lane, e.seq, f.delay_reply,
                [this, from_j = std::move(from_j), i = e.initiator] {
                  sim::FaultStats& serial = fault_plane_->serial_stats();
                  if (!online_.is_online(i)) {
                    ++serial.moderation.late_drops;
                    return;
                  }
                  serial.moderation.rejected +=
                      nodes_[i]->mod().receive(from_j, sim_.now())
                          .bad_signature;
                });
          } else {
            fs.moderation.rejected += mi.receive(from_j, now).bad_signature;
          }
        }
        ++lane_stats_[lane].moderation_exchanges;
      });
  merge_lane_stats();
  flush_round_faults();
}

void ScenarioRunner::barter_round() {
  // The ledger is read-only during a barter round (transfers land in
  // bt_round), so concurrent direct-view reads are safe.
  const Time now = sim_.now();
  telemetry::Span span(telemetry_.get(), "barter.round");
  const std::vector<sim::Encounter> encounters = pair_round();
  if (!fault_plane_->enabled()) {
    kernel_->run_round(
        encounters, [this, now](const sim::Encounter& e, std::size_t lane) {
          bartercast::BarterAgent& bi = nodes_[e.initiator]->barter();
          bartercast::BarterAgent& bj = nodes_[e.responder]->barter();
          bi.sync_direct(*ledger_, now);
          bj.sync_direct(*ledger_, now);
          // Same evaluation order as the historical one-liners: bj's
          // outgoing batch is built only after it received bi's.
          const std::vector<bartercast::BarterRecord> recs_i =
              bi.outgoing_records(*ledger_, now);
          probes_.barter_batch_size.observe(
              static_cast<double>(recs_i.size()));
          bj.receive(e.initiator, recs_i);
          const std::vector<bartercast::BarterRecord> recs_j =
              bj.outgoing_records(*ledger_, now);
          probes_.barter_batch_size.observe(
              static_cast<double>(recs_j.size()));
          bi.receive(e.responder, recs_j);
          ++lane_stats_[lane].barter_exchanges;
        });
    merge_lane_stats();
    return;
  }

  const std::vector<sim::EncounterFaults>& faults =
      fault_plane_->draw_round(sim::Protocol::kBarter, encounters);
  kernel_->run_round(
      encounters,
      [this, now, &faults](const sim::Encounter& e, std::size_t lane) {
        const sim::EncounterFaults& f = faults[e.seq];
        if (f.unreachable) return;
        sim::FaultStats& fs = fault_plane_->lane_stats(lane);
        bartercast::BarterAgent& bi = nodes_[e.initiator]->barter();
        bartercast::BarterAgent& bj = nodes_[e.responder]->barter();
        bi.sync_direct(*ledger_, now);
        if (f.drop_request) return;  // records are unsolicited; no re-offer
        bj.sync_direct(*ledger_, now);

        std::vector<bartercast::BarterRecord> recs_i =
            bi.outgoing_records(*ledger_, now);
        probes_.barter_batch_size.observe(static_cast<double>(recs_i.size()));
        fs.barter.rejected +=
            corrupt_barter_batch(recs_i, f.request_payload, f.payload_salt);
        bj.receive(e.initiator, recs_i);

        if (!f.reply_lost()) {
          std::vector<bartercast::BarterRecord> recs_j =
              bj.outgoing_records(*ledger_, now);
          probes_.barter_batch_size.observe(
              static_cast<double>(recs_j.size()));
          const std::size_t damaged = corrupt_barter_batch(
              recs_j, f.reply_payload, f.payload_salt + 1);
          if (f.delay_reply > 0) {
            fault_plane_->defer(
                lane, e.seq, f.delay_reply,
                [this, recs_j = std::move(recs_j), i = e.initiator,
                 j = e.responder, damaged] {
                  sim::FaultStats& serial = fault_plane_->serial_stats();
                  if (!online_.is_online(i)) {
                    ++serial.barter.late_drops;
                    return;
                  }
                  nodes_[i]->barter().receive(j, recs_j);
                  serial.barter.rejected += damaged;
                });
          } else {
            bi.receive(e.responder, recs_j);
            fs.barter.rejected += damaged;
          }
        }
        ++lane_stats_[lane].barter_exchanges;
      });
  merge_lane_stats();
  flush_round_faults();
}

void ScenarioRunner::flush_round_faults() {
  telemetry::Span span(telemetry_.get(), "fault.flush");
  sim::RoundOutcome out = fault_plane_->finish_round();
  for (sim::DeferredDelivery& d : out.deferred) {
    sim_.schedule_in(d.delay, std::move(d.deliver));
  }
  for (const PeerId p : out.crashed) {
    // A mid-encounter crash leaves through the regular offline path; the
    // identity returns at its next trace session start (or churn flip).
    peer_offline(p);
  }
  for (sim::VpFailure& vf : out.vp_failures) {
    schedule_vp_retry(vf.initiator, 1, vf.retry_rng);
  }
}

void ScenarioRunner::schedule_vp_retry(PeerId initiator, std::size_t attempt,
                                       util::Rng rng) {
  const sim::FaultConfig& fc = config_.faults;
  if (attempt > fc.vp_retry_budget) return;  // budget exhausted — give up
  const Duration delay = fc.vp_retry_base << (attempt - 1);
  sim_.schedule_in(delay, [this, initiator, attempt, rng]() mutable {
    if (!online_.is_online(initiator)) return;
    Node& ni = *nodes_[initiator];
    // Regular gossip may have finished the bootstrap meanwhile.
    if (!ni.vote().bootstrapping()) return;
    sim::FaultStats& fs = fault_plane_->serial_stats();
    ++fs.vox.retries;
    const PeerId j = sample_peer(initiator);
    if (j == kInvalidPeer || !online_.is_online(j)) {
      schedule_vp_retry(initiator, attempt + 1, rng.derive(attempt));
      return;
    }
    // The retry is its own dial: both legs face the configured loss,
    // drawn from the failure's dedicated stream.
    const double loss = config_.faults.loss;
    if (loss > 0.0 && (rng.next_bool(loss) || rng.next_bool(loss))) {
      ++fs.vox.timeouts;
      schedule_vp_retry(initiator, attempt + 1, rng.derive(attempt));
      return;
    }
    vote::RankedList topk = nodes_[j]->vote().answer_topk();
    if (topk.empty()) {
      ++stats_.vp_requests_null;
      schedule_vp_retry(initiator, attempt + 1, rng.derive(attempt));
      return;
    }
    ++stats_.vp_requests_answered;
    ++fs.vox.retry_successes;
    ni.vote().receive_topk(std::move(topk));
  });
}

void ScenarioRunner::launch_attack() {
  for (const PeerId c : colluders_) {
    // Start each identity at its churn equilibrium: online with
    // probability `duty` (a churning crowd does not materialize all at
    // once any more than the honest population does).
    const bool start_online =
        config_.attack.duty >= 1.0 || rng_.next_bool(config_.attack.duty);
    if (start_online) {
      online_.set_online(c, true);
      sampler_->on_peer_online(c, sim_.now());
    }
    if (config_.attack.duty < 1.0) {
      schedule_colluder_churn(c, start_online);
    }
  }
  // The spam moderator publishes its spam moderation; every colluder
  // "approves" it so their local_dbs forward the metadata.
  const ModeratorId m0 = spam_moderator();
  Node& spammer = *nodes_.at(m0);
  util::Rng ih = rng_.derive(0x7370616d);
  spammer.mod().publish(ih(), "FREE MOVIE (spam)", sim_.now());
  note_moderation_published(m0);
  for (const PeerId c : colluders_) {
    nodes_.at(c)->user_vote(m0, Opinion::kPositive, sim_.now());
    note_vote_cast(Opinion::kPositive);
  }
}

void ScenarioRunner::schedule_colluder_churn(PeerId colluder,
                                             bool currently_online) {
  // Alternating on/off renewal process with the configured duty cycle,
  // mirroring the churn the trace imposes on honest identities.
  const double duty = std::clamp(config_.attack.duty, 0.01, 0.99);
  const auto mean_on = static_cast<double>(config_.attack.session_mean);
  const double mean_off = mean_on * (1.0 - duty) / duty;
  const double mean = currently_online ? mean_on : mean_off;
  const auto delay = std::max<Duration>(
      kMinute, static_cast<Duration>(rng_.next_exponential(mean)));
  sim_.schedule_in(delay, [this, colluder, currently_online] {
    if (currently_online) {
      online_.set_online(colluder, false);
      sampler_->on_peer_offline(colluder);
    } else {
      online_.set_online(colluder, true);
      sampler_->on_peer_online(colluder, sim_.now());
    }
    schedule_colluder_churn(colluder, !currently_online);
  });
}

}  // namespace tribvote::core
