// AdversaryEngine: the deterministic, shard-invariant attack driver.
//
// The engine owns the roster's strategy state machines and runs them at
// round hooks the scenario runner calls *serially* on the simulator
// thread — before the vote round's pairing phase and after the BT round's
// swarm ticks. Nothing the engine does runs inside a worker lane, so its
// output is trivially bit-identical at any shard count; every stochastic
// choice draws from an RNG stream that is a pure function of
// (plane seed, strategy, agent, round) via util::Rng::derive.
//
// The engine talks to the population through a small Host interface
// (std::function callbacks + the ledger sink) instead of core::Node, so
// src/adversary has no dependency on src/core (core depends on adversary
// for ScenarioConfig).
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "adversary/config.hpp"
#include "bt/ledger.hpp"
#include "util/opinion.hpp"
#include "util/rng.hpp"
#include "vote/agent.hpp"

namespace tribvote::adversary {

/// Per-agent behaviour switches derived from the roster; the runner reads
/// these when constructing each adversary Node (which agent subclasses to
/// install) and the engine when driving it.
struct AgentProfile {
  StrategyKind kind = StrategyKind::kColluder;
  std::size_t strategy = 0;  ///< roster index
  std::size_t index = 0;     ///< agent index within the strategy
  /// Install attack::ColluderVoteAgent (colluder + sybil agents lie about
  /// votes and always answer VoxPopuli).
  bool spam_votes = false;
  /// Install attack::FrontPeerBarterAgent over `clique` (front peers and
  /// fake_experience colluders).
  bool fake_experience = false;
  /// Region worker (sybil only): spends the region's outward credit.
  bool worker = false;
  /// First id of this agent's sybil region (== own id for the worker).
  PeerId region_head = kInvalidPeer;
};

/// Static id layout of the adversary population: agents occupy the dense
/// id block [first_id, first_id + total); strategies in roster order,
/// agents in index order. A pure function of (config, first_id).
class Layout {
 public:
  Layout() = default;
  Layout(const AdversaryConfig& config, PeerId first_id);

  [[nodiscard]] bool empty() const noexcept { return profiles_.empty(); }
  [[nodiscard]] PeerId first_id() const noexcept { return first_id_; }
  [[nodiscard]] PeerId end_id() const noexcept {
    return first_id_ + static_cast<PeerId>(profiles_.size());
  }
  [[nodiscard]] bool is_adversary(PeerId id) const noexcept {
    return id >= first_id_ && id < end_id();
  }
  /// Profile of an adversary id (id must satisfy is_adversary).
  [[nodiscard]] const AgentProfile& profile(PeerId id) const {
    return profiles_.at(id - first_id_);
  }
  /// Agent ids of one roster entry, ascending.
  [[nodiscard]] std::vector<PeerId> agents_of(std::size_t strategy) const;
  /// Spam moderator M0 of a vote-lying strategy (first agent of the first
  /// colluder or sybil roster entry); kInvalidModerator when none lies.
  [[nodiscard]] ModeratorId spam_moderator() const noexcept {
    return spam_moderator_;
  }
  /// All vote-lying agent ids (the front-peer clique used when a colluder
  /// strategy fakes experience is per-strategy; see clique_of).
  [[nodiscard]] std::vector<PeerId> clique_of(std::size_t strategy) const {
    return agents_of(strategy);
  }

 private:
  PeerId first_id_ = 0;
  std::vector<AgentProfile> profiles_;
  std::vector<PeerId> strategy_first_;  ///< first id per roster entry
  std::vector<std::size_t> strategy_agents_;
  ModeratorId spam_moderator_ = kInvalidModerator;
};

/// Serial work counters (monotone; sampled by benches, tests and the
/// telemetry mirror). All increments happen on the simulator thread, so
/// the totals are shard-invariant by construction.
struct AdversaryStats {
  std::uint64_t activations = 0;      ///< strategies brought live
  std::uint64_t presence_flips = 0;   ///< duty-cycle online/offline edges
  std::uint64_t floods_sent = 0;      ///< attrition messages delivered
  std::uint64_t flood_bytes = 0;      ///< wire bytes of flood traffic
  std::uint64_t flood_rejected = 0;   ///< floods the receiver did not merge
  std::uint64_t nuisance_flips = 0;   ///< nuisance vote churns cast
  std::uint64_t credit_transfers = 0;  ///< ledger credit transfers written
  double credit_mb = 0.0;             ///< genuine MB moved by the plane
};

class AdversaryEngine {
 public:
  /// Runner-provided population access. Every callback is invoked serially
  /// from the engine's round hooks.
  struct Host {
    /// The vote agent of any peer (adversary or honest).
    std::function<vote::VoteAgent&(PeerId)> vote_agent;
    /// Cast a user vote on `peer` (Node::user_vote: updates the vote list
    /// and purges on disapproval).
    std::function<void(PeerId peer, ModeratorId m, Opinion o, Time now)>
        cast_vote;
    /// Moderators `peer` knows from its local moderation db.
    std::function<std::vector<ModeratorId>(PeerId peer)> known_moderators;
    /// Publish a signed moderation authored by `peer`.
    std::function<void(PeerId peer, const std::string& description, Time now)>
        publish_moderation;
    [[nodiscard]] bool online(PeerId id) const { return is_online(id); }
    std::function<bool(PeerId)> is_online;
    /// Flip a peer's presence (runner routes through its online directory
    /// and PSS lifecycle hooks).
    std::function<void(PeerId, bool)> set_online;
    /// Online honest (non-adversary, non-legacy-crowd) ids, ascending.
    std::function<std::vector<PeerId>()> online_honest;
    /// Ground-truth transfer ledger (genuine credit lands here in bytes).
    bt::LedgerSink* ledger = nullptr;
  };

  /// `stream` is the dedicated adversary RNG (derive it from the scenario
  /// seed; deriving is a pure read, so an absent engine perturbs nothing).
  AdversaryEngine(AdversaryConfig config, Layout layout, util::Rng stream,
                  Host host);

  [[nodiscard]] const Layout& layout() const noexcept { return layout_; }
  [[nodiscard]] const AdversaryStats& stats() const noexcept { return stats_; }

  /// Serial hook, start of every vote round (before pairing): activation,
  /// duty-cycle presence, nuisance vote churn, attrition floods. Presence
  /// changes apply before the round pairs, so a dark agent is neither
  /// sampled nor initiates.
  void on_vote_round(Time now);

  /// Serial hook, end of every BT round (after swarm ticks, before the
  /// ledger flush): sybil region credit splitting and nuisance credit
  /// drip.
  void on_bt_round(Time now);

 private:
  struct StrategyState {
    bool active = false;
    std::uint64_t vote_rounds = 0;  ///< rounds since activation
    std::uint64_t bt_rounds = 0;
    std::vector<std::uint8_t> online;  ///< current presence per agent
  };

  /// Stream for one (strategy, agent, round) action triple.
  [[nodiscard]] util::Rng action_stream(std::uint64_t tag,
                                        std::size_t strategy,
                                        std::size_t agent,
                                        std::uint64_t round) const;
  void activate(std::size_t s, Time now);
  void update_presence(std::size_t s, Time now);
  void run_attrition(std::size_t s, Time now);
  void run_nuisance(std::size_t s, Time now);
  void drip_credit(std::size_t s, Time now);

  AdversaryConfig config_;
  Layout layout_;
  util::Rng stream_;
  Host host_;
  std::vector<StrategyState> states_;
  AdversaryStats stats_;
};

}  // namespace tribvote::adversary
