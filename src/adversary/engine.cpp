#include "adversary/engine.hpp"

#include <cassert>

#include "util/hash.hpp"
#include "vote/gossip.hpp"

namespace tribvote::adversary {

namespace {
// Action-stream tags: the first field of every derive key, so the streams
// of different action types never collide even for the same
// (strategy, agent, round) triple.
constexpr std::uint64_t kPresenceTag = 0x70726573;  // "pres"
constexpr std::uint64_t kFloodTag = 0x666c6f64;     // "flod"
constexpr std::uint64_t kFlipTag = 0x666c6970;      // "flip"
constexpr std::uint64_t kCreditTag = 0x63726564;    // "cred"

[[nodiscard]] bool lies_votes(StrategyKind kind) {
  return kind == StrategyKind::kColluder || kind == StrategyKind::kSybil;
}
}  // namespace

// ---- layout -----------------------------------------------------------------

Layout::Layout(const AdversaryConfig& config, PeerId first_id)
    : first_id_(first_id) {
  PeerId next = first_id;
  for (std::size_t s = 0; s < config.roster.size(); ++s) {
    const StrategySpec& spec = config.roster[s];
    strategy_first_.push_back(next);
    strategy_agents_.push_back(spec.agents);
    if (spec.agents > 0 && lies_votes(spec.kind) &&
        spam_moderator_ == kInvalidModerator) {
      spam_moderator_ = next;  // M0: first agent of the first lying strategy
    }
    const std::size_t region =
        spec.kind == StrategyKind::kSybil ? std::max<std::size_t>(2, spec.region)
                                          : 1;
    for (std::size_t i = 0; i < spec.agents; ++i) {
      AgentProfile p;
      p.kind = spec.kind;
      p.strategy = s;
      p.index = i;
      p.spam_votes = lies_votes(spec.kind);
      p.fake_experience =
          spec.kind == StrategyKind::kFrontPeer ||
          (spec.kind == StrategyKind::kColluder && spec.fake_experience);
      if (spec.kind == StrategyKind::kSybil) {
        p.worker = (i % region) == 0;
        p.region_head = next - static_cast<PeerId>(i % region);
      }
      profiles_.push_back(p);
      ++next;
    }
  }
}

std::vector<PeerId> Layout::agents_of(std::size_t strategy) const {
  std::vector<PeerId> ids;
  if (strategy >= strategy_first_.size()) return ids;
  ids.reserve(strategy_agents_[strategy]);
  for (std::size_t i = 0; i < strategy_agents_[strategy]; ++i) {
    ids.push_back(strategy_first_[strategy] + static_cast<PeerId>(i));
  }
  return ids;
}

// ---- engine -----------------------------------------------------------------

AdversaryEngine::AdversaryEngine(AdversaryConfig config, Layout layout,
                                 util::Rng stream, Host host)
    : config_(std::move(config)),
      layout_(std::move(layout)),
      stream_(stream),
      host_(std::move(host)) {
  states_.resize(config_.roster.size());
  for (std::size_t s = 0; s < config_.roster.size(); ++s) {
    states_[s].online.assign(config_.roster[s].agents, 0);
  }
}

util::Rng AdversaryEngine::action_stream(std::uint64_t tag,
                                         std::size_t strategy,
                                         std::size_t agent,
                                         std::uint64_t round) const {
  // Pure function of (plane seed, tag, strategy, agent, round): the same
  // quadruple yields the same stream whatever the shard count — the
  // shard-invariance argument for the whole plane rests on this line plus
  // the fact that every hook runs serially on the simulator thread.
  return stream_.derive(util::digest_fields(
      {tag, static_cast<std::uint64_t>(strategy),
       static_cast<std::uint64_t>(agent), round}));
}

void AdversaryEngine::activate(std::size_t s, Time now) {
  const StrategySpec& spec = config_.roster[s];
  StrategyState& st = states_[s];
  st.active = true;
  ++stats_.activations;
  if (spec.agents == 0) return;
  const std::vector<PeerId> ids = layout_.agents_of(s);
  const ModeratorId m0 = layout_.spam_moderator();
  if (lies_votes(spec.kind)) {
    // The strategy owning M0 publishes the spam moderation; every lying
    // agent "approves" it so local_dbs forward the metadata (the legacy
    // Fig. 8 launch sequence, per strategy).
    if (ids.front() == m0) {
      host_.publish_moderation(m0, "FREE MOVIE (adversary spam)", now);
    }
    for (const PeerId id : ids) {
      host_.cast_vote(id, m0, Opinion::kPositive, now);
      if (spec.victim != kInvalidModerator) {
        host_.cast_vote(id, spec.victim, Opinion::kNegative, now);
      }
    }
  } else if (spec.kind == StrategyKind::kAttrition) {
    // Seed each flooder with one worthless-but-well-formed vote (its own
    // id as moderator) so its signed vote lists are never empty.
    for (const PeerId id : ids) {
      host_.cast_vote(id, static_cast<ModeratorId>(id), Opinion::kPositive,
                      now);
    }
  }
}

void AdversaryEngine::update_presence(std::size_t s, Time now) {
  const StrategySpec& spec = config_.roster[s];
  StrategyState& st = states_[s];
  const std::vector<PeerId> ids = layout_.agents_of(s);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    bool want = true;
    if (spec.duty < 1.0) {
      // Presence is a pure function of the session window index — agents
      // churn with the configured duty cycle without consuming any shared
      // RNG stream.
      const auto window = static_cast<std::uint64_t>(now - spec.start) /
                          static_cast<std::uint64_t>(spec.session_mean);
      want = action_stream(kPresenceTag, s, i, window).next_bool(spec.duty);
    }
    if (want != static_cast<bool>(st.online[i])) {
      st.online[i] = want ? 1 : 0;
      ++stats_.presence_flips;
      host_.set_online(ids[i], want);
    }
  }
}

void AdversaryEngine::run_attrition(std::size_t s, Time now) {
  const StrategySpec& spec = config_.roster[s];
  StrategyState& st = states_[s];
  const std::vector<PeerId> honest = host_.online_honest();
  if (honest.empty()) return;
  const std::vector<PeerId> ids = layout_.agents_of(s);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (!st.online[i]) continue;
    util::Rng r = action_stream(kFloodTag, s, i, st.vote_rounds);
    vote::VoteAgent& sender = host_.vote_agent(ids[i]);
    // LOCKSS-style per-round rate limit: exactly `rate` well-formed
    // messages. Each costs the receiver one signature verification and a
    // merge into its observed (dispersion) box before the experience
    // function rejects it — budget drain, not forgery.
    for (std::size_t k = 0; k < spec.rate; ++k) {
      const PeerId target = honest[r.next_below(honest.size())];
      const vote::VoteListMessage msg = sender.outgoing_votes(now);
      stats_.flood_bytes += vote::wire_size(msg);
      ++stats_.floods_sent;
      const vote::ReceiveResult res =
          host_.vote_agent(target).receive_votes(msg, now);
      if (res != vote::ReceiveResult::kAccepted) ++stats_.flood_rejected;
    }
  }
}

void AdversaryEngine::run_nuisance(std::size_t s, Time now) {
  const StrategySpec& spec = config_.roster[s];
  StrategyState& st = states_[s];
  const std::vector<PeerId> ids = layout_.agents_of(s);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (!st.online[i]) continue;
    util::Rng r = action_stream(kFlipTag, s, i, st.vote_rounds);
    if (!r.next_bool(spec.flip)) continue;
    const std::vector<ModeratorId> mods = host_.known_moderators(ids[i]);
    if (mods.empty()) continue;
    const ModeratorId m = mods[r.next_below(mods.size())];
    // Churn: vote the opposite of the current opinion. Every flip bumps
    // the vote-list version (cache invalidation + a re-sign on the next
    // gossip build) and a negative flip additionally purges the
    // moderator's metadata — re-fetch traffic on top of vote churn.
    const Opinion cur = host_.vote_agent(ids[i]).vote_list().opinion_of(m);
    const Opinion next =
        cur == Opinion::kPositive ? Opinion::kNegative : Opinion::kPositive;
    host_.cast_vote(ids[i], m, next, now);
    ++stats_.nuisance_flips;
  }
}

void AdversaryEngine::drip_credit(std::size_t s, Time now) {
  (void)now;
  const StrategySpec& spec = config_.roster[s];
  StrategyState& st = states_[s];
  if (spec.credit_mb <= 0.0) return;
  const double bytes = spec.credit_mb * 1024.0 * 1024.0;
  const std::vector<PeerId> honest = host_.online_honest();
  const std::vector<PeerId> ids = layout_.agents_of(s);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    if (!st.online[i]) continue;
    const PeerId id = ids[i];
    if (spec.kind == StrategyKind::kSybil) {
      const AgentProfile& p = layout_.profile(id);
      if (p.worker) {
        // The worker spends the region's outward capacity on genuine
        // uploads to rotating honest peers.
        if (honest.empty()) continue;
        util::Rng r = action_stream(kCreditTag, s, i, st.bt_rounds);
        host_.ledger->add_transfer(id, honest[r.next_below(honest.size())],
                                   bytes);
      } else {
        // Members upload to their worker: real ledger edges at zero
        // external cost, so two-hop max-flow member -> worker -> honest
        // clears E for every member.
        host_.ledger->add_transfer(id, p.region_head, bytes);
      }
    } else {  // nuisance: genuine credit to rotating honest peers
      if (honest.empty()) continue;
      util::Rng r = action_stream(kCreditTag, s, i, st.bt_rounds);
      host_.ledger->add_transfer(id, honest[r.next_below(honest.size())],
                                 bytes);
    }
    ++stats_.credit_transfers;
    stats_.credit_mb += spec.credit_mb;
  }
}

void AdversaryEngine::on_vote_round(Time now) {
  for (std::size_t s = 0; s < config_.roster.size(); ++s) {
    const StrategySpec& spec = config_.roster[s];
    if (spec.agents == 0) continue;
    StrategyState& st = states_[s];
    if (!st.active) {
      if (now < spec.start) continue;
      activate(s, now);
    }
    update_presence(s, now);
    switch (spec.kind) {
      case StrategyKind::kAttrition:
        run_attrition(s, now);
        break;
      case StrategyKind::kNuisance:
        run_nuisance(s, now);
        break;
      case StrategyKind::kColluder:
      case StrategyKind::kFrontPeer:
      case StrategyKind::kSybil:
        break;  // encounter-level behaviour lives in the agent subclasses
    }
    ++st.vote_rounds;
  }
}

void AdversaryEngine::on_bt_round(Time now) {
  for (std::size_t s = 0; s < config_.roster.size(); ++s) {
    const StrategySpec& spec = config_.roster[s];
    if (spec.agents == 0) continue;
    StrategyState& st = states_[s];
    if (!st.active) continue;  // activation happens on the vote-round hook
    if (spec.kind == StrategyKind::kSybil ||
        spec.kind == StrategyKind::kNuisance) {
      drip_credit(s, now);
    }
    ++st.bt_rounds;
  }
}

}  // namespace tribvote::adversary
