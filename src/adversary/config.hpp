// Adversary-plane configuration (DESIGN.md "Adversary plane").
//
// A scenario's adversary is a *roster* of strategies; each strategy fields
// a block of agent identities appended after the trace population (and the
// legacy Fig. 8 attack crowd, if any) and is driven by the AdversaryEngine
// at round hooks. The roster is the unit of the TRIBVOTE_ADVERSARY /
// --adversary knob: "attrition:n=20,rate=4;sybil:n=16,region=4".
//
// An empty roster disables the plane entirely: the runner never constructs
// an engine, no extra identities exist, and no code path draws an extra
// random number — runs are byte-identical to a build without the plane.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "util/ids.hpp"
#include "util/time.hpp"

namespace tribvote::adversary {

/// The five strategy state machines the engine can drive.
enum class StrategyKind : std::uint8_t {
  /// Flash-crowd vote-spam colluder (paper §VI-C, ported from src/attack):
  /// promotes a spam moderator M0 in every vote list and answers VoxPopuli
  /// with fabricated top-K lists.
  kColluder = 0,
  /// Front-peer fake-experience clique (paper §VII, ported from
  /// src/attack): claims fake_mb fabricated transfers inside the clique;
  /// the vote agent stays honest.
  kFrontPeer,
  /// LOCKSS-style attrition: floods honest BallotBox/VoxPopuli capacity
  /// with well-formed but worthless signed vote lists, `rate` messages per
  /// agent per vote round. Receivers burn a signature verification per
  /// message and reject kInexperienced; the observed (dispersion) box is
  /// still poisoned — exactly the budget-drain LOCKSS rate limits against.
  kAttrition,
  /// Nuisance: intermittently honest peers that churn their genuine votes
  /// (flip probability per round), invalidating vote-history caches,
  /// burning re-sign budgets and poisoning VoxPopuli answers. They drip
  /// real upload credit so they pass E and their churn lands in ballot
  /// boxes.
  kNuisance,
  /// Sybil collusion regions: blocks of `region` identities. The region's
  /// worker uploads genuine credit to rotating honest peers; the other
  /// members upload to the worker — real ledger edges, so two-hop max-flow
  /// member -> worker -> honest clears E for every member while only the
  /// worker spends outward capacity. Every member free-rides the vote
  /// plane (ColluderVoteAgent promoting the region's M0).
  kSybil,
};
inline constexpr std::size_t kStrategyKindCount = 5;

[[nodiscard]] const char* to_string(StrategyKind kind);

/// One roster entry. Defaults are sized for paper-scale scenarios
/// (n_trace = 100); benches scale `agents` with the adversary fraction.
struct StrategySpec {
  StrategyKind kind = StrategyKind::kColluder;
  std::size_t agents = 0;  ///< identities this strategy fields (0 = inert)
  Time start = 0;          ///< activation time (engine round hooks before
                           ///< this see the agents offline)
  /// Fraction of time each agent is online after `start`; presence is a
  /// pure function of (seed, strategy, agent, session window), so it is
  /// shard-invariant by construction.
  double duty = 1.0;
  Duration session_mean = kHour;  ///< presence window length when duty < 1
  /// Attrition: flood messages per agent per vote round (the LOCKSS
  /// "rate limit" the defender assumes — keep it small).
  std::size_t rate = 4;
  /// Nuisance: per-round probability an agent flips one of its votes.
  double flip = 0.25;
  /// Sybil: identities per collusion region (>= 2; the first member of
  /// each region is its worker).
  std::size_t region = 4;
  /// Nuisance/Sybil: genuine upload credit in MB dripped per BT round
  /// (nuisance: agent -> rotating honest; sybil: members -> worker and
  /// worker -> rotating honest).
  double credit_mb = 2.0;
  /// Colluder: also run the front-peer barter lie inside the crowd.
  bool fake_experience = false;
  /// FrontPeer/Colluder: fabricated MB claimed per clique edge.
  double fake_mb = 1000.0;
  /// Colluder/Sybil: honest moderator demoted with negative votes
  /// (kInvalidModerator = none).
  ModeratorId victim = kInvalidModerator;
};

struct AdversaryConfig {
  std::vector<StrategySpec> roster;

  [[nodiscard]] std::size_t total_agents() const noexcept {
    std::size_t n = 0;
    for (const StrategySpec& s : roster) n += s.agents;
    return n;
  }
  [[nodiscard]] bool enabled() const noexcept { return total_agents() > 0; }
};

/// Parse an adversary spec into `out` (appending to its roster). Grammar:
///   spec     := strategy (';' strategy)*
///   strategy := kind [':' key '=' value (',' key '=' value)*]
///   kind     := colluder | front | attrition | nuisance | sybil
///   key      := n | start | duty | session | rate | flip | region |
///               credit | fake_exp | fake_mb | victim
/// Returns false and fills *error (if given) on an unknown kind/key or an
/// out-of-range value. An empty spec parses to an empty roster.
[[nodiscard]] bool parse_adversary_spec(const std::string& spec,
                                        AdversaryConfig& out,
                                        std::string* error = nullptr);

/// One-line human-readable form for banners ("off" when disabled).
[[nodiscard]] std::string describe(const AdversaryConfig& config);

}  // namespace tribvote::adversary
