#include "adversary/config.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace tribvote::adversary {

namespace {

bool set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

bool kind_from(const std::string& name, StrategyKind& out) {
  if (name == "colluder") {
    out = StrategyKind::kColluder;
  } else if (name == "front" || name == "front_peer") {
    out = StrategyKind::kFrontPeer;
  } else if (name == "attrition") {
    out = StrategyKind::kAttrition;
  } else if (name == "nuisance") {
    out = StrategyKind::kNuisance;
  } else if (name == "sybil") {
    out = StrategyKind::kSybil;
  } else {
    return false;
  }
  return true;
}

bool parse_strategy(const std::string& text, StrategySpec& spec,
                    std::string* error) {
  const std::size_t colon = text.find(':');
  const std::string name = text.substr(0, colon);
  if (!kind_from(name, spec.kind)) {
    return set_error(error, "unknown strategy kind '" + name + "'");
  }
  if (colon == std::string::npos) return true;

  std::istringstream in(text.substr(colon + 1));
  std::string field;
  while (std::getline(in, field, ',')) {
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return set_error(error, "expected key=value, got '" + field + "'");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      return set_error(error, "bad value for " + key + ": '" + value + "'");
    }
    auto probability = [&](double& slot) {
      if (v < 0.0 || v > 1.0) {
        return set_error(error, key + " must be in [0, 1]");
      }
      slot = v;
      return true;
    };
    if (key == "n" || key == "agents") {
      if (v < 0.0) return set_error(error, "n must be >= 0");
      spec.agents = static_cast<std::size_t>(v);
    } else if (key == "start") {
      if (v < 0.0) return set_error(error, "start must be >= 0");
      spec.start = static_cast<Time>(v);
    } else if (key == "duty") {
      if (v <= 0.0 || v > 1.0) {
        return set_error(error, "duty must be in (0, 1]");
      }
      spec.duty = v;
    } else if (key == "session") {
      if (v < 1.0) return set_error(error, "session must be >= 1");
      spec.session_mean = static_cast<Duration>(v);
    } else if (key == "rate") {
      if (v < 1.0) return set_error(error, "rate must be >= 1");
      spec.rate = static_cast<std::size_t>(v);
    } else if (key == "flip") {
      if (!probability(spec.flip)) return false;
    } else if (key == "region") {
      if (v < 2.0) return set_error(error, "region must be >= 2");
      spec.region = static_cast<std::size_t>(v);
    } else if (key == "credit") {
      if (v < 0.0) return set_error(error, "credit must be >= 0");
      spec.credit_mb = v;
    } else if (key == "fake_exp") {
      spec.fake_experience = v != 0.0;
    } else if (key == "fake_mb") {
      if (v < 0.0) return set_error(error, "fake_mb must be >= 0");
      spec.fake_mb = v;
    } else if (key == "victim") {
      if (v < 0.0) return set_error(error, "victim must be >= 0");
      spec.victim = static_cast<ModeratorId>(v);
    } else {
      return set_error(error, "unknown adversary key '" + key + "'");
    }
  }
  return true;
}

}  // namespace

const char* to_string(StrategyKind kind) {
  switch (kind) {
    case StrategyKind::kColluder: return "colluder";
    case StrategyKind::kFrontPeer: return "front";
    case StrategyKind::kAttrition: return "attrition";
    case StrategyKind::kNuisance: return "nuisance";
    case StrategyKind::kSybil: return "sybil";
  }
  return "?";
}

bool parse_adversary_spec(const std::string& spec, AdversaryConfig& out,
                          std::string* error) {
  std::istringstream in(spec);
  std::string entry;
  while (std::getline(in, entry, ';')) {
    if (entry.empty()) continue;
    StrategySpec s;
    if (!parse_strategy(entry, s, error)) return false;
    out.roster.push_back(s);
  }
  return true;
}

std::string describe(const AdversaryConfig& config) {
  if (!config.enabled()) return "off";
  std::string out;
  char buf[96];
  for (const StrategySpec& s : config.roster) {
    if (s.agents == 0) continue;
    if (!out.empty()) out += ';';
    std::snprintf(buf, sizeof(buf), "%s:n=%zu", to_string(s.kind), s.agents);
    out += buf;
    if (s.start != 0) {
      std::snprintf(buf, sizeof(buf), ",start=%lld",
                    static_cast<long long>(s.start));
      out += buf;
    }
    if (s.duty < 1.0) {
      std::snprintf(buf, sizeof(buf), ",duty=%g", s.duty);
      out += buf;
    }
    switch (s.kind) {
      case StrategyKind::kAttrition:
        std::snprintf(buf, sizeof(buf), ",rate=%zu", s.rate);
        out += buf;
        break;
      case StrategyKind::kNuisance:
        std::snprintf(buf, sizeof(buf), ",flip=%g,credit=%g", s.flip,
                      s.credit_mb);
        out += buf;
        break;
      case StrategyKind::kSybil:
        std::snprintf(buf, sizeof(buf), ",region=%zu,credit=%g", s.region,
                      s.credit_mb);
        out += buf;
        break;
      case StrategyKind::kColluder:
      case StrategyKind::kFrontPeer:
        break;
    }
  }
  return out.empty() ? "off" : out;
}

}  // namespace tribvote::adversary
