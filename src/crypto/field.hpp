// Arithmetic modulo the Mersenne prime p = 2^61 - 1.
//
// Substrate for the simulation-grade Schnorr scheme in schnorr.hpp. A 61-bit
// field is far too small to be cryptographically secure; it is chosen so the
// signature scheme is *structurally* complete (real group exponentiation,
// real Fiat–Shamir challenge) while staying fast enough to sign and verify
// every message in a 7-day, 100-peer simulation.
#pragma once

#include <cstdint>

namespace tribvote::crypto {

/// The field modulus: Mersenne prime 2^61 - 1.
inline constexpr std::uint64_t kPrime = (1ULL << 61) - 1;

/// Order of the multiplicative group GF(p)^* = p - 1.
inline constexpr std::uint64_t kGroupOrder = kPrime - 1;

/// A fixed primitive root of GF(p)^*: 37 generates the full multiplicative
/// group (validated in tests against the complete factorization of p-1 =
/// 2 · 3² · 5² · 7 · 11 · 13 · 31 · 41 · 61 · 151 · 331 · 1321).
inline constexpr std::uint64_t kGenerator = 37;

/// (a * b) mod p via 128-bit intermediate.
[[nodiscard]] std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b) noexcept;

/// (a + b) mod p.
[[nodiscard]] std::uint64_t add_mod(std::uint64_t a, std::uint64_t b) noexcept;

/// (a - b) mod p.
[[nodiscard]] std::uint64_t sub_mod(std::uint64_t a, std::uint64_t b) noexcept;

/// a^e mod p by square-and-multiply.
[[nodiscard]] std::uint64_t pow_mod(std::uint64_t a, std::uint64_t e) noexcept;

/// Multiplicative inverse mod p (Fermat). Precondition: a != 0 (mod p).
[[nodiscard]] std::uint64_t inv_mod(std::uint64_t a) noexcept;

/// (a * b) mod m for arbitrary modulus m (used in the exponent ring mod p-1).
[[nodiscard]] std::uint64_t mul_mod_any(std::uint64_t a, std::uint64_t b,
                                        std::uint64_t m) noexcept;

}  // namespace tribvote::crypto
