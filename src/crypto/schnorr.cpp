#include "crypto/schnorr.hpp"

#include "util/hash.hpp"

namespace tribvote::crypto {

namespace {

/// Fiat–Shamir challenge: hash of (commitment r, public key, message),
/// reduced into the exponent ring mod q = p - 1.
[[nodiscard]] std::uint64_t challenge(std::uint64_t r, std::uint64_t y,
                                      std::uint64_t message) noexcept {
  const std::uint64_t h = util::digest_fields({r, y, message});
  // Keep the challenge nonzero so s carries information about x.
  const std::uint64_t e = h % kGroupOrder;
  return e == 0 ? 1 : e;
}

}  // namespace

KeyPair generate_keypair(util::Rng& rng) noexcept {
  // x in [1, q-1]
  const std::uint64_t x = 1 + rng.next_below(kGroupOrder - 1);
  return KeyPair{PublicKey{pow_mod(kGenerator, x)}, SecretKey{x}};
}

Signature sign(const KeyPair& keys, std::uint64_t message_digest,
               util::Rng& rng) noexcept {
  const std::uint64_t k = 1 + rng.next_below(kGroupOrder - 1);
  const std::uint64_t r = pow_mod(kGenerator, k);
  const std::uint64_t e = challenge(r, keys.pub.y, message_digest);
  // s = k - x*e (mod q)
  const std::uint64_t xe = mul_mod_any(keys.sec.x, e, kGroupOrder);
  const std::uint64_t s = (k + kGroupOrder - xe % kGroupOrder) % kGroupOrder;
  return Signature{e, s};
}

bool verify(const PublicKey& pub, std::uint64_t message_digest,
            const Signature& sig) noexcept {
  if (pub.y == 0 || pub.y >= kPrime) return false;
  if (sig.e == 0 || sig.e >= kGroupOrder) return false;
  if (sig.s >= kGroupOrder) return false;
  // r' = g^s * y^e; valid iff H(r', y, m) == e.
  const std::uint64_t r =
      mul_mod(pow_mod(kGenerator, sig.s), pow_mod(pub.y, sig.e));
  return challenge(r, pub.y, message_digest) == sig.e;
}

}  // namespace tribvote::crypto
