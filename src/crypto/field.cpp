#include "crypto/field.hpp"

#include <cassert>

namespace tribvote::crypto {

std::uint64_t mul_mod(std::uint64_t a, std::uint64_t b) noexcept {
  const auto prod = static_cast<__uint128_t>(a % kPrime) * (b % kPrime);
  // Mersenne reduction: x mod (2^61 - 1) = (x >> 61) + (x & (2^61 - 1)),
  // applied twice to cover the carry.
  auto lo = static_cast<std::uint64_t>(prod & kPrime);
  auto hi = static_cast<std::uint64_t>(prod >> 61);
  std::uint64_t r = lo + hi;
  r = (r & kPrime) + (r >> 61);
  if (r >= kPrime) r -= kPrime;
  return r;
}

std::uint64_t add_mod(std::uint64_t a, std::uint64_t b) noexcept {
  std::uint64_t r = (a % kPrime) + (b % kPrime);
  if (r >= kPrime) r -= kPrime;
  return r;
}

std::uint64_t sub_mod(std::uint64_t a, std::uint64_t b) noexcept {
  a %= kPrime;
  b %= kPrime;
  return a >= b ? a - b : a + kPrime - b;
}

std::uint64_t pow_mod(std::uint64_t a, std::uint64_t e) noexcept {
  std::uint64_t base = a % kPrime;
  std::uint64_t result = 1;
  while (e > 0) {
    if (e & 1) result = mul_mod(result, base);
    base = mul_mod(base, base);
    e >>= 1;
  }
  return result;
}

std::uint64_t inv_mod(std::uint64_t a) noexcept {
  assert(a % kPrime != 0);
  return pow_mod(a, kPrime - 2);
}

std::uint64_t mul_mod_any(std::uint64_t a, std::uint64_t b,
                          std::uint64_t m) noexcept {
  assert(m > 0);
  return static_cast<std::uint64_t>(
      (static_cast<__uint128_t>(a % m) * (b % m)) % m);
}

}  // namespace tribvote::crypto
