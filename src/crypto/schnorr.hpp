// Simulation-grade Schnorr signatures.
//
// Tribler binds every protocol message to a non-spoofable peer identity via
// a PKI. This module reproduces that structurally: key generation, signing
// and verification follow the classic Schnorr construction
//
//   sk = x,  pk = g^x        (group: subgroup of GF(p)^*, p = 2^61 - 1)
//   sign(m):   k <- random;  r = g^k;  e = H(r, pk, m);  s = k - x*e (mod q)
//   verify:    e' = H(g^s * pk^e, pk, m);  accept iff e' == e
//
// SECURITY NOTE: a 61-bit field offers no real-world security (discrete logs
// here are trivially computable offline). Inside the simulator this does not
// matter — adversary models are explicit code, not attackers grinding group
// math — while every moderation and vote-list message still pays the real
// sign/verify structure and cost model. Documented as a substitution in
// DESIGN.md §2.
#pragma once

#include <cstdint>
#include <span>

#include "crypto/field.hpp"
#include "util/rng.hpp"

namespace tribvote::crypto {

/// Public key: group element g^x.
struct PublicKey {
  std::uint64_t y = 0;
  [[nodiscard]] bool operator==(const PublicKey&) const = default;
};

/// Secret key: exponent x in [1, q-1].
struct SecretKey {
  std::uint64_t x = 0;
};

/// A Schnorr signature (e, s).
struct Signature {
  std::uint64_t e = 0;
  std::uint64_t s = 0;
  [[nodiscard]] bool operator==(const Signature&) const = default;
};

/// A peer's signing identity.
struct KeyPair {
  PublicKey pub;
  SecretKey sec;
};

/// Deterministically generate a key pair from `rng` (each simulated peer
/// derives its own child RNG, so identities are reproducible per seed).
[[nodiscard]] KeyPair generate_keypair(util::Rng& rng) noexcept;

/// Sign a 64-bit message digest (see util::digest_fields for building
/// digests from structured messages). `rng` supplies the nonce k.
[[nodiscard]] Signature sign(const KeyPair& keys, std::uint64_t message_digest,
                             util::Rng& rng) noexcept;

/// Verify a signature over a 64-bit message digest.
[[nodiscard]] bool verify(const PublicKey& pub, std::uint64_t message_digest,
                          const Signature& sig) noexcept;

}  // namespace tribvote::crypto
