// ModerationCast: push/pull gossip dissemination of moderations (Fig. 1).
//
// On each active-thread tick a node pairs with a PSS-sampled peer and both
// sides exchange Extract()ed moderation lists and Merge() them into their
// local_db. Spreading is approval-gated: a node forwards only moderations
// of moderators its user approved (plus its own), so well-approved
// moderators spread fast while unapproved ones spread only by direct
// contact — the paper's core dissemination asymmetry.
#pragma once

#include <functional>
#include <vector>

#include "moderation/db.hpp"
#include "util/rng.hpp"

namespace tribvote::moderation {

struct ModerationCastConfig {
  std::size_t max_items_per_message = 25;
  DbConfig db;
};

class ModerationCastAgent {
 public:
  /// `keys` must outlive the agent (owned by the node).
  ModerationCastAgent(PeerId self, const crypto::KeyPair& keys,
                      ModerationCastConfig config,
                      std::function<Opinion(ModeratorId)> opinion_of,
                      util::Rng rng);

  /// Fired for every moderation newly inserted into the local_db — the UI /
  /// voting behaviours react to this (e.g. a scripted voter votes when the
  /// target moderator's metadata first arrives).
  std::function<void(const Moderation&)> on_new_moderation;

  /// Author, sign and store a new moderation (the node acts as moderator).
  const Moderation& publish(std::uint64_t infohash, std::string description,
                            Time now);

  /// Per-batch receive outcome (item-wise: one damaged item in a batch is
  /// rejected alone — every other item still merges).
  struct ReceiveStats {
    std::size_t inserted = 0;       ///< new items merged (incl. evicting)
    std::size_t duplicates = 0;     ///< already stored
    std::size_t bad_signature = 0;  ///< corrupted/forged, rejected item-wise
    std::size_t disapproved = 0;    ///< refused per §IV
  };

  /// Build the moderation list for an outgoing push/pull message. Items
  /// queued by note_undelivered go first (capped at the message limit);
  /// the remainder is the regular Extract(). Without pending re-offers
  /// this is exactly the legacy Extract() path, RNG draws included.
  [[nodiscard]] std::vector<Moderation> outgoing();

  /// Merge a received moderation list; fires on_new_moderation per insert.
  ReceiveStats receive(const std::vector<Moderation>& items, Time now);

  /// Transport feedback: the items of our last push never reached the
  /// counterpart (lost encounter, no reply). They are queued and re-offered
  /// ahead of the regular extraction on the next outgoing() — at-least-once
  /// dissemination; duplicates dedup on merge. Items evicted or purged in
  /// the meantime are silently skipped at re-offer time. Returns the
  /// number of items queued.
  std::size_t note_undelivered(const std::vector<Moderation>& items);

  [[nodiscard]] std::size_t pending_reoffers() const noexcept {
    return pending_reoffer_.size();
  }

  /// The user disapproved a moderator: purge and block its items (§IV).
  void handle_disapproval(ModeratorId moderator);

  [[nodiscard]] ModerationDb& db() noexcept { return db_; }
  [[nodiscard]] const ModerationDb& db() const noexcept { return db_; }
  [[nodiscard]] PeerId self() const noexcept { return self_; }

 private:
  PeerId self_;
  const crypto::KeyPair* keys_;
  ModerationCastConfig config_;
  ModerationDb db_;
  util::Rng rng_;
  std::vector<Moderation> own_;  ///< stable storage for publish() returns
  std::vector<Moderation> pending_reoffer_;  ///< undelivered, retry next push
};

/// Aggregate outcome of one push/pull exchange, for telemetry. Callers
/// that only want the side effects may ignore it.
struct ExchangeStats {
  std::size_t sent_initiator = 0;  ///< items in the initiator's push
  std::size_t sent_responder = 0;  ///< items in the responder's reply
  std::size_t inserted = 0;        ///< new items merged, both sides
};

/// Responder half of one push/pull exchange, in Fig. 1 order: the reply
/// batch is extracted *before* the initiator's items merge (ml_j is built
/// before merging ml_i). This is the single definition both transports use
/// — exchange() below composes it for the simulator, the socket plane's
/// ExchangeEngine calls it when serving a MOD_BATCH — so a wire moderation
/// encounter leaves the responder bit-identical to the sim. `stats`, when
/// given, receives the merge outcome of the initiator's batch.
[[nodiscard]] std::vector<Moderation> respond_exchange(
    ModerationCastAgent& responder, const std::vector<Moderation>& incoming,
    Time now, ModerationCastAgent::ReceiveStats* stats = nullptr);

/// One full push/pull exchange between two online agents (both directions),
/// as performed by the active/passive thread pair in Fig. 1.
ExchangeStats exchange(ModerationCastAgent& initiator,
                       ModerationCastAgent& responder, Time now);

}  // namespace tribvote::moderation
