#include "moderation/moderation.hpp"

namespace tribvote::moderation {

Moderation make_moderation(ModeratorId moderator, const crypto::KeyPair& keys,
                           std::uint64_t infohash, std::string description,
                           Time now, util::Rng& rng) {
  Moderation m;
  m.moderator = moderator;
  m.moderator_key = keys.pub;
  m.infohash = infohash;
  m.description = std::move(description);
  m.created = now;
  m.signature = crypto::sign(keys, m.digest(), rng);
  return m;
}

bool verify_moderation(const Moderation& m) {
  return crypto::verify(m.moderator_key, m.digest(), m.signature);
}

}  // namespace tribvote::moderation
