#include "moderation/moderationcast.hpp"

#include <algorithm>
#include <cassert>

namespace tribvote::moderation {

ModerationCastAgent::ModerationCastAgent(
    PeerId self, const crypto::KeyPair& keys, ModerationCastConfig config,
    std::function<Opinion(ModeratorId)> opinion_of, util::Rng rng)
    : self_(self),
      keys_(&keys),
      config_(config),
      db_(self, config.db, std::move(opinion_of)),
      rng_(rng) {}

const Moderation& ModerationCastAgent::publish(std::uint64_t infohash,
                                               std::string description,
                                               Time now) {
  own_.push_back(make_moderation(self_, *keys_, infohash,
                                 std::move(description), now, rng_));
  const auto result = db_.merge(own_.back(), now);
  assert(result != ModerationDb::MergeResult::kBadSignature);
  (void)result;
  return own_.back();
}

std::vector<Moderation> ModerationCastAgent::outgoing() {
  if (pending_reoffer_.empty()) {
    return db_.extract(config_.max_items_per_message, rng_);
  }
  // Undelivered items first (skipping any evicted/purged since), then the
  // regular extraction fills the remaining budget, deduplicated by id.
  std::vector<Moderation> out;
  std::vector<ModerationId> out_ids;
  for (Moderation& m : pending_reoffer_) {
    if (out.size() >= config_.max_items_per_message) break;
    const ModerationId id = m.digest();
    if (!db_.contains(id)) continue;
    out.push_back(std::move(m));
    out_ids.push_back(id);
  }
  pending_reoffer_.clear();
  if (out.size() < config_.max_items_per_message) {
    for (Moderation& m :
         db_.extract(config_.max_items_per_message - out.size(), rng_)) {
      if (std::find(out_ids.begin(), out_ids.end(), m.digest()) !=
          out_ids.end()) {
        continue;
      }
      out.push_back(std::move(m));
    }
  }
  return out;
}

ModerationCastAgent::ReceiveStats ModerationCastAgent::receive(
    const std::vector<Moderation>& items, Time now) {
  ReceiveStats stats;
  for (const Moderation& m : items) {
    const auto result = db_.merge(m, now);
    switch (result) {
      case ModerationDb::MergeResult::kInserted:
      case ModerationDb::MergeResult::kEvictedOthers:
        ++stats.inserted;
        if (on_new_moderation) on_new_moderation(m);
        break;
      case ModerationDb::MergeResult::kDuplicate:
        ++stats.duplicates;
        break;
      case ModerationDb::MergeResult::kBadSignature:
        ++stats.bad_signature;
        break;
      case ModerationDb::MergeResult::kDisapprovedModerator:
        ++stats.disapproved;
        break;
    }
  }
  return stats;
}

std::size_t ModerationCastAgent::note_undelivered(
    const std::vector<Moderation>& items) {
  // Bounded at one message's worth; overflow is dropped (those items keep
  // circulating via regular extraction anyway — re-offering is an
  // acceleration, not a delivery guarantee).
  std::size_t queued = 0;
  for (const Moderation& m : items) {
    if (pending_reoffer_.size() >= config_.max_items_per_message) break;
    pending_reoffer_.push_back(m);
    ++queued;
  }
  return queued;
}

void ModerationCastAgent::handle_disapproval(ModeratorId moderator) {
  db_.purge_moderator(moderator);
}

std::vector<Moderation> respond_exchange(
    ModerationCastAgent& responder, const std::vector<Moderation>& incoming,
    Time now, ModerationCastAgent::ReceiveStats* stats) {
  // Fig. 1 order: the responder extracts its own batch *before* merging
  // the initiator's, so the exchange is symmetric within this encounter.
  std::vector<Moderation> reply = responder.outgoing();
  const ModerationCastAgent::ReceiveStats merged =
      responder.receive(incoming, now);
  if (stats != nullptr) *stats = merged;
  return reply;
}

ExchangeStats exchange(ModerationCastAgent& initiator,
                       ModerationCastAgent& responder, Time now) {
  std::vector<Moderation> from_initiator = initiator.outgoing();
  ModerationCastAgent::ReceiveStats responder_merge;
  const std::vector<Moderation> from_responder =
      respond_exchange(responder, from_initiator, now, &responder_merge);
  ExchangeStats stats;
  stats.sent_initiator = from_initiator.size();
  stats.sent_responder = from_responder.size();
  stats.inserted += responder_merge.inserted;
  stats.inserted += initiator.receive(from_responder, now).inserted;
  return stats;
}

}  // namespace tribvote::moderation
