#include "moderation/moderationcast.hpp"

#include <cassert>

namespace tribvote::moderation {

ModerationCastAgent::ModerationCastAgent(
    PeerId self, const crypto::KeyPair& keys, ModerationCastConfig config,
    std::function<Opinion(ModeratorId)> opinion_of, util::Rng rng)
    : self_(self),
      keys_(&keys),
      config_(config),
      db_(self, config.db, std::move(opinion_of)),
      rng_(rng) {}

const Moderation& ModerationCastAgent::publish(std::uint64_t infohash,
                                               std::string description,
                                               Time now) {
  own_.push_back(make_moderation(self_, *keys_, infohash,
                                 std::move(description), now, rng_));
  const auto result = db_.merge(own_.back(), now);
  assert(result != ModerationDb::MergeResult::kBadSignature);
  (void)result;
  return own_.back();
}

std::vector<Moderation> ModerationCastAgent::outgoing() {
  return db_.extract(config_.max_items_per_message, rng_);
}

void ModerationCastAgent::receive(const std::vector<Moderation>& items,
                                  Time now) {
  for (const Moderation& m : items) {
    const auto result = db_.merge(m, now);
    if ((result == ModerationDb::MergeResult::kInserted ||
         result == ModerationDb::MergeResult::kEvictedOthers) &&
        on_new_moderation) {
      on_new_moderation(m);
    }
  }
}

void ModerationCastAgent::handle_disapproval(ModeratorId moderator) {
  db_.purge_moderator(moderator);
}

void exchange(ModerationCastAgent& initiator, ModerationCastAgent& responder,
              Time now) {
  // Push/pull: both sides extract before merging so the exchange is
  // symmetric within this encounter (matches Fig. 1's message order, where
  // ml_j is extracted before merging ml_i).
  std::vector<Moderation> from_initiator = initiator.outgoing();
  std::vector<Moderation> from_responder = responder.outgoing();
  responder.receive(from_initiator, now);
  initiator.receive(from_responder, now);
}

}  // namespace tribvote::moderation
