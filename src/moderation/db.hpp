// local_db: each peer's persistent store of received moderations (Fig. 1).
//
// Merge() verifies signatures, deduplicates, enforces a capacity bound with
// oldest-first eviction, and honours the local user's disapprovals (a
// disapproved moderator's items are purged and refused — §IV). Extract()
// returns the moderation list sent to a gossip counterpart, selected by the
// paper's recency + random policy and restricted to moderators the local
// user approves of (plus the node's own moderations).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <unordered_map>
#include <vector>

#include "moderation/moderation.hpp"
#include "util/opinion.hpp"
#include "util/rng.hpp"

namespace tribvote::moderation {

struct DbConfig {
  std::size_t capacity = 10000;  ///< total stored moderations
};

class ModerationDb {
 public:
  /// `opinion_of` reports the local user's current opinion of a moderator;
  /// consulted on merge (refuse disapproved) and extract (forward approved
  /// and own only). Must outlive the db.
  ModerationDb(PeerId owner, DbConfig config,
               std::function<Opinion(ModeratorId)> opinion_of);

  /// Result of offering one moderation to the db.
  enum class MergeResult {
    kInserted,
    kDuplicate,
    kBadSignature,
    kDisapprovedModerator,
    kEvictedOthers,  ///< inserted, but capacity forced an eviction
  };

  /// Offer one received moderation. `now` is the receive time (drives
  /// recency-based extraction and eviction order).
  MergeResult merge(const Moderation& m, Time now);

  /// The paper's Extract(): up to `max_items` moderations the local node is
  /// willing to forward — half most recently received, half uniform random
  /// from the remaining eligible items.
  [[nodiscard]] std::vector<Moderation> extract(std::size_t max_items,
                                                util::Rng& rng) const;

  /// Purge everything from a moderator (called when the user disapproves).
  void purge_moderator(ModeratorId moderator);

  [[nodiscard]] bool contains(ModerationId id) const;
  [[nodiscard]] std::size_t size() const noexcept { return items_.size(); }
  /// Number of stored moderations authored by `moderator`.
  [[nodiscard]] std::size_t count_from(ModeratorId moderator) const;
  /// All distinct moderators with at least one stored item.
  [[nodiscard]] std::vector<ModeratorId> known_moderators() const;

 private:
  struct Stored {
    Moderation item;
    Time received = 0;
    std::uint64_t seq = 0;  ///< insertion order tie-break
  };

  [[nodiscard]] bool eligible_to_forward(const Stored& s) const;

  PeerId owner_;
  DbConfig config_;
  std::function<Opinion(ModeratorId)> opinion_of_;
  std::unordered_map<ModerationId, Stored> items_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace tribvote::moderation
