// Moderations: signed metadata items bound to the moderator that created
// them (paper §IV). A moderation describes one torrent (infohash) with
// human-readable metadata; the signature prevents alteration or forgery in
// transit — nodes drop anything that fails verification against the claimed
// moderator's public key.
#pragma once

#include <cstdint>
#include <string>

#include "crypto/schnorr.hpp"
#include "util/hash.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace tribvote::moderation {

/// Unique id of a moderation (digest of its immutable fields).
using ModerationId = std::uint64_t;

struct Moderation {
  ModeratorId moderator = kInvalidModerator;
  crypto::PublicKey moderator_key;  ///< key the signature verifies against
  std::uint64_t infohash = 0;       ///< torrent this metadata describes
  std::string description;          ///< title / text / thumbnail URL etc.
  Time created = 0;
  crypto::Signature signature;

  /// Digest over every immutable field; doubles as the moderation id.
  [[nodiscard]] ModerationId digest() const {
    return util::digest_fields({moderator, moderator_key.y, infohash,
                                util::fnv1a64(description),
                                static_cast<std::uint64_t>(created)});
  }
};

/// Create and sign a moderation with the moderator's key pair.
[[nodiscard]] Moderation make_moderation(ModeratorId moderator,
                                         const crypto::KeyPair& keys,
                                         std::uint64_t infohash,
                                         std::string description, Time now,
                                         util::Rng& rng);

/// Verify a moderation's signature against its embedded public key.
[[nodiscard]] bool verify_moderation(const Moderation& m);

}  // namespace tribvote::moderation
