#include "moderation/db.hpp"

#include <algorithm>
#include <cassert>

namespace tribvote::moderation {

ModerationDb::ModerationDb(PeerId owner, DbConfig config,
                           std::function<Opinion(ModeratorId)> opinion_of)
    : owner_(owner), config_(config), opinion_of_(std::move(opinion_of)) {
  assert(config_.capacity > 0);
  assert(opinion_of_);
}

ModerationDb::MergeResult ModerationDb::merge(const Moderation& m, Time now) {
  if (opinion_of_(m.moderator) == Opinion::kNegative) {
    return MergeResult::kDisapprovedModerator;
  }
  const ModerationId id = m.digest();
  if (items_.contains(id)) return MergeResult::kDuplicate;
  if (!verify_moderation(m)) return MergeResult::kBadSignature;

  bool evicted = false;
  if (items_.size() >= config_.capacity) {
    // Evict the oldest-received item (insertion seq breaks ties).
    auto victim = items_.end();
    for (auto it = items_.begin(); it != items_.end(); ++it) {
      if (victim == items_.end() ||
          it->second.received < victim->second.received ||
          (it->second.received == victim->second.received &&
           it->second.seq < victim->second.seq)) {
        victim = it;
      }
    }
    items_.erase(victim);
    evicted = true;
  }
  items_.emplace(id, Stored{m, now, next_seq_++});
  return evicted ? MergeResult::kEvictedOthers : MergeResult::kInserted;
}

bool ModerationDb::eligible_to_forward(const Stored& s) const {
  // Forward own moderations unconditionally; others only when the local
  // user explicitly approved the moderator (§IV: nodes only pass on
  // metadata from moderators they have approved).
  return s.item.moderator == owner_ ||
         opinion_of_(s.item.moderator) == Opinion::kPositive;
}

std::vector<Moderation> ModerationDb::extract(std::size_t max_items,
                                              util::Rng& rng) const {
  std::vector<const Stored*> eligible;
  eligible.reserve(items_.size());
  for (const auto& [id, stored] : items_) {
    if (eligible_to_forward(stored)) eligible.push_back(&stored);
  }
  std::vector<Moderation> result;
  if (eligible.empty() || max_items == 0) return result;

  // Recency + random policy: newest half by receive time, the rest drawn
  // uniformly from the remainder.
  std::sort(eligible.begin(), eligible.end(),
            [](const Stored* a, const Stored* b) {
              if (a->received != b->received) return a->received > b->received;
              return a->seq > b->seq;
            });
  const std::size_t take = std::min(max_items, eligible.size());
  const std::size_t recent = (take + 1) / 2;
  result.reserve(take);
  for (std::size_t i = 0; i < recent; ++i) {
    result.push_back(eligible[i]->item);
  }
  const std::size_t rest_count = eligible.size() - recent;
  const std::size_t random_take = take - recent;
  if (random_take > 0 && rest_count > 0) {
    const auto picks =
        rng.sample_indices(rest_count, std::min(random_take, rest_count));
    for (std::size_t p : picks) {
      result.push_back(eligible[recent + p]->item);
    }
  }
  return result;
}

void ModerationDb::purge_moderator(ModeratorId moderator) {
  std::erase_if(items_, [moderator](const auto& kv) {
    return kv.second.item.moderator == moderator;
  });
}

bool ModerationDb::contains(ModerationId id) const {
  return items_.contains(id);
}

std::size_t ModerationDb::count_from(ModeratorId moderator) const {
  return static_cast<std::size_t>(
      std::count_if(items_.begin(), items_.end(), [moderator](const auto& kv) {
        return kv.second.item.moderator == moderator;
      }));
}

std::vector<ModeratorId> ModerationDb::known_moderators() const {
  std::vector<ModeratorId> mods;
  for (const auto& [id, stored] : items_) {
    if (std::find(mods.begin(), mods.end(), stored.item.moderator) ==
        mods.end()) {
      mods.push_back(stored.item.moderator);
    }
  }
  std::sort(mods.begin(), mods.end());
  return mods;
}

}  // namespace tribvote::moderation
