#include "baselines/credence.hpp"

#include <cmath>

namespace tribvote::baselines {

void CredencePeer::cast(ObjectId object, Opinion opinion) {
  if (opinion == Opinion::kNone) return;
  own_[object] = opinion;
}

void CredencePeer::observe(
    PeerId other, const std::vector<std::pair<ObjectId, Opinion>>& votes) {
  if (other == self_) return;
  auto& history = gathered_[other];
  for (const auto& [object, opinion] : votes) {
    if (opinion != Opinion::kNone) history[object] = opinion;
  }
}

std::optional<double> CredencePeer::correlation_with(PeerId other) const {
  const auto it = gathered_.find(other);
  if (it == gathered_.end()) return std::nullopt;
  std::size_t overlap = 0;
  double agreement = 0;
  for (const auto& [object, their_vote] : it->second) {
    const auto mine = own_.find(object);
    if (mine == own_.end()) continue;
    ++overlap;
    agreement +=
        mine->second == their_vote ? 1.0 : -1.0;  // simple +-1 matching
  }
  if (overlap < config_.min_overlap) return std::nullopt;
  return agreement / static_cast<double>(overlap);
}

std::optional<double> CredencePeer::estimate(ObjectId object) const {
  double weighted = 0;
  double total_weight = 0;
  for (const auto& [peer, history] : gathered_) {
    const auto vote = history.find(object);
    if (vote == history.end()) continue;
    const auto theta = correlation_with(peer);
    if (!theta || std::abs(*theta) < config_.min_correlation) continue;
    weighted += *theta * opinion_value(vote->second);
    total_weight += std::abs(*theta);
  }
  // Own first-hand vote always counts.
  const auto mine = own_.find(object);
  if (mine != own_.end()) {
    weighted += opinion_value(mine->second);
    total_weight += 1.0;
  }
  if (total_weight == 0) return std::nullopt;
  return weighted / total_weight;
}

bool CredencePeer::isolated() const {
  for (const auto& [peer, history] : gathered_) {
    const auto theta = correlation_with(peer);
    if (theta && std::abs(*theta) >= config_.min_correlation) return false;
  }
  return true;
}

}  // namespace tribvote::baselines
