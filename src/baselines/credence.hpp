// Baseline: Credence-style object reputation (Walsh & Sirer, NSDI 2006) —
// the closest related system the paper compares against (§VIII):
//
//   "Rather than voting on moderators, peers vote on files... A peer X can
//    evaluate another peer Y's votes based on the correlation in the
//    voting histories of the two peers... users who don't vote, or do so
//    only minimally, have no way of distinguishing between honest and
//    malicious voters. This is evident from the results presented in [16]
//    where nearly fifty percent of clients are isolated... In contrast our
//    system doesn't rely on a large number of people voting, yet still
//    works for all peers, regardless of their voting habits."
//
// This module implements the Credence mechanics needed to demonstrate that
// isolation effect: object-level votes, gathered vote histories, pairwise
// vote-correlation weighting, and correlation-weighted object evaluation.
// The abl_credence_isolation bench puts both systems under the paper's
// observed voting sparsity (≈5 votes per 1000 downloads) and compares the
// fraction of peers that can rank anything at all.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <vector>

#include "util/ids.hpp"
#include "util/opinion.hpp"

namespace tribvote::baselines {

/// Identifier of a shared file (object) in the Credence sense.
using ObjectId = std::uint64_t;

struct CredenceConfig {
  /// Minimum number of co-voted objects before a correlation is trusted.
  std::size_t min_overlap = 2;
  /// Minimum |correlation| for a peer's votes to be counted.
  double min_correlation = 0.25;
};

class CredencePeer {
 public:
  CredencePeer(PeerId self, CredenceConfig config)
      : self_(self), config_(config) {}

  /// The local user votes on an object (+1 authentic / -1 fake).
  void cast(ObjectId object, Opinion opinion);

  /// Gather another peer's (signed) vote history — Credence's equivalent
  /// of the vote gossip Gnutella piggybacks on search.
  void observe(PeerId other,
               const std::vector<std::pair<ObjectId, Opinion>>& votes);

  /// Vote correlation with `other` in [-1, 1]: mean agreement over
  /// co-voted objects. nullopt when overlap < min_overlap — the peers
  /// cannot evaluate each other.
  [[nodiscard]] std::optional<double> correlation_with(PeerId other) const;

  /// Correlation-weighted estimate of an object's authenticity in [-1, 1];
  /// nullopt when no sufficiently-correlated peer voted on it.
  [[nodiscard]] std::optional<double> estimate(ObjectId object) const;

  /// A peer is isolated when it has no usable correlation with anyone —
  /// it cannot distinguish honest from malicious votes (the ~50 % failure
  /// mode reported for Credence).
  [[nodiscard]] bool isolated() const;

  [[nodiscard]] std::size_t own_vote_count() const noexcept {
    return own_.size();
  }
  [[nodiscard]] std::size_t observed_peer_count() const noexcept {
    return gathered_.size();
  }

 private:
  PeerId self_;
  CredenceConfig config_;
  std::map<ObjectId, Opinion> own_;
  std::map<PeerId, std::map<ObjectId, Opinion>> gathered_;
};

}  // namespace tribvote::baselines
