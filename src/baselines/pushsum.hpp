// Baseline: gossip-based (epidemic) aggregation of votes — the design the
// paper *rejected* for the BallotBox (§II, §V-A):
//
//   "Faster and more accurate epidemic-style aggregation protocols have
//    been proposed but they are highly vulnerable to lying behaviour [8]."
//
// This implements push-sum averaging (Kempe et al.; the protocol family of
// Jelasity, Montresor & Babaoglu [8]): every node holds a (sum, weight)
// pair per aggregate; on contact it sends half of both to the partner and
// keeps half; sum/weight converges exponentially fast to the population
// average at every node.
//
// The attack surface the paper cites: a node's influence is NOT bounded by
// one vote. A liar can report an arbitrarily inflated share (or
// re-inject mass every round), dragging everyone's estimate — whereas in
// the BallotBox a malicious voter contributes at most one vote per
// moderator, and only if it passes the experience function. The
// abl_aggregation bench quantifies this.
#pragma once

#include <cstdint>
#include <utility>

#include "util/ids.hpp"

namespace tribvote::baselines {

/// One node's push-sum state for a single aggregate (e.g. the average vote
/// on one moderator).
class PushSumNode {
 public:
  /// `own_value` is the node's contribution to the average (vote value).
  explicit PushSumNode(double own_value) : sum_(own_value), weight_(1.0) {}
  virtual ~PushSumNode() = default;

  /// A (sum, weight) share as transmitted between nodes.
  struct Share {
    double sum = 0;
    double weight = 0;
  };

  /// Emit the share sent to a contacted partner. Honest behaviour: halve
  /// the local state and send the other half. Virtual: liars override.
  [[nodiscard]] virtual Share emit() {
    sum_ /= 2;
    weight_ /= 2;
    return Share{sum_, weight_};
  }

  /// Merge a received share.
  void absorb(const Share& share) {
    sum_ += share.sum;
    weight_ += share.weight;
  }

  /// Current estimate of the population average.
  [[nodiscard]] double estimate() const {
    return weight_ > 0 ? sum_ / weight_ : 0.0;
  }

  [[nodiscard]] double weight() const noexcept { return weight_; }

 protected:
  double sum_;
  double weight_;
};

/// A lying aggregator: emits a fabricated share pushing `target_value`
/// without diluting its own state — it re-injects mass every exchange,
/// which honest push-sum cannot detect (shares carry no provenance).
class LyingPushSumNode final : public PushSumNode {
 public:
  LyingPushSumNode(double own_value, double target_value, double mass)
      : PushSumNode(own_value), target_(target_value), mass_(mass) {}

  [[nodiscard]] Share emit() override {
    // Fabricate: mass_ weight of pure target value, conjured from nothing.
    return Share{target_ * mass_, mass_};
  }

 private:
  double target_;
  double mass_;
};

}  // namespace tribvote::baselines
