#include "util/stats.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

namespace tribvote::util {

void RunningStats::add(double x) noexcept {
  if (n_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++n_;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

double RunningStats::variance() const noexcept {
  return n_ > 1 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::stderr_mean() const noexcept {
  return n_ > 0 ? stddev() / std::sqrt(static_cast<double>(n_)) : 0.0;
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double total = na + nb;
  mean_ += delta * nb / total;
  m2_ += other.m2_ + delta * delta * na * nb / total;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double percentile(std::span<const double> sample, double q) {
  if (sample.empty()) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  std::vector<double> v(sample.begin(), sample.end());
  std::sort(v.begin(), v.end());
  const double pos = q * static_cast<double>(v.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, v.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return v[lo] + frac * (v[hi] - v[lo]);
}

double mean_of(std::span<const double> sample) noexcept {
  if (sample.empty()) return 0.0;
  double s = 0.0;
  for (double x : sample) s += x;
  return s / static_cast<double>(sample.size());
}

double kendall_tau(std::span<const double> a, std::span<const double> b) {
  assert(a.size() == b.size());
  const std::size_t n = a.size();
  long long concordant = 0, discordant = 0, ties_a = 0, ties_b = 0;
  for (std::size_t i = 0; i < n; ++i) {
    for (std::size_t j = i + 1; j < n; ++j) {
      const double da = a[i] - a[j];
      const double db = b[i] - b[j];
      if (da == 0.0 && db == 0.0) continue;  // tied in both: excluded
      if (da == 0.0) {
        ++ties_a;
      } else if (db == 0.0) {
        ++ties_b;
      } else if ((da > 0) == (db > 0)) {
        ++concordant;
      } else {
        ++discordant;
      }
    }
  }
  const double denom =
      std::sqrt(static_cast<double>(concordant + discordant + ties_a)) *
      std::sqrt(static_cast<double>(concordant + discordant + ties_b));
  if (denom == 0.0) return 0.0;
  return static_cast<double>(concordant - discordant) / denom;
}

double ci95_halfwidth(const RunningStats& stats) noexcept {
  return stats.count() > 1 ? 1.96 * stats.stderr_mean() : 0.0;
}

}  // namespace tribvote::util
