// Fixed-size thread pool used to run independent simulation replicas (one
// trace/seed per task) in parallel. Tasks must be independent: the simulator
// itself is single-threaded and deterministic; parallelism lives only at the
// replica level, which keeps results bit-identical regardless of thread
// count or scheduling.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <future>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace tribvote::util {

class ThreadPool {
 public:
  /// Spawns `threads` workers (default: hardware concurrency, at least 1).
  explicit ThreadPool(std::size_t threads = 0);

  /// Joins all workers after draining the queue.
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueue a task; the future resolves with its result (or exception).
  template <typename F>
  [[nodiscard]] auto submit(F&& fn) -> std::future<std::invoke_result_t<F>> {
    using R = std::invoke_result_t<F>;
    auto task =
        std::make_shared<std::packaged_task<R()>>(std::forward<F>(fn));
    std::future<R> fut = task->get_future();
    {
      std::lock_guard lock(mutex_);
      queue_.emplace([task] { (*task)(); });
    }
    cv_.notify_one();
    return fut;
  }

  [[nodiscard]] std::size_t thread_count() const noexcept {
    return workers_.size();
  }

  /// Run `fn(i)` for i in [0, n) across the pool and wait for completion.
  /// Exceptions from tasks are rethrown (first one wins).
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& fn);

 private:
  void worker_loop();

  std::vector<std::thread> workers_;
  std::queue<std::function<void()>> queue_;
  std::mutex mutex_;
  std::condition_variable cv_;
  bool stop_ = false;
};

}  // namespace tribvote::util
