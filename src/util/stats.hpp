// Streaming and batch statistics used by the metrics layer and the
// experiment harness (replica aggregation, confidence intervals, rank
// correlation between moderator orderings).
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace tribvote::util {

/// Welford streaming mean/variance accumulator.
class RunningStats {
 public:
  void add(double x) noexcept;

  [[nodiscard]] std::size_t count() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return n_ ? mean_ : 0.0; }
  /// Unbiased sample variance (0 when fewer than two samples).
  [[nodiscard]] double variance() const noexcept;
  [[nodiscard]] double stddev() const noexcept;
  /// Standard error of the mean.
  [[nodiscard]] double stderr_mean() const noexcept;
  [[nodiscard]] double min() const noexcept { return n_ ? min_ : 0.0; }
  [[nodiscard]] double max() const noexcept { return n_ ? max_ : 0.0; }

  /// Merge another accumulator (parallel reduction; Chan et al.).
  void merge(const RunningStats& other) noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Exact percentile (linear interpolation between closest ranks) of an
/// unsorted sample. `q` in [0, 1]. Returns 0 for an empty sample.
[[nodiscard]] double percentile(std::span<const double> sample, double q);

/// Mean of a sample (0 for empty).
[[nodiscard]] double mean_of(std::span<const double> sample) noexcept;

/// Kendall rank-correlation tau-b between two equally-sized score vectors.
/// Returns a value in [-1, 1]; 1 means identical ordering. Ties handled per
/// the tau-b definition. Returns 0 when either vector has no distinct pairs.
[[nodiscard]] double kendall_tau(std::span<const double> a,
                                 std::span<const double> b);

/// Half-width of a normal-approximation 95% confidence interval for the mean
/// of `stats` (1.96 * stderr). Returns 0 with fewer than two samples.
[[nodiscard]] double ci95_halfwidth(const RunningStats& stats) noexcept;

}  // namespace tribvote::util
