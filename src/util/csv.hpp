// Minimal CSV emission for experiment output. Every bench writes both a
// human-readable table to stdout and a machine-readable CSV next to it.
#pragma once

#include <fstream>
#include <initializer_list>
#include <string>
#include <string_view>
#include <vector>

namespace tribvote::util {

/// Streams rows to a CSV file. Fields containing commas, quotes or newlines
/// are quoted per RFC 4180.
class CsvWriter {
 public:
  /// Opens (truncates) `path`. Check `ok()` before writing.
  explicit CsvWriter(const std::string& path);

  [[nodiscard]] bool ok() const { return static_cast<bool>(out_); }

  /// Write a header or data row from string fields.
  void write_row(std::initializer_list<std::string_view> fields);
  void write_row(const std::vector<std::string>& fields);

  /// Incremental row construction.
  CsvWriter& field(std::string_view v);
  CsvWriter& field(double v);
  CsvWriter& field(long long v);
  /// Terminate the current row.
  void end_row();

 private:
  void put_field(std::string_view v);

  std::ofstream out_;
  bool row_started_ = false;
};

/// Format a double with fixed precision (default 6 significant decimals,
/// trailing zeros trimmed) — keeps CSV diffs stable across platforms.
[[nodiscard]] std::string format_double(double v, int decimals = 6);

}  // namespace tribvote::util
