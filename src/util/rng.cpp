#include "util/rng.hpp"

#include <cassert>
#include <cmath>
#include <numbers>

namespace tribvote::util {

std::uint64_t splitmix64(std::uint64_t& state) noexcept {
  std::uint64_t z = (state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

namespace {
[[nodiscard]] constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

Rng::Rng(std::uint64_t seed) noexcept : seed_(seed) {
  std::uint64_t sm = seed;
  for (auto& word : s_) word = splitmix64(sm);
}

Rng::result_type Rng::operator()() noexcept {
  const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const std::uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

std::uint64_t Rng::next_below(std::uint64_t bound) noexcept {
  assert(bound > 0);
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = (*this)();
  __uint128_t m = static_cast<__uint128_t>(x) * bound;
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = (*this)();
      m = static_cast<__uint128_t>(x) * bound;
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

std::int64_t Rng::next_int(std::int64_t lo, std::int64_t hi) noexcept {
  assert(lo <= hi);
  const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
  return lo + static_cast<std::int64_t>(next_below(span));
}

double Rng::next_double() noexcept {
  // 53 high bits -> uniform in [0, 1) with full double precision.
  return static_cast<double>((*this)() >> 11) * 0x1.0p-53;
}

double Rng::next_double(double lo, double hi) noexcept {
  return lo + (hi - lo) * next_double();
}

bool Rng::next_bool(double p) noexcept {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return next_double() < p;
}

double Rng::next_exponential(double mean) noexcept {
  assert(mean > 0.0);
  double u = next_double();
  // Avoid log(0); next_double() is in [0,1) so 1-u is in (0,1].
  return -mean * std::log(1.0 - u);
}

double Rng::next_normal() noexcept {
  // Box–Muller; draws two uniforms, returns one normal (simple and branch-free
  // enough for our use — normals are not on any hot path).
  double u1 = next_double();
  while (u1 == 0.0) u1 = next_double();
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) *
         std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::next_lognormal(double mu, double sigma) noexcept {
  return std::exp(mu + sigma * next_normal());
}

std::vector<std::size_t> Rng::sample_indices(std::size_t n,
                                             std::size_t k) noexcept {
  assert(k <= n);
  // Partial Fisher–Yates over an index array: O(n) setup, exact.
  std::vector<std::size_t> idx(n);
  for (std::size_t i = 0; i < n; ++i) idx[i] = i;
  for (std::size_t i = 0; i < k; ++i) {
    const std::size_t j = i + next_below(n - i);
    std::swap(idx[i], idx[j]);
  }
  idx.resize(k);
  return idx;
}

Rng Rng::derive(std::uint64_t key) const noexcept {
  std::uint64_t sm = seed_ ^ (key * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  const std::uint64_t child_seed = splitmix64(sm);
  return Rng{child_seed};
}

}  // namespace tribvote::util
