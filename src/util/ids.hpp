// Strongly-typed identifiers shared across subsystems.
#pragma once

#include <cstdint>
#include <limits>

namespace tribvote {

/// Index of a peer in the population (dense, assigned at scenario setup).
using PeerId = std::uint32_t;

/// Index of a swarm (one .torrent) in the scenario.
using SwarmId = std::uint32_t;

/// Moderators are peers; a ModeratorId is the PeerId of the peer that
/// creates moderations. Kept as a distinct alias for readability.
using ModeratorId = std::uint32_t;

inline constexpr PeerId kInvalidPeer = std::numeric_limits<PeerId>::max();
inline constexpr SwarmId kInvalidSwarm = std::numeric_limits<SwarmId>::max();
inline constexpr ModeratorId kInvalidModerator =
    std::numeric_limits<ModeratorId>::max();

}  // namespace tribvote
