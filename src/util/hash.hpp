// Small non-cryptographic hashing utilities used for message digests inside
// the simulator and for hash-map key mixing. (Cryptographic signing lives in
// src/crypto; these hashes are only inputs to it or plain identifiers.)
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

namespace tribvote::util {

/// FNV-1a 64-bit over raw bytes.
[[nodiscard]] std::uint64_t fnv1a64(std::span<const std::byte> data) noexcept;

/// FNV-1a 64-bit over a string view.
[[nodiscard]] std::uint64_t fnv1a64(std::string_view s) noexcept;

/// Strong 64-bit finalizer (MurmurHash3 fmix64). Good avalanche; used to
/// derive message digests from structured fields.
[[nodiscard]] std::uint64_t mix64(std::uint64_t x) noexcept;

/// Order-dependent combination of two 64-bit hashes.
[[nodiscard]] std::uint64_t hash_combine(std::uint64_t a,
                                         std::uint64_t b) noexcept;

/// Convenience: fold a list of 64-bit fields into one digest.
[[nodiscard]] std::uint64_t digest_fields(
    std::initializer_list<std::uint64_t> fields) noexcept;

}  // namespace tribvote::util
