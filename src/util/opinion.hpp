// A user's opinion of a moderator — the atom both ModerationCast (spreading
// gates on approval) and the vote-sampling layer (votes are opinions bound
// to moderators) operate on.
#pragma once

#include <cstdint>

namespace tribvote {

enum class Opinion : std::int8_t {
  kNegative = -1,  ///< thumbs-down: disapprove (spam)
  kNone = 0,       ///< no vote cast
  kPositive = 1,   ///< thumbs-up: approve (quality)
};

/// Numeric value for vote summation (+1 / 0 / -1).
[[nodiscard]] constexpr int opinion_value(Opinion o) noexcept {
  return static_cast<int>(o);
}

}  // namespace tribvote
