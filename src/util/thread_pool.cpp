#include "util/thread_pool.hpp"

#include <algorithm>

namespace tribvote::util {

ThreadPool::ThreadPool(std::size_t threads) {
  if (threads == 0) {
    threads = std::max<std::size_t>(1, std::thread::hardware_concurrency());
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i) {
    workers_.emplace_back([this] { worker_loop(); });
  }
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard lock(mutex_);
    stop_ = true;
  }
  cv_.notify_all();
  for (auto& w : workers_) w.join();
}

void ThreadPool::worker_loop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock lock(mutex_);
      cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) {
        if (stop_) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop();
    }
    task();
  }
}

void ThreadPool::parallel_for(std::size_t n,
                              const std::function<void(std::size_t)>& fn) {
  std::vector<std::future<void>> futures;
  futures.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    futures.push_back(submit([&fn, i] { fn(i); }));
  }
  for (auto& f : futures) f.get();  // propagate first exception
}

}  // namespace tribvote::util
