#include "util/hash.hpp"

namespace tribvote::util {

namespace {
constexpr std::uint64_t kFnvOffset = 0xcbf29ce484222325ULL;
constexpr std::uint64_t kFnvPrime = 0x100000001b3ULL;
}  // namespace

std::uint64_t fnv1a64(std::span<const std::byte> data) noexcept {
  std::uint64_t h = kFnvOffset;
  for (std::byte b : data) {
    h ^= static_cast<std::uint64_t>(b);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t fnv1a64(std::string_view s) noexcept {
  std::uint64_t h = kFnvOffset;
  for (char c : s) {
    h ^= static_cast<unsigned char>(c);
    h *= kFnvPrime;
  }
  return h;
}

std::uint64_t mix64(std::uint64_t x) noexcept {
  x ^= x >> 33;
  x *= 0xff51afd7ed558ccdULL;
  x ^= x >> 33;
  x *= 0xc4ceb9fe1a85ec53ULL;
  x ^= x >> 33;
  return x;
}

std::uint64_t hash_combine(std::uint64_t a, std::uint64_t b) noexcept {
  // Boost-style combine with 64-bit golden-ratio constant, then finalize.
  return mix64(a ^ (b + 0x9e3779b97f4a7c15ULL + (a << 12) + (a >> 4)));
}

std::uint64_t digest_fields(
    std::initializer_list<std::uint64_t> fields) noexcept {
  std::uint64_t h = kFnvOffset;
  for (std::uint64_t f : fields) h = hash_combine(h, f);
  return h;
}

}  // namespace tribvote::util
