// Deterministic random number generation.
//
// Every stochastic component in the simulator draws from an explicitly
// seeded generator so a run is reproducible bit-for-bit from its seed, and
// replicas running on different threads never share generator state.
#pragma once

#include <array>
#include <cstdint>
#include <vector>

namespace tribvote::util {

/// SplitMix64: used for seeding and cheap stateless mixing.
/// Reference: Steele, Lea, Flood — "Fast splittable pseudorandom number
/// generators" (OOPSLA 2014).
[[nodiscard]] std::uint64_t splitmix64(std::uint64_t& state) noexcept;

/// Xoshiro256** — fast, high-quality 64-bit PRNG (Blackman & Vigna).
/// Satisfies the C++ UniformRandomBitGenerator concept so it can drive
/// <random> distributions, but the helpers below avoid distribution
/// objects for speed and cross-platform determinism.
class Rng {
 public:
  using result_type = std::uint64_t;

  /// Seeds the four words of state from `seed` via SplitMix64.
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) noexcept;

  [[nodiscard]] static constexpr result_type min() noexcept { return 0; }
  [[nodiscard]] static constexpr result_type max() noexcept {
    return ~result_type{0};
  }

  /// Next raw 64-bit draw.
  result_type operator()() noexcept;

  /// Uniform integer in [0, bound). `bound` must be > 0.
  /// Uses Lemire's multiply-shift rejection method (unbiased).
  [[nodiscard]] std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  [[nodiscard]] std::int64_t next_int(std::int64_t lo, std::int64_t hi) noexcept;

  /// Uniform double in [0, 1).
  [[nodiscard]] double next_double() noexcept;

  /// Uniform double in [lo, hi).
  [[nodiscard]] double next_double(double lo, double hi) noexcept;

  /// Bernoulli draw with success probability p (clamped to [0,1]).
  [[nodiscard]] bool next_bool(double p) noexcept;

  /// Exponential variate with the given mean (> 0).
  [[nodiscard]] double next_exponential(double mean) noexcept;

  /// Log-normal variate parameterized by the log-space mu/sigma.
  [[nodiscard]] double next_lognormal(double mu, double sigma) noexcept;

  /// Standard normal variate (Box–Muller, one value per call).
  [[nodiscard]] double next_normal() noexcept;

  /// Fisher–Yates shuffle of a vector.
  template <typename T>
  void shuffle(std::vector<T>& v) noexcept {
    for (std::size_t i = v.size(); i > 1; --i) {
      using std::swap;
      swap(v[i - 1], v[next_below(i)]);
    }
  }

  /// Draw k distinct indices from [0, n) (k <= n), in random order.
  [[nodiscard]] std::vector<std::size_t> sample_indices(std::size_t n,
                                                        std::size_t k) noexcept;

  /// Derive an independent child generator; the child stream is a pure
  /// function of (parent seed, key), not of how many draws the parent made.
  [[nodiscard]] Rng derive(std::uint64_t key) const noexcept;

 private:
  std::array<std::uint64_t, 4> s_{};
  std::uint64_t seed_ = 0;  // retained for derive()
};

}  // namespace tribvote::util
