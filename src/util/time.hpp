// Simulated-time types shared by every subsystem.
//
// The simulator runs on integral seconds: the paper's protocols operate on
// periods of seconds to minutes over a 7-day horizon, so one-second
// resolution is exact for every experiment while keeping event ordering
// total and deterministic.
#pragma once

#include <cstdint>
#include <string>

namespace tribvote {

/// Simulated time in whole seconds since the start of the run.
using Time = std::int64_t;

/// Duration in whole seconds.
using Duration = std::int64_t;

inline constexpr Duration kSecond = 1;
inline constexpr Duration kMinute = 60;
inline constexpr Duration kHour = 3600;
inline constexpr Duration kDay = 86400;

/// Convert a simulated time to fractional hours (convenient for plotting
/// against the paper's x-axes, which are in hours).
[[nodiscard]] constexpr double to_hours(Time t) noexcept {
  return static_cast<double>(t) / static_cast<double>(kHour);
}

/// Render a time as "DDd HH:MM:SS" for logs and reports.
[[nodiscard]] inline std::string format_time(Time t) {
  const Time d = t / kDay;
  const Time h = (t % kDay) / kHour;
  const Time m = (t % kHour) / kMinute;
  const Time s = t % kMinute;
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lldd %02lld:%02lld:%02lld",
                static_cast<long long>(d), static_cast<long long>(h),
                static_cast<long long>(m), static_cast<long long>(s));
  return buf;
}

}  // namespace tribvote
