#include "util/csv.hpp"

#include <cstdio>

namespace tribvote::util {

CsvWriter::CsvWriter(const std::string& path) : out_(path) {}

void CsvWriter::put_field(std::string_view v) {
  if (row_started_) out_ << ',';
  row_started_ = true;
  const bool needs_quote =
      v.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) {
    out_ << v;
    return;
  }
  out_ << '"';
  for (char c : v) {
    if (c == '"') out_ << '"';
    out_ << c;
  }
  out_ << '"';
}

void CsvWriter::write_row(std::initializer_list<std::string_view> fields) {
  for (auto f : fields) put_field(f);
  end_row();
}

void CsvWriter::write_row(const std::vector<std::string>& fields) {
  for (const auto& f : fields) put_field(f);
  end_row();
}

CsvWriter& CsvWriter::field(std::string_view v) {
  put_field(v);
  return *this;
}

CsvWriter& CsvWriter::field(double v) {
  put_field(format_double(v));
  return *this;
}

CsvWriter& CsvWriter::field(long long v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "%lld", v);
  put_field(buf);
  return *this;
}

void CsvWriter::end_row() {
  out_ << '\n';
  row_started_ = false;
}

std::string format_double(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  std::string s = buf;
  if (s.find('.') != std::string::npos) {
    while (!s.empty() && s.back() == '0') s.pop_back();
    if (!s.empty() && s.back() == '.') s.pop_back();
  }
  return s;
}

}  // namespace tribvote::util
