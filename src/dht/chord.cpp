#include "dht/chord.hpp"

#include <algorithm>
#include <bit>
#include <cassert>

#include "util/hash.hpp"

namespace tribvote::dht {

Key key_of_peer(PeerId peer) noexcept {
  return util::mix64(0x9e3779b97f4a7c15ULL ^ peer);
}

bool in_interval(Key x, Key from, Key to) noexcept {
  // Half-open clockwise (from, to]; degenerate from == to covers the whole
  // ring (a single-node ring is responsible for everything).
  if (from == to) return true;
  if (from < to) return x > from && x <= to;
  return x > from || x <= to;  // interval wraps zero
}

ChordRing::ChordRing(std::size_t n_peers, ChordConfig config, util::Rng rng)
    : config_(config), rng_(rng), peer_keys_(n_peers), nodes_(n_peers) {
  for (PeerId p = 0; p < n_peers; ++p) {
    peer_keys_[p] = key_of_peer(p);
    nodes_[p].fingers.assign(64, kInvalidPeer);
  }
}

PeerId ChordRing::responsible_for(Key key) const {
  if (ring_.empty()) return kInvalidPeer;
  const auto it = ring_.lower_bound(key);
  return it == ring_.end() ? ring_.begin()->second : it->second;
}

PeerId ChordRing::successor_of(PeerId peer) const {
  const auto& succ = nodes_[peer].successors;
  for (const PeerId s : succ) {
    if (online_.contains(s)) return s;
  }
  return kInvalidPeer;
}

void ChordRing::bootstrap_node(PeerId peer) {
  // A joining node learns its place from the (ground-truth) ring via a
  // bootstrap lookup — O(log n) messages in a real deployment.
  NodeState& state = nodes_[peer];
  state.successors.clear();
  state.fingers.assign(64, kInvalidPeer);
  state.next_finger = 0;
  messages_ += 1 + static_cast<std::uint64_t>(
                       std::bit_width(std::max<std::size_t>(1, ring_.size())));
  auto it = ring_.upper_bound(peer_keys_[peer]);
  for (std::size_t i = 0; i < config_.successor_list && !ring_.empty();
       ++i) {
    if (it == ring_.end()) it = ring_.begin();
    if (it->second == peer) break;  // wrapped all the way around
    state.successors.push_back(it->second);
    ++it;
  }
}

void ChordRing::join(PeerId peer) {
  assert(peer < nodes_.size());
  if (online_.contains(peer)) return;
  bootstrap_node(peer);
  online_.insert(peer);
  ring_.emplace(peer_keys_[peer], peer);
  // Keys this node is now responsible for migrate to it on neighbouring
  // nodes' next stabilization (handled by replicate_held), not instantly —
  // churn windows are exactly where DHTs lose data.
}

void ChordRing::leave(PeerId peer) {
  if (!online_.contains(peer)) return;
  online_.erase(peer);
  ring_.erase(peer_keys_[peer]);
  // Ungraceful: held keys vanish with the node; its replicas survive on
  // whichever successors got them.
  nodes_[peer].held.clear();
}

void ChordRing::fix_successors(PeerId peer) {
  NodeState& state = nodes_[peer];
  // Probe the successor list; drop dead entries (each probe = 1 message).
  std::vector<PeerId> alive;
  for (const PeerId s : state.successors) {
    ++messages_;
    if (online_.contains(s)) alive.push_back(s);
  }
  // Refill from the first live successor's view (ground truth stand-in for
  // the successor-list copy a real node requests — 1 message).
  ++messages_;
  auto it = ring_.upper_bound(peer_keys_[peer]);
  alive.clear();
  for (std::size_t i = 0; i < config_.successor_list; ++i) {
    if (ring_.empty()) break;
    if (it == ring_.end()) it = ring_.begin();
    if (it->second == peer) break;
    alive.push_back(it->second);
    ++it;
  }
  state.successors = std::move(alive);
}

void ChordRing::replicate_held(PeerId peer) {
  NodeState& state = nodes_[peer];
  if (state.held.empty()) return;
  // The replica set of a key is its owner plus the owner's (replication-1)
  // immediate online successors. Push the key to set members that lack it;
  // drop it if this node is no longer in the set (responsibility moved).
  std::vector<Key> to_drop;
  for (const Key key : state.held) {
    const PeerId owner = responsible_for(key);
    if (owner == kInvalidPeer) continue;
    std::vector<PeerId> replica_set{owner};
    auto it = ring_.upper_bound(peer_keys_[owner]);
    while (replica_set.size() < config_.replication && !ring_.empty()) {
      if (it == ring_.end()) it = ring_.begin();
      if (it->second == owner) break;  // wrapped: ring smaller than r
      replica_set.push_back(it->second);
      ++it;
    }
    bool member = false;
    for (const PeerId r : replica_set) {
      if (r == peer) {
        member = true;
        continue;
      }
      if (nodes_[r].held.insert(key).second) ++messages_;
    }
    if (!member) to_drop.push_back(key);
  }
  for (const Key key : to_drop) state.held.erase(key);
}

void ChordRing::stabilize_round() {
  // Deterministic order over online nodes.
  std::vector<PeerId> order(online_.begin(), online_.end());
  std::sort(order.begin(), order.end());
  for (const PeerId peer : order) {
    NodeState& state = nodes_[peer];
    fix_successors(peer);
    // Refresh a few finger entries per round (classic round-robin).
    for (int f = 0; f < config_.fingers_per_round; ++f) {
      const int idx = state.next_finger;
      state.next_finger = (state.next_finger + 7) % 64;  // stride the table
      const Key target =
          peer_keys_[peer] + (Key{1} << idx);  // wraps mod 2^64
      state.fingers[static_cast<std::size_t>(idx)] = responsible_for(target);
      ++messages_;  // the find_successor for the finger
    }
    replicate_held(peer);
  }
}

PeerId ChordRing::closest_preceding(const NodeState& state, PeerId self,
                                    Key key) const {
  // Scan fingers from the top: the farthest node strictly between self and
  // key (classic Chord routing). Falls back to the successor list.
  for (int i = 63; i >= 0; --i) {
    const PeerId f = state.fingers[static_cast<std::size_t>(i)];
    if (f == kInvalidPeer || f == self) continue;
    if (in_interval(peer_keys_[f], peer_keys_[self], key) &&
        peer_keys_[f] != key) {
      return f;
    }
  }
  for (const PeerId s : state.successors) {
    if (s != self && in_interval(peer_keys_[s], peer_keys_[self], key)) {
      return s;
    }
  }
  return state.successors.empty() ? kInvalidPeer : state.successors.front();
}

LookupResult ChordRing::lookup(PeerId origin, Key key) {
  LookupResult result;
  if (!online_.contains(origin)) return result;
  PeerId current = origin;
  for (std::size_t hop = 0; hop < config_.max_hops; ++hop) {
    if (nodes_[current].held.contains(key)) {
      result.success = true;
      result.holder = current;
      result.hops = hop;
      messages_ += hop;
      return result;
    }
    const NodeState& state = nodes_[current];
    PeerId next = closest_preceding(state, current, key);
    // Dead or useless next hop: try live successors before giving up —
    // each failed dial costs a message.
    if (next == kInvalidPeer || !online_.contains(next) || next == current) {
      ++messages_;
      next = kInvalidPeer;
      for (const PeerId s : state.successors) {
        if (online_.contains(s) && s != current) {
          next = s;
          break;
        }
      }
      if (next == kInvalidPeer) break;  // routing dead end
    }
    current = next;
  }
  result.hops = config_.max_hops;
  messages_ += result.hops;
  return result;
}

bool ChordRing::store(PeerId origin, Key key) {
  if (!online_.contains(origin)) return false;
  const PeerId owner = responsible_for(key);
  if (owner == kInvalidPeer) return false;
  // Route to the owner (costs a lookup-like walk), then place replicas.
  messages_ += static_cast<std::uint64_t>(
      std::bit_width(std::max<std::size_t>(1, ring_.size())));
  nodes_[owner].held.insert(key);
  std::size_t replicas = 1;
  for (const PeerId s : nodes_[owner].successors) {
    if (replicas >= config_.replication) break;
    if (!online_.contains(s)) continue;
    nodes_[s].held.insert(key);
    ++messages_;
    ++replicas;
  }
  return true;
}

bool ChordRing::key_alive(Key key) const {
  for (const PeerId p : online_) {
    if (nodes_[p].held.contains(key)) return true;
  }
  return false;
}

}  // namespace tribvote::dht
