// Baseline: Chord-style DHT storage for metadata — the design the paper
// rejected for ModerationCast (§II):
//
//   "We could have stored metadata in a Distributed Hash Table but these
//    require explicit leave and join operations which are costly in
//    systems with high churn [14]. Additionally, search performance is
//    considerably enhanced if metadata is stored locally because it is
//    not necessary to perform multi-hop look-ups."
//
// This implements the relevant mechanics of Chord (Stoica et al. [14]):
// a 64-bit identifier ring, per-node successor lists and finger tables
// maintained by periodic stabilization, greedy closest-preceding-finger
// routing, and a key/value layer with successor-list replication. Nodes
// route using their own — possibly stale — tables, so churn manifests as
// maintenance message cost, routing failures, and data loss when all
// replicas of a key leave between stabilizations. The abl_dht_vs_gossip
// bench replays the paper's traces through this ring and through
// ModerationCast and compares the two quantitatively.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"

namespace tribvote::dht {

/// Position on the identifier ring.
using Key = std::uint64_t;

/// A peer's ring identifier (hash of its PeerId — stand-in for hashing its
/// public key, as deployed DHTs do).
[[nodiscard]] Key key_of_peer(PeerId peer) noexcept;

/// Is `x` in the half-open clockwise interval (from, to] on the ring?
[[nodiscard]] bool in_interval(Key x, Key from, Key to) noexcept;

struct ChordConfig {
  std::size_t successor_list = 4;  ///< r successors kept per node
  std::size_t replication = 2;     ///< replicas per stored key
  int fingers_per_round = 4;       ///< finger entries refreshed per round
  std::size_t max_hops = 64;       ///< routing TTL
};

/// Result of one routed lookup.
struct LookupResult {
  bool success = false;
  PeerId holder = kInvalidPeer;  ///< node that served the value
  std::size_t hops = 0;          ///< routing messages spent
};

class ChordRing {
 public:
  ChordRing(std::size_t n_peers, ChordConfig config, util::Rng rng);

  /// Node lifecycle. Join bootstraps routing state from any online node
  /// (costing messages); leave is ungraceful (crash/churn) — other nodes
  /// only find out through stabilization.
  void join(PeerId peer);
  void leave(PeerId peer);
  [[nodiscard]] bool is_online(PeerId peer) const {
    return online_.contains(peer);
  }
  [[nodiscard]] std::size_t online_count() const noexcept {
    return online_.size();
  }

  /// One stabilization round for every online node: fix successors,
  /// refresh fingers, re-replicate keys whose responsibility moved.
  void stabilize_round();

  /// Store a value (we track keys only) starting from `origin`: routes to
  /// the responsible node, replicates along its successor list.
  /// Returns false when routing failed.
  bool store(PeerId origin, Key key);

  /// Route from `origin` toward `key` using the nodes' own (possibly
  /// stale) tables; succeeds when a live replica holder is reached.
  [[nodiscard]] LookupResult lookup(PeerId origin, Key key);

  /// Maintenance + routing messages spent so far (join, stabilize,
  /// replication, lookups all count — the DHT's bandwidth bill).
  [[nodiscard]] std::uint64_t messages() const noexcept { return messages_; }

  /// Ground truth: the online node responsible for `key` (its successor
  /// on the ring); kInvalidPeer when the ring is empty.
  [[nodiscard]] PeerId responsible_for(Key key) const;

  /// Diagnostics: a node's current successor (kInvalidPeer when isolated).
  [[nodiscard]] PeerId successor_of(PeerId peer) const;
  /// Does any live node still hold `key`?
  [[nodiscard]] bool key_alive(Key key) const;

 private:
  struct NodeState {
    std::vector<PeerId> successors;  // nearest first
    std::vector<PeerId> fingers;     // 64 entries, finger i covers +2^i
    int next_finger = 0;
    std::unordered_set<Key> held;    // keys (replicas) stored here
  };

  void bootstrap_node(PeerId peer);
  [[nodiscard]] PeerId closest_preceding(const NodeState& state, PeerId self,
                                         Key key) const;
  void fix_successors(PeerId peer);
  void replicate_held(PeerId peer);

  ChordConfig config_;
  util::Rng rng_;
  std::vector<Key> peer_keys_;
  std::vector<NodeState> nodes_;
  std::unordered_set<PeerId> online_;
  // Ground-truth ring of online nodes: key -> peer (keys are unique with
  // overwhelming probability; collisions would be a bug caught in tests).
  std::map<Key, PeerId> ring_;
  std::uint64_t messages_ = 0;
};

}  // namespace tribvote::dht
