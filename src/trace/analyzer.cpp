#include "trace/analyzer.hpp"

#include <algorithm>
#include <vector>

namespace tribvote::trace {

TraceStats analyze(const Trace& trace) {
  TraceStats st;
  st.n_peers = trace.peers.size();
  st.n_swarms = trace.swarms.size();
  st.n_sessions = trace.sessions.size();
  st.n_joins = trace.joins.size();
  st.n_events = trace.event_count();
  if (trace.peers.empty()) return st;

  std::size_t free_riders = 0, connectable = 0;
  for (const auto& peer : trace.peers) {
    if (peer.behavior == Behavior::kFreeRider) ++free_riders;
    if (peer.connectable) ++connectable;
  }
  st.free_rider_fraction =
      static_cast<double>(free_riders) / static_cast<double>(st.n_peers);
  st.connectable_fraction =
      static_cast<double>(connectable) / static_cast<double>(st.n_peers);

  double total_online_seconds = 0;
  std::vector<double> per_peer_online(st.n_peers, 0.0);
  for (const auto& session : trace.sessions) {
    const auto len = static_cast<double>(session.end - session.start);
    total_online_seconds += len;
    per_peer_online[session.peer] += len;
  }
  const auto horizon = static_cast<double>(trace.duration);
  st.avg_online_fraction =
      total_online_seconds / (horizon * static_cast<double>(st.n_peers));
  st.mean_session_hours =
      st.n_sessions == 0
          ? 0.0
          : total_online_seconds /
                (3600.0 * static_cast<double>(st.n_sessions));
  st.mean_sessions_per_peer =
      static_cast<double>(st.n_sessions) / static_cast<double>(st.n_peers);
  st.mean_joins_per_peer =
      static_cast<double>(st.n_joins) / static_cast<double>(st.n_peers);

  std::size_t rare = 0;
  for (double online : per_peer_online) {
    if (online < 0.05 * horizon) ++rare;
  }
  st.rare_peer_fraction =
      static_cast<double>(rare) / static_cast<double>(st.n_peers);
  return st;
}

std::vector<PeerId> earliest_arrivals(const Trace& trace, std::size_t n) {
  // First session start per peer (peers without sessions sort last).
  std::vector<Time> first_session(trace.peers.size(),
                                  trace.duration + 1);
  for (const auto& s : trace.sessions) {
    first_session[s.peer] = std::min(first_session[s.peer], s.start);
  }
  std::vector<PeerId> ids(trace.peers.size());
  for (PeerId p = 0; p < trace.peers.size(); ++p) ids[p] = p;
  std::sort(ids.begin(), ids.end(), [&](PeerId a, PeerId b) {
    if (trace.peers[a].arrival != trace.peers[b].arrival) {
      return trace.peers[a].arrival < trace.peers[b].arrival;
    }
    if (first_session[a] != first_session[b]) {
      return first_session[a] < first_session[b];
    }
    return a < b;
  });
  ids.resize(std::min(n, ids.size()));
  return ids;
}

std::size_t online_count(const Trace& trace, Time t) {
  return static_cast<std::size_t>(std::count_if(
      trace.sessions.begin(), trace.sessions.end(),
      [t](const Session& s) { return s.start <= t && t < s.end; }));
}

}  // namespace tribvote::trace
