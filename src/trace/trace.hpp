// Trace schema.
//
// The paper drives its simulations from filelist.org tracker traces: per-peer
// session uptimes/downtimes, connectability, swarm memberships and file
// sizes over a 7-day window (100 peers, ≈23k events, ≈50 % average online,
// ≈25 % free-riders). That dataset is not available offline, so this module
// defines the trace schema those experiments consume plus (in generator.hpp)
// a synthetic generator calibrated to the published aggregate statistics.
// Real traces in the same schema load through trace::read_trace (io.hpp).
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.hpp"
#include "util/time.hpp"

namespace tribvote::trace {

/// How a peer behaves once it finishes a download.
enum class Behavior : std::uint8_t {
  kAltruist,   ///< keeps seeding until its session ends
  kFreeRider,  ///< leaves the swarm immediately after completing
};

/// Static per-peer attributes recorded by the tracker.
struct PeerProfile {
  PeerId id = kInvalidPeer;
  bool connectable = true;  ///< false = behind a NAT/firewall
  Behavior behavior = Behavior::kAltruist;
  double upload_kbps = 512.0;     ///< upload capacity (kilobytes/s)
  double download_kbps = 2048.0;  ///< download capacity (kilobytes/s)
  Time arrival = 0;               ///< first time this identity appears
};

/// One contiguous online interval of a peer: [start, end).
struct Session {
  PeerId peer = kInvalidPeer;
  Time start = 0;
  Time end = 0;
};

/// One shared file (.torrent) and its bootstrap seeder.
struct SwarmSpec {
  SwarmId id = kInvalidSwarm;
  std::int64_t size_mb = 0;     ///< file size in MB
  std::int64_t piece_kb = 1024; ///< piece size in KB
  Time created = 0;
  PeerId initial_seeder = kInvalidPeer;

  [[nodiscard]] std::int64_t piece_count() const noexcept {
    const std::int64_t size_kb = size_mb * 1024;
    return (size_kb + piece_kb - 1) / piece_kb;
  }
};

/// A peer deciding to download a swarm's file at a given time.
struct SwarmJoin {
  PeerId peer = kInvalidPeer;
  SwarmId swarm = kInvalidSwarm;
  Time at = 0;
};

/// A full 7-day trace: the unit the experiment harness replays.
struct Trace {
  Duration duration = 7 * kDay;
  std::uint64_t seed = 0;  ///< generator seed (0 for imported real traces)
  std::vector<PeerProfile> peers;
  std::vector<SwarmSpec> swarms;
  std::vector<Session> sessions;  ///< sorted by start time
  std::vector<SwarmJoin> joins;   ///< sorted by time

  [[nodiscard]] std::size_t peer_count() const noexcept {
    return peers.size();
  }

  /// Tracker events: a session contributes a start and an end event, a swarm
  /// join one event. This is the count the paper's "≈23,000 unique events"
  /// refers to.
  [[nodiscard]] std::size_t event_count() const noexcept {
    return 2 * sessions.size() + joins.size();
  }
};

}  // namespace tribvote::trace
