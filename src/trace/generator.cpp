#include "trace/generator.hpp"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "util/rng.hpp"

namespace tribvote::trace {

namespace {

/// Altruist upload capacity draw, clamped to [16 KB/s, 2 MB/s].
[[nodiscard]] double rng_clamped_upload(util::Rng& rng,
                                        const GeneratorParams& p) {
  return std::clamp(rng.next_lognormal(p.upload_mu, p.upload_sigma), 16.0,
                    2048.0);
}

/// Draw a session length, clamped to a sane range (2 min .. 24 h).
[[nodiscard]] Duration draw_session(util::Rng& rng,
                                    const GeneratorParams& p) {
  const double s = rng.next_lognormal(p.session_mu, p.session_sigma);
  return std::clamp<Duration>(static_cast<Duration>(s), 2 * kMinute, kDay);
}

}  // namespace

Trace generate_trace(const GeneratorParams& p, std::uint64_t seed) {
  assert(p.n_peers > 0 && p.n_swarms > 0 && p.duration > 0);
  util::Rng root(seed);
  util::Rng peer_rng = root.derive(1);
  util::Rng swarm_rng = root.derive(2);
  util::Rng session_rng = root.derive(3);
  util::Rng join_rng = root.derive(4);

  Trace tr;
  tr.duration = p.duration;
  tr.seed = seed;

  // ---- peers -------------------------------------------------------------
  tr.peers.reserve(p.n_peers);
  std::vector<double> duty(p.n_peers);
  for (PeerId id = 0; id < p.n_peers; ++id) {
    PeerProfile peer;
    peer.id = id;
    peer.connectable = peer_rng.next_bool(p.connectable_fraction);
    peer.behavior = peer_rng.next_bool(p.free_rider_fraction)
                        ? Behavior::kFreeRider
                        : Behavior::kAltruist;
    const double up = peer.behavior == Behavior::kFreeRider
                          ? p.free_rider_upload_kbps
                          : rng_clamped_upload(peer_rng, p);
    peer.upload_kbps = up;
    peer.download_kbps =
        std::max(up, p.download_multiplier *
                         peer_rng.next_lognormal(p.upload_mu, p.upload_sigma));
    peer.arrival = peer_rng.next_bool(p.founder_fraction)
                       ? Time{0}
                       : static_cast<Time>(peer_rng.next_double() *
                                           p.arrival_window *
                                           static_cast<double>(p.duration));
    duty[id] = peer_rng.next_bool(p.rare_fraction)
                   ? p.rare_duty
                   : peer_rng.next_double(p.duty_lo, p.duty_hi);
    tr.peers.push_back(peer);
  }

  // ---- swarms ------------------------------------------------------------
  // Initial seeders must exist from swarm creation: pick high-duty,
  // connectable, altruist founders.
  std::vector<PeerId> seeder_pool;
  for (const auto& peer : tr.peers) {
    if (peer.arrival == 0 && peer.connectable &&
        peer.behavior == Behavior::kAltruist && duty[peer.id] > 0.5) {
      seeder_pool.push_back(peer.id);
    }
  }
  if (seeder_pool.empty()) {
    // Degenerate parameterization; fall back to any founder.
    for (const auto& peer : tr.peers) {
      if (peer.arrival == 0) seeder_pool.push_back(peer.id);
    }
    if (seeder_pool.empty()) seeder_pool.push_back(0);
  }

  tr.swarms.reserve(p.n_swarms);
  for (SwarmId sid = 0; sid < p.n_swarms; ++sid) {
    SwarmSpec spec;
    spec.id = sid;
    spec.size_mb = swarm_rng.next_int(p.size_lo_mb, p.size_hi_mb);
    spec.piece_kb = p.piece_kb;
    spec.created = static_cast<Time>(swarm_rng.next_double() *
                                     p.swarm_creation_window *
                                     static_cast<double>(p.duration));
    spec.initial_seeder =
        seeder_pool[swarm_rng.next_below(seeder_pool.size())];
    tr.swarms.push_back(spec);
  }

  // ---- sessions: alternating on/off renewal process per peer -------------
  for (const auto& peer : tr.peers) {
    const double d = std::clamp(duty[peer.id], 0.01, 0.99);
    Time t = peer.arrival;
    // Random initial phase: start offline with probability (1 - duty).
    if (session_rng.next_bool(1.0 - d)) {
      const Duration first_session = draw_session(session_rng, p);
      const double off_mean =
          static_cast<double>(first_session) * (1.0 - d) / d;
      t += static_cast<Duration>(
          session_rng.next_exponential(std::max(60.0, off_mean)));
    }
    while (t < p.duration) {
      const Duration on = draw_session(session_rng, p);
      const Time end = std::min<Time>(t + on, p.duration);
      if (end > t) tr.sessions.push_back(Session{peer.id, t, end});
      // Offline gap calibrated so long-run online fraction equals the duty.
      const double off_mean = static_cast<double>(on) * (1.0 - d) / d;
      const auto off = static_cast<Duration>(
          session_rng.next_exponential(std::max(60.0, off_mean)));
      t = end + std::max<Duration>(off, kMinute);
    }
  }
  std::sort(tr.sessions.begin(), tr.sessions.end(),
            [](const Session& a, const Session& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.peer < b.peer;
            });

  // ---- swarm joins: Poisson over each session ----------------------------
  const double join_rate = p.joins_per_online_day / static_cast<double>(kDay);
  std::vector<std::vector<bool>> joined(
      p.n_peers, std::vector<bool>(p.n_swarms, false));
  for (const auto& session : tr.sessions) {
    Time t = session.start;
    for (;;) {
      t += static_cast<Duration>(
          join_rng.next_exponential(1.0 / join_rate));
      if (t >= session.end) break;
      // Candidate swarms: already created, not yet joined by this peer,
      // and not the one it seeds.
      std::vector<SwarmId> candidates;
      for (const auto& spec : tr.swarms) {
        if (spec.created <= t && !joined[session.peer][spec.id] &&
            spec.initial_seeder != session.peer) {
          candidates.push_back(spec.id);
        }
      }
      if (candidates.empty()) continue;
      const SwarmId pick = candidates[join_rng.next_below(candidates.size())];
      joined[session.peer][pick] = true;
      tr.joins.push_back(SwarmJoin{session.peer, pick, t});
    }
  }
  std::sort(tr.joins.begin(), tr.joins.end(),
            [](const SwarmJoin& a, const SwarmJoin& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.peer < b.peer;
            });

  return tr;
}

std::vector<Trace> generate_dataset(const GeneratorParams& params,
                                    std::uint64_t base_seed,
                                    std::size_t count) {
  std::vector<Trace> traces;
  traces.reserve(count);
  util::Rng root(base_seed);
  for (std::size_t i = 0; i < count; ++i) {
    // Derive well-separated per-trace seeds from the base seed.
    util::Rng child = root.derive(0x7261636573ULL + i);
    traces.push_back(generate_trace(params, child()));
  }
  return traces;
}

}  // namespace tribvote::trace
