// Synthetic trace generator calibrated to the filelist.org statistics the
// paper reports (DESIGN.md §2 documents the substitution):
//
//   * 100 unique peers over 7 days, ≈23,000 tracker events per trace
//   * ≈50 % of the population online at any time (high churn)
//   * ≈25 % of peers are free-riders that upload little
//   * per-swarm file sizes, firewalled vs connectable peers
//
// Each peer is an alternating on/off renewal process with a per-peer duty
// cycle; a minority of peers are "rarely present" (very low duty), matching
// the paper's observation that some nodes never enter the experienced core.
#pragma once

#include <cstdint>

#include "trace/trace.hpp"

namespace tribvote::trace {

/// Knobs for the generator. Defaults reproduce the paper's trace statistics;
/// tests assert the calibration (see tests/trace_generator_test.cpp).
struct GeneratorParams {
  std::uint32_t n_peers = 100;
  std::uint32_t n_swarms = 12;
  Duration duration = 7 * kDay;

  /// Fraction of identities present from t=0 ("founders"); the rest arrive
  /// uniformly over the first `arrival_window` of the trace.
  double founder_fraction = 0.6;
  double arrival_window = 0.25;  ///< fraction of duration

  /// Connectability: fraction of peers not behind a firewall.
  double connectable_fraction = 0.6;

  /// Fraction of peers that free-ride (leave right after completing).
  double free_rider_fraction = 0.25;

  /// Fraction of peers that are rarely present (duty cycle ≈ rare_duty).
  double rare_fraction = 0.10;
  double rare_duty = 0.05;

  /// Duty-cycle range for normal peers: uniform in [duty_lo, duty_hi]
  /// (mean ≈ 0.55 so that, combined with the rare peers, the average online
  /// fraction lands at ≈0.5, as in the traces).
  double duty_lo = 0.25;
  double duty_hi = 0.85;

  /// Session-length distribution (lognormal, seconds).
  double session_mu = 7.5;     ///< exp(7.5) ≈ 1800 s ≈ 30 min median
  double session_sigma = 0.9;

  /// Mean number of swarm joins per peer per online day.
  double joins_per_online_day = 6.0;

  /// Swarm file sizes: uniform in [size_lo_mb, size_hi_mb].
  std::int64_t size_lo_mb = 100;
  std::int64_t size_hi_mb = 700;
  std::int64_t piece_kb = 1024;

  /// Swarm creation times spread uniformly over this fraction of the trace.
  double swarm_creation_window = 0.02;

  /// Upload capacity (KB/s): lognormal around ~96 KB/s for altruists;
  /// free-riders get `free_rider_upload_kbps`.
  double upload_mu = 4.56;   ///< exp(4.56) ≈ 96 KB/s median
  double upload_sigma = 0.6;
  double free_rider_upload_kbps = 4.0;
  double download_multiplier = 8.0;  ///< download = multiplier × upload draw
};

/// Generate one trace. Deterministic in (params, seed).
[[nodiscard]] Trace generate_trace(const GeneratorParams& params,
                                   std::uint64_t seed);

/// Generate the standard experiment dataset: `count` independent traces with
/// seeds derived from `base_seed` (paper: 10 traces).
[[nodiscard]] std::vector<Trace> generate_dataset(
    const GeneratorParams& params, std::uint64_t base_seed,
    std::size_t count = 10);

}  // namespace tribvote::trace
