// Text serialization of traces.
//
// Line-oriented, whitespace-separated format so real tracker dumps can be
// converted into the schema and replayed through the same harness:
//
//   # comments and blank lines ignored
//   trace   <duration_s> <seed>
//   peer    <id> <connectable 0|1> <behavior A|F> <up_kbps> <down_kbps> <arrival_s>
//   swarm   <id> <size_mb> <piece_kb> <created_s> <seeder_peer>
//   session <peer> <start_s> <end_s>
//   join    <peer> <swarm> <time_s>
#pragma once

#include <iosfwd>
#include <stdexcept>
#include <string>

#include "trace/trace.hpp"

namespace tribvote::trace {

/// Raised by the reader on malformed input; message contains line number.
class TraceFormatError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

/// Serialize a trace to a stream / file.
void write_trace(std::ostream& out, const Trace& trace);
void write_trace_file(const std::string& path, const Trace& trace);

/// Parse a trace from a stream / file. Validates referential integrity
/// (sessions/joins refer to declared peers/swarms, start < end) and sorts
/// sessions and joins by time.
[[nodiscard]] Trace read_trace(std::istream& in);
[[nodiscard]] Trace read_trace_file(const std::string& path);

}  // namespace tribvote::trace
