#include "trace/io.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

namespace tribvote::trace {

void write_trace(std::ostream& out, const Trace& trace) {
  out << "# tribvote trace v1\n";
  out << "trace " << trace.duration << ' ' << trace.seed << '\n';
  for (const auto& peer : trace.peers) {
    out << "peer " << peer.id << ' ' << (peer.connectable ? 1 : 0) << ' '
        << (peer.behavior == Behavior::kFreeRider ? 'F' : 'A') << ' '
        << peer.upload_kbps << ' ' << peer.download_kbps << ' '
        << peer.arrival << '\n';
  }
  for (const auto& swarm : trace.swarms) {
    out << "swarm " << swarm.id << ' ' << swarm.size_mb << ' '
        << swarm.piece_kb << ' ' << swarm.created << ' '
        << swarm.initial_seeder << '\n';
  }
  for (const auto& session : trace.sessions) {
    out << "session " << session.peer << ' ' << session.start << ' '
        << session.end << '\n';
  }
  for (const auto& join : trace.joins) {
    out << "join " << join.peer << ' ' << join.swarm << ' ' << join.at
        << '\n';
  }
}

void write_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) throw TraceFormatError("cannot open for writing: " + path);
  write_trace(out, trace);
}

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  std::ostringstream msg;
  msg << "trace parse error at line " << line_no << ": " << what;
  throw TraceFormatError(msg.str());
}

}  // namespace

Trace read_trace(std::istream& in) {
  Trace tr;
  bool saw_header = false;
  std::string line;
  std::size_t line_no = 0;
  // Line numbers of records whose references can only be validated once
  // the whole file is read (errors must still name the offending line).
  std::vector<std::size_t> session_lines, join_lines, swarm_lines;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    // Every record after parsing must have consumed the whole line —
    // trailing tokens mean a malformed or truncated-and-rejoined file,
    // and silently ignoring them would mask real corruption.
    auto expect_end = [&] {
      std::string extra;
      if (ls >> extra) {
        fail(line_no, "trailing garbage '" + extra + "' after " + kind +
                          " record");
      }
    };
    if (kind == "trace") {
      if (saw_header) fail(line_no, "duplicate 'trace' header record");
      if (!(ls >> tr.duration >> tr.seed) || tr.duration <= 0) {
        fail(line_no, "bad trace header");
      }
      expect_end();
      saw_header = true;
      continue;
    }
    // Fail fast: the header carries the duration every other record is
    // validated against, so it must come first.
    if (!saw_header) {
      fail(line_no, "record before the 'trace' header");
    }
    if (kind == "peer") {
      PeerProfile peer;
      int connectable = 0;
      char behavior = 'A';
      if (!(ls >> peer.id >> connectable >> behavior >> peer.upload_kbps >>
            peer.download_kbps >> peer.arrival)) {
        fail(line_no, "bad peer record");
      }
      expect_end();
      if (behavior != 'A' && behavior != 'F') {
        fail(line_no, "behavior must be A or F");
      }
      // Peer ids index dense per-peer arrays downstream (population build,
      // capacity tables); a gap or permutation would be undefined behaviour
      // there, so it is a parse error here.
      if (peer.id != tr.peers.size()) {
        std::ostringstream what;
        what << "peer id " << peer.id << " out of order (expected "
             << tr.peers.size() << "; ids must be dense and ascending)";
        fail(line_no, what.str());
      }
      if (peer.upload_kbps < 0 || peer.download_kbps < 0) {
        fail(line_no, "peer capacities must be non-negative");
      }
      if (peer.arrival < 0) fail(line_no, "peer arrival must be >= 0");
      peer.connectable = connectable != 0;
      peer.behavior =
          behavior == 'F' ? Behavior::kFreeRider : Behavior::kAltruist;
      tr.peers.push_back(peer);
    } else if (kind == "swarm") {
      SwarmSpec spec;
      if (!(ls >> spec.id >> spec.size_mb >> spec.piece_kb >> spec.created >>
            spec.initial_seeder) ||
          spec.size_mb <= 0 || spec.piece_kb <= 0) {
        fail(line_no, "bad swarm record");
      }
      expect_end();
      if (spec.id != tr.swarms.size()) {
        std::ostringstream what;
        what << "swarm id " << spec.id << " out of order (expected "
             << tr.swarms.size() << "; ids must be dense and ascending)";
        fail(line_no, what.str());
      }
      if (spec.created < 0) fail(line_no, "swarm creation must be >= 0");
      tr.swarms.push_back(spec);
      swarm_lines.push_back(line_no);
    } else if (kind == "session") {
      Session session;
      if (!(ls >> session.peer >> session.start >> session.end) ||
          session.start >= session.end) {
        fail(line_no, "bad session record");
      }
      expect_end();
      if (session.start < 0) fail(line_no, "session start must be >= 0");
      tr.sessions.push_back(session);
      session_lines.push_back(line_no);
    } else if (kind == "join") {
      SwarmJoin join;
      if (!(ls >> join.peer >> join.swarm >> join.at)) {
        fail(line_no, "bad join record");
      }
      expect_end();
      if (join.at < 0) fail(line_no, "join time must be >= 0");
      tr.joins.push_back(join);
      join_lines.push_back(line_no);
    } else {
      fail(line_no, "unknown record kind '" + kind + "'");
    }
  }
  if (!saw_header) fail(line_no, "missing 'trace' header record");

  // Referential integrity, reported against the referring record's line.
  const auto n_peers = static_cast<PeerId>(tr.peers.size());
  const auto n_swarms = static_cast<SwarmId>(tr.swarms.size());
  for (std::size_t i = 0; i < tr.sessions.size(); ++i) {
    if (tr.sessions[i].peer >= n_peers) {
      fail(session_lines[i], "session refers to unknown peer");
    }
  }
  for (std::size_t i = 0; i < tr.joins.size(); ++i) {
    if (tr.joins[i].peer >= n_peers) {
      fail(join_lines[i], "join refers to unknown peer");
    }
    if (tr.joins[i].swarm >= n_swarms) {
      fail(join_lines[i], "join refers to unknown swarm");
    }
  }
  for (std::size_t i = 0; i < tr.swarms.size(); ++i) {
    if (tr.swarms[i].initial_seeder >= n_peers) {
      fail(swarm_lines[i], "swarm refers to unknown seeder");
    }
  }

  std::sort(tr.sessions.begin(), tr.sessions.end(),
            [](const Session& a, const Session& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.peer < b.peer;
            });
  std::sort(tr.joins.begin(), tr.joins.end(),
            [](const SwarmJoin& a, const SwarmJoin& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.peer < b.peer;
            });
  return tr;
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw TraceFormatError("cannot open for reading: " + path);
  return read_trace(in);
}

}  // namespace tribvote::trace
