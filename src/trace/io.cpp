#include "trace/io.hpp"

#include <algorithm>
#include <fstream>
#include <ostream>
#include <sstream>

namespace tribvote::trace {

void write_trace(std::ostream& out, const Trace& trace) {
  out << "# tribvote trace v1\n";
  out << "trace " << trace.duration << ' ' << trace.seed << '\n';
  for (const auto& peer : trace.peers) {
    out << "peer " << peer.id << ' ' << (peer.connectable ? 1 : 0) << ' '
        << (peer.behavior == Behavior::kFreeRider ? 'F' : 'A') << ' '
        << peer.upload_kbps << ' ' << peer.download_kbps << ' '
        << peer.arrival << '\n';
  }
  for (const auto& swarm : trace.swarms) {
    out << "swarm " << swarm.id << ' ' << swarm.size_mb << ' '
        << swarm.piece_kb << ' ' << swarm.created << ' '
        << swarm.initial_seeder << '\n';
  }
  for (const auto& session : trace.sessions) {
    out << "session " << session.peer << ' ' << session.start << ' '
        << session.end << '\n';
  }
  for (const auto& join : trace.joins) {
    out << "join " << join.peer << ' ' << join.swarm << ' ' << join.at
        << '\n';
  }
}

void write_trace_file(const std::string& path, const Trace& trace) {
  std::ofstream out(path);
  if (!out) throw TraceFormatError("cannot open for writing: " + path);
  write_trace(out, trace);
}

namespace {

[[noreturn]] void fail(std::size_t line_no, const std::string& what) {
  std::ostringstream msg;
  msg << "trace parse error at line " << line_no << ": " << what;
  throw TraceFormatError(msg.str());
}

}  // namespace

Trace read_trace(std::istream& in) {
  Trace tr;
  bool saw_header = false;
  std::string line;
  std::size_t line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    if (line.empty() || line[0] == '#') continue;
    std::istringstream ls(line);
    std::string kind;
    ls >> kind;
    if (kind == "trace") {
      if (!(ls >> tr.duration >> tr.seed) || tr.duration <= 0) {
        fail(line_no, "bad trace header");
      }
      saw_header = true;
    } else if (kind == "peer") {
      PeerProfile peer;
      int connectable = 0;
      char behavior = 'A';
      if (!(ls >> peer.id >> connectable >> behavior >> peer.upload_kbps >>
            peer.download_kbps >> peer.arrival)) {
        fail(line_no, "bad peer record");
      }
      if (behavior != 'A' && behavior != 'F') {
        fail(line_no, "behavior must be A or F");
      }
      peer.connectable = connectable != 0;
      peer.behavior =
          behavior == 'F' ? Behavior::kFreeRider : Behavior::kAltruist;
      tr.peers.push_back(peer);
    } else if (kind == "swarm") {
      SwarmSpec spec;
      if (!(ls >> spec.id >> spec.size_mb >> spec.piece_kb >> spec.created >>
            spec.initial_seeder) ||
          spec.size_mb <= 0 || spec.piece_kb <= 0) {
        fail(line_no, "bad swarm record");
      }
      tr.swarms.push_back(spec);
    } else if (kind == "session") {
      Session session;
      if (!(ls >> session.peer >> session.start >> session.end) ||
          session.start >= session.end) {
        fail(line_no, "bad session record");
      }
      tr.sessions.push_back(session);
    } else if (kind == "join") {
      SwarmJoin join;
      if (!(ls >> join.peer >> join.swarm >> join.at)) {
        fail(line_no, "bad join record");
      }
      tr.joins.push_back(join);
    } else {
      fail(line_no, "unknown record kind '" + kind + "'");
    }
  }
  if (!saw_header) fail(line_no, "missing 'trace' header record");

  // Referential integrity.
  const auto n_peers = static_cast<PeerId>(tr.peers.size());
  const auto n_swarms = static_cast<SwarmId>(tr.swarms.size());
  for (const auto& s : tr.sessions) {
    if (s.peer >= n_peers) fail(0, "session refers to unknown peer");
  }
  for (const auto& j : tr.joins) {
    if (j.peer >= n_peers) fail(0, "join refers to unknown peer");
    if (j.swarm >= n_swarms) fail(0, "join refers to unknown swarm");
  }
  for (const auto& sw : tr.swarms) {
    if (sw.initial_seeder >= n_peers) {
      fail(0, "swarm refers to unknown seeder");
    }
  }

  std::sort(tr.sessions.begin(), tr.sessions.end(),
            [](const Session& a, const Session& b) {
              if (a.start != b.start) return a.start < b.start;
              return a.peer < b.peer;
            });
  std::sort(tr.joins.begin(), tr.joins.end(),
            [](const SwarmJoin& a, const SwarmJoin& b) {
              if (a.at != b.at) return a.at < b.at;
              return a.peer < b.peer;
            });
  return tr;
}

Trace read_trace_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw TraceFormatError("cannot open for reading: " + path);
  return read_trace(in);
}

}  // namespace tribvote::trace
