// Trace statistics — used to validate that synthetic traces match the
// aggregate characteristics the paper reports for the filelist.org dataset,
// and by the trace_explorer example to inspect any trace.
#pragma once

#include <cstddef>

#include "trace/trace.hpp"

namespace tribvote::trace {

struct TraceStats {
  std::size_t n_peers = 0;
  std::size_t n_swarms = 0;
  std::size_t n_sessions = 0;
  std::size_t n_joins = 0;
  std::size_t n_events = 0;  ///< 2·sessions + joins

  double avg_online_fraction = 0;   ///< time-averaged |online| / |peers|
  double free_rider_fraction = 0;
  double connectable_fraction = 0;
  double mean_session_hours = 0;
  double mean_sessions_per_peer = 0;
  double mean_joins_per_peer = 0;
  /// Fraction of peers whose total online time is below 5 % of the trace
  /// (the "rarely present" peers that never enter the experienced core).
  double rare_peer_fraction = 0;
};

/// Compute aggregate statistics over a trace.
[[nodiscard]] TraceStats analyze(const Trace& trace);

/// Number of peers online at time `t` (sessions are half-open [start, end)).
[[nodiscard]] std::size_t online_count(const Trace& trace, Time t);

/// The first `n` peers to enter the system, by arrival time (ties broken by
/// first session start, then id). The paper designates the first three
/// arrivals as moderators M1–M3 (§VI-B) and the earliest cohort as the
/// experienced core (§VI-C).
[[nodiscard]] std::vector<PeerId> earliest_arrivals(const Trace& trace,
                                                    std::size_t n);

}  // namespace tribvote::trace
