#include "bt/bitfield.hpp"

#include <bit>
#include <cassert>

namespace tribvote::bt {

Bitfield::Bitfield(std::size_t n_bits)
    : n_bits_(n_bits), words_((n_bits + 63) / 64, 0) {}

bool Bitfield::test(std::size_t i) const noexcept {
  assert(i < n_bits_);
  return (words_[i / 64] >> (i % 64)) & 1ULL;
}

void Bitfield::set(std::size_t i) noexcept {
  assert(i < n_bits_);
  words_[i / 64] |= (1ULL << (i % 64));
}

void Bitfield::reset(std::size_t i) noexcept {
  assert(i < n_bits_);
  words_[i / 64] &= ~(1ULL << (i % 64));
}

void Bitfield::set_all() noexcept {
  if (n_bits_ == 0) return;
  for (auto& w : words_) w = ~0ULL;
  // Clear the padding bits in the final word.
  const std::size_t rem = n_bits_ % 64;
  if (rem != 0) words_.back() &= (1ULL << rem) - 1;
}

bool Bitfield::has_piece_not_in(const Bitfield& other) const noexcept {
  assert(n_bits_ == other.n_bits_);
  for (std::size_t w = 0; w < words_.size(); ++w) {
    if (words_[w] & ~other.words_[w]) return true;
  }
  return false;
}

std::size_t Bitfield::count() const noexcept {
  std::size_t total = 0;
  for (std::uint64_t w : words_) {
    total += static_cast<std::size_t>(std::popcount(w));
  }
  return total;
}

}  // namespace tribvote::bt
