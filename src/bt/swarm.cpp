#include "bt/swarm.hpp"

#include <algorithm>
#include <cassert>

namespace tribvote::bt {

namespace {
/// Reciprocation windows decay by half each round, approximating the
/// ~20 s rolling rate estimate real clients use.
constexpr double kWindowDecay = 0.5;
/// Drop window entries below this many bytes to keep the maps small.
constexpr double kWindowFloor = 1024.0;
}  // namespace

Swarm::Swarm(const trace::SwarmSpec& spec,
             std::span<const trace::PeerProfile> peers,
             LedgerSink& ledger, BandwidthAllocator& bandwidth,
             util::Rng rng, StreamingConfig streaming)
    : spec_(spec),
      peers_(peers),
      ledger_(&ledger),
      bandwidth_(&bandwidth),
      rng_(rng),
      piece_bytes_(static_cast<double>(spec.piece_kb) * 1024.0),
      n_pieces_(static_cast<std::size_t>(spec.piece_count())),
      streaming_(streaming),
      picker_(n_pieces_) {
  assert(n_pieces_ > 0);
  if (streaming_.enabled) {
    assert(streaming_.playback_kbps > 0.0);
    piece_seconds_ = piece_bytes_ * 8.0 / (streaming_.playback_kbps * 1000.0);
    if (streaming_.window == 0) streaming_.window = 1;
  }
}

void Swarm::add_member(PeerId peer, bool as_seed) {
  assert(peer < peers_.size());
  assert(!is_member(peer));
  Member m;
  m.have = Bitfield(n_pieces_);
  m.in_flight.assign(n_pieces_, false);
  if (as_seed) {
    m.have.set_all();
    m.completed = true;
    // Seeds have nothing to play back; their clock never runs.
    m.play_pos = n_pieces_;
  }
  m.active = true;
  picker_.add_bitfield(m.have);
  bandwidth_->register_active(peer);
  ++active_count_;
  members_.emplace(peer, std::move(m));
}

void Swarm::deactivate(PeerId peer) {
  const auto it = members_.find(peer);
  if (it == members_.end() || !it->second.active) return;
  it->second.active = false;
  picker_.remove_bitfield(it->second.have);
  clear_own_links(it->second);
  drop_links_to(peer);
  bandwidth_->unregister_active(peer);
  --active_count_;
}

void Swarm::reactivate(PeerId peer) {
  const auto it = members_.find(peer);
  assert(it != members_.end());
  if (it->second.active) return;
  it->second.active = true;
  picker_.add_bitfield(it->second.have);
  bandwidth_->register_active(peer);
  ++active_count_;
}

void Swarm::leave(PeerId peer) {
  const auto it = members_.find(peer);
  if (it == members_.end()) return;
  if (it->second.active) {
    picker_.remove_bitfield(it->second.have);
    bandwidth_->unregister_active(peer);
    --active_count_;
  }
  members_.erase(it);
  drop_links_to(peer);
}

bool Swarm::is_member(PeerId peer) const {
  return members_.contains(peer);
}

bool Swarm::is_active(PeerId peer) const {
  const auto it = members_.find(peer);
  return it != members_.end() && it->second.active;
}

bool Swarm::has_completed(PeerId peer) const {
  const auto it = members_.find(peer);
  return it != members_.end() && it->second.completed;
}

std::size_t Swarm::playback_pos(PeerId peer) const {
  const auto it = members_.find(peer);
  return it == members_.end() ? n_pieces_ : it->second.play_pos;
}

double Swarm::progress(PeerId peer) const {
  const auto it = members_.find(peer);
  if (it == members_.end()) return 0.0;
  return static_cast<double>(it->second.have.count()) /
         static_cast<double>(n_pieces_);
}

bool Swarm::link_allowed(PeerId a, PeerId b) const {
  // A TCP connection needs at least one freely connectable endpoint.
  return peers_[a].connectable || peers_[b].connectable;
}

void Swarm::drop_links_to(PeerId uploader) {
  for (auto& [id, m] : members_) {
    const auto it = m.links.find(uploader);
    if (it != m.links.end()) {
      if (it->second.piece != kNoPiece) m.in_flight[it->second.piece] = false;
      m.links.erase(it);
    }
  }
}

void Swarm::clear_own_links(Member& m) {
  for (auto& [uploader, link] : m.links) {
    if (link.piece != kNoPiece) m.in_flight[link.piece] = false;
  }
  m.links.clear();
}

void Swarm::complete_piece(PeerId peer, Member& m, std::size_t piece) {
  m.have.set(piece);
  m.in_flight[piece] = false;
  picker_.add_have(piece);  // member is active by construction here
  probes.pieces_completed.add();
  if (m.have.all() && !m.completed) {
    m.completed = true;
    clear_own_links(m);
    if (on_complete) on_complete(peer);
  }
}

std::size_t Swarm::pick_piece(const Member& uploader,
                              const Member& downloader) {
  if (streaming_.enabled && downloader.play_pos < n_pieces_) {
    // Windowed pick just ahead of the player; fall back to global
    // rarest-first so tail pieces (already skipped or far ahead) still
    // get fetched and the download completes.
    const std::size_t lo = downloader.play_pos;
    const std::size_t p =
        picker_.pick_window(uploader.have, downloader.have,
                            downloader.in_flight, lo,
                            lo + streaming_.window, rng_);
    if (p != kNoPiece) return p;
  }
  return picker_.pick(uploader.have, downloader.have, downloader.in_flight,
                      rng_);
}

void Swarm::advance_playback(Member& m, double dt) {
  if (m.play_pos >= n_pieces_) return;
  if (!m.playing) {
    // Startup buffering: playback begins once the first startup_pieces
    // are contiguously present.
    const std::size_t need = std::min(streaming_.startup_pieces, n_pieces_);
    for (std::size_t p = 0; p < need; ++p) {
      if (!m.have.test(p)) return;
    }
    m.playing = true;
    m.play_carry = 0.0;
    ++streaming_totals_.started;
  }
  m.play_carry += dt;
  while (m.play_carry >= piece_seconds_ && m.play_pos < n_pieces_) {
    m.play_carry -= piece_seconds_;
    if (m.have.test(m.play_pos)) {
      ++streaming_totals_.pieces_on_time;
      probes.pieces_on_time.add();
    } else {
      // Stall-free skip model: the player drops the piece and keeps
      // going; the piece stays fetchable, it just can't be on time.
      ++streaming_totals_.deadline_misses;
      probes.deadline_misses.add();
    }
    ++m.play_pos;
  }
  if (m.play_pos >= n_pieces_) ++streaming_totals_.finished;
}

void Swarm::tick(double dt) {
  // Playback clocks run against the state left by the *previous* round:
  // a piece must be present before the deadline tick to count.
  if (streaming_.enabled) {
    for (auto& [id, m] : members_) {
      if (m.active) advance_playback(m, dt);
    }
  }
  if (active_count_ < 2) return;
  probes.ticks.add();
  probes.active_members.observe(static_cast<double>(active_count_));

  // Decay reciprocation windows once per round.
  for (auto& [id, m] : members_) {
    if (!m.active) continue;
    for (auto it = m.rx_window.begin(); it != m.rx_window.end();) {
      it->second *= kWindowDecay;
      it = it->second < kWindowFloor ? m.rx_window.erase(it) : std::next(it);
    }
    for (auto it = m.tx_window.begin(); it != m.tx_window.end();) {
      it->second *= kWindowDecay;
      it = it->second < kWindowFloor ? m.tx_window.erase(it) : std::next(it);
    }
  }

  // Per-round download budgets (shared across all uploaders of a member).
  std::unordered_map<PeerId, double> down_budget;
  for (const auto& [id, m] : members_) {
    if (m.active && !m.completed) {
      down_budget[id] = bandwidth_->download_share_bytes(id, dt);
    }
  }

  // Iterate uploaders in ascending PeerId order (deterministic).
  for (auto& [uploader_id, uploader] : members_) {
    if (!uploader.active || uploader.have.none()) continue;

    // Interested candidates: active downloaders this uploader can serve.
    std::vector<ChokeCandidate> candidates;
    for (const auto& [cand_id, cand] : members_) {
      if (cand_id == uploader_id || !cand.active || cand.completed) continue;
      if (!link_allowed(uploader_id, cand_id)) continue;
      if (!uploader.have.has_piece_not_in(cand.have)) continue;
      // Leechers reciprocate (tit-for-tat): rank by bytes recently received
      // from the candidate. Seeds serve their fastest recent downloaders.
      const auto& window =
          uploader.completed ? uploader.tx_window : uploader.rx_window;
      const auto wit = window.find(cand_id);
      candidates.push_back(ChokeCandidate{
          cand_id, wit == window.end() ? 0.0 : wit->second});
    }
    if (candidates.empty()) continue;

    const std::vector<PeerId> unchoked =
        uploader.choker.select(std::move(candidates), rng_);
    if (unchoked.empty()) continue;

    const double budget = bandwidth_->upload_share_bytes(uploader_id, dt);
    const double share = budget / static_cast<double>(unchoked.size());
    if (share <= 0.0) continue;

    for (PeerId down_id : unchoked) {
      Member& down = members_.at(down_id);
      double& remaining = down_budget[down_id];
      double amount = std::min(share, remaining);
      if (amount <= 0.0) continue;

      Link& link = down.links[uploader_id];
      if (link.piece == kNoPiece) {
        link.piece = pick_piece(uploader, down);
        if (link.piece == kNoPiece) {
          down.links.erase(uploader_id);
          continue;  // nothing useful on this link right now
        }
        down.in_flight[link.piece] = true;
        link.bytes = 0;
      }

      // Account the transfer.
      ledger_->add_transfer(uploader_id, down_id, amount);
      remaining -= amount;
      down.rx_window[uploader_id] += amount;
      uploader.tx_window[down_id] += amount;
      // Complete as many pieces as the accumulated bytes cover. Work on
      // locals: complete_piece may clear the whole links map on full
      // download completion, invalidating `link`.
      double bytes = link.bytes + amount;
      std::size_t piece = link.piece;
      bool link_gone = false;
      while (bytes >= piece_bytes_) {
        bytes -= piece_bytes_;
        complete_piece(down_id, down, piece);
        if (down.completed) {
          link_gone = true;  // links cleared by complete_piece
          break;
        }
        piece = pick_piece(uploader, down);
        if (piece == kNoPiece) {
          down.links.erase(uploader_id);
          link_gone = true;
          break;
        }
        down.in_flight[piece] = true;
      }
      if (!link_gone) {
        Link& lk = down.links.at(uploader_id);
        lk.piece = piece;
        lk.bytes = bytes;
      }
    }
  }
}

}  // namespace tribvote::bt
