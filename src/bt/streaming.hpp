// On-demand streaming workload knobs (DESIGN.md "Adversary plane").
//
// Split from swarm.hpp so ScenarioConfig can embed the config without
// pulling the whole swarm engine into every translation unit.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>

namespace tribvote::bt {

/// When enabled, leechers pick pieces windowed ahead of a per-peer
/// playback position (rarest-first within the window, falling back to
/// global rarest for the tail) and a playback clock consumes pieces at
/// playback_kbps. A piece not present when the player reaches it is a
/// deadline miss: playback skips it (stall-free skip model) and the piece
/// stays fetchable. Disabled (the default) changes nothing — picks, RNG
/// draws and ledger traffic are byte-identical to the download workload.
struct StreamingConfig {
  bool enabled = false;
  /// Pieces ahead of the playback position eligible for windowed picks.
  std::size_t window = 8;
  /// Contiguous pieces buffered from the start before playback begins.
  std::size_t startup_pieces = 4;
  /// Playback consumption rate (kilobits per second).
  double playback_kbps = 512.0;
};

/// Aggregate playback outcomes; survives member departures (counted at
/// the swarm level the moment they happen, not summed over members).
struct StreamingTotals {
  std::uint64_t started = 0;          ///< playbacks begun (startup buffered)
  std::uint64_t finished = 0;         ///< playbacks that reached the end
  std::uint64_t pieces_on_time = 0;   ///< pieces present at their deadline
  std::uint64_t deadline_misses = 0;  ///< pieces skipped by the player

  StreamingTotals& operator+=(const StreamingTotals& o) noexcept {
    started += o.started;
    finished += o.finished;
    pieces_on_time += o.pieces_on_time;
    deadline_misses += o.deadline_misses;
    return *this;
  }
};

/// Parse a streaming spec into `out`. Grammar:
///   spec := "off" | "on" | key '=' value (',' key '=' value)*
///   key  := window | startup | kbps
/// A key=value list implies "on". Returns false and fills *error (if
/// given) on an unknown key or out-of-range value; `out` is then left in
/// its default (off) state.
[[nodiscard]] bool parse_streaming_spec(const std::string& spec,
                                        StreamingConfig& out,
                                        std::string* error = nullptr);

/// One-line human-readable form for banners ("off" when disabled).
[[nodiscard]] std::string describe(const StreamingConfig& config);

}  // namespace tribvote::bt
