#include "bt/choker.hpp"

#include <algorithm>

namespace tribvote::bt {

std::vector<PeerId> Choker::select(std::vector<ChokeCandidate> candidates,
                                   util::Rng& rng) {
  std::vector<PeerId> unchoked;
  if (candidates.empty()) {
    optimistic_target_ = kInvalidPeer;
    return unchoked;
  }

  // Regular slots: best reciprocators first; deterministic tie-break by id.
  std::sort(candidates.begin(), candidates.end(),
            [](const ChokeCandidate& a, const ChokeCandidate& b) {
              if (a.score != b.score) return a.score > b.score;
              return a.peer < b.peer;
            });
  const std::size_t regular =
      std::min<std::size_t>(config_.regular_slots, candidates.size());
  unchoked.reserve(regular + config_.optimistic_slots);
  for (std::size_t i = 0; i < regular; ++i) {
    unchoked.push_back(candidates[i].peer);
  }

  if (config_.optimistic_slots == 0) return unchoked;

  // Optimistic slot: keep the current target while it is still a candidate
  // outside the regular set; rotate every `optimistic_period` rounds.
  std::vector<PeerId> rest;
  for (std::size_t i = regular; i < candidates.size(); ++i) {
    rest.push_back(candidates[i].peer);
  }
  const bool target_valid =
      optimistic_target_ != kInvalidPeer &&
      std::find(rest.begin(), rest.end(), optimistic_target_) != rest.end();
  if (!target_valid || ++rounds_since_rotation_ >= config_.optimistic_period) {
    optimistic_target_ =
        rest.empty() ? kInvalidPeer : rest[rng.next_below(rest.size())];
    rounds_since_rotation_ = 0;
  }
  if (optimistic_target_ != kInvalidPeer) {
    unchoked.push_back(optimistic_target_);
  }
  return unchoked;
}

}  // namespace tribvote::bt
