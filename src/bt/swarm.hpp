// Piece-level swarm engine.
//
// Simulates one BitTorrent swarm at the granularity the paper describes:
// "every action that a BitTorrent client would need to take, down to the
// exchange of file chunks, peer choking and piece selection". The engine
// advances in unchoke rounds (default 10 s, the real protocol's rechoke
// period): each round every active member runs its choker over the peers
// interested in its pieces, divides its upload budget across the unchoked
// set, and byte progress accumulates into rarest-first-selected pieces.
//
// Churn: members deactivate (session end, state kept) and reactivate;
// free-riders leave permanently on completion. Firewalled peers can only
// exchange data when at least one endpoint is connectable.
//
// Every transferred byte lands in the shared ledger (via its LedgerSink
// write half) — the sole signal BarterCast (and hence the experience
// function) consumes.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <unordered_map>
#include <vector>

#include "bt/bandwidth.hpp"
#include "bt/bitfield.hpp"
#include "bt/choker.hpp"
#include "bt/ledger.hpp"
#include "bt/piece_picker.hpp"
#include "bt/streaming.hpp"
#include "telemetry/registry.hpp"
#include "trace/trace.hpp"
#include "util/rng.hpp"

namespace tribvote::bt {

/// Default rechoke period (seconds), per the BitTorrent spec.
inline constexpr double kUnchokeRoundSeconds = 10.0;

/// Telemetry probes a swarm reports into. Null (default) handles are
/// inert; the runner shares one probe set across every swarm so the
/// counters aggregate system-wide.
struct SwarmProbes {
  telemetry::Counter ticks;
  telemetry::Counter pieces_completed;
  telemetry::Histogram active_members;  ///< observed once per tick
  telemetry::Counter pieces_on_time;    ///< streaming: met deadlines
  telemetry::Counter deadline_misses;   ///< streaming: skipped pieces
};

class Swarm {
 public:
  /// `peers` must outlive the swarm (owned by the scenario runner).
  /// `streaming` defaults to off, which preserves the download workload
  /// byte-for-byte.
  Swarm(const trace::SwarmSpec& spec,
        std::span<const trace::PeerProfile> peers, LedgerSink& ledger,
        BandwidthAllocator& bandwidth, util::Rng rng,
        StreamingConfig streaming = {});

  Swarm(const Swarm&) = delete;
  Swarm& operator=(const Swarm&) = delete;

  /// Fired when a member completes its download (before any free-rider
  /// departure logic the caller applies).
  std::function<void(PeerId peer)> on_complete;

  /// Telemetry probes (assign after construction, like on_complete).
  SwarmProbes probes;

  /// A peer joins for the first time. `as_seed` marks the initial seeder.
  /// The member starts active.
  void add_member(PeerId peer, bool as_seed);

  /// Session ended: the member goes offline but keeps its pieces.
  void deactivate(PeerId peer);

  /// Session resumed for an existing member.
  void reactivate(PeerId peer);

  /// Permanent departure (free-rider after completion, or user abandon).
  void leave(PeerId peer);

  /// One unchoke + transfer round covering `dt` seconds.
  void tick(double dt);

  [[nodiscard]] bool is_member(PeerId peer) const;
  [[nodiscard]] bool is_active(PeerId peer) const;
  [[nodiscard]] bool has_completed(PeerId peer) const;
  [[nodiscard]] std::size_t active_count() const noexcept {
    return active_count_;
  }
  [[nodiscard]] std::size_t member_count() const noexcept {
    return members_.size();
  }
  /// Download progress in [0, 1].
  [[nodiscard]] double progress(PeerId peer) const;
  [[nodiscard]] const trace::SwarmSpec& spec() const noexcept { return spec_; }

  [[nodiscard]] const StreamingConfig& streaming() const noexcept {
    return streaming_;
  }
  [[nodiscard]] const StreamingTotals& streaming_totals() const noexcept {
    return streaming_totals_;
  }
  /// Next piece the member's player needs (== piece_count() when playback
  /// finished or the member was a seed). Only meaningful when streaming.
  [[nodiscard]] std::size_t playback_pos(PeerId peer) const;

 private:
  struct Link {
    std::size_t piece = kNoPiece;
    double bytes = 0;
  };

  struct Member {
    Bitfield have;
    bool active = false;
    bool completed = false;
    std::vector<bool> in_flight;               // by piece index
    std::unordered_map<PeerId, Link> links;     // uploader -> progress
    std::unordered_map<PeerId, double> rx_window;  // recent bytes from peer
    std::unordered_map<PeerId, double> tx_window;  // recent bytes to peer
    Choker choker;
    // Streaming playback state (inert unless streaming_.enabled).
    std::size_t play_pos = 0;   // next piece the player consumes
    bool playing = false;       // startup buffer filled, clock running
    double play_carry = 0.0;    // seconds accumulated toward the next piece
  };

  [[nodiscard]] bool link_allowed(PeerId a, PeerId b) const;
  void drop_links_to(PeerId uploader);
  void clear_own_links(Member& m);
  void complete_piece(PeerId peer, Member& m, std::size_t piece);
  /// Streaming-aware piece selection for a (downloader <- uploader) link.
  [[nodiscard]] std::size_t pick_piece(const Member& uploader,
                                       const Member& downloader);
  /// Advance one member's playback clock by dt seconds.
  void advance_playback(Member& m, double dt);

  trace::SwarmSpec spec_;
  std::span<const trace::PeerProfile> peers_;
  LedgerSink* ledger_;
  BandwidthAllocator* bandwidth_;
  util::Rng rng_;
  double piece_bytes_;
  std::size_t n_pieces_;
  StreamingConfig streaming_;
  double piece_seconds_ = 0.0;  // playback time one piece covers
  StreamingTotals streaming_totals_;
  PiecePicker picker_;
  // std::map for deterministic iteration order (PeerId ascending).
  std::map<PeerId, Member> members_;
  std::size_t active_count_ = 0;
};

}  // namespace tribvote::bt
