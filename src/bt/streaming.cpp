#include "bt/streaming.hpp"

#include <cstdio>
#include <cstdlib>
#include <sstream>

namespace tribvote::bt {

namespace {

bool set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

}  // namespace

bool parse_streaming_spec(const std::string& spec, StreamingConfig& out,
                          std::string* error) {
  out = StreamingConfig{};
  if (spec.empty() || spec == "off" || spec == "0" || spec == "false") {
    return true;
  }
  if (spec == "on" || spec == "1" || spec == "true") {
    out.enabled = true;
    return true;
  }
  StreamingConfig parsed;
  parsed.enabled = true;  // a key=value list implies "on"
  std::istringstream in(spec);
  std::string field;
  while (std::getline(in, field, ',')) {
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return set_error(error, "expected key=value, got '" + field + "'");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      return set_error(error, "bad value for " + key + ": '" + value + "'");
    }
    if (key == "window") {
      if (v < 1.0) return set_error(error, "window must be >= 1");
      parsed.window = static_cast<std::size_t>(v);
    } else if (key == "startup") {
      if (v < 1.0) return set_error(error, "startup must be >= 1");
      parsed.startup_pieces = static_cast<std::size_t>(v);
    } else if (key == "kbps") {
      if (v <= 0.0) return set_error(error, "kbps must be > 0");
      parsed.playback_kbps = v;
    } else {
      return set_error(error, "unknown streaming key '" + key + "'");
    }
  }
  out = parsed;
  return true;
}

std::string describe(const StreamingConfig& config) {
  if (!config.enabled) return "off";
  char buf[96];
  std::snprintf(buf, sizeof(buf), "window=%zu,startup=%zu,kbps=%g",
                config.window, config.startup_pieces, config.playback_kbps);
  return buf;
}

}  // namespace tribvote::bt
