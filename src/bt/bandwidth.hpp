// Per-peer bandwidth sharing across swarms.
//
// A peer active in several swarms divides its physical upload and download
// capacity equally among them, the way a real client's rate limiter spreads
// a global cap over torrents. Swarms register activity and query their
// share at the start of each transfer round.
#pragma once

#include <cassert>
#include <cstdint>
#include <vector>

#include "util/ids.hpp"

namespace tribvote::bt {

class BandwidthAllocator {
 public:
  /// `up_kbps` / `down_kbps` are per-peer physical capacities in KB/s.
  BandwidthAllocator(std::vector<double> up_kbps,
                     std::vector<double> down_kbps);

  /// A peer became active / inactive in one more swarm.
  void register_active(PeerId peer);
  void unregister_active(PeerId peer);

  /// Upload budget in *bytes* for one swarm's round of `dt` seconds.
  [[nodiscard]] double upload_share_bytes(PeerId peer, double dt) const;
  /// Download budget in bytes for one swarm's round of `dt` seconds.
  [[nodiscard]] double download_share_bytes(PeerId peer, double dt) const;

  [[nodiscard]] std::uint32_t active_swarms(PeerId peer) const {
    assert(peer < active_.size());
    return active_[peer];
  }

 private:
  std::vector<double> up_kbps_;
  std::vector<double> down_kbps_;
  std::vector<std::uint32_t> active_;
};

}  // namespace tribvote::bt
