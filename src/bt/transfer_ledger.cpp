#include "bt/transfer_ledger.hpp"

#include <cassert>

namespace tribvote::bt {

namespace {
constexpr double kBytesPerMb = 1024.0 * 1024.0;
}

MapLedger::MapLedger(std::size_t n_peers)
    : n_(n_peers),
      up_bytes_(n_peers),
      down_bytes_(n_peers),
      total_up_(n_peers, 0.0),
      total_down_(n_peers, 0.0),
      version_(n_peers, 0) {}

void MapLedger::add_transfer(PeerId from, PeerId to, double bytes) {
  assert(from < n_ && to < n_ && from != to);
  assert(bytes >= 0);
  up_bytes_[from][to] += bytes;
  down_bytes_[to][from] += bytes;
  total_up_[from] += bytes;
  total_down_[to] += bytes;
  ++version_[from];
  ++version_[to];
}

double MapLedger::uploaded_mb(PeerId from, PeerId to) const {
  assert(from < n_ && to < n_);
  const auto& row = up_bytes_[from];
  const auto it = row.find(to);
  return it == row.end() ? 0.0 : it->second / kBytesPerMb;
}

double MapLedger::total_uploaded_mb(PeerId peer) const {
  assert(peer < n_);
  return total_up_[peer] / kBytesPerMb;
}

double MapLedger::total_downloaded_mb(PeerId peer) const {
  assert(peer < n_);
  return total_down_[peer] / kBytesPerMb;
}

std::vector<TransferRecord> MapLedger::direct_view(PeerId p) const {
  assert(p < n_);
  std::vector<TransferRecord> records;
  for (const auto& [to, bytes] : up_bytes_[p]) {
    records.push_back(TransferRecord{p, to, bytes / kBytesPerMb});
  }
  for (const auto& [from, bytes] : down_bytes_[p]) {
    records.push_back(TransferRecord{from, p, bytes / kBytesPerMb});
  }
  return records;
}

}  // namespace tribvote::bt
