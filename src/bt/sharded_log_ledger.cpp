#include "bt/sharded_log_ledger.hpp"

#include <algorithm>
#include <cassert>

namespace tribvote::bt {

namespace {
constexpr double kBytesPerMb = 1024.0 * 1024.0;

/// Fold one (counterpart, bytes) delta into a sorted id/value row pair, in
/// call order — the FP-associativity twin of `map[other] += bytes`.
void fold_into_row(std::vector<PeerId>& ids, std::vector<double>& vals,
                   PeerId other, double bytes) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), other);
  const auto idx = static_cast<std::size_t>(it - ids.begin());
  if (it != ids.end() && *it == other) {
    vals[idx] += bytes;
  } else {
    ids.insert(it, other);
    vals.insert(vals.begin() + static_cast<std::ptrdiff_t>(idx), bytes);
  }
}

[[nodiscard]] double row_value(const std::vector<PeerId>& ids,
                               const std::vector<double>& vals, PeerId other) {
  const auto it = std::lower_bound(ids.begin(), ids.end(), other);
  if (it == ids.end() || *it != other) return 0.0;
  return vals[static_cast<std::size_t>(it - ids.begin())];
}
}  // namespace

ShardedLogLedger::ShardedLogLedger(std::size_t n_peers, std::size_t shards,
                                   std::size_t compact_threshold)
    : n_(n_peers),
      compact_threshold_(std::max<std::size_t>(1, compact_threshold)),
      shards_(std::max<std::size_t>(1, shards)),
      rows_(n_peers),
      total_up_(n_peers, 0.0),
      total_down_(n_peers, 0.0),
      version_(n_peers, 0),
      sinks_(std::max<std::size_t>(1, shards)) {}

void ShardedLogLedger::append(PeerId self, PeerId other, double bytes,
                              bool upload) {
  Shard& shard = shards_[shard_of(self)];
  shard.log.push_back(LogEntry{self, other, bytes, upload});
  if (shard.log.size() >= compact_threshold_) compact(shard);
}

void ShardedLogLedger::add_transfer(PeerId from, PeerId to, double bytes) {
  assert(from < n_ && to < n_ && from != to);
  assert(bytes >= 0);
  ++stats_.appends;
  append(from, to, bytes, /*upload=*/true);
  append(to, from, bytes, /*upload=*/false);
}

void ShardedLogLedger::compact(Shard& shard) {
  // Stable sort groups each peer's entries while keeping them in arrival
  // order, so the per-pair fold sequence matches the serial `+=` order and
  // the scatter into rows_/totals/versions walks peers ascending.
  std::stable_sort(shard.log.begin(), shard.log.end(),
                   [](const LogEntry& a, const LogEntry& b) {
                     return a.self < b.self;
                   });
  Row* row = nullptr;
  PeerId current = kInvalidPeer;
  for (const LogEntry& e : shard.log) {
    if (e.self != current) {
      current = e.self;
      row = &rows_[e.self];
    }
    if (e.upload) {
      fold_into_row(row->up_ids, row->up_bytes, e.other, e.bytes);
      total_up_[e.self] += e.bytes;
    } else {
      fold_into_row(row->down_ids, row->down_bytes, e.other, e.bytes);
      total_down_[e.self] += e.bytes;
    }
    ++version_[e.self];
  }
  ++stats_.compactions;
  stats_.compacted_entries += shard.log.size();
  shard.log.clear();
}

void ShardedLogLedger::flush() {
  for (Shard& shard : shards_) {
    if (!shard.log.empty()) compact(shard);
  }
}

double ShardedLogLedger::uploaded_mb(PeerId from, PeerId to) const {
  assert(from < n_ && to < n_);
  const Row& row = rows_[from];
  double bytes = row_value(row.up_ids, row.up_bytes, to);
  for (const LogEntry& e : shards_[shard_of(from)].log) {
    if (e.self == from && e.upload && e.other == to) bytes += e.bytes;
  }
  return bytes / kBytesPerMb;
}

double ShardedLogLedger::total_uploaded_mb(PeerId peer) const {
  assert(peer < n_);
  double bytes = total_up_[peer];
  for (const LogEntry& e : shards_[shard_of(peer)].log) {
    if (e.self == peer && e.upload) bytes += e.bytes;
  }
  return bytes / kBytesPerMb;
}

double ShardedLogLedger::total_downloaded_mb(PeerId peer) const {
  assert(peer < n_);
  double bytes = total_down_[peer];
  for (const LogEntry& e : shards_[shard_of(peer)].log) {
    if (e.self == peer && !e.upload) bytes += e.bytes;
  }
  return bytes / kBytesPerMb;
}

std::uint64_t ShardedLogLedger::version(PeerId peer) const {
  assert(peer < n_);
  std::uint64_t v = version_[peer];
  for (const LogEntry& e : shards_[shard_of(peer)].log) {
    if (e.self == peer) ++v;
  }
  return v;
}

std::vector<TransferRecord> ShardedLogLedger::direct_view(PeerId p) const {
  assert(p < n_);
  // Fold the pending tail into copies of p's rows, preserving arrival
  // order, then emit uploads followed by downloads (counterparts
  // ascending; consumers are order-insensitive, see bt/ledger.hpp).
  const Row& row = rows_[p];
  std::vector<PeerId> up_ids = row.up_ids;
  std::vector<double> up_bytes = row.up_bytes;
  std::vector<PeerId> down_ids = row.down_ids;
  std::vector<double> down_bytes = row.down_bytes;
  for (const LogEntry& e : shards_[shard_of(p)].log) {
    if (e.self != p) continue;
    if (e.upload) {
      fold_into_row(up_ids, up_bytes, e.other, e.bytes);
    } else {
      fold_into_row(down_ids, down_bytes, e.other, e.bytes);
    }
  }
  std::vector<TransferRecord> records;
  records.reserve(up_ids.size() + down_ids.size());
  for (std::size_t k = 0; k < up_ids.size(); ++k) {
    records.push_back(TransferRecord{p, up_ids[k], up_bytes[k] / kBytesPerMb});
  }
  for (std::size_t k = 0; k < down_ids.size(); ++k) {
    records.push_back(
        TransferRecord{down_ids[k], p, down_bytes[k] / kBytesPerMb});
  }
  return records;
}

ShardedLogLedger::ShardSink& ShardedLogLedger::sink(std::size_t lane) {
  assert(lane < sinks_.size());
  return sinks_[lane];
}

void ShardedLogLedger::merge_sinks() {
  for (ShardSink& s : sinks_) {
    for (const ShardSink::Buffered& b : s.buffer_) {
      add_transfer(b.from, b.to, b.bytes);
    }
    s.buffer_.clear();
  }
  ++stats_.sink_merges;
}

std::size_t ShardedLogLedger::pending_entries() const noexcept {
  std::size_t pending = 0;
  for (const Shard& shard : shards_) pending += shard.log.size();
  return pending;
}

}  // namespace tribvote::bt
