#include "bt/bandwidth.hpp"

namespace tribvote::bt {

BandwidthAllocator::BandwidthAllocator(std::vector<double> up_kbps,
                                       std::vector<double> down_kbps)
    : up_kbps_(std::move(up_kbps)),
      down_kbps_(std::move(down_kbps)),
      active_(up_kbps_.size(), 0) {
  assert(up_kbps_.size() == down_kbps_.size());
}

void BandwidthAllocator::register_active(PeerId peer) {
  assert(peer < active_.size());
  ++active_[peer];
}

void BandwidthAllocator::unregister_active(PeerId peer) {
  assert(peer < active_.size());
  assert(active_[peer] > 0);
  --active_[peer];
}

double BandwidthAllocator::upload_share_bytes(PeerId peer, double dt) const {
  assert(peer < active_.size());
  if (active_[peer] == 0) return 0.0;
  return up_kbps_[peer] * 1024.0 * dt / active_[peer];
}

double BandwidthAllocator::download_share_bytes(PeerId peer,
                                                double dt) const {
  assert(peer < active_.size());
  if (active_[peer] == 0) return 0.0;
  return down_kbps_[peer] * 1024.0 * dt / active_[peer];
}

}  // namespace tribvote::bt
