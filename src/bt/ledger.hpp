// Abstract contribution-ledger API (ROADMAP "Ledger scalability").
//
// Every byte moved by the swarm engine is accounted in a ledger. The API is
// split along the system's read/write seam:
//
//   * LedgerSink  — the write half. The swarm engine, the bandwidth/choker
//     write sites and scenario preseeding append transfers; they never query.
//   * LedgerView  — the read half. BarterCast (and the attack variants) read
//     only per-peer direct views and totals; evaluation metrics read pair
//     counters (allowed global knowledge per the paper's footnote 8).
//   * Ledger      — both halves in one object, owned by the ScenarioRunner.
//
// Two backends implement the API (selected via ScenarioConfig::ledger):
//
//   * MapLedger (transfer_ledger.hpp, default) — the dense per-peer pair-map
//     the repo always had. Golden CSVs are byte-identical on this backend.
//   * ShardedLogLedger (sharded_log_ledger.hpp) — per-shard append-only
//     transfer logs compacted periodically into per-peer CSR-style
//     counterparty rows; sized for millions of peers and safe for
//     concurrent shard-local appends via per-lane sinks (DESIGN.md §9).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string_view>
#include <vector>

#include "util/ids.hpp"

namespace tribvote::bt {

/// One direct-transfer record as a peer would report it: "a uploaded
/// `mb` megabytes to b".
struct TransferRecord {
  PeerId from = kInvalidPeer;
  PeerId to = kInvalidPeer;
  double mb = 0;
};

/// Write half of the ledger API.
class LedgerSink {
 public:
  virtual ~LedgerSink() = default;

  /// Record `bytes` uploaded by `from` to `to`.
  virtual void add_transfer(PeerId from, PeerId to, double bytes) = 0;

  /// Publish any buffered writes so subsequent reads are O(row) and safe
  /// under concurrent readers. No-op for eager backends; the append-log
  /// backend compacts its shard logs here. The runner calls this at the
  /// end of every BT round, before the read-only gossip rounds fan out.
  virtual void flush() {}
};

/// Read half of the ledger API.
class LedgerView {
 public:
  virtual ~LedgerView() = default;

  /// Megabytes uploaded by `from` to `to` so far.
  [[nodiscard]] virtual double uploaded_mb(PeerId from, PeerId to) const = 0;

  /// Total megabytes uploaded by a peer to everyone.
  [[nodiscard]] virtual double total_uploaded_mb(PeerId peer) const = 0;

  /// Total megabytes downloaded by a peer from everyone.
  [[nodiscard]] virtual double total_downloaded_mb(PeerId peer) const = 0;

  /// The direct records peer `p` can truthfully report: every counterpart
  /// it exchanged data with, both directions. This is the local view
  /// BarterCast gossips. Record *order* is backend-defined; every consumer
  /// is order-insensitive (outgoing_records sorts, sync_direct applies
  /// per-pair set semantics).
  [[nodiscard]] virtual std::vector<TransferRecord> direct_view(
      PeerId p) const = 0;

  [[nodiscard]] virtual std::size_t peer_count() const noexcept = 0;

  /// Monotone counter bumped whenever a transfer touches `peer` (either
  /// direction). Lets BarterCast agents skip re-syncing an unchanged
  /// direct view — the dominant cost in long runs.
  [[nodiscard]] virtual std::uint64_t version(PeerId peer) const = 0;
};

/// A full ledger: both halves, one object.
class Ledger : public LedgerView, public LedgerSink {};

/// Backend selector (ScenarioConfig::ledger, TRIBVOTE_LEDGER,
/// scenario_cli --ledger).
enum class LedgerBackend : std::uint8_t {
  kMap,         ///< dense per-peer pair maps (default; goldens' backend)
  kShardedLog,  ///< sharded append-log + periodic CSR compaction
};

[[nodiscard]] inline constexpr const char* ledger_backend_name(
    LedgerBackend backend) noexcept {
  return backend == LedgerBackend::kShardedLog ? "sharded_log" : "map";
}

[[nodiscard]] inline std::optional<LedgerBackend> parse_ledger_backend(
    std::string_view name) noexcept {
  if (name == "map") return LedgerBackend::kMap;
  if (name == "sharded_log" || name == "sharded") {
    return LedgerBackend::kShardedLog;
  }
  return std::nullopt;
}

/// Construct a backend. `shards` only matters for kShardedLog (clamped to
/// >= 1); pass the scenario's worker-shard count so ledger shards line up
/// with the ShardKernel's lanes.
[[nodiscard]] std::unique_ptr<Ledger> make_ledger(LedgerBackend backend,
                                                  std::size_t n_peers,
                                                  std::size_t shards = 1);

}  // namespace tribvote::bt
