#include "bt/ledger.hpp"

#include "bt/sharded_log_ledger.hpp"
#include "bt/transfer_ledger.hpp"

namespace tribvote::bt {

std::unique_ptr<Ledger> make_ledger(LedgerBackend backend,
                                    std::size_t n_peers, std::size_t shards) {
  if (backend == LedgerBackend::kShardedLog) {
    return std::make_unique<ShardedLogLedger>(n_peers, shards);
  }
  return std::make_unique<MapLedger>(n_peers);
}

}  // namespace tribvote::bt
