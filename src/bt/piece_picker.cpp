#include "bt/piece_picker.hpp"

#include <algorithm>
#include <cassert>
#include <limits>

namespace tribvote::bt {

PiecePicker::PiecePicker(std::size_t n_pieces) : avail_(n_pieces, 0) {}

void PiecePicker::add_have(std::size_t piece) {
  assert(piece < avail_.size());
  ++avail_[piece];
}

void PiecePicker::remove_have(std::size_t piece) {
  assert(piece < avail_.size());
  assert(avail_[piece] > 0);
  --avail_[piece];
}

void PiecePicker::add_bitfield(const Bitfield& bf) {
  assert(bf.size() == avail_.size());
  for (std::size_t i = 0; i < bf.size(); ++i) {
    if (bf.test(i)) ++avail_[i];
  }
}

void PiecePicker::remove_bitfield(const Bitfield& bf) {
  assert(bf.size() == avail_.size());
  for (std::size_t i = 0; i < bf.size(); ++i) {
    if (bf.test(i)) {
      assert(avail_[i] > 0);
      --avail_[i];
    }
  }
}

std::uint32_t PiecePicker::availability(std::size_t piece) const {
  assert(piece < avail_.size());
  return avail_[piece];
}

std::size_t PiecePicker::pick(const Bitfield& uploader_has,
                              const Bitfield& downloader_has,
                              const std::vector<bool>& in_flight,
                              util::Rng& rng) const {
  assert(uploader_has.size() == avail_.size());
  assert(downloader_has.size() == avail_.size());
  assert(in_flight.size() == avail_.size());
  // Single pass with reservoir-style random tie-breaking among the current
  // minimum-availability candidates.
  std::uint32_t best_avail = std::numeric_limits<std::uint32_t>::max();
  std::size_t best = kNoPiece;
  std::uint64_t ties = 0;
  for (std::size_t p = 0; p < avail_.size(); ++p) {
    if (!uploader_has.test(p) || downloader_has.test(p) || in_flight[p]) {
      continue;
    }
    if (avail_[p] < best_avail) {
      best_avail = avail_[p];
      best = p;
      ties = 1;
    } else if (avail_[p] == best_avail) {
      ++ties;
      if (rng.next_below(ties) == 0) best = p;
    }
  }
  return best;
}

std::size_t PiecePicker::pick_window(const Bitfield& uploader_has,
                                     const Bitfield& downloader_has,
                                     const std::vector<bool>& in_flight,
                                     std::size_t lo, std::size_t hi,
                                     util::Rng& rng) const {
  assert(uploader_has.size() == avail_.size());
  assert(downloader_has.size() == avail_.size());
  assert(in_flight.size() == avail_.size());
  hi = std::min(hi, avail_.size());
  std::uint32_t best_avail = std::numeric_limits<std::uint32_t>::max();
  std::size_t best = kNoPiece;
  std::uint64_t ties = 0;
  for (std::size_t p = lo; p < hi; ++p) {
    if (!uploader_has.test(p) || downloader_has.test(p) || in_flight[p]) {
      continue;
    }
    if (avail_[p] < best_avail) {
      best_avail = avail_[p];
      best = p;
      ties = 1;
    } else if (avail_[p] == best_avail) {
      ++ties;
      if (rng.next_below(ties) == 0) best = p;
    }
  }
  return best;
}

}  // namespace tribvote::bt
