// BitTorrent choking: tit-for-tat regular unchoke slots plus a periodically
// rotated optimistic unchoke (Cohen 2003).
//
// Stateless policy function plus a small per-member rotation state. The
// swarm engine supplies, per candidate downloader, the bytes the uploader
// received from that candidate over the recent window (the reciprocation
// signal); seeds, which receive nothing, rank candidates by bytes *sent*
// instead, approximating the upload-to-fastest seed policy.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"

namespace tribvote::bt {

struct ChokerConfig {
  std::uint32_t regular_slots = 3;    ///< tit-for-tat unchoke slots
  std::uint32_t optimistic_slots = 1; ///< rotated unchoke slots
  std::uint32_t optimistic_period = 3;///< rounds between optimistic rotations
};

/// One interested candidate presented to the choker.
struct ChokeCandidate {
  PeerId peer = kInvalidPeer;
  double score = 0;  ///< reciprocation bytes (leecher) or service bytes (seed)
};

/// Per-uploader rotation state for the optimistic slot.
class Choker {
 public:
  explicit Choker(ChokerConfig config = {}) : config_(config) {}

  /// Select the unchoke set for this round from `candidates` (order
  /// irrelevant). Returns peer ids; size ≤ regular_slots + optimistic_slots.
  /// Call exactly once per unchoke round.
  [[nodiscard]] std::vector<PeerId> select(
      std::vector<ChokeCandidate> candidates, util::Rng& rng);

  [[nodiscard]] const ChokerConfig& config() const noexcept { return config_; }

 private:
  ChokerConfig config_;
  PeerId optimistic_target_ = kInvalidPeer;
  std::uint32_t rounds_since_rotation_ = 0;
};

}  // namespace tribvote::bt
