// Dense pair-map ledger backend (the default; see bt/ledger.hpp for the API).
//
// Sparse row storage: row[from] maps to -> bytes, mirrored by an incoming
// index so a peer's direct view is O(degree). Right-sized for the paper's
// 100–1000-peer populations with tens of counterparts each; at millions of
// peers prefer ShardedLogLedger (sharded_log_ledger.hpp).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "bt/ledger.hpp"
#include "util/ids.hpp"

namespace tribvote::bt {

class MapLedger final : public Ledger {
 public:
  explicit MapLedger(std::size_t n_peers);

  void add_transfer(PeerId from, PeerId to, double bytes) override;

  [[nodiscard]] double uploaded_mb(PeerId from, PeerId to) const override;
  [[nodiscard]] double total_uploaded_mb(PeerId peer) const override;
  [[nodiscard]] double total_downloaded_mb(PeerId peer) const override;
  [[nodiscard]] std::vector<TransferRecord> direct_view(
      PeerId p) const override;

  [[nodiscard]] std::size_t peer_count() const noexcept override {
    return n_;
  }
  [[nodiscard]] std::uint64_t version(PeerId peer) const override {
    return version_[peer];
  }

 private:
  std::size_t n_;
  std::vector<std::unordered_map<PeerId, double>> up_bytes_;
  std::vector<std::unordered_map<PeerId, double>> down_bytes_;
  std::vector<double> total_up_;
  std::vector<double> total_down_;
  std::vector<std::uint64_t> version_;
};

/// Historical name of the pair-map backend, kept for call sites that want
/// "the concrete default ledger" without caring about the API split.
using TransferLedger = MapLedger;

}  // namespace tribvote::bt
