// Global record of pairwise data transfer.
//
// Every byte moved by the swarm engine is accounted here. Each peer's *own*
// row/column of this matrix is exactly what a real BitTorrent client can
// observe locally; BarterCast reads only those direct views, never the whole
// matrix (the whole matrix also feeds evaluation metrics, which are allowed
// global knowledge per the paper's footnote 8).
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "util/ids.hpp"

namespace tribvote::bt {

/// One direct-transfer record as a peer would report it: "a uploaded
/// `mb` megabytes to b".
struct TransferRecord {
  PeerId from = kInvalidPeer;
  PeerId to = kInvalidPeer;
  double mb = 0;
};

class TransferLedger {
 public:
  explicit TransferLedger(std::size_t n_peers);

  /// Record `bytes` uploaded by `from` to `to`.
  void add_transfer(PeerId from, PeerId to, double bytes);

  /// Megabytes uploaded by `from` to `to` so far.
  [[nodiscard]] double uploaded_mb(PeerId from, PeerId to) const;

  /// Total megabytes uploaded by a peer to everyone.
  [[nodiscard]] double total_uploaded_mb(PeerId peer) const;

  /// Total megabytes downloaded by a peer from everyone.
  [[nodiscard]] double total_downloaded_mb(PeerId peer) const;

  /// The direct records peer `p` can truthfully report: every counterpart it
  /// exchanged data with, both directions. This is the local view BarterCast
  /// gossips.
  [[nodiscard]] std::vector<TransferRecord> direct_view(PeerId p) const;

  [[nodiscard]] std::size_t peer_count() const noexcept { return n_; }

  /// Monotone counter bumped whenever a transfer touches `peer` (either
  /// direction). Lets BarterCast agents skip re-syncing an unchanged direct
  /// view — the dominant cost in long runs.
  [[nodiscard]] std::uint64_t version(PeerId peer) const {
    return version_[peer];
  }

 private:
  // Sparse row storage: row[from] maps to -> bytes, mirrored by an
  // incoming index so a peer's direct view is O(degree). 100-1000 peers
  // with tens of counterparts each; unordered_map per row is compact.
  std::size_t n_;
  std::vector<std::unordered_map<PeerId, double>> up_bytes_;
  std::vector<std::unordered_map<PeerId, double>> down_bytes_;
  std::vector<double> total_up_;
  std::vector<double> total_down_;
  std::vector<std::uint64_t> version_;
};

}  // namespace tribvote::bt
