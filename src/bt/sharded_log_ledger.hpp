// Sharded append-log ledger backend (see bt/ledger.hpp for the API).
//
// Built for populations far past what the pair-map backend handles: the
// append path does no hashing, no per-pair node allocation and no random
// scatter — a transfer becomes two sequential pushes into per-shard
// append-only logs (one upload-side entry in `from`'s shard, one
// download-side entry in `to`'s shard). All random-access work (pair
// counters, per-peer totals, version bumps) is deferred to *compaction*:
// when a shard's log crosses the threshold (or flush() is called), the log
// is stable-sorted by owning peer and folded into per-peer CSR-style
// counterparty rows — sorted column-id/value arrays per direction — so the
// scatter happens once per batch, in peer order, instead of once per append
// in random order.
//
// Exactness: queries between compactions merge the compacted base with the
// pending tail of the owner's shard log, in arrival order. Because each
// peer's entries are folded in arrival order everywhere (stable sort; the
// pending scan preserves log order), every double this backend returns is
// bit-identical to the pair-map backend's `+=` sequence — the backends are
// interchangeable to the last bit of simulation output (DESIGN.md §9).
//
// Concurrency: the serial entry point (add_transfer) matches the pair-map
// backend. Under the sharded event kernel, give each worker lane its own
// ShardSink — appends buffer into lane-local storage with no shared writes,
// and merge_sinks() folds the buffers in lane order at the barrier.
// Concurrent *reads* are always safe against sink appends (the ledger
// proper is untouched until merge) and against each other (queries never
// mutate; there is no lazy compaction).
#pragma once

#include <cstdint>
#include <vector>

#include "bt/ledger.hpp"
#include "util/ids.hpp"

namespace tribvote::bt {

/// Observability counters (tests and benches).
struct ShardedLogLedgerStats {
  std::uint64_t appends = 0;            ///< add_transfer calls
  std::uint64_t compactions = 0;        ///< shard-log folds
  std::uint64_t compacted_entries = 0;  ///< log entries folded into rows
  std::uint64_t sink_merges = 0;        ///< merge_sinks calls
};

class ShardedLogLedger final : public Ledger {
 public:
  /// Entries one shard log buffers before it is folded into the rows.
  static constexpr std::size_t kDefaultCompactThreshold = 16384;

  /// `shards` is clamped to >= 1. Peers map to shards by id % shards,
  /// matching sim::ShardKernel::shard_of, so lane-local appends about a
  /// lane's own peers stay shard-local.
  ShardedLogLedger(std::size_t n_peers, std::size_t shards,
                   std::size_t compact_threshold = kDefaultCompactThreshold);

  // ---- LedgerSink ----------------------------------------------------------

  void add_transfer(PeerId from, PeerId to, double bytes) override;

  /// Compact every dirty shard. Reads afterwards are pure row lookups.
  void flush() override;

  // ---- LedgerView ----------------------------------------------------------

  [[nodiscard]] double uploaded_mb(PeerId from, PeerId to) const override;
  [[nodiscard]] double total_uploaded_mb(PeerId peer) const override;
  [[nodiscard]] double total_downloaded_mb(PeerId peer) const override;
  [[nodiscard]] std::vector<TransferRecord> direct_view(
      PeerId p) const override;
  [[nodiscard]] std::size_t peer_count() const noexcept override {
    return n_;
  }
  [[nodiscard]] std::uint64_t version(PeerId peer) const override;

  // ---- concurrent shard-local appends -------------------------------------

  /// A lane-local write buffer. Safe to append from one thread per sink
  /// while other lanes append to theirs and readers query the ledger; the
  /// buffered transfers become visible only at merge_sinks().
  class ShardSink final : public LedgerSink {
   public:
    void add_transfer(PeerId from, PeerId to, double bytes) override {
      buffer_.push_back(Buffered{from, to, bytes});
    }

   private:
    friend class ShardedLogLedger;
    struct Buffered {
      PeerId from;
      PeerId to;
      double bytes;
    };
    std::vector<Buffered> buffer_;
  };

  /// The write buffer for worker lane `lane` (one per shard).
  [[nodiscard]] ShardSink& sink(std::size_t lane);

  /// Serial barrier step: fold every lane's buffered transfers into the
  /// ledger, in (lane, append order) — deterministic for deterministic
  /// per-lane streams. Call from one thread, with no concurrent appends.
  void merge_sinks();

  // ---- observability --------------------------------------------------------

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  /// Log entries not yet folded into rows (two per buffered transfer).
  [[nodiscard]] std::size_t pending_entries() const noexcept;
  [[nodiscard]] const ShardedLogLedgerStats& stats() const noexcept {
    return stats_;
  }

 private:
  /// One log entry, owned by `self`'s shard. `upload` tells which side of
  /// the transfer `self` was on (true: self uploaded to `other`).
  struct LogEntry {
    PeerId self;
    PeerId other;
    double bytes;
    bool upload;
  };

  /// Compacted per-peer counterparty rows: CSR-style parallel arrays,
  /// sorted by counterpart id, one pair per direction. Presence in the
  /// array mirrors pair-map key presence (a zero-byte transfer still
  /// creates the entry).
  struct Row {
    std::vector<PeerId> up_ids;
    std::vector<double> up_bytes;
    std::vector<PeerId> down_ids;
    std::vector<double> down_bytes;
  };

  struct Shard {
    std::vector<LogEntry> log;
  };

  [[nodiscard]] std::size_t shard_of(PeerId p) const noexcept {
    return p % shards_.size();
  }
  void append(PeerId self, PeerId other, double bytes, bool upload);
  void compact(Shard& shard);

  std::size_t n_;
  std::size_t compact_threshold_;
  std::vector<Shard> shards_;
  std::vector<Row> rows_;
  std::vector<double> total_up_;
  std::vector<double> total_down_;
  std::vector<std::uint64_t> version_;
  std::vector<ShardSink> sinks_;
  ShardedLogLedgerStats stats_;
};

}  // namespace tribvote::bt
