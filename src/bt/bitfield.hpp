// Piece-possession bitfield, the per-member piece map every BitTorrent
// client maintains. Packed 64-bit words; sized once at torrent granularity.
#pragma once

#include <cstdint>
#include <vector>

namespace tribvote::bt {

class Bitfield {
 public:
  Bitfield() = default;
  explicit Bitfield(std::size_t n_bits);

  [[nodiscard]] std::size_t size() const noexcept { return n_bits_; }
  [[nodiscard]] bool test(std::size_t i) const noexcept;
  void set(std::size_t i) noexcept;
  void reset(std::size_t i) noexcept;
  /// Set every bit (seed state).
  void set_all() noexcept;

  [[nodiscard]] std::size_t count() const noexcept;
  [[nodiscard]] bool all() const noexcept { return count() == n_bits_; }
  [[nodiscard]] bool none() const noexcept { return count() == 0; }

  /// True when this bitfield holds at least one piece `other` lacks — the
  /// "is interested" test between an uploader (this) and a downloader
  /// (other). Word-parallel. Sizes must match.
  [[nodiscard]] bool has_piece_not_in(const Bitfield& other) const noexcept;

 private:
  std::size_t n_bits_ = 0;
  std::vector<std::uint64_t> words_;
};

}  // namespace tribvote::bt
