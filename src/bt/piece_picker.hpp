// Rarest-first piece selection.
//
// Tracks swarm-wide availability (how many active members hold each piece)
// and picks, for a (downloader, uploader) link, the rarest piece the
// uploader has, the downloader lacks, and the downloader is not already
// fetching from someone else. Ties are broken uniformly at random, as real
// clients do, to avoid herd behaviour.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "bt/bitfield.hpp"
#include "util/rng.hpp"

namespace tribvote::bt {

inline constexpr std::size_t kNoPiece = static_cast<std::size_t>(-1);

class PiecePicker {
 public:
  explicit PiecePicker(std::size_t n_pieces);

  /// Availability bookkeeping: call when a member (re)announces possession.
  void add_have(std::size_t piece);
  void remove_have(std::size_t piece);
  /// Bulk add/remove a whole bitfield (member join/leave).
  void add_bitfield(const Bitfield& bf);
  void remove_bitfield(const Bitfield& bf);

  [[nodiscard]] std::uint32_t availability(std::size_t piece) const;

  /// Pick the rarest piece such that `uploader_has.test(p)`,
  /// `!downloader_has.test(p)` and `!in_flight[p]`. Returns kNoPiece when no
  /// piece qualifies. `in_flight` is indexed by piece and sized n_pieces.
  [[nodiscard]] std::size_t pick(const Bitfield& uploader_has,
                                 const Bitfield& downloader_has,
                                 const std::vector<bool>& in_flight,
                                 util::Rng& rng) const;

  /// Like pick(), but restricted to pieces in [lo, hi) — the streaming
  /// workload's playback window. Rarest-first within the window, same
  /// random tie-break. Returns kNoPiece when nothing in the window
  /// qualifies (callers fall back to the unrestricted pick for the tail).
  [[nodiscard]] std::size_t pick_window(const Bitfield& uploader_has,
                                        const Bitfield& downloader_has,
                                        const std::vector<bool>& in_flight,
                                        std::size_t lo, std::size_t hi,
                                        util::Rng& rng) const;

  [[nodiscard]] std::size_t piece_count() const noexcept {
    return avail_.size();
  }

 private:
  std::vector<std::uint32_t> avail_;
};

}  // namespace tribvote::bt
