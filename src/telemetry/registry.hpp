// Deterministic metric registry (DESIGN.md §11).
//
// Named counters, gauges and fixed-bucket histograms with lane-local value
// blocks. Hot-path writes land in the block of the worker lane executing
// the current encounter (telemetry::current_lane(), a thread-local the
// ShardKernel maintains around its phase tasks); blocks are folded into
// the totals serially at round barriers, in lane order. Every folded
// quantity is an unsigned sum, so totals are bit-identical at any shard
// count — the same discipline the fault plane's lane buffers and the
// sharded ledger's per-lane sinks follow.
//
// Concurrency contract:
//   * registration (counter/gauge/histogram) is serial, before rounds run;
//   * add/observe are lock-free — each lane owns a contiguous block and
//     the kernel never runs one lane concurrently with itself;
//   * set_total/set_gauge/merge_lanes and every read are serial
//     (simulator-thread) operations.
//
// Disabled telemetry never constructs a Registry at all: the Counter /
// Histogram handles below carry a null registry pointer and their add /
// observe bodies inline to a single predictable branch.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

namespace tribvote::telemetry {

/// Worker lane executing on this thread. 0 on the simulator thread and on
/// any thread the kernel has not claimed; the ShardKernel sets it around
/// each per-lane phase task.
[[nodiscard]] std::size_t current_lane() noexcept;
void set_current_lane(std::size_t lane) noexcept;

struct CounterId {
  std::uint32_t v = 0;
};
struct GaugeId {
  std::uint32_t v = 0;
};
struct HistogramId {
  std::uint32_t v = 0;
};

class Registry {
 public:
  /// `lanes` matches the shard kernel's lane count (>= 1).
  explicit Registry(std::size_t lanes = 1);

  [[nodiscard]] std::size_t lanes() const noexcept { return lanes_; }

  // ---- registration (serial; idempotent per name) --------------------------

  CounterId counter(const std::string& name);
  GaugeId gauge(const std::string& name);
  /// `upper_edges` must be strictly increasing. Bucket i counts
  /// observations v with v <= upper_edges[i] (first matching edge); an
  /// implicit final bucket counts everything above the last edge (and any
  /// NaN). Re-registering a name returns the existing id; the edges must
  /// match.
  HistogramId histogram(const std::string& name,
                        std::vector<double> upper_edges);

  // ---- hot path (lane-local via current_lane(), lock-free) -----------------

  void add(CounterId id, std::uint64_t delta = 1);
  void observe(HistogramId id, double value);

  // ---- serial-only writes --------------------------------------------------

  /// Overwrite a counter's merged total — the mirror path for counters
  /// whose source of truth lives elsewhere (RunStats, FaultStats,
  /// ShardKernelStats). Clears any unmerged lane deltas for the id.
  void set_total(CounterId id, std::uint64_t value);
  void set_gauge(GaugeId id, double value);

  /// Fold every lane block into the totals, in lane order, and zero the
  /// blocks. Reads already fold unmerged lane deltas on the fly, so this
  /// is compaction, not a correctness requirement — the runner calls it at
  /// the per-round barrier.
  void merge_lanes();

  // ---- reads (serial; include unmerged lane deltas) ------------------------

  [[nodiscard]] std::uint64_t total(CounterId id) const;
  [[nodiscard]] double gauge_value(GaugeId id) const;
  /// Bucket counts for a histogram: upper_edges.size() + 1 entries, the
  /// last being the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> buckets(HistogramId id) const;
  [[nodiscard]] const std::vector<double>& edges(HistogramId id) const;

  /// Merged total of a counter by name (0 if not registered) — the lookup
  /// examples and tests use so they need not thread ids around.
  [[nodiscard]] std::uint64_t total_by_name(const std::string& name) const;

  /// Every integer column in a stable order: counters in registration
  /// order, then each histogram expanded to `<name>.le<edge>` buckets plus
  /// `<name>.inf`. This is the per-round CSV schema.
  [[nodiscard]] std::vector<std::pair<std::string, std::uint64_t>> columns()
      const;
  [[nodiscard]] std::vector<std::pair<std::string, double>> gauges() const;

 private:
  std::size_t lanes_;

  std::vector<std::string> counter_names_;
  std::vector<std::uint64_t> counter_totals_;
  // lane -> counter block (indexed by CounterId::v).
  std::vector<std::vector<std::uint64_t>> lane_counters_;

  std::vector<std::string> gauge_names_;
  std::vector<double> gauge_values_;

  struct HistogramMeta {
    std::string name;
    std::vector<double> edges;
    std::size_t offset = 0;  ///< first bucket slot in the flat arrays
  };
  std::vector<HistogramMeta> histograms_;
  std::vector<std::uint64_t> bucket_totals_;  ///< flat, all histograms
  std::vector<std::vector<std::uint64_t>> lane_buckets_;
};

/// Nullable counter handle: instrumentation sites hold one by value and
/// call add() unconditionally; with telemetry disabled the registry
/// pointer is null and the call inlines to a branch-and-return.
class Counter {
 public:
  Counter() = default;
  Counter(Registry* registry, CounterId id) : registry_(registry), id_(id) {}
  void add(std::uint64_t delta = 1) const {
    if (registry_ != nullptr) registry_->add(id_, delta);
  }
  [[nodiscard]] bool enabled() const noexcept { return registry_ != nullptr; }

 private:
  Registry* registry_ = nullptr;
  CounterId id_{};
};

/// Nullable histogram handle, same contract as Counter.
class Histogram {
 public:
  Histogram() = default;
  Histogram(Registry* registry, HistogramId id)
      : registry_(registry), id_(id) {}
  void observe(double value) const {
    if (registry_ != nullptr) registry_->observe(id_, value);
  }
  [[nodiscard]] bool enabled() const noexcept { return registry_ != nullptr; }

 private:
  Registry* registry_ = nullptr;
  HistogramId id_{};
};

}  // namespace tribvote::telemetry
