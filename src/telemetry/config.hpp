// Telemetry knobs (ScenarioConfig::telemetry / TRIBVOTE_TELEMETRY /
// scenario_cli --telemetry). Header-only, like the ledger-backend enum, so
// sim/options.cpp can parse the env knob without a library dependency.
//
// Spec grammar (comma-separated, first token may be a bare mode):
//
//   off | counters | trace [,trace_out=FILE] [,csv=FILE]
//
//   off       collect nothing — the goldens' setting; the runner never
//             constructs a telemetry plane and every probe is a null
//             handle (zero overhead beyond one predictable branch).
//   counters  deterministic counter/histogram registry only.
//   trace     counters plus wall-clock span timing for the Chrome-trace
//             exporter.
//
// `trace_out`/`csv` name output files; the *harness* (scenario_cli) writes
// them after the run — the runner itself never opens a file, so replicas
// running in parallel with telemetry enabled cannot collide.
#pragma once

#include <cstdint>
#include <string>

namespace tribvote::telemetry {

enum class TelemetryMode : std::uint8_t {
  kOff = 0,
  kCounters,
  kTrace,
};

struct TelemetryConfig {
  TelemetryMode mode = TelemetryMode::kOff;
  /// Chrome-trace JSON output path ("" = harness default when tracing).
  std::string trace_out;
  /// Per-round counter CSV output path ("" = not written).
  std::string csv_out;

  [[nodiscard]] bool enabled() const noexcept {
    return mode != TelemetryMode::kOff;
  }
  [[nodiscard]] bool tracing() const noexcept {
    return mode == TelemetryMode::kTrace;
  }
};

[[nodiscard]] inline const char* telemetry_mode_name(TelemetryMode mode) {
  switch (mode) {
    case TelemetryMode::kOff:
      return "off";
    case TelemetryMode::kCounters:
      return "counters";
    case TelemetryMode::kTrace:
      return "trace";
  }
  return "off";
}

[[nodiscard]] inline bool parse_telemetry_mode(const std::string& name,
                                               TelemetryMode& out) {
  if (name == "off") {
    out = TelemetryMode::kOff;
  } else if (name == "counters") {
    out = TelemetryMode::kCounters;
  } else if (name == "trace") {
    out = TelemetryMode::kTrace;
  } else {
    return false;
  }
  return true;
}

/// Parse a telemetry spec into `out` (starting from its current values, so
/// flags can layer over an env default). Returns false and fills *error
/// (if given) on an unknown mode or key.
[[nodiscard]] inline bool parse_telemetry_spec(const std::string& spec,
                                               TelemetryConfig& out,
                                               std::string* error = nullptr) {
  std::size_t pos = 0;
  bool first = true;
  while (pos <= spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string token = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (token.empty()) {
      if (first) break;  // empty spec = leave defaults
      continue;
    }
    const std::size_t eq = token.find('=');
    if (eq == std::string::npos) {
      if (!parse_telemetry_mode(token, out.mode)) {
        if (error != nullptr) *error = "unknown telemetry mode: " + token;
        return false;
      }
    } else {
      const std::string key = token.substr(0, eq);
      const std::string value = token.substr(eq + 1);
      if (key == "mode") {
        if (!parse_telemetry_mode(value, out.mode)) {
          if (error != nullptr) *error = "unknown telemetry mode: " + value;
          return false;
        }
      } else if (key == "trace_out") {
        out.trace_out = value;
      } else if (key == "csv") {
        out.csv_out = value;
      } else {
        if (error != nullptr) *error = "unknown telemetry key: " + key;
        return false;
      }
    }
    first = false;
  }
  return true;
}

/// One-line human-readable form for banners ("off" when disabled).
[[nodiscard]] inline std::string describe(const TelemetryConfig& config) {
  if (!config.enabled()) return "off";
  std::string out = telemetry_mode_name(config.mode);
  std::string detail;
  if (!config.trace_out.empty()) detail += "trace_out=" + config.trace_out;
  if (!config.csv_out.empty()) {
    if (!detail.empty()) detail += ",";
    detail += "csv=" + config.csv_out;
  }
  if (!detail.empty()) out += "(" + detail + ")";
  return out;
}

}  // namespace tribvote::telemetry
