// Telemetry facade (DESIGN.md §11): one object per runner owning the
// deterministic Registry, the wall-clock TraceBuffer, and the per-round
// counter samples. The runner holds a null pointer when telemetry is off,
// so the disabled path allocates nothing.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "telemetry/config.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/trace.hpp"

namespace tribvote::telemetry {

class Telemetry {
 public:
  explicit Telemetry(TelemetryConfig config, std::size_t lanes = 1)
      : config_(std::move(config)), registry_(lanes) {}

  [[nodiscard]] const TelemetryConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] bool tracing() const noexcept { return config_.tracing(); }

  [[nodiscard]] Registry& registry() noexcept { return registry_; }
  [[nodiscard]] const Registry& registry() const noexcept { return registry_; }
  [[nodiscard]] TraceBuffer& trace() noexcept { return trace_; }
  [[nodiscard]] const TraceBuffer& trace() const noexcept { return trace_; }

  /// Snapshot the registry's columns as one per-round sample. Called by the
  /// runner at each round barrier after merge_lanes(); the harness writes
  /// the accumulated rows via write_round_csv after the run.
  void sample_round(std::uint64_t round, double t_hours);

  /// Write the per-round samples as CSV: t_hours, round, then every
  /// registry column (header captured at the first sample). Returns false
  /// if the file could not be written or no samples were taken.
  bool write_round_csv(const std::string& path) const;

  /// Write the span buffer in Chrome-trace JSON. Returns false on I/O error.
  bool write_chrome_trace(const std::string& path) const;

  [[nodiscard]] std::size_t round_samples() const noexcept {
    return rows_.size();
  }

 private:
  TelemetryConfig config_;
  Registry registry_;
  TraceBuffer trace_;

  std::vector<std::string> header_;  ///< column names, fixed at first sample
  struct Row {
    std::uint64_t round = 0;
    double t_hours = 0;
    std::vector<std::uint64_t> values;
  };
  std::vector<Row> rows_;
};

/// RAII span over a protocol or kernel phase. Holds a nullable Telemetry
/// pointer: with tracing off (or telemetry off entirely) construction and
/// destruction are a branch each, recording nothing.
class Span {
 public:
  Span(Telemetry* telemetry, const char* name, std::uint32_t tid = 0)
      : telemetry_(telemetry != nullptr && telemetry->tracing() ? telemetry
                                                                : nullptr),
        name_(name),
        tid_(tid) {
    if (telemetry_ != nullptr) start_us_ = telemetry_->trace().now_us();
  }
  ~Span() {
    if (telemetry_ == nullptr) return;
    TraceBuffer& buf = telemetry_->trace();
    const std::int64_t dur = buf.now_us() - start_us_;
    if (has_arg_) {
      buf.record_arg(name_, start_us_, dur, arg_, tid_);
    } else {
      buf.record(name_, start_us_, dur, tid_);
    }
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;

  /// Attach a numeric payload (encounter count, level count…) shown as
  /// args.n in the trace viewer.
  void set_arg(std::uint64_t arg) {
    arg_ = arg;
    has_arg_ = true;
  }

 private:
  Telemetry* telemetry_;
  const char* name_;
  std::uint32_t tid_;
  std::int64_t start_us_ = 0;
  std::uint64_t arg_ = 0;
  bool has_arg_ = false;
};

}  // namespace tribvote::telemetry
