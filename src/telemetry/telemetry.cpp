#include "telemetry/telemetry.hpp"

#include "telemetry/trace_writer.hpp"
#include "util/csv.hpp"

namespace tribvote::telemetry {

void Telemetry::sample_round(std::uint64_t round, double t_hours) {
  const auto columns = registry_.columns();
  if (header_.empty()) {
    header_.reserve(columns.size());
    for (const auto& [name, value] : columns) header_.push_back(name);
  }
  Row row;
  row.round = round;
  row.t_hours = t_hours;
  row.values.reserve(columns.size());
  for (const auto& [name, value] : columns) row.values.push_back(value);
  rows_.push_back(std::move(row));
}

bool Telemetry::write_round_csv(const std::string& path) const {
  if (rows_.empty()) return false;
  util::CsvWriter csv(path);
  if (!csv.ok()) return false;
  csv.field("t_hours").field("round");
  for (const auto& name : header_) csv.field(name);
  csv.end_row();
  for (const Row& row : rows_) {
    csv.field(util::format_double(row.t_hours, 4));
    csv.field(static_cast<long long>(row.round));
    // Columns registered after the first sample (none in practice — the
    // runner registers everything up front) would widen the row; clamp to
    // the captured header so the CSV stays rectangular.
    for (std::size_t c = 0; c < header_.size(); ++c) {
      csv.field(static_cast<long long>(c < row.values.size() ? row.values[c]
                                                             : 0));
    }
    csv.end_row();
  }
  return true;
}

bool Telemetry::write_chrome_trace(const std::string& path) const {
  return ChromeTraceWriter::write(path, trace_);
}

}  // namespace tribvote::telemetry
