#include "telemetry/registry.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>

namespace tribvote::telemetry {

namespace {
thread_local std::size_t tl_lane = 0;
}  // namespace

std::size_t current_lane() noexcept { return tl_lane; }
void set_current_lane(std::size_t lane) noexcept { tl_lane = lane; }

Registry::Registry(std::size_t lanes) : lanes_(std::max<std::size_t>(1, lanes)) {
  lane_counters_.resize(lanes_);
  lane_buckets_.resize(lanes_);
}

CounterId Registry::counter(const std::string& name) {
  const auto it =
      std::find(counter_names_.begin(), counter_names_.end(), name);
  if (it != counter_names_.end()) {
    return CounterId{
        static_cast<std::uint32_t>(it - counter_names_.begin())};
  }
  counter_names_.push_back(name);
  counter_totals_.push_back(0);
  for (auto& block : lane_counters_) block.push_back(0);
  return CounterId{static_cast<std::uint32_t>(counter_names_.size() - 1)};
}

GaugeId Registry::gauge(const std::string& name) {
  const auto it = std::find(gauge_names_.begin(), gauge_names_.end(), name);
  if (it != gauge_names_.end()) {
    return GaugeId{static_cast<std::uint32_t>(it - gauge_names_.begin())};
  }
  gauge_names_.push_back(name);
  gauge_values_.push_back(0.0);
  return GaugeId{static_cast<std::uint32_t>(gauge_names_.size() - 1)};
}

HistogramId Registry::histogram(const std::string& name,
                                std::vector<double> upper_edges) {
  assert(std::is_sorted(upper_edges.begin(), upper_edges.end()));
  for (std::size_t h = 0; h < histograms_.size(); ++h) {
    if (histograms_[h].name == name) {
      assert(histograms_[h].edges == upper_edges);
      return HistogramId{static_cast<std::uint32_t>(h)};
    }
  }
  HistogramMeta meta;
  meta.name = name;
  meta.edges = std::move(upper_edges);
  meta.offset = bucket_totals_.size();
  const std::size_t n_buckets = meta.edges.size() + 1;  // + overflow
  histograms_.push_back(std::move(meta));
  bucket_totals_.resize(bucket_totals_.size() + n_buckets, 0);
  for (auto& block : lane_buckets_) {
    block.resize(bucket_totals_.size(), 0);
  }
  return HistogramId{static_cast<std::uint32_t>(histograms_.size() - 1)};
}

void Registry::add(CounterId id, std::uint64_t delta) {
  lane_counters_[current_lane()][id.v] += delta;
}

void Registry::observe(HistogramId id, double value) {
  const HistogramMeta& meta = histograms_[id.v];
  // First edge >= value; everything above the last edge (and NaN, for
  // which every comparison is false) lands in the overflow bucket.
  std::size_t bucket = meta.edges.size();
  for (std::size_t i = 0; i < meta.edges.size(); ++i) {
    if (value <= meta.edges[i]) {
      bucket = i;
      break;
    }
  }
  ++lane_buckets_[current_lane()][meta.offset + bucket];
}

void Registry::set_total(CounterId id, std::uint64_t value) {
  counter_totals_[id.v] = value;
  for (auto& block : lane_counters_) block[id.v] = 0;
}

void Registry::set_gauge(GaugeId id, double value) {
  gauge_values_[id.v] = value;
}

void Registry::merge_lanes() {
  for (auto& block : lane_counters_) {
    for (std::size_t c = 0; c < counter_totals_.size(); ++c) {
      counter_totals_[c] += block[c];
      block[c] = 0;
    }
  }
  for (auto& block : lane_buckets_) {
    for (std::size_t b = 0; b < bucket_totals_.size(); ++b) {
      bucket_totals_[b] += block[b];
      block[b] = 0;
    }
  }
}

std::uint64_t Registry::total(CounterId id) const {
  std::uint64_t v = counter_totals_[id.v];
  for (const auto& block : lane_counters_) v += block[id.v];
  return v;
}

double Registry::gauge_value(GaugeId id) const { return gauge_values_[id.v]; }

std::vector<std::uint64_t> Registry::buckets(HistogramId id) const {
  const HistogramMeta& meta = histograms_[id.v];
  const std::size_t n = meta.edges.size() + 1;
  std::vector<std::uint64_t> out(n, 0);
  for (std::size_t b = 0; b < n; ++b) {
    out[b] = bucket_totals_[meta.offset + b];
    for (const auto& block : lane_buckets_) out[b] += block[meta.offset + b];
  }
  return out;
}

const std::vector<double>& Registry::edges(HistogramId id) const {
  return histograms_[id.v].edges;
}

std::uint64_t Registry::total_by_name(const std::string& name) const {
  const auto it =
      std::find(counter_names_.begin(), counter_names_.end(), name);
  if (it == counter_names_.end()) return 0;
  return total(CounterId{
      static_cast<std::uint32_t>(it - counter_names_.begin())});
}

std::vector<std::pair<std::string, std::uint64_t>> Registry::columns() const {
  std::vector<std::pair<std::string, std::uint64_t>> out;
  out.reserve(counter_names_.size() + bucket_totals_.size());
  for (std::size_t c = 0; c < counter_names_.size(); ++c) {
    out.emplace_back(counter_names_[c],
                     total(CounterId{static_cast<std::uint32_t>(c)}));
  }
  for (std::size_t h = 0; h < histograms_.size(); ++h) {
    const HistogramMeta& meta = histograms_[h];
    const auto counts = buckets(HistogramId{static_cast<std::uint32_t>(h)});
    for (std::size_t b = 0; b < counts.size(); ++b) {
      std::string col = meta.name;
      if (b < meta.edges.size()) {
        // Format the edge compactly; edges are small integers in practice.
        char buf[32];
        const double e = meta.edges[b];
        if (e == static_cast<double>(static_cast<long long>(e))) {
          std::snprintf(buf, sizeof buf, ".le%lld",
                        static_cast<long long>(e));
        } else {
          std::snprintf(buf, sizeof buf, ".le%g", e);
        }
        col += buf;
      } else {
        col += ".inf";
      }
      out.emplace_back(std::move(col), counts[b]);
    }
  }
  return out;
}

std::vector<std::pair<std::string, double>> Registry::gauges() const {
  std::vector<std::pair<std::string, double>> out;
  out.reserve(gauge_names_.size());
  for (std::size_t g = 0; g < gauge_names_.size(); ++g) {
    out.emplace_back(gauge_names_[g], gauge_values_[g]);
  }
  return out;
}

}  // namespace tribvote::telemetry
