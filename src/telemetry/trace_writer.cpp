#include "telemetry/trace_writer.hpp"

#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <fstream>

namespace tribvote::telemetry {

namespace {

// Span names are C identifiers with dots in practice, but escape anyway so
// a stray name cannot produce invalid JSON.
std::string json_escape(const char* s) {
  std::string out;
  for (; *s != '\0'; ++s) {
    const char c = *s;
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace

bool ChromeTraceWriter::write(const std::string& path,
                              const TraceBuffer& buffer) {
  std::ofstream out(path);
  if (!out) return false;

  std::vector<SpanEvent> events = buffer.events();
  std::sort(events.begin(), events.end(),
            [](const SpanEvent& a, const SpanEvent& b) {
              if (a.tid != b.tid) return a.tid < b.tid;
              if (a.ts_us != b.ts_us) return a.ts_us < b.ts_us;
              return a.dur_us > b.dur_us;  // parents before children
            });

  out << "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  char buf[160];
  for (std::size_t i = 0; i < events.size(); ++i) {
    const SpanEvent& e = events[i];
    if (i != 0) out << ',';
    std::snprintf(buf, sizeof buf,
                  "\n{\"name\":\"%s\",\"ph\":\"X\",\"pid\":1,\"tid\":%u,"
                  "\"ts\":%" PRId64 ",\"dur\":%" PRId64,
                  json_escape(e.name).c_str(), e.tid, e.ts_us, e.dur_us);
    out << buf;
    if (e.has_arg) {
      std::snprintf(buf, sizeof buf, ",\"args\":{\"n\":%" PRIu64 "}", e.arg);
      out << buf;
    }
    out << '}';
  }
  out << "\n]}\n";
  return static_cast<bool>(out);
}

}  // namespace tribvote::telemetry
