// Span buffer for the Chrome-trace exporter (DESIGN.md §11).
//
// A TraceBuffer collects completed spans — (name, start, duration) against
// a steady-clock epoch fixed at construction. Spans time *wall clock*, not
// simulated time: they exist to show where a run spends hardware time
// (which protocol phase, which kernel phase), and are the only part of the
// telemetry plane that is not deterministic. Counter/histogram totals never
// come from here.
//
// Threading: record() is not synchronized. The runner only records spans
// from the simulator thread (protocol phases and kernel phases all run
// there; worker lanes execute inside a phase, they do not own spans), so
// one buffer per runner needs no lock.
#pragma once

#include <chrono>
#include <cstdint>
#include <vector>

namespace tribvote::telemetry {

/// One completed span. `name` must point at static storage (instrumentation
/// sites pass string literals); `ts_us`/`dur_us` are microseconds against
/// the buffer's epoch.
struct SpanEvent {
  const char* name = "";
  std::int64_t ts_us = 0;
  std::int64_t dur_us = 0;
  std::uint32_t tid = 0;
  std::uint64_t arg = 0;  ///< generic numeric payload (encounters, levels…)
  bool has_arg = false;
};

class TraceBuffer {
 public:
  TraceBuffer() : epoch_(std::chrono::steady_clock::now()) {}

  /// Microseconds elapsed since the buffer's epoch.
  [[nodiscard]] std::int64_t now_us() const {
    return std::chrono::duration_cast<std::chrono::microseconds>(
               std::chrono::steady_clock::now() - epoch_)
        .count();
  }

  void record(const char* name, std::int64_t ts_us, std::int64_t dur_us,
              std::uint32_t tid = 0) {
    events_.push_back(SpanEvent{name, ts_us, dur_us, tid, 0, false});
  }
  void record_arg(const char* name, std::int64_t ts_us, std::int64_t dur_us,
                  std::uint64_t arg, std::uint32_t tid = 0) {
    events_.push_back(SpanEvent{name, ts_us, dur_us, tid, arg, true});
  }

  [[nodiscard]] const std::vector<SpanEvent>& events() const noexcept {
    return events_;
  }
  [[nodiscard]] std::size_t size() const noexcept { return events_.size(); }
  void clear() { events_.clear(); }

 private:
  std::chrono::steady_clock::time_point epoch_;
  std::vector<SpanEvent> events_;
};

}  // namespace tribvote::telemetry
