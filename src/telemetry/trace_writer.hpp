// Chrome-trace (Trace Event Format) exporter for TraceBuffer spans. The
// output loads in chrome://tracing and Perfetto: one complete event
// (ph:"X") per span, pid 1, tid = SpanEvent::tid, microsecond timestamps.
#pragma once

#include <string>

#include "telemetry/trace.hpp"

namespace tribvote::telemetry {

class ChromeTraceWriter {
 public:
  /// Write `buffer` to `path` as a Trace Event Format JSON document.
  /// Events are sorted by (tid, ts, -dur) so timestamps are monotone
  /// within each tid and enclosing spans precede their children.
  /// Returns false if the file could not be written.
  static bool write(const std::string& path, const TraceBuffer& buffer);
};

}  // namespace tribvote::telemetry
