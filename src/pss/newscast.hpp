// Newscast-style gossip peer sampling (Jelasity et al.), the family
// Tribler's deployed BuddyCast belongs to.
//
// Each node keeps a fixed-size view of (peer, heartbeat) entries. On every
// gossip tick an online node contacts a random live view entry and both
// sides merge (their view ∪ peer's view ∪ fresh self-entries), keeping the
// `view_size` freshest entries per unique peer. sample() draws a random
// *currently online* view entry — a failed dial to an offline entry is
// retried against another entry, as a real client would.
//
// Compared with the oracle PSS this introduces the realistic artifacts the
// abl_pss_comparison bench quantifies: bounded views, stale entries under
// churn, and bootstrap bias toward long-lived peers.
#pragma once

#include <cstdint>
#include <vector>

#include "pss/online_directory.hpp"
#include "pss/peer_sampler.hpp"
#include "telemetry/registry.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace tribvote::pss {

struct NewscastConfig {
  std::size_t view_size = 20;
  /// Entries older than this are considered dead and dropped on merge.
  Duration entry_ttl = 30 * kMinute;
  /// Fresh entries injected from the bootstrap service when a node comes
  /// online with an empty/stale view (models the tracker contact a real
  /// client performs once at startup).
  std::size_t bootstrap_entries = 5;
};

class NewscastPss final : public PeerSampler {
 public:
  /// `directory` must outlive the PSS and is updated by the runner.
  NewscastPss(std::size_t n_peers, const OnlineDirectory& directory,
              NewscastConfig config, util::Rng rng);

  /// Node lifecycle hooks (called by the runner on session start/end).
  void on_peer_online(PeerId peer, Time now) override;
  void on_peer_offline(PeerId peer) override;

  /// One gossip round for all online nodes at time `now` (runner calls this
  /// on a fixed period, e.g. every 60 s). `loss` is a per-dial drop
  /// probability (the fault plane's message loss as seen by the PSS): a
  /// dropped dial merges nothing on either side but, unlike a dead entry,
  /// leaves the target in the view — the peer is alive, the network ate
  /// the exchange. With loss = 0 no extra randomness is drawn and the
  /// round is byte-identical to the loss-free implementation. Each dropped
  /// dial increments *dropped when given.
  void gossip_round(Time now, double loss = 0.0,
                    std::uint64_t* dropped = nullptr) override;

  /// Random live view entry of `self`; falls back across stale entries.
  [[nodiscard]] PeerId sample(PeerId self) override;

  /// Telemetry probe counting completed view exchanges (merges). A
  /// default-constructed (null) probe is inert; counting never changes
  /// protocol behaviour or RNG draws.
  void set_exchange_probe(telemetry::Counter probe) noexcept override {
    exchange_probe_ = probe;
  }

  /// Current view of a node (peer ids), for tests and diagnostics.
  [[nodiscard]] std::vector<PeerId> view_of(PeerId peer) const;

 private:
  struct Entry {
    PeerId peer = kInvalidPeer;
    Time heartbeat = 0;
  };

  void merge_views(PeerId a, PeerId b, Time now);
  void insert_entry(std::vector<Entry>& view, Entry entry) const;
  void bootstrap(PeerId peer, Time now);

  const OnlineDirectory* directory_;
  NewscastConfig config_;
  util::Rng rng_;
  std::vector<std::vector<Entry>> views_;
  telemetry::Counter exchange_probe_;
};

}  // namespace tribvote::pss
