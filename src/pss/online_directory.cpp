#include "pss/online_directory.hpp"

#include <cassert>

namespace tribvote::pss {

OnlineDirectory::OnlineDirectory(std::size_t n_peers)
    : position_(n_peers, kNotOnline) {}

void OnlineDirectory::set_online(PeerId peer, bool online) {
  assert(peer < position_.size());
  const bool currently = position_[peer] != kNotOnline;
  if (online == currently) return;
  if (online) {
    position_[peer] = online_ids_.size();
    online_ids_.push_back(peer);
  } else {
    // Swap-remove: move the last id into this slot.
    const std::size_t pos = position_[peer];
    const PeerId last = online_ids_.back();
    online_ids_[pos] = last;
    position_[last] = pos;
    online_ids_.pop_back();
    position_[peer] = kNotOnline;
  }
}

bool OnlineDirectory::is_online(PeerId peer) const {
  assert(peer < position_.size());
  return position_[peer] != kNotOnline;
}

PeerId OnlineDirectory::sample_online(PeerId self, util::Rng& rng) const {
  const std::size_t n = online_ids_.size();
  if (n == 0) return kInvalidPeer;
  const bool self_online = self < position_.size() && is_online(self);
  if (self_online && n == 1) return kInvalidPeer;
  for (;;) {
    const PeerId pick = online_ids_[rng.next_below(n)];
    if (pick != self) return pick;
    // Self was drawn; with n >= 2 the loop terminates quickly (expected
    // < 2 iterations).
  }
}

}  // namespace tribvote::pss
