// Factory selection of the simulator-side PeerSampler implementations,
// mirroring bt::make_ledger: callers name a kind and hold the abstract
// interface, so swapping the sampling strategy never touches call sites.
// (The socket plane's net::PeerDirectory is constructed directly — it needs
// a transport and has no place in a sim-side factory.)
#pragma once

#include <memory>
#include <optional>
#include <string_view>

#include "pss/newscast.hpp"
#include "pss/online_directory.hpp"
#include "pss/peer_sampler.hpp"
#include "util/rng.hpp"

namespace tribvote::pss {

enum class SamplerKind : std::uint8_t {
  kOracle,    ///< exact uniform over the online set (paper §III)
  kNewscast,  ///< gossip view exchange (Newscast / BuddyCast family)
};

[[nodiscard]] const char* sampler_kind_name(SamplerKind kind) noexcept;
[[nodiscard]] std::optional<SamplerKind> parse_sampler_kind(
    std::string_view name) noexcept;

/// Construct a sampler over `directory` (which must outlive it). `newscast`
/// is consulted only for SamplerKind::kNewscast; `rng` seeds the sampler's
/// private stream.
[[nodiscard]] std::unique_ptr<PeerSampler> make_sampler(
    SamplerKind kind, std::size_t n_peers, const OnlineDirectory& directory,
    const NewscastConfig& newscast, util::Rng rng);

}  // namespace tribvote::pss
