// Online-membership registry.
//
// The scenario runner flips peers online/offline as trace sessions start
// and end; the PSS implementations (and the attack models) consult this
// directory. It supports O(1) set/clear and O(1) uniform sampling via a
// dense id array with swap-removal.
#pragma once

#include <cstdint>
#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"

namespace tribvote::pss {

class OnlineDirectory {
 public:
  explicit OnlineDirectory(std::size_t n_peers);

  void set_online(PeerId peer, bool online);
  [[nodiscard]] bool is_online(PeerId peer) const;

  [[nodiscard]] std::size_t online_count() const noexcept {
    return online_ids_.size();
  }
  [[nodiscard]] std::size_t peer_count() const noexcept {
    return position_.size();
  }

  /// Uniform random online peer != self; kInvalidPeer if none exists.
  [[nodiscard]] PeerId sample_online(PeerId self, util::Rng& rng) const;

  /// Snapshot of the online set (unordered).
  [[nodiscard]] const std::vector<PeerId>& online_ids() const noexcept {
    return online_ids_;
  }

 private:
  static constexpr std::size_t kNotOnline = static_cast<std::size_t>(-1);
  std::vector<std::size_t> position_;  // peer -> index in online_ids_
  std::vector<PeerId> online_ids_;
};

}  // namespace tribvote::pss
