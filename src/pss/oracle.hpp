// Oracle PSS: exact uniform sampling over the online population — the
// paper's modelling assumption for the PSS (§III).
#pragma once

#include "pss/online_directory.hpp"
#include "pss/peer_sampler.hpp"
#include "util/rng.hpp"

namespace tribvote::pss {

class OraclePss final : public PeerSampler {
 public:
  /// `directory` must outlive the sampler.
  OraclePss(const OnlineDirectory& directory, util::Rng rng)
      : directory_(&directory), rng_(rng) {}

  [[nodiscard]] PeerId sample(PeerId self) override {
    return directory_->sample_online(self, rng_);
  }

 private:
  const OnlineDirectory* directory_;
  util::Rng rng_;
};

}  // namespace tribvote::pss
