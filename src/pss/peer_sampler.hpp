// Peer sampling service (PSS) interface.
//
// Every protocol in the paper (ModerationCast, BallotBox, VoxPopuli,
// BarterCast gossip) discovers counterparts exclusively through a PSS that
// "periodically returns a random peer from the entire population of online
// peers" (§III). Three implementations are provided:
//
//   * OraclePss      — exact uniform sampling over the online set; matches
//                      the paper's modelling assumption and is used by the
//                      main experiments.
//   * NewscastPss    — a gossip view-exchange PSS in the style of Newscast /
//                      BuddyCast (Tribler's deployed PSS); used by the
//                      abl_pss_comparison bench to show the results hold
//                      under a real decentralized PSS.
//   * net::PeerDirectory — the socket plane's sampler: the same Newscast
//                      view, but maintained from Schnorr-signed descriptor
//                      exchanges over TCP (PROTOCOL.md §8) instead of the
//                      simulator's shared-memory merge.
//
// The base class carries the full lifecycle surface so a caller (the
// ScenarioRunner, the socket EncounterScheduler) can hold one PeerSampler*
// and drive any implementation: membership hooks, the proactive gossip
// tick, and the telemetry probe are default-no-op virtuals — a sampler that
// reads a shared directory (the oracle) or gossips over the wire (the
// socket directory) simply ignores the ones it does not need.
#pragma once

#include <cstdint>

#include "telemetry/registry.hpp"
#include "util/ids.hpp"
#include "util/time.hpp"

namespace tribvote::pss {

class PeerSampler {
 public:
  virtual ~PeerSampler() = default;

  /// Return a random *online* peer other than `self`, or kInvalidPeer when
  /// no such peer is known/available.
  [[nodiscard]] virtual PeerId sample(PeerId self) = 0;

  /// Membership lifecycle (no-ops for samplers that read a shared
  /// directory or learn membership from the wire).
  virtual void on_peer_online(PeerId /*peer*/, Time /*now*/) {}
  virtual void on_peer_offline(PeerId /*peer*/) {}

  /// One proactive view-gossip tick for the whole population at `now`
  /// (the sim Newscast's shared-memory merge). Samplers that gossip over a
  /// transport — or need none at all — ignore it. `loss` is a per-dial
  /// drop probability; each dropped dial increments *dropped when given.
  virtual void gossip_round(Time /*now*/, double /*loss*/ = 0.0,
                            std::uint64_t* /*dropped*/ = nullptr) {}

  /// Telemetry probe counting completed view exchanges. A null probe is
  /// inert; counting never changes protocol behaviour or RNG draws.
  virtual void set_exchange_probe(telemetry::Counter /*probe*/) noexcept {}
};

}  // namespace tribvote::pss
