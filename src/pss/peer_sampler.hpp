// Peer sampling service (PSS) interface.
//
// Every protocol in the paper (ModerationCast, BallotBox, VoxPopuli,
// BarterCast gossip) discovers counterparts exclusively through a PSS that
// "periodically returns a random peer from the entire population of online
// peers" (§III). Two implementations are provided:
//
//   * OraclePss    — exact uniform sampling over the online set; matches the
//                    paper's modelling assumption and is used by the main
//                    experiments.
//   * NewscastPss  — a gossip view-exchange PSS in the style of Newscast /
//                    BuddyCast (Tribler's deployed PSS); used by the
//                    abl_pss_comparison bench to show the results hold under
//                    a real decentralized PSS.
#pragma once

#include "util/ids.hpp"

namespace tribvote::pss {

class PeerSampler {
 public:
  virtual ~PeerSampler() = default;

  /// Return a random *online* peer other than `self`, or kInvalidPeer when
  /// no such peer is known/available.
  [[nodiscard]] virtual PeerId sample(PeerId self) = 0;
};

}  // namespace tribvote::pss
