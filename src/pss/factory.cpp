#include "pss/factory.hpp"

#include "pss/oracle.hpp"

namespace tribvote::pss {

const char* sampler_kind_name(SamplerKind kind) noexcept {
  switch (kind) {
    case SamplerKind::kOracle:
      return "oracle";
    case SamplerKind::kNewscast:
      return "newscast";
  }
  return "?";
}

std::optional<SamplerKind> parse_sampler_kind(std::string_view name) noexcept {
  if (name == "oracle") return SamplerKind::kOracle;
  if (name == "newscast") return SamplerKind::kNewscast;
  return std::nullopt;
}

std::unique_ptr<PeerSampler> make_sampler(SamplerKind kind,
                                          std::size_t n_peers,
                                          const OnlineDirectory& directory,
                                          const NewscastConfig& newscast,
                                          util::Rng rng) {
  switch (kind) {
    case SamplerKind::kOracle:
      return std::make_unique<OraclePss>(directory, rng);
    case SamplerKind::kNewscast:
      return std::make_unique<NewscastPss>(n_peers, directory, newscast, rng);
  }
  return nullptr;
}

}  // namespace tribvote::pss
