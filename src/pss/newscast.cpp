#include "pss/newscast.hpp"

#include <algorithm>
#include <cassert>

namespace tribvote::pss {

NewscastPss::NewscastPss(std::size_t n_peers,
                         const OnlineDirectory& directory,
                         NewscastConfig config, util::Rng rng)
    : directory_(&directory), config_(config), rng_(rng), views_(n_peers) {
  assert(config_.view_size > 0);
}

void NewscastPss::insert_entry(std::vector<Entry>& view, Entry entry) const {
  // One entry per peer, freshest heartbeat wins.
  const auto it = std::find_if(
      view.begin(), view.end(),
      [&entry](const Entry& e) { return e.peer == entry.peer; });
  if (it != view.end()) {
    it->heartbeat = std::max(it->heartbeat, entry.heartbeat);
    return;
  }
  view.push_back(entry);
}

void NewscastPss::bootstrap(PeerId peer, Time now) {
  for (std::size_t i = 0; i < config_.bootstrap_entries; ++i) {
    const PeerId pick = directory_->sample_online(peer, rng_);
    if (pick == kInvalidPeer) break;
    insert_entry(views_[peer], Entry{pick, now});
  }
}

void NewscastPss::on_peer_online(PeerId peer, Time now) {
  assert(peer < views_.size());
  // Drop entries that expired while we were away, then (re)bootstrap if the
  // view is empty — a returning client re-contacts the tracker.
  auto& view = views_[peer];
  std::erase_if(view, [&](const Entry& e) {
    return now - e.heartbeat > config_.entry_ttl;
  });
  if (view.empty()) bootstrap(peer, now);
}

void NewscastPss::on_peer_offline(PeerId peer) {
  assert(peer < views_.size());
  // Views persist across sessions (local database), nothing to do; the TTL
  // check on return prunes stale state.
  (void)peer;
}

void NewscastPss::merge_views(PeerId a, PeerId b, Time now) {
  std::vector<Entry> merged;
  merged.reserve(views_[a].size() + views_[b].size() + 2);
  for (const Entry& e : views_[a]) insert_entry(merged, e);
  for (const Entry& e : views_[b]) insert_entry(merged, e);
  insert_entry(merged, Entry{a, now});
  insert_entry(merged, Entry{b, now});
  // Drop expired and self-entries, keep the freshest view_size.
  std::erase_if(merged, [&](const Entry& e) {
    return now - e.heartbeat > config_.entry_ttl;
  });
  std::sort(merged.begin(), merged.end(),
            [](const Entry& x, const Entry& y) {
              if (x.heartbeat != y.heartbeat) return x.heartbeat > y.heartbeat;
              return x.peer < y.peer;
            });
  auto assign_view = [&](PeerId owner) {
    std::vector<Entry> view;
    view.reserve(config_.view_size);
    for (const Entry& e : merged) {
      if (e.peer == owner) continue;
      view.push_back(e);
      if (view.size() >= config_.view_size) break;
    }
    views_[owner] = std::move(view);
  };
  assign_view(a);
  assign_view(b);
}

void NewscastPss::gossip_round(Time now, double loss,
                               std::uint64_t* dropped) {
  // Snapshot the online set; iteration order randomized for fairness.
  std::vector<PeerId> online = directory_->online_ids();
  std::sort(online.begin(), online.end());
  rng_.shuffle(online);
  for (PeerId node : online) {
    auto& view = views_[node];
    if (view.empty()) {
      bootstrap(node, now);
      if (view.empty()) continue;
    }
    // Dial a random view entry; skip if it is offline (failed connection).
    const Entry target = view[rng_.next_below(view.size())];
    if (!directory_->is_online(target.peer)) {
      // Dead entry: age it out by removal so the view self-heals.
      std::erase_if(view, [&](const Entry& e) { return e.peer == target.peer; });
      continue;
    }
    if (loss > 0.0 && rng_.next_bool(loss)) {
      // Transport loss: the dial never completes. The entry stays — the
      // peer is fine — so the view keeps healing on later rounds.
      if (dropped != nullptr) ++*dropped;
      continue;
    }
    merge_views(node, target.peer, now);
    exchange_probe_.add();
  }
}

PeerId NewscastPss::sample(PeerId self) {
  assert(self < views_.size());
  auto& view = views_[self];
  // Try a few random entries; drop dead ones as we go (failed dials).
  for (int attempt = 0; attempt < 4 && !view.empty(); ++attempt) {
    const std::size_t idx = rng_.next_below(view.size());
    const PeerId peer = view[idx].peer;
    if (peer != self && directory_->is_online(peer)) return peer;
    view.erase(view.begin() + static_cast<std::ptrdiff_t>(idx));
  }
  return kInvalidPeer;
}

std::vector<PeerId> NewscastPss::view_of(PeerId peer) const {
  assert(peer < views_.size());
  std::vector<PeerId> ids;
  ids.reserve(views_[peer].size());
  for (const Entry& e : views_[peer]) ids.push_back(e.peer);
  return ids;
}

}  // namespace tribvote::pss
