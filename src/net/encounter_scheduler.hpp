// EncounterScheduler: the free-running node's active thread (paper Fig. 1,
// "active thread" loop) on top of the poll loop's timers. Every round_ms it
//
//   1. ages the directory (TTL eviction),
//   2. samples a counterpart through the pss::PeerSampler API,
//   3. reuses the live connection to it or dials its descriptor address
//      (bounded concurrent dials; per-peer exponential backoff on failure;
//      descriptors evicted after max_dial_failures — the directory's rule),
//   4. drives the ExchangeEngine's vote leg (and periodically the
//      moderation leg) over that connection, and
//   5. periodically pushes its Newscast shuffle so views keep mixing.
//
// Rounds are the scheduler's logical clock: encounter timestamps and
// descriptor heartbeats advance one Time unit per round, which keeps every
// protocol interval (BallotBox decay, moderation TTLs, view TTLs) on the
// same time axis the simulator uses. An N-node cluster where each node
// runs one scheduler bootstraps from a single seed address and then runs
// the full paper loop unattended (scripts/cluster_smoke.sh).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/event_loop.hpp"
#include "net/node_service.hpp"
#include "net/peer_directory.hpp"

namespace tribvote::net {

struct EncounterSchedulerConfig {
  int round_ms = 100;           ///< local round period
  int shuffle_every = 4;        ///< rounds between proactive shuffles
  int mod_every = 4;            ///< every k-th encounter is moderation
                                ///< (0 = vote-only)
  std::size_t max_dials = 4;    ///< concurrent dials in flight
  int backoff_base_ms = 200;    ///< first redial delay; doubles per failure
  int backoff_max_ms = 5000;
  int seed_redial_rounds = 8;   ///< retry a dead bootstrap seed every k rounds
};

class EncounterScheduler {
 public:
  struct Stats {
    std::uint64_t rounds = 0;
    std::uint64_t vote_encounters = 0;  ///< initiated (completion is the
                                        ///< engine's to count)
    std::uint64_t mod_encounters = 0;
    std::uint64_t shuffles = 0;
    std::uint64_t dials = 0;
    std::uint64_t dial_failures = 0;
    std::uint64_t redials_scheduled = 0;  ///< backoff timers armed
    std::uint64_t ttl_evictions = 0;
    std::uint64_t empty_samples = 0;  ///< sampler had nobody to offer
    std::uint64_t encounter_timeouts = 0;  ///< established peer stalled out
                                           ///< (backoff, no dial-failure)
    std::uint64_t partition_skips = 0;  ///< rounds/targets skipped offline
  };

  /// All three must outlive the scheduler. Installs itself as the
  /// service's closed-hook (dial-failure accounting) and wires the
  /// directory + round clock into the service.
  EncounterScheduler(EventLoop& loop, NodeService& service,
                     PeerDirectory& directory,
                     EncounterSchedulerConfig config);
  ~EncounterScheduler();

  EncounterScheduler(const EncounterScheduler&) = delete;
  EncounterScheduler& operator=(const EncounterScheduler&) = delete;

  /// Bootstrap seed: dialed on start(); its HELLO triggers the first
  /// shuffle. May be called repeatedly (multiple seeds).
  void add_seed(const std::string& host, std::uint16_t port);

  /// Arm the first round tick. Rounds then self-reschedule until stop().
  void start();
  void stop();
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Logical protocol time: one Time unit per completed round.
  [[nodiscard]] Time now() const noexcept {
    return static_cast<Time>(stats_.rounds);
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

  /// Wire the chaos shim's partition schedule into the round loop: each
  /// tick advances the shim's round clock; while we are inside a partition
  /// window the round idles (no sample, no dial), and partitioned targets
  /// are skipped rather than dialed into a guaranteed reset.
  void set_impairment(Impairment* impair) { impair_ = impair; }

 private:
  struct Backoff {
    std::size_t failures = 0;
    bool blocked = false;  ///< waiting out the backoff window
    EventLoop::TimerId timer = 0;
  };
  struct Seed {
    std::string host;
    std::uint16_t port = 0;
    int conn = -1;
    bool shuffled = false;
  };

  void tick();
  void settle_dials();
  void try_dial(PeerId peer);
  void on_closed(int conn, PeerId peer, CloseReason reason);
  void note_failure(PeerId peer);
  void apply_backoff(PeerId peer);

  EventLoop* loop_;
  NodeService* service_;
  PeerDirectory* directory_;
  EncounterSchedulerConfig config_;
  Impairment* impair_ = nullptr;
  bool running_ = false;
  EventLoop::TimerId tick_timer_ = 0;
  std::map<int, PeerId> dialing_;  ///< conn -> intended peer
  std::map<PeerId, Backoff> backoff_;
  std::vector<Seed> seeds_;
  Stats stats_;
};

}  // namespace tribvote::net
