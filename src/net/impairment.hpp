// Deterministic transport chaos plane (DESIGN.md §16).
//
// The PR 4 fault plane draws per-encounter verdicts inside the simulator;
// this shim maps the same idea onto the real socket plane. It sits between
// NodeService's recv() loop and the FrameReader and carves each inbound
// byte stream into fixed-size chunks; every chunk gets one verdict — pass,
// drop (connection reset), bounded delay, truncation, single-bit
// corruption, or a stall that silences the stream for good (a half-open
// peer) — drawn from an RNG stream keyed
//
//     (seed, connection key, direction, chunk index).
//
// Because the key is the *byte offset* of the stream (offset / kChunkBytes)
// and never the recv() segmentation, the verdict table of a connection is a
// pure function of the key tuple: independent of poll timing, of how TCP
// split the stream, and of every other connection's traffic. Two runs with
// the same seed and the same connection-establishment order therefore see
// byte-identical impairment — the property CI's chaos-smoke job asserts by
// diffing state digests across two impaired tribvote_cluster runs.
//
// Two correlated-WAN extensions beyond i.i.d. verdicts (ROADMAP adversary
// item (c)): a Gilbert–Elliott two-state chain (good/bad) whose state
// advances once per chunk and selects that chunk's loss rate, so losses
// arrive in bursts; and scheduled partition events — every
// `partition_period` rounds a window opens during which each node is
// offline with probability partition_frac, keyed (seed, window, node), so
// whole subsets of peers vanish and return together.
//
// With every rate at zero the shim is inert: NodeService never attaches it
// (enabled() is false), no RNG is drawn, and runs are byte-identical to a
// build without the plane — the same contract sim::FaultPlane honours.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace tribvote::net {

/// Chaos knobs (TRIBVOTE_NET_IMPAIR / --impair). All chunk rates are
/// per-chunk probabilities in [0, 1].
struct ImpairConfig {
  /// i.i.d. per-chunk drop. A TCP stream cannot lose bytes and live, so a
  /// dropped chunk resets the connection (the consumer redials).
  double loss = 0.0;
  /// Per-chunk probability of a bounded delivery delay; the chunk (and
  /// everything behind it — order is preserved) lands up to max_delay_ms
  /// later via an EventLoop timer.
  double delay_rate = 0.0;
  int max_delay_ms = 40;
  /// Per-chunk single-bit flip — the frame CRC catches it and the
  /// connection closes as checksum-reject (PROTOCOL.md §5).
  double corrupt_rate = 0.0;
  /// Per-chunk truncation: a prefix is delivered, then the stream resets
  /// mid-frame (net.truncated on the receiver).
  double truncate_rate = 0.0;
  /// Per-chunk probability the stream goes silent for good while the
  /// socket stays open — a half-open peer only a deadline can evict.
  double stall_rate = 0.0;

  /// Gilbert–Elliott bursty loss. When ge_good_to_bad > 0 the chain is on:
  /// each chunk first advances the two-state chain, then draws its loss
  /// from the state's rate — `loss` above is ignored.
  double ge_good_to_bad = 0.0;  ///< P(good -> bad) per chunk
  double ge_bad_to_good = 0.25; ///< P(bad -> good) per chunk
  double ge_loss_good = 0.0;    ///< per-chunk loss in the good state
  double ge_loss_bad = 0.8;     ///< per-chunk loss in the bad state

  /// Scheduled partitions: every partition_period rounds a window of
  /// partition_width rounds opens; inside it each node is offline with
  /// probability partition_frac, keyed (seed, window index, node id).
  /// 0 period = no partitions.
  std::uint64_t partition_period = 0;
  std::uint64_t partition_width = 1;
  double partition_frac = 0.0;

  [[nodiscard]] bool enabled() const noexcept {
    return loss > 0.0 || delay_rate > 0.0 || corrupt_rate > 0.0 ||
           truncate_rate > 0.0 || stall_rate > 0.0 ||
           ge_good_to_bad > 0.0 ||
           (partition_period > 0 && partition_frac > 0.0);
  }
};

/// Parse "loss=0.1,delay=0.2,max_delay_ms=40,corrupt=0.01,truncate=0.01,
/// stall=0.005,ge_p=0.1,ge_r=0.25,ge_loss_good=0.01,ge_loss_bad=0.8,
/// part_period=8,part_width=2,part_frac=0.25" into `out` (starting from
/// defaults). The shorthand "ge=L" configures the Gilbert–Elliott chain
/// for a target average chunk-loss L (the A12 sweep's loss axis): bad
/// state loses 0.8, good state L/10, recovery 0.25/chunk, and the
/// good->bad rate is solved so the stationary loss equals L. Returns
/// false and fills *error (if given) on an unknown key or out-of-range
/// value.
[[nodiscard]] bool parse_impair_spec(const std::string& spec,
                                     ImpairConfig& out,
                                     std::string* error = nullptr);

/// One-line human-readable form for banners ("off" when disabled).
[[nodiscard]] std::string describe(const ImpairConfig& config);

/// Monotone verdict counters, mirrored into telemetry as net.impair.*.
struct ImpairStats {
  std::uint64_t chunks = 0;        ///< chunks that received a verdict
  std::uint64_t dropped = 0;       ///< loss verdicts (connection reset)
  std::uint64_t delayed = 0;       ///< chunks routed via a delay timer
  std::uint64_t corrupted = 0;     ///< single-bit flips applied
  std::uint64_t truncated = 0;     ///< prefix-then-reset verdicts
  std::uint64_t stalled = 0;       ///< streams silenced half-open
  std::uint64_t ge_bad_chunks = 0; ///< chunks spent in the GE bad state
  std::uint64_t partition_drops = 0;  ///< chunks voided by a partition
};

class Impairment {
 public:
  /// Verdict granularity: one verdict per kChunkBytes of stream offset.
  /// recv() segmentation never shifts chunk boundaries.
  static constexpr std::size_t kChunkBytes = 512;

  enum class Op : std::uint8_t {
    kDeliver,  ///< feed `bytes` to the FrameReader now (in order)
    kDelay,    ///< feed `bytes` after delay_ms, behind everything queued
    kReset,    ///< close the connection (terminal for the stream)
    kStall,    ///< silence the stream for good; socket stays open
  };
  struct Action {
    Op op = Op::kDeliver;
    std::vector<std::uint8_t> bytes;  ///< kDeliver / kDelay payload
    int delay_ms = 0;                 ///< kDelay only
  };

  /// `self` is the owning node (partition membership); `seed` roots every
  /// verdict stream. One instance per node endpoint.
  Impairment(ImpairConfig config, std::uint64_t seed, PeerId self);

  [[nodiscard]] bool enabled() const noexcept { return config_.enabled(); }
  [[nodiscard]] const ImpairConfig& config() const noexcept {
    return config_;
  }
  [[nodiscard]] const ImpairStats& stats() const noexcept { return stats_; }

  /// Allocate the connection key of a fresh inbound byte stream (one
  /// socket life; a reconnect opens a new stream). Keys are handed out
  /// monotonically, so a deterministic connection-establishment order
  /// replays the same verdict streams run over run.
  std::uint64_t open_stream();
  void close_stream(std::uint64_t key);

  /// Push `n` received bytes of stream `key` through the verdict engine;
  /// the ordered actions to apply land in `out` (appended). A kReset or
  /// kStall action is terminal — later ingests of the stream produce
  /// nothing. Unknown keys pass bytes through untouched.
  void ingest(std::uint64_t key, const std::uint8_t* data, std::size_t n,
              std::vector<Action>& out);

  /// Advance the partition clock (the scheduler's round counter).
  void set_round(std::uint64_t round) noexcept { round_ = round; }
  [[nodiscard]] std::uint64_t round() const noexcept { return round_; }
  /// Is `peer` inside an active partition window right now? Pure function
  /// of (seed, window index, peer) — every node computes the same answer.
  [[nodiscard]] bool offline(PeerId peer) const;
  [[nodiscard]] bool self_offline() const { return offline(self_); }

 private:
  /// One verdict, fully drawn when the stream offset crosses into a new
  /// chunk — before any of the chunk's bytes move, so a chunk split across
  /// several recv() calls sees exactly one verdict.
  struct Verdict {
    bool drop = false;
    bool stall = false;
    bool corrupt = false;
    bool truncate = false;
    std::size_t truncate_at = 0;  ///< prefix length within the chunk
    std::size_t corrupt_bit = 0;  ///< bit index within the chunk
    int delay_ms = 0;             ///< 0 = immediate
  };

  struct Stream {
    std::uint64_t offset = 0;  ///< bytes ingested so far
    bool dead = false;         ///< reset delivered; swallow the rest
    bool stalled = false;      ///< half-open; swallow silently
    bool ge_bad = false;       ///< Gilbert–Elliott chain state
    Verdict cur;               ///< verdict of the chunk offset_ is inside
  };

  [[nodiscard]] Verdict draw(std::uint64_t key, Stream& s,
                             std::uint64_t chunk);

  ImpairConfig config_;
  util::Rng master_;
  std::uint64_t seed_;
  PeerId self_;
  std::uint64_t round_ = 0;
  std::uint64_t next_key_ = 1;
  std::map<std::uint64_t, Stream> streams_;
  ImpairStats stats_;
};

}  // namespace tribvote::net
