#include "net/node_service.hpp"

#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

namespace tribvote::net {

NodeService::NodeService(EventLoop& loop, PeerId self,
                         const crypto::KeyPair& keys, vote::VoteAgent& vote,
                         moderation::ModerationCastAgent* mod,
                         telemetry::Registry* registry)
    : loop_(&loop),
      self_(self),
      keys_(&keys),
      vote_(&vote),
      mod_(mod),
      registry_(registry) {
  if (registry_ != nullptr) {
    t_frames_in_ = registry_->counter("net.frames_in");
    t_frames_out_ = registry_->counter("net.frames_out");
    t_bytes_in_ = registry_->counter("net.bytes_in");
    t_bytes_out_ = registry_->counter("net.bytes_out");
    t_checksum_ = registry_->counter("net.checksum_rejects");
    t_malformed_ = registry_->counter("net.malformed");
    t_truncated_ = registry_->counter("net.truncated");
    t_reconnects_ = registry_->counter("net.reconnects");
    t_closes_ = registry_->counter("net.closes");
    t_protocol_errors_ = registry_->counter("net.protocol_errors");
    t_px_in_ = registry_->counter("net.peer_exchanges_in");
    t_px_out_ = registry_->counter("net.peer_exchanges_out");
    t_desc_accepted_ = registry_->counter("net.descriptors_accepted");
    t_desc_forged_ = registry_->counter("net.descriptors_forged");
    t_hello_to_ = registry_->counter("net.timeout.hello");
    t_enc_to_ = registry_->counter("net.timeout.encounter");
    t_imp_chunks_ = registry_->counter("net.impair.chunks");
    t_imp_dropped_ = registry_->counter("net.impair.dropped");
    t_imp_delayed_ = registry_->counter("net.impair.delayed");
    t_imp_corrupted_ = registry_->counter("net.impair.corrupted");
    t_imp_truncated_ = registry_->counter("net.impair.truncated");
    t_imp_stalled_ = registry_->counter("net.impair.stalled");
    t_imp_ge_bad_ = registry_->counter("net.impair.ge_bad_chunks");
    t_imp_part_ = registry_->counter("net.impair.partition_drops");
  }
}

NodeService::~NodeService() {
  for (auto& [id, c] : conns_) {
    if (!c.closed) close_internal(c, false);
  }
  if (listen_fd_ >= 0) {
    loop_->remove(listen_fd_);
    ::close(listen_fd_);
  }
}

void NodeService::mirror_telemetry() {
  // The NetStats struct stays the source of truth; the registry mirrors it
  // the way RunStats/FaultStats mirror into the simulator's plane.
  if (registry_ == nullptr) return;
  registry_->set_total(t_frames_in_, stats_.frames_in);
  registry_->set_total(t_frames_out_, stats_.frames_out);
  registry_->set_total(t_bytes_in_, stats_.bytes_in);
  registry_->set_total(t_bytes_out_, stats_.bytes_out);
  registry_->set_total(t_checksum_, stats_.checksum_rejects);
  registry_->set_total(t_malformed_, stats_.malformed);
  registry_->set_total(t_truncated_, stats_.truncated);
  registry_->set_total(t_reconnects_, stats_.reconnects);
  registry_->set_total(t_closes_, stats_.closes);
  registry_->set_total(t_protocol_errors_, stats_.protocol_errors);
  registry_->set_total(t_px_in_, stats_.peer_exchanges_in);
  registry_->set_total(t_px_out_, stats_.peer_exchanges_out);
  registry_->set_total(t_desc_accepted_, stats_.descriptors_accepted);
  registry_->set_total(t_desc_forged_, stats_.descriptors_forged);
  registry_->set_total(t_hello_to_, stats_.hello_timeouts);
  registry_->set_total(t_enc_to_, stats_.encounter_timeouts);
  if (impair_ != nullptr && impair_->enabled()) {
    const ImpairStats& s = impair_->stats();
    registry_->set_total(t_imp_chunks_, s.chunks);
    registry_->set_total(t_imp_dropped_, s.dropped);
    registry_->set_total(t_imp_delayed_, s.delayed);
    registry_->set_total(t_imp_corrupted_, s.corrupted);
    registry_->set_total(t_imp_truncated_, s.truncated);
    registry_->set_total(t_imp_stalled_, s.stalled);
    registry_->set_total(t_imp_ge_bad_, s.ge_bad_chunks);
    registry_->set_total(t_imp_part_, s.partition_drops);
  }
}

bool NodeService::listen(std::uint16_t port, std::string* err) {
  if (listen_fd_ >= 0) return false;
  listen_fd_ = tcp_listen(port, err);
  if (listen_fd_ < 0) return false;
  listen_port_ = local_port(listen_fd_);
  loop_->add(listen_fd_, {.on_readable =
                              [this] {
                                int fd;
                                while ((fd = tcp_accept(listen_fd_)) >= 0) {
                                  ++stats_.connections_in;
                                  adopt(fd, false, {}, 0);
                                }
                              },
                          .on_writable = nullptr});
  return true;
}

int NodeService::connect(const std::string& host, std::uint16_t port,
                         std::string* err) {
  const int fd = tcp_connect(host, port, err);
  if (fd < 0) return -1;
  ++stats_.connections_out;
  return adopt(fd, true, host, port);
}

int NodeService::adopt(int fd, bool outbound, const std::string& host,
                       std::uint16_t port) {
  const int id = next_id_++;
  Connection& c = conns_[id];
  c.id = id;
  c.fd = fd;
  c.outbound = outbound;
  c.host = host;
  c.port = port;
  // Dialer initiates on channel 0, acceptor on channel 1 (PROTOCOL.md §3).
  c.engine = std::make_unique<ExchangeEngine>(*vote_, mod_,
                                              outbound ? std::uint8_t{0}
                                                       : std::uint8_t{1});
  c.engine->set_begin_hook(begin_hook_);
  if (impair_ != nullptr && impair_->enabled()) {
    c.impair_key = impair_->open_stream();
  }
  attach(c);
  send_hello(c);
  arm_watchdog(c);
  return id;
}

void NodeService::attach(Connection& c) {
  const int id = c.id;
  loop_->add(c.fd, {.on_readable = [this, id] { on_readable(id); },
                    .on_writable = [this, id] { on_writable(id); }});
}

bool NodeService::reconnect(int conn, std::string* err) {
  Connection* c = get(conn);
  if (c == nullptr || !c->closed || !c->outbound) return false;
  const int fd = tcp_connect(c->host, c->port, err);
  if (fd < 0) return false;
  ++stats_.reconnects;
  c->fd = fd;
  c->closed = false;
  c->hello_sent = false;
  c->hello_received = false;
  c->bye_sent = false;
  c->bye_received = false;
  c->reader = FrameReader{};
  c->outbuf.clear();
  c->out_cursor = 0;
  c->engine = std::make_unique<ExchangeEngine>(*vote_, mod_, std::uint8_t{0});
  c->engine->set_begin_hook(begin_hook_);
  if (impair_ != nullptr && impair_->enabled()) {
    c->impair_key = impair_->open_stream();  // fresh verdict stream
  }
  attach(*c);
  send_hello(*c);
  arm_watchdog(*c);
  mirror_telemetry();
  return true;
}

NodeService::Connection* NodeService::get(int conn) {
  const auto it = conns_.find(conn);
  return it == conns_.end() ? nullptr : &it->second;
}

const NodeService::Connection* NodeService::get(int conn) const {
  const auto it = conns_.find(conn);
  return it == conns_.end() ? nullptr : &it->second;
}

bool NodeService::open(int conn) const {
  const Connection* c = get(conn);
  return c != nullptr && !c->closed;
}

bool NodeService::ready(int conn) const {
  const Connection* c = get(conn);
  return c != nullptr && !c->closed && c->hello_received;
}

PeerId NodeService::peer_of(int conn) const {
  const Connection* c = get(conn);
  return c != nullptr && c->engine->has_peer() ? c->engine->peer()
                                               : kInvalidPeer;
}

std::size_t NodeService::connection_count() const {
  std::size_t n = 0;
  for (const auto& [id, c] : conns_) {
    if (!c.closed) ++n;
  }
  return n;
}

std::vector<int> NodeService::connections() const {
  std::vector<int> ids;
  for (const auto& [id, c] : conns_) {
    if (!c.closed) ids.push_back(id);
  }
  return ids;
}

bool NodeService::initiator_idle(int conn) const {
  const Connection* c = get(conn);
  return c != nullptr && !c->closed && c->engine->idle();
}

bool NodeService::initiate_vote_encounter(int conn, Time now) {
  Connection* c = get(conn);
  if (c == nullptr || c->closed || !c->hello_received) return false;
  std::vector<Frame> out;
  if (!c->engine->begin_vote_encounter(now, out)) return false;
  for (const Frame& f : out) send_frame(*c, f);
  if (!c->closed) arm_watchdog(*c);
  mirror_telemetry();
  return true;
}

bool NodeService::initiate_moderation_encounter(int conn, Time now) {
  Connection* c = get(conn);
  if (c == nullptr || c->closed || !c->hello_received) return false;
  std::vector<Frame> out;
  if (!c->engine->begin_moderation_encounter(now, out)) return false;
  for (const Frame& f : out) send_frame(*c, f);
  if (!c->closed) arm_watchdog(*c);
  mirror_telemetry();
  return true;
}

void NodeService::send_bye(int conn) {
  Connection* c = get(conn);
  if (c == nullptr || c->closed || c->bye_sent) return;
  c->bye_sent = true;
  Frame f;
  f.type = FrameType::kBye;
  f.channel = c->outbound ? 0 : 1;
  send_frame(*c, f);
  mirror_telemetry();
}

bool NodeService::bye_received(int conn) const {
  const Connection* c = get(conn);
  return c != nullptr && c->bye_received;
}

void NodeService::close(int conn) {
  Connection* c = get(conn);
  if (c != nullptr && !c->closed) {
    close_internal(*c, true);
    mirror_telemetry();
  }
}

const ExchangeEngine::Counters* NodeService::engine_counters(int conn) const {
  const Connection* c = get(conn);
  return c == nullptr ? nullptr : &c->engine->counters();
}

ExchangeEngine::Counters NodeService::engine_totals() const {
  // Closed connections keep their engine until the service dies (conns_ is
  // never erased), so a straight sum is the lifetime total. Reconnects
  // replace the engine — counters of the pre-reconnect life are gone; the
  // smoke reports tolerate that.
  ExchangeEngine::Counters total;
  for (const auto& [id, c] : conns_) {
    const ExchangeEngine::Counters& e = c.engine->counters();
    total.encounters_completed += e.encounters_completed;
    total.encounters_served += e.encounters_served;
    total.mod_completed += e.mod_completed;
    total.mod_served += e.mod_served;
    total.open_full += e.open_full;
    total.open_digest += e.open_digest;
    total.votes_accepted += e.votes_accepted;
    total.votes_rejected += e.votes_rejected;
    total.votes_inexperienced += e.votes_inexperienced;
    total.fallbacks_requested += e.fallbacks_requested;
    total.fallbacks_served += e.fallbacks_served;
    total.vox_answered += e.vox_answered;
    total.vox_null += e.vox_null;
    total.mod_rejected += e.mod_rejected;
    total.protocol_errors += e.protocol_errors;
  }
  return total;
}

int NodeService::conn_for_peer(PeerId peer) const {
  if (peer == kInvalidPeer) return -1;
  for (const auto& [id, c] : conns_) {
    if (!c.closed && c.engine->has_peer() && c.engine->peer() == peer) {
      return id;
    }
  }
  return -1;
}

bool NodeService::send_peer_exchange(int conn, bool request_reply) {
  Connection* c = get(conn);
  if (c == nullptr || c->closed || !c->hello_received ||
      directory_ == nullptr) {
    return false;
  }
  const Time now = clock_ ? clock_() : 0;
  Frame f;
  f.type = FrameType::kPeerExchange;
  f.channel = c->outbound ? 0 : 1;
  f.payload = encode_peer_exchange(directory_->build_shuffle(now,
                                                             request_reply));
  ++stats_.peer_exchanges_out;
  send_frame(*c, f);
  mirror_telemetry();
  return true;
}

void NodeService::send_hello(Connection& c) {
  Frame f;
  f.type = FrameType::kHello;
  f.channel = c.outbound ? 0 : 1;
  f.payload = encode_hello({self_, keys_->pub});
  send_frame(c, f);
  c.hello_sent = true;
}

void NodeService::send_frame(Connection& c, const Frame& frame) {
  if (c.closed) return;
  const std::size_t before = c.outbuf.size();
  encode_frame(frame, c.outbuf);
  ++stats_.frames_out;
  stats_.bytes_out += c.outbuf.size() - before;
  flush(c);
}

void NodeService::flush(Connection& c) {
  while (c.out_cursor < c.outbuf.size()) {
    const ssize_t n =
        ::send(c.fd, c.outbuf.data() + c.out_cursor,
               c.outbuf.size() - c.out_cursor, MSG_NOSIGNAL);
    if (n > 0) {
      c.out_cursor += static_cast<std::size_t>(n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
      loop_->set_want_write(c.fd, true);
      return;
    }
    close_internal(c, true, CloseReason::kReset);
    return;
  }
  c.outbuf.clear();
  c.out_cursor = 0;
  loop_->set_want_write(c.fd, false);
}

void NodeService::on_writable(int conn) {
  Connection* c = get(conn);
  if (c != nullptr && !c->closed) flush(*c);
}

void NodeService::on_readable(int conn) {
  Connection* c = get(conn);
  if (c == nullptr || c->closed) return;
  std::uint8_t buf[65536];
  for (;;) {
    const ssize_t n = ::recv(c->fd, buf, sizeof(buf), 0);
    if (n > 0) {
      stats_.bytes_in += static_cast<std::uint64_t>(n);
      ingest_bytes(*c, buf, static_cast<std::size_t>(n));
      if (c->closed) return;
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    // Orderly close or hard error. An incomplete trailing frame means the
    // peer truncated mid-frame — the PR 4 truncation verdict on a real
    // stream; nothing partial was ever delivered upward.
    if (c->reader.pending_bytes() > 0) ++stats_.truncated;
    close_internal(*c, true, CloseReason::kReset);
    mirror_telemetry();
    return;
  }
  if (c->watchdog == 0) arm_watchdog(*c);
  mirror_telemetry();
}

void NodeService::ingest_bytes(Connection& c, const std::uint8_t* data,
                               std::size_t n) {
  if (impair_ == nullptr || c.impair_key == 0) {
    // The inert path: byte-identical to the pre-chaos-plane service.
    feed_reader(c, data, n);
    return;
  }
  std::vector<Impairment::Action> actions;
  impair_->ingest(c.impair_key, data, n, actions);
  const int id = c.id;
  for (Impairment::Action& a : actions) {
    Connection* cc = get(id);  // feed_reader may have closed us mid-list
    if (cc == nullptr || cc->closed) return;
    switch (a.op) {
      case Impairment::Op::kDeliver:
        if (!cc->delay_q.empty()) {
          // A delayed chunk is ahead of us; preserve stream order.
          cc->delay_q.emplace_back(std::move(a.bytes), 0);
        } else {
          feed_reader(*cc, a.bytes.data(), a.bytes.size());
        }
        break;
      case Impairment::Op::kDelay:
        cc->delay_q.emplace_back(std::move(a.bytes), a.delay_ms);
        if (cc->delay_timer == 0) arm_delay(*cc);
        break;
      case Impairment::Op::kReset:
        ++stats_.impair_resets;
        close_internal(*cc, true, CloseReason::kReset);
        return;
      case Impairment::Op::kStall:
        // Half-open from here on: the socket stays up, nothing more is
        // delivered. Only the progress watchdog can reclaim the slot.
        break;
    }
  }
}

void NodeService::feed_reader(Connection& c, const std::uint8_t* data,
                              std::size_t n) {
  c.rx_bytes += n;
  c.reader.feed(data, n);
  pump_frames(c);
}

void NodeService::arm_delay(Connection& c) {
  if (c.delay_q.empty()) {
    c.delay_timer = 0;
    return;
  }
  const int id = c.id;
  const std::uint64_t epoch = c.epoch;
  c.delay_timer = loop_->schedule_after(
      c.delay_q.front().second, [this, id, epoch] { on_delay(id, epoch); });
}

void NodeService::on_delay(int conn, std::uint64_t epoch) {
  Connection* c = get(conn);
  if (c == nullptr || c->closed || c->epoch != epoch) return;
  c->delay_timer = 0;
  if (c->delay_q.empty()) return;
  std::vector<std::uint8_t> bytes = std::move(c->delay_q.front().first);
  c->delay_q.pop_front();
  feed_reader(*c, bytes.data(), bytes.size());
  c = get(conn);  // the frames may have closed the connection
  if (c == nullptr || c->closed) return;
  arm_delay(*c);
  mirror_telemetry();
}

void NodeService::arm_watchdog(Connection& c) {
  // Pick the deadline for the connection's current phase: awaiting HELLO,
  // or mid-encounter on either side. An established idle connection has
  // no deadline — persistent connections are the PR 7 contract.
  int delay = 0;
  if (!c.hello_received) {
    delay = hello_timeout_ms_;
  } else if (!c.engine->idle() || !c.engine->responder_idle()) {
    delay = encounter_timeout_ms_;
  }
  if (delay <= 0) {
    if (c.watchdog != 0) {
      loop_->cancel_timer(c.watchdog);
      c.watchdog = 0;
    }
    return;
  }
  if (c.watchdog != 0) loop_->cancel_timer(c.watchdog);
  c.rx_marker = c.rx_bytes;
  const int id = c.id;
  const std::uint64_t epoch = c.epoch;
  c.watchdog =
      loop_->schedule_after(delay, [this, id, epoch] { on_watchdog(id, epoch); });
}

void NodeService::on_watchdog(int conn, std::uint64_t epoch) {
  Connection* c = get(conn);
  if (c == nullptr || c->closed || c->epoch != epoch) return;
  c->watchdog = 0;
  if (c->rx_bytes != c->rx_marker) {
    arm_watchdog(*c);  // progress since the arm: fresh deadline
    return;
  }
  if (!c->hello_received) {
    ++stats_.hello_timeouts;
  } else if (!c->engine->idle() || !c->engine->responder_idle()) {
    ++stats_.encounter_timeouts;
  } else {
    return;  // became idle: nothing to evict
  }
  close_internal(*c, true, CloseReason::kTimeout);
  mirror_telemetry();
}

void NodeService::pump_frames(Connection& c) {
  Frame f;
  while (c.reader.next(f)) {
    ++stats_.frames_in;
    if (!handle_frame(c, f)) {
      ++stats_.protocol_errors;
      close_internal(c, true, CloseReason::kProtocol);
      return;
    }
  }
  if (c.reader.corrupt()) {
    // Framing integrity lost: either an unframeable header (malformed) or
    // a payload whose CRC lied (checksum reject). Connection-fatal — the
    // wire analogue of the fault plane's corruption verdict (§5).
    stats_.checksum_rejects += c.reader.stats().checksum_rejects;
    stats_.malformed += c.reader.stats().malformed;
    close_internal(c, true, CloseReason::kProtocol);
  }
}

bool NodeService::handle_frame(Connection& c, const Frame& frame) {
  if (frame.type == FrameType::kHello) {
    if (c.hello_received) return false;  // HELLO must come exactly once
    HelloMessage hello;
    if (!decode_hello(frame.payload, hello) || hello.peer == self_) {
      return false;
    }
    c.hello_received = true;
    c.engine->set_peer(hello.peer);
    return true;
  }
  if (!c.hello_received) return false;  // everything else needs identity
  if (frame.type == FrameType::kBye) {
    if (!frame.payload.empty()) return false;
    c.bye_received = true;
    return true;
  }
  if (frame.type == FrameType::kPeerExchange) {
    PeerExchangeMessage m;
    if (!decode_peer_exchange(frame.payload, m)) return false;
    // An endpoint with no directory tolerates the frame (a vote-only node
    // is not obliged to gossip views) — decoded but dropped, §8.
    if (directory_ == nullptr) return true;
    ++stats_.peer_exchanges_in;
    const PeerDirectory::MergeStats merged =
        directory_->merge_exchange(m, clock_ ? clock_() : 0);
    stats_.descriptors_accepted += merged.accepted;
    stats_.descriptors_forged += merged.forged;
    if (m.reply_requested) {
      const Time now = clock_ ? clock_() : 0;
      Frame reply;
      reply.type = FrameType::kPeerExchange;
      reply.channel = c.outbound ? 0 : 1;
      reply.payload =
          encode_peer_exchange(directory_->build_shuffle(now, false));
      ++stats_.peer_exchanges_out;
      send_frame(c, reply);
    }
    return true;
  }
  std::vector<Frame> out;
  if (!c.engine->on_frame(frame, out)) return false;
  for (const Frame& f : out) send_frame(c, f);
  return true;
}

void NodeService::close_internal(Connection& c, bool count_close,
                                 CloseReason reason) {
  if (c.closed) return;
  loop_->remove(c.fd);
  ::close(c.fd);
  c.closed = true;
  ++c.epoch;  // strands every pending watchdog/delay callback
  if (c.watchdog != 0) {
    loop_->cancel_timer(c.watchdog);
    c.watchdog = 0;
  }
  if (c.delay_timer != 0) {
    loop_->cancel_timer(c.delay_timer);
    c.delay_timer = 0;
  }
  c.delay_q.clear();
  if (c.impair_key != 0) {
    if (impair_ != nullptr) impair_->close_stream(c.impair_key);
    c.impair_key = 0;
  }
  if (count_close) ++stats_.closes;
  if (closed_hook_) {
    closed_hook_(c.id,
                 c.engine->has_peer() ? c.engine->peer() : kInvalidPeer,
                 reason);
  }
}

}  // namespace tribvote::net
