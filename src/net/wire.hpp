// Bounds-checked little-endian byte reader/writer — the primitive every
// payload codec (net/codec.hpp) is built from. All multi-byte integers on
// the wire are little-endian (PROTOCOL.md §1); signed values are carried as
// their two's-complement bit pattern.
//
// The reader never throws and never reads past the buffer: a short read
// sets a sticky failure flag and returns zero, so codecs can decode
// straight-line and check `ok() && exhausted()` once at the end — which
// also enforces the "no trailing bytes" rule.
#pragma once

#include <cstddef>
#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace tribvote::net {

class WireWriter {
 public:
  explicit WireWriter(std::vector<std::uint8_t>& out) : out_(&out) {}

  void u8(std::uint8_t v) { out_->push_back(v); }
  void u16(std::uint16_t v) { le(v, 2); }
  void u32(std::uint32_t v) { le(v, 4); }
  void u64(std::uint64_t v) { le(v, 8); }
  void i8(std::int8_t v) { u8(static_cast<std::uint8_t>(v)); }
  void i64(std::int64_t v) { u64(static_cast<std::uint64_t>(v)); }
  void bytes(const void* data, std::size_t size) {
    const auto* p = static_cast<const std::uint8_t*>(data);
    out_->insert(out_->end(), p, p + size);
  }
  void str(const std::string& s) { bytes(s.data(), s.size()); }

 private:
  void le(std::uint64_t v, std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      out_->push_back(static_cast<std::uint8_t>(v >> (8 * i)));
    }
  }

  std::vector<std::uint8_t>* out_;
};

class WireReader {
 public:
  WireReader(const std::uint8_t* data, std::size_t size)
      : data_(data), size_(size) {}

  std::uint8_t u8() { return static_cast<std::uint8_t>(le(1)); }
  std::uint16_t u16() { return static_cast<std::uint16_t>(le(2)); }
  std::uint32_t u32() { return static_cast<std::uint32_t>(le(4)); }
  std::uint64_t u64() { return le(8); }
  std::int8_t i8() { return static_cast<std::int8_t>(u8()); }
  std::int64_t i64() { return static_cast<std::int64_t>(u64()); }

  /// Copy `size` raw bytes into `out` (appended). Fails short like ints.
  void str(std::string& out, std::size_t size) {
    if (size_ - pos_ < size) {
      failed_ = true;
      pos_ = size_;
      return;
    }
    out.append(reinterpret_cast<const char*>(data_ + pos_), size);
    pos_ += size;
  }

  [[nodiscard]] bool ok() const noexcept { return !failed_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }
  [[nodiscard]] bool exhausted() const noexcept { return pos_ == size_; }
  /// The complete-decode check every codec ends with: nothing missing,
  /// nothing left over.
  [[nodiscard]] bool complete() const noexcept { return ok() && exhausted(); }

 private:
  std::uint64_t le(std::size_t n) {
    if (size_ - pos_ < n) {
      failed_ = true;
      pos_ = size_;
      return 0;
    }
    std::uint64_t v = 0;
    for (std::size_t i = 0; i < n; ++i) {
      v |= static_cast<std::uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += n;
    return v;
  }

  const std::uint8_t* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
  bool failed_ = false;
};

}  // namespace tribvote::net
