// Transport-agnostic protocol state machines: frames in, frames out.
//
// One ExchangeEngine drives both roles of one connection: the initiator
// side runs the encounters this node opens (on its own channel), the
// responder side serves the peer's (on the other channel). The per-agent
// call sequence is exactly vote::vote_encounter's — outgoing_votes /
// build_delta / note_counterpart on the sender, scan_digest / receive_* on
// the receiver, answer_topk after both legs — so a completed wire encounter
// leaves both agents in bit-identical state to the simulator running the
// same pair at the same timestamp (DESIGN.md §13; verified by
// tests/net_engine_test.cpp and tests/net_socket_test.cpp).
//
// The engine never touches a socket: the caller feeds decoded frames and
// ships whatever the engine emits. The same engine instance therefore runs
// under an in-memory frame shuttle (the equivalence tests' middle rung) and
// under the poll loop's TCP connections (net/node_service.hpp).
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "moderation/moderationcast.hpp"
#include "net/codec.hpp"
#include "net/frame.hpp"
#include "vote/agent.hpp"
#include "vote/encounter.hpp"

namespace tribvote::net {

class ExchangeEngine {
 public:
  /// Protocol-level accounting. The signature/rejection counters play the
  /// same role the PR 4 fault plane's FaultStats do in the simulator: a
  /// frame that decodes but fails its Schnorr signature (or digest binding)
  /// lands in votes_rejected / mod_rejected, never in the ballot box.
  struct Counters {
    std::uint64_t encounters_completed = 0;  ///< as initiator
    std::uint64_t encounters_served = 0;     ///< as responder
    std::uint64_t mod_completed = 0;
    std::uint64_t mod_served = 0;
    std::uint64_t open_full = 0;     ///< legs this node opened with VOTE_FULL
    std::uint64_t open_digest = 0;   ///< legs opened with VOTE_DIGEST
    std::uint64_t votes_accepted = 0;
    std::uint64_t votes_rejected = 0;  ///< kBadSignature verdicts (PR 4 role)
    std::uint64_t votes_inexperienced = 0;
    std::uint64_t fallbacks_requested = 0;  ///< broken digest seen, asked full
    std::uint64_t fallbacks_served = 0;     ///< peer asked full for our digest
    std::uint64_t vox_answered = 0;  ///< non-null top-K merged (initiator)
    std::uint64_t vox_null = 0;
    std::uint64_t mod_rejected = 0;  ///< item-wise bad signatures received
    std::uint64_t protocol_errors = 0;  ///< out-of-state or invalid frames
  };

  /// `initiator_channel` is 0 when this node dialed the connection, 1 when
  /// it accepted — the channel byte every frame of an encounter this node
  /// initiates carries (PROTOCOL.md §3). `mod` may be null (vote-only node).
  ExchangeEngine(vote::VoteAgent& vote, moderation::ModerationCastAgent* mod,
                 std::uint8_t initiator_channel);

  /// Bind the connection's counterpart once its HELLO arrives.
  void set_peer(PeerId peer) {
    peer_ = peer;
    has_peer_ = true;
  }
  [[nodiscard]] bool has_peer() const noexcept { return has_peer_; }
  [[nodiscard]] PeerId peer() const noexcept { return peer_; }

  /// No encounter of ours in flight (the responder side may still be busy).
  [[nodiscard]] bool idle() const noexcept { return i_state_ == IState::kIdle; }
  [[nodiscard]] bool responder_idle() const noexcept {
    return r_state_ == RState::kIdle;
  }

  /// Open a vote (or moderation) encounter as initiator: emits ENC_BEGIN
  /// plus the opening leg onto `out`. Fails (false) when the peer is not
  /// yet known, an encounter is already in flight, or (moderation) no
  /// moderation agent was wired.
  bool begin_vote_encounter(Time now, std::vector<Frame>& out);
  bool begin_moderation_encounter(Time now, std::vector<Frame>& out);

  /// Feed one decoded frame, appending any responses to `out`. Returns
  /// false on a protocol error — an out-of-state frame, an undecodable
  /// payload or an invalid delta-request — after which the connection must
  /// be dropped (PROTOCOL.md §5).
  bool on_frame(const Frame& frame, std::vector<Frame>& out);

  /// Invoked when a peer-initiated encounter opens (ENC_BEGIN decoded,
  /// nothing merged yet) with its kind and timestamp. The only safe point
  /// for a responder to apply scheduled local casts so a scripted run stays
  /// bit-identical to the sim oracle — later frames of the encounter may
  /// arrive in the same read batch (tribvote_node relies on this).
  void set_begin_hook(std::function<void(std::uint8_t, Time)> hook) {
    begin_hook_ = std::move(hook);
  }

  [[nodiscard]] const Counters& counters() const noexcept { return counters_; }

 private:
  enum class IState : std::uint8_t {
    kIdle,
    kAwaitDeltaRequest,    ///< sent digest; peer scans it
    kAwaitReverseOpen,     ///< our leg done; peer's leg not yet opened
    kAwaitReverseDelta,    ///< requested missing entries of peer's digest
    kAwaitReverseFull,     ///< peer's digest broken; asked full retransmit
    kAwaitVox,             ///< sent VOX_REQUEST
    kAwaitModBatch,        ///< sent our moderation batch
  };
  enum class RState : std::uint8_t {
    kIdle,
    kAwaitOpen,            ///< ENC_BEGIN(vote) seen; initiator's leg next
    kAwaitDelta,           ///< requested missing entries of their digest
    kAwaitFullRetry,       ///< their digest broken; asked full retransmit
    kAwaitDeltaRequest,    ///< our reverse digest out; they scan it
    kAwaitWrap,            ///< both legs done; VOX_REQUEST or ENC_END next
    kAwaitModBatch,        ///< ENC_BEGIN(moderation) seen
    kAwaitModEnd,          ///< our batch sent; ENC_END next
  };

  /// Per-role working state for the encounter in flight.
  struct Leg {
    Time now = 0;
    vote::VoteListMessage full;           ///< our built message (sender side)
    bool pending_full = false;
    vote::VoteDigestMessage peer_digest;  ///< their digest (receiver side)
    std::vector<std::size_t> missing;
  };

  bool on_initiator_frame(const Frame& frame, std::vector<Frame>& out);
  bool on_responder_frame(const Frame& frame, std::vector<Frame>& out);

  /// Build our leg's opening frame (digest when the counterpart memory
  /// allows, full otherwise; same predicate as vote::gossip_send). Returns
  /// true when it opened with a digest.
  bool open_leg(Leg& leg, std::uint8_t channel, std::vector<Frame>& out);
  /// Serve a delta-request / full-request against our pending full message.
  bool serve_delta_request(Leg& leg, const Frame& frame, std::uint8_t channel,
                           std::vector<Frame>& out);
  void serve_full_retry(Leg& leg, std::uint8_t channel,
                        std::vector<Frame>& out);
  void note_receive(vote::ReceiveResult result);
  /// After the reverse leg completes on the initiator side: VP or wrap up.
  void initiator_wrap(std::vector<Frame>& out);
  bool fail();

  void push(std::vector<Frame>& out, FrameType type, std::uint8_t channel,
            std::vector<std::uint8_t> payload);

  vote::VoteAgent* vote_;
  moderation::ModerationCastAgent* mod_;
  std::uint8_t init_channel_;
  PeerId peer_ = kInvalidPeer;
  bool has_peer_ = false;

  IState i_state_ = IState::kIdle;
  RState r_state_ = RState::kIdle;
  Leg i_leg_;
  Leg r_leg_;
  /// The shared begin/finish encounter core for the encounter this node
  /// currently initiates — the same object vote::vote_encounter composes,
  /// so the VP decision and merge run through identical code on both
  /// transports (DESIGN.md §13).
  vote::Encounter i_enc_;
  Counters counters_;
  std::function<void(std::uint8_t, Time)> begin_hook_;
};

}  // namespace tribvote::net
