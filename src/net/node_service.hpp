// NodeService: one peer's socket endpoint — listener, connections, HELLO
// handshake, frame pump, and the glue between TCP byte streams and the
// transport-agnostic ExchangeEngine (PROTOCOL.md §3).
//
// Connection lifecycle: dial (or accept), both sides immediately send
// HELLO; once the peer's HELLO arrives the connection is bound to its
// PeerId and encounters may be initiated. The side that dialed initiates
// on channel 0, the side that accepted on channel 1 — the two in-flight
// encounters of a connection never share a channel, so simultaneous
// initiation needs no arbitration. BYE declares "I will initiate nothing
// further"; a node that has sent and received BYE on a connection may
// close it knowing no encounter is cut short.
//
// Every transport event lands in the PR 5 telemetry registry (when one is
// wired) under net.*: frames/bytes in/out, checksum rejects, malformed
// streams, truncated tails, reconnects — the socket path reports through
// the same plane the simulator does.
#pragma once

#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "crypto/schnorr.hpp"
#include "moderation/moderationcast.hpp"
#include "net/engine.hpp"
#include "net/event_loop.hpp"
#include "net/frame.hpp"
#include "net/impairment.hpp"
#include "net/peer_directory.hpp"
#include "telemetry/registry.hpp"
#include "vote/agent.hpp"

namespace tribvote::net {

/// Why a connection died — handed to the closed hook so the scheduler can
/// tell a dead address (dial-failure accounting, directory quarantine)
/// from a stalled-but-live peer (backoff only) and from our own choice
/// (PROTOCOL.md §5 error taxonomy).
enum class CloseReason : std::uint8_t {
  kLocal,     ///< we closed deliberately (BYE'd quiescence, shutdown)
  kReset,     ///< stream died under us: EOF, ECONNRESET, send failure
  kProtocol,  ///< framing/CRC/state-machine violation — connection-fatal
  kTimeout,   ///< deadline watchdog: HELLO or encounter made no progress
};

/// Monotone transport counters (engine-level protocol counters live in
/// ExchangeEngine::Counters). Mirrored into the telemetry registry.
struct NetStats {
  std::uint64_t connections_in = 0;
  std::uint64_t connections_out = 0;
  std::uint64_t reconnects = 0;
  std::uint64_t closes = 0;
  std::uint64_t frames_in = 0;
  std::uint64_t frames_out = 0;
  std::uint64_t bytes_in = 0;
  std::uint64_t bytes_out = 0;
  std::uint64_t checksum_rejects = 0;
  std::uint64_t malformed = 0;
  std::uint64_t truncated = 0;  ///< streams that ended mid-frame
  std::uint64_t protocol_errors = 0;
  std::uint64_t peer_exchanges_in = 0;   ///< PEER_EXCHANGE frames merged
  std::uint64_t peer_exchanges_out = 0;  ///< shuffles + replies sent
  std::uint64_t descriptors_accepted = 0;
  std::uint64_t descriptors_forged = 0;  ///< bad signature, dropped item-wise
  std::uint64_t hello_timeouts = 0;      ///< watchdog fired awaiting HELLO
  std::uint64_t encounter_timeouts = 0;  ///< watchdog fired mid-encounter
  std::uint64_t impair_resets = 0;       ///< closes forced by the chaos shim
};

class NodeService {
 public:
  /// `registry` may be null (no telemetry); `mod` may be null (vote-only).
  /// All referenced objects must outlive the service.
  NodeService(EventLoop& loop, PeerId self, const crypto::KeyPair& keys,
              vote::VoteAgent& vote, moderation::ModerationCastAgent* mod,
              telemetry::Registry* registry = nullptr);
  ~NodeService();

  NodeService(const NodeService&) = delete;
  NodeService& operator=(const NodeService&) = delete;

  /// Accept inbound connections on `port` (0 = ephemeral; listen_port()
  /// reports the bound one).
  bool listen(std::uint16_t port, std::string* err = nullptr);
  [[nodiscard]] std::uint16_t listen_port() const noexcept {
    return listen_port_;
  }

  /// Dial host:port. Returns a connection id (>= 0) or -1.
  int connect(const std::string& host, std::uint16_t port,
              std::string* err = nullptr);
  /// Re-dial a closed outbound connection (same host:port, fresh engine
  /// handshake). Counts net.reconnects.
  bool reconnect(int conn, std::string* err = nullptr);

  [[nodiscard]] bool open(int conn) const;       ///< socket alive
  [[nodiscard]] bool ready(int conn) const;      ///< HELLO exchanged
  [[nodiscard]] PeerId peer_of(int conn) const;  ///< kInvalidPeer if not ready
  [[nodiscard]] std::size_t connection_count() const;
  /// Ids of currently open connections (accepted ones appear once their
  /// HELLO arrives and binds them to a peer).
  [[nodiscard]] std::vector<int> connections() const;

  /// Open one encounter as initiator. Fails while the connection is not
  /// ready or our previous encounter on it is still in flight.
  bool initiate_vote_encounter(int conn, Time now);
  bool initiate_moderation_encounter(int conn, Time now);
  /// Our initiator side is idle (safe to initiate the next encounter).
  [[nodiscard]] bool initiator_idle(int conn) const;

  /// Declare we will initiate nothing more on this connection.
  void send_bye(int conn);
  [[nodiscard]] bool bye_received(int conn) const;
  void close(int conn);

  [[nodiscard]] const NetStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const ExchangeEngine::Counters* engine_counters(
      int conn) const;
  /// Engine counters summed over every connection this service ever ran —
  /// open and closed alike (a lifetime view for end-of-run reports).
  [[nodiscard]] ExchangeEngine::Counters engine_totals() const;

  /// Install a hook fired on every peer-initiated ENC_BEGIN (kind, time),
  /// before anything of that encounter merges — the responder's only safe
  /// point to apply scheduled casts (see ExchangeEngine::set_begin_hook).
  /// Applies to connections adopted after the call.
  void set_encounter_begin_hook(std::function<void(std::uint8_t, Time)> hook) {
    begin_hook_ = std::move(hook);
  }

  // ---- peer discovery (PROTOCOL.md §8) -------------------------------------

  /// Wire the Newscast directory. While set, inbound PEER_EXCHANGE frames
  /// are decoded, item-wise signature-verified and merged (and answered
  /// when the sender requested the reply half). Without a directory the
  /// frame is ignored — a vote-only endpoint is not obliged to gossip
  /// views. `clock` supplies the protocol time stamped into outgoing
  /// self-descriptors.
  void set_directory(PeerDirectory* directory, std::function<Time()> clock) {
    directory_ = directory;
    clock_ = std::move(clock);
  }
  [[nodiscard]] PeerDirectory* directory() const noexcept {
    return directory_;
  }

  /// Send our shuffle slice on `conn` (Newscast push; `request_reply`
  /// asks for the symmetric pull half). Needs a wired directory and a
  /// ready connection.
  bool send_peer_exchange(int conn, bool request_reply);

  /// The open connection bound to `peer` (HELLO exchanged), or -1.
  [[nodiscard]] int conn_for_peer(PeerId peer) const;
  [[nodiscard]] PeerId self() const noexcept { return self_; }

  /// Hook fired after a connection closes for any reason (error, protocol
  /// violation, timeout, explicit close). `peer` is kInvalidPeer when the
  /// HELLO never completed. The EncounterScheduler uses this for
  /// dial-failure accounting; fired from inside the poll loop, so the hook
  /// must not re-enter the service for this connection.
  void set_closed_hook(std::function<void(int, PeerId, CloseReason)> hook) {
    closed_hook_ = std::move(hook);
  }

  // ---- transport chaos plane (DESIGN.md §16) -------------------------------

  /// Attach the deterministic impairment shim. Inbound bytes of every
  /// connection adopted after this call pass through it before the
  /// FrameReader; its verdict counters mirror into telemetry as
  /// net.impair.*. Null (the default) is the guaranteed-inert path: no
  /// extra branches beyond one pointer test, no RNG draws.
  void set_impairment(Impairment* impair) { impair_ = impair; }
  [[nodiscard]] Impairment* impairment() const noexcept { return impair_; }

  /// Arm per-connection progress watchdogs: a connection whose HELLO has
  /// not landed within `hello_ms`, or that sits mid-encounter (either
  /// side's engine busy) for `encounter_ms` without a single delivered
  /// byte, is closed with CloseReason::kTimeout — a stalled half-open
  /// peer frees its channel slot instead of wedging it. 0 disables the
  /// respective deadline (the default: established idle connections never
  /// expire, matching PR 7/8 behavior).
  void set_deadlines(int hello_ms, int encounter_ms) {
    hello_timeout_ms_ = hello_ms;
    encounter_timeout_ms_ = encounter_ms;
  }

 private:
  struct Connection {
    int id = -1;
    int fd = -1;
    bool outbound = false;
    std::string host;
    std::uint16_t port = 0;
    bool hello_sent = false;
    bool hello_received = false;
    bool bye_sent = false;
    bool bye_received = false;
    bool closed = false;
    FrameReader reader;
    std::vector<std::uint8_t> outbuf;
    std::size_t out_cursor = 0;
    std::unique_ptr<ExchangeEngine> engine;
    // Chaos-plane state. `epoch` invalidates watchdog/delay timer
    // callbacks that outlive a close or reconnect; `rx_bytes` counts
    // bytes actually delivered to the FrameReader (post-impairment) —
    // the watchdog's definition of progress.
    std::uint64_t epoch = 0;
    std::uint64_t impair_key = 0;
    std::uint64_t rx_bytes = 0;
    std::uint64_t rx_marker = 0;  ///< rx_bytes snapshot at watchdog arm
    EventLoop::TimerId watchdog = 0;
    std::deque<std::pair<std::vector<std::uint8_t>, int>> delay_q;
    EventLoop::TimerId delay_timer = 0;
  };

  Connection* get(int conn);
  const Connection* get(int conn) const;
  int adopt(int fd, bool outbound, const std::string& host,
            std::uint16_t port);
  void attach(Connection& c);
  void on_readable(int conn);
  void on_writable(int conn);
  void ingest_bytes(Connection& c, const std::uint8_t* data, std::size_t n);
  void feed_reader(Connection& c, const std::uint8_t* data, std::size_t n);
  void arm_delay(Connection& c);
  void on_delay(int conn, std::uint64_t epoch);
  void arm_watchdog(Connection& c);
  void on_watchdog(int conn, std::uint64_t epoch);
  void pump_frames(Connection& c);
  bool handle_frame(Connection& c, const Frame& frame);
  void send_frame(Connection& c, const Frame& frame);
  void send_hello(Connection& c);
  void flush(Connection& c);
  void close_internal(Connection& c, bool count_close,
                      CloseReason reason = CloseReason::kLocal);
  void mirror_telemetry();

  EventLoop* loop_;
  PeerId self_;
  const crypto::KeyPair* keys_;
  vote::VoteAgent* vote_;
  moderation::ModerationCastAgent* mod_;
  telemetry::Registry* registry_ = nullptr;

  int listen_fd_ = -1;
  std::uint16_t listen_port_ = 0;
  int next_id_ = 0;
  std::map<int, Connection> conns_;
  NetStats stats_;
  std::function<void(std::uint8_t, Time)> begin_hook_;
  std::function<void(int, PeerId, CloseReason)> closed_hook_;
  PeerDirectory* directory_ = nullptr;
  std::function<Time()> clock_;
  Impairment* impair_ = nullptr;
  int hello_timeout_ms_ = 0;
  int encounter_timeout_ms_ = 0;

  telemetry::CounterId t_frames_in_{}, t_frames_out_{}, t_bytes_in_{},
      t_bytes_out_{}, t_checksum_{}, t_malformed_{}, t_truncated_{},
      t_reconnects_{}, t_closes_{}, t_protocol_errors_{}, t_px_in_{},
      t_px_out_{}, t_desc_accepted_{}, t_desc_forged_{}, t_hello_to_{},
      t_enc_to_{}, t_imp_chunks_{}, t_imp_dropped_{}, t_imp_delayed_{},
      t_imp_corrupted_{}, t_imp_truncated_{}, t_imp_stalled_{},
      t_imp_ge_bad_{}, t_imp_part_{};
};

}  // namespace tribvote::net
