#include "net/impairment.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace tribvote::net {
namespace {

// Stream-key constants, same idiom as PeerDirectory's sample/sign split.
constexpr std::uint64_t kChaosStream = 0x63686173ULL;      // "chas"
constexpr std::uint64_t kPartitionStream = 0x70617274ULL;  // "part"

bool parse_rate(const std::string& value, double& out) {
  char* end = nullptr;
  const double v = std::strtod(value.c_str(), &end);
  if (end == nullptr || *end != '\0' || v < 0.0 || v > 1.0) return false;
  out = v;
  return true;
}

bool parse_u64(const std::string& value, std::uint64_t& out) {
  char* end = nullptr;
  const unsigned long long v = std::strtoull(value.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  out = static_cast<std::uint64_t>(v);
  return true;
}

void fail(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
}

}  // namespace

bool parse_impair_spec(const std::string& spec, ImpairConfig& out,
                       std::string* error) {
  ImpairConfig config;  // start from defaults; commit on full success
  if (spec.empty() || spec == "off") {
    out = config;
    return true;
  }
  std::size_t pos = 0;
  while (pos < spec.size()) {
    std::size_t comma = spec.find(',', pos);
    if (comma == std::string::npos) comma = spec.size();
    const std::string field = spec.substr(pos, comma - pos);
    pos = comma + 1;
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      fail(error, "impair field missing '=': " + field);
      return false;
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    bool ok = true;
    if (key == "loss") {
      ok = parse_rate(value, config.loss);
    } else if (key == "delay") {
      ok = parse_rate(value, config.delay_rate);
    } else if (key == "max_delay_ms") {
      std::uint64_t ms = 0;
      ok = parse_u64(value, ms) && ms <= 60'000;
      if (ok) config.max_delay_ms = static_cast<int>(ms);
    } else if (key == "corrupt") {
      ok = parse_rate(value, config.corrupt_rate);
    } else if (key == "truncate") {
      ok = parse_rate(value, config.truncate_rate);
    } else if (key == "stall") {
      ok = parse_rate(value, config.stall_rate);
    } else if (key == "ge") {
      // Shorthand: Gilbert–Elliott tuned so the stationary chunk-loss rate
      // equals L (the A11/A12 sweep's loss axis). Bad state loses 0.8,
      // good state L/10, recovery r = 0.25/chunk; solving
      //   L = pi * 0.8 + (1 - pi) * L/10   =>   pi = 0.9 L / (0.8 - 0.1 L)
      // and the stationary balance p (1 - pi) = r pi gives the entry rate.
      double target = 0.0;
      ok = parse_rate(value, target) && target < 0.8;
      if (ok && target > 0.0) {
        config.ge_loss_bad = 0.8;
        config.ge_loss_good = target / 10.0;
        config.ge_bad_to_good = 0.25;
        const double pi = 0.9 * target / (0.8 - 0.1 * target);
        config.ge_good_to_bad = config.ge_bad_to_good * pi / (1.0 - pi);
      }
    } else if (key == "ge_p") {
      ok = parse_rate(value, config.ge_good_to_bad);
    } else if (key == "ge_r") {
      ok = parse_rate(value, config.ge_bad_to_good);
    } else if (key == "ge_loss_good") {
      ok = parse_rate(value, config.ge_loss_good);
    } else if (key == "ge_loss_bad") {
      ok = parse_rate(value, config.ge_loss_bad);
    } else if (key == "part_period") {
      ok = parse_u64(value, config.partition_period);
    } else if (key == "part_width") {
      ok = parse_u64(value, config.partition_width) &&
           config.partition_width > 0;
    } else if (key == "part_frac") {
      ok = parse_rate(value, config.partition_frac);
    } else {
      fail(error, "unknown impair key: " + key);
      return false;
    }
    if (!ok) {
      fail(error, "bad impair value: " + field);
      return false;
    }
  }
  out = config;
  return true;
}

std::string describe(const ImpairConfig& config) {
  if (!config.enabled()) return "off";
  char buf[256];
  std::string s;
  const auto add = [&](const char* fmt, auto... args) {
    std::snprintf(buf, sizeof(buf), fmt, args...);
    if (!s.empty()) s += ',';
    s += buf;
  };
  if (config.ge_good_to_bad > 0.0) {
    add("ge_p=%.4g,ge_r=%.4g,ge_loss_good=%.4g,ge_loss_bad=%.4g",
        config.ge_good_to_bad, config.ge_bad_to_good, config.ge_loss_good,
        config.ge_loss_bad);
  } else if (config.loss > 0.0) {
    add("loss=%.4g", config.loss);
  }
  if (config.delay_rate > 0.0) {
    add("delay=%.4g,max_delay_ms=%d", config.delay_rate,
        config.max_delay_ms);
  }
  if (config.corrupt_rate > 0.0) add("corrupt=%.4g", config.corrupt_rate);
  if (config.truncate_rate > 0.0) add("truncate=%.4g", config.truncate_rate);
  if (config.stall_rate > 0.0) add("stall=%.4g", config.stall_rate);
  if (config.partition_period > 0 && config.partition_frac > 0.0) {
    add("part_period=%llu,part_width=%llu,part_frac=%.4g",
        static_cast<unsigned long long>(config.partition_period),
        static_cast<unsigned long long>(config.partition_width),
        config.partition_frac);
  }
  return s;
}

Impairment::Impairment(ImpairConfig config, std::uint64_t seed, PeerId self)
    : config_(config),
      master_(util::Rng(seed).derive(kChaosStream)),
      seed_(seed),
      self_(self) {}

std::uint64_t Impairment::open_stream() {
  const std::uint64_t key = next_key_++;
  streams_.emplace(key, Stream{});
  return key;
}

void Impairment::close_stream(std::uint64_t key) { streams_.erase(key); }

Impairment::Verdict Impairment::draw(std::uint64_t key, Stream& s,
                                     std::uint64_t chunk) {
  // One independent generator per (stream, chunk): the verdict depends on
  // nothing but the key tuple, so recv() segmentation and poll timing
  // cannot shift it. Only the GE chain state threads between chunks, and
  // it advances exactly once per chunk, in offset order.
  util::Rng r = master_.derive(key).derive(chunk);
  Verdict v;
  double loss_p = config_.loss;
  if (config_.ge_good_to_bad > 0.0) {
    if (s.ge_bad) {
      if (r.next_bool(config_.ge_bad_to_good)) s.ge_bad = false;
    } else {
      if (r.next_bool(config_.ge_good_to_bad)) s.ge_bad = true;
    }
    if (s.ge_bad) ++stats_.ge_bad_chunks;
    loss_p = s.ge_bad ? config_.ge_loss_bad : config_.ge_loss_good;
  }
  v.drop = r.next_bool(loss_p);
  v.stall = r.next_bool(config_.stall_rate);
  v.truncate = r.next_bool(config_.truncate_rate);
  v.truncate_at = static_cast<std::size_t>(r.next_below(kChunkBytes));
  v.corrupt = r.next_bool(config_.corrupt_rate);
  v.corrupt_bit = static_cast<std::size_t>(r.next_below(kChunkBytes * 8));
  if (config_.delay_rate > 0.0 && config_.max_delay_ms > 0 &&
      r.next_bool(config_.delay_rate)) {
    v.delay_ms = 1 + static_cast<int>(r.next_below(
                         static_cast<std::uint64_t>(config_.max_delay_ms)));
  }
  ++stats_.chunks;
  if (v.drop) ++stats_.dropped;
  if (v.stall && !v.drop) ++stats_.stalled;
  if (v.truncate && !v.drop && !v.stall) ++stats_.truncated;
  if (v.delay_ms > 0 && !v.drop && !v.stall) ++stats_.delayed;
  return v;
}

void Impairment::ingest(std::uint64_t key, const std::uint8_t* data,
                        std::size_t n, std::vector<Action>& out) {
  const auto it = streams_.find(key);
  if (it == streams_.end()) {
    // Unknown stream: pass through untouched (defensive; NodeService only
    // ingests keys it opened).
    Action a;
    a.bytes.assign(data, data + n);
    out.push_back(std::move(a));
    return;
  }
  Stream& s = it->second;
  if (s.dead || s.stalled) return;  // terminal: swallow everything
  if (self_offline()) {
    // Our side of a partition window: the node is unreachable, so every
    // live stream resets. The scheduler sees the closes and backs off.
    ++stats_.partition_drops;
    s.dead = true;
    out.push_back(Action{Op::kReset, {}, 0});
    return;
  }
  std::size_t pos = 0;
  while (pos < n) {
    const std::uint64_t chunk = s.offset / kChunkBytes;
    const std::size_t chunk_off =
        static_cast<std::size_t>(s.offset % kChunkBytes);
    if (chunk_off == 0) s.cur = draw(key, s, chunk);
    const Verdict& v = s.cur;
    if (v.drop) {
      s.dead = true;
      out.push_back(Action{Op::kReset, {}, 0});
      return;
    }
    if (v.stall) {
      s.stalled = true;
      out.push_back(Action{Op::kStall, {}, 0});
      return;
    }
    std::size_t take = std::min(n - pos, kChunkBytes - chunk_off);
    bool reset_after = false;
    if (v.truncate) {
      if (chunk_off >= v.truncate_at) {
        s.dead = true;
        out.push_back(Action{Op::kReset, {}, 0});
        return;
      }
      if (chunk_off + take >= v.truncate_at) {
        take = v.truncate_at - chunk_off;
        reset_after = true;
      }
    }
    Action a;
    a.op = v.delay_ms > 0 ? Op::kDelay : Op::kDeliver;
    a.delay_ms = v.delay_ms;
    a.bytes.assign(data + pos, data + pos + take);
    if (v.corrupt) {
      const std::size_t byte = v.corrupt_bit / 8;
      if (byte >= chunk_off && byte < chunk_off + take) {
        a.bytes[byte - chunk_off] ^=
            static_cast<std::uint8_t>(1u << (v.corrupt_bit % 8));
        ++stats_.corrupted;
      }
    }
    out.push_back(std::move(a));
    s.offset += take;
    pos += take;
    if (reset_after) {
      s.dead = true;
      out.push_back(Action{Op::kReset, {}, 0});
      return;
    }
  }
}

bool Impairment::offline(PeerId peer) const {
  if (config_.partition_period == 0 || config_.partition_frac <= 0.0) {
    return false;
  }
  // The first window opens one full period in, never at round 0 — the
  // bootstrap shuffle must finish before anyone goes dark.
  if (round_ < config_.partition_period) return false;
  if (round_ % config_.partition_period >= config_.partition_width) {
    return false;
  }
  const std::uint64_t window = round_ / config_.partition_period;
  util::Rng r = util::Rng(seed_)
                    .derive(kPartitionStream)
                    .derive(window)
                    .derive(static_cast<std::uint64_t>(peer));
  return r.next_bool(config_.partition_frac);
}

}  // namespace tribvote::net
