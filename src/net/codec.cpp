#include "net/codec.hpp"

#include "net/wire.hpp"
#include "util/hash.hpp"

namespace tribvote::net {

namespace {

void put_vote_entry(WireWriter& w, const vote::VoteEntry& v) {
  w.u32(v.moderator);
  w.i8(static_cast<std::int8_t>(v.opinion));
  w.i64(v.cast_at);
}

bool get_vote_entry(WireReader& r, vote::VoteEntry& v) {
  v.moderator = r.u32();
  const std::int8_t opinion = r.i8();
  v.cast_at = r.i64();
  if (opinion < -1 || opinion > 1) return false;
  v.opinion = static_cast<Opinion>(opinion);
  return r.ok();
}

void put_signature(WireWriter& w, const crypto::Signature& sig) {
  w.u64(sig.e);
  w.u64(sig.s);
}

void get_signature(WireReader& r, crypto::Signature& sig) {
  sig.e = r.u64();
  sig.s = r.u64();
}

}  // namespace

std::vector<std::uint8_t> encode_hello(const HelloMessage& m) {
  std::vector<std::uint8_t> p;
  WireWriter w(p);
  w.u32(m.peer);
  w.u64(m.key.y);
  return p;
}

bool decode_hello(const std::vector<std::uint8_t>& p, HelloMessage& out) {
  WireReader r(p.data(), p.size());
  out.peer = r.u32();
  out.key.y = r.u64();
  return r.complete();
}

std::vector<std::uint8_t> encode_encounter_begin(const EncounterBegin& m) {
  std::vector<std::uint8_t> p;
  WireWriter w(p);
  w.u8(m.kind);
  w.i64(m.time);
  return p;
}

bool decode_encounter_begin(const std::vector<std::uint8_t>& p,
                            EncounterBegin& out) {
  WireReader r(p.data(), p.size());
  out.kind = r.u8();
  out.time = r.i64();
  if (out.kind != kEncounterVote && out.kind != kEncounterModeration) {
    return false;
  }
  return r.complete();
}

std::vector<std::uint8_t> encode_vote_full(const vote::VoteListMessage& m) {
  std::vector<std::uint8_t> p;
  WireWriter w(p);
  w.u32(m.voter);
  w.u64(m.key.y);
  w.u32(static_cast<std::uint32_t>(m.votes.size()));
  for (const vote::VoteEntry& v : m.votes) put_vote_entry(w, v);
  put_signature(w, m.signature);
  return p;
}

bool decode_vote_full(const std::vector<std::uint8_t>& p,
                      vote::VoteListMessage& out) {
  WireReader r(p.data(), p.size());
  out.voter = r.u32();
  out.key.y = r.u64();
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > kMaxVoteEntries) return false;
  out.votes.resize(count);
  for (vote::VoteEntry& v : out.votes) {
    if (!get_vote_entry(r, v)) return false;
  }
  get_signature(r, out.signature);
  return r.complete();
}

std::vector<std::uint8_t> encode_vote_digest(const vote::VoteDigestMessage& m) {
  std::vector<std::uint8_t> p;
  WireWriter w(p);
  w.u32(m.voter);
  w.u64(m.key.y);
  w.u32(static_cast<std::uint32_t>(m.entries.size()));
  for (const vote::DigestEntry& e : m.entries) {
    w.u32(e.moderator);
    w.u64(e.check);
  }
  w.u64(m.checksum);
  return p;
}

bool decode_vote_digest(const std::vector<std::uint8_t>& p,
                        vote::VoteDigestMessage& out) {
  WireReader r(p.data(), p.size());
  out.voter = r.u32();
  out.key.y = r.u64();
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > kMaxDigestEntries) return false;
  out.entries.resize(count);
  for (vote::DigestEntry& e : out.entries) {
    e.moderator = r.u32();
    e.check = r.u64();
  }
  out.checksum = r.u64();
  return r.complete();
}

std::vector<std::uint8_t> encode_delta_request(
    const std::vector<std::size_t>& missing) {
  std::vector<std::uint8_t> p;
  WireWriter w(p);
  w.u32(static_cast<std::uint32_t>(missing.size()));
  for (const std::size_t index : missing) {
    w.u32(static_cast<std::uint32_t>(index));
  }
  return p;
}

bool decode_delta_request(const std::vector<std::uint8_t>& p,
                          std::vector<std::size_t>& out) {
  WireReader r(p.data(), p.size());
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > kMaxDeltaIndices) return false;
  out.clear();
  out.reserve(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    const std::uint32_t index = r.u32();
    if (!out.empty() && index <= out.back()) return false;  // not increasing
    out.push_back(index);
  }
  return r.complete();
}

std::vector<std::uint8_t> encode_vote_delta(const vote::VoteDeltaMessage& m) {
  std::vector<std::uint8_t> p;
  WireWriter w(p);
  w.u32(m.voter);
  w.u64(m.key.y);
  w.u64(m.bound_checksum);
  w.u32(static_cast<std::uint32_t>(m.votes.size()));
  for (const vote::VoteEntry& v : m.votes) put_vote_entry(w, v);
  put_signature(w, m.signature);
  return p;
}

bool decode_vote_delta(const std::vector<std::uint8_t>& p,
                       vote::VoteDeltaMessage& out) {
  WireReader r(p.data(), p.size());
  out.voter = r.u32();
  out.key.y = r.u64();
  out.bound_checksum = r.u64();
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > kMaxVoteEntries) return false;
  out.votes.resize(count);
  for (vote::VoteEntry& v : out.votes) {
    if (!get_vote_entry(r, v)) return false;
  }
  get_signature(r, out.signature);
  return r.complete();
}

std::vector<std::uint8_t> encode_vox_topk(const vote::RankedList& list) {
  std::vector<std::uint8_t> p;
  WireWriter w(p);
  w.u32(static_cast<std::uint32_t>(list.size()));
  for (const ModeratorId m : list) w.u32(m);
  return p;
}

bool decode_vox_topk(const std::vector<std::uint8_t>& p,
                     vote::RankedList& out) {
  WireReader r(p.data(), p.size());
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > kMaxTopK) return false;
  out.resize(count);
  for (ModeratorId& m : out) m = r.u32();
  return r.complete();
}

std::vector<std::uint8_t> encode_mod_batch(
    const std::vector<moderation::Moderation>& items) {
  std::vector<std::uint8_t> p;
  WireWriter w(p);
  w.u32(static_cast<std::uint32_t>(items.size()));
  for (const moderation::Moderation& m : items) {
    w.u32(m.moderator);
    w.u64(m.moderator_key.y);
    w.u64(m.infohash);
    w.i64(m.created);
    w.u16(static_cast<std::uint16_t>(m.description.size()));
    w.str(m.description);
    put_signature(w, m.signature);
  }
  return p;
}

bool decode_mod_batch(const std::vector<std::uint8_t>& p,
                      std::vector<moderation::Moderation>& out) {
  WireReader r(p.data(), p.size());
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > kMaxModItems) return false;
  out.clear();
  out.resize(count);
  for (moderation::Moderation& m : out) {
    m.moderator = r.u32();
    m.moderator_key.y = r.u64();
    m.infohash = r.u64();
    m.created = r.i64();
    const std::uint16_t desc_len = r.u16();
    if (!r.ok() || desc_len > kMaxDescriptionBytes) return false;
    r.str(m.description, desc_len);
    get_signature(r, m.signature);
  }
  return r.complete();
}

std::uint64_t descriptor_digest(const PeerDescriptor& d) {
  return util::digest_fields({d.peer, d.key.y, d.ip, d.port,
                              static_cast<std::uint64_t>(d.heartbeat)});
}

std::vector<std::uint8_t> encode_peer_exchange(const PeerExchangeMessage& m) {
  std::vector<std::uint8_t> p;
  WireWriter w(p);
  w.u8(m.reply_requested ? 1 : 0);
  w.u32(static_cast<std::uint32_t>(m.descriptors.size()));
  for (const PeerDescriptor& d : m.descriptors) {
    w.u32(d.peer);
    w.u64(d.key.y);
    w.u32(d.ip);
    w.u16(d.port);
    w.i64(d.heartbeat);
    put_signature(w, d.signature);
  }
  return p;
}

bool decode_peer_exchange(const std::vector<std::uint8_t>& p,
                          PeerExchangeMessage& out) {
  WireReader r(p.data(), p.size());
  const std::uint8_t flags = r.u8();
  if (!r.ok() || (flags & ~std::uint8_t{1}) != 0) return false;  // rsv bits
  out.reply_requested = (flags & 1) != 0;
  const std::uint32_t count = r.u32();
  if (!r.ok() || count > kMaxPeerDescriptors) return false;
  out.descriptors.resize(count);
  for (PeerDescriptor& d : out.descriptors) {
    d.peer = r.u32();
    d.key.y = r.u64();
    d.ip = r.u32();
    d.port = r.u16();
    d.heartbeat = r.i64();
    get_signature(r, d.signature);
  }
  return r.complete();
}

std::uint64_t codec_abi_digest() {
  // Every constant that pins a byte position or a limit. Reordering,
  // resizing or re-coding any field must change this value.
  std::uint64_t h = util::digest_fields(
      {kWireVersion, kHeaderSize, kMaxPayload, kMagic0, kMagic1});
  h = util::hash_combine(
      h, util::digest_fields(
             {static_cast<std::uint64_t>(FrameType::kHello),
              static_cast<std::uint64_t>(FrameType::kEncounterBegin),
              static_cast<std::uint64_t>(FrameType::kEncounterEnd),
              static_cast<std::uint64_t>(FrameType::kBye),
              static_cast<std::uint64_t>(FrameType::kVoteFull),
              static_cast<std::uint64_t>(FrameType::kVoteDigest),
              static_cast<std::uint64_t>(FrameType::kVoteDeltaRequest),
              static_cast<std::uint64_t>(FrameType::kVoteDelta),
              static_cast<std::uint64_t>(FrameType::kVoteFullRequest),
              static_cast<std::uint64_t>(FrameType::kVoxRequest),
              static_cast<std::uint64_t>(FrameType::kVoxTopK),
              static_cast<std::uint64_t>(FrameType::kModBatch),
              static_cast<std::uint64_t>(FrameType::kPeerExchange)}));
  // Record layouts, as byte sizes: vote entry (u32+i8+i64 = 13), digest
  // entry (u32+u64 = 12), signature (u64+u64 = 16), hello (u32+u64 = 12),
  // encounter begin (u8+i64 = 9), peer descriptor
  // (u32+u64+u32+u16+i64+sig = 42).
  h = util::hash_combine(h, util::digest_fields({13, 12, 16, 12, 9, 42}));
  h = util::hash_combine(
      h, util::digest_fields({kMaxVoteEntries, kMaxDigestEntries,
                              kMaxDeltaIndices, kMaxTopK, kMaxModItems,
                              kMaxDescriptionBytes, kMaxPeerDescriptors}));
  h = util::hash_combine(
      h, util::digest_fields({kEncounterVote, kEncounterModeration}));
  return h;
}

}  // namespace tribvote::net
