// CRC-32 (IEEE 802.3: reflected polynomial 0xEDB88320, init and xorout
// 0xFFFFFFFF) — the per-frame payload checksum of the wire protocol
// (PROTOCOL.md §2). Table-driven, byte at a time; this is an integrity
// check against damaged or misbehaving senders, not an authenticity
// mechanism — authenticity is the Schnorr signature inside the payload.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace tribvote::net {

[[nodiscard]] std::uint32_t crc32(const std::uint8_t* data,
                                  std::size_t size) noexcept;

[[nodiscard]] inline std::uint32_t crc32(
    const std::vector<std::uint8_t>& data) noexcept {
  return crc32(data.data(), data.size());
}

}  // namespace tribvote::net
