#include "net/engine.hpp"

#include <utility>

namespace tribvote::net {

ExchangeEngine::ExchangeEngine(vote::VoteAgent& vote,
                               moderation::ModerationCastAgent* mod,
                               std::uint8_t initiator_channel)
    : vote_(&vote), mod_(mod), init_channel_(initiator_channel) {}

void ExchangeEngine::push(std::vector<Frame>& out, FrameType type,
                          std::uint8_t channel,
                          std::vector<std::uint8_t> payload) {
  Frame f;
  f.type = type;
  f.channel = channel;
  f.payload = std::move(payload);
  out.push_back(std::move(f));
}

bool ExchangeEngine::fail() {
  ++counters_.protocol_errors;
  return false;
}

void ExchangeEngine::note_receive(vote::ReceiveResult result) {
  switch (result) {
    case vote::ReceiveResult::kAccepted:
      ++counters_.votes_accepted;
      break;
    case vote::ReceiveResult::kBadSignature:
      ++counters_.votes_rejected;
      break;
    case vote::ReceiveResult::kInexperienced:
      ++counters_.votes_inexperienced;
      break;
    case vote::ReceiveResult::kSelfMessage:
    case vote::ReceiveResult::kEmpty:
      break;
  }
}

bool ExchangeEngine::open_leg(Leg& leg, std::uint8_t channel,
                              std::vector<Frame>& out) {
  // Same predicate and same sender-agent call order as vote::gossip_send:
  // outgoing_votes, (build_delta on request), note_counterpart.
  vote::VoteListMessage full = vote_->outgoing_votes(leg.now);
  const bool use_delta = vote_->config().gossip_cache &&
                         !full.votes.empty() &&
                         vote_->counterparts().known(peer_);
  if (use_delta) {
    push(out, FrameType::kVoteDigest, channel,
         encode_vote_digest(vote::make_digest(full)));
    leg.full = std::move(full);
    leg.pending_full = true;
    ++counters_.open_digest;
    return true;
  }
  push(out, FrameType::kVoteFull, channel, encode_vote_full(full));
  if (vote_->config().gossip_cache) vote_->note_counterpart(peer_);
  leg.pending_full = false;
  ++counters_.open_full;
  return false;
}

bool ExchangeEngine::serve_delta_request(Leg& leg, const Frame& frame,
                                         std::uint8_t channel,
                                         std::vector<Frame>& out) {
  std::vector<std::size_t> missing;
  if (!leg.pending_full || !decode_delta_request(frame.payload, missing)) {
    return false;
  }
  if (!missing.empty() && missing.back() >= leg.full.votes.size()) {
    return false;  // index beyond the message the digest described
  }
  if (!missing.empty()) {
    push(out, FrameType::kVoteDelta, channel,
         encode_vote_delta(vote_->build_delta(leg.full, missing)));
  }
  if (vote_->config().gossip_cache) vote_->note_counterpart(peer_);
  leg.pending_full = false;
  return true;
}

void ExchangeEngine::serve_full_retry(Leg& leg, std::uint8_t channel,
                                      std::vector<Frame>& out) {
  push(out, FrameType::kVoteFull, channel, encode_vote_full(leg.full));
  ++counters_.fallbacks_served;
  if (vote_->config().gossip_cache) vote_->note_counterpart(peer_);
  leg.pending_full = false;
}

bool ExchangeEngine::begin_vote_encounter(Time now, std::vector<Frame>& out) {
  if (!has_peer_ || i_state_ != IState::kIdle) return false;
  i_leg_ = Leg{};
  i_leg_.now = now;
  i_enc_ = vote::Encounter::begin(*vote_, now);
  push(out, FrameType::kEncounterBegin, init_channel_,
       encode_encounter_begin({kEncounterVote, now}));
  const bool digest = open_leg(i_leg_, init_channel_, out);
  i_state_ = digest ? IState::kAwaitDeltaRequest : IState::kAwaitReverseOpen;
  return true;
}

bool ExchangeEngine::begin_moderation_encounter(Time now,
                                                std::vector<Frame>& out) {
  if (!has_peer_ || mod_ == nullptr || i_state_ != IState::kIdle) return false;
  i_leg_ = Leg{};
  i_leg_.now = now;
  push(out, FrameType::kEncounterBegin, init_channel_,
       encode_encounter_begin({kEncounterModeration, now}));
  push(out, FrameType::kModBatch, init_channel_,
       encode_mod_batch(mod_->outgoing()));
  i_state_ = IState::kAwaitModBatch;
  return true;
}

void ExchangeEngine::initiator_wrap(std::vector<Frame>& out) {
  // The shared encounter core makes the VP decision after both gossip
  // legs, exactly like vote::vote_encounter: a leg that lifts the box past
  // B_min suppresses the request on the wire too.
  if (i_enc_.vox_pending()) {
    push(out, FrameType::kVoxRequest, init_channel_, {});
    i_state_ = IState::kAwaitVox;
    return;
  }
  push(out, FrameType::kEncounterEnd, init_channel_, {});
  i_state_ = IState::kIdle;
  ++counters_.encounters_completed;
}

bool ExchangeEngine::on_frame(const Frame& frame, std::vector<Frame>& out) {
  return frame.channel == init_channel_ ? on_initiator_frame(frame, out)
                                        : on_responder_frame(frame, out);
}

bool ExchangeEngine::on_initiator_frame(const Frame& frame,
                                        std::vector<Frame>& out) {
  const std::uint8_t ch = init_channel_;
  switch (i_state_) {
    case IState::kIdle:
      return fail();  // nothing of ours in flight on this channel

    case IState::kAwaitDeltaRequest:
      if (frame.type == FrameType::kVoteDeltaRequest) {
        if (!serve_delta_request(i_leg_, frame, ch, out)) return fail();
        i_state_ = IState::kAwaitReverseOpen;
        return true;
      }
      if (frame.type == FrameType::kVoteFullRequest) {
        if (!frame.payload.empty()) return fail();
        serve_full_retry(i_leg_, ch, out);
        i_state_ = IState::kAwaitReverseOpen;
        return true;
      }
      return fail();

    case IState::kAwaitReverseOpen:
      if (frame.type == FrameType::kVoteFull) {
        vote::VoteListMessage msg;
        if (!decode_vote_full(frame.payload, msg)) return fail();
        note_receive(vote_->receive_votes(msg, i_leg_.now));
        initiator_wrap(out);
        return true;
      }
      if (frame.type == FrameType::kVoteDigest) {
        vote::VoteDigestMessage digest;
        if (!decode_vote_digest(frame.payload, digest)) return fail();
        if (!vote::digest_intact(digest)) {
          push(out, FrameType::kVoteFullRequest, ch, {});
          ++counters_.fallbacks_requested;
          i_state_ = IState::kAwaitReverseFull;
          return true;
        }
        i_leg_.peer_digest = std::move(digest);
        i_leg_.missing = vote_->scan_digest(i_leg_.peer_digest);
        push(out, FrameType::kVoteDeltaRequest, ch,
             encode_delta_request(i_leg_.missing));
        if (i_leg_.missing.empty()) {
          note_receive(
              vote_->receive_delta(i_leg_.peer_digest, nullptr, i_leg_.now));
          initiator_wrap(out);
        } else {
          i_state_ = IState::kAwaitReverseDelta;
        }
        return true;
      }
      return fail();

    case IState::kAwaitReverseDelta:
      if (frame.type != FrameType::kVoteDelta) return fail();
      {
        vote::VoteDeltaMessage delta;
        if (!decode_vote_delta(frame.payload, delta)) return fail();
        note_receive(
            vote_->receive_delta(i_leg_.peer_digest, &delta, i_leg_.now));
        initiator_wrap(out);
      }
      return true;

    case IState::kAwaitReverseFull:
      if (frame.type != FrameType::kVoteFull) return fail();
      {
        vote::VoteListMessage msg;
        if (!decode_vote_full(frame.payload, msg)) return fail();
        note_receive(vote_->receive_votes(msg, i_leg_.now));
        initiator_wrap(out);
      }
      return true;

    case IState::kAwaitVox:
      if (frame.type != FrameType::kVoxTopK) return fail();
      {
        vote::RankedList list;
        if (!decode_vox_topk(frame.payload, list)) return fail();
        i_enc_.finish_vox(std::move(list));
        if (i_enc_.finish().vox_topk == 0) {
          ++counters_.vox_null;
        } else {
          ++counters_.vox_answered;
        }
        push(out, FrameType::kEncounterEnd, ch, {});
        i_state_ = IState::kIdle;
        ++counters_.encounters_completed;
      }
      return true;

    case IState::kAwaitModBatch:
      if (frame.type != FrameType::kModBatch || mod_ == nullptr) return fail();
      {
        std::vector<moderation::Moderation> items;
        if (!decode_mod_batch(frame.payload, items)) return fail();
        counters_.mod_rejected += mod_->receive(items, i_leg_.now).bad_signature;
        push(out, FrameType::kEncounterEnd, ch, {});
        i_state_ = IState::kIdle;
        ++counters_.mod_completed;
      }
      return true;
  }
  return fail();
}

bool ExchangeEngine::on_responder_frame(const Frame& frame,
                                        std::vector<Frame>& out) {
  const std::uint8_t ch = frame.channel;  // the peer-initiator's channel
  switch (r_state_) {
    case RState::kIdle:
      if (frame.type != FrameType::kEncounterBegin) return fail();
      {
        EncounterBegin begin;
        if (!decode_encounter_begin(frame.payload, begin)) return fail();
        if (begin_hook_) begin_hook_(begin.kind, begin.time);
        r_leg_ = Leg{};
        r_leg_.now = begin.time;
        if (begin.kind == kEncounterVote) {
          r_state_ = RState::kAwaitOpen;
        } else {
          if (mod_ == nullptr) return fail();
          r_state_ = RState::kAwaitModBatch;
        }
      }
      return true;

    case RState::kAwaitOpen:
      if (frame.type == FrameType::kVoteFull) {
        vote::VoteListMessage msg;
        if (!decode_vote_full(frame.payload, msg)) return fail();
        note_receive(vote_->receive_votes(msg, r_leg_.now));
        r_state_ = open_leg(r_leg_, ch, out) ? RState::kAwaitDeltaRequest
                                             : RState::kAwaitWrap;
        return true;
      }
      if (frame.type == FrameType::kVoteDigest) {
        vote::VoteDigestMessage digest;
        if (!decode_vote_digest(frame.payload, digest)) return fail();
        if (!vote::digest_intact(digest)) {
          push(out, FrameType::kVoteFullRequest, ch, {});
          ++counters_.fallbacks_requested;
          r_state_ = RState::kAwaitFullRetry;
          return true;
        }
        r_leg_.peer_digest = std::move(digest);
        r_leg_.missing = vote_->scan_digest(r_leg_.peer_digest);
        push(out, FrameType::kVoteDeltaRequest, ch,
             encode_delta_request(r_leg_.missing));
        if (r_leg_.missing.empty()) {
          note_receive(
              vote_->receive_delta(r_leg_.peer_digest, nullptr, r_leg_.now));
          r_state_ = open_leg(r_leg_, ch, out) ? RState::kAwaitDeltaRequest
                                               : RState::kAwaitWrap;
        } else {
          r_state_ = RState::kAwaitDelta;
        }
        return true;
      }
      return fail();

    case RState::kAwaitDelta:
      if (frame.type != FrameType::kVoteDelta) return fail();
      {
        vote::VoteDeltaMessage delta;
        if (!decode_vote_delta(frame.payload, delta)) return fail();
        note_receive(
            vote_->receive_delta(r_leg_.peer_digest, &delta, r_leg_.now));
        r_state_ = open_leg(r_leg_, ch, out) ? RState::kAwaitDeltaRequest
                                             : RState::kAwaitWrap;
      }
      return true;

    case RState::kAwaitFullRetry:
      if (frame.type != FrameType::kVoteFull) return fail();
      {
        vote::VoteListMessage msg;
        if (!decode_vote_full(frame.payload, msg)) return fail();
        note_receive(vote_->receive_votes(msg, r_leg_.now));
        r_state_ = open_leg(r_leg_, ch, out) ? RState::kAwaitDeltaRequest
                                             : RState::kAwaitWrap;
      }
      return true;

    case RState::kAwaitDeltaRequest:
      if (frame.type == FrameType::kVoteDeltaRequest) {
        if (!serve_delta_request(r_leg_, frame, ch, out)) return fail();
        r_state_ = RState::kAwaitWrap;
        return true;
      }
      if (frame.type == FrameType::kVoteFullRequest) {
        if (!frame.payload.empty()) return fail();
        serve_full_retry(r_leg_, ch, out);
        r_state_ = RState::kAwaitWrap;
        return true;
      }
      return fail();

    case RState::kAwaitWrap:
      if (frame.type == FrameType::kVoxRequest) {
        if (!frame.payload.empty()) return fail();
        // An empty answer is the protocol's "null" (Fig. 3c) — sent
        // explicitly so the initiator never waits on silence.
        push(out, FrameType::kVoxTopK, ch,
             encode_vox_topk(vote::Encounter::answer_vox(*vote_)));
        return true;
      }
      if (frame.type == FrameType::kEncounterEnd) {
        if (!frame.payload.empty()) return fail();
        r_state_ = RState::kIdle;
        ++counters_.encounters_served;
        return true;
      }
      return fail();

    case RState::kAwaitModBatch:
      if (frame.type != FrameType::kModBatch || mod_ == nullptr) return fail();
      {
        std::vector<moderation::Moderation> items;
        if (!decode_mod_batch(frame.payload, items)) return fail();
        // The shared responder half (moderation::respond_exchange):
        // extract-before-merge in Fig. 1 order, identical to the sim path.
        moderation::ModerationCastAgent::ReceiveStats merged;
        const std::vector<moderation::Moderation> from_us =
            moderation::respond_exchange(*mod_, items, r_leg_.now, &merged);
        counters_.mod_rejected += merged.bad_signature;
        push(out, FrameType::kModBatch, ch, encode_mod_batch(from_us));
        r_state_ = RState::kAwaitModEnd;
      }
      return true;

    case RState::kAwaitModEnd:
      if (frame.type != FrameType::kEncounterEnd || !frame.payload.empty()) {
        return fail();
      }
      r_state_ = RState::kIdle;
      ++counters_.mod_served;
      return true;
  }
  return fail();
}

}  // namespace tribvote::net
