// The socket plane's peer sampling service: a Newscast view maintained
// from Schnorr-signed descriptor exchanges over TCP (PROTOCOL.md §8).
//
// Where the simulator's NewscastPss merges views in shared memory, this
// directory is fed verified PeerDescriptors decoded from PEER_EXCHANGE
// frames and answers the same pss::PeerSampler interface — so the
// EncounterScheduler and the scenario runner sample counterparts through
// one API regardless of transport (the PR 8 redesign's point).
//
// Determinism contract: the view is kept sorted by peer id and sample()
// replays OnlineDirectory::sample_online's exact draw sequence (uniform
// index draw with self-rejection retry) over that sorted id set, self
// entry included. At full membership — every cluster node in view — a
// directory-backed node therefore consumes RNG draws bit-identically to
// an oracle-sampled node over [0, N), which is what lets the round-barrier
// TCP cluster reproduce the simulator's state digests byte-for-byte
// (tests/net_cluster_test.cpp).
#pragma once

#include <cstdint>
#include <vector>

#include "crypto/schnorr.hpp"
#include "net/codec.hpp"
#include "pss/peer_sampler.hpp"
#include "util/rng.hpp"

namespace tribvote::net {

/// Build `self`'s signed descriptor stamped `now`. `rng` supplies the
/// signature nonce.
[[nodiscard]] PeerDescriptor make_descriptor(PeerId self,
                                             const crypto::KeyPair& keys,
                                             std::uint32_t ip,
                                             std::uint16_t port, Time now,
                                             util::Rng& rng);

/// Check a descriptor's signature against its embedded public key.
[[nodiscard]] bool verify_descriptor(const PeerDescriptor& d);

struct PeerDirectoryConfig {
  /// Max *remote* descriptors kept (the self entry rides on top).
  std::size_t view_size = 20;
  /// Descriptors whose heartbeat is older than this are dead (same
  /// role as NewscastConfig::entry_ttl).
  Duration entry_ttl = 30 * kMinute;
  /// Consecutive failed dials after which a descriptor is quarantined —
  /// the wire replacement for the sim's "offline entry" staleness, and
  /// the fast demotion path for NAT-shaped unreachable dial-back
  /// addresses (an address that refuses K dials in a row is presumed
  /// unreachable, not merely busy).
  std::size_t max_dial_failures = 3;
  /// How long a quarantined descriptor lingers (invisible to sampling,
  /// shuffles and lookup) before it is dropped outright. While it
  /// lingers, only a strictly fresher heartbeat — proof the peer is back
  /// and re-announcing — lifts the quarantine. That memory is the point:
  /// a plain eviction lets the next gossiped copy of the same dead
  /// descriptor start a fresh K-dial probation at full price.
  Duration quarantine_ttl = 10 * kMinute;
  /// Descriptors per outgoing PEER_EXCHANGE (<= kMaxPeerDescriptors).
  std::size_t shuffle_size = 16;
};

class PeerDirectory final : public pss::PeerSampler {
 public:
  /// The directory derives two independent child streams from its seed
  /// rng: signature nonces and sample() draws. Keeping them apart is what
  /// makes the draw sequence of sample() a pure function of the sampling
  /// history — shuffle traffic (self re-signing) never perturbs it, so an
  /// oracle sampler seeded Rng(seed).derive(kSampleStream) stays draw-for-
  /// draw identical to a directory at full membership.
  static constexpr std::uint64_t kSampleStream = 0x73616d706c65ULL;  // "sample"
  static constexpr std::uint64_t kSignStream = 0x7369676eULL;        // "sign"

  /// `keys` must outlive the directory (owned by the node). `ip`/`port`
  /// are this node's advertised dial address.
  PeerDirectory(PeerId self, const crypto::KeyPair& keys,
                std::uint32_t ip, std::uint16_t port,
                PeerDirectoryConfig config, util::Rng rng);

  /// Re-sign our descriptor with heartbeat `now` and return it. Called
  /// whenever the self entry goes out (shuffles), so peers always see the
  /// freshest stamp.
  const PeerDescriptor& refresh_self(Time now);

  /// Item-wise outcome of merging one PEER_EXCHANGE payload.
  struct MergeStats {
    std::size_t accepted = 0;  ///< inserted or refreshed an entry
    std::size_t stale = 0;     ///< older than what we hold (incl. self)
    std::size_t forged = 0;    ///< signature failed; item dropped
  };

  /// Verify and merge every descriptor of a decoded PEER_EXCHANGE.
  /// Forged items are dropped alone (like mod-batch items) — never
  /// connection-fatal. Freshest entry per peer wins; ties keep ours.
  MergeStats merge_exchange(const PeerExchangeMessage& m, Time now);

  /// Merge one already-verified descriptor (bootstrap seeds, HELLO-learned
  /// peers). Returns true when it changed the view.
  bool merge(const PeerDescriptor& d, Time now);

  /// Our current shuffle slice: refreshed self entry plus the freshest
  /// remotes, capped at shuffle_size.
  [[nodiscard]] PeerExchangeMessage build_shuffle(Time now,
                                                  bool reply_requested);

  /// Drop every remote entry whose heartbeat aged past entry_ttl, and
  /// every quarantined entry whose quarantine aged past quarantine_ttl.
  /// Returns the number evicted.
  std::size_t evict_expired(Time now);

  /// Dial feedback from the scheduler: max_dial_failures consecutive
  /// failures quarantine the descriptor (returns true when it did) —
  /// it vanishes from sampling, shuffles, lookup and view_count, but the
  /// tombstone remembers the heartbeat so re-gossiped copies of the same
  /// stale descriptor cannot resurrect it; only a strictly fresher one
  /// can. `now` stamps the quarantine for quarantine_ttl expiry.
  bool note_dial_failure(PeerId peer, Time now = 0);
  void note_dial_success(PeerId peer);

  /// Find an *active* peer's descriptor (dial address lookup). False if
  /// unknown or quarantined — the scheduler must not redial quarantine.
  [[nodiscard]] bool lookup(PeerId peer, PeerDescriptor& out) const;

  /// Active remote entries currently held (self and quarantined excluded).
  [[nodiscard]] std::size_t view_count() const noexcept;
  /// Quarantined tombstones currently held, for reports and tests.
  [[nodiscard]] std::size_t quarantined_count() const noexcept;
  /// Sorted active remote peer ids, for reports and tests.
  [[nodiscard]] std::vector<PeerId> known_peers() const;

  // pss::PeerSampler ---------------------------------------------------------
  /// Uniform draw over the sorted known-id set (self entry included) with
  /// self-rejection retry — OnlineDirectory::sample_online's sequence.
  [[nodiscard]] PeerId sample(PeerId self) override;
  void set_exchange_probe(telemetry::Counter probe) noexcept override {
    exchange_probe_ = probe;
  }

 private:
  struct Record {
    PeerDescriptor d;
    std::size_t dial_failures = 0;
    bool quarantined = false;
    Time quarantined_at = 0;
  };

  /// Index of `peer` in the sorted records_, or records_.size().
  [[nodiscard]] std::size_t index_of(PeerId peer) const;
  void enforce_cap();
  void erase(PeerId peer);

  PeerId self_;
  const crypto::KeyPair* keys_;
  std::uint32_t ip_;
  std::uint16_t port_;
  PeerDirectoryConfig config_;
  util::Rng sample_rng_;
  util::Rng sign_rng_;
  PeerDescriptor self_desc_;
  std::vector<Record> records_;  ///< sorted by peer id, self included
  telemetry::Counter exchange_probe_;
};

}  // namespace tribvote::net
