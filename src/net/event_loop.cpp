#include "net/event_loop.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstring>

namespace tribvote::net {

namespace {

bool set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  return flags >= 0 && ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) == 0;
}

void set_nodelay(int fd) {
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

void fill_err(std::string* err, const char* what) {
  if (err != nullptr) *err = std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

EventLoop::Entry* EventLoop::find(int fd) {
  for (Entry& e : entries_) {
    if (e.fd == fd && !e.dead) return &e;
  }
  return nullptr;
}

void EventLoop::add(int fd, Handler handler) {
  Entry e;
  e.fd = fd;
  e.handler = std::move(handler);
  entries_.push_back(std::move(e));
}

void EventLoop::remove(int fd) {
  for (Entry& e : entries_) {
    if (e.fd == fd) e.dead = true;
  }
  if (!dispatching_) compact();
}

void EventLoop::set_want_write(int fd, bool want) {
  if (Entry* e = find(fd); e != nullptr) e->want_write = want;
}

void EventLoop::compact() {
  std::erase_if(entries_, [](const Entry& e) { return e.dead; });
}

std::size_t EventLoop::size() const noexcept {
  std::size_t n = 0;
  for (const Entry& e : entries_) {
    if (!e.dead) ++n;
  }
  return n;
}

EventLoop::TimerId EventLoop::schedule_after(int delay_ms,
                                             std::function<void()> fn) {
  Timer t;
  t.id = next_timer_id_++;
  t.due = Clock::now() + std::chrono::milliseconds(std::max(delay_ms, 0));
  t.fn = std::move(fn);
  timers_.push_back(std::move(t));
  return timers_.back().id;
}

void EventLoop::cancel_timer(TimerId id) {
  std::erase_if(timers_, [id](const Timer& t) { return t.id == id; });
}

std::size_t EventLoop::pending_timers() const noexcept {
  return timers_.size();
}

int EventLoop::clip_to_timers(int timeout_ms) const {
  if (timers_.empty()) return timeout_ms;
  auto earliest = timers_.front().due;
  for (const Timer& t : timers_) earliest = std::min(earliest, t.due);
  const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
      earliest - Clock::now());
  const int until = static_cast<int>(
      std::clamp<long long>(left.count(), 0, 1'000'000'000));
  if (timeout_ms < 0) return until;
  return std::min(timeout_ms, until);
}

int EventLoop::fire_due_timers(Clock::time_point now) {
  int fired = 0;
  // Fire strictly in (due, id) order, re-scanning after each callback: the
  // callback may schedule or cancel timers, so indices/iterators into
  // timers_ must not be held across the call. Timers scheduled by a
  // callback for "now" still wait for the next pass (one-shot semantics,
  // no same-pass cascades).
  const TimerId fence = next_timer_id_;
  for (;;) {
    const Timer* best = nullptr;
    for (const Timer& t : timers_) {
      if (t.due > now || t.id >= fence) continue;
      if (best == nullptr || t.due < best->due ||
          (t.due == best->due && t.id < best->id)) {
        best = &t;
      }
    }
    if (best == nullptr) return fired;
    const TimerId id = best->id;
    const std::function<void()> cb = best->fn;  // copy: cb may mutate timers_
    std::erase_if(timers_, [id](const Timer& t) { return t.id == id; });
    if (cb) cb();
    ++fired;
  }
}

int EventLoop::poll_once(int timeout_ms) {
  std::vector<pollfd> fds;
  std::vector<int> owners;
  fds.reserve(entries_.size());
  for (const Entry& e : entries_) {
    if (e.dead) continue;
    pollfd p{};
    p.fd = e.fd;
    p.events = POLLIN;
    if (e.want_write) p.events |= POLLOUT;
    fds.push_back(p);
    owners.push_back(e.fd);
  }
  const int wait_ms = clip_to_timers(timeout_ms);
  if (fds.empty()) {
    // No fds: sleep out the wait budget (poll with no entries is a portable
    // millisecond sleep), then fire whatever came due.
    if (wait_ms != 0) ::poll(nullptr, 0, wait_ms);
    return fire_due_timers(Clock::now());
  }
  const int n = ::poll(fds.data(), fds.size(), wait_ms);
  if (n < 0) return n;
  if (n == 0) return fire_due_timers(Clock::now());

  dispatching_ = true;
  for (std::size_t i = 0; i < fds.size(); ++i) {
    const short got = fds[i].revents;
    if (got == 0) continue;
    // Re-find per dispatch (an earlier callback may have removed this fd)
    // and invoke through a COPY of the std::function: the callback may call
    // add(), reallocating entries_ and destroying the closure it is
    // executing from.
    Entry* e = find(owners[i]);
    if (e == nullptr) continue;
    if ((got & (POLLIN | POLLERR | POLLHUP)) != 0 && e->handler.on_readable) {
      const std::function<void()> cb = e->handler.on_readable;
      cb();
    }
    e = find(owners[i]);
    if (e == nullptr) continue;
    if ((got & POLLOUT) != 0 && e->handler.on_writable) {
      const std::function<void()> cb = e->handler.on_writable;
      cb();
    }
  }
  dispatching_ = false;
  compact();
  return n + fire_due_timers(Clock::now());
}

bool EventLoop::run_until(const std::function<bool()>& done, int max_ms) {
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::milliseconds(max_ms);
  while (!done()) {
    const auto left = std::chrono::duration_cast<std::chrono::milliseconds>(
        deadline - std::chrono::steady_clock::now());
    if (left.count() <= 0) return false;
    const int step = static_cast<int>(std::min<long long>(left.count(), 50));
    if (poll_once(step) < 0) return false;
  }
  return true;
}

int tcp_listen(std::uint16_t port, std::string* err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    fill_err(err, "socket");
    return -1;
  }
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_ANY);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(fd, 64) != 0 || !set_nonblocking(fd)) {
    fill_err(err, "bind/listen");
    ::close(fd);
    return -1;
  }
  return fd;
}

int tcp_connect(const std::string& host, std::uint16_t port,
                std::string* err) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) {
    fill_err(err, "socket");
    return -1;
  }
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    fill_err(err, "inet_pton");
    ::close(fd);
    return -1;
  }
  if (!set_nonblocking(fd)) {
    fill_err(err, "fcntl");
    ::close(fd);
    return -1;
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 &&
      errno != EINPROGRESS) {
    fill_err(err, "connect");
    ::close(fd);
    return -1;
  }
  set_nodelay(fd);
  return fd;
}

int tcp_accept(int listen_fd) {
  const int fd = ::accept(listen_fd, nullptr, nullptr);
  if (fd < 0) return -1;
  if (!set_nonblocking(fd)) {
    ::close(fd);
    return -1;
  }
  set_nodelay(fd);
  return fd;
}

std::uint16_t local_port(int fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return 0;
  }
  return ntohs(addr.sin_port);
}

}  // namespace tribvote::net
