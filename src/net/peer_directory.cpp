#include "net/peer_directory.hpp"

#include <algorithm>
#include <cassert>

namespace tribvote::net {

PeerDescriptor make_descriptor(PeerId self, const crypto::KeyPair& keys,
                               std::uint32_t ip, std::uint16_t port, Time now,
                               util::Rng& rng) {
  PeerDescriptor d;
  d.peer = self;
  d.key = keys.pub;
  d.ip = ip;
  d.port = port;
  d.heartbeat = now;
  d.signature = crypto::sign(keys, descriptor_digest(d), rng);
  return d;
}

bool verify_descriptor(const PeerDescriptor& d) {
  return crypto::verify(d.key, descriptor_digest(d), d.signature);
}

PeerDirectory::PeerDirectory(PeerId self, const crypto::KeyPair& keys,
                             std::uint32_t ip, std::uint16_t port,
                             PeerDirectoryConfig config, util::Rng rng)
    : self_(self),
      keys_(&keys),
      ip_(ip),
      port_(port),
      config_(config),
      sample_rng_(rng.derive(kSampleStream)),
      sign_rng_(rng.derive(kSignStream)) {
  assert(config_.shuffle_size <= kMaxPeerDescriptors);
  refresh_self(0);
  Record r;
  r.d = self_desc_;
  records_.push_back(std::move(r));  // self entry; first, and id-sorted stays
}

const PeerDescriptor& PeerDirectory::refresh_self(Time now) {
  self_desc_ = make_descriptor(self_, *keys_, ip_, port_, now, sign_rng_);
  const std::size_t i = index_of(self_);
  if (i < records_.size()) records_[i].d = self_desc_;
  return self_desc_;
}

std::size_t PeerDirectory::index_of(PeerId peer) const {
  const auto it = std::lower_bound(
      records_.begin(), records_.end(), peer,
      [](const Record& r, PeerId p) { return r.d.peer < p; });
  if (it == records_.end() || it->d.peer != peer) return records_.size();
  return static_cast<std::size_t>(it - records_.begin());
}

void PeerDirectory::erase(PeerId peer) {
  const std::size_t i = index_of(peer);
  if (i < records_.size()) {
    records_.erase(records_.begin() + static_cast<std::ptrdiff_t>(i));
  }
}

void PeerDirectory::enforce_cap() {
  // Evict the stalest active remote (oldest heartbeat; ties drop the
  // larger id) until the active count fits the view — Newscast's
  // keep-the-freshest rule, made deterministic for the equivalence tests.
  // Quarantined tombstones live outside the view cap (their population is
  // bounded by quarantine_ttl instead).
  while (view_count() > config_.view_size) {
    const Record* victim = nullptr;
    for (const Record& r : records_) {
      if (r.d.peer == self_ || r.quarantined) continue;
      if (victim == nullptr || r.d.heartbeat < victim->d.heartbeat ||
          (r.d.heartbeat == victim->d.heartbeat &&
           r.d.peer > victim->d.peer)) {
        victim = &r;
      }
    }
    assert(victim != nullptr);
    erase(victim->d.peer);
  }
}

bool PeerDirectory::merge(const PeerDescriptor& d, Time now) {
  (void)now;
  if (d.peer == self_) return false;  // nobody overrides our own entry
  const std::size_t i = index_of(d.peer);
  if (i < records_.size()) {
    if (d.heartbeat <= records_[i].d.heartbeat) return false;  // stale
    // A quarantined entry rejects everything above, so only a *strictly
    // fresher* heartbeat — the peer re-announcing itself — reaches here
    // and lifts the quarantine with a clean dial slate.
    records_[i].d = d;
    records_[i].dial_failures = 0;
    records_[i].quarantined = false;
    records_[i].quarantined_at = 0;
    return true;
  }
  Record r;
  r.d = d;
  const auto it = std::lower_bound(
      records_.begin(), records_.end(), d.peer,
      [](const Record& rec, PeerId p) { return rec.d.peer < p; });
  records_.insert(it, std::move(r));
  enforce_cap();
  return true;
}

PeerDirectory::MergeStats PeerDirectory::merge_exchange(
    const PeerExchangeMessage& m, Time now) {
  MergeStats stats;
  for (const PeerDescriptor& d : m.descriptors) {
    if (!verify_descriptor(d)) {
      ++stats.forged;  // item-wise reject, like mod-batch items
      continue;
    }
    if (merge(d, now)) {
      ++stats.accepted;
    } else {
      ++stats.stale;
    }
  }
  exchange_probe_.add();
  return stats;
}

PeerExchangeMessage PeerDirectory::build_shuffle(Time now,
                                                 bool reply_requested) {
  PeerExchangeMessage m;
  m.reply_requested = reply_requested;
  m.descriptors.push_back(refresh_self(now));
  // Freshest active remotes first (ties: smaller id), capped at
  // shuffle_size. Quarantined descriptors are never re-gossiped — we will
  // not advertise an address we could not reach.
  std::vector<const Record*> remotes;
  for (const Record& r : records_) {
    if (r.d.peer != self_ && !r.quarantined) remotes.push_back(&r);
  }
  std::sort(remotes.begin(), remotes.end(),
            [](const Record* a, const Record* b) {
              if (a->d.heartbeat != b->d.heartbeat) {
                return a->d.heartbeat > b->d.heartbeat;
              }
              return a->d.peer < b->d.peer;
            });
  for (const Record* r : remotes) {
    if (m.descriptors.size() >= config_.shuffle_size) break;
    m.descriptors.push_back(r->d);
  }
  return m;
}

std::size_t PeerDirectory::evict_expired(Time now) {
  const std::size_t before = records_.size();
  std::erase_if(records_, [&](const Record& r) {
    if (r.d.peer == self_) return false;
    if (r.quarantined) {
      return r.quarantined_at + config_.quarantine_ttl < now;
    }
    return r.d.heartbeat + config_.entry_ttl < now;
  });
  return before - records_.size();
}

bool PeerDirectory::note_dial_failure(PeerId peer, Time now) {
  const std::size_t i = index_of(peer);
  if (i >= records_.size() || peer == self_) return false;
  if (records_[i].quarantined) return false;  // already demoted
  if (++records_[i].dial_failures >= config_.max_dial_failures) {
    records_[i].quarantined = true;
    records_[i].quarantined_at = now;
    return true;
  }
  return false;
}

void PeerDirectory::note_dial_success(PeerId peer) {
  const std::size_t i = index_of(peer);
  if (i < records_.size()) records_[i].dial_failures = 0;
}

bool PeerDirectory::lookup(PeerId peer, PeerDescriptor& out) const {
  const std::size_t i = index_of(peer);
  if (i >= records_.size() || records_[i].quarantined) return false;
  out = records_[i].d;
  return true;
}

std::size_t PeerDirectory::view_count() const noexcept {
  std::size_t n = 0;
  for (const Record& r : records_) {
    if (r.d.peer != self_ && !r.quarantined) ++n;
  }
  return n;
}

std::size_t PeerDirectory::quarantined_count() const noexcept {
  std::size_t n = 0;
  for (const Record& r : records_) {
    if (r.quarantined) ++n;
  }
  return n;
}

std::vector<PeerId> PeerDirectory::known_peers() const {
  std::vector<PeerId> ids;
  ids.reserve(records_.size());
  for (const Record& r : records_) {
    if (r.d.peer != self_ && !r.quarantined) ids.push_back(r.d.peer);
  }
  return ids;  // records_ is id-sorted
}

PeerId PeerDirectory::sample(PeerId self) {
  // OnlineDirectory::sample_online's draw sequence over the sorted id set:
  // uniform index draw, retry while the draw lands on self (or on a
  // quarantined tombstone — absent at full healthy membership, so the
  // oracle equivalence contract is untouched).
  const std::size_t n = records_.size();
  if (n == 0) return kInvalidPeer;
  bool sampleable = false;
  for (const Record& r : records_) {
    if (r.d.peer != self && !r.quarantined) {
      sampleable = true;
      break;
    }
  }
  if (!sampleable) return kInvalidPeer;
  for (;;) {
    const Record& pick = records_[sample_rng_.next_below(n)];
    if (pick.d.peer != self && !pick.quarantined) return pick.d.peer;
  }
}

}  // namespace tribvote::net
