// Poll-based single-threaded event loop + nonblocking TCP helpers — the
// socket substrate under net::NodeService. Deliberately minimal: poll(2)
// over registered fds with per-fd readable/writable callbacks, level-
// triggered, plus one-shot wall-clock timers (the EncounterScheduler's
// round tick and backoff redials; the encounter protocol itself needs none
// — every encounter is request/response over TCP, and quiescence is
// explicit via BYE frames).
//
// Single ownership rule: callbacks run on the thread calling poll_once();
// a callback may add or remove fds (including its own), and schedule or
// cancel timers (including its own) — removals take effect before the next
// dispatch.
#pragma once

#include <chrono>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace tribvote::net {

class EventLoop {
 public:
  struct Handler {
    std::function<void()> on_readable;
    std::function<void()> on_writable;
  };

  using TimerId = std::uint64_t;

  /// Register `fd`. The loop never closes fds — owners do.
  void add(int fd, Handler handler);
  void remove(int fd);
  /// Interest in writability (set while an output buffer is non-empty).
  void set_want_write(int fd, bool want);

  /// One-shot timer: run `fn` once at least `delay_ms` from now, from a
  /// later poll_once() pass. Timers fire in (due time, id) order — ties
  /// break by scheduling order — so expiry is deterministic for a fixed
  /// call sequence. Returns an id for cancel_timer.
  TimerId schedule_after(int delay_ms, std::function<void()> fn);
  /// Cancel a pending timer; a no-op if it already fired or never existed.
  void cancel_timer(TimerId id);
  [[nodiscard]] std::size_t pending_timers() const noexcept;

  /// One poll + dispatch pass. Returns the number of fds that fired (fired
  /// timers count as one each), 0 on timeout, -1 on poll error.
  /// `timeout_ms` < 0 blocks until an fd or timer fires; the wait is
  /// always clipped to the earliest pending timer's due time.
  int poll_once(int timeout_ms);

  /// Drive poll_once until `done()` or `max_ms` elapses. Returns done().
  bool run_until(const std::function<bool()>& done, int max_ms);

  [[nodiscard]] std::size_t size() const noexcept;

 private:
  using Clock = std::chrono::steady_clock;

  struct Entry {
    int fd = -1;
    Handler handler;
    bool want_write = false;
    bool dead = false;
  };

  struct Timer {
    TimerId id = 0;
    Clock::time_point due;
    std::function<void()> fn;
  };

  Entry* find(int fd);
  void compact();
  /// Wait budget until the earliest timer, clipped into `timeout_ms`.
  int clip_to_timers(int timeout_ms) const;
  /// Fire every timer due at `now`; returns the count fired.
  int fire_due_timers(Clock::time_point now);

  std::vector<Entry> entries_;
  std::vector<Timer> timers_;  // unordered; scanned on fire (small N)
  TimerId next_timer_id_ = 1;
  bool dispatching_ = false;
};

// ---- nonblocking TCP helpers (IPv4 loopback/LAN grade) ---------------------

/// Listen on 127.0.0.1-any:`port` (0 = ephemeral). Returns the listening fd
/// or -1 (`err` gets the reason). SO_REUSEADDR set, nonblocking.
int tcp_listen(std::uint16_t port, std::string* err = nullptr);

/// Begin a nonblocking connect to host:port. Returns the fd (connection may
/// still be in progress — poll for writability) or -1.
int tcp_connect(const std::string& host, std::uint16_t port,
                std::string* err = nullptr);

/// Accept one pending connection (nonblocking, TCP_NODELAY). -1 when none.
int tcp_accept(int listen_fd);

/// The locally bound port of a socket (resolves port 0 after tcp_listen).
std::uint16_t local_port(int fd);

}  // namespace tribvote::net
