// Length-prefixed CRC-checked framing for the socket transport
// (PROTOCOL.md §2). Every protocol message travels as one frame:
//
//   offset  size  field
//   0       1     magic 'T' (0x54)
//   1       1     magic 'V' (0x56)
//   2       1     wire version (currently 1)
//   3       1     frame type (FrameType; unknown values are fatal)
//   4       1     channel (0 = connector-initiated encounter, 1 = acceptor-
//                 initiated; resolves simultaneous initiation, §3)
//   5       3     reserved, must be zero
//   8       4     payload length N, little-endian (<= kMaxPayload)
//   12      4     CRC-32 of the N payload bytes (net/crc32.hpp)
//   16      N     payload (net/codec.hpp)
//
// Error semantics (PROTOCOL.md §5): a damaged header — bad magic, version,
// type, channel, reserved bits or oversized length — means the byte stream
// can no longer be framed; the reader flags the stream corrupt and the
// connection must be closed (counted `net.malformed`). A payload whose CRC
// does not match is a checksum reject (`net.checksum_rejects`): the frame's
// content cannot be trusted and neither can anything the same peer sends
// next, so it is likewise connection-fatal — the PR 4 fault plane's
// corruption verdict mapped onto a real stream, with the same guarantee
// that nothing damaged is ever delivered upward. Bytes of an incomplete
// frame at stream end are a truncation event (`net.truncated`).
#pragma once

#include <cstddef>
#include <cstdint>
#include <deque>
#include <vector>

namespace tribvote::net {

inline constexpr std::uint8_t kMagic0 = 0x54;  // 'T'
inline constexpr std::uint8_t kMagic1 = 0x56;  // 'V'
inline constexpr std::uint8_t kWireVersion = 1;
inline constexpr std::size_t kHeaderSize = 16;
inline constexpr std::size_t kMaxPayload = 1U << 20;

enum class FrameType : std::uint8_t {
  kHello = 0x01,
  kEncounterBegin = 0x02,
  kEncounterEnd = 0x03,
  kBye = 0x04,
  kVoteFull = 0x10,
  kVoteDigest = 0x11,
  kVoteDeltaRequest = 0x12,
  kVoteDelta = 0x13,
  kVoteFullRequest = 0x14,
  kVoxRequest = 0x15,
  kVoxTopK = 0x16,
  kModBatch = 0x20,
  kPeerExchange = 0x30,
};

[[nodiscard]] bool valid_frame_type(std::uint8_t type);

struct Frame {
  FrameType type = FrameType::kHello;
  std::uint8_t channel = 0;
  std::vector<std::uint8_t> payload;
};

/// Serialize one frame (header + CRC + payload) onto `out`.
void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out);

/// Incremental frame parser over an arbitrary byte stream: feed whatever
/// the socket produced, pop complete frames. Sticky error flags — after a
/// malformed header or a CRC mismatch the reader accepts no further bytes
/// and the caller must drop the connection.
class FrameReader {
 public:
  struct Stats {
    std::uint64_t frames = 0;           ///< complete frames delivered
    std::uint64_t bytes = 0;            ///< bytes fed
    std::uint64_t checksum_rejects = 0; ///< payload CRC mismatches
    std::uint64_t malformed = 0;        ///< unframeable headers
  };

  /// Consume `size` bytes from the stream. No-op once corrupt.
  void feed(const std::uint8_t* data, std::size_t size);

  /// Pop the next complete frame, if any.
  bool next(Frame& out);

  /// Stream can no longer be parsed (malformed header or CRC reject).
  [[nodiscard]] bool corrupt() const noexcept { return corrupt_; }

  /// Bytes of an incomplete trailing frame — nonzero at connection close
  /// means the peer truncated mid-frame.
  [[nodiscard]] std::size_t pending_bytes() const noexcept {
    return buffer_.size();
  }

  [[nodiscard]] const Stats& stats() const noexcept { return stats_; }

 private:
  void parse();

  std::vector<std::uint8_t> buffer_;
  std::deque<Frame> ready_;
  Stats stats_;
  bool corrupt_ = false;
};

}  // namespace tribvote::net
