#include "net/frame.hpp"

#include "net/crc32.hpp"
#include "net/wire.hpp"

namespace tribvote::net {

bool valid_frame_type(std::uint8_t type) {
  switch (static_cast<FrameType>(type)) {
    case FrameType::kHello:
    case FrameType::kEncounterBegin:
    case FrameType::kEncounterEnd:
    case FrameType::kBye:
    case FrameType::kVoteFull:
    case FrameType::kVoteDigest:
    case FrameType::kVoteDeltaRequest:
    case FrameType::kVoteDelta:
    case FrameType::kVoteFullRequest:
    case FrameType::kVoxRequest:
    case FrameType::kVoxTopK:
    case FrameType::kModBatch:
    case FrameType::kPeerExchange:
      return true;
  }
  return false;
}

void encode_frame(const Frame& frame, std::vector<std::uint8_t>& out) {
  WireWriter w(out);
  w.u8(kMagic0);
  w.u8(kMagic1);
  w.u8(kWireVersion);
  w.u8(static_cast<std::uint8_t>(frame.type));
  w.u8(frame.channel);
  w.u8(0);
  w.u8(0);
  w.u8(0);
  w.u32(static_cast<std::uint32_t>(frame.payload.size()));
  w.u32(crc32(frame.payload));
  w.bytes(frame.payload.data(), frame.payload.size());
}

void FrameReader::feed(const std::uint8_t* data, std::size_t size) {
  if (corrupt_) return;
  stats_.bytes += size;
  buffer_.insert(buffer_.end(), data, data + size);
  parse();
}

bool FrameReader::next(Frame& out) {
  if (ready_.empty()) return false;
  out = std::move(ready_.front());
  ready_.pop_front();
  return true;
}

void FrameReader::parse() {
  std::size_t cursor = 0;
  while (!corrupt_ && buffer_.size() - cursor >= kHeaderSize) {
    const std::uint8_t* h = buffer_.data() + cursor;
    WireReader r(h, kHeaderSize);
    const std::uint8_t m0 = r.u8();
    const std::uint8_t m1 = r.u8();
    const std::uint8_t version = r.u8();
    const std::uint8_t type = r.u8();
    const std::uint8_t channel = r.u8();
    const std::uint8_t rsv0 = r.u8();
    const std::uint8_t rsv1 = r.u8();
    const std::uint8_t rsv2 = r.u8();
    const std::uint32_t length = r.u32();
    const std::uint32_t crc = r.u32();
    if (m0 != kMagic0 || m1 != kMagic1 || version != kWireVersion ||
        !valid_frame_type(type) || channel > 1 || rsv0 != 0 || rsv1 != 0 ||
        rsv2 != 0 || length > kMaxPayload) {
      ++stats_.malformed;
      corrupt_ = true;
      break;
    }
    if (buffer_.size() - cursor - kHeaderSize < length) break;  // incomplete
    const std::uint8_t* payload = h + kHeaderSize;
    if (crc32(payload, length) != crc) {
      ++stats_.checksum_rejects;
      corrupt_ = true;
      break;
    }
    Frame f;
    f.type = static_cast<FrameType>(type);
    f.channel = channel;
    f.payload.assign(payload, payload + length);
    ready_.push_back(std::move(f));
    ++stats_.frames;
    cursor += kHeaderSize + length;
  }
  buffer_.erase(buffer_.begin(),
                buffer_.begin() + static_cast<std::ptrdiff_t>(cursor));
  if (corrupt_) buffer_.clear();
}

}  // namespace tribvote::net
