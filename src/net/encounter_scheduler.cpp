#include "net/encounter_scheduler.hpp"

#include <algorithm>
#include <cstdio>

namespace tribvote::net {

namespace {

std::string ip_to_string(std::uint32_t ip) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "%u.%u.%u.%u", (ip >> 24) & 0xff,
                (ip >> 16) & 0xff, (ip >> 8) & 0xff, ip & 0xff);
  return buf;
}

}  // namespace

EncounterScheduler::EncounterScheduler(EventLoop& loop, NodeService& service,
                                       PeerDirectory& directory,
                                       EncounterSchedulerConfig config)
    : loop_(&loop),
      service_(&service),
      directory_(&directory),
      config_(config) {
  service_->set_directory(directory_, [this] { return now(); });
  service_->set_closed_hook([this](int conn, PeerId peer, CloseReason reason) {
    on_closed(conn, peer, reason);
  });
}

EncounterScheduler::~EncounterScheduler() {
  stop();
  // Detach the callbacks that capture `this`; the directory stays wired
  // (it outlives us by contract) with the null clock.
  service_->set_directory(directory_, {});
  service_->set_closed_hook({});
}

void EncounterScheduler::add_seed(const std::string& host,
                                  std::uint16_t port) {
  Seed s;
  s.host = host;
  s.port = port;
  seeds_.push_back(std::move(s));
}

void EncounterScheduler::start() {
  if (running_) return;
  running_ = true;
  for (Seed& s : seeds_) {
    if (s.conn < 0) {
      s.conn = service_->connect(s.host, s.port);
      if (s.conn >= 0) ++stats_.dials;
    }
  }
  tick_timer_ = loop_->schedule_after(config_.round_ms, [this] { tick(); });
}

void EncounterScheduler::stop() {
  if (!running_) return;
  running_ = false;
  if (tick_timer_ != 0) {
    loop_->cancel_timer(tick_timer_);
    tick_timer_ = 0;
  }
  for (auto& [peer, b] : backoff_) {
    if (b.timer != 0) loop_->cancel_timer(b.timer);
  }
  backoff_.clear();
}

void EncounterScheduler::tick() {
  tick_timer_ = 0;
  const Time t = now();
  if (impair_ != nullptr) {
    impair_->set_round(stats_.rounds);
    if (impair_->self_offline()) {
      // Inside our partition window: the shim resets every inbound stream,
      // so spending dials would only feed the failure accounting. Idle the
      // round; the window ends on the shared schedule.
      ++stats_.partition_skips;
      ++stats_.rounds;
      if (running_) {
        tick_timer_ =
            loop_->schedule_after(config_.round_ms, [this] { tick(); });
      }
      return;
    }
  }
  stats_.ttl_evictions += directory_->evict_expired(t);
  settle_dials();

  // Bootstrap seeds: shuffle once their HELLO lands; redial dead ones on a
  // slow cadence (a seed has no descriptor, so the backoff/eviction rules
  // of the directory do not apply to it).
  for (Seed& s : seeds_) {
    if (s.conn < 0) continue;
    if (service_->ready(s.conn)) {
      if (!s.shuffled && service_->send_peer_exchange(s.conn, true)) {
        s.shuffled = true;
        ++stats_.shuffles;
      }
    } else if (!service_->open(s.conn) && config_.seed_redial_rounds > 0 &&
               stats_.rounds % static_cast<std::uint64_t>(
                                   config_.seed_redial_rounds) == 0) {
      if (service_->reconnect(s.conn)) s.shuffled = false;
    }
  }

  const PeerId target = directory_->sample(service_->self());
  if (target == kInvalidPeer) {
    ++stats_.empty_samples;
  } else if (impair_ != nullptr && impair_->offline(target)) {
    ++stats_.partition_skips;  // partitioned peer: dialing it is a reset
  } else {
    const int conn = service_->conn_for_peer(target);
    if (conn >= 0 && service_->ready(conn)) {
      if (config_.shuffle_every > 0 &&
          stats_.rounds % static_cast<std::uint64_t>(config_.shuffle_every) ==
              0) {
        if (service_->send_peer_exchange(conn, true)) ++stats_.shuffles;
      }
      if (service_->initiator_idle(conn)) {
        const bool moderation =
            config_.mod_every > 0 &&
            stats_.rounds % static_cast<std::uint64_t>(config_.mod_every) ==
                static_cast<std::uint64_t>(config_.mod_every) - 1;
        if (moderation) {
          if (service_->initiate_moderation_encounter(conn, t)) {
            ++stats_.mod_encounters;
          }
        } else if (service_->initiate_vote_encounter(conn, t)) {
          ++stats_.vote_encounters;
        }
      }
    } else if (conn < 0) {
      try_dial(target);
    }
  }

  ++stats_.rounds;
  if (running_) {
    tick_timer_ = loop_->schedule_after(config_.round_ms, [this] { tick(); });
  }
}

void EncounterScheduler::settle_dials() {
  // Dials whose HELLO completed graduate to regular connections; their
  // first act is the bootstrap shuffle that tells the peer where we live.
  for (auto it = dialing_.begin(); it != dialing_.end();) {
    if (service_->ready(it->first)) {
      directory_->note_dial_success(it->second);
      backoff_.erase(it->second);
      if (service_->send_peer_exchange(it->first, true)) ++stats_.shuffles;
      it = dialing_.erase(it);
    } else if (!service_->open(it->first)) {
      // A loopback refusal can close the connection synchronously inside
      // connect() — before try_dial registered it here, so the closed
      // hook saw an unknown conn. Count the failure on this sweep.
      const PeerId peer = it->second;
      it = dialing_.erase(it);
      note_failure(peer);
    } else {
      ++it;  // still connecting; failure arrives via the closed hook
    }
  }
}

void EncounterScheduler::try_dial(PeerId peer) {
  if (dialing_.size() >= config_.max_dials) return;
  const auto b = backoff_.find(peer);
  if (b != backoff_.end() && b->second.blocked) return;
  for (const auto& [conn, p] : dialing_) {
    if (p == peer) return;  // one dial per peer at a time
  }
  PeerDescriptor d;
  if (!directory_->lookup(peer, d)) return;
  const int conn = service_->connect(ip_to_string(d.ip), d.port);
  if (conn < 0) {
    note_failure(peer);
    return;
  }
  ++stats_.dials;
  dialing_[conn] = peer;
}

void EncounterScheduler::on_closed(int conn, PeerId peer, CloseReason reason) {
  for (Seed& s : seeds_) {
    if (s.conn == conn) {
      s.shuffled = false;  // redialed on the seed cadence
      return;
    }
  }
  // A dial that never reached HELLO counts as a failure whatever killed it
  // — refusal, reset, or the HELLO deadline — and feeds the directory's
  // quarantine accounting: from out here an unreachable address and a
  // black-holed one are the same thing.
  const auto it = dialing_.find(conn);
  if (it != dialing_.end()) {
    const PeerId intended = it->second;
    dialing_.erase(it);
    note_failure(intended);
    return;
  }
  // An established peer that stalled out mid-encounter is live-but-sick:
  // its descriptor stays (the address demonstrably works), but we back off
  // before re-dialing so a half-open peer cannot monopolize the sampler
  // (PROTOCOL.md §8.2: established-close is not a dial failure).
  if (reason == CloseReason::kTimeout && peer != kInvalidPeer) {
    ++stats_.encounter_timeouts;
    apply_backoff(peer);
  }
}

void EncounterScheduler::note_failure(PeerId peer) {
  ++stats_.dial_failures;
  // Quarantines after max_dial_failures — the directory's rule.
  directory_->note_dial_failure(peer, now());
  apply_backoff(peer);
}

void EncounterScheduler::apply_backoff(PeerId peer) {
  Backoff& b = backoff_[peer];
  if (b.timer != 0) loop_->cancel_timer(b.timer);  // extend, don't race
  ++b.failures;
  const int shift =
      static_cast<int>(std::min<std::size_t>(b.failures - 1, 16));
  const long long delay =
      std::min<long long>(static_cast<long long>(config_.backoff_base_ms)
                              << shift,
                          config_.backoff_max_ms);
  b.blocked = true;
  ++stats_.redials_scheduled;
  b.timer = loop_->schedule_after(static_cast<int>(delay), [this, peer] {
    const auto it = backoff_.find(peer);
    if (it != backoff_.end()) {
      it->second.blocked = false;
      it->second.timer = 0;
    }
  });
}

}  // namespace tribvote::net
