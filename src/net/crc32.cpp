#include "net/crc32.hpp"

#include <array>

namespace tribvote::net {

namespace {

constexpr std::array<std::uint32_t, 256> make_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1U) != 0 ? 0xEDB88320U ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

constexpr std::array<std::uint32_t, 256> kTable = make_table();

}  // namespace

std::uint32_t crc32(const std::uint8_t* data, std::size_t size) noexcept {
  std::uint32_t c = 0xFFFFFFFFU;
  for (std::size_t i = 0; i < size; ++i) {
    c = kTable[(c ^ data[i]) & 0xFFU] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFU;
}

}  // namespace tribvote::net
