// Binary payload codecs for every wire message (PROTOCOL.md §4). Encoders
// produce exactly the layouts the spec fixes; decoders are strict — a
// payload that is short, carries trailing bytes, an out-of-range opinion,
// an unsorted delta-request, or a count above its limit is rejected, and
// the caller treats the frame as malformed (connection-fatal, §5).
//
// Decoding performs *syntactic* validation only. Authenticity and content
// integrity stay where the protocol already puts them: the Schnorr
// signature inside VoteListMessage/VoteDeltaMessage/Moderation and the
// digest checksum binding rule — a decoded-but-forged message is rejected
// by the same vote::ReceiveResult::kBadSignature accounting the simulator's
// fault plane uses.
#pragma once

#include <cstdint>
#include <vector>

#include "moderation/moderation.hpp"
#include "net/frame.hpp"
#include "vote/agent.hpp"
#include "vote/gossip.hpp"
#include "vote/ranking.hpp"

namespace tribvote::net {

// Hard per-message limits (PROTOCOL.md §4). Generous against every config
// the repo ships (max_votes_per_message defaults to 50) while bounding what
// a malicious peer can make a node allocate.
inline constexpr std::size_t kMaxVoteEntries = 4096;
inline constexpr std::size_t kMaxDigestEntries = 4096;
inline constexpr std::size_t kMaxDeltaIndices = 4096;
inline constexpr std::size_t kMaxTopK = 64;
inline constexpr std::size_t kMaxModItems = 1024;
inline constexpr std::size_t kMaxDescriptionBytes = 4096;
inline constexpr std::size_t kMaxPeerDescriptors = 64;

// ENC_BEGIN encounter kinds (PROTOCOL.md §4.2).
inline constexpr std::uint8_t kEncounterVote = 0;
inline constexpr std::uint8_t kEncounterModeration = 1;

struct HelloMessage {
  PeerId peer = kInvalidPeer;
  crypto::PublicKey key;
};

struct EncounterBegin {
  std::uint8_t kind = kEncounterVote;
  Time time = 0;
};

/// One Newscast view entry as it travels the wire (PROTOCOL.md §8): who the
/// peer is, where to dial it, and how fresh the owner's stamp is. Signed by
/// the *descriptor owner* over descriptor_digest(), so relayed entries
/// cannot be retargeted or aged in transit by the relay. (This binds
/// contents to the claimed key, not the key to an identity — Sybil
/// registration is out of scope, as in the paper.)
struct PeerDescriptor {
  PeerId peer = kInvalidPeer;
  crypto::PublicKey key;
  std::uint32_t ip = 0;       ///< IPv4, host byte order (0x7f000001 = lo)
  std::uint16_t port = 0;
  Time heartbeat = 0;         ///< owner's clock at signing (freshness rank)
  crypto::Signature signature;
};

/// PEER_EXCHANGE payload: the sender's current view slice plus whether it
/// expects the symmetric reply half of the Newscast shuffle.
struct PeerExchangeMessage {
  bool reply_requested = false;
  std::vector<PeerDescriptor> descriptors;
};

/// The 64-bit digest a descriptor's Schnorr signature covers: every field
/// except the signature itself.
[[nodiscard]] std::uint64_t descriptor_digest(const PeerDescriptor& d);

// ---- encoders (payload bytes only; framing in frame.hpp) -------------------

[[nodiscard]] std::vector<std::uint8_t> encode_hello(const HelloMessage& m);
[[nodiscard]] std::vector<std::uint8_t> encode_encounter_begin(
    const EncounterBegin& m);
[[nodiscard]] std::vector<std::uint8_t> encode_vote_full(
    const vote::VoteListMessage& m);
[[nodiscard]] std::vector<std::uint8_t> encode_vote_digest(
    const vote::VoteDigestMessage& m);
[[nodiscard]] std::vector<std::uint8_t> encode_delta_request(
    const std::vector<std::size_t>& missing);
[[nodiscard]] std::vector<std::uint8_t> encode_vote_delta(
    const vote::VoteDeltaMessage& m);
[[nodiscard]] std::vector<std::uint8_t> encode_vox_topk(
    const vote::RankedList& list);
[[nodiscard]] std::vector<std::uint8_t> encode_mod_batch(
    const std::vector<moderation::Moderation>& items);
[[nodiscard]] std::vector<std::uint8_t> encode_peer_exchange(
    const PeerExchangeMessage& m);

// ---- decoders (strict; false = malformed) ----------------------------------

[[nodiscard]] bool decode_hello(const std::vector<std::uint8_t>& p,
                                HelloMessage& out);
[[nodiscard]] bool decode_encounter_begin(const std::vector<std::uint8_t>& p,
                                          EncounterBegin& out);
[[nodiscard]] bool decode_vote_full(const std::vector<std::uint8_t>& p,
                                    vote::VoteListMessage& out);
[[nodiscard]] bool decode_vote_digest(const std::vector<std::uint8_t>& p,
                                      vote::VoteDigestMessage& out);
/// Indices must be strictly increasing (PROTOCOL.md §4.6); the upper bound
/// against the pending full message is the engine's to check.
[[nodiscard]] bool decode_delta_request(const std::vector<std::uint8_t>& p,
                                        std::vector<std::size_t>& out);
[[nodiscard]] bool decode_vote_delta(const std::vector<std::uint8_t>& p,
                                     vote::VoteDeltaMessage& out);
[[nodiscard]] bool decode_vox_topk(const std::vector<std::uint8_t>& p,
                                   vote::RankedList& out);
[[nodiscard]] bool decode_mod_batch(const std::vector<std::uint8_t>& p,
                                    std::vector<moderation::Moderation>& out);
/// Syntactic only — signature verification of each descriptor is the
/// receiver's (NodeService), item-wise like mod-batch items.
[[nodiscard]] bool decode_peer_exchange(const std::vector<std::uint8_t>& p,
                                        PeerExchangeMessage& out);

/// Digest folding every layout-determining constant of the wire format:
/// version, header size, type codes, record sizes and message limits. A
/// codec change moves this value; PROTOCOL.md embeds it in a machine-
/// readable line and tests/net_codec_test.cpp compares the two — the
/// doc-freshness gate that keeps spec and implementation in lockstep.
[[nodiscard]] std::uint64_t codec_abi_digest();

}  // namespace tribvote::net
