#include "attack/colluder.hpp"

#include <cassert>

namespace tribvote::attack {

ColluderVoteAgent::ColluderVoteAgent(PeerId self,
                                     const crypto::KeyPair& keys,
                                     vote::VoteConfig config,
                                     ExperienceCb experienced, util::Rng rng,
                                     ColluderPlan plan)
    : vote::VoteAgent(self, keys, config, std::move(experienced), rng),
      plan_(std::move(plan)) {
  assert(plan_.spam_moderator != kInvalidModerator);
}

vote::VoteListMessage ColluderVoteAgent::outgoing_votes(Time now) {
  // Keep the colluder's "ballot paper" scripted: +M0, -victim. Casting on
  // every call refreshes timestamps, making the lies look recent.
  votes_.cast(plan_.spam_moderator, Opinion::kPositive, now);
  if (plan_.victim_moderator != kInvalidModerator) {
    votes_.cast(plan_.victim_moderator, Opinion::kNegative, now);
  }
  return vote::VoteAgent::outgoing_votes(now);
}

vote::RankedList ColluderVoteAgent::answer_topk() {
  vote::RankedList lie;
  lie.push_back(plan_.spam_moderator);
  for (const ModeratorId decoy : plan_.decoys) {
    if (lie.size() >= config_.k) break;
    if (decoy != plan_.spam_moderator) lie.push_back(decoy);
  }
  return lie;
}

}  // namespace tribvote::attack
