// Flash-crowd / Sybil colluder (paper §VI-C).
//
// A colluder is a cheap new identity whose goal is to push a spam moderator
// M0 to the top of other nodes' rankings. It subverts exactly what a
// malicious client controls — its own outgoing messages:
//
//   * vote-list messages always promote M0 (and optionally demote a victim
//     moderator), regardless of what the colluder "really" saw;
//   * VoxPopuli requests are always answered, B_min or not, with a
//     fabricated top-K list headed by M0.
//
// It cannot subvert other nodes' acceptance logic: honest nodes still apply
// the experience function to its vote lists (which is why the BallotBox
// tier resists the attack) but accept its top-K lies during bootstrap
// (which is why VoxPopuli is the vulnerable window).
#pragma once

#include <vector>

#include "vote/agent.hpp"

namespace tribvote::attack {

struct ColluderPlan {
  ModeratorId spam_moderator = kInvalidModerator;  ///< M0 to promote
  /// Optional honest moderator to demote with negative votes
  /// (kInvalidModerator = none).
  ModeratorId victim_moderator = kInvalidModerator;
  /// Decoy moderators appended after M0 in fabricated top-K lists so the
  /// lists look plausible (typically the honest moderators).
  std::vector<ModeratorId> decoys;
};

class ColluderVoteAgent final : public vote::VoteAgent {
 public:
  ColluderVoteAgent(PeerId self, const crypto::KeyPair& keys,
                    vote::VoteConfig config, ExperienceCb experienced,
                    util::Rng rng, ColluderPlan plan);

  /// Always votes +M0 (and -victim when configured), correctly signed with
  /// the colluder's own key — the signature scheme cannot stop lies about
  /// one's own opinion, only forgery of others'.
  [[nodiscard]] vote::VoteListMessage outgoing_votes(Time now) override;

  /// Always responds, with M0 ranked first.
  [[nodiscard]] vote::RankedList answer_topk() override;

  [[nodiscard]] const ColluderPlan& plan() const noexcept { return plan_; }

 private:
  ColluderPlan plan_;
};

}  // namespace tribvote::attack
