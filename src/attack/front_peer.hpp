// Fake-experience (front-peer / mole) collusion against BarterCast
// (paper §VII).
//
// A clique of colluders reports enormous fabricated transfers among its own
// members, attempting to make each other look "experienced". Against a
// naive contribution metric (sum of claimed upload) this works perfectly;
// against the hop-bounded max-flow metric the fabricated internal edges are
// throttled by the genuine capacity between the clique and the honest
// node's neighborhood — the property the abl_fake_experience bench
// quantifies.
#pragma once

#include <vector>

#include "bartercast/protocol.hpp"

namespace tribvote::attack {

class FrontPeerBarterAgent final : public bartercast::BarterAgent {
 public:
  /// `clique` are the colluding peer ids (including self); every gossip
  /// message claims `fake_mb` uploaded from self to each other clique
  /// member, alongside any genuine records.
  FrontPeerBarterAgent(PeerId self, bartercast::BarterConfig config,
                       std::vector<PeerId> clique, double fake_mb);

  [[nodiscard]] std::vector<bartercast::BarterRecord> outgoing_records(
      const bt::LedgerView& ledger, Time now) const override;

 private:
  std::vector<PeerId> clique_;
  double fake_mb_;
};

}  // namespace tribvote::attack
