#include "attack/front_peer.hpp"

namespace tribvote::attack {

FrontPeerBarterAgent::FrontPeerBarterAgent(PeerId self,
                                           bartercast::BarterConfig config,
                                           std::vector<PeerId> clique,
                                           double fake_mb)
    : bartercast::BarterAgent(self, config),
      clique_(std::move(clique)),
      fake_mb_(fake_mb) {}

std::vector<bartercast::BarterRecord> FrontPeerBarterAgent::outgoing_records(
    const bt::LedgerView& ledger, Time now) const {
  // Genuine records first (a mole behaves normally toward honest peers to
  // carry the fake flow outward)...
  std::vector<bartercast::BarterRecord> records =
      bartercast::BarterAgent::outgoing_records(ledger, now);
  // ...then the fabricated intra-clique uploads. They involve the sender,
  // so receivers cannot reject them on adjacency grounds.
  for (const PeerId other : clique_) {
    if (other == self_) continue;
    records.push_back(bartercast::BarterRecord{self_, other, fake_mb_, now});
    records.push_back(bartercast::BarterRecord{other, self_, fake_mb_, now});
  }
  return records;
}

}  // namespace tribvote::attack
