#include "sim/fault_plane.hpp"

#include <algorithm>
#include <cassert>
#include <cstdio>
#include <sstream>

#include "util/hash.hpp"

namespace tribvote::sim {

// ---- config ----------------------------------------------------------------

namespace {

bool set_error(std::string* error, const std::string& what) {
  if (error != nullptr) *error = what;
  return false;
}

}  // namespace

bool parse_fault_spec(const std::string& spec, FaultConfig& out,
                      std::string* error) {
  std::istringstream in(spec);
  std::string field;
  while (std::getline(in, field, ',')) {
    if (field.empty()) continue;
    const std::size_t eq = field.find('=');
    if (eq == std::string::npos) {
      return set_error(error, "expected key=value, got '" + field + "'");
    }
    const std::string key = field.substr(0, eq);
    const std::string value = field.substr(eq + 1);
    char* end = nullptr;
    const double v = std::strtod(value.c_str(), &end);
    if (end == value.c_str() || *end != '\0') {
      return set_error(error, "bad value for " + key + ": '" + value + "'");
    }
    auto probability = [&](double& slot) {
      if (v < 0.0 || v > 1.0) {
        return set_error(error, key + " must be in [0, 1]");
      }
      slot = v;
      return true;
    };
    if (key == "loss") {
      if (!probability(out.loss)) return false;
    } else if (key == "delay" || key == "delay_rate") {
      if (!probability(out.delay_rate)) return false;
    } else if (key == "crash" || key == "crash_rate") {
      if (!probability(out.crash_rate)) return false;
    } else if (key == "corrupt" || key == "corrupt_rate") {
      if (!probability(out.corrupt_rate)) return false;
    } else if (key == "max_delay") {
      if (v < 1.0) return set_error(error, "max_delay must be >= 1");
      out.max_delay = static_cast<Duration>(v);
    } else if (key == "retries") {
      if (v < 0.0) return set_error(error, "retries must be >= 0");
      out.vp_retry_budget = static_cast<std::size_t>(v);
    } else if (key == "retry_base") {
      if (v < 1.0) return set_error(error, "retry_base must be >= 1");
      out.vp_retry_base = static_cast<Duration>(v);
    } else if (key == "ge") {
      // Shorthand: tune the chain for a stationary loss rate of v, the
      // same solver as net::parse_impair_spec so A11/A12 sweep one axis.
      if (v < 0.0 || v >= 0.8) {
        return set_error(error, "ge must be in [0, 0.8)");
      }
      out.ge_loss_bad = 0.8;
      out.ge_loss_good = v / 10.0;
      out.ge_bad_to_good = 0.25;
      const double pi = 0.9 * v / (0.8 - 0.1 * v);
      out.ge_good_to_bad = out.ge_bad_to_good * pi / (1.0 - pi);
    } else if (key == "ge_p") {
      if (!probability(out.ge_good_to_bad)) return false;
    } else if (key == "ge_r") {
      if (!probability(out.ge_bad_to_good)) return false;
    } else if (key == "ge_loss_good") {
      if (!probability(out.ge_loss_good)) return false;
    } else if (key == "ge_loss_bad") {
      if (!probability(out.ge_loss_bad)) return false;
    } else if (key == "part_period") {
      if (v < 0.0) return set_error(error, "part_period must be >= 0");
      out.partition_period = static_cast<std::uint64_t>(v);
    } else if (key == "part_width") {
      if (v < 1.0) return set_error(error, "part_width must be >= 1");
      out.partition_width = static_cast<std::uint64_t>(v);
    } else if (key == "part_frac") {
      if (!probability(out.partition_frac)) return false;
    } else {
      return set_error(error, "unknown fault key '" + key + "'");
    }
  }
  return true;
}

std::string describe(const FaultConfig& config) {
  if (!config.enabled()) return "off";
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "loss=%g delay=%g/%llds crash=%g corrupt=%g retry=%zux%llds",
                config.loss, config.delay_rate,
                static_cast<long long>(config.max_delay), config.crash_rate,
                config.corrupt_rate, config.vp_retry_budget,
                static_cast<long long>(config.vp_retry_base));
  std::string out = buf;
  if (config.ge_good_to_bad > 0.0) {
    std::snprintf(buf, sizeof(buf), " ge=%g/%g(%g,%g)", config.ge_good_to_bad,
                  config.ge_bad_to_good, config.ge_loss_good,
                  config.ge_loss_bad);
    out += buf;
  }
  if (config.partition_period > 0 && config.partition_frac > 0.0) {
    std::snprintf(buf, sizeof(buf), " part=%llu/%llux%g",
                  static_cast<unsigned long long>(config.partition_period),
                  static_cast<unsigned long long>(config.partition_width),
                  config.partition_frac);
    out += buf;
  }
  return out;
}

// ---- counters --------------------------------------------------------------

FaultCounters& FaultCounters::operator+=(const FaultCounters& o) noexcept {
  encounters_hit += o.encounters_hit;
  dropped_requests += o.dropped_requests;
  dropped_replies += o.dropped_replies;
  delayed += o.delayed;
  late_drops += o.late_drops;
  crashes += o.crashes;
  unreachable += o.unreachable;
  corrupted += o.corrupted;
  rejected += o.rejected;
  one_sided += o.one_sided;
  timeouts += o.timeouts;
  retries += o.retries;
  retry_successes += o.retry_successes;
  reoffers += o.reoffers;
  partitioned += o.partitioned;
  ge_bad_encounters += o.ge_bad_encounters;
  return *this;
}

FaultCounters& FaultStats::of(Protocol p) noexcept {
  switch (p) {
    case Protocol::kVote: return vote;
    case Protocol::kVoxPopuli: return vox;
    case Protocol::kModeration: return moderation;
    case Protocol::kBarter: return barter;
    case Protocol::kNewscast: return newscast;
  }
  return vote;  // unreachable
}

const FaultCounters& FaultStats::of(Protocol p) const noexcept {
  return const_cast<FaultStats*>(this)->of(p);
}

FaultCounters FaultStats::total() const noexcept {
  FaultCounters sum;
  sum += vote;
  sum += vox;
  sum += moderation;
  sum += barter;
  sum += newscast;
  return sum;
}

FaultStats& FaultStats::operator+=(const FaultStats& o) noexcept {
  vote += o.vote;
  vox += o.vox;
  moderation += o.moderation;
  barter += o.barter;
  newscast += o.newscast;
  return *this;
}

// ---- plane -----------------------------------------------------------------

FaultPlane::FaultPlane(FaultConfig config, util::Rng stream,
                       std::size_t lanes)
    : config_(config), stream_(stream) {
  const std::size_t n = std::max<std::size_t>(1, lanes);
  lane_stats_.resize(n);
  lane_deferred_.resize(n);
  lane_vp_failures_.resize(n);
}

bool FaultPlane::partitioned(std::uint64_t round, PeerId node) const {
  if (config_.partition_period == 0 || config_.partition_frac <= 0.0) {
    return false;
  }
  // The first window opens one full period in, so cold-start rounds are
  // never dark (mirrors net::Impairment::offline).
  if (round < config_.partition_period) return false;
  if (round % config_.partition_period >= config_.partition_width) {
    return false;
  }
  const std::uint64_t window = round / config_.partition_period;
  constexpr std::uint64_t kPartitionStream = 0x70617274;  // "part"
  util::Rng r = stream_.derive(util::digest_fields(
      {kPartitionStream, window, static_cast<std::uint64_t>(node)}));
  return r.next_bool(config_.partition_frac);
}

util::Rng FaultPlane::encounter_stream(Protocol proto, std::uint64_t round,
                                       std::uint32_t seq) const {
  // Pure function of (plane seed, protocol, round, seq): the same triple
  // yields the same stream whatever the shard count or wall-clock
  // interleaving — the whole determinism argument rests on this line.
  return stream_.derive(util::digest_fields(
      {static_cast<std::uint64_t>(proto), round,
       static_cast<std::uint64_t>(seq)}));
}

const std::vector<EncounterFaults>& FaultPlane::draw_round(
    Protocol proto, const std::vector<Encounter>& encounters) {
  assert(enabled());
  current_proto_ = proto;
  current_round_ = round_counter_[static_cast<std::size_t>(proto)]++;
  table_.assign(encounters.size(), EncounterFaults{});
  crashed_round_.clear();
  crashed_set_.clear();
  FaultCounters& c = stats_.of(proto);

  auto is_crashed = [this](PeerId id) {
    return std::binary_search(crashed_set_.begin(), crashed_set_.end(), id);
  };

  const bool partitions_on =
      config_.partition_period > 0 && config_.partition_frac > 0.0;
  const bool ge_on = config_.ge_good_to_bad > 0.0;
  bool& ge_bad = ge_bad_[static_cast<std::size_t>(proto)];

  for (const Encounter& e : encounters) {
    assert(e.seq < table_.size());
    EncounterFaults& f = table_[e.seq];
    // A dark endpoint voids the encounter like a crash does: the dial
    // fails outright and the downstream unreachable handling applies.
    if (partitions_on && (partitioned(current_round_, e.initiator) ||
                          partitioned(current_round_, e.responder))) {
      f.unreachable = true;
      ++c.partitioned;
      ++c.unreachable;
      ++c.encounters_hit;
      continue;
    }
    if (!crashed_set_.empty() &&
        (is_crashed(e.initiator) || is_crashed(e.responder))) {
      f.unreachable = true;
      ++c.unreachable;
      ++c.encounters_hit;
      continue;
    }
    util::Rng r = encounter_stream(proto, current_round_, e.seq);
    double loss_p = config_.loss;
    if (ge_on) {
      // Advance the two-state chain once per encounter, in seq order —
      // this loop is serial, so the chain trajectory is shard-invariant.
      if (ge_bad) {
        if (r.next_bool(config_.ge_bad_to_good)) ge_bad = false;
      } else {
        if (r.next_bool(config_.ge_good_to_bad)) ge_bad = true;
      }
      if (ge_bad) ++c.ge_bad_encounters;
      loss_p = ge_bad ? config_.ge_loss_bad : config_.ge_loss_good;
    }
    f.drop_request = r.next_bool(loss_p);
    f.drop_reply = r.next_bool(loss_p);
    f.crash_responder = r.next_bool(config_.crash_rate);
    const bool delay_drawn = r.next_bool(config_.delay_rate);
    f.request_payload = r.next_bool(config_.corrupt_rate)
                            ? (r.next_bool(0.5) ? PayloadFault::kCorrupted
                                                : PayloadFault::kTruncated)
                            : PayloadFault::kNone;
    f.reply_payload = r.next_bool(config_.corrupt_rate)
                          ? (r.next_bool(0.5) ? PayloadFault::kCorrupted
                                              : PayloadFault::kTruncated)
                          : PayloadFault::kNone;
    f.payload_salt = r();

    // Normalize to a consistent story. A lost request voids everything
    // downstream of it: the responder never saw the dial, so it neither
    // replies nor crashes because of it. A crash voids the reply.
    if (f.drop_request) {
      f.drop_reply = false;
      f.crash_responder = false;
      f.request_payload = PayloadFault::kNone;
      f.reply_payload = PayloadFault::kNone;
    } else if (f.crash_responder) {
      f.drop_reply = false;
      f.reply_payload = PayloadFault::kNone;
    }
    if (f.reply_lost()) {
      f.delay_reply = 0;
    } else if (delay_drawn && !f.drop_request) {
      f.delay_reply = 1 + static_cast<Duration>(r.next_below(
                              static_cast<std::uint64_t>(config_.max_delay)));
    }

    if (f.crash_responder) {
      crashed_round_.push_back(e.responder);
      const auto pos = std::lower_bound(crashed_set_.begin(),
                                        crashed_set_.end(), e.responder);
      crashed_set_.insert(pos, e.responder);
      ++c.crashes;
    }
    if (f.drop_request) ++c.dropped_requests;
    if (f.drop_reply) ++c.dropped_replies;
    if (f.delay_reply != 0) ++c.delayed;
    c.corrupted +=
        static_cast<std::uint64_t>(f.request_payload != PayloadFault::kNone) +
        static_cast<std::uint64_t>(f.reply_payload != PayloadFault::kNone);
    if (f.reply_lost()) ++c.one_sided;
    if (f.any()) ++c.encounters_hit;
  }
  return table_;
}

void FaultPlane::defer(std::size_t lane, std::uint32_t seq, Duration delay,
                       std::function<void()> deliver) {
  lane_deferred_[lane].push_back(
      DeferredDelivery{seq, delay, std::move(deliver)});
}

void FaultPlane::record_vp_failure(std::size_t lane, std::uint32_t seq,
                                   PeerId initiator) {
  // The retry chain's stream is keyed like the encounter's own stream but
  // tagged as a retry, so a retry never replays the draws that failed the
  // original encounter.
  constexpr std::uint64_t kRetryTag = 0x7265747279;  // "retry"
  util::Rng rng = stream_.derive(util::digest_fields(
      {kRetryTag, static_cast<std::uint64_t>(current_proto_), current_round_,
       static_cast<std::uint64_t>(seq)}));
  lane_vp_failures_[lane].push_back(VpFailure{seq, initiator, rng});
}

RoundOutcome FaultPlane::finish_round() {
  RoundOutcome out;
  for (std::size_t lane = 0; lane < lane_stats_.size(); ++lane) {
    stats_ += lane_stats_[lane];
    lane_stats_[lane] = FaultStats{};
    auto& deferred = lane_deferred_[lane];
    out.deferred.insert(out.deferred.end(),
                        std::make_move_iterator(deferred.begin()),
                        std::make_move_iterator(deferred.end()));
    deferred.clear();
    auto& failures = lane_vp_failures_[lane];
    out.vp_failures.insert(out.vp_failures.end(), failures.begin(),
                           failures.end());
    failures.clear();
  }
  // Seq order. Stable: a single encounter can defer two messages (ballot
  // reply + top-K answer) and they must land in the order it sent them;
  // both live in the same lane buffer, so stable_sort preserves it.
  std::stable_sort(out.deferred.begin(), out.deferred.end(),
                   [](const DeferredDelivery& a, const DeferredDelivery& b) {
                     return a.seq < b.seq;
                   });
  std::stable_sort(out.vp_failures.begin(), out.vp_failures.end(),
                   [](const VpFailure& a, const VpFailure& b) {
                     return a.seq < b.seq;
                   });
  out.crashed = std::move(crashed_round_);
  crashed_round_.clear();
  return out;
}

}  // namespace tribvote::sim
