// Deterministic sharded round kernel (ROADMAP "Sharded populations").
//
// Gossip-style vote-sampling protocols are round-synchronous per *node*, not
// globally: within one protocol round every encounter touches exactly its two
// endpoint nodes (plus read-only shared state), so the population can be
// sharded across worker threads without changing protocol semantics — as
// long as each node's encounters are applied in the same relative order the
// serial runner would apply them.
//
// The kernel guarantees exactly that, for any shard count:
//
//   1. The caller performs the *pairing* phase serially (it consumes the
//      global scenario RNG and the PSS, whose draw order must not depend on
//      the shard count) and hands the kernel the round's encounter list,
//      tagged with ascending sequence numbers.
//   2. The kernel assigns each encounter to a *level*:
//      level(e) = 1 + max(level of the latest earlier encounter sharing an
//      endpoint with e). Within a level no node appears twice, so the
//      encounters of one level touch pairwise-disjoint node sets and commute.
//      Across levels, each node's encounters execute in sequence order — the
//      serial order.
//   3. Each level executes in two barrier-delimited phases over a fixed
//      worker pool (one lane per shard; nodes map to shards by id % shards):
//        phase A — lane s executes its shard-local encounters (both
//          endpoints in s) in sequence order, and posts every cross-shard
//          encounter it initiates into the responder shard's mailbox;
//        phase B — lane s drains its mailbox in (sender shard, sequence)
//          order and executes those encounters, touching the remote
//          initiator safely because the level is an independent set.
//      The barrier between A and B publishes the mailboxes; the barrier
//      after B closes the level.
//
// Result: for a fixed pairing, the per-node operation order — and therefore
// every byte of simulation output — is invariant under the shard count,
// including shards = 1, which executes the encounter list inline with no
// pool at all (today's serial runner, verbatim). See DESIGN.md §8.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "telemetry/telemetry.hpp"
#include "util/ids.hpp"
#include "util/thread_pool.hpp"

namespace tribvote::sim {

/// One pairwise protocol encounter of a round, produced by the serial
/// pairing phase. `seq` numbers are ascending within a round.
struct Encounter {
  std::uint32_t seq = 0;
  PeerId initiator = kInvalidPeer;
  PeerId responder = kInvalidPeer;
};

/// Observability counters (tests and benches).
struct ShardKernelStats {
  std::uint64_t rounds = 0;       ///< run_round calls
  std::uint64_t levels = 0;       ///< barrier-delimited levels executed
  std::uint64_t local = 0;        ///< encounters executed shard-locally
  std::uint64_t mailed = 0;       ///< encounters routed through a mailbox
};

class ShardKernel {
 public:
  /// `population` bounds node ids; `shards` >= 1. `pool` carries the worker
  /// lanes when shards > 1; pass nullptr to execute every lane on the
  /// calling thread (identical results — useful under heavy replica
  /// parallelism and in tests).
  ShardKernel(std::size_t population, std::size_t shards,
              util::ThreadPool* pool);

  [[nodiscard]] std::size_t shards() const noexcept { return shards_; }
  [[nodiscard]] std::size_t shard_of(PeerId id) const noexcept {
    return id % shards_;
  }

  /// Attach a telemetry plane (nullptr detaches). The kernel then records
  /// "kernel.round" / "kernel.phaseA" / "kernel.phaseB" spans when tracing,
  /// and maintains telemetry::current_lane() around its phase tasks so
  /// lane-local counter writes inside exchange bodies land in the right
  /// registry block.
  void set_telemetry(telemetry::Telemetry* telemetry) noexcept {
    telemetry_ = telemetry;
  }

  /// Execute one encounter per list entry. `exchange(e, lane)` may mutate
  /// the two endpoint nodes and anything owned by `lane` (lanes are in
  /// [0, shards) and never run concurrently with themselves); it must treat
  /// all other state as read-only. Encounters must carry ascending seq.
  using ExchangeFn = std::function<void(const Encounter&, std::size_t lane)>;
  void run_round(const std::vector<Encounter>& encounters,
                 const ExchangeFn& exchange);

  /// Run a node-local task over the whole population, partitioned by shard
  /// (each lane walks its own ids in ascending order). `fn` must touch only
  /// the given node plus lane-owned state; results are shard-count
  /// invariant whenever `fn` is order-independent across nodes.
  using NodeFn = std::function<void(PeerId, std::size_t lane)>;
  void for_each_node(const NodeFn& fn);

  [[nodiscard]] const ShardKernelStats& stats() const noexcept {
    return stats_;
  }

  /// Encounters still sitting in cross-shard mailboxes. Zero outside
  /// run_round: phase B drains and clears every inbox before the round
  /// returns, even when an exchange body declines to act (e.g. a fault
  /// plane marking an endpoint unreachable). Tests assert on this.
  [[nodiscard]] std::size_t pending_mail() const noexcept {
    std::size_t n = 0;
    for (const auto& row : mail_) {
      for (const auto& box : row) n += box.size();
    }
    return n;
  }

 private:
  std::size_t population_;
  std::size_t shards_;
  util::ThreadPool* pool_;
  telemetry::Telemetry* telemetry_ = nullptr;

  /// Invoke `task(s)` for every lane s, then barrier. Runs inline when no
  /// pool is attached.
  void parallel_lanes(const std::function<void(std::size_t)>& task);

  // Scratch reused across rounds (single-threaded access: the simulator
  // calls run_round from one thread).
  std::vector<std::uint32_t> next_level_;        // node -> next free level
  std::vector<std::vector<Encounter>> levels_;
  std::vector<std::vector<std::vector<Encounter>>> mail_;  // [sender][dest]
  ShardKernelStats stats_;
};

}  // namespace tribvote::sim
