// Pending-event set for the discrete-event kernel.
//
// A binary heap keyed on (time, sequence) gives deterministic FIFO ordering
// among simultaneous events — essential for reproducible runs. Cancellation
// is lazy: cancelled events stay in the heap, marked dead, and are skipped
// on pop (O(1) cancel, no heap surgery).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "util/time.hpp"

namespace tribvote::sim {

/// Handle to a scheduled event; lets the owner cancel it before it fires.
/// Copyable; all copies refer to the same pending event.
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Idempotent; safe on a
  /// default-constructed handle.
  void cancel() noexcept {
    if (alive_) *alive_ = false;
  }

  /// True while the event is still pending (scheduled and not cancelled).
  [[nodiscard]] bool pending() const noexcept { return alive_ && *alive_; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> alive)
      : alive_(std::move(alive)) {}
  std::shared_ptr<bool> alive_;
};

/// Min-heap of timed callbacks with stable ordering and lazy cancellation.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `at`. Times may equal the current time;
  /// ordering among equal times is insertion order.
  EventHandle schedule(Time at, Callback cb);

  /// True when no live events remain (dead events are purged as seen).
  [[nodiscard]] bool empty() const noexcept;

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] Time next_time() const;

  /// Remove and return the earliest live callback plus its time.
  /// Precondition: !empty().
  std::pair<Time, Callback> pop();

  /// Number of events in the heap, including not-yet-purged dead ones.
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    std::shared_ptr<bool> alive;
    Callback cb;
    // Min-heap via std::priority_queue (max-heap) with reversed comparison.
    [[nodiscard]] bool operator<(const Entry& other) const noexcept {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  /// Drop dead entries from the top of the heap.
  void purge() const;

  mutable std::priority_queue<Entry> heap_;
  std::uint64_t next_seq_ = 0;
};

}  // namespace tribvote::sim
