// Pending-event set for the discrete-event kernel.
//
// A binary heap keyed on (time, sequence) gives deterministic FIFO ordering
// among simultaneous events — essential for reproducible runs. Cancellation
// is lazy: a cancelled event stays in the heap, marked dead, and is skipped
// on pop (O(1) cancel, no heap surgery). To keep lazy cancellation from
// growing the heap without bound (schedule/cancel cycles that never pop,
// e.g. periodic tasks being restarted), the queue tracks how many dead
// entries are pending and compacts the heap — one erase_if + make_heap —
// once dead entries outnumber live ones. Compaction costs O(n) and removes
// >= n/2 entries, so its amortized cost per schedule() is O(1) and heap
// memory stays proportional to the number of *live* events.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "util/time.hpp"

namespace tribvote::sim {

/// Handle to a scheduled event; lets the owner cancel it before it fires.
/// Copyable; all copies refer to the same pending event. Handles may
/// outlive the queue (the shared flag and counter keep their storage).
class EventHandle {
 public:
  EventHandle() = default;

  /// Cancel the event if it has not fired yet. Idempotent; safe on a
  /// default-constructed handle and after the event fired.
  void cancel() noexcept {
    if (alive_ && *alive_) {
      *alive_ = false;
      if (dead_pending_) ++*dead_pending_;
    }
  }

  /// True while the event is still pending (scheduled, not cancelled, and
  /// not yet fired).
  [[nodiscard]] bool pending() const noexcept { return alive_ && *alive_; }

 private:
  friend class EventQueue;
  EventHandle(std::shared_ptr<bool> alive,
              std::shared_ptr<std::uint64_t> dead_pending)
      : alive_(std::move(alive)), dead_pending_(std::move(dead_pending)) {}
  std::shared_ptr<bool> alive_;
  /// The owning queue's count of cancelled-but-unpurged entries.
  std::shared_ptr<std::uint64_t> dead_pending_;
};

/// Min-heap of timed callbacks with stable ordering, lazy cancellation and
/// dead-entry compaction.
class EventQueue {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `at`. Times may equal the current time;
  /// ordering among equal times is insertion order.
  EventHandle schedule(Time at, Callback cb);

  /// True when no live events remain (dead events are purged as seen).
  [[nodiscard]] bool empty() const noexcept;

  /// Time of the earliest live event. Precondition: !empty().
  [[nodiscard]] Time next_time() const;

  /// Remove and return the earliest live callback plus its time.
  /// Precondition: !empty().
  std::pair<Time, Callback> pop();

  /// Number of events in the heap, including not-yet-purged dead ones.
  [[nodiscard]] std::size_t size() const noexcept { return heap_.size(); }

  /// Compaction passes performed so far (regression-test observability).
  [[nodiscard]] std::uint64_t compactions() const noexcept {
    return compactions_;
  }

 private:
  struct Entry {
    Time at;
    std::uint64_t seq;
    std::shared_ptr<bool> alive;
    Callback cb;
    // Min-heap via the std heap algorithms (max-heap on operator<) with
    // reversed comparison.
    [[nodiscard]] bool operator<(const Entry& other) const noexcept {
      if (at != other.at) return at > other.at;
      return seq > other.seq;
    }
  };

  /// Heap size below which compaction is never attempted (not worth it).
  static constexpr std::size_t kCompactMinSize = 64;

  /// Drop dead entries from the top of the heap.
  void purge() const;
  /// Sweep every dead entry out of the heap once they dominate it.
  void compact_if_needed();

  mutable std::vector<Entry> heap_;
  /// Cancelled entries still in the heap. Shared with handles (which may
  /// outlive the queue); purge/compact decrement it as dead entries leave.
  std::shared_ptr<std::uint64_t> dead_pending_ =
      std::make_shared<std::uint64_t>(0);
  std::uint64_t next_seq_ = 0;
  std::uint64_t compactions_ = 0;
};

}  // namespace tribvote::sim
