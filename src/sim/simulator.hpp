// Single-threaded deterministic discrete-event simulator.
//
// All protocol logic in this repository executes inside simulator callbacks;
// the kernel owns the clock and the pending-event set. One Simulator per
// replica; replicas run concurrently on separate threads with no shared
// mutable state.
#pragma once

#include <cassert>
#include <functional>

#include "sim/event_queue.hpp"
#include "util/time.hpp"

namespace tribvote::sim {

class Simulator {
 public:
  /// Current simulated time.
  [[nodiscard]] Time now() const noexcept { return now_; }

  /// Schedule `cb` to run `delay` seconds from now (delay >= 0).
  EventHandle schedule_in(Duration delay, EventQueue::Callback cb) {
    assert(delay >= 0);
    return queue_.schedule(now_ + delay, std::move(cb));
  }

  /// Schedule `cb` at absolute time `at` (at >= now()).
  EventHandle schedule_at(Time at, EventQueue::Callback cb) {
    assert(at >= now_);
    return queue_.schedule(at, std::move(cb));
  }

  /// Run events until the queue is empty or the clock would pass `until`.
  /// Events scheduled exactly at `until` are executed. After returning, the
  /// clock reads `until` (or the last event time if the queue drained and was
  /// already past `until`).
  void run_until(Time until);

  /// Run a single event if one is pending. Returns false when the queue is
  /// empty.
  bool step();

  /// Number of callbacks executed so far (for perf accounting in benches).
  [[nodiscard]] std::uint64_t events_executed() const noexcept {
    return executed_;
  }

  /// Pending events (including lazily-cancelled ones awaiting purge).
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }

 private:
  EventQueue queue_;
  Time now_ = 0;
  std::uint64_t executed_ = 0;
};

/// Self-rescheduling periodic task. Fires `fn` every `period` seconds,
/// starting `phase` seconds after `start()`. `stop()` cancels cleanly.
/// Non-copyable; typically owned by the protocol object it drives.
class PeriodicTask {
 public:
  PeriodicTask(Simulator& sim, Duration period, std::function<void()> fn)
      : sim_(&sim), period_(period), fn_(std::move(fn)) {
    assert(period > 0);
  }

  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;
  ~PeriodicTask() { stop(); }

  /// Begin firing; first execution after `phase` seconds (default: one full
  /// period). Restarting an already-running task reschedules it.
  void start(Duration phase = -1) {
    stop();
    running_ = true;
    arm(phase >= 0 ? phase : period_);
  }

  void stop() noexcept {
    running_ = false;
    handle_.cancel();
  }

  [[nodiscard]] bool running() const noexcept { return running_; }

 private:
  void arm(Duration delay) {
    handle_ = sim_->schedule_in(delay, [this] {
      if (!running_) return;
      fn_();
      if (running_) arm(period_);  // fn_ may have called stop()
    });
  }

  Simulator* sim_;
  Duration period_;
  std::function<void()> fn_;
  EventHandle handle_;
  bool running_ = false;
};

}  // namespace tribvote::sim
