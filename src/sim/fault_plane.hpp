// Deterministic network fault plane (DESIGN.md "Fault model").
//
// Sits between the serial pairing phase and the sharded exchange execution
// of every gossip protocol round. For each encounter the plane pre-draws a
// complete fault verdict — message loss, bounded delivery delay, a
// mid-encounter responder crash, payload truncation/corruption — from an
// RNG stream that is a pure function of (scenario seed, protocol, round,
// encounter seq). The draw happens *serially*, before any worker lane runs,
// so:
//
//   * the verdict table is immutable while lanes execute (no RNG and no
//     shared mutable state inside exchange bodies — the PR 2 shard-count
//     invariance argument extends to faulty runs unchanged);
//   * crash propagation within a round (a peer that crashed at seq k is
//     unreachable for every later encounter touching it) is computed in
//     one deterministic pass.
//
// Lanes report execution-dependent outcomes (receiver-side rejections,
// VoxPopuli timeouts, deferred deliveries) into per-lane buffers; after the
// round's barriers the runner calls finish_round(), which merges the
// buffers in encounter-seq order and returns everything that must be
// applied serially: delayed deliveries to schedule on the event queue,
// crashed peers to take offline, and failed VoxPopuli requests to retry
// with exponential backoff.
//
// With every probability at zero the plane is inert: enabled() is false,
// draw_round is never consulted, and no code path draws an extra random
// number — runs are byte-identical to a build without the plane.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "sim/shard_kernel.hpp"
#include "util/ids.hpp"
#include "util/rng.hpp"
#include "util/time.hpp"

namespace tribvote::sim {

/// Transport-fault knobs (ScenarioConfig::faults / TRIBVOTE_FAULTS).
struct FaultConfig {
  /// Per-message drop probability, applied independently to the request
  /// and the reply leg of an encounter.
  double loss = 0.0;
  /// Probability that a (non-lost) reply is delayed instead of landing
  /// within the encounter.
  double delay_rate = 0.0;
  /// Delay bound in simulated seconds; a delayed reply lands uniformly in
  /// [1, max_delay] ticks via the event queue.
  Duration max_delay = 30;
  /// Probability the responder goes offline between request and reply
  /// (it processes the request, the reply is lost, and the peer leaves
  /// the online set through the regular peer_offline path).
  double crash_rate = 0.0;
  /// Per-message probability of payload truncation or corruption.
  double corrupt_rate = 0.0;
  /// VoxPopuli hardening: retry budget per failed top-K request and the
  /// base backoff (attempt n fires after vp_retry_base * 2^(n-1) s).
  std::size_t vp_retry_budget = 4;
  Duration vp_retry_base = 15;

  /// Gilbert–Elliott bursty loss, mirroring net::Impairment (DESIGN.md
  /// §16) so A11 and A12 sweep the same correlated-loss axis. When
  /// ge_good_to_bad > 0 the chain is on: it advances once per encounter
  /// (in seq order, during the serial draw) and the per-leg drop
  /// probability follows the chain state instead of the i.i.d. `loss`.
  /// The `ge=L` spec shorthand tunes the chain so the stationary loss
  /// rate equals L (same solver as the net plane).
  double ge_good_to_bad = 0.0;  ///< P(good -> bad) per encounter
  double ge_bad_to_good = 0.25; ///< P(bad -> good) per encounter
  double ge_loss_good = 0.0;    ///< per-leg loss in the good state
  double ge_loss_bad = 0.8;     ///< per-leg loss in the bad state

  /// Scheduled partitions: every partition_period protocol rounds a
  /// window of partition_width rounds opens; inside it each node is
  /// unreachable with probability partition_frac, keyed (plane seed,
  /// window index, node id) — a pure function, so protocols whose gossip
  /// periods coincide (vote/moderation/newscast at the default 60 s)
  /// see the same nodes dark. 0 period = no partitions.
  std::uint64_t partition_period = 0;
  std::uint64_t partition_width = 1;
  double partition_frac = 0.0;

  [[nodiscard]] bool enabled() const noexcept {
    return loss > 0.0 || delay_rate > 0.0 || crash_rate > 0.0 ||
           corrupt_rate > 0.0 || ge_good_to_bad > 0.0 ||
           (partition_period > 0 && partition_frac > 0.0);
  }
};

/// Parse a "loss=0.3,delay=0.1,max_delay=120,crash=0.01,corrupt=0.05,
/// retries=4,retry_base=15" spec into `out` (starting from defaults).
/// Returns false and fills *error (if given) on an unknown key or an
/// out-of-range value.
[[nodiscard]] bool parse_fault_spec(const std::string& spec, FaultConfig& out,
                                    std::string* error = nullptr);

/// One-line human-readable form for banners ("off" when disabled).
[[nodiscard]] std::string describe(const FaultConfig& config);

/// What happens to a message body in flight.
enum class PayloadFault : std::uint8_t {
  kNone,
  kTruncated,  ///< partial payload arrives (tail of the batch lost)
  kCorrupted,  ///< bit damage: a Schnorr signature no longer verifies
};

/// The pre-drawn fault verdict for one encounter. All-false (the default)
/// means the encounter executes exactly as in a fault-free run.
struct EncounterFaults {
  /// An endpoint crashed at a lower seq this round; the dial fails
  /// outright and nothing else applies.
  bool unreachable = false;
  /// The initiator's request is lost; the responder never learns of the
  /// encounter (implies no reply, no crash, no payload faults).
  bool drop_request = false;
  /// The responder's reply is lost after it processed the request.
  bool drop_reply = false;
  /// The responder processes the request, then goes offline; the reply is
  /// lost and the peer leaves the online set after the round.
  bool crash_responder = false;
  /// Non-zero: the reply lands this many ticks later via the event queue.
  Duration delay_reply = 0;
  PayloadFault request_payload = PayloadFault::kNone;
  PayloadFault reply_payload = PayloadFault::kNone;
  /// Deterministic per-encounter salt for corruption helpers (which bit
  /// to flip, which item of a batch to damage).
  std::uint64_t payload_salt = 0;

  /// The initiator hears nothing back (crash or reply loss).
  [[nodiscard]] bool reply_lost() const noexcept {
    return drop_reply || crash_responder;
  }
  [[nodiscard]] bool any() const noexcept {
    return unreachable || drop_request || drop_reply || crash_responder ||
           delay_reply != 0 || request_payload != PayloadFault::kNone ||
           reply_payload != PayloadFault::kNone;
  }
};

/// Degradation counters, tracked per protocol (CSV columns of
/// bench/abl_fault_sweep and assertions in the fault tests).
struct FaultCounters {
  std::uint64_t encounters_hit = 0;    ///< encounters with >= 1 fault drawn
  std::uint64_t dropped_requests = 0;  ///< request legs lost in flight
  std::uint64_t dropped_replies = 0;   ///< reply legs lost in flight
  std::uint64_t delayed = 0;           ///< replies routed via the queue
  std::uint64_t late_drops = 0;  ///< delayed replies to a peer gone offline
  std::uint64_t crashes = 0;     ///< mid-encounter responder crashes
  std::uint64_t unreachable = 0;  ///< encounters voided by an earlier crash
  std::uint64_t corrupted = 0;    ///< payloads truncated/corrupted in flight
  std::uint64_t rejected = 0;     ///< damaged items rejected by the receiver
  std::uint64_t one_sided = 0;    ///< exchanges completing half-duplex
  std::uint64_t timeouts = 0;     ///< requests that got no answer in time
  std::uint64_t retries = 0;      ///< retry attempts issued (VoxPopuli)
  std::uint64_t retry_successes = 0;  ///< retries that produced an answer
  std::uint64_t reoffers = 0;  ///< moderation items queued for re-offer
  std::uint64_t partitioned = 0;  ///< encounters voided by a partition window
  std::uint64_t ge_bad_encounters = 0;  ///< encounters drawn in the GE bad state

  FaultCounters& operator+=(const FaultCounters& o) noexcept;
};

/// Protocols the plane arbitrates; each keeps its own round counter so the
/// per-encounter streams never collide across protocols.
enum class Protocol : std::uint8_t {
  kVote = 0,
  kVoxPopuli,
  kModeration,
  kBarter,
  kNewscast,
};
inline constexpr std::size_t kProtocolCount = 5;

struct FaultStats {
  FaultCounters vote;
  FaultCounters vox;
  FaultCounters moderation;
  FaultCounters barter;
  FaultCounters newscast;

  [[nodiscard]] FaultCounters& of(Protocol p) noexcept;
  [[nodiscard]] const FaultCounters& of(Protocol p) const noexcept;
  /// Sum over every protocol (headline degradation numbers).
  [[nodiscard]] FaultCounters total() const noexcept;
  FaultStats& operator+=(const FaultStats& o) noexcept;
};

/// A reply held in flight: the runner schedules `deliver` on the simulator
/// `delay` ticks after the round.
struct DeferredDelivery {
  std::uint32_t seq = 0;
  Duration delay = 0;
  std::function<void()> deliver;
};

/// A failed VoxPopuli top-K request; the runner schedules a backoff retry
/// driven by `retry_rng` (a pure function of (seed, round, seq), so the
/// retry chain is as deterministic as the encounter that spawned it).
struct VpFailure {
  std::uint32_t seq = 0;
  PeerId initiator = kInvalidPeer;
  util::Rng retry_rng;
};

/// Everything a round leaves behind for serial post-round application, in
/// encounter-seq order.
struct RoundOutcome {
  std::vector<DeferredDelivery> deferred;
  std::vector<PeerId> crashed;
  std::vector<VpFailure> vp_failures;
};

class FaultPlane {
 public:
  /// `stream` is the dedicated fault RNG (derive it from the scenario
  /// seed); `lanes` matches the shard kernel's lane count.
  FaultPlane(FaultConfig config, util::Rng stream, std::size_t lanes);

  [[nodiscard]] bool enabled() const noexcept { return config_.enabled(); }
  [[nodiscard]] const FaultConfig& config() const noexcept { return config_; }

  /// Serial (pairing phase): draw the fault table for this round, indexed
  /// by encounter seq. Advances the protocol's round counter. The returned
  /// reference is valid until the next draw_round call; the table is
  /// read-only while lanes execute.
  const std::vector<EncounterFaults>& draw_round(
      Protocol proto, const std::vector<Encounter>& encounters);

  // ---- lane-safe recorders (callable from exchange bodies) -----------------

  /// This lane's counter block (merged into stats() by finish_round).
  [[nodiscard]] FaultStats& lane_stats(std::size_t lane) noexcept {
    return lane_stats_[lane];
  }
  /// Hold a reply in flight; delivered (in seq order) after the round.
  void defer(std::size_t lane, std::uint32_t seq, Duration delay,
             std::function<void()> deliver);
  /// Record a VoxPopuli top-K request that got no answer.
  void record_vp_failure(std::size_t lane, std::uint32_t seq,
                         PeerId initiator);

  // ---- serial post-round ---------------------------------------------------

  /// Merge lane buffers/counters and hand back the round's deferred
  /// deliveries, crashes and VP failures, each sorted by encounter seq
  /// (ties keep lane insertion order, which is per-encounter order — the
  /// whole outcome is therefore shard-count invariant).
  [[nodiscard]] RoundOutcome finish_round();

  /// Counter block for code running serially on the simulator thread
  /// (deferred deliveries, retry events, the Newscast loop).
  [[nodiscard]] FaultStats& serial_stats() noexcept { return stats_; }
  [[nodiscard]] const FaultStats& stats() const noexcept { return stats_; }

  /// Whether `node` is dark during protocol round `round` under the
  /// scheduled-partition schedule. Pure function of (plane seed, window
  /// index, node) — protocol deliberately absent from the key, so
  /// protocols sharing a gossip period see aligned partition windows.
  [[nodiscard]] bool partitioned(std::uint64_t round, PeerId node) const;

 private:
  [[nodiscard]] util::Rng encounter_stream(Protocol proto,
                                           std::uint64_t round,
                                           std::uint32_t seq) const;

  FaultConfig config_;
  util::Rng stream_;
  std::uint64_t round_counter_[kProtocolCount] = {};
  /// Gilbert–Elliott chain state, one chain per protocol; advanced
  /// serially in seq order inside draw_round (so shard-invariant).
  bool ge_bad_[kProtocolCount] = {};
  // Round currently being executed (set by draw_round, read by
  // finish_round to key retry streams).
  Protocol current_proto_ = Protocol::kVote;
  std::uint64_t current_round_ = 0;

  std::vector<EncounterFaults> table_;
  std::vector<PeerId> crashed_round_;  ///< crash order == seq order
  std::vector<PeerId> crashed_set_;    ///< sorted ids crashed this round

  std::vector<FaultStats> lane_stats_;
  std::vector<std::vector<DeferredDelivery>> lane_deferred_;
  std::vector<std::vector<VpFailure>> lane_vp_failures_;
  FaultStats stats_;
};

}  // namespace tribvote::sim
