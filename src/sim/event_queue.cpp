#include "sim/event_queue.hpp"

#include <algorithm>
#include <cassert>
#include <utility>

namespace tribvote::sim {

EventHandle EventQueue::schedule(Time at, Callback cb) {
  compact_if_needed();
  auto alive = std::make_shared<bool>(true);
  heap_.push_back(Entry{at, next_seq_++, alive, std::move(cb)});
  std::push_heap(heap_.begin(), heap_.end());
  return EventHandle{std::move(alive), dead_pending_};
}

void EventQueue::compact_if_needed() {
  if (heap_.size() < kCompactMinSize || *dead_pending_ * 2 <= heap_.size()) {
    return;
  }
  std::erase_if(heap_, [](const Entry& e) { return !*e.alive; });
  std::make_heap(heap_.begin(), heap_.end());
  *dead_pending_ = 0;
  ++compactions_;
}

void EventQueue::purge() const {
  while (!heap_.empty() && !*heap_.front().alive) {
    std::pop_heap(heap_.begin(), heap_.end());
    heap_.pop_back();
    assert(*dead_pending_ > 0);
    --*dead_pending_;
  }
}

bool EventQueue::empty() const noexcept {
  purge();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  purge();
  assert(!heap_.empty());
  return heap_.front().at;
}

std::pair<Time, EventQueue::Callback> EventQueue::pop() {
  purge();
  assert(!heap_.empty());
  Entry& top = heap_.front();
  std::pair<Time, Callback> result{top.at, std::move(top.cb)};
  // The event is leaving the queue to fire: clear the shared flag so a
  // later cancel() through a surviving handle is a no-op (and does not
  // inflate the dead count) and pending() reads false.
  *top.alive = false;
  std::pop_heap(heap_.begin(), heap_.end());
  heap_.pop_back();
  return result;
}

}  // namespace tribvote::sim
