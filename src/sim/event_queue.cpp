#include "sim/event_queue.hpp"

#include <cassert>
#include <utility>

namespace tribvote::sim {

EventHandle EventQueue::schedule(Time at, Callback cb) {
  auto alive = std::make_shared<bool>(true);
  heap_.push(Entry{at, next_seq_++, alive, std::move(cb)});
  return EventHandle{std::move(alive)};
}

void EventQueue::purge() const {
  while (!heap_.empty() && !*heap_.top().alive) heap_.pop();
}

bool EventQueue::empty() const noexcept {
  purge();
  return heap_.empty();
}

Time EventQueue::next_time() const {
  purge();
  assert(!heap_.empty());
  return heap_.top().at;
}

std::pair<Time, EventQueue::Callback> EventQueue::pop() {
  purge();
  assert(!heap_.empty());
  // priority_queue::top() is const; the entry is about to be popped, so the
  // move is safe — no other reference to it can exist.
  Entry& top = const_cast<Entry&>(heap_.top());
  std::pair<Time, Callback> result{top.at, std::move(top.cb)};
  heap_.pop();
  return result;
}

}  // namespace tribvote::sim
