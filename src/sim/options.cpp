#include "sim/options.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace tribvote::sim::options {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

std::uint64_t seed() {
  const char* v = std::getenv("TRIBVOTE_SEED");
  return v != nullptr ? std::strtoull(v, nullptr, 10) : 20090525ULL;
}

std::size_t replicas() { return env_size("TRIBVOTE_REPLICAS", 10); }

std::size_t ablation_replicas() {
  // Ablations compare configurations against each other, where 4 replicas
  // already separate the curves.
  return env_size("TRIBVOTE_ABL_REPLICAS",
                  std::min<std::size_t>(4, replicas()));
}

std::size_t shards() { return env_size("TRIBVOTE_SHARDS", 1); }

bt::LedgerBackend ledger_backend() {
  const char* v = std::getenv("TRIBVOTE_LEDGER");
  if (v == nullptr) return bt::LedgerBackend::kMap;
  if (const auto backend = bt::parse_ledger_backend(v)) return *backend;
  std::fprintf(stderr,
               "warning: TRIBVOTE_LEDGER=%s is not a ledger backend "
               "(map | sharded_log); using map\n",
               v);
  return bt::LedgerBackend::kMap;
}

FaultConfig faults() {
  FaultConfig config;
  const char* v = std::getenv("TRIBVOTE_FAULTS");
  if (v == nullptr) return config;
  std::string error;
  if (!parse_fault_spec(v, config, &error)) {
    std::fprintf(stderr,
                 "warning: TRIBVOTE_FAULTS=%s is not a fault spec (%s); "
                 "running fault-free\n",
                 v, error.c_str());
    return FaultConfig{};
  }
  return config;
}

telemetry::TelemetryConfig telemetry() {
  telemetry::TelemetryConfig config;
  const char* v = std::getenv("TRIBVOTE_TELEMETRY");
  if (v == nullptr) return config;
  std::string error;
  if (!telemetry::parse_telemetry_spec(v, config, &error)) {
    std::fprintf(stderr,
                 "warning: TRIBVOTE_TELEMETRY=%s is not a telemetry spec "
                 "(%s); telemetry off\n",
                 v, error.c_str());
    return telemetry::TelemetryConfig{};
  }
  return config;
}

bool gossip_cache() {
  const char* v = std::getenv("TRIBVOTE_GOSSIP_CACHE");
  if (v == nullptr) return true;
  const std::string_view s(v);
  if (s == "on" || s == "1" || s == "true") return true;
  if (s == "off" || s == "0" || s == "false") return false;
  std::fprintf(stderr,
               "warning: TRIBVOTE_GOSSIP_CACHE=%s is not on|off; "
               "cache stays on\n",
               v);
  return true;
}

}  // namespace tribvote::sim::options
