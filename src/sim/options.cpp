#include "sim/options.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <string_view>

namespace tribvote::sim::options {

std::size_t env_size(const char* name, std::size_t fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr) return fallback;
  const long parsed = std::strtol(v, nullptr, 10);
  return parsed > 0 ? static_cast<std::size_t>(parsed) : fallback;
}

std::uint64_t seed() {
  const char* v = std::getenv("TRIBVOTE_SEED");
  return v != nullptr ? std::strtoull(v, nullptr, 10) : 20090525ULL;
}

std::size_t replicas() { return env_size("TRIBVOTE_REPLICAS", 10); }

std::size_t ablation_replicas() {
  // Ablations compare configurations against each other, where 4 replicas
  // already separate the curves.
  return env_size("TRIBVOTE_ABL_REPLICAS",
                  std::min<std::size_t>(4, replicas()));
}

std::size_t shards() { return env_size("TRIBVOTE_SHARDS", 1); }

bt::LedgerBackend ledger_backend() {
  const char* v = std::getenv("TRIBVOTE_LEDGER");
  if (v == nullptr) return bt::LedgerBackend::kMap;
  if (const auto backend = bt::parse_ledger_backend(v)) return *backend;
  std::fprintf(stderr,
               "warning: TRIBVOTE_LEDGER=%s is not a ledger backend "
               "(map | sharded_log); using map\n",
               v);
  return bt::LedgerBackend::kMap;
}

FaultConfig faults() {
  FaultConfig config;
  const char* v = std::getenv("TRIBVOTE_FAULTS");
  if (v == nullptr) return config;
  std::string error;
  if (!parse_fault_spec(v, config, &error)) {
    std::fprintf(stderr,
                 "warning: TRIBVOTE_FAULTS=%s is not a fault spec (%s); "
                 "running fault-free\n",
                 v, error.c_str());
    return FaultConfig{};
  }
  return config;
}

telemetry::TelemetryConfig telemetry() {
  telemetry::TelemetryConfig config;
  const char* v = std::getenv("TRIBVOTE_TELEMETRY");
  if (v == nullptr) return config;
  std::string error;
  if (!telemetry::parse_telemetry_spec(v, config, &error)) {
    std::fprintf(stderr,
                 "warning: TRIBVOTE_TELEMETRY=%s is not a telemetry spec "
                 "(%s); telemetry off\n",
                 v, error.c_str());
    return telemetry::TelemetryConfig{};
  }
  return config;
}

namespace {

/// Like env_size but 0 is a valid value (deadline knobs use 0 = off).
long env_nonneg(const char* name, long fallback) {
  const char* v = std::getenv(name);
  if (v == nullptr || *v == '\0') return fallback;
  char* end = nullptr;
  const long parsed = std::strtol(v, &end, 10);
  return (end != nullptr && *end == '\0' && parsed >= 0) ? parsed : fallback;
}

}  // namespace

NetOptions net() {
  NetOptions o;
  o.view_size = env_size("TRIBVOTE_NET_VIEW", o.view_size);
  o.shuffle_size = env_size("TRIBVOTE_NET_SHUFFLE", o.shuffle_size);
  o.round_ms = static_cast<int>(
      env_size("TRIBVOTE_NET_ROUND_MS",
               static_cast<std::size_t>(o.round_ms)));
  o.max_dials = env_size("TRIBVOTE_NET_DIALS", o.max_dials);
  o.max_dial_failures =
      env_size("TRIBVOTE_NET_DIAL_FAILS", o.max_dial_failures);
  o.entry_ttl = static_cast<long>(
      env_size("TRIBVOTE_NET_TTL", static_cast<std::size_t>(o.entry_ttl)));
  o.quarantine_ttl =
      env_nonneg("TRIBVOTE_NET_QUARANTINE_TTL", o.quarantine_ttl);
  if (const char* v = std::getenv("TRIBVOTE_NET_IMPAIR"); v != nullptr) {
    o.impair_spec = v;  // validated by net::parse_impair_spec downstream
  }
  o.hello_timeout_ms = static_cast<int>(
      env_nonneg("TRIBVOTE_NET_HELLO_MS", o.hello_timeout_ms));
  o.encounter_timeout_ms = static_cast<int>(
      env_nonneg("TRIBVOTE_NET_DEADLINE_MS", o.encounter_timeout_ms));
  return o;
}

void banner(const char* name,
            const std::vector<std::pair<std::string, std::string>>& kv) {
  std::fprintf(stderr, "%s:", name);
  for (const auto& [k, v] : kv) {
    std::fprintf(stderr, " %s=%s", k.c_str(), v.c_str());
  }
  std::fprintf(stderr, "\n");
}

CliFlags::CliFlags(int argc, char** argv) {
  args_.reserve(static_cast<std::size_t>(argc > 0 ? argc - 1 : 0));
  for (int i = 1; i < argc; ++i) args_.emplace_back(argv[i]);
}

bool CliFlags::next() {
  if (error_ || pos_ >= args_.size()) return false;
  flag_ = args_[pos_++];
  have_flag_ = true;
  return true;
}

void CliFlags::fail() {
  error_ = true;
  have_flag_ = false;
}

bool CliFlags::is_switch(const char* name) {
  if (!have_flag_ || flag_ != name) return false;
  have_flag_ = false;
  return true;
}

bool CliFlags::take(const char* name, std::string& raw) {
  if (!have_flag_ || flag_ != name) return false;
  if (pos_ >= args_.size()) {
    fail();
    return false;
  }
  raw = args_[pos_++];
  have_flag_ = false;
  return true;
}

bool CliFlags::value(const char* name, std::string& out) {
  return take(name, out);
}

namespace {

bool parse_u64(const std::string& s, std::uint64_t& out) {
  if (s.empty()) return false;
  char* end = nullptr;
  const unsigned long long v = std::strtoull(s.c_str(), &end, 10);
  if (end == nullptr || *end != '\0') return false;
  out = v;
  return true;
}

}  // namespace

bool CliFlags::u64(const char* name, std::uint64_t& out) {
  std::string raw;
  if (!take(name, raw)) return false;
  if (!parse_u64(raw, out)) fail();
  return !error_;
}

bool CliFlags::u32(const char* name, std::uint32_t& out) {
  std::uint64_t v = 0;
  std::string raw;
  if (!take(name, raw)) return false;
  if (!parse_u64(raw, v) || v > 0xffffffffULL) {
    fail();
  } else {
    out = static_cast<std::uint32_t>(v);
  }
  return !error_;
}

bool CliFlags::u16(const char* name, std::uint16_t& out) {
  std::uint64_t v = 0;
  std::string raw;
  if (!take(name, raw)) return false;
  if (!parse_u64(raw, v) || v > 0xffffULL) {
    fail();
  } else {
    out = static_cast<std::uint16_t>(v);
  }
  return !error_;
}

bool CliFlags::i32(const char* name, int& out) {
  std::string raw;
  if (!take(name, raw)) return false;
  char* end = nullptr;
  const long v = std::strtol(raw.c_str(), &end, 10);
  if (raw.empty() || end == nullptr || *end != '\0') {
    fail();
  } else {
    out = static_cast<int>(v);
  }
  return !error_;
}

bool CliFlags::f64(const char* name, double& out) {
  std::string raw;
  if (!take(name, raw)) return false;
  char* end = nullptr;
  const double v = std::strtod(raw.c_str(), &end);
  if (raw.empty() || end == nullptr || *end != '\0') {
    fail();
  } else {
    out = v;
  }
  return !error_;
}

bool CliFlags::size(const char* name, std::size_t& out) {
  std::uint64_t v = 0;
  std::string raw;
  if (!take(name, raw)) return false;
  if (!parse_u64(raw, v)) {
    fail();
  } else {
    out = static_cast<std::size_t>(v);
  }
  return !error_;
}

bool CliFlags::host_port(const char* name, std::string& host,
                         std::uint16_t& port) {
  std::string raw;
  if (!take(name, raw)) return false;
  const std::size_t colon = raw.rfind(':');
  std::uint64_t p = 0;
  if (colon == std::string::npos || colon == 0 ||
      !parse_u64(raw.substr(colon + 1), p) || p == 0 || p > 65535) {
    fail();
    return !error_;
  }
  host = raw.substr(0, colon);
  port = static_cast<std::uint16_t>(p);
  return true;
}

adversary::AdversaryConfig adversary() {
  adversary::AdversaryConfig config;
  const char* v = std::getenv("TRIBVOTE_ADVERSARY");
  if (v == nullptr) return config;
  std::string error;
  if (!adversary::parse_adversary_spec(v, config, &error)) {
    std::fprintf(stderr,
                 "warning: TRIBVOTE_ADVERSARY=%s is not an adversary spec "
                 "(%s); running adversary-free\n",
                 v, error.c_str());
    return adversary::AdversaryConfig{};
  }
  return config;
}

bt::StreamingConfig streaming() {
  bt::StreamingConfig config;
  const char* v = std::getenv("TRIBVOTE_STREAMING");
  if (v == nullptr) return config;
  std::string error;
  if (!bt::parse_streaming_spec(v, config, &error)) {
    std::fprintf(stderr,
                 "warning: TRIBVOTE_STREAMING=%s is not a streaming spec "
                 "(%s); running the download workload\n",
                 v, error.c_str());
    return bt::StreamingConfig{};
  }
  return config;
}

bool gossip_cache() {
  const char* v = std::getenv("TRIBVOTE_GOSSIP_CACHE");
  if (v == nullptr) return true;
  const std::string_view s(v);
  if (s == "on" || s == "1" || s == "true") return true;
  if (s == "off" || s == "0" || s == "false") return false;
  std::fprintf(stderr,
               "warning: TRIBVOTE_GOSSIP_CACHE=%s is not on|off; "
               "cache stays on\n",
               v);
  return true;
}

}  // namespace tribvote::sim::options
