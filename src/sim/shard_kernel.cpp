#include "sim/shard_kernel.hpp"

#include <algorithm>
#include <cassert>

namespace tribvote::sim {

ShardKernel::ShardKernel(std::size_t population, std::size_t shards,
                         util::ThreadPool* pool)
    : population_(population),
      shards_(std::max<std::size_t>(1, shards)),
      pool_(pool) {
  next_level_.assign(population_, 0);
  mail_.resize(shards_);
  for (auto& row : mail_) row.resize(shards_);
}

void ShardKernel::parallel_lanes(
    const std::function<void(std::size_t)>& task) {
  // Bracket every lane task with the thread-local lane index so registry
  // writes inside exchange bodies land in the executing lane's block. Reset
  // to 0 afterwards: pool workers may later run tasks for other runners,
  // and the inline path returns to simulator-thread (lane 0) semantics.
  const auto run_lane = [&task](std::size_t s) {
    telemetry::set_current_lane(s);
    task(s);
    telemetry::set_current_lane(0);
  };
  if (pool_ == nullptr) {
    for (std::size_t s = 0; s < shards_; ++s) run_lane(s);
    return;
  }
  pool_->parallel_for(shards_, run_lane);
}

void ShardKernel::run_round(const std::vector<Encounter>& encounters,
                            const ExchangeFn& exchange) {
  ++stats_.rounds;
  telemetry::Span round_span(telemetry_, "kernel.round");
  round_span.set_arg(encounters.size());
  if (shards_ == 1) {
    // Serial fast path: the encounter list in sequence order *is* the
    // pre-shard runner's loop body. No pool, no levels, no mailboxes.
    for (const Encounter& e : encounters) exchange(e, 0);
    stats_.local += encounters.size();
    if (!encounters.empty()) ++stats_.levels;
    return;
  }

  // Level assignment: one pass, O(encounters). next_level_[id] is the first
  // level with no earlier encounter touching id, so placing e at
  // max(next_level_[i], next_level_[j]) keeps every node's encounters in
  // sequence order across levels and each level an independent set.
  for (auto& level : levels_) level.clear();
  for (const Encounter& e : encounters) {
    assert(e.initiator < population_ && e.responder < population_);
    const std::uint32_t lvl =
        std::max(next_level_[e.initiator], next_level_[e.responder]);
    next_level_[e.initiator] = lvl + 1;
    next_level_[e.responder] = lvl + 1;
    if (lvl >= levels_.size()) levels_.resize(lvl + 1);
    levels_[lvl].push_back(e);
  }
  // Reset only the touched entries (population_ may dwarf the round size).
  for (const Encounter& e : encounters) {
    next_level_[e.initiator] = 0;
    next_level_[e.responder] = 0;
  }

  for (const auto& level : levels_) {
    if (level.empty()) continue;
    ++stats_.levels;
    {
      // Phase A: shard-local execution + mailbox posting, per initiator
      // lane. The span times the blocking phase from the simulator thread.
      telemetry::Span span(telemetry_, "kernel.phaseA");
      parallel_lanes([&](std::size_t s) {
        for (const Encounter& e : level) {
          if (shard_of(e.initiator) != s) continue;
          const std::size_t dest = shard_of(e.responder);
          if (dest == s) {
            exchange(e, s);
          } else {
            mail_[s][dest].push_back(e);
          }
        }
      });
    }
    // Barrier reached: mailboxes are published. Phase B: each lane drains
    // its inbox in (sender shard, sequence) order. Within the level the
    // endpoint sets are pairwise disjoint, so touching the remote initiator
    // is race-free and the drain order cannot affect results — it is fixed
    // anyway so the schedule itself is deterministic.
    {
      telemetry::Span span(telemetry_, "kernel.phaseB");
      parallel_lanes([&](std::size_t s) {
        for (std::size_t sender = 0; sender < shards_; ++sender) {
          auto& inbox = mail_[sender][s];
          for (const Encounter& e : inbox) exchange(e, s);
          inbox.clear();
        }
      });
    }
  }

  // Accounting (serial, after the barriers).
  for (const Encounter& e : encounters) {
    if (shard_of(e.initiator) == shard_of(e.responder)) {
      ++stats_.local;
    } else {
      ++stats_.mailed;
    }
  }
}

void ShardKernel::for_each_node(const NodeFn& fn) {
  if (shards_ == 1) {
    for (PeerId id = 0; id < population_; ++id) fn(id, 0);
    return;
  }
  parallel_lanes([&](std::size_t s) {
    for (std::size_t id = s; id < population_; id += shards_) {
      fn(static_cast<PeerId>(id), s);
    }
  });
}

}  // namespace tribvote::sim
