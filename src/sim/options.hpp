// Shared TRIBVOTE_* environment-variable options.
//
// Every harness binary (the fig/abl benches via bench/bench_common.hpp and
// examples/scenario_cli.cpp) honours the same environment knobs; this is
// the one place they are named, parsed and defaulted, so a new knob is
// added once and shows up everywhere.
//
//   TRIBVOTE_REPLICAS      trace replicas per experiment (default 10, the
//                          paper's count; set lower for a quick pass)
//   TRIBVOTE_ABL_REPLICAS  replicas for ablations (default min(4, replicas))
//   TRIBVOTE_SEED          base seed for the trace dataset (default
//                          20090525, the IPPS 2009 conference date)
//   TRIBVOTE_SHARDS        worker shards per ScenarioRunner (default 1);
//                          results are bit-identical for any value
//   TRIBVOTE_LEDGER        contribution-ledger backend: "map" (default,
//                          the goldens' backend) or "sharded_log"
//   TRIBVOTE_FAULTS        network fault spec, e.g.
//                          "loss=0.3,delay=0.1,max_delay=120,crash=0.01,
//                          corrupt=0.05,retries=4,retry_base=15"
//                          (default: no faults — the goldens' setting)
//   TRIBVOTE_TELEMETRY     telemetry spec: "off" (default — the goldens'
//                          setting), "counters", or "trace", optionally
//                          with ",trace_out=FILE" / ",csv=FILE"
//   TRIBVOTE_GOSSIP_CACHE  vote-history cache + delta gossip: "on"
//                          (default) or "off". Semantically transparent —
//                          goldens are byte-identical either way; the knob
//                          exists for A/B perf runs and identity smokes
#pragma once

#include <cstddef>
#include <cstdint>

#include "bt/ledger.hpp"
#include "sim/fault_plane.hpp"
#include "telemetry/config.hpp"

namespace tribvote::sim::options {

/// TRIBVOTE_<name> as a positive size, or `fallback` when unset/invalid.
[[nodiscard]] std::size_t env_size(const char* name, std::size_t fallback);

[[nodiscard]] std::uint64_t seed();
[[nodiscard]] std::size_t replicas();
[[nodiscard]] std::size_t ablation_replicas();
[[nodiscard]] std::size_t shards();

/// TRIBVOTE_LEDGER; unknown values fall back to the map backend with a
/// warning on stderr (a silently ignored knob would taint measurements).
[[nodiscard]] bt::LedgerBackend ledger_backend();

/// TRIBVOTE_FAULTS parsed via sim::parse_fault_spec; a malformed spec
/// falls back to no faults with a warning on stderr.
[[nodiscard]] FaultConfig faults();

/// TRIBVOTE_TELEMETRY parsed via telemetry::parse_telemetry_spec; a
/// malformed spec falls back to telemetry off with a warning on stderr.
[[nodiscard]] telemetry::TelemetryConfig telemetry();

/// TRIBVOTE_GOSSIP_CACHE ("on"/"off", also accepts 1/0/true/false); an
/// unknown value falls back to on with a warning on stderr.
[[nodiscard]] bool gossip_cache();

}  // namespace tribvote::sim::options
