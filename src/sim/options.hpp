// Shared TRIBVOTE_* environment-variable options.
//
// Every harness binary (the fig/abl benches via bench/bench_common.hpp and
// examples/scenario_cli.cpp) honours the same environment knobs; this is
// the one place they are named, parsed and defaulted, so a new knob is
// added once and shows up everywhere.
//
//   TRIBVOTE_REPLICAS      trace replicas per experiment (default 10, the
//                          paper's count; set lower for a quick pass)
//   TRIBVOTE_ABL_REPLICAS  replicas for ablations (default min(4, replicas))
//   TRIBVOTE_SEED          base seed for the trace dataset (default
//                          20090525, the IPPS 2009 conference date)
//   TRIBVOTE_SHARDS        worker shards per ScenarioRunner (default 1);
//                          results are bit-identical for any value
//   TRIBVOTE_LEDGER        contribution-ledger backend: "map" (default,
//                          the goldens' backend) or "sharded_log"
//   TRIBVOTE_FAULTS        network fault spec, e.g.
//                          "loss=0.3,delay=0.1,max_delay=120,crash=0.01,
//                          corrupt=0.05,retries=4,retry_base=15"
//                          (default: no faults — the goldens' setting)
//   TRIBVOTE_TELEMETRY     telemetry spec: "off" (default — the goldens'
//                          setting), "counters", or "trace", optionally
//                          with ",trace_out=FILE" / ",csv=FILE"
//   TRIBVOTE_GOSSIP_CACHE  vote-history cache + delta gossip: "on"
//                          (default) or "off". Semantically transparent —
//                          goldens are byte-identical either way; the knob
//                          exists for A/B perf runs and identity smokes
//   TRIBVOTE_ADVERSARY     adversary-plane roster spec, e.g.
//                          "attrition:n=20,rate=4;sybil:n=16,region=4"
//                          (default: empty — no plane, the goldens'
//                          setting)
//   TRIBVOTE_STREAMING     streaming-swarm workload: "off" (default),
//                          "on", or "window=8,startup=4,kbps=512"
//   TRIBVOTE_NET_VIEW      socket-plane Newscast view size (default 20)
//   TRIBVOTE_NET_SHUFFLE   descriptors per PEER_EXCHANGE (default 16)
//   TRIBVOTE_NET_ROUND_MS  EncounterScheduler round period (default 100)
//   TRIBVOTE_NET_DIALS     concurrent dials in flight (default 4)
//   TRIBVOTE_NET_DIAL_FAILS consecutive dial failures before a descriptor
//                          is quarantined (default 3)
//   TRIBVOTE_NET_TTL       descriptor TTL in protocol seconds (default 1800)
//   TRIBVOTE_NET_QUARANTINE_TTL quarantine tombstone TTL in protocol
//                          seconds (default 600)
//   TRIBVOTE_NET_IMPAIR    transport chaos spec (DESIGN.md §16), e.g.
//                          "loss=0.1,delay=0.2,max_delay_ms=40,
//                          corrupt=0.01,truncate=0.01,stall=0.005,ge=0.3,
//                          part_period=64,part_width=8,part_frac=0.25"
//                          (default: off — the goldens' setting). Parsed
//                          by net::parse_impair_spec in the binaries; sim
//                          carries it as an opaque string
//   TRIBVOTE_NET_HELLO_MS  HELLO deadline per connection in wall ms
//                          (default 2000 in the free-running harnesses;
//                          0 disables)
//   TRIBVOTE_NET_DEADLINE_MS mid-encounter progress deadline in wall ms
//                          (default 2000 in the free-running harnesses;
//                          0 disables)
//
// This header also hosts the shared `--flag value` CLI scanner the net
// binaries (tribvote_node, tribvote_load, tribvote_cluster) parse with —
// one strict parser instead of three hand-rolled strtol loops, same spirit
// as the env block above. Flags here are plain integers/strings; nothing
// in sim depends on net::.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "adversary/config.hpp"
#include "bt/ledger.hpp"
#include "bt/streaming.hpp"
#include "sim/fault_plane.hpp"
#include "telemetry/config.hpp"

namespace tribvote::sim::options {

/// TRIBVOTE_<name> as a positive size, or `fallback` when unset/invalid.
[[nodiscard]] std::size_t env_size(const char* name, std::size_t fallback);

[[nodiscard]] std::uint64_t seed();
[[nodiscard]] std::size_t replicas();
[[nodiscard]] std::size_t ablation_replicas();
[[nodiscard]] std::size_t shards();

/// TRIBVOTE_LEDGER; unknown values fall back to the map backend with a
/// warning on stderr (a silently ignored knob would taint measurements).
[[nodiscard]] bt::LedgerBackend ledger_backend();

/// TRIBVOTE_FAULTS parsed via sim::parse_fault_spec; a malformed spec
/// falls back to no faults with a warning on stderr.
[[nodiscard]] FaultConfig faults();

/// TRIBVOTE_TELEMETRY parsed via telemetry::parse_telemetry_spec; a
/// malformed spec falls back to telemetry off with a warning on stderr.
[[nodiscard]] telemetry::TelemetryConfig telemetry();

/// TRIBVOTE_GOSSIP_CACHE ("on"/"off", also accepts 1/0/true/false); an
/// unknown value falls back to on with a warning on stderr.
[[nodiscard]] bool gossip_cache();

/// TRIBVOTE_ADVERSARY parsed via adversary::parse_adversary_spec; a
/// malformed spec falls back to an empty roster with a warning on stderr.
[[nodiscard]] adversary::AdversaryConfig adversary();

/// TRIBVOTE_STREAMING parsed via bt::parse_streaming_spec; a malformed
/// spec falls back to the download workload with a warning on stderr.
[[nodiscard]] bt::StreamingConfig streaming();

/// Effective socket-plane configuration from the TRIBVOTE_NET_* knobs.
/// Plain integers: the net:: structs are built from these by the binaries
/// (sim never links net).
struct NetOptions {
  std::size_t view_size = 20;
  std::size_t shuffle_size = 16;
  int round_ms = 100;
  std::size_t max_dials = 4;
  std::size_t max_dial_failures = 3;
  long entry_ttl = 1800;       ///< protocol seconds
  long quarantine_ttl = 600;   ///< protocol seconds
  /// Opaque TRIBVOTE_NET_IMPAIR chaos spec — handed to
  /// net::parse_impair_spec by the binaries (sim never links net::).
  std::string impair_spec;
  int hello_timeout_ms = 2000;      ///< 0 disables the HELLO deadline
  int encounter_timeout_ms = 2000;  ///< 0 disables the progress deadline
};

[[nodiscard]] NetOptions net();

/// One-line "name: k=v k=v ..." banner on `stderr`, echoing the effective
/// configuration a binary runs with — every net binary prints one so a
/// cluster log records which knobs each process resolved.
void banner(const char* name,
            const std::vector<std::pair<std::string, std::string>>& kv);

/// Strict `--flag value` scanner shared by the net binaries. Usage:
///
///   CliFlags cli(argc, argv);
///   while (cli.next()) {
///     if (cli.is_switch("--oracle")) opt.oracle = true;
///     else if (cli.u64("--seed", opt.seed)) {}
///     else if (cli.i32("--rounds", opt.rounds)) {}
///     else return usage();
///   }
///   if (cli.error()) return usage();
///
/// Each typed matcher returns true only when the current flag matches its
/// name AND the value parses; a matching flag with a missing or malformed
/// value sets error() and stops the scan (next() turns false).
class CliFlags {
 public:
  CliFlags(int argc, char** argv);

  /// Advance to the next flag. False when exhausted or after an error.
  bool next();
  [[nodiscard]] const std::string& flag() const noexcept { return flag_; }

  /// Current flag equals `name` and takes no value.
  bool is_switch(const char* name);

  /// Current flag equals `name`; consume its raw value.
  bool value(const char* name, std::string& out);

  // Typed matchers over value().
  bool u64(const char* name, std::uint64_t& out);
  bool u32(const char* name, std::uint32_t& out);
  bool u16(const char* name, std::uint16_t& out);
  bool i32(const char* name, int& out);
  bool f64(const char* name, double& out);
  bool size(const char* name, std::size_t& out);
  /// "HOST:PORT" (port in [1, 65535]).
  bool host_port(const char* name, std::string& host, std::uint16_t& port);

  [[nodiscard]] bool error() const noexcept { return error_; }

 private:
  bool take(const char* name, std::string& raw);
  void fail();

  std::vector<std::string> args_;
  std::size_t pos_ = 0;
  std::string flag_;
  bool have_flag_ = false;
  bool error_ = false;
};

}  // namespace tribvote::sim::options
