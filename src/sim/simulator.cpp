#include "sim/simulator.hpp"

namespace tribvote::sim {

void Simulator::run_until(Time until) {
  while (!queue_.empty() && queue_.next_time() <= until) {
    auto [at, cb] = queue_.pop();
    now_ = at;
    ++executed_;
    cb();
  }
  if (now_ < until) now_ = until;
}

bool Simulator::step() {
  if (queue_.empty()) return false;
  auto [at, cb] = queue_.pop();
  now_ = at;
  ++executed_;
  cb();
  return true;
}

}  // namespace tribvote::sim
