// Vote-history cache + digest-first delta gossip (perf PR tentpole).
//
// Covers: vote-list version semantics, cache hit/invalidation/off, the
// partial-selection rewrite against a reference full sort, the digest
// codec, delta-vs-full semantic equivalence, deterministic counterpart
// eviction, the incremental BallotBox tally against an O(n) recompute, and
// wire-fault behaviour of every gossip frame (damaged digest → full
// fallback, damaged delta/full → wholesale rejection, nothing merged).
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "crypto/schnorr.hpp"
#include "vote/agent.hpp"
#include "vote/ballot_box.hpp"
#include "vote/gossip.hpp"
#include "vote/vote_list.hpp"

namespace tribvote::vote {
namespace {

// ---- LocalVoteList::version ------------------------------------------------

TEST(VoteListVersion, BumpsOnContentChangeOnly) {
  LocalVoteList list;
  EXPECT_EQ(list.version(), 0u);
  list.cast(1, Opinion::kPositive, 10);
  EXPECT_EQ(list.version(), 1u);
  list.cast(1, Opinion::kPositive, 10);  // identical re-cast: no-op
  EXPECT_EQ(list.version(), 1u);
  list.cast(1, Opinion::kPositive, 20);  // fresher timestamp: content change
  EXPECT_EQ(list.version(), 2u);
  list.cast(1, Opinion::kNegative, 20);  // opinion flip: content change
  EXPECT_EQ(list.version(), 3u);
  list.cast(2, Opinion::kPositive, 20);  // new moderator
  EXPECT_EQ(list.version(), 4u);
}

// ---- partial selection vs reference full sort ------------------------------

/// The pre-optimization implementation, verbatim: full pointer sort, then
/// recency prefix + sampled tail.
std::vector<VoteEntry> reference_select(const LocalVoteList& list,
                                        std::size_t max_votes, util::Rng& rng,
                                        SelectionPolicy policy) {
  const auto& entries = list.entries();
  std::vector<VoteEntry> result;
  if (entries.empty() || max_votes == 0) return result;
  if (entries.size() <= max_votes) return entries;
  if (policy == SelectionPolicy::kRandomOnly) {
    for (std::size_t p : rng.sample_indices(entries.size(), max_votes)) {
      result.push_back(entries[p]);
    }
    return result;
  }
  std::vector<const VoteEntry*> sorted;
  for (const auto& e : entries) sorted.push_back(&e);
  std::sort(sorted.begin(), sorted.end(),
            [](const VoteEntry* a, const VoteEntry* b) {
              if (a->cast_at != b->cast_at) return a->cast_at > b->cast_at;
              return a->moderator < b->moderator;
            });
  const std::size_t recent = policy == SelectionPolicy::kRecentOnly
                                 ? max_votes
                                 : (max_votes + 1) / 2;
  for (std::size_t i = 0; i < recent; ++i) result.push_back(*sorted[i]);
  const std::size_t rest = sorted.size() - recent;
  const std::size_t random_take = std::min(max_votes - recent, rest);
  for (std::size_t p : rng.sample_indices(rest, random_take)) {
    result.push_back(*sorted[recent + p]);
  }
  return result;
}

bool same_selection(const std::vector<VoteEntry>& a,
                    const std::vector<VoteEntry>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t i = 0; i < a.size(); ++i) {
    if (a[i].moderator != b[i].moderator || a[i].opinion != b[i].opinion ||
        a[i].cast_at != b[i].cast_at) {
      return false;
    }
  }
  return true;
}

TEST(PartialSelection, ByteIdenticalToFullSortAcrossPoliciesAndSeeds) {
  // Duplicate cast times on purpose: the comparator's moderator tiebreak
  // must keep the partial selection's draw order identical to the sort's.
  for (const std::uint64_t seed : {1ULL, 7ULL, 42ULL, 2009ULL}) {
    util::Rng build(seed);
    LocalVoteList list;
    for (ModeratorId m = 0; m < 200; ++m) {
      list.cast(m,
                build.next_bool(0.5) ? Opinion::kPositive
                                     : Opinion::kNegative,
                static_cast<Time>(build.next_below(40)));
    }
    for (const auto policy :
         {SelectionPolicy::kRecencyRandom, SelectionPolicy::kRecentOnly,
          SelectionPolicy::kRandomOnly}) {
      for (const std::size_t max_votes : {1u, 2u, 13u, 50u, 199u, 200u}) {
        util::Rng a(seed * 31 + max_votes);
        util::Rng b = a;
        const auto fast = list.select_for_message(max_votes, a, policy);
        const auto slow = reference_select(list, max_votes, b, policy);
        EXPECT_TRUE(same_selection(fast, slow))
            << "policy=" << static_cast<int>(policy)
            << " max_votes=" << max_votes << " seed=" << seed;
        // Both consumed the generator identically.
        EXPECT_EQ(a(), b());
      }
    }
  }
}

// ---- incremental tally -----------------------------------------------------

TEST(IncrementalTally, MatchesRecomputeUnderMergeEvictPurge) {
  util::Rng rng(5);
  BallotBox box(40);  // small capacity: eviction fires constantly
  for (int step = 0; step < 500; ++step) {
    const PeerId voter = static_cast<PeerId>(rng.next_below(12));
    std::vector<VoteEntry> votes;
    const std::size_t n = 1 + rng.next_below(4);
    for (std::size_t i = 0; i < n; ++i) {
      votes.push_back(VoteEntry{static_cast<ModeratorId>(rng.next_below(15)),
                                rng.next_bool(0.5) ? Opinion::kPositive
                                                   : Opinion::kNegative,
                                static_cast<Time>(step)});
    }
    box.merge(voter, votes, static_cast<Time>(step));
    if (step % 97 == 96) {
      box.purge_voters(
          [&](PeerId v) { return v % 3 != static_cast<PeerId>(step % 3); });
    }
    const auto expected = box.recompute_tally();
    const auto& incremental = box.tally();
    ASSERT_EQ(incremental.size(), expected.size()) << "step " << step;
    for (const auto& [m, t] : expected) {
      const auto it = incremental.find(m);
      ASSERT_NE(it, incremental.end()) << "step " << step;
      EXPECT_EQ(it->second.positive, t.positive) << "step " << step;
      EXPECT_EQ(it->second.negative, t.negative) << "step " << step;
    }
  }
}

// ---- agent fixtures --------------------------------------------------------

struct Peer {
  crypto::KeyPair keys;
  std::unique_ptr<VoteAgent> agent;
};

Peer make_peer(PeerId id, VoteConfig config, std::uint64_t seed,
               bool experienced = true) {
  Peer p;
  util::Rng krng(seed);
  p.keys = crypto::generate_keypair(krng);
  p.agent = std::make_unique<VoteAgent>(
      id, p.keys, config, [experienced](PeerId) { return experienced; },
      util::Rng(seed * 7919 + 1));
  return p;
}

// ---- vote-history cache ----------------------------------------------------

TEST(VoteHistoryCache, SignsOncePerVersionAndInvalidatesOnCast) {
  VoteConfig config;
  Peer p = make_peer(1, config, 11);
  p.agent->cast_vote(3, Opinion::kPositive, 10);
  const auto m1 = p.agent->outgoing_votes(20);
  const auto m2 = p.agent->outgoing_votes(30);
  const auto m3 = p.agent->outgoing_votes(40);
  EXPECT_EQ(p.agent->gossip_stats().builds, 3u);
  EXPECT_EQ(p.agent->gossip_stats().signatures, 1u);
  EXPECT_EQ(p.agent->gossip_stats().cache_hits, 2u);
  EXPECT_EQ(m1.digest(), m2.digest());
  EXPECT_EQ(m2.signature, m3.signature);

  p.agent->cast_vote(4, Opinion::kNegative, 50);  // content change
  const auto m4 = p.agent->outgoing_votes(60);
  EXPECT_EQ(p.agent->gossip_stats().signatures, 2u);
  EXPECT_EQ(m4.votes.size(), 2u);
  // The cached message stays verifiable.
  EXPECT_TRUE(crypto::verify(p.keys.pub, m4.digest(), m4.signature));
}

TEST(VoteHistoryCache, OffMeansEveryCallSigns) {
  VoteConfig config;
  config.gossip_cache = false;
  Peer p = make_peer(1, config, 12);
  p.agent->cast_vote(3, Opinion::kPositive, 10);
  (void)p.agent->outgoing_votes(20);
  (void)p.agent->outgoing_votes(30);
  EXPECT_EQ(p.agent->gossip_stats().signatures, 2u);
  EXPECT_EQ(p.agent->gossip_stats().cache_hits, 0u);
}

TEST(VoteHistoryCache, BypassedWhenSelectionIsStochastic) {
  VoteConfig config;
  config.max_votes_per_message = 5;  // 10 entries below → random tail draw
  Peer p = make_peer(1, config, 13);
  for (ModeratorId m = 0; m < 10; ++m) {
    p.agent->cast_vote(m, Opinion::kPositive, static_cast<Time>(m));
  }
  (void)p.agent->outgoing_votes(20);
  (void)p.agent->outgoing_votes(30);
  // No memoization: repeated calls re-draw the random tail and re-sign.
  EXPECT_EQ(p.agent->gossip_stats().cache_hits, 0u);
  EXPECT_EQ(p.agent->gossip_stats().signatures, 2u);
}

// ---- digest codec ----------------------------------------------------------

TEST(DigestCodec, RoundTripAndDamageDetection) {
  VoteConfig config;
  Peer p = make_peer(1, config, 14);
  for (ModeratorId m = 0; m < 8; ++m) {
    p.agent->cast_vote(m, Opinion::kPositive, static_cast<Time>(m + 1));
  }
  const auto full = p.agent->outgoing_votes(10);
  VoteDigestMessage digest = make_digest(full);
  EXPECT_TRUE(digest_intact(digest));
  ASSERT_EQ(digest.entries.size(), full.votes.size());
  for (std::size_t i = 0; i < full.votes.size(); ++i) {
    EXPECT_EQ(digest.entries[i].moderator, full.votes[i].moderator);
    EXPECT_EQ(digest.entries[i].check, entry_check(full.votes[i]));
  }

  VoteDigestMessage corrupted = digest;
  damage_digest(corrupted, WireFault::kCorrupted, 9);
  EXPECT_FALSE(digest_intact(corrupted));
  VoteDigestMessage truncated = digest;
  damage_digest(truncated, WireFault::kTruncated, 9);
  EXPECT_FALSE(digest_intact(truncated));
  // The digest is strictly smaller than the payload it stands in for.
  EXPECT_LT(wire_size(digest), wire_size(full));
}

// ---- delta exchange: semantic equivalence ----------------------------------

/// Drive `rounds` mutual exchanges between a and b via gossip_send.
void run_exchanges(Peer& a, Peer& b, int rounds, Time start) {
  for (int r = 0; r < rounds; ++r) {
    const Time now = start + static_cast<Time>(r) * 10;
    (void)gossip_send(*a.agent, *b.agent, now);
    (void)gossip_send(*b.agent, *a.agent, now);
  }
}

TEST(DeltaExchange, StateIdenticalToFullExchangeAndCheaper) {
  VoteConfig on;   // gossip_cache defaults on
  VoteConfig off;
  off.gossip_cache = false;
  // Two mirrored pairs with identical seeds; only the knob differs.
  Peer a_on = make_peer(1, on, 21), b_on = make_peer(2, on, 22);
  Peer a_off = make_peer(1, off, 21), b_off = make_peer(2, off, 22);
  for (Peer* p : {&a_on, &a_off}) {
    p->agent->cast_vote(5, Opinion::kPositive, 1);
    p->agent->cast_vote(6, Opinion::kNegative, 2);
  }
  for (Peer* p : {&b_on, &b_off}) {
    p->agent->cast_vote(5, Opinion::kNegative, 3);
  }
  run_exchanges(a_on, b_on, 4, 100);
  run_exchanges(a_off, b_off, 4, 100);

  // Bit-identical ballot boxes, both directions.
  for (const auto& [pair_on, pair_off] :
       {std::pair{&a_on, &a_off}, std::pair{&b_on, &b_off}}) {
    const auto& t_on = pair_on->agent->ballot_box().tally();
    const auto t_off = pair_off->agent->ballot_box().recompute_tally();
    ASSERT_EQ(t_on.size(), t_off.size());
    for (const auto& [m, t] : t_off) {
      const auto it = t_on.find(m);
      ASSERT_NE(it, t_on.end());
      EXPECT_EQ(it->second.positive, t.positive);
      EXPECT_EQ(it->second.negative, t.negative);
    }
  }
  // ...and the cached pair did strictly less signing.
  EXPECT_LT(a_on.agent->gossip_stats().signatures,
            a_off.agent->gossip_stats().signatures);
  EXPECT_GT(a_on.agent->gossip_stats().cache_hits, 0u);
}

TEST(DeltaExchange, SteadyStateShipsDigestOnlyAndFewerBytes) {
  VoteConfig config;
  Peer a = make_peer(1, config, 31), b = make_peer(2, config, 32);
  // A digest leg pays fixed overhead (checksum + empty request frame), so
  // it only undercuts the full list past the break-even size of ~7
  // entries; use a realistic list, not a single vote.
  for (ModeratorId m = 0; m < 10; ++m) {
    a.agent->cast_vote(m, Opinion::kPositive, static_cast<Time>(m + 1));
  }
  b.agent->cast_vote(99, Opinion::kNegative, 2);

  const auto first = gossip_send(*a.agent, *b.agent, 10);
  EXPECT_FALSE(first.delta);  // unknown counterpart → full message
  (void)gossip_send(*b.agent, *a.agent, 10);

  const auto second = gossip_send(*a.agent, *b.agent, 20);
  EXPECT_TRUE(second.delta);
  EXPECT_EQ(second.result, ReceiveResult::kAccepted);
  EXPECT_TRUE(second.cache_hit);
  EXPECT_EQ(second.signatures, 0u);  // digest covered everything
  EXPECT_LT(second.bytes, first.bytes);
}

TEST(DeltaExchange, ShipsOnlyMissingEntriesAfterNewCast) {
  VoteConfig config;
  Peer a = make_peer(1, config, 33), b = make_peer(2, config, 34);
  for (ModeratorId m = 0; m < 40; ++m) {
    a.agent->cast_vote(m, Opinion::kPositive, static_cast<Time>(m + 1));
  }
  (void)gossip_send(*a.agent, *b.agent, 50);
  (void)gossip_send(*b.agent, *a.agent, 50);
  a.agent->cast_vote(99, Opinion::kNegative, 60);  // one new vote

  const auto leg = gossip_send(*a.agent, *b.agent, 70);
  EXPECT_TRUE(leg.delta);
  EXPECT_EQ(leg.result, ReceiveResult::kAccepted);
  EXPECT_EQ(leg.signatures, 2u);  // new message + one-entry delta
  // Digest (41 entries) + request + 1-entry delta < 41-entry full list.
  // (The delta path's fixed overhead means it needs a list comfortably
  // past break-even — n > 20 + 5·missing — to pay off; 41 entries is the
  // fig6 regime, where the old protocol would re-ship all 41.)
  EXPECT_LT(leg.bytes, kFrameHeaderBytes + kSignatureBytes +
                           41 * kVoteEntryBytes);
  const auto& tally = b.agent->ballot_box().tally();
  const auto it = tally.find(99);
  ASSERT_NE(it, tally.end());
  EXPECT_EQ(it->second.negative, 1u);
}

// ---- counterpart memory ----------------------------------------------------

TEST(CounterpartMemory, EvictsLeastRecentDeterministically) {
  CounterpartMemory mem(3);
  mem.note(1);
  mem.note(2);
  mem.note(3);
  mem.note(1);  // refresh 1 → eviction order is now 2, 3, 1
  mem.note(4);  // evicts 2
  EXPECT_FALSE(mem.known(2));
  EXPECT_TRUE(mem.known(1));
  EXPECT_TRUE(mem.known(3));
  EXPECT_TRUE(mem.known(4));
  mem.note(5);  // evicts 3
  EXPECT_FALSE(mem.known(3));
  EXPECT_EQ(mem.size(), 3u);
}

TEST(CounterpartMemory, ZeroCapacityNeverKnows) {
  CounterpartMemory mem(0);
  mem.note(1);
  EXPECT_FALSE(mem.known(1));
  EXPECT_EQ(mem.size(), 0u);
}

// ---- wire faults over the gossip frames ------------------------------------

std::size_t box_size(const Peer& p) { return p.agent->ballot_box().size(); }

TEST(GossipFaults, DamagedFullMessageRejectsWholesale) {
  VoteConfig config;
  Peer a = make_peer(1, config, 41), b = make_peer(2, config, 42);
  a.agent->cast_vote(5, Opinion::kPositive, 1);
  for (const auto fault : {WireFault::kTruncated, WireFault::kCorrupted}) {
    const auto leg = gossip_send(*a.agent, *b.agent, 10, fault, 7);
    EXPECT_EQ(leg.result, ReceiveResult::kBadSignature);
    EXPECT_EQ(box_size(b), 0u);  // nothing merged, box not poisoned
  }
}

TEST(GossipFaults, DamagedDigestFallsBackToFullAndStillRejects) {
  VoteConfig config;
  Peer a = make_peer(1, config, 43), b = make_peer(2, config, 44);
  a.agent->cast_vote(5, Opinion::kPositive, 1);
  (void)gossip_send(*a.agent, *b.agent, 10);  // prime counterpart memory
  const std::size_t before = box_size(b);

  // salt with bit 6 clear routes the damage to the digest frame.
  const std::uint64_t digest_salt = 0x0;
  const auto leg =
      gossip_send(*a.agent, *b.agent, 20, WireFault::kCorrupted, digest_salt);
  EXPECT_TRUE(leg.fallback_full);
  EXPECT_FALSE(leg.delta);
  EXPECT_EQ(leg.result, ReceiveResult::kBadSignature);
  EXPECT_EQ(box_size(b), before);
}

TEST(GossipFaults, DamagedDeltaRejectsEvenWhenNothingWasMissing) {
  VoteConfig config;
  Peer a = make_peer(1, config, 45), b = make_peer(2, config, 46);
  a.agent->cast_vote(5, Opinion::kPositive, 1);
  (void)gossip_send(*a.agent, *b.agent, 10);
  const std::size_t before = box_size(b);

  // salt with bit 6 set routes the damage to the delta frame; the sender
  // must ship a (damaged) delta even though the digest covers everything,
  // so the leg rejects exactly like a damaged full exchange would.
  const std::uint64_t delta_salt = 0x40;
  for (const auto fault : {WireFault::kTruncated, WireFault::kCorrupted}) {
    const auto leg = gossip_send(*a.agent, *b.agent, 20, fault, delta_salt);
    EXPECT_TRUE(leg.delta);
    EXPECT_EQ(leg.result, ReceiveResult::kBadSignature);
    EXPECT_EQ(box_size(b), before);
  }
}

TEST(GossipFaults, ForgedDeltaBindingRejects) {
  VoteConfig config;
  Peer a = make_peer(1, config, 47), b = make_peer(2, config, 48);
  for (ModeratorId m = 0; m < 4; ++m) {
    a.agent->cast_vote(m, Opinion::kPositive, static_cast<Time>(m + 1));
  }
  const auto full = a.agent->outgoing_votes(10);
  const VoteDigestMessage digest = make_digest(full);
  const auto missing = b.agent->scan_digest(digest);
  ASSERT_EQ(missing.size(), full.votes.size());
  VoteDeltaMessage delta = a.agent->build_delta(full, missing);

  // Tamper with one carried vote: the per-entry pin to the digest line (or
  // failing that, the signature) must reject the whole frame.
  VoteDeltaMessage tampered = delta;
  tampered.votes[1].opinion = Opinion::kNegative;
  EXPECT_EQ(b.agent->receive_delta(digest, &tampered, 20),
            ReceiveResult::kBadSignature);
  // Wrong binding checksum.
  VoteDeltaMessage rebound = delta;
  rebound.bound_checksum ^= 1;
  EXPECT_EQ(b.agent->receive_delta(digest, &rebound, 20),
            ReceiveResult::kBadSignature);
  // Missing entries but no delta frame at all.
  EXPECT_EQ(b.agent->receive_delta(digest, nullptr, 20),
            ReceiveResult::kBadSignature);
  EXPECT_EQ(box_size(b), 0u);
  // The untampered frame is accepted.
  EXPECT_EQ(b.agent->receive_delta(digest, &delta, 20),
            ReceiveResult::kAccepted);
  EXPECT_EQ(box_size(b), full.votes.size());
}

}  // namespace
}  // namespace tribvote::vote
