#include "bt/piece_picker.hpp"

#include <gtest/gtest.h>

#include <map>

namespace tribvote::bt {
namespace {

class PiecePickerTest : public ::testing::Test {
 protected:
  util::Rng rng_{1};
};

TEST_F(PiecePickerTest, AvailabilityBookkeeping) {
  PiecePicker picker(4);
  picker.add_have(0);
  picker.add_have(0);
  picker.add_have(2);
  EXPECT_EQ(picker.availability(0), 2u);
  EXPECT_EQ(picker.availability(1), 0u);
  EXPECT_EQ(picker.availability(2), 1u);
  picker.remove_have(0);
  EXPECT_EQ(picker.availability(0), 1u);
}

TEST_F(PiecePickerTest, BitfieldBulkOps) {
  PiecePicker picker(6);
  Bitfield bf(6);
  bf.set(1);
  bf.set(4);
  picker.add_bitfield(bf);
  picker.add_bitfield(bf);
  EXPECT_EQ(picker.availability(1), 2u);
  EXPECT_EQ(picker.availability(4), 2u);
  EXPECT_EQ(picker.availability(0), 0u);
  picker.remove_bitfield(bf);
  EXPECT_EQ(picker.availability(1), 1u);
}

TEST_F(PiecePickerTest, PicksRarestEligible) {
  PiecePicker picker(3);
  // Piece 0: avail 3, piece 1: avail 1, piece 2: avail 2.
  for (int i = 0; i < 3; ++i) picker.add_have(0);
  picker.add_have(1);
  picker.add_have(2);
  picker.add_have(2);

  Bitfield uploader(3);
  uploader.set_all();
  Bitfield downloader(3);  // lacks everything
  std::vector<bool> in_flight(3, false);
  EXPECT_EQ(picker.pick(uploader, downloader, in_flight, rng_), 1u);
}

TEST_F(PiecePickerTest, SkipsPiecesDownloaderHas) {
  PiecePicker picker(2);
  picker.add_have(0);  // availability: piece0=1, piece1=0
  Bitfield uploader(2);
  uploader.set_all();
  Bitfield downloader(2);
  downloader.set(1);
  std::vector<bool> in_flight(2, false);
  // Piece 1 has availability 0 (rarer) but downloader already has it.
  EXPECT_EQ(picker.pick(uploader, downloader, in_flight, rng_), 0u);
}

TEST_F(PiecePickerTest, SkipsInFlightPieces) {
  PiecePicker picker(2);
  Bitfield uploader(2);
  uploader.set_all();
  Bitfield downloader(2);
  std::vector<bool> in_flight{true, false};
  EXPECT_EQ(picker.pick(uploader, downloader, in_flight, rng_), 1u);
}

TEST_F(PiecePickerTest, SkipsPiecesUploaderLacks) {
  PiecePicker picker(3);
  Bitfield uploader(3);
  uploader.set(2);
  Bitfield downloader(3);
  std::vector<bool> in_flight(3, false);
  EXPECT_EQ(picker.pick(uploader, downloader, in_flight, rng_), 2u);
}

TEST_F(PiecePickerTest, ReturnsNoPieceWhenNothingEligible) {
  PiecePicker picker(2);
  Bitfield uploader(2);
  Bitfield downloader(2);
  std::vector<bool> in_flight(2, false);
  EXPECT_EQ(picker.pick(uploader, downloader, in_flight, rng_), kNoPiece);

  uploader.set(0);
  downloader.set(0);
  EXPECT_EQ(picker.pick(uploader, downloader, in_flight, rng_), kNoPiece);
}

TEST_F(PiecePickerTest, TieBreakIsRoughlyUniform) {
  PiecePicker picker(4);  // all availability 0: four-way tie
  Bitfield uploader(4);
  uploader.set_all();
  Bitfield downloader(4);
  std::vector<bool> in_flight(4, false);
  std::map<std::size_t, int> histogram;
  for (int i = 0; i < 4000; ++i) {
    ++histogram[picker.pick(uploader, downloader, in_flight, rng_)];
  }
  ASSERT_EQ(histogram.size(), 4u);
  for (const auto& [piece, count] : histogram) {
    EXPECT_NEAR(count, 1000, 150) << "piece " << piece;
  }
}

// Property: the picked piece always satisfies the eligibility invariant and
// rarest-first optimality, across random configurations.
class PickerPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(PickerPropertyTest, PickedPieceIsAlwaysEligibleAndRarest) {
  util::Rng rng(GetParam());
  const std::size_t n = 1 + rng.next_below(64);
  PiecePicker picker(n);
  Bitfield uploader(n), downloader(n);
  std::vector<bool> in_flight(n, false);
  for (std::size_t i = 0; i < n; ++i) {
    const auto avail = rng.next_below(5);
    for (std::uint64_t a = 0; a < avail; ++a) picker.add_have(i);
    if (rng.next_bool(0.6)) uploader.set(i);
    if (rng.next_bool(0.3)) downloader.set(i);
    in_flight[i] = rng.next_bool(0.2);
  }
  const std::size_t pick = picker.pick(uploader, downloader, in_flight, rng);
  if (pick == kNoPiece) {
    for (std::size_t i = 0; i < n; ++i) {
      EXPECT_FALSE(uploader.test(i) && !downloader.test(i) && !in_flight[i])
          << "eligible piece " << i << " was not picked";
    }
  } else {
    EXPECT_TRUE(uploader.test(pick));
    EXPECT_FALSE(downloader.test(pick));
    EXPECT_FALSE(in_flight[pick]);
    for (std::size_t i = 0; i < n; ++i) {
      if (uploader.test(i) && !downloader.test(i) && !in_flight[i]) {
        EXPECT_LE(picker.availability(pick), picker.availability(i));
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(RandomConfigs, PickerPropertyTest,
                         ::testing::Range<std::uint64_t>(0, 40));

}  // namespace
}  // namespace tribvote::bt
