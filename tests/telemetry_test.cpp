// Telemetry plane (DESIGN.md §11): registry determinism across lane
// counts, histogram bucket edges, the Chrome-trace exporter's JSON, the
// degradation-counter port, and the whole-runner guarantees — counters
// never perturb a run, and totals are bit-identical at any shard count.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/runner.hpp"
#include "metrics/degradation.hpp"
#include "telemetry/registry.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"
#include "telemetry/trace_writer.hpp"
#include "trace/generator.hpp"

namespace tribvote {
namespace {

// ---- registry basics -------------------------------------------------------

TEST(Registry, CounterAddAndTotal) {
  telemetry::Registry reg(1);
  const auto id = reg.counter("a");
  reg.add(id);
  reg.add(id, 41);
  EXPECT_EQ(reg.total(id), 42u);
  EXPECT_EQ(reg.total_by_name("a"), 42u);
  EXPECT_EQ(reg.total_by_name("missing"), 0u);
}

TEST(Registry, RegistrationIsIdempotentPerName) {
  telemetry::Registry reg(2);
  const auto a = reg.counter("x");
  const auto b = reg.counter("x");
  EXPECT_EQ(a.v, b.v);
  reg.add(a);
  reg.add(b);
  EXPECT_EQ(reg.total(a), 2u);
  const auto h1 = reg.histogram("h", {1.0, 2.0});
  const auto h2 = reg.histogram("h", {1.0, 2.0});
  EXPECT_EQ(h1.v, h2.v);
}

TEST(Registry, SetTotalOverridesAndClearsLaneDeltas) {
  telemetry::Registry reg(2);
  const auto id = reg.counter("mirror");
  telemetry::set_current_lane(1);
  reg.add(id, 7);  // stale lane delta, superseded by the serial mirror
  telemetry::set_current_lane(0);
  reg.set_total(id, 100);
  EXPECT_EQ(reg.total(id), 100u);
  reg.merge_lanes();
  EXPECT_EQ(reg.total(id), 100u);
}

TEST(Registry, GaugeStoresDoubles) {
  telemetry::Registry reg(1);
  const auto id = reg.gauge("g");
  reg.set_gauge(id, 2.5);
  EXPECT_DOUBLE_EQ(reg.gauge_value(id), 2.5);
  ASSERT_EQ(reg.gauges().size(), 1u);
  EXPECT_EQ(reg.gauges()[0].first, "g");
}

TEST(Registry, NullHandlesAreInertAndCheap) {
  const telemetry::Counter counter;   // telemetry off: no registry behind it
  const telemetry::Histogram histogram;
  counter.add();
  histogram.observe(3.0);
  EXPECT_FALSE(counter.enabled());
  EXPECT_FALSE(histogram.enabled());
}

// ---- histogram edges -------------------------------------------------------

TEST(Histogram, EdgeCases) {
  telemetry::Registry reg(1);
  const auto id = reg.histogram("h", {1.0, 5.0, 10.0});
  reg.observe(id, 0.0);     // below first edge -> bucket 0
  reg.observe(id, 1.0);     // exactly on an edge -> that bucket (v <= edge)
  reg.observe(id, 5.0);     // on the middle edge -> bucket 1
  reg.observe(id, 10.0);    // on the last edge -> bucket 2
  reg.observe(id, 10.5);    // above the last edge -> overflow
  reg.observe(id, std::nan(""));  // NaN -> overflow
  const std::vector<std::uint64_t> buckets = reg.buckets(id);
  ASSERT_EQ(buckets.size(), 4u);
  EXPECT_EQ(buckets[0], 2u);
  EXPECT_EQ(buckets[1], 1u);
  EXPECT_EQ(buckets[2], 1u);
  EXPECT_EQ(buckets[3], 2u);
  EXPECT_EQ(reg.edges(id).size(), 3u);
}

TEST(Histogram, ColumnsExpandBucketNames) {
  telemetry::Registry reg(1);
  (void)reg.counter("c");
  const auto id = reg.histogram("h", {1.0, 2.5, 10.0});
  reg.observe(id, 2.0);
  const auto cols = reg.columns();
  ASSERT_EQ(cols.size(), 5u);  // 1 counter + 3 buckets + overflow
  EXPECT_EQ(cols[0].first, "c");
  EXPECT_EQ(cols[1].first, "h.le1");
  EXPECT_EQ(cols[2].first, "h.le2.5");
  EXPECT_EQ(cols[3].first, "h.le10");
  EXPECT_EQ(cols[4].first, "h.inf");
  EXPECT_EQ(cols[2].second, 1u);
}

// ---- lane-merge determinism ------------------------------------------------

/// Spread the same 1000 increments and observations over `lanes` worker
/// lanes, round-robin, and return the resulting columns.
std::vector<std::pair<std::string, std::uint64_t>> lane_spread_columns(
    std::size_t lanes) {
  telemetry::Registry reg(lanes);
  const auto c = reg.counter("c");
  const auto h = reg.histogram("h", {10.0, 100.0, 500.0});
  for (std::size_t i = 0; i < 1000; ++i) {
    telemetry::set_current_lane(i % lanes);
    reg.add(c, i % 7);
    reg.observe(h, static_cast<double>(i));
    telemetry::set_current_lane(0);
  }
  reg.merge_lanes();
  return reg.columns();
}

TEST(Registry, MergeIsDeterministicAcrossLaneCounts) {
  const auto one = lane_spread_columns(1);
  const auto four = lane_spread_columns(4);
  const auto eight = lane_spread_columns(8);
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, eight);
}

TEST(Registry, ReadsFoldUnmergedLaneDeltas) {
  telemetry::Registry reg(4);
  const auto id = reg.counter("c");
  telemetry::set_current_lane(3);
  reg.add(id, 5);
  telemetry::set_current_lane(0);
  EXPECT_EQ(reg.total(id), 5u);  // no merge_lanes() yet
  reg.merge_lanes();
  EXPECT_EQ(reg.total(id), 5u);  // merge must not double-count
}

// ---- Chrome-trace writer ---------------------------------------------------

struct ParsedEvent {
  std::string name;
  std::uint32_t tid = 0;
  std::int64_t ts = 0;
  std::int64_t dur = 0;
};

/// Pull one field's numeric value out of a single-event JSON line.
std::int64_t field_of(const std::string& line, const std::string& key) {
  const std::size_t at = line.find("\"" + key + "\":");
  EXPECT_NE(at, std::string::npos) << key << " missing in " << line;
  return std::strtoll(line.c_str() + at + key.size() + 3, nullptr, 10);
}

std::vector<ParsedEvent> parse_trace_file(const std::string& path,
                                          std::string* whole = nullptr) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::stringstream ss;
  ss << in.rdbuf();
  const std::string doc = ss.str();
  if (whole != nullptr) *whole = doc;
  // One event per line after the header line; names are simple literals.
  std::vector<ParsedEvent> events;
  std::istringstream lines(doc);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.find("\"ph\":\"X\"") == std::string::npos) continue;
    ParsedEvent e;
    const std::size_t name_at = line.find("\"name\":\"");
    EXPECT_NE(name_at, std::string::npos);
    const std::size_t name_end = line.find('"', name_at + 8);
    e.name = line.substr(name_at + 8, name_end - (name_at + 8));
    e.tid = static_cast<std::uint32_t>(field_of(line, "tid"));
    e.ts = field_of(line, "ts");
    e.dur = field_of(line, "dur");
    events.push_back(e);
  }
  return events;
}

TEST(ChromeTraceWriter, SortsByTidThenTsParentsFirst) {
  telemetry::TraceBuffer buf;
  // Inserted out of order on purpose; the child shares its parent's start.
  buf.record("child", 100, 40, /*tid=*/0);
  buf.record("other_tid", 5, 10, /*tid=*/1);
  buf.record("parent", 100, 90, /*tid=*/0);
  buf.record("early", 10, 20, /*tid=*/0);
  const std::string path =
      ::testing::TempDir() + "/telemetry_writer_test.json";
  ASSERT_TRUE(telemetry::ChromeTraceWriter::write(path, buf));

  std::string doc;
  const auto events = parse_trace_file(path, &doc);
  ASSERT_EQ(events.size(), 4u);
  EXPECT_EQ(events[0].name, "early");
  EXPECT_EQ(events[1].name, "parent");  // longer span first at equal ts
  EXPECT_EQ(events[2].name, "child");
  EXPECT_EQ(events[3].name, "other_tid");

  // Well-formed JSON skeleton, no trailing commas.
  EXPECT_NE(doc.find("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["),
            std::string::npos);
  EXPECT_EQ(doc.find(",]"), std::string::npos);
  EXPECT_EQ(doc.find(",}"), std::string::npos);
  EXPECT_EQ(doc.find("},{"), std::string::npos);  // one event per line

  // Monotone timestamps within each tid.
  std::map<std::uint32_t, std::int64_t> last_ts;
  for (const auto& e : events) {
    const auto it = last_ts.find(e.tid);
    if (it != last_ts.end()) EXPECT_GE(e.ts, it->second);
    last_ts[e.tid] = e.ts;
  }
}

TEST(ChromeTraceWriter, EscapesNamesAndEmitsArgs) {
  telemetry::TraceBuffer buf;
  buf.record_arg("with\"quote", 0, 1, /*arg=*/7, /*tid=*/0);
  const std::string path =
      ::testing::TempDir() + "/telemetry_writer_escape.json";
  ASSERT_TRUE(telemetry::ChromeTraceWriter::write(path, buf));
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  EXPECT_NE(ss.str().find("with\\\"quote"), std::string::npos);
  EXPECT_NE(ss.str().find("\"args\":{\"n\":7}"), std::string::npos);
}

TEST(Span, NestedSpansAreContainedAndRecordedInnerFirst) {
  telemetry::TelemetryConfig config;
  config.mode = telemetry::TelemetryMode::kTrace;
  telemetry::Telemetry tel(config);
  {
    telemetry::Span outer(&tel, "outer");
    outer.set_arg(3);
    { telemetry::Span inner(&tel, "inner"); }
  }
  const auto& events = tel.trace().events();
  ASSERT_EQ(events.size(), 2u);  // inner destructs (and records) first
  EXPECT_STREQ(events[0].name, "inner");
  EXPECT_STREQ(events[1].name, "outer");
  EXPECT_GE(events[0].ts_us, events[1].ts_us);
  EXPECT_LE(events[0].ts_us + events[0].dur_us,
            events[1].ts_us + events[1].dur_us);
  EXPECT_TRUE(events[1].has_arg);
  EXPECT_EQ(events[1].arg, 3u);
}

TEST(Span, CountersModeRecordsNoSpans) {
  telemetry::TelemetryConfig config;
  config.mode = telemetry::TelemetryMode::kCounters;
  telemetry::Telemetry tel(config);
  { telemetry::Span span(&tel, "phase"); }
  { telemetry::Span span(nullptr, "off-entirely"); }
  EXPECT_EQ(tel.trace().size(), 0u);
}

// ---- degradation port ------------------------------------------------------

TEST(Degradation, ColumnSchemaIsByteStable) {
  // These names are the abl_fault_sweep.csv golden schema — append-only.
  const std::vector<std::string> expected{
      "encounters_hit",  "dropped_requests", "dropped_replies",
      "delayed",         "late_drops",       "crashes",
      "unreachable",     "corrupted",        "rejected",
      "one_sided",       "vp_timeouts",      "vp_retries",
      "vp_retry_successes", "mod_reoffers",  "pss_drops",
      "partitioned",     "ge_bad_encounters"};
  sim::FaultStats stats;
  const auto cols = metrics::degradation_columns(stats);
  ASSERT_EQ(cols.size(), expected.size());
  for (std::size_t i = 0; i < cols.size(); ++i) {
    EXPECT_EQ(cols[i].first, expected[i]) << "column " << i;
  }
}

TEST(Degradation, RegistryPortMirrorsValues) {
  sim::FaultStats stats;
  stats.vote.dropped_requests = 3;
  stats.vox.timeouts = 2;
  stats.vox.retries = 5;
  stats.moderation.reoffers = 4;
  stats.newscast.dropped_requests = 6;

  telemetry::Registry reg(1);
  const auto ids = metrics::register_degradation(reg);
  ASSERT_EQ(ids.size(), metrics::kDegradationColumnNames.size());
  metrics::update_degradation(reg, ids, stats);

  const auto values = metrics::degradation_values(stats);
  for (std::size_t i = 0; i < ids.size(); ++i) {
    const std::string name =
        std::string("fault.") + metrics::kDegradationColumnNames[i];
    EXPECT_EQ(reg.total_by_name(name), values[i]) << name;
  }
  EXPECT_EQ(reg.total_by_name("fault.vp_retries"), 5u);
  EXPECT_EQ(reg.total_by_name("fault.pss_drops"), 6u);
}

// ---- whole-runner guarantees -----------------------------------------------

trace::Trace small_trace(std::uint64_t seed = 5) {
  trace::GeneratorParams params;
  params.n_peers = 20;
  params.n_swarms = 3;
  params.duration = kDay;
  params.founder_fraction = 0.7;
  params.arrival_window = 0.3;
  return trace::generate_trace(params, seed);
}

sim::FaultConfig lossy_faults() {
  sim::FaultConfig f;
  f.loss = 0.2;
  f.delay_rate = 0.1;
  f.max_delay = 40;
  f.crash_rate = 0.05;
  f.corrupt_rate = 0.1;
  return f;
}

bool stats_equal(const core::RunStats& a, const core::RunStats& b) {
  return a.downloads_completed == b.downloads_completed &&
         a.vote_exchanges == b.vote_exchanges &&
         a.moderation_exchanges == b.moderation_exchanges &&
         a.barter_exchanges == b.barter_exchanges &&
         a.votes_accepted == b.votes_accepted &&
         a.votes_rejected_inexperienced == b.votes_rejected_inexperienced &&
         a.vp_requests_answered == b.vp_requests_answered &&
         a.vp_requests_null == b.vp_requests_null;
}

TEST(TelemetryRunner, CountersNeverPerturbTheRun) {
  const trace::Trace tr = small_trace();
  core::ScenarioConfig off_config;
  core::ScenarioConfig on_config;
  on_config.telemetry.mode = telemetry::TelemetryMode::kTrace;
  core::ScenarioRunner off(tr, off_config, 42);
  core::ScenarioRunner on(tr, on_config, 42);
  off.run_until(tr.duration);
  on.run_until(tr.duration);
  EXPECT_TRUE(stats_equal(off.stats(), on.stats()));
  EXPECT_EQ(off.telemetry(), nullptr);
  ASSERT_NE(on.telemetry(), nullptr);
  EXPECT_GT(on.telemetry()->registry().total_by_name("vote.exchanges"), 0u);
  EXPECT_GT(on.telemetry()->trace().size(), 0u);
}

/// Registry columns of a lossy run at a given shard count, with the
/// kernel.* schedule counters (shard-DEPENDENT by design: they describe
/// the parallel schedule itself, see DESIGN.md §11) filtered out.
std::vector<std::pair<std::string, std::uint64_t>> lossy_run_columns(
    std::size_t shards) {
  const trace::Trace tr = small_trace();
  core::ScenarioConfig config;
  config.shards = shards;
  config.faults = lossy_faults();
  config.telemetry.mode = telemetry::TelemetryMode::kCounters;
  core::ScenarioRunner runner(tr, config, 42);
  runner.run_until(tr.duration);
  auto cols = runner.telemetry()->registry().columns();
  std::erase_if(cols, [](const auto& c) {
    return c.first.rfind("kernel.", 0) == 0;
  });
  return cols;
}

TEST(TelemetryRunner, TotalsAreBitIdenticalAtAnyShardCount) {
  const auto one = lossy_run_columns(1);
  const auto four = lossy_run_columns(4);
  const auto eight = lossy_run_columns(8);
  ASSERT_FALSE(one.empty());
  EXPECT_EQ(one, four);
  EXPECT_EQ(one, eight);
  // The lossy config actually exercised the fault columns.
  std::uint64_t fault_total = 0;
  for (const auto& [name, value] : one) {
    if (name.rfind("fault.", 0) == 0) fault_total += value;
  }
  EXPECT_GT(fault_total, 0u);
}

TEST(TelemetryRunner, RoundCsvCarriesRegistryAndFaultColumns) {
  const trace::Trace tr = small_trace();
  core::ScenarioConfig config;
  config.faults = lossy_faults();
  config.telemetry.mode = telemetry::TelemetryMode::kCounters;
  core::ScenarioRunner runner(tr, config, 7);
  runner.run_until(tr.duration);
  ASSERT_NE(runner.telemetry(), nullptr);
  EXPECT_GT(runner.telemetry()->round_samples(), 0u);

  const std::string path = ::testing::TempDir() + "/telemetry_rounds.csv";
  ASSERT_TRUE(runner.telemetry()->write_round_csv(path));
  std::ifstream in(path);
  std::string header;
  ASSERT_TRUE(std::getline(in, header));
  EXPECT_EQ(header.rfind("t_hours,round,", 0), 0u);
  EXPECT_NE(header.find("vote.exchanges"), std::string::npos);
  EXPECT_NE(header.find("fault.encounters_hit"), std::string::npos);
  EXPECT_NE(header.find("vote.list_size.inf"), std::string::npos);
  std::size_t rows = 0;
  std::string line;
  while (std::getline(in, line)) ++rows;
  EXPECT_EQ(rows, runner.telemetry()->round_samples());
}

TEST(TelemetryRunner, RunnerTraceExportIsWellFormed) {
  const trace::Trace tr = small_trace();
  core::ScenarioConfig config;
  config.telemetry.mode = telemetry::TelemetryMode::kTrace;
  core::ScenarioRunner runner(tr, config, 11);
  runner.run_until(6 * kHour);
  const std::string path = ::testing::TempDir() + "/telemetry_runner.json";
  ASSERT_TRUE(runner.telemetry()->write_chrome_trace(path));

  std::string doc;
  const auto events = parse_trace_file(path, &doc);
  ASSERT_FALSE(events.empty());
  EXPECT_EQ(doc.find(",]"), std::string::npos);
  std::map<std::uint32_t, std::int64_t> last_ts;
  bool saw_round = false;
  for (const auto& e : events) {
    const auto it = last_ts.find(e.tid);
    if (it != last_ts.end()) EXPECT_GE(e.ts, it->second);
    last_ts[e.tid] = e.ts;
    if (e.name == "kernel.round") saw_round = true;
  }
  EXPECT_TRUE(saw_round);
}

}  // namespace
}  // namespace tribvote
