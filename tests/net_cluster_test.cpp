// Peer discovery and the multi-peer runtime (PROTOCOL.md §8, DESIGN.md §14):
// signed descriptors, PeerDirectory view maintenance, PEER_EXCHANGE frame
// handling in NodeService, and the round-barrier digest identity between an
// in-process TCP cluster and the simulator's oracle-sampled agents.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "crypto/schnorr.hpp"
#include "net/codec.hpp"
#include "net/event_loop.hpp"
#include "net/node_service.hpp"
#include "net/peer_directory.hpp"
#include "pss/online_directory.hpp"
#include "pss/oracle.hpp"
#include "telemetry/registry.hpp"
#include "util/rng.hpp"
#include "vote/agent.hpp"
#include "vote/encounter.hpp"

namespace tribvote::net {
namespace {

constexpr int kStepMs = 5000;

crypto::KeyPair keys_for(std::uint64_t seed) {
  util::Rng rng(seed);
  return crypto::generate_keypair(rng);
}

PeerDescriptor descriptor_for(PeerId peer, const crypto::KeyPair& keys,
                              Time heartbeat,
                              std::uint16_t port = 7000) {
  util::Rng rng(peer * 31 + 7);
  return make_descriptor(peer, keys, 0x7f000001u, port, heartbeat, rng);
}

// ---- descriptor signatures -------------------------------------------------

TEST(PeerDescriptor, SignedDescriptorVerifies) {
  const crypto::KeyPair keys = keys_for(11);
  const PeerDescriptor d = descriptor_for(3, keys, 42);
  EXPECT_EQ(d.peer, 3u);
  EXPECT_EQ(d.heartbeat, 42);
  EXPECT_TRUE(verify_descriptor(d));
}

TEST(PeerDescriptor, TamperedFieldsFailVerification) {
  const crypto::KeyPair keys = keys_for(12);
  const PeerDescriptor good = descriptor_for(3, keys, 42);

  PeerDescriptor retargeted = good;
  retargeted.port = good.port + 1;  // relay redirects the dial address
  EXPECT_FALSE(verify_descriptor(retargeted));

  PeerDescriptor aged = good;
  aged.heartbeat += 100;  // relay forges freshness
  EXPECT_FALSE(verify_descriptor(aged));

  PeerDescriptor stolen = good;
  stolen.peer = 4;  // relay reassigns the identity
  EXPECT_FALSE(verify_descriptor(stolen));
}

// ---- PeerDirectory view maintenance ----------------------------------------

PeerDirectory make_directory(PeerId self, const crypto::KeyPair& keys,
                             PeerDirectoryConfig config = {},
                             std::uint64_t seed = 99) {
  return PeerDirectory(self, keys, 0x7f000001u, 9999, config,
                       util::Rng(seed));
}

TEST(PeerDirectory, FresherHeartbeatWinsStaleRejected) {
  const crypto::KeyPair self_keys = keys_for(1);
  const crypto::KeyPair peer_keys = keys_for(2);
  PeerDirectory dir = make_directory(1, self_keys);

  EXPECT_TRUE(dir.merge(descriptor_for(2, peer_keys, 10), 10));
  EXPECT_EQ(dir.view_count(), 1u);

  // Stale and equal heartbeats keep ours; fresher replaces.
  EXPECT_FALSE(dir.merge(descriptor_for(2, peer_keys, 5), 10));
  EXPECT_FALSE(dir.merge(descriptor_for(2, peer_keys, 10), 10));
  EXPECT_TRUE(dir.merge(descriptor_for(2, peer_keys, 20), 20));

  PeerDescriptor held;
  ASSERT_TRUE(dir.lookup(2, held));
  EXPECT_EQ(held.heartbeat, 20);
}

TEST(PeerDirectory, OwnEntryNeverOverridden) {
  const crypto::KeyPair self_keys = keys_for(1);
  PeerDirectory dir = make_directory(1, self_keys);
  const crypto::KeyPair mallory = keys_for(66);
  EXPECT_FALSE(dir.merge(descriptor_for(1, mallory, 1000), 1000));
  PeerDescriptor held;
  ASSERT_TRUE(dir.lookup(1, held));
  EXPECT_EQ(held.key.y, self_keys.pub.y);
}

TEST(PeerDirectory, CapEvictsStalest) {
  PeerDirectoryConfig config;
  config.view_size = 2;
  PeerDirectory dir = make_directory(1, keys_for(1), config);
  dir.merge(descriptor_for(2, keys_for(2), 30), 30);
  dir.merge(descriptor_for(3, keys_for(3), 10), 30);  // stalest
  dir.merge(descriptor_for(4, keys_for(4), 20), 30);
  EXPECT_EQ(dir.view_count(), 2u);
  PeerDescriptor out;
  EXPECT_FALSE(dir.lookup(3, out));
  EXPECT_TRUE(dir.lookup(2, out));
  EXPECT_TRUE(dir.lookup(4, out));
}

TEST(PeerDirectory, TtlEvictsDeadEntriesButNeverSelf) {
  PeerDirectoryConfig config;
  config.entry_ttl = 100;
  PeerDirectory dir = make_directory(1, keys_for(1), config);
  dir.merge(descriptor_for(2, keys_for(2), 0), 0);
  dir.merge(descriptor_for(3, keys_for(3), 80), 80);
  EXPECT_EQ(dir.evict_expired(150), 1u);  // only peer 2 aged out
  EXPECT_EQ(dir.view_count(), 1u);
  PeerDescriptor out;
  EXPECT_TRUE(dir.lookup(1, out));  // self entry is permanent
  EXPECT_TRUE(dir.lookup(3, out));
}

TEST(PeerDirectory, DialFailuresEvictAndSuccessResets) {
  PeerDirectoryConfig config;
  config.max_dial_failures = 3;
  PeerDirectory dir = make_directory(1, keys_for(1), config);
  dir.merge(descriptor_for(2, keys_for(2), 10), 10);

  EXPECT_FALSE(dir.note_dial_failure(2));
  EXPECT_FALSE(dir.note_dial_failure(2));
  dir.note_dial_success(2);  // resets the streak
  EXPECT_FALSE(dir.note_dial_failure(2));
  EXPECT_FALSE(dir.note_dial_failure(2));
  EXPECT_TRUE(dir.note_dial_failure(2));  // third consecutive: evicted
  EXPECT_EQ(dir.view_count(), 0u);

  // A fresher descriptor resurrects the peer with a clean slate.
  EXPECT_TRUE(dir.merge(descriptor_for(2, keys_for(2), 20), 20));
  EXPECT_FALSE(dir.note_dial_failure(2));
}

// ---- quarantine invariants (DESIGN.md §16) ---------------------------------

TEST(PeerDirectory, QuarantineHidesPeerFromEveryReadPath) {
  PeerDirectoryConfig config;
  config.max_dial_failures = 2;
  PeerDirectory dir = make_directory(1, keys_for(1), config);
  dir.merge(descriptor_for(2, keys_for(2), 10), 10);
  dir.merge(descriptor_for(3, keys_for(3), 10), 10);

  EXPECT_FALSE(dir.note_dial_failure(2, 50));
  EXPECT_TRUE(dir.note_dial_failure(2, 60));  // second strike: quarantined

  // The tombstone is invisible on every read path the runtime uses to pick
  // peers — a black-holed address must not keep soaking up dial slots.
  EXPECT_EQ(dir.view_count(), 1u);
  EXPECT_EQ(dir.quarantined_count(), 1u);
  PeerDescriptor out;
  EXPECT_FALSE(dir.lookup(2, out));
  EXPECT_EQ(dir.known_peers(), (std::vector<PeerId>{3}));
  const PeerExchangeMessage m = dir.build_shuffle(70, false);
  for (const PeerDescriptor& d : m.descriptors) EXPECT_NE(d.peer, 2u);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(dir.sample(1), 3u);
}

TEST(PeerDirectory, QuarantineLiftsOnlyForStrictlyFresherDescriptor) {
  PeerDirectoryConfig config;
  config.max_dial_failures = 1;
  PeerDirectory dir = make_directory(1, keys_for(1), config);
  dir.merge(descriptor_for(2, keys_for(2), 10), 10);
  EXPECT_TRUE(dir.note_dial_failure(2, 20));

  // Re-gossiped copies of the descriptor we already failed to dial must
  // not resurrect the peer — that replay loop is what quarantine exists
  // to break. Only the peer itself can mint a fresher heartbeat.
  EXPECT_FALSE(dir.merge(descriptor_for(2, keys_for(2), 5), 20));
  EXPECT_FALSE(dir.merge(descriptor_for(2, keys_for(2), 10), 20));
  EXPECT_EQ(dir.view_count(), 0u);
  EXPECT_EQ(dir.quarantined_count(), 1u);

  EXPECT_TRUE(dir.merge(descriptor_for(2, keys_for(2), 30), 30));
  EXPECT_EQ(dir.view_count(), 1u);
  EXPECT_EQ(dir.quarantined_count(), 0u);
  PeerDescriptor out;
  EXPECT_TRUE(dir.lookup(2, out));
  EXPECT_EQ(out.heartbeat, 30);
  // Resurrection wipes the failure streak: the next miss is judged as a
  // brand-new peer's first (which, at max_dial_failures = 1, quarantines
  // again — but from a streak of zero, not the old one carried over).
  EXPECT_TRUE(dir.note_dial_failure(2, 40));
}

TEST(PeerDirectory, QuarantineTtlExpiresTheTombstone) {
  PeerDirectoryConfig config;
  config.max_dial_failures = 1;
  config.quarantine_ttl = 100;
  config.entry_ttl = 1000000;
  PeerDirectory dir = make_directory(1, keys_for(1), config);
  dir.merge(descriptor_for(2, keys_for(2), 10), 10);
  EXPECT_TRUE(dir.note_dial_failure(2, 50));
  EXPECT_EQ(dir.quarantined_count(), 1u);

  EXPECT_EQ(dir.evict_expired(149), 0u);  // still inside quarantine_ttl
  EXPECT_EQ(dir.quarantined_count(), 1u);
  EXPECT_EQ(dir.evict_expired(151), 1u);
  EXPECT_EQ(dir.quarantined_count(), 0u);

  // Once the tombstone ages out, its replay memory goes with it: the same
  // stale descriptor is admissible again (and gets probed again).
  EXPECT_TRUE(dir.merge(descriptor_for(2, keys_for(2), 10), 151));
  EXPECT_EQ(dir.view_count(), 1u);
}

TEST(PeerDirectory, CapEvictionSkipsQuarantinedTombstones) {
  PeerDirectoryConfig config;
  config.view_size = 2;
  config.max_dial_failures = 1;
  PeerDirectory dir = make_directory(1, keys_for(1), config);
  dir.merge(descriptor_for(2, keys_for(2), 10), 10);
  dir.merge(descriptor_for(3, keys_for(3), 30), 30);
  EXPECT_TRUE(dir.note_dial_failure(2, 40));

  // Overflowing the view must evict the stalest *active* entry, never the
  // tombstone (evicting it would forget the replay protection) — and must
  // terminate even though the tombstone is unevictable.
  dir.merge(descriptor_for(4, keys_for(4), 20), 40);
  dir.merge(descriptor_for(5, keys_for(5), 40), 40);
  EXPECT_EQ(dir.view_count(), 2u);
  EXPECT_EQ(dir.quarantined_count(), 1u);
  PeerDescriptor out;
  EXPECT_FALSE(dir.lookup(4, out));  // stalest active went
  EXPECT_TRUE(dir.lookup(3, out));
  EXPECT_TRUE(dir.lookup(5, out));
  EXPECT_FALSE(dir.merge(descriptor_for(2, keys_for(2), 10), 40));
}

TEST(PeerDirectory, ShuffleLeadsWithFreshSelfThenFreshestRemotes) {
  PeerDirectoryConfig config;
  config.shuffle_size = 3;
  PeerDirectory dir = make_directory(1, keys_for(1), config);
  dir.merge(descriptor_for(2, keys_for(2), 5), 5);
  dir.merge(descriptor_for(3, keys_for(3), 50), 50);
  dir.merge(descriptor_for(4, keys_for(4), 20), 50);

  const PeerExchangeMessage m = dir.build_shuffle(77, true);
  EXPECT_TRUE(m.reply_requested);
  ASSERT_EQ(m.descriptors.size(), 3u);
  EXPECT_EQ(m.descriptors[0].peer, 1u);
  EXPECT_EQ(m.descriptors[0].heartbeat, 77);  // re-signed at send time
  EXPECT_TRUE(verify_descriptor(m.descriptors[0]));
  EXPECT_EQ(m.descriptors[1].peer, 3u);  // freshest remote first
  EXPECT_EQ(m.descriptors[2].peer, 4u);
}

TEST(PeerDirectory, MergeExchangeDropsForgedItemWiseAndCountsProbe) {
  telemetry::Registry registry(1);
  PeerDirectory dir = make_directory(1, keys_for(1));
  dir.set_exchange_probe(
      telemetry::Counter(&registry, registry.counter("pss.exchanges")));

  PeerExchangeMessage m;
  m.descriptors.push_back(descriptor_for(2, keys_for(2), 10));
  PeerDescriptor forged = descriptor_for(3, keys_for(3), 10);
  forged.heartbeat = 99;  // breaks the signature
  m.descriptors.push_back(forged);
  m.descriptors.push_back(descriptor_for(4, keys_for(4), 10));

  const PeerDirectory::MergeStats stats = dir.merge_exchange(m, 10);
  EXPECT_EQ(stats.accepted, 2u);
  EXPECT_EQ(stats.forged, 1u);
  EXPECT_EQ(stats.stale, 0u);
  EXPECT_EQ(dir.view_count(), 2u);
  PeerDescriptor out;
  EXPECT_FALSE(dir.lookup(3, out));
  EXPECT_EQ(registry.total_by_name("pss.exchanges"), 1u);
}

// ---- sample(): the oracle draw-sequence contract ---------------------------

TEST(PeerDirectory, SampleMatchesOracleAtFullMembership) {
  constexpr std::size_t kN = 8;
  constexpr PeerId kSelf = 3;
  constexpr std::uint64_t kSeed = 4242;

  pss::OnlineDirectory online(kN);
  for (PeerId p = 0; p < kN; ++p) online.set_online(p, true);
  pss::OraclePss oracle(online,
                        util::Rng(kSeed).derive(PeerDirectory::kSampleStream));

  const crypto::KeyPair self_keys = keys_for(kSelf);
  PeerDirectory dir(kSelf, self_keys, 0x7f000001u, 9999,
                    PeerDirectoryConfig{}, util::Rng(kSeed));
  for (PeerId p = 0; p < kN; ++p) {
    if (p == kSelf) continue;
    ASSERT_TRUE(dir.merge(descriptor_for(p, keys_for(p), 10), 10));
  }

  for (int i = 0; i < 1000; ++i) {
    // Interleave shuffle builds: self re-signing draws from the signature
    // stream and must never perturb the sampling sequence.
    if (i % 7 == 0) (void)dir.build_shuffle(static_cast<Time>(i), false);
    ASSERT_EQ(dir.sample(kSelf), oracle.sample(kSelf)) << "draw " << i;
  }
}

TEST(PeerDirectory, SampleWithNobodyKnownReturnsInvalid) {
  PeerDirectory dir = make_directory(1, keys_for(1));
  EXPECT_EQ(dir.sample(1), kInvalidPeer);  // only the self entry
}

// ---- PEER_EXCHANGE over the wire -------------------------------------------

struct WireNode {
  std::unique_ptr<crypto::KeyPair> keys;
  std::unique_ptr<vote::VoteAgent> vote;
  std::unique_ptr<NodeService> svc;
  std::unique_ptr<PeerDirectory> dir;
};

WireNode make_wire_node(EventLoop& loop, PeerId id, std::uint64_t seed,
                        bool with_directory,
                        telemetry::Registry* registry = nullptr) {
  WireNode n;
  util::Rng krng(seed);
  n.keys = std::make_unique<crypto::KeyPair>(crypto::generate_keypair(krng));
  n.vote = std::make_unique<vote::VoteAgent>(
      id, *n.keys, vote::VoteConfig{}, [](PeerId) { return true; },
      util::Rng(seed * 7919 + 1));
  n.svc = std::make_unique<NodeService>(loop, id, *n.keys, *n.vote, nullptr,
                                        registry);
  EXPECT_TRUE(n.svc->listen(0));
  if (with_directory) {
    n.dir = std::make_unique<PeerDirectory>(id, *n.keys, 0x7f000001u,
                                            n.svc->listen_port(),
                                            PeerDirectoryConfig{},
                                            util::Rng(seed * 7919 + 3));
    n.svc->set_directory(n.dir.get(), [] { return Time{7}; });
  }
  return n;
}

TEST(NetPeerExchange, ShuffleWithReplyMergesBothViews) {
  EventLoop loop;
  telemetry::Registry registry(1);
  WireNode a = make_wire_node(loop, 1, 21, true, &registry);
  WireNode b = make_wire_node(loop, 2, 22, true);

  const int c = a.svc->connect("127.0.0.1", b.svc->listen_port());
  ASSERT_GE(c, 0);
  ASSERT_TRUE(loop.run_until([&] { return a.svc->ready(c); }, kStepMs));

  ASSERT_TRUE(a.svc->send_peer_exchange(c, true));
  ASSERT_TRUE(loop.run_until(
      [&] { return a.dir->view_count() == 1 && b.dir->view_count() == 1; },
      kStepMs));

  PeerDescriptor d;
  ASSERT_TRUE(b.dir->lookup(1, d));
  EXPECT_EQ(d.port, a.svc->listen_port());
  ASSERT_TRUE(a.dir->lookup(2, d));
  EXPECT_EQ(d.port, b.svc->listen_port());

  EXPECT_EQ(a.svc->stats().peer_exchanges_out, 1u);
  EXPECT_EQ(a.svc->stats().peer_exchanges_in, 1u);   // the reply
  EXPECT_EQ(b.svc->stats().peer_exchanges_in, 1u);
  EXPECT_EQ(b.svc->stats().peer_exchanges_out, 1u);  // the auto-reply
  EXPECT_EQ(a.svc->stats().descriptors_accepted, 1u);
  EXPECT_EQ(registry.total_by_name("net.peer_exchanges_in"), 1u);
}

TEST(NetPeerExchange, NodeWithoutDirectoryIgnoresFrame) {
  EventLoop loop;
  WireNode a = make_wire_node(loop, 1, 31, true);
  WireNode b = make_wire_node(loop, 2, 32, false);  // vote-only endpoint

  const int c = a.svc->connect("127.0.0.1", b.svc->listen_port());
  ASSERT_GE(c, 0);
  ASSERT_TRUE(loop.run_until([&] { return a.svc->ready(c); }, kStepMs));

  ASSERT_TRUE(a.svc->send_peer_exchange(c, true));
  // A directory-less endpoint decodes the frame but never counts it as an
  // exchange (peer_exchanges_in stays 0) — wait for the bytes instead.
  const std::uint64_t frames_before = b.svc->stats().frames_in;
  ASSERT_TRUE(loop.run_until(
      [&] { return b.svc->stats().frames_in > frames_before; }, kStepMs));

  // Tolerated, not fatal: the connection stays up, no reply comes back,
  // and b can still run a vote encounter on it.
  EXPECT_TRUE(a.svc->open(c));
  EXPECT_EQ(b.svc->stats().protocol_errors, 0u);
  EXPECT_EQ(b.svc->stats().peer_exchanges_in, 0u);
  EXPECT_EQ(b.svc->stats().peer_exchanges_out, 0u);
  EXPECT_EQ(a.dir->view_count(), 0u);

  ASSERT_TRUE(a.svc->initiate_vote_encounter(c, 1000));
  ASSERT_TRUE(loop.run_until(
      [&] {
        return a.svc->initiator_idle(c) &&
               a.svc->engine_counters(c)->encounters_completed == 1;
      },
      kStepMs));
}

TEST(NetPeerExchange, ForgedDescriptorDropsItemNotConnection) {
  EventLoop loop;
  WireNode a = make_wire_node(loop, 1, 41, true);
  WireNode b = make_wire_node(loop, 2, 42, true);

  // Poison a's directory with a forged entry; the forgery travels inside
  // a's shuffle and b must drop exactly that item.
  PeerDescriptor forged = descriptor_for(9, keys_for(9), 10);
  forged.port = static_cast<std::uint16_t>(forged.port + 1);
  PeerExchangeMessage poisoned;
  poisoned.descriptors.push_back(forged);
  poisoned.descriptors.push_back(descriptor_for(8, keys_for(8), 10));
  // merge_exchange itself already filters, so inject via merge() to mimic
  // a directory that accepted the entry before the key rotated.
  (void)a.dir->merge(forged, 10);
  (void)a.dir->merge(poisoned.descriptors[1], 10);

  const int c = a.svc->connect("127.0.0.1", b.svc->listen_port());
  ASSERT_GE(c, 0);
  ASSERT_TRUE(loop.run_until([&] { return a.svc->ready(c); }, kStepMs));
  ASSERT_TRUE(a.svc->send_peer_exchange(c, false));
  ASSERT_TRUE(loop.run_until(
      [&] { return b.svc->stats().peer_exchanges_in >= 1; }, kStepMs));

  EXPECT_TRUE(a.svc->open(c));  // never connection-fatal
  EXPECT_EQ(b.svc->stats().descriptors_forged, 1u);
  PeerDescriptor out;
  EXPECT_FALSE(b.dir->lookup(9, out));
  EXPECT_TRUE(b.dir->lookup(8, out));
  EXPECT_TRUE(b.dir->lookup(1, out));  // a's self entry was genuine
}

// ---- the tentpole: cluster digest identity ---------------------------------

// Shared schedule pieces (mirrors examples/tribvote_cluster.cpp at test
// scale): scripted casts and one sample per node per round, id order.
void apply_scripted_casts(vote::VoteAgent& agent, std::uint64_t seed,
                          int round) {
  constexpr std::uint64_t kMix = 0x9e3779b97f4a7c15ULL;
  util::Rng rng(seed ^ (kMix * static_cast<std::uint64_t>(round + 1)));
  const Time base = static_cast<Time>(round) * 1000;
  for (int i = 0; i < 2; ++i) {
    const auto mod = static_cast<ModeratorId>(1 + rng.next_below(24));
    const Opinion op =
        rng.next_bool(0.5) ? Opinion::kPositive : Opinion::kNegative;
    agent.cast_vote(mod, op, base + i + 1);
  }
}

std::uint64_t node_seed(PeerId id) { return 5000 + id; }

TEST(NetCluster, TcpClusterDigestsMatchOracleSimulation) {
  constexpr std::size_t kN = 4;
  constexpr int kRounds = 4;

  // Oracle side: plain agents, per-node oracle samplers on the directory's
  // sampling stream.
  std::vector<std::unique_ptr<crypto::KeyPair>> okeys;
  std::vector<std::unique_ptr<vote::VoteAgent>> oracle_agents;
  pss::OnlineDirectory online(kN);
  std::vector<std::unique_ptr<pss::OraclePss>> oracles;
  for (PeerId p = 0; p < kN; ++p) {
    util::Rng krng(node_seed(p));
    okeys.push_back(
        std::make_unique<crypto::KeyPair>(crypto::generate_keypair(krng)));
    oracle_agents.push_back(std::make_unique<vote::VoteAgent>(
        p, *okeys[p], vote::VoteConfig{}, [](PeerId) { return true; },
        util::Rng(node_seed(p) * 7919 + 1)));
    online.set_online(p, true);
    oracles.push_back(std::make_unique<pss::OraclePss>(
        online, util::Rng(node_seed(p) * 7919 + 3)
                    .derive(PeerDirectory::kSampleStream)));
  }

  // TCP side: one loop, kN services + directories, bootstrapped with real
  // PEER_EXCHANGE frames through node 0.
  EventLoop loop;
  std::vector<WireNode> wire;
  for (PeerId p = 0; p < kN; ++p) {
    wire.push_back(make_wire_node(loop, p, node_seed(p), true));
  }
  std::vector<int> seed_conns(kN, -1);
  for (PeerId p = 1; p < kN; ++p) {
    seed_conns[p] =
        wire[p].svc->connect("127.0.0.1", wire[0].svc->listen_port());
    ASSERT_GE(seed_conns[p], 0);
  }
  ASSERT_TRUE(loop.run_until(
      [&] {
        for (PeerId p = 1; p < kN; ++p) {
          if (!wire[p].svc->ready(seed_conns[p])) return false;
        }
        return true;
      },
      kStepMs));
  const auto full_membership = [&] {
    for (const WireNode& n : wire) {
      if (n.dir->view_count() != kN - 1) return false;
    }
    return true;
  };
  for (int pump = 0; pump < 20 && !full_membership(); ++pump) {
    for (PeerId p = 1; p < kN; ++p) {
      (void)wire[p].svc->send_peer_exchange(seed_conns[p], true);
    }
    (void)loop.run_until(full_membership, 250);
  }
  ASSERT_TRUE(full_membership());

  // Round barrier: casts, then samples, then encounters — id order on both
  // sides; the tcp side executes serially over real sockets.
  for (int r = 0; r < kRounds; ++r) {
    for (PeerId p = 0; p < kN; ++p) {
      apply_scripted_casts(*oracle_agents[p], node_seed(p), r);
      apply_scripted_casts(*wire[p].vote, node_seed(p), r);
    }
    const Time now = static_cast<Time>(r + 1) * 1000;
    for (PeerId p = 0; p < kN; ++p) {
      const PeerId oracle_target = oracles[p]->sample(p);
      const PeerId wire_target = wire[p].dir->sample(p);
      ASSERT_EQ(oracle_target, wire_target) << "round " << r << " node " << p;
      if (oracle_target == kInvalidPeer) continue;
      vote::vote_exchange(*oracle_agents[p], *oracle_agents[oracle_target],
                          now);

      NodeService& svc = *wire[p].svc;
      int conn = svc.conn_for_peer(wire_target);
      if (conn < 0) {
        PeerDescriptor d;
        ASSERT_TRUE(wire[p].dir->lookup(wire_target, d));
        conn = svc.connect("127.0.0.1", d.port);
        ASSERT_GE(conn, 0);
        ASSERT_TRUE(loop.run_until([&] { return svc.ready(conn); }, kStepMs));
      }
      const std::uint64_t want =
          svc.engine_counters(conn)->encounters_completed + 1;
      ASSERT_TRUE(svc.initiate_vote_encounter(conn, now));
      ASSERT_TRUE(loop.run_until(
          [&] {
            return svc.initiator_idle(conn) &&
                   svc.engine_counters(conn)->encounters_completed >= want;
          },
          kStepMs));
    }
  }

  for (PeerId p = 0; p < kN; ++p) {
    EXPECT_EQ(wire[p].vote->state_digest(), oracle_agents[p]->state_digest())
        << "node " << p;
    EXPECT_GT(wire[p].vote->ballot_box().size(), 0u) << "node " << p;
  }
}

}  // namespace
}  // namespace tribvote::net
