#include "trace/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "trace/generator.hpp"

namespace tribvote::trace {
namespace {

TEST(TraceIo, RoundtripPreservesEverything) {
  GeneratorParams params;
  params.n_peers = 20;
  params.n_swarms = 3;
  params.duration = 2 * kDay;
  const Trace original = generate_trace(params, 9);

  std::stringstream buf;
  write_trace(buf, original);
  const Trace parsed = read_trace(buf);

  EXPECT_EQ(parsed.duration, original.duration);
  EXPECT_EQ(parsed.seed, original.seed);
  ASSERT_EQ(parsed.peers.size(), original.peers.size());
  for (std::size_t i = 0; i < parsed.peers.size(); ++i) {
    EXPECT_EQ(parsed.peers[i].id, original.peers[i].id);
    EXPECT_EQ(parsed.peers[i].connectable, original.peers[i].connectable);
    EXPECT_EQ(parsed.peers[i].behavior, original.peers[i].behavior);
    EXPECT_EQ(parsed.peers[i].arrival, original.peers[i].arrival);
    EXPECT_NEAR(parsed.peers[i].upload_kbps, original.peers[i].upload_kbps,
                1e-3);
  }
  ASSERT_EQ(parsed.swarms.size(), original.swarms.size());
  for (std::size_t i = 0; i < parsed.swarms.size(); ++i) {
    EXPECT_EQ(parsed.swarms[i].size_mb, original.swarms[i].size_mb);
    EXPECT_EQ(parsed.swarms[i].initial_seeder,
              original.swarms[i].initial_seeder);
  }
  ASSERT_EQ(parsed.sessions.size(), original.sessions.size());
  ASSERT_EQ(parsed.joins.size(), original.joins.size());
  EXPECT_EQ(parsed.event_count(), original.event_count());
}

TEST(TraceIo, FileRoundtrip) {
  const std::string path = ::testing::TempDir() + "trace_roundtrip.txt";
  GeneratorParams params;
  params.n_peers = 5;
  params.n_swarms = 1;
  params.duration = kDay / 2;
  const Trace original = generate_trace(params, 3);
  write_trace_file(path, original);
  const Trace parsed = read_trace_file(path);
  EXPECT_EQ(parsed.sessions.size(), original.sessions.size());
  std::remove(path.c_str());
}

TEST(TraceIo, CommentsAndBlankLinesIgnored) {
  std::stringstream in(
      "# a comment\n"
      "\n"
      "trace 1000 7\n"
      "peer 0 1 A 100 800 0\n"
      "# another comment\n"
      "session 0 10 20\n");
  const Trace tr = read_trace(in);
  EXPECT_EQ(tr.duration, 1000);
  EXPECT_EQ(tr.peers.size(), 1u);
  EXPECT_EQ(tr.sessions.size(), 1u);
}

TEST(TraceIo, SortsOutOfOrderRecords) {
  std::stringstream in(
      "trace 1000 0\n"
      "peer 0 1 A 100 800 0\n"
      "peer 1 0 F 4 800 0\n"
      "session 0 500 600\n"
      "session 1 10 20\n");
  const Trace tr = read_trace(in);
  EXPECT_EQ(tr.sessions[0].peer, 1u);
  EXPECT_EQ(tr.sessions[1].peer, 0u);
}

TEST(TraceIo, MissingHeaderThrows) {
  std::stringstream in("peer 0 1 A 100 800 0\n");
  EXPECT_THROW((void)read_trace(in), TraceFormatError);
}

TEST(TraceIo, UnknownRecordThrows) {
  std::stringstream in("trace 1000 0\nbogus 1 2 3\n");
  EXPECT_THROW((void)read_trace(in), TraceFormatError);
}

TEST(TraceIo, BadBehaviorCodeThrows) {
  std::stringstream in("trace 1000 0\npeer 0 1 X 100 800 0\n");
  EXPECT_THROW((void)read_trace(in), TraceFormatError);
}

TEST(TraceIo, InvertedSessionThrows) {
  std::stringstream in(
      "trace 1000 0\npeer 0 1 A 100 800 0\nsession 0 50 40\n");
  EXPECT_THROW((void)read_trace(in), TraceFormatError);
}

TEST(TraceIo, SessionForUnknownPeerThrows) {
  std::stringstream in("trace 1000 0\npeer 0 1 A 100 800 0\nsession 5 1 2\n");
  EXPECT_THROW((void)read_trace(in), TraceFormatError);
}

TEST(TraceIo, JoinForUnknownSwarmThrows) {
  std::stringstream in(
      "trace 1000 0\npeer 0 1 A 100 800 0\njoin 0 3 10\n");
  EXPECT_THROW((void)read_trace(in), TraceFormatError);
}

TEST(TraceIo, SwarmWithUnknownSeederThrows) {
  std::stringstream in("trace 1000 0\npeer 0 1 A 100 800 0\n"
                       "swarm 0 100 1024 0 9\n");
  EXPECT_THROW((void)read_trace(in), TraceFormatError);
}

TEST(TraceIo, NonPositiveSwarmSizeThrows) {
  std::stringstream in("trace 1000 0\npeer 0 1 A 100 800 0\n"
                       "swarm 0 0 1024 0 0\n");
  EXPECT_THROW((void)read_trace(in), TraceFormatError);
}

TEST(TraceIo, ErrorMessageNamesLine) {
  std::stringstream in("trace 1000 0\nbogus\n");
  try {
    (void)read_trace(in);
    FAIL() << "expected TraceFormatError";
  } catch (const TraceFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("line 2"), std::string::npos);
  }
}

TEST(TraceIo, UnreadableFileThrows) {
  EXPECT_THROW((void)read_trace_file("/nonexistent/trace.txt"),
               TraceFormatError);
}

// ---- hardening: one test per malformed-line class -------------------------

TEST(TraceIo, TrailingGarbageThrows) {
  std::stringstream in("trace 1000 0\npeer 0 1 A 100 800 0 EXTRA\n");
  try {
    (void)read_trace(in);
    FAIL() << "expected TraceFormatError";
  } catch (const TraceFormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 2"), std::string::npos) << what;
    EXPECT_NE(what.find("EXTRA"), std::string::npos) << what;
  }
}

TEST(TraceIo, TrailingGarbageOnHeaderThrows) {
  std::stringstream in("trace 1000 0 junk\n");
  EXPECT_THROW((void)read_trace(in), TraceFormatError);
}

TEST(TraceIo, DuplicateHeaderThrows) {
  std::stringstream in("trace 1000 0\ntrace 2000 1\n");
  try {
    (void)read_trace(in);
    FAIL() << "expected TraceFormatError";
  } catch (const TraceFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("duplicate"), std::string::npos);
  }
}

TEST(TraceIo, RecordBeforeHeaderThrows) {
  std::stringstream in("peer 0 1 A 100 800 0\ntrace 1000 0\n");
  try {
    (void)read_trace(in);
    FAIL() << "expected TraceFormatError";
  } catch (const TraceFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("line 1"), std::string::npos);
  }
}

TEST(TraceIo, SparsePeerIdsThrow) {
  // Peer ids index dense arrays downstream; a gap must be rejected at
  // parse time, not crash the population build later.
  std::stringstream in("trace 1000 0\npeer 0 1 A 100 800 0\n"
                       "peer 7 1 A 100 800 0\n");
  try {
    (void)read_trace(in);
    FAIL() << "expected TraceFormatError";
  } catch (const TraceFormatError& e) {
    const std::string what = e.what();
    EXPECT_NE(what.find("line 3"), std::string::npos) << what;
    EXPECT_NE(what.find("dense"), std::string::npos) << what;
  }
}

TEST(TraceIo, OutOfOrderPeerIdsThrow) {
  std::stringstream in("trace 1000 0\npeer 1 1 A 100 800 0\n"
                       "peer 0 1 A 100 800 0\n");
  EXPECT_THROW((void)read_trace(in), TraceFormatError);
}

TEST(TraceIo, SparseSwarmIdsThrow) {
  std::stringstream in("trace 1000 0\npeer 0 1 A 100 800 0\n"
                       "swarm 3 100 1024 0 0\n");
  EXPECT_THROW((void)read_trace(in), TraceFormatError);
}

TEST(TraceIo, NegativePeerCapacityThrows) {
  std::stringstream in("trace 1000 0\npeer 0 1 A -5 800 0\n");
  EXPECT_THROW((void)read_trace(in), TraceFormatError);
}

TEST(TraceIo, NegativeArrivalThrows) {
  std::stringstream in("trace 1000 0\npeer 0 1 A 100 800 -1\n");
  EXPECT_THROW((void)read_trace(in), TraceFormatError);
}

TEST(TraceIo, NegativeSessionStartThrows) {
  std::stringstream in("trace 1000 0\npeer 0 1 A 100 800 0\n"
                       "session 0 -10 20\n");
  EXPECT_THROW((void)read_trace(in), TraceFormatError);
}

TEST(TraceIo, NegativeJoinTimeThrows) {
  std::stringstream in("trace 1000 0\npeer 0 1 A 100 800 0\n"
                       "swarm 0 100 1024 0 0\njoin 0 0 -3\n");
  EXPECT_THROW((void)read_trace(in), TraceFormatError);
}

TEST(TraceIo, ReferentialErrorNamesReferringLine) {
  // The dangling reference is only detectable at end-of-file, but the
  // error must still point at the session line, not "line 0".
  std::stringstream in("trace 1000 0\npeer 0 1 A 100 800 0\n"
                       "session 5 1 2\n");
  try {
    (void)read_trace(in);
    FAIL() << "expected TraceFormatError";
  } catch (const TraceFormatError& e) {
    EXPECT_NE(std::string(e.what()).find("line 3"), std::string::npos)
        << e.what();
  }
}

}  // namespace
}  // namespace tribvote::trace
