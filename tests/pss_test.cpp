#include <gtest/gtest.h>

#include <map>
#include <set>

#include "pss/factory.hpp"
#include "pss/newscast.hpp"
#include "pss/online_directory.hpp"
#include "pss/oracle.hpp"

namespace tribvote::pss {
namespace {

TEST(OnlineDirectory, SetAndQuery) {
  OnlineDirectory dir(5);
  EXPECT_EQ(dir.online_count(), 0u);
  dir.set_online(2, true);
  dir.set_online(4, true);
  EXPECT_TRUE(dir.is_online(2));
  EXPECT_FALSE(dir.is_online(0));
  EXPECT_EQ(dir.online_count(), 2u);
  dir.set_online(2, false);
  EXPECT_FALSE(dir.is_online(2));
  EXPECT_EQ(dir.online_count(), 1u);
}

TEST(OnlineDirectory, IdempotentTransitions) {
  OnlineDirectory dir(3);
  dir.set_online(1, true);
  dir.set_online(1, true);
  EXPECT_EQ(dir.online_count(), 1u);
  dir.set_online(1, false);
  dir.set_online(1, false);
  EXPECT_EQ(dir.online_count(), 0u);
}

TEST(OnlineDirectory, SwapRemovalKeepsSetConsistent) {
  OnlineDirectory dir(10);
  for (PeerId p = 0; p < 10; ++p) dir.set_online(p, true);
  dir.set_online(0, false);
  dir.set_online(5, false);
  dir.set_online(9, false);
  std::set<PeerId> expected{1, 2, 3, 4, 6, 7, 8};
  std::set<PeerId> actual(dir.online_ids().begin(), dir.online_ids().end());
  EXPECT_EQ(actual, expected);
  for (PeerId p = 0; p < 10; ++p) {
    EXPECT_EQ(dir.is_online(p), expected.contains(p)) << "peer " << p;
  }
}

TEST(OnlineDirectory, SampleExcludesSelf) {
  OnlineDirectory dir(3);
  util::Rng rng(1);
  dir.set_online(0, true);
  EXPECT_EQ(dir.sample_online(0, rng), kInvalidPeer);  // only self online
  dir.set_online(1, true);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(dir.sample_online(0, rng), 1u);
  }
}

TEST(OnlineDirectory, SampleEmptyReturnsInvalid) {
  OnlineDirectory dir(3);
  util::Rng rng(1);
  EXPECT_EQ(dir.sample_online(0, rng), kInvalidPeer);
}

TEST(OnlineDirectory, SampleIsUniform) {
  OnlineDirectory dir(6);
  util::Rng rng(2);
  for (PeerId p = 0; p < 6; ++p) dir.set_online(p, true);
  std::map<PeerId, int> counts;
  constexpr int kDraws = 50000;
  for (int i = 0; i < kDraws; ++i) ++counts[dir.sample_online(0, rng)];
  EXPECT_EQ(counts.size(), 5u);  // everyone but self
  for (const auto& [peer, count] : counts) {
    EXPECT_NEAR(count, kDraws / 5, 500) << "peer " << peer;
  }
}

TEST(OraclePss, DelegatesToDirectory) {
  OnlineDirectory dir(4);
  dir.set_online(1, true);
  dir.set_online(3, true);
  OraclePss pss(dir, util::Rng(3));
  for (int i = 0; i < 50; ++i) {
    const PeerId p = pss.sample(1);
    EXPECT_EQ(p, 3u);
  }
}

class NewscastTest : public ::testing::Test {
 protected:
  static constexpr std::size_t kN = 40;

  NewscastTest()
      : dir_(kN), pss_(kN, dir_, NewscastConfig{}, util::Rng(11)) {}

  void all_online(Time now) {
    for (PeerId p = 0; p < kN; ++p) {
      dir_.set_online(p, true);
      pss_.on_peer_online(p, now);
    }
  }

  OnlineDirectory dir_;
  NewscastPss pss_;
};

TEST_F(NewscastTest, BootstrapSeedsViews) {
  all_online(0);
  std::size_t non_empty = 0;
  for (PeerId p = 0; p < kN; ++p) {
    if (!pss_.view_of(p).empty()) ++non_empty;
  }
  EXPECT_GT(non_empty, kN / 2);
}

TEST_F(NewscastTest, GossipFillsViewsToCapacity) {
  all_online(0);
  for (Time t = 60; t <= 600; t += 60) pss_.gossip_round(t);
  const NewscastConfig config;
  std::size_t full = 0;
  for (PeerId p = 0; p < kN; ++p) {
    const auto view = pss_.view_of(p);
    EXPECT_LE(view.size(), config.view_size);
    if (view.size() == config.view_size) ++full;
  }
  EXPECT_GT(full, kN * 3 / 4);
}

TEST_F(NewscastTest, ViewsNeverContainSelf) {
  all_online(0);
  for (Time t = 60; t <= 600; t += 60) pss_.gossip_round(t);
  for (PeerId p = 0; p < kN; ++p) {
    for (const PeerId q : pss_.view_of(p)) EXPECT_NE(q, p);
  }
}

TEST_F(NewscastTest, SampleReturnsOnlinePeers) {
  all_online(0);
  for (Time t = 60; t <= 300; t += 60) pss_.gossip_round(t);
  for (PeerId p = 0; p < kN; ++p) {
    const PeerId s = pss_.sample(p);
    if (s != kInvalidPeer) {
      EXPECT_NE(s, p);
      EXPECT_TRUE(dir_.is_online(s));
    }
  }
}

TEST_F(NewscastTest, SampleCoversPopulationOverTime) {
  all_online(0);
  // A single snapshot can only cover view_size peers; across gossip rounds
  // the view churns, so cumulative coverage must exceed the view size.
  std::set<PeerId> seen;
  for (Time t = 60; t <= 3600; t += 60) {
    pss_.gossip_round(t);
    for (int i = 0; i < 10; ++i) {
      const PeerId s = pss_.sample(0);
      if (s != kInvalidPeer) seen.insert(s);
    }
  }
  EXPECT_GT(seen.size(), NewscastConfig{}.view_size);
}

TEST_F(NewscastTest, SelfHealsAfterMassChurn) {
  all_online(0);
  for (Time t = 60; t <= 600; t += 60) pss_.gossip_round(t);
  // Half the population leaves.
  for (PeerId p = 0; p < kN / 2; ++p) {
    dir_.set_online(p, false);
    pss_.on_peer_offline(p);
  }
  for (Time t = 660; t <= 1800; t += 60) pss_.gossip_round(t);
  // Remaining nodes still sample live peers.
  int live_samples = 0;
  for (PeerId p = kN / 2; p < kN; ++p) {
    const PeerId s = pss_.sample(p);
    if (s != kInvalidPeer) {
      EXPECT_TRUE(dir_.is_online(s));
      ++live_samples;
    }
  }
  EXPECT_GT(live_samples, static_cast<int>(kN / 4));
}

TEST_F(NewscastTest, ReturningPeerRebootstraps) {
  all_online(0);
  for (Time t = 60; t <= 300; t += 60) pss_.gossip_round(t);
  dir_.set_online(0, false);
  pss_.on_peer_offline(0);
  // Long absence: entries expire.
  const Time comeback = 300 + NewscastConfig{}.entry_ttl + 60;
  dir_.set_online(0, true);
  pss_.on_peer_online(0, comeback);
  const PeerId s = pss_.sample(0);
  EXPECT_NE(s, kInvalidPeer);  // bootstrap refilled the view
}

TEST(NewscastEdge, EmptyPopulation) {
  OnlineDirectory dir(1);
  NewscastPss pss(1, dir, NewscastConfig{}, util::Rng(1));
  dir.set_online(0, true);
  pss.on_peer_online(0, 0);
  EXPECT_EQ(pss.sample(0), kInvalidPeer);
  pss.gossip_round(60);  // must not crash
}

// ---- factory ---------------------------------------------------------------

TEST(SamplerFactory, KindNamesRoundTrip) {
  for (const SamplerKind kind : {SamplerKind::kOracle, SamplerKind::kNewscast}) {
    const auto parsed = parse_sampler_kind(sampler_kind_name(kind));
    ASSERT_TRUE(parsed.has_value());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(parse_sampler_kind("buddycast").has_value());
  EXPECT_FALSE(parse_sampler_kind("").has_value());
}

TEST(SamplerFactory, OracleSamplerMatchesDirectOracle) {
  OnlineDirectory dir(6);
  for (PeerId p = 0; p < 6; ++p) dir.set_online(p, true);
  auto made = make_sampler(SamplerKind::kOracle, 6, dir, NewscastConfig{},
                           util::Rng(99));
  OraclePss direct(dir, util::Rng(99));
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(made->sample(0), direct.sample(0));
  }
}

TEST(SamplerFactory, NewscastSamplerBootstrapsAndExcludesSelf) {
  OnlineDirectory dir(8);
  auto made = make_sampler(SamplerKind::kNewscast, 8, dir, NewscastConfig{},
                           util::Rng(7));
  for (PeerId p = 0; p < 8; ++p) {
    dir.set_online(p, true);
    made->on_peer_online(p, 0);
  }
  made->gossip_round(60);
  for (int i = 0; i < 200; ++i) {
    const PeerId s = made->sample(3);
    ASSERT_NE(s, kInvalidPeer);
    EXPECT_NE(s, 3u);
    EXPECT_LT(s, 8u);
  }
}

}  // namespace
}  // namespace tribvote::pss
