#include "sim/fault_plane.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "util/rng.hpp"

namespace tribvote::sim {
namespace {

bool same_verdict(const EncounterFaults& a, const EncounterFaults& b) {
  return a.unreachable == b.unreachable && a.drop_request == b.drop_request &&
         a.drop_reply == b.drop_reply &&
         a.crash_responder == b.crash_responder &&
         a.delay_reply == b.delay_reply &&
         a.request_payload == b.request_payload &&
         a.reply_payload == b.reply_payload &&
         a.payload_salt == b.payload_salt;
}

/// A lossy-everything config for the determinism/normalization tests.
FaultConfig chaos_config() {
  FaultConfig f;
  f.loss = 0.3;
  f.delay_rate = 0.25;
  f.max_delay = 40;
  f.crash_rate = 0.1;
  f.corrupt_rate = 0.2;
  return f;
}

std::vector<Encounter> ring_round(std::size_t n) {
  std::vector<Encounter> encounters;
  for (std::size_t i = 0; i < n; ++i) {
    encounters.push_back({static_cast<std::uint32_t>(i),
                          static_cast<PeerId>(i),
                          static_cast<PeerId>((i + 1) % n)});
  }
  return encounters;
}

// ---- config parsing --------------------------------------------------------

TEST(FaultConfig, ParseFullSpec) {
  FaultConfig f;
  std::string error;
  ASSERT_TRUE(parse_fault_spec(
      "loss=0.3,delay=0.1,max_delay=120,crash=0.01,corrupt=0.05,"
      "retries=6,retry_base=20",
      f, &error))
      << error;
  EXPECT_DOUBLE_EQ(f.loss, 0.3);
  EXPECT_DOUBLE_EQ(f.delay_rate, 0.1);
  EXPECT_EQ(f.max_delay, 120);
  EXPECT_DOUBLE_EQ(f.crash_rate, 0.01);
  EXPECT_DOUBLE_EQ(f.corrupt_rate, 0.05);
  EXPECT_EQ(f.vp_retry_budget, 6u);
  EXPECT_EQ(f.vp_retry_base, 20);
  EXPECT_TRUE(f.enabled());
}

TEST(FaultConfig, EmptySpecKeepsDefaultsAndStaysDisabled) {
  FaultConfig f;
  ASSERT_TRUE(parse_fault_spec("", f, nullptr));
  EXPECT_FALSE(f.enabled());
}

TEST(FaultConfig, RetryKnobsAloneDoNotEnableThePlane) {
  FaultConfig f;
  ASSERT_TRUE(parse_fault_spec("retries=8,retry_base=5", f, nullptr));
  EXPECT_FALSE(f.enabled());  // golden runs must stay golden
}

TEST(FaultConfig, ParseRejectsUnknownKey) {
  FaultConfig f;
  std::string error;
  EXPECT_FALSE(parse_fault_spec("loss=0.1,bogus=3", f, &error));
  EXPECT_NE(error.find("bogus"), std::string::npos) << error;
}

TEST(FaultConfig, ParseRejectsOutOfRangeProbability) {
  FaultConfig f;
  std::string error;
  EXPECT_FALSE(parse_fault_spec("loss=1.5", f, &error));
  EXPECT_FALSE(parse_fault_spec("crash=-0.1", f, nullptr));
  EXPECT_FALSE(parse_fault_spec("max_delay=0", f, nullptr));
}

TEST(FaultConfig, ParseRejectsMalformedField) {
  FaultConfig f;
  EXPECT_FALSE(parse_fault_spec("loss", f, nullptr));
  EXPECT_FALSE(parse_fault_spec("loss=abc", f, nullptr));
}

TEST(FaultConfig, DescribeIsOffWhenDisabledAndNamesRatesWhenNot) {
  EXPECT_EQ(describe(FaultConfig{}), "off");
  FaultConfig f;
  f.loss = 0.3;
  const std::string s = describe(f);
  EXPECT_NE(s.find("loss=0.3"), std::string::npos) << s;
}

TEST(FaultConfig, ParseGeShorthandSolvesForStationaryLoss) {
  FaultConfig f;
  std::string error;
  ASSERT_TRUE(parse_fault_spec("ge=0.3", f, &error)) << error;
  EXPECT_TRUE(f.enabled());
  EXPECT_DOUBLE_EQ(f.ge_loss_bad, 0.8);
  EXPECT_DOUBLE_EQ(f.ge_loss_good, 0.03);
  EXPECT_DOUBLE_EQ(f.ge_bad_to_good, 0.25);
  EXPECT_GT(f.ge_good_to_bad, 0.0);
  // The chain's stationary loss rate must equal the requested 0.3 (same
  // solver as net::parse_impair_spec, so A11 and A12 sweep one axis).
  const double pi_bad =
      f.ge_good_to_bad / (f.ge_good_to_bad + f.ge_bad_to_good);
  EXPECT_NEAR(pi_bad * f.ge_loss_bad + (1.0 - pi_bad) * f.ge_loss_good, 0.3,
              1e-12);
}

TEST(FaultConfig, ParseRejectsGeAtOrAboveBadStateLoss) {
  FaultConfig f;
  EXPECT_FALSE(parse_fault_spec("ge=0.8", f, nullptr));
  EXPECT_FALSE(parse_fault_spec("ge=-0.1", f, nullptr));
}

TEST(FaultConfig, ParsePartitionKeys) {
  FaultConfig f;
  ASSERT_TRUE(
      parse_fault_spec("part_period=64,part_width=8,part_frac=0.25", f));
  EXPECT_EQ(f.partition_period, 64u);
  EXPECT_EQ(f.partition_width, 8u);
  EXPECT_DOUBLE_EQ(f.partition_frac, 0.25);
  EXPECT_TRUE(f.enabled());
  // A fraction without a period schedules nothing and stays disabled.
  FaultConfig g;
  ASSERT_TRUE(parse_fault_spec("part_frac=0.5", g));
  EXPECT_FALSE(g.enabled());
}

TEST(FaultConfig, DescribeNamesGeAndPartitions) {
  FaultConfig f;
  ASSERT_TRUE(parse_fault_spec("ge=0.3,part_period=64,part_frac=0.25", f));
  const std::string s = describe(f);
  EXPECT_NE(s.find("ge="), std::string::npos) << s;
  EXPECT_NE(s.find("part=64/"), std::string::npos) << s;
}

// ---- verdict drawing -------------------------------------------------------

TEST(FaultPlane, DrawIsAPureFunctionOfSeedProtocolRoundSeq) {
  const auto encounters = ring_round(64);
  FaultPlane a(chaos_config(), util::Rng(42), 1);
  FaultPlane b(chaos_config(), util::Rng(42), 1);
  for (int round = 0; round < 5; ++round) {
    const auto& ta = a.draw_round(Protocol::kVote, encounters);
    const auto& tb = b.draw_round(Protocol::kVote, encounters);
    ASSERT_EQ(ta.size(), tb.size());
    for (std::size_t i = 0; i < ta.size(); ++i) {
      EXPECT_TRUE(same_verdict(ta[i], tb[i]))
          << "round " << round << " seq " << i;
    }
  }
}

TEST(FaultPlane, DrawIsIndependentOfLaneCount) {
  // The verdict table is drawn serially before lanes run, so the lane
  // count (= shard count) must never influence it — this is the fault
  // half of the shard-invariance guarantee.
  const auto encounters = ring_round(64);
  FaultPlane one(chaos_config(), util::Rng(7), 1);
  FaultPlane eight(chaos_config(), util::Rng(7), 8);
  const auto& t1 = one.draw_round(Protocol::kModeration, encounters);
  const auto& t8 = eight.draw_round(Protocol::kModeration, encounters);
  ASSERT_EQ(t1.size(), t8.size());
  for (std::size_t i = 0; i < t1.size(); ++i) {
    EXPECT_TRUE(same_verdict(t1[i], t8[i])) << "seq " << i;
  }
}

TEST(FaultPlane, StreamsAreKeyedByProtocolAndRound) {
  const auto encounters = ring_round(256);
  FaultPlane plane(chaos_config(), util::Rng(3), 1);
  auto fingerprint = [&](const std::vector<EncounterFaults>& t) {
    std::uint64_t fp = 0;
    for (const auto& f : t) fp = fp * 31 + f.payload_salt;
    return fp;
  };
  const auto vote0 = fingerprint(plane.draw_round(Protocol::kVote, encounters));
  const auto vote1 = fingerprint(plane.draw_round(Protocol::kVote, encounters));
  const auto barter0 =
      fingerprint(plane.draw_round(Protocol::kBarter, encounters));
  EXPECT_NE(vote0, vote1);    // round counter advances per protocol
  EXPECT_NE(vote0, barter0);  // protocols never share a stream
}

TEST(FaultPlane, VerdictsAreNormalizedToAConsistentStory) {
  const auto encounters = ring_round(512);
  FaultConfig config = chaos_config();
  FaultPlane plane(config, util::Rng(99), 1);
  for (int round = 0; round < 10; ++round) {
    for (const auto& f : plane.draw_round(Protocol::kVote, encounters)) {
      if (f.unreachable) {
        // An encounter voided by an earlier crash carries no other fault.
        EXPECT_FALSE(f.drop_request || f.drop_reply || f.crash_responder ||
                     f.delay_reply != 0 ||
                     f.request_payload != PayloadFault::kNone ||
                     f.reply_payload != PayloadFault::kNone);
        continue;
      }
      if (f.drop_request) {
        // The responder never saw the dial: nothing downstream applies.
        EXPECT_FALSE(f.drop_reply);
        EXPECT_FALSE(f.crash_responder);
        EXPECT_EQ(f.delay_reply, 0);
        EXPECT_EQ(f.request_payload, PayloadFault::kNone);
        EXPECT_EQ(f.reply_payload, PayloadFault::kNone);
      }
      if (f.crash_responder) {
        EXPECT_FALSE(f.drop_reply);  // crash already explains the silence
        EXPECT_EQ(f.reply_payload, PayloadFault::kNone);
      }
      if (f.reply_lost()) {
        EXPECT_EQ(f.delay_reply, 0);
      }
      if (f.delay_reply != 0) {
        EXPECT_GE(f.delay_reply, 1);
        EXPECT_LE(f.delay_reply, config.max_delay);
      }
    }
  }
}

TEST(FaultPlane, CrashMakesLaterEncountersWithThatPeerUnreachable) {
  FaultConfig config;
  config.crash_rate = 1.0;  // every reachable responder crashes
  FaultPlane plane(config, util::Rng(5), 1);
  // seq 0 crashes peer 1; seq 1 (responder 1) and seq 2 (initiator 1) are
  // then unreachable; seq 3 touches fresh peers and crashes peer 5.
  const std::vector<Encounter> encounters{
      {0, 0, 1}, {1, 2, 1}, {2, 1, 3}, {3, 4, 5}};
  const auto& table = plane.draw_round(Protocol::kVote, encounters);
  EXPECT_TRUE(table[0].crash_responder);
  EXPECT_TRUE(table[1].unreachable);
  EXPECT_TRUE(table[2].unreachable);
  EXPECT_FALSE(table[3].unreachable);
  EXPECT_TRUE(table[3].crash_responder);

  const auto outcome = plane.finish_round();
  EXPECT_EQ(outcome.crashed, (std::vector<PeerId>{1, 5}));
  EXPECT_EQ(plane.stats().vote.crashes, 2u);
  EXPECT_EQ(plane.stats().vote.unreachable, 2u);
}

// ---- Gilbert–Elliott bursty loss and scheduled partitions -------------------

TEST(FaultPlane, GeChainIsDeterministicAndLaneCountInvariant) {
  FaultConfig config;
  std::string error;
  ASSERT_TRUE(parse_fault_spec("ge=0.3", config, &error)) << error;
  const auto encounters = ring_round(128);
  FaultPlane one(config, util::Rng(42), 1);
  FaultPlane eight(config, util::Rng(42), 8);
  for (int round = 0; round < 6; ++round) {
    // The chain advances once per encounter in seq order during the
    // serial draw, so the trajectory must not depend on the lane count.
    const auto& t1 = one.draw_round(Protocol::kVote, encounters);
    const auto& t8 = eight.draw_round(Protocol::kVote, encounters);
    ASSERT_EQ(t1.size(), t8.size());
    for (std::size_t i = 0; i < t1.size(); ++i) {
      EXPECT_TRUE(same_verdict(t1[i], t8[i])) << "round " << round
                                              << " seq " << i;
    }
  }
  EXPECT_GT(one.stats().vote.ge_bad_encounters, 0u);
  EXPECT_EQ(one.stats().vote.ge_bad_encounters,
            eight.stats().vote.ge_bad_encounters);
}

TEST(FaultPlane, GeBadStateDropsInBursts) {
  // With an always-bad chain (g2b=1, b2g=0) every leg sees the bad-state
  // loss; with loss_bad=1 every request drops.
  FaultConfig config;
  config.ge_good_to_bad = 1.0;
  config.ge_bad_to_good = 0.0;
  config.ge_loss_good = 0.0;
  config.ge_loss_bad = 1.0;
  FaultPlane plane(config, util::Rng(9), 1);
  const auto encounters = ring_round(32);
  for (const auto& f : plane.draw_round(Protocol::kBarter, encounters)) {
    EXPECT_TRUE(f.drop_request);
  }
  EXPECT_EQ(plane.stats().barter.ge_bad_encounters, 32u);
}

TEST(FaultPlane, PartitionsSkipColdStartAndFollowTheWindow) {
  FaultConfig config;
  ASSERT_TRUE(
      parse_fault_spec("part_period=4,part_width=2,part_frac=1.0", config));
  FaultPlane plane(config, util::Rng(7), 1);
  // The first window opens one full period in; then rounds r with
  // r % period < width are dark for every node at frac=1.
  for (std::uint64_t round = 0; round < 12; ++round) {
    const bool dark = round >= 4 && round % 4 < 2;
    EXPECT_EQ(plane.partitioned(round, PeerId{3}), dark) << round;
  }
}

TEST(FaultPlane, PartitionKeyIsPerWindowAndNode) {
  FaultConfig config;
  ASSERT_TRUE(
      parse_fault_spec("part_period=4,part_width=1,part_frac=0.5", config));
  FaultPlane a(config, util::Rng(11), 1);
  FaultPlane b(config, util::Rng(11), 4);
  bool any_dark = false;
  bool any_bright = false;
  for (PeerId node = 0; node < 64; ++node) {
    const bool dark = a.partitioned(8, node);
    // Same seed, same window, same node => same verdict, lanes aside.
    EXPECT_EQ(dark, b.partitioned(8, node)) << node;
    // Within one window the verdict is stable across repeated queries
    // (protocols sharing a round index see the same nodes dark).
    EXPECT_EQ(dark, a.partitioned(8, node)) << node;
    any_dark = any_dark || dark;
    any_bright = any_bright || !dark;
  }
  EXPECT_TRUE(any_dark);
  EXPECT_TRUE(any_bright);
}

TEST(FaultPlane, PartitionedEncountersAreVoidedAndCounted) {
  FaultConfig config;
  ASSERT_TRUE(
      parse_fault_spec("part_period=2,part_width=2,part_frac=1.0", config));
  FaultPlane plane(config, util::Rng(3), 1);
  const auto encounters = ring_round(16);
  // Rounds 0 and 1 are cold start; round 2 onward everything is dark.
  (void)plane.draw_round(Protocol::kVote, encounters);
  (void)plane.finish_round();
  (void)plane.draw_round(Protocol::kVote, encounters);
  (void)plane.finish_round();
  EXPECT_EQ(plane.stats().vote.partitioned, 0u);
  const auto& table = plane.draw_round(Protocol::kVote, encounters);
  for (const auto& f : table) EXPECT_TRUE(f.unreachable);
  EXPECT_EQ(plane.stats().vote.partitioned, 16u);
}

// ---- lane buffers and the round outcome ------------------------------------

TEST(FaultPlane, FinishRoundMergesLaneBuffersInSeqOrder) {
  FaultPlane plane(chaos_config(), util::Rng(1), 3);
  std::vector<int> delivered;
  // Lanes record out of order and across lanes; the merge must come back
  // in encounter-seq order regardless.
  plane.defer(2, 7, 10, [&] { delivered.push_back(7); });
  plane.defer(0, 3, 5, [&] { delivered.push_back(3); });
  plane.defer(1, 5, 20, [&] { delivered.push_back(5); });
  plane.record_vp_failure(1, 9, PeerId{4});
  plane.record_vp_failure(0, 2, PeerId{8});

  auto outcome = plane.finish_round();
  ASSERT_EQ(outcome.deferred.size(), 3u);
  EXPECT_EQ(outcome.deferred[0].seq, 3u);
  EXPECT_EQ(outcome.deferred[1].seq, 5u);
  EXPECT_EQ(outcome.deferred[2].seq, 7u);
  for (const auto& d : outcome.deferred) d.deliver();
  EXPECT_EQ(delivered, (std::vector<int>{3, 5, 7}));

  ASSERT_EQ(outcome.vp_failures.size(), 2u);
  EXPECT_EQ(outcome.vp_failures[0].seq, 2u);
  EXPECT_EQ(outcome.vp_failures[0].initiator, PeerId{8});
  EXPECT_EQ(outcome.vp_failures[1].seq, 9u);

  // Buffers are consumed: a second finish_round hands back nothing.
  const auto empty = plane.finish_round();
  EXPECT_TRUE(empty.deferred.empty());
  EXPECT_TRUE(empty.vp_failures.empty());
  EXPECT_TRUE(empty.crashed.empty());
}

TEST(FaultPlane, LaneCountersMergeIntoStatsAtFinishRound) {
  FaultPlane plane(chaos_config(), util::Rng(1), 2);
  plane.lane_stats(0).vote.rejected = 3;
  plane.lane_stats(1).vote.rejected = 4;
  plane.lane_stats(1).vox.timeouts = 2;
  EXPECT_EQ(plane.stats().vote.rejected, 0u);  // not visible until the merge
  (void)plane.finish_round();
  EXPECT_EQ(plane.stats().vote.rejected, 7u);
  EXPECT_EQ(plane.stats().vox.timeouts, 2u);
  EXPECT_EQ(plane.stats().total().rejected, 7u);
  // Lane blocks were reset — a second round does not double-count.
  (void)plane.finish_round();
  EXPECT_EQ(plane.stats().vote.rejected, 7u);
}

TEST(FaultPlane, RetryStreamsAreDeterministicAcrossPlanes) {
  FaultPlane a(chaos_config(), util::Rng(6), 1);
  FaultPlane b(chaos_config(), util::Rng(6), 1);
  a.record_vp_failure(0, 11, PeerId{2});
  b.record_vp_failure(0, 11, PeerId{2});
  auto oa = a.finish_round();
  auto ob = b.finish_round();
  ASSERT_EQ(oa.vp_failures.size(), 1u);
  ASSERT_EQ(ob.vp_failures.size(), 1u);
  // The retry chain replays identically: same seed, same draws.
  for (int i = 0; i < 8; ++i) {
    EXPECT_EQ(oa.vp_failures[0].retry_rng(), ob.vp_failures[0].retry_rng());
  }
}

}  // namespace
}  // namespace tribvote::sim
