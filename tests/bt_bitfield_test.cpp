#include "bt/bitfield.hpp"

#include <gtest/gtest.h>

namespace tribvote::bt {
namespace {

TEST(Bitfield, StartsEmpty) {
  Bitfield bf(100);
  EXPECT_EQ(bf.size(), 100u);
  EXPECT_EQ(bf.count(), 0u);
  EXPECT_TRUE(bf.none());
  EXPECT_FALSE(bf.all());
  for (std::size_t i = 0; i < 100; ++i) EXPECT_FALSE(bf.test(i));
}

TEST(Bitfield, SetAndReset) {
  Bitfield bf(70);
  bf.set(0);
  bf.set(63);
  bf.set(64);
  bf.set(69);
  EXPECT_EQ(bf.count(), 4u);
  EXPECT_TRUE(bf.test(63));
  EXPECT_TRUE(bf.test(64));
  bf.reset(63);
  EXPECT_FALSE(bf.test(63));
  EXPECT_EQ(bf.count(), 3u);
}

TEST(Bitfield, SetAllRespectsPadding) {
  for (std::size_t n : {1u, 63u, 64u, 65u, 127u, 128u, 700u}) {
    Bitfield bf(n);
    bf.set_all();
    EXPECT_EQ(bf.count(), n) << "n=" << n;
    EXPECT_TRUE(bf.all());
  }
}

TEST(Bitfield, ZeroSizeIsAll) {
  Bitfield bf(0);
  EXPECT_TRUE(bf.all());  // vacuous
  bf.set_all();
  EXPECT_EQ(bf.count(), 0u);
}

TEST(Bitfield, HasPieceNotIn) {
  Bitfield a(130), b(130);
  EXPECT_FALSE(a.has_piece_not_in(b));  // both empty
  a.set(5);
  EXPECT_TRUE(a.has_piece_not_in(b));
  EXPECT_FALSE(b.has_piece_not_in(a));
  b.set(5);
  EXPECT_FALSE(a.has_piece_not_in(b));
  a.set(128);  // second word
  EXPECT_TRUE(a.has_piece_not_in(b));
  b.set_all();
  EXPECT_FALSE(a.has_piece_not_in(b));
  EXPECT_TRUE(b.has_piece_not_in(a));
}

TEST(Bitfield, SeedNeverInterestedInSeed) {
  Bitfield seed1(50), seed2(50);
  seed1.set_all();
  seed2.set_all();
  EXPECT_FALSE(seed1.has_piece_not_in(seed2));
}

TEST(Bitfield, SetIsIdempotentForCount) {
  Bitfield bf(10);
  bf.set(3);
  bf.set(3);
  EXPECT_EQ(bf.count(), 1u);
}

}  // namespace
}  // namespace tribvote::bt
