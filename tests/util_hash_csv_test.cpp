#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <set>
#include <sstream>

#include "util/csv.hpp"
#include "util/hash.hpp"

namespace tribvote::util {
namespace {

TEST(Fnv1a, KnownVectors) {
  // Standard FNV-1a 64-bit test vectors.
  EXPECT_EQ(fnv1a64(""), 0xcbf29ce484222325ULL);
  EXPECT_EQ(fnv1a64("a"), 0xaf63dc4c8601ec8cULL);
  EXPECT_EQ(fnv1a64("foobar"), 0x85944171f73967e8ULL);
}

TEST(Fnv1a, BytesAndStringAgree) {
  const std::string s = "hello world";
  const auto* data = reinterpret_cast<const std::byte*>(s.data());
  EXPECT_EQ(fnv1a64(std::span<const std::byte>(data, s.size())), fnv1a64(s));
}

TEST(Mix64, BijectiveOnSamples) {
  std::set<std::uint64_t> outputs;
  for (std::uint64_t x = 0; x < 10000; ++x) outputs.insert(mix64(x));
  EXPECT_EQ(outputs.size(), 10000u);  // no collisions on consecutive inputs
}

TEST(Mix64, Avalanche) {
  // Flipping one input bit flips roughly half the output bits.
  int total_flips = 0;
  for (int bit = 0; bit < 64; ++bit) {
    const std::uint64_t a = mix64(0x123456789abcdefULL);
    const std::uint64_t b = mix64(0x123456789abcdefULL ^ (1ULL << bit));
    total_flips += std::popcount(a ^ b);
  }
  EXPECT_NEAR(total_flips / 64.0, 32.0, 6.0);
}

TEST(HashCombine, OrderMatters) {
  EXPECT_NE(hash_combine(1, 2), hash_combine(2, 1));
}

TEST(DigestFields, DistinguishesFieldBoundaries) {
  EXPECT_NE(digest_fields({1, 2, 3}), digest_fields({1, 2}));
  EXPECT_NE(digest_fields({12, 3}), digest_fields({1, 23}));
  EXPECT_EQ(digest_fields({7, 8}), digest_fields({7, 8}));
}

TEST(FormatDouble, TrimsTrailingZeros) {
  EXPECT_EQ(format_double(1.5), "1.5");
  EXPECT_EQ(format_double(2.0), "2");
  EXPECT_EQ(format_double(0.125, 3), "0.125");
  EXPECT_EQ(format_double(-3.1400001, 2), "-3.14");
}

class CsvWriterTest : public ::testing::Test {
 protected:
  std::string path_ = ::testing::TempDir() + "csv_test.csv";

  std::string read_back() const {
    std::ifstream in(path_);
    std::stringstream ss;
    ss << in.rdbuf();
    return ss.str();
  }

  void TearDown() override { std::remove(path_.c_str()); }
};

TEST_F(CsvWriterTest, PlainRows) {
  {
    CsvWriter w(path_);
    ASSERT_TRUE(w.ok());
    w.write_row({"a", "b", "c"});
    w.write_row({"1", "2", "3"});
  }
  EXPECT_EQ(read_back(), "a,b,c\n1,2,3\n");
}

TEST_F(CsvWriterTest, QuotesSpecialCharacters) {
  {
    CsvWriter w(path_);
    w.write_row({"with,comma", "with\"quote", "plain"});
  }
  EXPECT_EQ(read_back(), "\"with,comma\",\"with\"\"quote\",plain\n");
}

TEST_F(CsvWriterTest, IncrementalFields) {
  {
    CsvWriter w(path_);
    w.field("t").field(1.25).field(static_cast<long long>(-7));
    w.end_row();
  }
  EXPECT_EQ(read_back(), "t,1.25,-7\n");
}

TEST_F(CsvWriterTest, NewlineInFieldIsQuoted) {
  {
    CsvWriter w(path_);
    w.write_row({"line1\nline2"});
  }
  EXPECT_EQ(read_back(), "\"line1\nline2\"\n");
}

TEST(CsvWriterBadPath, OkIsFalse) {
  CsvWriter w("/nonexistent-dir-xyz/file.csv");
  EXPECT_FALSE(w.ok());
}

}  // namespace
}  // namespace tribvote::util
